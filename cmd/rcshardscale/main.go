// Command rcshardscale measures the parallel engine's shard scaling: the
// same run at every requested shard count across three mesh sizes, with
// wall-clock, simulated-cycles-per-second and speedup-vs-sequential per
// cell. It regenerates the shard-scaling table in EXPERIMENTS.md.
//
// Every cell simulates the identical chip — the engine is bit-identical at
// any shard count, which the golden suite and the differential fuzzers
// assert — so the only thing varying across a row is wall-clock time. On a
// single-core host the table therefore records the engine's overhead floor
// (the price of the phase barriers with no parallelism to pay for them);
// speedup needs GOMAXPROCS ≥ the shard count.
//
// Usage:
//
//	rcshardscale                    # 8x8, 16x16, 32x32 at 1/2/4/8 shards
//	rcshardscale -shards 1,4,16     # custom shard counts
//	rcshardscale -ops 6000          # longer runs (steadier numbers)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	shardList := flag.String("shards", "1,2,4,8", "comma-separated shard counts; each row is normalized to the count-1 run")
	variantName := flag.String("variant", "Complete_NoAck", "mechanism variant to run")
	ops := flag.Int64("ops", 3000, "measured operations per core (halved on the 32x32 mesh)")
	flag.Parse()

	var shards []int
	for _, f := range strings.Split(*shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "rcshardscale: bad shard count %q\n", f)
			return 1
		}
		shards = append(shards, n)
	}
	v, ok := config.ByName(*variantName)
	if !ok {
		fmt.Fprintf(os.Stderr, "rcshardscale: unknown variant %q\n", *variantName)
		return 1
	}

	fmt.Printf("host: GOMAXPROCS=%d (speedup saturates there regardless of shard count)\n\n",
		runtime.GOMAXPROCS(0))
	fmt.Printf("%-7s %-7s %10s %9s %11s %9s\n", "mesh", "shards", "cycles", "wall", "kcycles/s", "speedup")
	for _, c := range []config.Chip{
		{Name: "8x8", Width: 8, Height: 8, MCs: 4},
		{Name: "16x16", Width: 16, Height: 16, MCs: 4},
		{Name: "32x32", Width: 32, Height: 32, MCs: 4},
	} {
		cellOps := *ops
		if c.Width >= 32 {
			cellOps /= 2
		}
		var seq float64
		for _, sh := range shards {
			spec := chip.DefaultSpec(c, v, workload.Micro())
			spec.MeasureOps = cellOps
			spec.Shards = sh
			t0 := time.Now()
			r := chip.MustRun(spec)
			wall := time.Since(t0)
			rate := float64(r.SimCycles) / wall.Seconds()
			if seq == 0 {
				seq = rate
			}
			fmt.Printf("%-7s %-7d %10d %8.2fs %11.1f %8.2fx\n",
				c.Name, sh, r.SimCycles, wall.Seconds(), rate/1000, rate/seq)
		}
		fmt.Println()
	}
	return 0
}
