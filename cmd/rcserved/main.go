// Command rcserved runs the simulation service: an HTTP/JSON server that
// accepts chip.Spec submissions, simulates them on a bounded worker pool
// with the sweep harness's retry/timeout policy, memoizes results in a
// sharded LRU keyed by spec fingerprint, and streams per-window progress
// over server-sent events.
//
// Shutdown is graceful: SIGTERM/SIGINT closes intake, lets in-flight runs
// finish within the grace period (then cancels them), and drains every job
// that never produced a result to the journal; the next rcserved started
// on the same -journal path replays them to completion.
//
// Usage:
//
//	rcserved                          # listen on :8134, GOMAXPROCS workers
//	rcserved -addr :9000 -workers 4   # explicit socket and pool size
//	rcserved -journal rcserved.journal
//	rcserved -cache 1024 -queue 512   # admission-control sizing
//
// Submit a run (see README "Running as a service" for a full example):
//
//	curl -s localhost:8134/v1/jobs -d @spec.json
//	curl -N localhost:8134/v1/jobs/j-1/events
//	curl -s localhost:8134/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reactivenoc/internal/exp"
	"reactivenoc/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8134", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "max queued jobs before submissions get 429 + Retry-After")
	cacheN := flag.Int("cache", 512, "result-cache capacity (entries, LRU per shard)")
	shards := flag.Int("shards", 16, "cache/dedup shard count")
	journal := flag.String("journal", "", "journal path: unfinished jobs are drained here on shutdown and replayed on restart")
	retry := flag.Bool("retry", true, "retry failed runs once under the alternate seed")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock cap (0 = none)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace for in-flight runs before cancellation")
	flag.Parse()

	logger := log.New(os.Stderr, "rcserved: ", log.LstdFlags)

	pol := exp.Policy{Retry: *retry, Timeout: *runTimeout}
	srv, err := serve.New(serve.Config{
		Workers: *workers, QueueDepth: *queue,
		CacheEntries: *cacheN, CacheShards: *shards,
		Policy: pol, Journal: *journal,
	})
	if err != nil {
		logger.Printf("startup failed: %v", err)
		return 1
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d, queue=%d, cache=%d×%d shards, journal=%q)",
			*addr, exp.WorkersOr(*workers), *queue, *cacheN, *shards, *journal)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		logger.Printf("listener died: %v", err)
		return 1
	case got := <-sig:
		logger.Printf("%v: draining (grace %v)", got, *grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
		code = 1
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
		code = 1
	}
	snap := srv.Metrics()
	logger.Printf("drained: %s", fmt.Sprintf(
		"runs=%d done=%d failed=%d canceled=%d cache_hits=%d",
		snap.Value("serve/runs"), snap.Value("serve/jobs_done"),
		snap.Value("serve/jobs_failed"), snap.Value("serve/jobs_canceled"),
		snap.Value("serve/cache_hits")))
	return code
}
