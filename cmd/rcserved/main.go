// Command rcserved runs the simulation service: an HTTP/JSON server that
// accepts chip.Spec submissions, simulates them on a bounded worker pool
// with the sweep harness's retry/timeout policy, memoizes results in a
// sharded LRU keyed by spec fingerprint, and streams per-window progress
// over server-sent events.
//
// Shutdown is graceful: SIGTERM/SIGINT closes intake, lets in-flight runs
// finish within the grace period (then cancels them), and drains every job
// that never produced a result to the journal; the next rcserved started
// on the same -journal path replays them to completion.
//
// Several rcserved processes form a cluster: one hosts the discovery
// registry (-registry), every node joins it (-join), and clients pointed
// at the registry consistent-hash each spec fingerprint to its owning
// node — so the fleet's result caches partition instead of duplicating,
// and a node that dies mid-sweep is expired by TTL and its jobs
// re-dispatched to the survivors.
//
// Usage:
//
//	rcserved                          # listen on :8134, GOMAXPROCS workers
//	rcserved -addr :9000 -workers 4   # explicit socket and pool size
//	rcserved -journal rcserved.journal
//	rcserved -cache 1024 -queue 512   # admission-control sizing
//
// A three-node local cluster (see README "Running a cluster"):
//
//	rcserved -addr :8130 -registry -workers 1      # discovery
//	rcserved -addr :8131 -join http://127.0.0.1:8130 -journal n1.journal
//	rcserved -addr :8132 -join http://127.0.0.1:8130 -journal n2.journal
//	rcserved -addr :8133 -join http://127.0.0.1:8130 -journal n3.journal
//	rcsweep -exp fig6 -chip 16 -remote http://127.0.0.1:8130
//
// Submit a run (see README "Running as a service" for a full example):
//
//	curl -s localhost:8134/v1/jobs -d @spec.json
//	curl -N localhost:8134/v1/jobs/j-1/events
//	curl -s localhost:8134/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"reactivenoc/internal/cluster"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/serve"
)

func main() { os.Exit(run()) }

// advertiseFor derives the URL peers reach this process at when -advertise
// is not given: loopback plus the listen port, which is exactly right for
// the local-cluster and CI cases, and wrong (so: set -advertise) for
// multi-host fleets.
func advertiseFor(addr string) string {
	host, port, ok := strings.Cut(addr, ":")
	if !ok {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + host + ":" + port
}

func run() int {
	addr := flag.String("addr", ":8134", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "max queued jobs before submissions get 429 + Retry-After")
	cacheN := flag.Int("cache", 512, "result-cache capacity (entries, LRU per shard)")
	shards := flag.Int("shards", 16, "cache/dedup shard count")
	journal := flag.String("journal", "", "journal path: unfinished jobs are drained here on shutdown and replayed on restart")
	retry := flag.Bool("retry", true, "retry failed runs once under the alternate seed")
	runTimeout := flag.Duration("run-timeout", 0, "per-run wall-clock cap (0 = none)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace for in-flight runs before cancellation")
	registry := flag.Bool("registry", false, "host the cluster discovery registry on this server")
	registryTTL := flag.Duration("registry-ttl", cluster.DefaultTTL, "registry heartbeat expiry window")
	join := flag.String("join", "", "cluster registry URL to register this node with")
	nodeID := flag.String("node-id", "", "stable cluster identity (default: the advertise address)")
	advertise := flag.String("advertise", "", "base URL peers and clients reach this node at (default: loopback + listen port)")
	simShards := flag.Int("sim-shards", -1,
		"parallel engine row-band shards per simulation (bit-identical; -shards above is the cache, not this): 0 = GOMAXPROCS, 1 = sequential, -1 = defer to RC_SHARDS")
	flag.Parse()

	// Simulation specs are built per job; the engine's shard count rides
	// the lazily-read RC_SHARDS hook. Results and fingerprints are
	// identical at any value, so sharded and sequential nodes still dedupe
	// to the same cache entry.
	if *simShards >= 0 {
		os.Setenv("RC_SHARDS", strconv.Itoa(*simShards))
	}

	logger := log.New(os.Stderr, "rcserved: ", log.LstdFlags)

	pol := exp.Policy{Retry: *retry, Timeout: *runTimeout}
	srv, err := serve.New(serve.Config{
		Workers: *workers, QueueDepth: *queue,
		CacheEntries: *cacheN, CacheShards: *shards,
		Policy: pol, Journal: *journal, Logf: logger.Printf,
	})
	if err != nil {
		logger.Printf("startup failed: %v", err)
		return 1
	}
	srv.Start()

	handler := srv.Handler()
	var reg *cluster.Registry
	if *registry {
		reg = cluster.NewRegistry(cluster.RegistryConfig{TTL: *registryTTL, Logf: logger.Printf})
		reg.Start()
		// The discovery API and a combined /metrics (serve/ + cluster/
		// scopes) mount in front of the serving mux.
		outer := http.NewServeMux()
		reg.Routes(outer)
		outer.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			cluster.WriteMetrics(w, srv.Metrics(), reg.Metrics())
		})
		outer.Handle("/", handler)
		handler = outer
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d, queue=%d, cache=%d×%d shards, journal=%q, registry=%v)",
			*addr, exp.WorkersOr(*workers), *queue, *cacheN, *shards, *journal, *registry)
		errCh <- httpSrv.ListenAndServe()
	}()

	var agent *cluster.Agent
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseFor(*addr)
		}
		id := *nodeID
		if id == "" {
			id = strings.TrimPrefix(strings.TrimPrefix(adv, "http://"), "https://")
		}
		agent = cluster.NewAgent(cluster.AgentConfig{
			Registry: *join,
			Self:     cluster.Node{ID: id, URL: adv},
			Logf:     logger.Printf,
		})
		// A failed initial registration is survivable: every heartbeat is
		// an upsert, so the node joins as soon as the registry answers.
		regCtx, regCancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := agent.Register(regCtx); err != nil {
			logger.Printf("initial registration with %s failed (will keep trying): %v", *join, err)
		} else {
			logger.Printf("joined cluster at %s as %s (%s)", *join, id, adv)
		}
		regCancel()
		agent.Start()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		logger.Printf("listener died: %v", err)
		return 1
	case got := <-sig:
		logger.Printf("%v: draining (grace %v)", got, *grace)
	}

	// Leave the cluster first so clients stop routing new jobs here while
	// the drain runs — the explicit teardown, not the TTL one.
	if agent != nil {
		lctx, lcancel := context.WithTimeout(context.Background(), 3*time.Second)
		if err := agent.Leave(lctx); err != nil {
			logger.Printf("cluster leave: %v", err)
		}
		lcancel()
	}
	if reg != nil {
		reg.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
		code = 1
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
		code = 1
	}
	snap := srv.Metrics()
	logger.Printf("drained: %s", fmt.Sprintf(
		"runs=%d done=%d failed=%d canceled=%d cache_hits=%d",
		snap.Value("serve/runs"), snap.Value("serve/jobs_done"),
		snap.Value("serve/jobs_failed"), snap.Value("serve/jobs_canceled"),
		snap.Value("serve/cache_hits")))
	return code
}
