// Command rcsim runs one chip configuration on one workload and prints the
// run's measurements: cycles, IPC, message mix, latency anatomy, circuit
// statistics, energy and router area.
//
// Usage:
//
//	rcsim -chip 64 -variant Complete_NoAck -workload canneal -ops 12000
//	rcsim -workload hotspot                 # adversarial generator (see -list-workloads)
//	rcsim -workload micro -record run.rctf  # dump the run as a replayable trace
//	rcsim -workload trace:run.rctf          # replay it (bit-identical results)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/prof"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/tracefeed"
)

func main() {
	chipSize := flag.Int("chip", 16, "chip size: 16, 64 or 256 cores")
	variantName := flag.String("variant", "Complete_NoAck",
		"mechanism variant: "+strings.Join(config.RegisteredNames(), ", "))
	policyName := flag.String("policy", "",
		"run the named switching policy's representative variant instead of -variant (see -list-policies)")
	listPolicies := flag.Bool("list-policies", false, "list every registered switching policy and exit")
	workloadName := flag.String("workload", "micro",
		"workload: a built-in profile, an adversarial generator, or trace:<path> (see -list-workloads)")
	listWorkloads := flag.Bool("list-workloads", false, "list every resolvable workload name and exit")
	record := flag.String("record", "", "dump the run's instruction streams to this path as a replayable binary trace")
	ops := flag.Int64("ops", 12000, "measured operations per core")
	warm := flag.Int64("warmup", 3000, "warm-up operations per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	baseline := flag.Bool("baseline", false, "also run the baseline and report speedup/energy ratios")
	traceN := flag.Int("trace", 0, "print the last N message-lifecycle events")
	audit := flag.Bool("audit", false, "run the conservation/coherence audits after the run")
	verifyRun := flag.Bool("verify", false, "arm the online invariant oracles (internal/verify) during the run")
	verifyEvery := flag.Int64("verify-every", 0, "oracle cadence in cycles with -verify (0 = default)")
	timeout := flag.Duration("timeout", 0, "wall-clock cap for the run (0 = none)")
	nopool := flag.Bool("nopool", false, "disable flit/message recycling (bit-identical; for bisecting pool bugs)")
	shards := flag.Int("shards", -1,
		"parallel engine row-band shards (bit-identical): 0 = GOMAXPROCS, 1 = sequential, -1 = defer to RC_SHARDS")
	// -trace is the message-lifecycle trace above, so the runtime execution
	// trace lives under -exectrace here.
	profiles := prof.Flags("exectrace")
	flag.Parse()

	if *listPolicies {
		printPolicies()
		return
	}
	if *listWorkloads {
		for _, n := range tracefeed.WorkloadNames() {
			fmt.Println(n)
		}
		return
	}

	var c config.Chip
	switch *chipSize {
	case 16:
		c = config.Chip16()
	case 64:
		c = config.Chip64()
	case 256:
		c = config.Chip256()
	default:
		fatal("chip must be 16, 64 or 256")
	}
	v, ok := config.ByName(*variantName)
	if !ok {
		fatal("unknown variant %q (have: %s)", *variantName, strings.Join(config.RegisteredNames(), ", "))
	}
	if *policyName != "" {
		if v, ok = config.VariantForPolicy(*policyName); !ok {
			fatal("unknown policy %q (have: %s)", *policyName, strings.Join(config.PolicyNames(), ", "))
		}
	}
	w, werr := tracefeed.ResolveWorkload(*workloadName)
	if werr != nil {
		fatal("%v", werr)
	}

	spec := chip.DefaultSpec(c, v, w)
	spec.MeasureOps = *ops
	spec.WarmupOps = *warm
	spec.Seed = *seed
	spec.TraceCap = *traceN
	spec.Audit = *audit
	spec.Timeout = *timeout
	spec.NoPool = *nopool
	spec.Verify = *verifyRun
	spec.VerifyEvery = sim.Cycle(*verifyEvery)
	spec.RecordTrace = *record
	if *shards >= 0 {
		spec.Shards = *shards
		if *shards == 0 {
			spec.Shards = runtime.GOMAXPROCS(0)
		}
	}
	if err := profiles.Start(); err != nil {
		fatal("%v", err)
	}
	r, err := chip.Run(spec)
	if err != nil {
		fatalRun(err)
	}
	report(r)
	if *record != "" {
		fmt.Printf("trace:     written to %s (replay with -workload trace:%s)\n", *record, *record)
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d lifecycle events:\n", len(r.Trace))
		for _, e := range r.Trace {
			fmt.Println("  " + e.String())
		}
	}

	if *baseline && v.Name != "Baseline" {
		bv, _ := config.ByName("Baseline")
		bspec := spec
		bspec.Variant = bv
		b, err := chip.Run(bspec)
		if err != nil {
			fatalRun(err)
		}
		fmt.Printf("\nvs baseline: speedup %+.2f%%  energy %.3fx  area savings %+.2f%%\n",
			(r.Speedup(b)-1)*100, r.Energy.Total()/b.Energy.Total(), r.AreaSavings*100)
	}
	if err := profiles.Stop(); err != nil {
		fatal("%v", err)
	}
}

// printPolicies lists every registered switching policy with its
// representative variant and the sweep columns that exercise it.
func printPolicies() {
	for _, name := range config.PolicyNames() {
		rep := "(no registered variant)"
		if v, ok := config.VariantForPolicy(name); ok {
			rep = v.Name
		}
		var cols []string
		for _, v := range config.VariantsForPolicy(name) {
			cols = append(cols, v.Name)
		}
		fmt.Printf("%-16s representative %-18s sweep columns: %s\n",
			name, rep, strings.Join(cols, ", "))
	}
}

func report(r *chip.Results) {
	fmt.Printf("chip:      %s, variant %s, workload %s\n",
		r.Spec.Chip.Name, r.Spec.Variant.Name, r.Spec.Workload.Name)
	fmt.Printf("cycles:    %d (IPC %.3f)\n", r.Cycles, r.IPC())
	memops := r.L1Hits + r.L1Misses
	fmt.Printf("L1:        %.2f%% miss (%d of %d)   L2: %d misses\n",
		100*float64(r.L1Misses)/float64(memops), r.L1Misses, memops, r.L2Misses)
	total, reqs := r.Msgs.Totals()
	fmt.Printf("messages:  %d network (%.1f%% requests / %.1f%% replies), %.3f flits/node/cycle injected\n",
		total, 100*float64(reqs)/float64(total), 100-100*float64(reqs)/float64(total), injRate(r))
	for t := coherence.MsgGetS; t <= coherence.MsgFwdMiss; t++ {
		if n := r.Msgs.Count(t); n > 0 {
			rec := r.Lat.TypeRecord(t)
			fmt.Printf("  %-16v %8d  (%4.1f%%)  %6.1f+%.1f cy\n",
				t, n, 100*r.Msgs.Fraction(t), rec.Network.Mean(), rec.Queueing.Mean())
		}
	}
	fmt.Printf("latency:   requests %.1f+%.1f  circuit-replies %.1f+%.1f  other %.1f+%.1f (net+queue cycles)\n",
		r.Lat.Requests.Network.Mean(), r.Lat.Requests.Queueing.Mean(),
		r.Lat.CircuitReplies.Network.Mean(), r.Lat.CircuitReplies.Queueing.Mean(),
		r.Lat.OtherReplies.Network.Mean(), r.Lat.OtherReplies.Queueing.Mean())
	fmt.Printf("latency:   data replies p50/p95/p99 = %d/%d/%d cycles\n",
		r.Lat.ReplyPercentile(0.5), r.Lat.ReplyPercentile(0.95), r.Lat.ReplyPercentile(0.99))
	fmt.Printf("energy:    %.0f pJ dynamic (buffers %.0f, xbar %.0f, links %.0f, arb %.0f, circuits %.0f) + %.0f pJ static\n",
		r.Energy.Dynamic, r.Energy.Buffers, r.Energy.Crossbars, r.Energy.Links,
		r.Energy.Arbiters, r.Energy.Circuits, r.Energy.Static)
	fmt.Printf("area:      router %+.2f%% vs baseline\n", r.AreaSavings*100)
	if r.Circ != nil {
		fmt.Printf("circuits:  built %d, undone %d, scrounger rides %d, eliminated acks %d\n",
			r.Circ.CircuitsBuilt, r.Circ.CircuitsUndone, r.Circ.ScroungerRides, r.Circ.EliminatedAcks)
		for o := core.OutcomeCircuit; o <= core.OutcomeEliminated; o++ {
			fmt.Printf("  %-14s %.1f%%\n", o.String(), 100*r.Circ.OutcomeFraction(o))
		}
	}
}

// injRate is injected flits per node per cycle (the paper's load measure).
func injRate(r *chip.Results) float64 {
	var flits int64
	for t, n := range r.Msgs.Network {
		flits += n * int64(coherence.MsgType(t).SizeFlits())
	}
	return float64(flits) / float64(r.Cycles) / float64(r.Spec.Chip.Nodes())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rcsim: "+format+"\n", args...)
	os.Exit(1)
}

// fatalRun prints a failed run with its full diagnostics (network state
// dump, trace tail, injected faults) when the error carries them.
func fatalRun(err error) {
	if re := chip.AsRunError(err); re != nil {
		fatal("run failed: %s", re.Verbose())
	}
	fatal("run failed: %v", err)
}
