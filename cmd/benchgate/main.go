// Command benchgate compares two benchmark captures — a committed baseline
// and a fresh PR run — and fails on performance regressions. It guards the
// two numbers the zero-allocation work pinned down: simulation throughput
// (sim_cycles/sec, higher is better) and steady-state allocation counts
// (allocs/op, lower is better).
//
// Both inputs may be either `go test -json` event streams (as produced by
// `go test -json -bench ... > BENCH.json`) or plain `go test -bench` text;
// the format is detected per line. Benchmarks present in only one capture
// are reported but never fail the gate, so adding or retiring a benchmark
// does not require touching the baseline in the same commit.
//
// Usage:
//
//	benchgate -baseline BENCH_baseline.json -pr BENCH_pr.json [-threshold 0.10]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics maps a unit ("ns/op", "allocs/op", "sim_cycles/sec", ...) to its
// reported value for one benchmark.
type metrics map[string]float64

// event is the subset of the test2json record benchgate needs.
type event struct {
	Action string
	Output string
}

// cpuSuffix strips the trailing GOMAXPROCS marker go test appends to
// benchmark names (BenchmarkFoo-8), so captures from machines with
// different core counts still line up.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts per-benchmark metrics from a capture in either
// format. Unparseable lines are skipped: a capture that interleaves build
// noise or test logs must not kill the gate.
func parseBench(r io.Reader) (map[string]metrics, error) {
	// First reassemble the raw benchmark output: test2json splits one
	// result line across several Output events.
	var buf strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					buf.WriteString(ev.Output)
				}
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]metrics{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(fields[0], "")
		m := metrics{"_iterations": float64(iters)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		if len(m) > 1 {
			out[name] = m
		}
	}
	return out, nil
}

// regression is one gate violation, formatted for the CI log.
type regression struct {
	bench, unit          string
	base, pr, changeFrac float64
}

func (r regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.1f%% (baseline %.6g, PR %.6g)",
		r.bench, r.unit, 100*r.changeFrac, r.base, r.pr)
}

// minSampleNS is the shortest measurement (iterations x ns/op) whose
// throughput the gate will judge: below one millisecond the number is timer
// noise, not signal — a single Step of an idle mesh takes ~10 us. allocs/op
// is still gated for such benchmarks, because allocation counts are
// deterministic at any sample size.
const minSampleNS = 1e6

// sampleNS returns how long the benchmark actually measured.
func sampleNS(m metrics) float64 { return m["_iterations"] * m["ns/op"] }

// compare applies the gate rules: sim_cycles/sec may not drop by more than
// threshold, allocs/op may not grow by more than threshold — and a
// zero-alloc baseline may not start allocating at all, because 0 allocs/op
// in the steady state is the headline claim the gate exists to protect.
func compare(base, pr map[string]metrics, threshold float64) (regs []regression, notes []string) {
	names := make([]string, 0, len(pr))
	for name := range pr {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			notes = append(notes, name+": not in baseline, skipped (new benchmark?)")
			continue
		}
		p := pr[name]
		if bv, ok := b["sim_cycles/sec"]; ok {
			if pv, ok := p["sim_cycles/sec"]; ok && bv > 0 && pv < bv*(1-threshold) {
				if sampleNS(b) < minSampleNS || sampleNS(p) < minSampleNS {
					notes = append(notes, fmt.Sprintf(
						"%s: sim_cycles/sec sample under %.0f ms, too noisy to gate (baseline %.6g, PR %.6g)",
						name, minSampleNS/1e6, bv, pv))
				} else {
					regs = append(regs, regression{name, "sim_cycles/sec", bv, pv, (bv - pv) / bv})
				}
			}
		}
		if bv, ok := b["allocs/op"]; ok {
			if pv, ok := p["allocs/op"]; ok {
				switch {
				case bv == 0 && pv > 0:
					regs = append(regs, regression{name, "allocs/op", bv, pv, 1})
				case bv > 0 && pv > bv*(1+threshold):
					regs = append(regs, regression{name, "allocs/op", bv, pv, (pv - bv) / bv})
				}
			}
		}
	}
	for name := range base {
		if _, ok := pr[name]; !ok {
			notes = append(notes, name+": in baseline but not in PR run (renamed or removed?)")
		}
	}
	sort.Strings(notes)
	return regs, notes
}

func load(path string) map[string]metrics {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	m, err := parseBench(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	if len(m) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results found in %s\n", path)
		os.Exit(2)
	}
	return m
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "baseline benchmark capture (go test -json or text)")
	prPath := flag.String("pr", "BENCH_pr.json", "PR benchmark capture (go test -json or text)")
	threshold := flag.Float64("threshold", 0.10, "allowed relative regression before the gate fails")
	flag.Parse()

	base, pr := load(*basePath), load(*prPath)
	regs, notes := compare(base, pr, *threshold)
	for _, n := range notes {
		fmt.Println("note: " + n)
	}
	if len(regs) == 0 {
		fmt.Printf("benchgate: OK — %d benchmarks compared, none regressed more than %.0f%%\n",
			len(pr), *threshold*100)
		return
	}
	fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d regression(s) beyond the %.0f%% threshold:\n",
		len(regs), *threshold*100)
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "  "+r.String())
	}
	fmt.Fprintln(os.Stderr, "If the slowdown is intended, regenerate the baseline:")
	fmt.Fprintln(os.Stderr, "  go test -run xxx -bench . -benchtime=1x -benchmem -json . > BENCH_baseline.json")
	os.Exit(1)
}
