package main

import (
	"strings"
	"testing"
)

const baselineText = `goos: linux
BenchmarkChipRun    	       1	  29512050 ns/op	      4829 cycles	    311301 sim_cycles/sec	   77111 allocs/op
BenchmarkNetworkCycle-8 	       1	     10574 ns/op	    109782 sim_cycles/sec	       2 allocs/op
BenchmarkBusySteady 	  100000	       375.2 ns/op	   2665000 sim_cycles/sec	       0 allocs/op
`

// test2json splits one benchmark line across several output events; the
// parser must reassemble them before matching.
const baselineJSON = `{"Action":"start","Package":"reactivenoc"}
{"Action":"output","Package":"reactivenoc","Output":"BenchmarkChipRun    \t"}
{"Action":"output","Package":"reactivenoc","Output":"       1\t  29512050 ns/op\t    311301 sim_cycles/sec\t   77111 allocs/op\n"}
{"Action":"pass","Package":"reactivenoc"}
`

func parsed(t *testing.T, s string) map[string]metrics {
	t.Helper()
	m, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return m
}

func TestParseTextAndJSON(t *testing.T) {
	txt := parsed(t, baselineText)
	if len(txt) != 3 {
		t.Fatalf("parsed %d benchmarks from text, want 3", len(txt))
	}
	// The -8 GOMAXPROCS suffix must be stripped so machines line up.
	if txt["BenchmarkNetworkCycle"]["allocs/op"] != 2 {
		t.Errorf("NetworkCycle allocs/op = %v, want 2", txt["BenchmarkNetworkCycle"]["allocs/op"])
	}
	js := parsed(t, baselineJSON)
	if js["BenchmarkChipRun"]["sim_cycles/sec"] != 311301 {
		t.Errorf("ChipRun sim_cycles/sec = %v, want 311301", js["BenchmarkChipRun"]["sim_cycles/sec"])
	}
}

func TestGateFailsOnInjectedRegression(t *testing.T) {
	base := parsed(t, baselineText)
	// Inject the exact failures the gate exists to catch: a >10% throughput
	// drop, an 11% alloc growth, and a zero-alloc benchmark regressing to 1.
	pr := parsed(t, `goos: linux
BenchmarkChipRun    	       1	  33512050 ns/op	    270000 sim_cycles/sec	   77000 allocs/op
BenchmarkNetworkCycle 	       1	     10574 ns/op	    109782 sim_cycles/sec	       3 allocs/op
BenchmarkBusySteady 	  100000	       375.2 ns/op	   2665000 sim_cycles/sec	       1 allocs/op
`)
	regs, _ := compare(base, pr, 0.10)
	if len(regs) != 3 {
		t.Fatalf("got %d regressions, want 3: %v", len(regs), regs)
	}
	want := map[string]string{
		"BenchmarkChipRun":      "sim_cycles/sec",
		"BenchmarkNetworkCycle": "allocs/op",
		"BenchmarkBusySteady":   "allocs/op",
	}
	for _, r := range regs {
		if want[r.bench] != r.unit {
			t.Errorf("unexpected regression %v", r)
		}
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := parsed(t, baselineText)
	// 9% throughput drop and 2->2 allocs: inside the 10% envelope.
	pr := parsed(t, `goos: linux
BenchmarkChipRun    	       1	  31512050 ns/op	    284000 sim_cycles/sec	   77111 allocs/op
BenchmarkNetworkCycle 	       1	     10574 ns/op	    120000 sim_cycles/sec	       2 allocs/op
BenchmarkBusySteady 	  100000	       375.2 ns/op	   2665000 sim_cycles/sec	       0 allocs/op
`)
	if regs, _ := compare(base, pr, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestMissingBenchmarksAreNotesNotFailures(t *testing.T) {
	base := parsed(t, baselineText)
	pr := parsed(t, `goos: linux
BenchmarkChipRun    	       1	  29512050 ns/op	    311301 sim_cycles/sec	   77111 allocs/op
BenchmarkBrandNew 	       1	       100 ns/op	   9999999 sim_cycles/sec	       0 allocs/op
`)
	regs, notes := compare(base, pr, 0.10)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(notes) != 3 { // BrandNew not in baseline; NetworkCycle and BusySteady dropped
		t.Fatalf("got %d notes, want 3: %v", len(notes), notes)
	}
}
