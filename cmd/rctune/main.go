// Command rctune is the closed-loop parameter tuner: for each workload
// it sweeps the mechanism grid (Slack/Postponed knob range plus the
// Baseline and Reuse anchors, config.TuneGrid) and reports the per-app
// optimum — which variant wins, by how much, and whether the plain
// timed-window predictor beats or loses to the baseline on that
// workload. Run against the adversarial generator suite it extends the
// paper's figures into the regimes where profile-based tuning degrades.
//
// Usage:
//
//	rctune                          # default campaign: stationary anchors + adversarial suite, 16-core
//	rctune -chip 64                 # the 64-core chip
//	rctune -workloads hotspot,onoff # tune only the named workloads (trace:<path> works too)
//	rctune -variants Baseline,Timed_NoAck,Slack_2_NoAck
//	rctune -ops 8000 -seed 3        # longer runs, different seed
//	rctune -md                      # markdown table (EXPERIMENTS.md rows)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"reactivenoc/internal/config"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/tracefeed/tune"
)

func main() { os.Exit(run()) }

func run() int {
	chipSel := flag.Int("chip", 16, "chip size (16, 64 or 256)")
	ops := flag.Int64("ops", 4000, "measured operations per core per run")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	shards := flag.Int("shards", -1,
		"parallel engine row-band shards for every run (bit-identical): 0 = GOMAXPROCS, 1 = sequential, -1 = defer to RC_SHARDS")
	workloadsFlag := flag.String("workloads", "",
		"comma-separated workload names (built-ins, generators, trace:<path>); empty = anchors + adversarial suite")
	variantsFlag := flag.String("variants", "",
		"comma-separated variant names to grid over; empty = the tuning grid (Baseline, Reuse, Timed, Slack_1/2/4/8, SlackDelay_1, Postponed_1/2)")
	listWorkloads := flag.Bool("list-workloads", false, "list every resolvable workload name and exit")
	mdOut := flag.Bool("md", false, "emit a markdown table instead of text")
	flag.Parse()

	if *listWorkloads {
		for _, n := range tracefeed.WorkloadNames() {
			fmt.Println(n)
		}
		return 0
	}
	if *shards >= 0 {
		os.Setenv("RC_SHARDS", strconv.Itoa(*shards))
	}

	var c config.Chip
	switch *chipSel {
	case 16:
		c = config.Chip16()
	case 64:
		c = config.Chip64()
	case 256:
		c = config.Chip256()
	default:
		fmt.Fprintln(os.Stderr, "rctune: -chip must be 16, 64 or 256")
		return 1
	}

	cfg := tune.Config{Chip: c, MeasureOps: *ops, Seed: *seed, Workers: *workers}
	if *workloadsFlag != "" {
		for _, name := range strings.Split(*workloadsFlag, ",") {
			p, err := tracefeed.ResolveWorkload(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rctune: %v\n", err)
				return 1
			}
			cfg.Workloads = append(cfg.Workloads, p)
		}
	}
	if *variantsFlag != "" {
		for _, name := range strings.Split(*variantsFlag, ",") {
			v, ok := config.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "rctune: unknown variant %q\n", name)
				return 1
			}
			cfg.Variants = append(cfg.Variants, v)
		}
	}

	rep, err := tune.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rctune: %v\n", err)
		return 1
	}
	if *mdOut {
		fmt.Print(rep.Markdown())
	} else {
		fmt.Printf("==== %s chip, %d ops/core, seed %d ====\n", c.Name, *ops, *seed)
		fmt.Print(rep.Text())
	}
	if len(rep.Sweep.Failures) > 0 {
		return 1
	}
	return 0
}
