// Command rcverify is the property-testing driver of the verification
// subsystem (internal/verify). It runs two campaigns:
//
//  1. A fault-detection matrix: every injectable corruption class
//     (internal/fault) is injected into a run with the invariant oracles
//     checking every cycle, and must be caught by the oracle
//     verify.OraclesFor maps it to — not the generic watchdog.
//  2. A differential campaign: -n random specs (seeds -seed .. -seed+n-1)
//     each run through the behaviour-neutral engine matrix — sparse vs
//     dense kernel, pooled vs unpooled, and optionally a remote rcserved —
//     asserting bit-identical results with the oracles armed on every leg.
//
// A failing differential seed is a complete reproducer: it is printed, and
// written to -corpus in `go test` fuzz-corpus format so
// `go test -run=FuzzDifferential ./internal/verify/differ` replays it.
//
// Usage:
//
//	rcverify -n 200
//	rcverify -n 50 -seed 1000 -remote http://host:8134
//	rcverify -faults=false -n 20 -corpus internal/verify/differ/testdata/fuzz/FuzzDifferential
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/serve"
	"reactivenoc/internal/verify"
	"reactivenoc/internal/verify/differ"
	"reactivenoc/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	n := flag.Int("n", 50, "number of random differential seeds to run")
	seed := flag.Uint64("seed", 1, "first differential seed")
	faults := flag.Bool("faults", true, "run the fault-detection matrix first")
	policies := flag.Bool("policies", true, "run the per-policy differential gauntlet (every registered switching policy)")
	remote := flag.String("remote", "", "base URL of a running rcserved to add as a differential leg")
	corpus := flag.String("corpus", "", "directory to write failing seeds to as go-fuzz corpus entries")
	verbose := flag.Bool("v", false, "print every seed as it runs")
	flag.Parse()

	ctx := context.Background()
	var remoteRun differ.RunFunc
	if *remote != "" {
		remoteRun = serve.NewClient(*remote).Run
	}

	if *faults {
		if !runFaultMatrix() {
			return 1
		}
	}

	if *policies {
		if !runPolicyGauntlet(ctx, remoteRun) {
			return 1
		}
	}

	fmt.Printf("differential: %d seeds from %d (legs: reference", *n, *seed)
	for _, leg := range differ.Legs() {
		fmt.Printf(", %s", leg.Name)
	}
	if remoteRun != nil {
		fmt.Print(", remote")
	}
	fmt.Println(")")

	t0 := time.Now()
	for i := 0; i < *n; i++ {
		s := *seed + uint64(i)
		spec := differ.SpecFromSeed(s)
		if *verbose {
			fmt.Printf("  seed %d: %s/%s/%s warm=%d meas=%d\n", s,
				spec.Chip.Name, spec.Variant.Name, spec.Workload.Name,
				spec.WarmupOps, spec.MeasureOps)
		}
		if err := differ.RunDifferential(ctx, spec, remoteRun); err != nil {
			fmt.Fprintf(os.Stderr, "rcverify: seed %d FAILED: %v\n", s, err)
			if re := chip.AsRunError(err); re != nil && re.Oracle != "" {
				fmt.Fprintf(os.Stderr, "rcverify: oracle %q fired\n", re.Oracle)
			}
			if *corpus != "" {
				if path, werr := writeCorpusEntry(*corpus, s); werr != nil {
					fmt.Fprintf(os.Stderr, "rcverify: writing corpus entry: %v\n", werr)
				} else {
					fmt.Fprintf(os.Stderr, "rcverify: reproducer written to %s\n", path)
				}
			}
			return 1
		}
	}
	fmt.Printf("differential: %d seeds passed in %v (zero divergences, zero oracle violations)\n",
		*n, time.Since(t0).Round(time.Millisecond))
	return 0
}

// runPolicyGauntlet runs every registered switching policy's
// representative variant through the differential matrix with the oracles
// armed at a tight cadence — the same conformance bar the test suite
// applies, but through the rcverify reporting path (and, with -remote,
// with the remote leg attached).
func runPolicyGauntlet(ctx context.Context, remoteRun differ.RunFunc) bool {
	names := config.PolicyNames()
	fmt.Printf("policy gauntlet: %d registered policies through the differential matrix\n", len(names))
	ok := true
	for _, name := range names {
		v, found := config.VariantForPolicy(name)
		if !found {
			fmt.Fprintf(os.Stderr, "  %-16s NO VARIANT: no registered preset exercises this policy\n", name)
			ok = false
			continue
		}
		spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
		spec.WarmupOps, spec.MeasureOps = 500, 4000
		spec.Audit, spec.Verify, spec.VerifyEvery = true, true, 8
		if err := differ.RunDifferential(ctx, spec, remoteRun); err != nil {
			fmt.Fprintf(os.Stderr, "  %-16s FAILED (variant %s): %v\n", name, v.Name, err)
			if re := chip.AsRunError(err); re != nil && re.Oracle != "" {
				fmt.Fprintf(os.Stderr, "  %-16s oracle %q fired\n", name, re.Oracle)
			}
			ok = false
			continue
		}
		fmt.Printf("  %-16s ok (variant %s)\n", name, v.Name)
	}
	return ok
}

// faultScenario arms one corruption class in the spec shape the chaos suite
// established: a workload/variant combination where the class's eligible
// hardware event reliably occurs.
func faultScenario(c fault.Class) chip.Spec {
	variant, w := "Complete_NoAck", workload.Micro()
	plan := &fault.Plan{Class: c}
	spec := chip.Spec{
		WarmupOps: 1000, MeasureOps: 3000, Seed: 1,
		Audit: true, Verify: true, VerifyEvery: 1,
	}
	switch c {
	case fault.DropUndoToken:
		w = workload.Micro().Scaled(8)
	case fault.TruncateWindow:
		variant = "SlackDelay_1_NoAck"
		plan.Count = 2
	case fault.WithholdCredit:
		variant = "Baseline"
	case fault.StallLink:
		plan.After = 2000
		spec.WatchdogStall = 3000
	}
	v, _ := config.ByName(variant)
	spec.Chip, spec.Variant, spec.Workload, spec.Fault = config.Chip16(), v, w, plan
	return spec
}

// sdmFaultScenario arms one corruption class with the SDM policy's
// lane-sliced fabric active, so the detection story is re-proven against
// per-lane circuit tables, lane-paced bypass and deferred teardown.
// ok=false marks a structurally inapplicable class: TruncateWindow needs a
// timed reservation, and sdm replaces time windows with lanes outright.
func sdmFaultScenario(c fault.Class) (chip.Spec, bool) {
	if c == fault.TruncateWindow {
		return chip.Spec{}, false
	}
	w := workload.Micro()
	plan := &fault.Plan{Class: c}
	spec := chip.Spec{
		WarmupOps: 1000, MeasureOps: 3000, Seed: 1,
		Audit: true, Verify: true, VerifyEvery: 1,
	}
	switch c {
	case fault.DropUndoToken:
		w = workload.Micro().Scaled(8)
	case fault.StallLink:
		plan.After = 2000
		spec.WatchdogStall = 3000
	}
	v, _ := config.ByName("SDM")
	spec.Chip, spec.Variant, spec.Workload, spec.Fault = config.Chip16(), v, w, plan
	return spec, true
}

// runFaultMatrix injects every fault class and checks the oracle that
// catches it against the canonical mapping — once in the default scenarios
// and once with the SDM fabric active.
func runFaultMatrix() bool {
	fmt.Printf("fault matrix: %d classes, oracles checking every cycle\n", fault.NumClasses)
	check := func(c fault.Class, spec chip.Spec, tag string) bool {
		_, err := chip.Run(spec)
		re := chip.AsRunError(err)
		switch {
		case err == nil:
			fmt.Fprintf(os.Stderr, "  %-18s %s ESCAPED: run completed cleanly\n", c, tag)
			return false
		case re == nil:
			fmt.Fprintf(os.Stderr, "  %-18s %s unstructured error: %v\n", c, tag, err)
			return false
		case !oracleAllowed(re.Oracle, verify.OraclesFor(c)):
			fmt.Fprintf(os.Stderr, "  %-18s %s caught by %q (phase %s), want %v\n",
				c, tag, re.Oracle, re.Phase, verify.OraclesFor(c))
			return false
		}
		fmt.Printf("  %-18s %s caught by oracle %q at cycle %d\n", c, tag, re.Oracle, re.Cycle)
		return true
	}
	ok := true
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		ok = check(c, faultScenario(c), "        ") && ok
	}
	for c := fault.Class(0); c < fault.NumClasses; c++ {
		spec, applies := sdmFaultScenario(c)
		if !applies {
			fmt.Printf("  %-18s [SDM]    n/a (sdm circuits are untimed; no window to truncate)\n", c)
			continue
		}
		ok = check(c, spec, "[SDM]   ") && ok
	}
	return ok
}

func oracleAllowed(got string, want []string) bool {
	for _, w := range want {
		if got == w {
			return true
		}
	}
	return false
}

// writeCorpusEntry persists a failing seed in `go test` fuzz-corpus format
// for FuzzDifferential.
func writeCorpusEntry(dir string, seed uint64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("rcverify-seed-%d", seed))
	body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\n", seed)
	return path, os.WriteFile(path, []byte(body), 0o644)
}
