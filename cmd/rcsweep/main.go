// Command rcsweep regenerates the paper's evaluation: every table and
// figure, for the 16- and 64-core chips, across the workload suite, plus
// the extension experiments (load threshold, ablations, scalability,
// related-work comparison, tail latency, confidence intervals).
//
// Usage:
//
//	rcsweep                 # quick pass (subset of workloads, short runs)
//	rcsweep -full           # the full suite (21 parallel apps + mix)
//	rcsweep -exp fig9       # one experiment only
//	rcsweep -chip 64        # one chip size only
//	rcsweep -json           # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
)

// formatter is what every experiment report implements.
type formatter interface{ Format() string }

func main() {
	full := flag.Bool("full", false, "run the full workload suite")
	which := flag.String("exp", "all",
		"experiment: all, table1, table5, table6, fig6, fig7, fig8, fig9, fig10, load, ablate, scale, compare, tail, ci")
	chipSel := flag.Int("chip", 0, "chip size (16 or 64); 0 = both")
	ops := flag.Int64("ops", 0, "override measured operations per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text tables")
	mdOut := flag.Bool("md", false, "emit the full evaluation as a markdown report (implies -exp all)")
	flag.Parse()

	if *mdOut {
		scale := exp.QuickScale()
		if *full {
			scale = exp.FullScale()
		}
		if *ops > 0 {
			scale.MeasureOps = *ops
		}
		scale.Seed = *seed
		s16 := exp.RunSweep(config.Chip16(), config.Variants(), scale)
		s64 := exp.RunSweep(config.Chip64(), config.Variants(), scale)
		fmt.Print(exp.Markdown(s16, s64))
		return
	}

	scale := exp.QuickScale()
	if *full {
		scale = exp.FullScale()
	}
	if *ops > 0 {
		scale.MeasureOps = *ops
	}
	scale.Seed = *seed

	chips := []config.Chip{config.Chip16(), config.Chip64()}
	switch *chipSel {
	case 0:
	case 16:
		chips = chips[:1]
	case 64:
		chips = chips[1:]
	default:
		fmt.Fprintln(os.Stderr, "rcsweep: -chip must be 16 or 64")
		os.Exit(1)
	}

	report := map[string]any{}
	emit := func(key string, v formatter) {
		if *jsonOut {
			report[key] = v
		} else {
			fmt.Println(v.Format())
		}
	}
	defer func() {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fmt.Fprintf(os.Stderr, "rcsweep: %v\n", err)
				os.Exit(1)
			}
		}
	}()

	want := func(name string) bool { return *which == "all" || *which == name }

	// Table 6 needs no simulation.
	if want("table6") {
		emit("table6", exp.Table6Compute())
	}
	if *which == "table6" {
		return
	}

	// The extension experiments run their own sweeps.
	switch *which {
	case "load":
		for _, c := range chips {
			emit("load_"+c.Name, exp.LoadSweepRun(c, []float64{0.5, 1, 2, 4, 8, 16}, scale.MeasureOps))
		}
		return
	case "ablate":
		for _, c := range chips {
			emit("ablate_circuits_"+c.Name, exp.AblateCircuitsPerPort(c, []int{1, 2, 3, 5, 8}, scale.MeasureOps))
			emit("ablate_slack_"+c.Name, exp.AblateSlack(c, []int{0, 1, 2, 4, 8}, scale.MeasureOps))
		}
		return
	case "scale":
		emit("scale", exp.ScaleSweepRun([]int{4, 6, 8}, scale.MeasureOps))
		return
	case "compare":
		for _, c := range chips {
			emit("compare_"+c.Name, exp.CompareRun(c, scale.MeasureOps))
		}
		return
	case "tail":
		for _, c := range chips {
			emit("tail_"+c.Name, exp.TailRun(c, scale.MeasureOps))
		}
		return
	case "ci":
		for _, c := range chips {
			emit("ci_"+c.Name, exp.CIRun(c, []string{"Complete_NoAck", "SlackDelay_1_NoAck"}, 5, scale.MeasureOps))
		}
		return
	}

	for _, c := range chips {
		t0 := time.Now()
		if !*jsonOut {
			fmt.Printf("==== %s chip (%d runs x %d ops/core) ====\n",
				c.Name, len(config.Variants())*len(scale.Workloads()), scale.MeasureOps)
		}
		sweep := exp.RunSweep(c, config.Variants(), scale)
		if !*jsonOut {
			fmt.Printf("sweep finished in %v\n\n", time.Since(t0).Round(time.Millisecond))
		}

		big := c.Nodes() == 64 || len(chips) == 1
		if want("table1") && big {
			emit("table1", exp.Table1From(sweep))
		}
		if want("table5") && big {
			emit("table5", exp.Table5From(sweep, "Complete_NoAck"))
		}
		if want("fig6") {
			emit("fig6_"+c.Name, exp.Fig6From(sweep))
		}
		if want("fig7") {
			emit("fig7_"+c.Name, exp.Fig7From(sweep))
		}
		if want("fig8") {
			emit("fig8_"+c.Name, exp.Fig8From(sweep))
		}
		if want("fig9") {
			emit("fig9_"+c.Name, exp.Fig9From(sweep))
		}
		if want("fig10") && big {
			emit("fig10", exp.Fig10From(sweep, "SlackDelay_1_NoAck"))
		}
	}
}
