// Command rcsweep regenerates the paper's evaluation: every table and
// figure, for the 16- and 64-core chips, across the workload suite, plus
// the extension experiments (load threshold, ablations, scalability,
// related-work comparison, tail latency, confidence intervals).
//
// Individual simulation runs that fail (invariant panic, deadlock
// watchdog, audit failure, wall-clock timeout) do not abort the sweep:
// they are recorded, retried once under an alternate seed, and summarized
// at the end, and rcsweep exits non-zero. Use -failfast to stop at the
// first failure instead, and -timeout to cap each run's wall-clock time.
//
// Usage:
//
//	rcsweep                 # quick pass (subset of workloads, short runs)
//	rcsweep -full           # the full suite (21 parallel apps + mix)
//	rcsweep -exp fig9       # one experiment only
//	rcsweep -chip 64        # one chip size only
//	rcsweep -json           # machine-readable output
//	rcsweep -timeout 5m     # per-run wall-clock cap
//	rcsweep -failfast       # stop scheduling runs after the first failure
//	rcsweep -remote http://host:8134   # submit cells to a running rcserved
//
// With -remote, every sweep cell is submitted to the rcserved instance at
// the given base URL instead of being simulated locally: results come back
// over HTTP (cache hits never burn a server worker), failures come back as
// the same structured run errors the local path produces, and the server
// owns retry — so the client-side retry is disabled to avoid running every
// failing spec four times.
//
// When the -remote endpoint hosts the cluster discovery registry
// (rcserved -registry), rcsweep fans out transparently: each cell is
// routed by spec fingerprint to its consistent-hash owner, per-node
// backpressure is absorbed with jittered exponential backoff, and a node
// that dies mid-sweep has its cells re-dispatched to the surviving ring
// successor — at-least-once, deduplicated by fingerprint on the nodes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"reactivenoc/internal/cluster"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/prof"
	"reactivenoc/internal/tracefeed"
)

// formatter is what every experiment report implements.
type formatter interface{ Format() string }

func main() { os.Exit(run()) }

func run() int {
	full := flag.Bool("full", false, "run the full workload suite")
	which := flag.String("exp", "all",
		"experiment: all, table1, table5, table6, fig6, fig7, fig8, fig9, fig10, load, ablate, scale, compare, tail, ci")
	chipSel := flag.Int("chip", 0, "chip size (16, 64 or 256); 0 = the paper's pair (16 and 64)")
	shards := flag.Int("shards", -1,
		"parallel engine row-band shards for every run (bit-identical): 0 = GOMAXPROCS, 1 = sequential, -1 = defer to RC_SHARDS")
	ops := flag.Int64("ops", 0, "override measured operations per core")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock cap (0 = none)")
	keepGoing := flag.Bool("keep-going", true, "survive failed runs and report them at the end")
	failFast := flag.Bool("failfast", false, "stop scheduling new runs after the first failure")
	remote := flag.String("remote", "", "base URL of a running rcserved; sweep cells are submitted there instead of simulated locally")
	verifyRuns := flag.Bool("verify", false, "arm the online invariant oracles on every run of the sweep")
	policyName := flag.String("policy", "", "restrict the sweep columns to the named switching policy's variants (see -list-policies)")
	listPolicies := flag.Bool("list-policies", false, "list every registered switching policy and exit")
	workloadsFlag := flag.String("workloads", "",
		"comma-separated workload rows replacing the evaluation suite (built-ins, adversarial generators, trace:<path>; see -list-workloads)")
	listWorkloads := flag.Bool("list-workloads", false, "list every resolvable workload name and exit")
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of text tables")
	mdOut := flag.Bool("md", false, "emit the full evaluation as a markdown report (implies -exp all)")
	profiles := prof.Flags("trace")
	flag.Parse()

	// Every spec in the sweep is built deep inside internal/exp; the shard
	// count rides the lazily-read RC_SHARDS environment hook instead of
	// threading through every experiment. Results are bit-identical at any
	// value, so this changes wall-clock only.
	if *shards >= 0 {
		os.Setenv("RC_SHARDS", strconv.Itoa(*shards))
	}

	if *listPolicies {
		for _, name := range config.PolicyNames() {
			var cols []string
			for _, v := range config.VariantsForPolicy(name) {
				cols = append(cols, v.Name)
			}
			fmt.Printf("%-16s sweep columns: %s\n", name, strings.Join(cols, ", "))
		}
		return 0
	}
	if *listWorkloads {
		for _, n := range tracefeed.WorkloadNames() {
			fmt.Println(n)
		}
		return 0
	}

	// The sweep's columns: the paper's variants plus the policy-lab
	// presets, or just the named policy's columns with -policy.
	sweepVariants := config.SweepVariants()
	if *policyName != "" {
		sweepVariants = config.VariantsForPolicy(*policyName)
		if len(sweepVariants) == 0 {
			fmt.Fprintf(os.Stderr, "rcsweep: policy %q has no sweep columns (registered: %s)\n",
				*policyName, strings.Join(config.PolicyNames(), ", "))
			return 1
		}
	}

	if err := profiles.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "rcsweep: %v\n", err)
		return 1
	}
	defer func() {
		if err := profiles.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "rcsweep: %v\n", err)
		}
	}()

	scale := exp.QuickScale()
	if *full {
		scale = exp.FullScale()
	}
	if *ops > 0 {
		scale.MeasureOps = *ops
	}
	scale.Seed = *seed
	scale.Workers = *workers
	if *workloadsFlag != "" {
		for _, name := range strings.Split(*workloadsFlag, ",") {
			p, err := tracefeed.ResolveWorkload(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rcsweep: %v\n", err)
				return 1
			}
			scale.Profiles = append(scale.Profiles, p)
		}
	}

	pol := exp.DefaultPolicy()
	pol.Timeout = *timeout
	pol.FailFast = *failFast || !*keepGoing
	pol.Verify = *verifyRuns
	if *remote != "" {
		// The server executes (and retries) each cell; rcsweep's workers
		// become concurrent HTTP clients of it. -timeout still rides along
		// on each submitted spec. A -remote endpoint that speaks the
		// discovery protocol is a cluster: cells fan out by fingerprint to
		// the owning node, with re-dispatch to the ring successor when a
		// node dies mid-sweep.
		run, kind := cluster.RunFunc(context.Background(), *remote,
			func(format string, args ...any) { fmt.Fprintf(os.Stderr, "rcsweep: "+format+"\n", args...) })
		fmt.Fprintf(os.Stderr, "rcsweep: -remote %s: %s\n", *remote, kind)
		pol.Run = run
		pol.Retry = false
	}
	ctx := context.Background()

	failed := 0
	note := func(summary string) {
		if summary != "" {
			failed++
			fmt.Fprint(os.Stderr, summary)
		}
	}

	if *mdOut {
		s16 := exp.RunSweepCtx(ctx, config.Chip16(), sweepVariants, scale, pol)
		s64 := exp.RunSweepCtx(ctx, config.Chip64(), sweepVariants, scale, pol)
		fmt.Print(exp.Markdown(s16, s64))
		note(s16.FailureSummary())
		note(s64.FailureSummary())
		if failed > 0 {
			return 1
		}
		return 0
	}

	chips := []config.Chip{config.Chip16(), config.Chip64()}
	switch *chipSel {
	case 0:
	case 16:
		chips = chips[:1]
	case 64:
		chips = chips[1:]
	case 256:
		chips = []config.Chip{config.Chip256()}
	default:
		fmt.Fprintln(os.Stderr, "rcsweep: -chip must be 16, 64 or 256")
		return 1
	}

	report := map[string]any{}
	emit := func(key string, v formatter) {
		if *jsonOut {
			report[key] = v
		} else {
			fmt.Println(v.Format())
		}
	}
	// emitErr surfaces an unavailable report without killing the sweep.
	emitErr := func(key string, v formatter, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcsweep: %s unavailable: %v\n", key, err)
			return
		}
		emit(key, v)
	}
	finish := func() int {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				fmt.Fprintf(os.Stderr, "rcsweep: %v\n", err)
				return 1
			}
		}
		if failed > 0 {
			return 1
		}
		return 0
	}

	want := func(name string) bool { return *which == "all" || *which == name }

	// Table 6 needs no simulation.
	if want("table6") {
		emit("table6", exp.Table6Compute())
	}
	if *which == "table6" {
		return finish()
	}

	// The extension experiments run their own sweeps.
	switch *which {
	case "load":
		for _, c := range chips {
			ls := exp.LoadSweepRun(c, []float64{0.5, 1, 2, 4, 8, 16}, scale.MeasureOps, pol)
			emit("load_"+c.Name, ls)
			note(exp.FormatFailures(ls.Failures))
		}
		return finish()
	case "ablate":
		for _, c := range chips {
			ac := exp.AblateCircuitsPerPort(c, []int{1, 2, 3, 5, 8}, scale.MeasureOps, pol)
			emit("ablate_circuits_"+c.Name, ac)
			note(exp.FormatFailures(ac.Failures))
			as := exp.AblateSlack(c, []int{0, 1, 2, 4, 8}, scale.MeasureOps, pol)
			emit("ablate_slack_"+c.Name, as)
			note(exp.FormatFailures(as.Failures))
		}
		return finish()
	case "scale":
		ss := exp.ScaleSweepRun([]int{4, 6, 8}, scale.MeasureOps, pol)
		emit("scale", ss)
		note(exp.FormatFailures(ss.Failures))
		return finish()
	case "compare":
		for _, c := range chips {
			cr := exp.CompareRun(c, scale.MeasureOps, pol)
			emit("compare_"+c.Name, cr)
			note(exp.FormatFailures(cr.Failures))
		}
		return finish()
	case "tail":
		for _, c := range chips {
			tl := exp.TailRun(c, scale.MeasureOps, pol)
			emit("tail_"+c.Name, tl)
			note(exp.FormatFailures(tl.Failures))
		}
		return finish()
	case "ci":
		for _, c := range chips {
			ci := exp.CIRun(c, []string{"Complete_NoAck", "SlackDelay_1_NoAck"}, 5, scale.MeasureOps, pol)
			emit("ci_"+c.Name, ci)
			note(exp.FormatFailures(ci.Failures))
		}
		return finish()
	}

	for _, c := range chips {
		t0 := time.Now()
		if !*jsonOut {
			fmt.Printf("==== %s chip (%d runs x %d ops/core) ====\n",
				c.Name, len(sweepVariants)*len(scale.Workloads()), scale.MeasureOps)
		}
		sweep := exp.RunSweepCtx(ctx, c, sweepVariants, scale, pol)
		if !*jsonOut {
			fmt.Printf("sweep finished in %v\n\n", time.Since(t0).Round(time.Millisecond))
		}

		big := c.Nodes() == 64 || len(chips) == 1
		if want("table1") && big {
			t1, err := exp.Table1From(sweep)
			emitErr("table1", t1, err)
		}
		if want("table5") && big {
			emit("table5", exp.Table5From(sweep, "Complete_NoAck"))
		}
		if want("fig6") {
			emit("fig6_"+c.Name, exp.Fig6From(sweep))
		}
		if want("fig7") {
			emit("fig7_"+c.Name, exp.Fig7From(sweep))
		}
		if want("fig8") {
			f8, err := exp.Fig8From(sweep)
			emitErr("fig8_"+c.Name, f8, err)
		}
		if want("fig9") {
			f9, err := exp.Fig9From(sweep)
			emitErr("fig9_"+c.Name, f9, err)
		}
		if want("fig10") && big {
			f10, err := exp.Fig10From(sweep, "SlackDelay_1_NoAck")
			emitErr("fig10", f10, err)
		}
		if *jsonOut && len(sweep.Failures) > 0 {
			report["failures_"+c.Name] = sweep.Failures
		}
		note(sweep.FailureSummary())
	}
	return finish()
}
