// Command covgate compares per-package test coverage against a committed
// baseline and fails on regressions beyond a margin. The baseline is the
// coverage at the time the gate was introduced (regenerate with -write
// when coverage improves or packages appear); the margin absorbs the
// jitter short-mode trimming introduces, so the gate catches "a change
// landed without tests", not formatting noise.
//
// The -pr input is the plain output of `go test -cover ./...`. Packages
// present in only one side are reported but never fail the gate, so adding
// a package does not require touching the baseline in the same commit.
//
// Usage:
//
//	go test -short -cover ./... | tee COVER_pr.txt
//	covgate -baseline COVERAGE_baseline.json -pr COVER_pr.txt
//	covgate -baseline COVERAGE_baseline.json -pr COVER_pr.txt -write   # regenerate
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// coverLine matches `ok <pkg> <time> coverage: <pct>% of statements`.
var coverLine = regexp.MustCompile(`^ok\s+(\S+)\s+\S+\s+coverage:\s+([0-9.]+)% of statements`)

func main() { os.Exit(run()) }

func run() int {
	baselinePath := flag.String("baseline", "COVERAGE_baseline.json", "committed per-package coverage baseline")
	prPath := flag.String("pr", "", "output of `go test -cover ./...` for the change under review")
	margin := flag.Float64("margin", 2.0, "allowed per-package drop in coverage points")
	write := flag.Bool("write", false, "rewrite the baseline from -pr instead of gating")
	flag.Parse()

	if *prPath == "" {
		fmt.Fprintln(os.Stderr, "covgate: -pr is required")
		return 2
	}
	pr, err := parseCover(*prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covgate: %v\n", err)
		return 2
	}
	if len(pr) == 0 {
		fmt.Fprintf(os.Stderr, "covgate: no coverage lines found in %s\n", *prPath)
		return 2
	}

	if *write {
		out, err := json.MarshalIndent(pr, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "covgate: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "covgate: %v\n", err)
			return 2
		}
		fmt.Printf("covgate: baseline %s rewritten with %d packages\n", *baselinePath, len(pr))
		return 0
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covgate: %v\n", err)
		return 2
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "covgate: parsing %s: %v\n", *baselinePath, err)
		return 2
	}

	var pkgs []string
	for pkg := range baseline {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	failed := 0
	for _, pkg := range pkgs {
		base := baseline[pkg]
		got, ok := pr[pkg]
		if !ok {
			fmt.Printf("covgate: %s missing from PR capture (baseline %.1f%%) — skipped\n", pkg, base)
			continue
		}
		switch {
		case got+*margin < base:
			fmt.Printf("covgate: FAIL %s: %.1f%% -> %.1f%% (drop %.1f > margin %.1f)\n",
				pkg, base, got, base-got, *margin)
			failed++
		case got < base:
			fmt.Printf("covgate: %s: %.1f%% -> %.1f%% (within margin)\n", pkg, base, got)
		}
	}
	for pkg, got := range pr {
		if _, ok := baseline[pkg]; !ok {
			fmt.Printf("covgate: new package %s at %.1f%% (not gated; add with -write)\n", pkg, got)
		}
	}
	if failed > 0 {
		fmt.Printf("covgate: %d package(s) regressed; if the drop is intended, regenerate with:\n"+
			"  go test -short -cover ./... | tee COVER_pr.txt && go run ./cmd/covgate -pr COVER_pr.txt -write\n", failed)
		return 1
	}
	fmt.Printf("covgate: %d packages within margin\n", len(pkgs))
	return 0
}

// parseCover extracts {package: percent} from `go test -cover` output.
func parseCover(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := coverLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = pct
	}
	return out, sc.Err()
}
