// Command goldengen regenerates the determinism fingerprints pinned in
// internal/chip/golden_test.go: one line per (chip, workload, variant) cell
// of the golden matrix, in Go composite-literal form ready to paste into
// the goldenMatrix table.
//
// The pinned numbers were captured from the seed (pre-activity-tracking)
// engine; regenerate them only when simulated behaviour changes on
// purpose, never to paper over an unexplained diff.
package main

import (
	"flag"
	"fmt"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	_ "reactivenoc/internal/tracefeed" // registers the adversarial generators
	"reactivenoc/internal/workload"
)

// bigVariants trims the 256-core section to the distinct-mechanism cells:
// a full 16x16 sweep of every variant would dominate the suite's runtime
// without covering new code paths.
var bigVariants = map[string]bool{
	"Baseline": true, "Complete_NoAck": true, "Reuse_NoAck": true,
}

// hotspotVariants is the adversarial-generator section: the hotspot rows
// pin the circuit mechanisms against single-tile contended traffic on the
// small chip (mirrored sequential-vs-parallel by the golden suite).
var hotspotVariants = map[string]bool{
	"Baseline": true, "Reuse_NoAck": true, "Timed_NoAck": true,
}

func main() {
	only := flag.String("only", "", "emit only cells whose chip/workload/variant contains this substring")
	flag.Parse()

	emit := func(c config.Chip, wn string, v config.Variant) {
		if *only != "" && !strings.Contains(c.Name+"/"+wn+"/"+v.Name, *only) {
			return
		}
		w, ok := workload.ByName(wn)
		if !ok {
			panic("unknown workload " + wn)
		}
		spec := chip.DefaultSpec(c, v, w)
		spec.WarmupOps = 600
		spec.MeasureOps = 2400
		spec.Seed = 7
		r, err := chip.Run(spec)
		if err != nil {
			panic(err)
		}
		total, reqs := r.Msgs.Totals()
		fmt.Printf("{%q, %q, %q, %d, %d, %d, %d, %.0f, %d, %.0f, %d, %.0f, %d},\n",
			c.Name, wn, v.Name,
			r.Cycles, total, reqs,
			r.Lat.Requests.Network.N(), r.Lat.Requests.Network.Sum(),
			r.Lat.CircuitReplies.Network.N(), r.Lat.CircuitReplies.Network.Sum(),
			r.Lat.OtherReplies.Network.N(), r.Lat.OtherReplies.Network.Sum(),
			r.Events.LinkFlits)
	}

	for _, c := range []config.Chip{config.Chip16(), config.Chip64(), config.Chip256()} {
		for _, wn := range []string{"micro", "canneal"} {
			if c.Nodes() > 64 && wn != "micro" {
				continue
			}
			for _, v := range config.Variants() {
				if c.Nodes() > 64 && !bigVariants[v.Name] {
					continue
				}
				emit(c, wn, v)
			}
		}
	}
	for _, v := range config.Variants() {
		if hotspotVariants[v.Name] {
			emit(config.Chip16(), "hotspot", v)
		}
	}
	// SDM section: the lane sweep under uniform traffic pins the
	// serialization model at every lane count; the hotspot cell pins the
	// lane-exhaustion fallback under single-tile contention.
	for _, v := range config.SDMVariants() {
		emit(config.Chip16(), "micro", v)
	}
	for _, v := range config.SDMVariants() {
		if v.Name == "SDM" {
			emit(config.Chip16(), "hotspot", v)
		}
	}
}
