module reactivenoc

go 1.22
