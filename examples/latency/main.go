// Latency anatomy: reproduce the Figure-7 view on one workload — how each
// mechanism version changes the network and queueing latency of requests,
// circuit-eligible replies and the remaining replies.
package main

import (
	"fmt"
	"os"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func main() {
	app := "fluidanimate"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	w, ok := workload.ByName(app)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", app)
		os.Exit(1)
	}
	c := config.Chip64()
	fmt.Printf("message latency anatomy, %s on the %s chip\n\n", w.Name, c.Name)
	fmt.Printf("%-20s %14s %20s %18s\n", "variant", "requests", "circuit replies", "other replies")

	for _, v := range config.KeyVariants() {
		r := chip.MustRun(chip.DefaultSpec(c, v, w))
		fmt.Printf("%-20s %8.1f +%4.1f %14.1f +%4.1f %12.1f +%4.1f\n",
			v.Name,
			r.Lat.Requests.Network.Mean(), r.Lat.Requests.Queueing.Mean(),
			r.Lat.CircuitReplies.Network.Mean(), r.Lat.CircuitReplies.Queueing.Mean(),
			r.Lat.OtherReplies.Network.Mean(), r.Lat.OtherReplies.Queueing.Mean())
	}
	fmt.Println("\n(cycles: network + queueing; circuit replies drop from ~5 to ~2 cycles per hop,")
	fmt.Println(" and NoAck variants collapse the other-reply class by eliminating L1_DATA_ACKs)")
}
