// Tail visualization: the distribution of data-reply network latency,
// baseline vs complete Reactive Circuits, as ASCII histograms. Circuits do
// not just shift the mean from ~5 to ~2 cycles per hop — they collapse the
// distribution's tail, because a reply on a circuit can never block.
package main

import (
	"fmt"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func main() {
	c := config.Chip64()
	w, _ := workload.ByName("fluidanimate")
	fmt.Printf("data-reply network latency distribution: %s on the %s chip\n", w.Name, c.Name)

	for _, name := range []string{"Baseline", "Complete_NoAck"} {
		v, _ := config.ByName(name)
		r := chip.MustRun(chip.DefaultSpec(c, v, w))
		h := r.Lat.CircuitReplyHist
		if h == nil {
			fmt.Printf("\n%s: no data replies\n", name)
			continue
		}
		fmt.Printf("\n%s (mean %.1f, p95 %d, p99 %d cycles)\n",
			name, h.Mean(), h.Percentile(0.95), h.Percentile(0.99))
		var peak int64 = 1
		for i := 0; i < 32; i++ {
			if n := h.Bucket(i); n > peak {
				peak = n
			}
		}
		for i := 0; i < 32; i++ {
			n := h.Bucket(i)
			if n == 0 {
				continue
			}
			bar := strings.Repeat("#", int(n*48/peak)+1)
			fmt.Printf("  %3d-%3d cy %6d %s\n", i*4, i*4+3, n, bar)
		}
		if o := h.Overflow(); o > 0 {
			fmt.Printf("  >128 cy    %6d\n", o)
		}
	}
}
