// Quickstart: build a 16-core chip, run the same workload on the baseline
// network and on complete Reactive Circuits with eliminated
// acknowledgements, and compare cycles, latency, energy and router area.
package main

import (
	"fmt"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func main() {
	c := config.Chip16()
	w := workload.Micro()

	baselineVariant, _ := config.ByName("Baseline")
	circuitsVariant, _ := config.ByName("Complete_NoAck")

	fmt.Printf("running %s on %s...\n", w.Name, c.Name)
	baseline := chip.MustRun(chip.DefaultSpec(c, baselineVariant, w))
	circuits := chip.MustRun(chip.DefaultSpec(c, circuitsVariant, w))

	fmt.Printf("\n%-28s %12s %12s\n", "", "baseline", "reactive")
	fmt.Printf("%-28s %12d %12d\n", "execution cycles", baseline.Cycles, circuits.Cycles)
	fmt.Printf("%-28s %12.1f %12.1f\n", "data-reply latency (cycles)",
		baseline.Lat.CircuitReplies.Network.Mean(), circuits.Lat.CircuitReplies.Network.Mean())
	fmt.Printf("%-28s %12.0f %12.0f\n", "network energy (pJ)",
		baseline.Energy.Total(), circuits.Energy.Total())

	fmt.Printf("\nReactive Circuits: %+.2f%% speedup, %.1f%% network energy saved, %.1f%% smaller routers\n",
		(circuits.Speedup(baseline)-1)*100,
		(1-circuits.Energy.Total()/baseline.Energy.Total())*100,
		circuits.AreaSavings*100)
	st := circuits.Circ
	fmt.Printf("%d circuits built, %d acknowledgements eliminated, %.0f%% of replies rode a circuit\n",
		st.CircuitsBuilt, st.EliminatedAcks, 100*st.OutcomeFraction(1))
}
