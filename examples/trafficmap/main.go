// Traffic map: render per-router link utilization on the 64-node mesh as
// an ASCII heat map, baseline vs complete Reactive Circuits. The map makes
// two things visible at once: the XY/YX dimension-order hot rows/columns
// around the four memory-controller tiles, and how little the circuit
// mechanism changes *where* traffic flows (it changes how fast replies
// cross each router, not their paths).
//
// This example drives the mid-level API directly (coherence.System +
// cpu.Core) instead of chip.Run, to show how the pieces compose.
package main

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/cpu"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/workload"
)

func main() {
	c := config.Chip64()
	w, _ := workload.ByName("canneal")
	fmt.Printf("link utilization heat map: %s on the %s chip\n", w.Name, c.Name)

	for _, name := range []string{"Baseline", "Complete_NoAck"} {
		v, _ := config.ByName(name)
		m := mesh.New(c.Width, c.Height)
		sys := coherence.NewSystem(m, v.Opts, c.MCs)

		// Warm the caches and wire one core per tile.
		for i := 0; i < m.Nodes(); i++ {
			for _, reg := range w.Regions(i) {
				for l := 0; l < reg.Lines; l++ {
					tile := mesh.NodeID(-1)
					if l < reg.L1Lines {
						tile = mesh.NodeID(i)
					}
					sys.Prefill(reg.Start+cache.Addr(l*64), tile, reg.Exclusive)
				}
			}
		}
		cores := make([]*cpu.Core, m.Nodes())
		for i := range cores {
			cores[i] = cpu.New(i, sys.L1s[i], w.Stream(i, 1), 6000)
		}

		kernel := sim.NewKernel()
		kernel.Register(sys)
		kernel.Register(tickAll(cores))
		kernel.RunUntil(func() bool {
			for _, core := range cores {
				if !core.Done() {
					return false
				}
			}
			return !sys.Busy()
		}, 10_000_000)

		// Per-router total forwarded flits, normalized to the hottest.
		heat := make([]int64, m.Nodes())
		var max int64 = 1
		for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
			r := sys.Net.Router(id)
			var sum int64
			for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
				sum += r.FlitsOut(d)
			}
			heat[id] = sum
			if sum > max {
				max = sum
			}
		}

		fmt.Printf("\n%s (cycles: %d, hottest router forwarded %d flits)\n", name, kernel.Now(), max)
		shades := []byte(" .:-=+*#%@")
		for y := 0; y < c.Height; y++ {
			fmt.Print("  ")
			for x := 0; x < c.Width; x++ {
				v := heat[m.Node(x, y)] * int64(len(shades)-1) / max
				fmt.Printf("%c%c", shades[v], shades[v])
			}
			fmt.Println()
		}
	}
	fmt.Println("\nthe dimension-order hot spots (memory-controller rows/columns) persist;")
	fmt.Println("circuits change per-hop latency, not paths — so the map barely moves")
}

type tickAll []*cpu.Core

func (t tickAll) Tick(now sim.Cycle) {
	for _, c := range t {
		c.Tick(now)
	}
}
