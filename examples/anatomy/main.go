// Transaction anatomy: dissect a single L1 miss on an otherwise idle chip,
// variant by variant — the clearest view of what a reactive circuit does.
// The request crosses each router in five cycles; with a circuit built, its
// reply comes back at two cycles per hop, and with NoAck the L1_DATA_ACK
// disappears entirely.
package main

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

func main() {
	c := config.Chip64()
	m := mesh.New(c.Width, c.Height)
	src := m.Node(0, 0)
	// A line whose home bank is the far corner: the longest path.
	far := m.Node(c.Width-1, c.Height-1)
	addr := cache.Addr(uint64(far) * 64)

	fmt.Printf("one read miss: core %d -> L2 bank %d (%d hops) on an idle %s chip\n\n",
		src, far, m.Hops(src, far), c.Name)
	fmt.Printf("%-20s %10s %16s %14s\n", "variant", "miss", "reply in network", "acks on wire")

	for _, v := range config.KeyVariants() {
		sys := coherence.NewSystem(m, v.Opts, c.MCs)
		// Warm the line into the home bank so the miss is a clean
		// request-reply pair without a memory fetch.
		sys.Prefill(addr, -1, false)

		kernel := sim.NewKernel()
		kernel.Register(sys)
		done := false
		sys.L1s[src].SetMissHandler(func(now sim.Cycle) { done = true })
		if sys.L1s[src].Access(addr, false, 0) {
			panic("expected a miss")
		}
		missStart := kernel.Now()
		kernel.RunUntil(func() bool { return done }, 10000)
		missCycles := kernel.Now() - missStart
		kernel.RunUntil(func() bool { return !sys.Busy() }, 10000)

		fmt.Printf("%-20s %7d cy %13.0f cy %14d\n",
			v.Name, missCycles,
			sys.Lat.CircuitReplies.Network.Mean(),
			sys.Msgs.Network[coherence.MsgDataAck])
	}

	fmt.Println("\nthe request needs 5 cycles per hop; a complete circuit returns the")
	fmt.Println("5-flit data reply at 2 cycles per hop, and NoAck variants retire the")
	fmt.Println("transaction without the acknowledgement message")
}
