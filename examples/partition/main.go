// Partitioned chip: the usage model the paper's Section 5.5 anticipates for
// large core counts — the chip is split into isolated partitions (Tilera's
// Multicore Hardwall), each running its own application with Reactive
// Circuits working independently inside the partition, so the mechanism
// never needs to scale to the full chip diameter.
//
// This example models a 64-core chip as four hardwalled 16-core partitions
// (no traffic crosses a partition boundary, exactly what the hardwall
// enforces) and compares per-partition circuit behaviour against the same
// applications sharing a monolithic 64-core mesh.
package main

import (
	"fmt"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func main() {
	apps := []string{"fluidanimate", "canneal", "barnes", "x264"}
	variant, _ := config.ByName("Complete_NoAck")
	baseline, _ := config.ByName("Baseline")

	fmt.Println("four hardwalled 16-core partitions, Reactive Circuits per partition:")
	fmt.Printf("%-14s %10s %10s %12s %12s\n", "partition app", "speedup", "circuits", "failed", "avg path ok")
	var worstFail float64
	for _, name := range apps {
		w, _ := workload.ByName(name)
		p := config.Chip16()
		b := chip.MustRun(chip.DefaultSpec(p, baseline, w))
		r := chip.MustRun(chip.DefaultSpec(p, variant, w))
		fail := r.Circ.OutcomeFraction(2)
		if fail > worstFail {
			worstFail = fail
		}
		fmt.Printf("%-14s %+9.2f%% %9.1f%% %11.1f%% %12s\n",
			name, (r.Speedup(b)-1)*100,
			100*r.Circ.OutcomeFraction(1), 100*fail, "short paths")
	}

	fmt.Println("\nsame four apps on a monolithic 64-core mesh (one app per quadrant's cores,")
	fmt.Println("shared network, longer paths, more conflicts):")
	w, _ := workload.ByName("canneal")
	c := config.Chip64()
	b := chip.MustRun(chip.DefaultSpec(c, baseline, w))
	r := chip.MustRun(chip.DefaultSpec(c, variant, w))
	fmt.Printf("%-14s %+9.2f%% %9.1f%% %11.1f%%\n",
		"monolithic", (r.Speedup(b)-1)*100,
		100*r.Circ.OutcomeFraction(1), 100*r.Circ.OutcomeFraction(2))

	fmt.Printf("\npartitioning keeps every circuit inside a 4x4 region: the worst per-partition\n"+
		"failure rate above is %.1f%%, so the mechanism's scalability concern disappears,\n"+
		"as Section 5.5 argues.\n", 100*worstFail)
}
