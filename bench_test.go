// Benchmarks regenerating each table and figure of the paper's evaluation
// at reduced scale (fewer workloads, shorter runs); cmd/rcsweep runs the
// full versions. Custom metrics carry the headline numbers: speedup_pct,
// energy_ratio, area savings, circuit shares.
package reactivenoc_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/serve"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/workload"
)

// benchScale keeps the per-figure macro-benchmarks to a few seconds each.
func benchScale() exp.Scale {
	return exp.Scale{MeasureOps: 3000, Apps: 4, Seed: 1}
}

func benchVariants(names ...string) []config.Variant {
	out := make([]config.Variant, 0, len(names))
	for _, n := range names {
		v, ok := config.ByName(n)
		if !ok {
			panic("unknown variant " + n)
		}
		out = append(out, v)
	}
	return out
}

// BenchmarkTable1MessageMix reproduces the Table 1 message population on
// the 64-core chip: the request/reply split and the per-type shares.
func BenchmarkTable1MessageMix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), benchVariants("Baseline"), benchScale())
		t1, err := exp.Table1From(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t1.ReplyFrac*100, "reply_pct")
		b.ReportMetric(t1.EligibleFrac*100, "eligible_reply_pct")
	}
}

// BenchmarkTable5CircuitOrdinals reproduces the reservation-ordinal
// distribution for complete circuits with eliminated acks, 64 cores.
func BenchmarkTable5CircuitOrdinals(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), benchVariants("Complete_NoAck"), benchScale())
		t5 := exp.Table5From(s, "Complete_NoAck")
		b.ReportMetric(t5.Ordinals[0]*100, "first_circuit_pct")
		b.ReportMetric(t5.Failed*100, "failed_pct")
	}
}

// BenchmarkTable6RouterArea evaluates the analytical router-area model for
// every mechanism at both chip sizes.
func BenchmarkTable6RouterArea(b *testing.B) {
	b.ReportAllocs()
	var t6 *exp.Table6
	for i := 0; i < b.N; i++ {
		t6 = exp.Table6Compute()
	}
	b.ReportMetric(t6.Rows[0].Savings64*100, "fragmented64_pct")
	b.ReportMetric(t6.Rows[1].Savings64*100, "complete64_pct")
	b.ReportMetric(t6.Rows[2].Savings64*100, "timed64_pct")
}

// BenchmarkFig6CircuitOutcomes reproduces the reply-outcome breakdown
// (circuit / failed / undone / scrounger / not-eligible / eliminated).
func BenchmarkFig6CircuitOutcomes(b *testing.B) {
	b.ReportAllocs()
	vs := benchVariants("Baseline", "Fragmented", "Complete_NoAck", "Timed_NoAck", "SlackDelay_1_NoAck", "Ideal")
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), vs, benchScale())
		f := exp.Fig6From(s)
		for _, row := range f.Rows {
			if row.Variant == "Complete_NoAck" {
				b.ReportMetric(row.Circuit*100, "circuit_pct")
				b.ReportMetric(row.Eliminated*100, "eliminated_pct")
			}
			if row.Variant == "Timed_NoAck" {
				b.ReportMetric(row.Undone*100, "timed_undone_pct")
			}
		}
	}
}

// BenchmarkFig7MessageLatency reproduces the latency anatomy per message
// class for the key variants.
func BenchmarkFig7MessageLatency(b *testing.B) {
	b.ReportAllocs()
	vs := benchVariants("Baseline", "Complete_NoAck")
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), vs, benchScale())
		f := exp.Fig7From(s)
		base, rc := f.Rows[0], f.Rows[1]
		b.ReportMetric(base.CircRepNet, "baseline_reply_cycles")
		b.ReportMetric(rc.CircRepNet, "circuit_reply_cycles")
		b.ReportMetric(base.CircRepNet/rc.CircRepNet, "reply_latency_ratio")
	}
}

// BenchmarkFig8NetworkEnergy reproduces the normalized network energy.
func BenchmarkFig8NetworkEnergy(b *testing.B) {
	b.ReportAllocs()
	vs := benchVariants("Baseline", "Fragmented", "Complete_NoAck")
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), vs, benchScale())
		f, err := exp.Fig8From(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range f.Rows {
			switch row.Variant {
			case "Fragmented":
				b.ReportMetric(row.Mean, "fragmented_energy_ratio")
			case "Complete_NoAck":
				b.ReportMetric(row.Mean, "noack_energy_ratio")
			}
		}
	}
}

// BenchmarkFig9Speedup reproduces the average speedup of the key variants.
func BenchmarkFig9Speedup(b *testing.B) {
	b.ReportAllocs()
	vs := benchVariants("Baseline", "Complete_NoAck", "SlackDelay_1_NoAck", "Ideal")
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), vs, benchScale())
		f, err := exp.Fig9From(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range f.Rows {
			switch row.Variant {
			case "Complete_NoAck":
				b.ReportMetric((row.Mean-1)*100, "noack_speedup_pct")
			case "SlackDelay_1_NoAck":
				b.ReportMetric((row.Mean-1)*100, "slackdelay_speedup_pct")
			case "Ideal":
				b.ReportMetric((row.Mean-1)*100, "ideal_speedup_pct")
			}
		}
	}
}

// BenchmarkFig10PerAppSpeedup reproduces the per-application speedups of
// timed circuits with slack and delay on the 64-core chip.
func BenchmarkFig10PerAppSpeedup(b *testing.B) {
	b.ReportAllocs()
	vs := benchVariants("Baseline", "SlackDelay_1_NoAck")
	for i := 0; i < b.N; i++ {
		s := exp.RunSweep(config.Chip64(), vs, benchScale())
		f, err := exp.Fig10From(s, "SlackDelay_1_NoAck")
		if err != nil {
			b.Fatal(err)
		}
		best, worst := 0.0, 10.0
		for _, v := range f.Speedup {
			if v > best {
				best = v
			}
			if v < worst {
				worst = v
			}
		}
		b.ReportMetric((best-1)*100, "best_app_speedup_pct")
		b.ReportMetric((worst-1)*100, "worst_app_speedup_pct")
	}
}

// BenchmarkLoadThreshold reproduces the Section-5.5 congestion argument:
// circuit failures vs offered load, untimed vs timed.
func BenchmarkLoadThreshold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ls := exp.LoadSweepRun(config.Chip64(), []float64{1, 8}, 2500, exp.DefaultPolicy())
		heavy := ls.Rows[len(ls.Rows)-1]
		b.ReportMetric(heavy.Failed["Complete_NoAck"]*100, "untimed_fail_pct")
		b.ReportMetric(heavy.Failed["SlackDelay_1_NoAck"]*100, "timed_fail_pct")
	}
}

// BenchmarkAblationCircuitsPerPort sweeps the paper's experimentally chosen
// five-entries-per-port constant.
func BenchmarkAblationCircuitsPerPort(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ab := exp.AblateCircuitsPerPort(config.Chip64(), []int{1, 5}, 2500, exp.DefaultPolicy())
		b.ReportMetric(ab.Rows[0].StorageFailed*100, "one_entry_storage_fail_pct")
		b.ReportMetric(ab.Rows[1].StorageFailed*100, "five_entry_storage_fail_pct")
	}
}

// BenchmarkScalability measures circuit construction across chip sizes.
func BenchmarkScalability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss := exp.ScaleSweepRun([]int{4, 8}, 2500, exp.DefaultPolicy())
		b.ReportMetric(ss.Rows[0].Circuit["Complete_NoAck"]*100, "circuit16_pct")
		b.ReportMetric(ss.Rows[1].Circuit["Complete_NoAck"]*100, "circuit64_pct")
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the substrates.
// ---------------------------------------------------------------------------

// reportCycleRate attaches the host-throughput metrics every simulation
// benchmark quotes: simulated cycles per wall-clock second and its inverse.
func reportCycleRate(b *testing.B, simCycles int64) {
	secs := b.Elapsed().Seconds()
	if secs > 0 && simCycles > 0 {
		b.ReportMetric(float64(simCycles)/secs, "sim_cycles/sec")
		b.ReportMetric(secs*1e9/float64(simCycles), "ns/sim_cycle")
	}
}

// BenchmarkNetworkCycle measures the raw simulation rate of an idle-ish
// 64-router mesh carrying light random traffic, with every router and NI
// activity-tracked — the low-load regime the quiescence scheduler targets.
func BenchmarkNetworkCycle(b *testing.B) {
	b.ReportAllocs()
	m := mesh.New(8, 8)
	net := noc.NewNetwork(noc.BaselineConfig(m), nil, nil)
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(*noc.Message, sim.Cycle) {})
	}
	rng := sim.NewRNG(1)
	kernel := sim.NewKernel()
	net.Register(kernel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%25 == 0 {
			src := mesh.NodeID(rng.Intn(m.Nodes()))
			dst := mesh.NodeID(rng.Intn(m.Nodes()))
			net.Send(&noc.Message{Src: src, Dst: dst, VN: noc.VNRequest, Size: 1}, kernel.Now())
		}
		kernel.Step()
	}
	reportCycleRate(b, kernel.Now())
}

// BenchmarkBusyNetworkCycle measures the saturated steady state: a closed
// population of messages permanently in flight across the 64-router mesh,
// each delivery recycling its message and injecting a replacement drawn from
// the pool. After warm-up this loop must not allocate — the 0 allocs/op
// figure here is the tentpole claim of the recycling work, and the CI bench
// gate pins it.
func BenchmarkBusyNetworkCycle(b *testing.B) {
	b.ReportAllocs()
	m := mesh.New(8, 8)
	net := noc.NewNetwork(noc.BaselineConfig(m), nil, nil)
	rng := sim.NewRNG(2)
	kernel := sim.NewKernel()
	inject := func(now sim.Cycle) {
		msg := net.NewMessage()
		msg.Src = mesh.NodeID(rng.Intn(m.Nodes()))
		msg.Dst = mesh.NodeID(rng.Intn(m.Nodes()))
		msg.VN = rng.Intn(noc.NumVNs)
		msg.Size = 1
		if rng.Bool(0.5) {
			msg.Size = 5
		}
		net.Send(msg, now)
	}
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(msg *noc.Message, now sim.Cycle) {
			net.FreeMessage(msg)
			inject(now)
		})
	}
	net.Register(kernel)
	for i := 0; i < 96; i++ {
		inject(0)
	}
	kernel.Run(500) // reach steady state and fill the pools
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel.Step()
	}
	reportCycleRate(b, int64(b.N))
}

// BenchmarkKernelStep isolates the scheduler's per-cycle overhead on a
// fully quiescent 128-component mesh: sparse mode pays only the active-set
// scan, dense mode pays a no-op Tick per component — the gap is what
// activity tracking buys before any simulation work happens.
func BenchmarkKernelStep(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []struct {
		name  string
		dense bool
	}{{"sparse", false}, {"dense", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			m := mesh.New(8, 8)
			net := noc.NewNetwork(noc.BaselineConfig(m), nil, nil)
			for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
				net.NI(id).SetReceiver(func(*noc.Message, sim.Cycle) {})
			}
			kernel := sim.NewKernel()
			kernel.SetDense(mode.dense)
			net.Register(kernel)
			kernel.Run(4) // let the initial active flags settle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.Step()
			}
			reportCycleRate(b, int64(b.N))
		})
	}
}

// BenchmarkChipRun measures a full 16-core end-to-end run.
func BenchmarkChipRun(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip16()
	v, _ := config.ByName("Complete_NoAck")
	w := workload.Micro()
	var simCycles int64
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = 3000
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkChipRunSDM is BenchmarkChipRun on the lane-sliced SDM fabric:
// per-lane circuit tables, lane-paced bypass and the deferred teardown
// queue are all on the hot path here. The CI bench gate pins its
// sim_cycles/sec so lane bookkeeping cannot quietly tax the router's
// inner loop.
func BenchmarkChipRunSDM(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip16()
	v, _ := config.ByName("SDM")
	w := workload.Micro()
	var simCycles int64
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = 3000
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkLargeMesh measures a sequential 256-core (16×16) end-to-end
// run — the scaling point the parallel engine targets. Shards is pinned to
// 1 so the number is the sequential engine regardless of RC_SHARDS;
// BenchmarkChipRunParallel is the identical run sharded, and the ratio of
// their sim_cycles/sec is the engine's speedup (EXPERIMENTS.md tabulates
// it across shard counts and mesh sizes).
func BenchmarkLargeMesh(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip256()
	v, _ := config.ByName("Complete_NoAck")
	w := workload.Micro()
	var simCycles int64
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = 3000
		spec.Shards = 1
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkChipRunParallel is BenchmarkLargeMesh on the 8-shard parallel
// engine: bit-identical results (the golden suite asserts it), wall-clock
// divided across the row bands. The CI bench gate pins its sim_cycles/sec,
// so an engine change that quietly serialises the shards — or a barrier
// that stops scaling — fails CI even though every test still passes.
func BenchmarkChipRunParallel(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip256()
	v, _ := config.ByName("Complete_NoAck")
	w := workload.Micro()
	var simCycles int64
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = 3000
		spec.Shards = 8
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkTraceReplay is BenchmarkChipRun driven from a recorded trace
// instead of the synthetic generator: the setup records one run to a
// temporary file, the timed loop replays it. Replay is a pre-decoded
// slice walk, so it must not be slower than synthesis — the CI bench
// gate pins its sim_cycles/sec and allocs/op alongside the other chip
// runs.
func BenchmarkTraceReplay(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip16()
	v, _ := config.ByName("Complete_NoAck")
	path := filepath.Join(b.TempDir(), "bench.rctf")
	rec := chip.DefaultSpec(c, v, workload.Micro())
	rec.MeasureOps = 3000
	rec.RecordTrace = path
	chip.MustRun(rec)
	p, _, err := tracefeed.LoadWorkload(path)
	if err != nil {
		b.Fatal(err)
	}
	var simCycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, p)
		spec.MeasureOps = 3000
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkChipRunVerify is BenchmarkChipRun with the invariant oracles
// armed (Spec.Verify, default cadence): the ratio between the two is the
// price of paranoia, quoted in DESIGN.md. Only the plain variant is pinned
// by the CI bench gate.
func BenchmarkChipRunVerify(b *testing.B) {
	b.ReportAllocs()
	c := config.Chip16()
	v, _ := config.ByName("Complete_NoAck")
	w := workload.Micro()
	var simCycles int64
	for i := 0; i < b.N; i++ {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = 3000
		spec.Verify = true
		r := chip.MustRun(spec)
		simCycles += r.SimCycles
		b.ReportMetric(float64(r.Cycles), "cycles")
	}
	reportCycleRate(b, simCycles)
}

// BenchmarkServeSubmitCached measures the service's cache-hit fast path:
// submitting a spec whose results are already memoized. This is the whole
// admission round trip — fingerprint, shard lookup, job bookkeeping —
// without a simulation.
func BenchmarkServeSubmitCached(b *testing.B) {
	b.ReportAllocs()
	srv, err := serve.New(serve.Config{Workers: 2, QueueDepth: 8})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	v, _ := config.ByName("Complete_NoAck")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 200
	spec.MeasureOps = 500
	if _, err := srv.Submit(spec); err != nil {
		b.Fatal(err)
	}
	for srv.Metrics().Value("serve/jobs_done") == 0 {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := srv.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Cached {
			b.Fatal("submission missed the cache")
		}
	}
}

// BenchmarkServeSubmitMiss measures admission for a never-seen spec:
// fingerprint, miss in every shard index, in-flight registration, and the
// queue handoff. Workers never start, so no simulation time leaks in.
func BenchmarkServeSubmitMiss(b *testing.B) {
	b.ReportAllocs()
	srv, err := serve.New(serve.Config{Workers: 1, QueueDepth: b.N + 1})
	if err != nil {
		b.Fatal(err)
	}
	v, _ := config.ByName("Complete_NoAck")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 200
	spec.MeasureOps = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i + 1) // a fresh fingerprint every iteration
		if _, err := srv.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Queued-but-never-run jobs are expected debris here; drop them.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// BenchmarkCircuitReservation measures the reservation fast path: a
// request-reply pair on complete circuits, end to end.
func BenchmarkCircuitReservation(b *testing.B) {
	b.ReportAllocs()
	opts := core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5}
	m := mesh.New(8, 8)
	mgr := core.NewManager(opts, m)
	net := noc.NewNetwork(core.NetConfigFor(m, opts), mgr, mgr)
	mgr.Bind(net)
	delivered := 0
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(msg *noc.Message, now sim.Cycle) {
			if msg.VN == noc.VNRequest {
				rep := &noc.Message{
					Src: msg.Dst, Dst: msg.Src, VN: noc.VNReply,
					Size: 5, Block: msg.Block,
				}
				net.Send(rep, now)
			} else {
				delivered++
			}
		})
	}
	kernel := sim.NewKernel()
	kernel.Register(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := &noc.Message{
			Src: 0, Dst: 63, VN: noc.VNRequest, Size: 1,
			WantCircuit: true, Block: uint64(i+1) * 64,
		}
		net.Send(req, kernel.Now())
		want := delivered + 1
		kernel.RunUntil(func() bool { return delivered >= want }, 10000)
	}
}
