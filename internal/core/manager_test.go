package core

import (
	"testing"
	"testing/quick"

	"reactivenoc/internal/mesh"
)

func TestCompleteCircuitEndToEnd(t *testing.T) {
	r := newRig(t, 4, 4, completeOpts(), 7)
	src, dst := r.m.Node(0, 0), r.m.Node(2, 2)
	r.request(src, dst, 5)
	r.runQuiet(2000)

	if len(r.replies) != 1 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
	rep := r.replies[0]
	if !rep.UseCircuit {
		t.Fatal("reply did not ride its circuit")
	}
	want := circuitLatency(r.m, dst, src, 5)
	if got := rep.DeliveredAt - rep.InjectedAt; got != want {
		t.Fatalf("circuit reply latency %d, want %d", got, want)
	}
	st := &r.mgr.Stats
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("outcome circuit count %d", st.Replies[OutcomeCircuit])
	}
	if st.CircuitsBuilt != 1 {
		t.Fatalf("circuits built %d", st.CircuitsBuilt)
	}
	if st.Ordinals[0] == 0 {
		t.Fatal("no first-circuit reservations recorded")
	}
}

func TestCircuitFasterThanPacket(t *testing.T) {
	// The same transaction through the baseline network must be slower.
	rc := newRig(t, 4, 4, completeOpts(), 7)
	rb := newRig(t, 4, 4, Options{}, 7)
	src, dst := mesh.NodeID(0), mesh.NodeID(15)
	rc.request(src, dst, 5)
	rb.request(src, dst, 5)
	rc.runQuiet(2000)
	rb.runQuiet(2000)
	lc := rc.replies[0].DeliveredAt - rc.replies[0].InjectedAt
	lb := rb.replies[0].DeliveredAt - rb.replies[0].InjectedAt
	if lc >= lb {
		t.Fatalf("circuit latency %d not faster than packet %d", lc, lb)
	}
	if want := packetLatency(rb.m, dst, src, 5); lb != want {
		t.Fatalf("baseline reply latency %d, want %d", lb, want)
	}
}

func TestReplyFollowsReverseRouterPath(t *testing.T) {
	// YX reply routing must retrace the XY request path: a circuit reply
	// crosses hops+1 routers, visible as exactly that many crossbar
	// traversals beyond the request's.
	r := newRig(t, 4, 4, completeOpts(), 7)
	src, dst := r.m.Node(0, 1), r.m.Node(3, 3)
	r.request(src, dst, 1)
	r.runQuiet(2000)
	hops := r.m.Hops(src, dst)
	ev := r.net.Events()
	// request: hops+1 traversals buffered; reply: hops+1 bypass traversals.
	if want := int64(2 * (hops + 1)); ev.XbarTraversals != want {
		t.Fatalf("xbar traversals %d, want %d", ev.XbarTraversals, want)
	}
	// The reply never used a buffer.
	if ev.BufWrites != int64(hops+1) {
		t.Fatalf("buffer writes %d, want %d (request only)", ev.BufWrites, hops+1)
	}
}

func TestConflictRuleBlocksSecondCircuit(t *testing.T) {
	// Two circuits whose replies need different input ports but the same
	// output port at some router cannot coexist (Section 4.2).
	//
	// On a 3x3 mesh: request A from (0,2) to (2,0); its reply (YX) goes
	// south to (2,2)... pick overlapping paths instead on a 1-D mesh:
	// A: 0 -> 3 (reply rides 3->2->1->0), B: 1 -> 3 (reply 3->2->1).
	// At router 1, A's reply arrives East and leaves West; B's reply
	// arrives East and leaves Local — no conflict. At router 2 both
	// arrive East... use perpendicular paths on 3x3:
	// A: (0,0) -> (2,1): request XY goes E,E,S; reply YX from (2,1):
	// N, W, W. At router (2,0) the reply enters South, leaves West.
	// B: (1,0) -> (2,0): request E; reply at (2,0) enters Local? No —
	// reply from (2,0) to (1,0) enters via injection (Local), leaves
	// West. Different input (Local vs South), same output (West) at
	// router (2,0): B must fail while A's circuit stands.
	r := newRig(t, 3, 3, completeOpts(), 300) // long proc: circuits held
	a := r.request(r.m.Node(0, 0), r.m.Node(2, 1), 5)
	r.run(60) // let A's reservation complete
	b := r.request(r.m.Node(1, 0), r.m.Node(2, 0), 5)
	r.runQuiet(5000)

	if a.BuildFailed {
		t.Fatal("first circuit should build")
	}
	if !b.BuildFailed {
		t.Fatal("second circuit must fail: different inputs, same output at (2,0)")
	}
	st := &r.mgr.Stats
	if st.ReserveFailedConflict == 0 {
		t.Fatal("conflict not recorded")
	}
	if st.Replies[OutcomeCircuit] != 1 || st.Replies[OutcomeFailed] != 1 {
		t.Fatalf("outcomes: circuit=%d failed=%d, want 1/1",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeFailed])
	}
	// Both replies delivered regardless.
	if len(r.replies) != 2 {
		t.Fatalf("replies delivered: %d", len(r.replies))
	}
}

func TestFailedCircuitPrefixUndone(t *testing.T) {
	// After a conflict, the losing request's already-reserved prefix must
	// be torn down by the credit walk, freeing those ports for others.
	r := newRig(t, 4, 1, completeOpts(), 500)
	// A: 3 -> 0. Reply path 0->1->2->3 (east). Circuit entries at every
	// router; at router 0 input Local, out East... B: 2 -> 0: reply
	// enters router 0 Local?? — A reply: from 0 to 3: at router 0 enters
	// Local leaves East; B reply from 0 to 2: enters Local leaves East —
	// same input, ok by rule. Need different inputs same output:
	// C: request 3 -> 1. Reply from 1 to 3: at router 1 enters Local,
	// leaves East. A's reply at router 1: enters West, leaves East.
	// Different input (Local vs West), same output (East): conflict at
	// router 1.
	a := r.request(3, 0, 5)
	r.run(80)
	c := r.request(3, 1, 5)
	r.run(80)
	if a.BuildFailed {
		t.Fatal("A should have built")
	}
	if !c.BuildFailed {
		t.Fatal("C should conflict with A at router 1")
	}
	// C reserved router 3 (its first hop... request path 3->2->1: routers
	// 3, 2, then fails at 1). After the undo walk, routers 3 and 2 must
	// hold only A's entries.
	r.run(40)
	for id := mesh.NodeID(1); id <= 3; id++ {
		tb := r.mgr.tables[id]
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range tb.inputs[d] {
				if e.built && e.dest == c.Src && e.block == c.Block {
					t.Fatalf("stale entry of failed circuit at router %d port %v", id, d)
				}
			}
		}
	}
	r.runQuiet(5000)
	if len(r.replies) != 2 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
}

func TestUndoForwardedRequest(t *testing.T) {
	// The L2-forwards-to-owner pattern: the circuit is undone before use
	// and the data comes from another node as a normal reply.
	r := newRig(t, 4, 4, completeOpts(), 7)
	req := r.request(0, 15, 5)
	r.forwardTo[req.Block] = mesh.NodeID(10)
	r.runQuiet(3000)

	st := &r.mgr.Stats
	if st.CircuitsUndone != 1 {
		t.Fatalf("circuits undone %d, want 1", st.CircuitsUndone)
	}
	if st.Replies[OutcomeUndone] != 1 {
		t.Fatalf("undone replies %d, want 1", st.Replies[OutcomeUndone])
	}
	if len(r.replies) != 1 || r.replies[0].UseCircuit {
		t.Fatal("forwarded reply must travel without a circuit")
	}
	// After the undo walk, no entry of this circuit survives anywhere.
	r.run(100)
	for id := range r.mgr.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range r.mgr.tables[id].inputs[d] {
				if e.built && e.block == req.Block {
					t.Fatalf("stale entry at router %d after undo", id)
				}
			}
		}
	}
}

func TestManySimultaneousCircuits(t *testing.T) {
	// Light all-to-one traffic: circuits sharing input ports are fine as
	// long as outputs don't clash; everything must deliver.
	r := newRig(t, 4, 4, completeOpts(), 7)
	for src := mesh.NodeID(0); int(src) < r.m.Nodes(); src++ {
		if src != 5 {
			r.request(src, 5, 5)
		}
	}
	r.runQuiet(20000)
	if len(r.replies) != 15 {
		t.Fatalf("delivered %d replies, want 15", len(r.replies))
	}
	st := &r.mgr.Stats
	total := st.Replies[OutcomeCircuit] + st.Replies[OutcomeFailed] + st.Replies[OutcomeUndone]
	if total != 15 {
		t.Fatalf("classified %d replies, want 15", total)
	}
	if st.Replies[OutcomeCircuit] == 0 {
		t.Fatal("no circuit succeeded under light load")
	}
}

func TestFragmentedPartialCircuit(t *testing.T) {
	// With only 2 reserved VCs per input port, a third overlapping
	// circuit gets a partial path but its reply still rides fragments
	// and everything delivers.
	r := newRig(t, 6, 1, fragmentedOpts(), 400)
	a := r.request(5, 0, 5)
	r.run(80)
	b := r.request(5, 1, 5)
	r.run(80)
	c := r.request(5, 2, 5)
	r.run(80)
	if a.BuildFailed || b.BuildFailed || c.BuildFailed {
		t.Fatal("fragmented circuits never set BuildFailed")
	}
	path := r.m.Hops(5, 2) + 1
	if c.ReservedHops >= path {
		t.Fatalf("third circuit reserved %d of %d routers; expected a partial path", c.ReservedHops, path)
	}
	r.runQuiet(8000)
	if len(r.replies) != 3 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
	st := &r.mgr.Stats
	if st.Replies[OutcomeFailed] == 0 {
		t.Fatal("partial fragmented circuit should classify as failed")
	}
	if st.Replies[OutcomeCircuit] == 0 {
		t.Fatal("complete fragmented circuits should classify as circuit")
	}
}

func TestFragmentedReplyLatencyBetweenCircuitAndPacket(t *testing.T) {
	r := newRig(t, 5, 1, fragmentedOpts(), 7)
	r.request(4, 0, 5)
	r.runQuiet(3000)
	rep := r.replies[0]
	got := rep.DeliveredAt - rep.InjectedAt
	if want := circuitLatency(r.m, 0, 4, 5); got != want {
		t.Fatalf("complete fragmented circuit latency %d, want %d", got, want)
	}
}

func TestScroungerRidesForeignCircuit(t *testing.T) {
	opts := completeOpts()
	opts.Reuse = true
	// Circuit from 0 (its reply source) to 3 on a 1-D mesh; a plain
	// reply from 0 to 3 can borrow it... make the scrounger go further:
	// to node 3 while the circuit ends at 2.
	r := newRig(t, 4, 1, opts, 600) // owner reply held back by long proc
	r.request(2, 0, 5)              // circuit will start at 0, end at 2
	r.run(80)                       // circuit fully built, owner reply pending
	s := r.plainReply(0, 3, 1)
	r.runQuiet(8000)

	st := &r.mgr.Stats
	if st.ScroungerRides != 1 {
		t.Fatalf("scrounger rides %d, want 1", st.ScroungerRides)
	}
	if st.Replies[OutcomeScrounger] != 1 {
		t.Fatalf("scrounger outcome count %d", st.Replies[OutcomeScrounger])
	}
	if s.Dst != 3 {
		t.Fatalf("scrounger final destination %d, want 3", s.Dst)
	}
	// Both the scrounger and the owner's reply must arrive.
	if len(r.replies) != 2 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatal("owner reply should still ride its circuit after the scrounger")
	}
}

func TestScroungerLatencyAccounting(t *testing.T) {
	opts := completeOpts()
	opts.Reuse = true
	r := newRig(t, 4, 1, opts, 600)
	r.request(2, 0, 5)
	r.run(80)
	s := r.plainReply(0, 3, 1)
	start := s.EnqueuedAt
	r.runQuiet(8000)
	total := (s.DeliveredAt - s.InjectedAt + s.NetCredit) +
		(s.InjectedAt - s.EnqueuedAt + s.QueueCredit)
	if total <= 0 {
		t.Fatalf("scrounger total latency %d", total)
	}
	if s.DeliveredAt <= start {
		t.Fatal("scrounger delivery time not monotonic")
	}
}

func TestIdealAllRepliesRideCircuits(t *testing.T) {
	opts := Options{Mechanism: MechIdeal}
	r := newRig(t, 4, 4, opts, 7)
	for src := mesh.NodeID(0); int(src) < r.m.Nodes(); src++ {
		if src != 5 {
			r.request(src, 5, 5)
		}
	}
	r.runQuiet(20000)
	st := &r.mgr.Stats
	if st.Replies[OutcomeCircuit] != 15 {
		t.Fatalf("ideal: %d circuit replies, want 15 (failed=%d)",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeFailed])
	}
	if st.ReserveFailedConflict != 0 || st.ReserveFailedStorage != 0 {
		t.Fatal("ideal reservation must never fail")
	}
}

func TestTimedCircuitCalibration(t *testing.T) {
	// The heart of Section 4.7: with an undisturbed request and the exact
	// processing delay, the basic timed circuit (zero slack) must be
	// reserved, met with zero waiting, and ridden.
	for _, dims := range [][2]int{{4, 1}, {4, 4}, {8, 8}} {
		r := newRig(t, dims[0], dims[1], timedOpts(0, 0, 0), 7)
		src := r.m.Node(0, 0)
		dst := r.m.Node(dims[0]-1, dims[1]-1)
		r.request(src, dst, 5)
		r.runQuiet(4000)
		st := &r.mgr.Stats
		if st.Replies[OutcomeCircuit] != 1 {
			t.Fatalf("%dx%d: timed circuit not ridden (failed=%d undone=%d)",
				dims[0], dims[1], st.Replies[OutcomeFailed], st.Replies[OutcomeUndone])
		}
		if st.WaitedForWindow != 0 {
			t.Fatalf("%dx%d: reply waited %d cycles; estimate is miscalibrated",
				dims[0], dims[1], st.WaitedForWindow)
		}
		rep := r.replies[0]
		if want := circuitLatency(r.m, dst, src, 5); rep.DeliveredAt-rep.InjectedAt != want {
			t.Fatalf("%dx%d: timed circuit latency %d, want %d",
				dims[0], dims[1], rep.DeliveredAt-rep.InjectedAt, want)
		}
	}
}

func TestTimedMissedWindowUndone(t *testing.T) {
	// If the reply is ready later than estimated (e.g. an L2 miss), the
	// timed circuit must be undone and the reply takes the pipeline.
	r := newRig(t, 4, 1, timedOpts(0, 0, 0), 7)
	req := r.request(3, 0, 5)
	// Lie about the processing delay: the responder will take 50 cycles
	// but the estimate said 7.
	req.ExpectedProcDelay = 7
	r.proc = 50
	r.runQuiet(3000)
	st := &r.mgr.Stats
	if st.Replies[OutcomeUndone] != 1 {
		t.Fatalf("missed window should be undone (circuit=%d failed=%d undone=%d)",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeFailed], st.Replies[OutcomeUndone])
	}
	rep := r.replies[0]
	if rep.UseCircuit {
		t.Fatal("missed reply must not ride the circuit")
	}
	if want := packetLatency(r.m, 0, 3, 5); rep.DeliveredAt-rep.InjectedAt != want {
		t.Fatalf("missed reply latency %d, want packet %d", rep.DeliveredAt-rep.InjectedAt, want)
	}
}

func TestTimedJitterFailsWithoutSlack(t *testing.T) {
	// Cross traffic delays the timed request between routers, so its
	// optimistic schedule breaks mid-walk with zero slack — the paper's
	// "fails as soon as the request suffers any delay (loses any VC or
	// switch arbitration)" — while slack absorbs the jitter.
	run := func(slack int) *Stats {
		r := newRig(t, 5, 1, timedOpts(slack, 0, 0), 7)
		for i := 0; i < 3; i++ {
			r.plainRequest(3, 0, 5) // congest the westward request VN
			r.plainRequest(4, 0, 5) // and queue ahead of the timed request
		}
		r.run(4)
		r.request(4, 0, 5)
		r.runQuiet(8000)
		return &r.mgr.Stats
	}
	noSlack := run(0)
	if noSlack.Replies[OutcomeCircuit] != 0 {
		t.Fatal("a jittered request with zero slack should not yield a usable circuit")
	}
	withSlack := run(8)
	if withSlack.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("slack should recover the circuit: circuit=%d failed=%d undone=%d",
			withSlack.Replies[OutcomeCircuit], withSlack.Replies[OutcomeFailed],
			withSlack.Replies[OutcomeUndone])
	}
}

func TestTimedWindowsAllowPortSharing(t *testing.T) {
	// The conflicting-circuit scenario of TestConflictRuleBlocksSecond:
	// with timed reservations and disjoint windows, both circuits build.
	r := newRig(t, 3, 3, timedOpts(2, 2, 0), 7)
	a := r.request(r.m.Node(0, 0), r.m.Node(2, 1), 5)
	r.run(60)
	b := r.request(r.m.Node(1, 0), r.m.Node(2, 0), 5)
	r.runQuiet(4000)
	if a.BuildFailed || b.BuildFailed {
		t.Fatalf("timed circuits should coexist in disjoint slots (a=%v b=%v)",
			a.BuildFailed, b.BuildFailed)
	}
	st := &r.mgr.Stats
	if st.Replies[OutcomeCircuit] != 2 {
		t.Fatalf("both replies should ride: circuit=%d undone=%d failed=%d",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeUndone], st.Replies[OutcomeFailed])
	}
}

func TestPostponedAlwaysWaits(t *testing.T) {
	r := newRig(t, 4, 1, timedOpts(0, 0, 2), 7)
	r.request(3, 0, 5)
	r.runQuiet(4000)
	st := &r.mgr.Stats
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("postponed circuit not ridden (undone=%d failed=%d)",
			st.Replies[OutcomeUndone], st.Replies[OutcomeFailed])
	}
	if st.WaitedForWindow == 0 {
		t.Fatal("postponed replies must wait for their slot even when ready")
	}
	// The wait shows up as queueing latency on the reply.
	rep := r.replies[0]
	if rep.InjectedAt-rep.EnqueuedAt == 0 {
		t.Fatal("postponed reply should show queueing delay")
	}
}

func TestPostponedImmuneToRequestJitter(t *testing.T) {
	// Postponed reservations pin the schedule at the first router, so
	// the cross traffic that kills basic timed circuits does not break
	// the walk as long as the postponement budget covers the jitter.
	r := newRig(t, 5, 1, timedOpts(0, 0, 10), 7)
	for i := 0; i < 4; i++ {
		r.plainRequest(3, 0, 5)
	}
	r.run(4)
	r.request(4, 0, 5)
	r.runQuiet(8000)
	st := &r.mgr.Stats
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("postponed should survive jitter: circuit=%d failed=%d undone=%d",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeFailed], st.Replies[OutcomeUndone])
	}
}

func TestNoteEliminatedAck(t *testing.T) {
	r := newRig(t, 2, 2, completeOpts(), 7)
	r.mgr.NoteEliminatedAck(0, 0)
	r.mgr.NoteEliminatedAck(0, 0)
	st := &r.mgr.Stats
	if st.EliminatedAcks != 2 || st.Replies[OutcomeEliminated] != 2 {
		t.Fatal("eliminated acks miscounted")
	}
	if st.ReplyTotal() != 2 {
		t.Fatalf("reply total %d", st.ReplyTotal())
	}
	if f := st.OutcomeFraction(OutcomeEliminated); f != 1 {
		t.Fatalf("eliminated fraction %v", f)
	}
}

func TestHasCircuit(t *testing.T) {
	r := newRig(t, 4, 1, completeOpts(), 300)
	req := r.request(3, 0, 5)
	r.run(80)
	complete, ok := r.mgr.HasCircuit(0, 3, req.Block, r.kernel.Now())
	if !complete || !ok {
		t.Fatal("built circuit not visible via HasCircuit")
	}
	if c, _ := r.mgr.HasCircuit(0, 3, 0xdead, r.kernel.Now()); c {
		t.Fatal("phantom circuit reported")
	}
	r.runQuiet(4000)
	if c, _ := r.mgr.HasCircuit(0, 3, req.Block, r.kernel.Now()); c {
		t.Fatal("consumed circuit still reported")
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		completeOpts(),
		fragmentedOpts(),
		{Mechanism: MechIdeal},
		timedOpts(0, 0, 0),
		timedOpts(2, 0, 0),
		timedOpts(2, 2, 0),
		timedOpts(0, 0, 1),
		func() Options { o := completeOpts(); o.NoAck = true; return o }(),
		func() Options { o := completeOpts(); o.Reuse = true; return o }(),
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid options %d rejected: %v", i, err)
		}
	}
	invalid := []Options{
		{NoAck: true},
		{Mechanism: MechFragmented, MaxCircuitsPerPort: 2, NoAck: true},
		{Mechanism: MechFragmented, MaxCircuitsPerPort: 2, Timed: true},
		{Mechanism: MechFragmented},
		{Mechanism: MechComplete},
		{Mechanism: MechComplete, MaxCircuitsPerPort: 5, SlackPerHop: 1},
		{Mechanism: MechComplete, MaxCircuitsPerPort: 5, Timed: true, DelayPerHop: 1},
		{Mechanism: MechComplete, MaxCircuitsPerPort: 5, Timed: true, PostponePerHop: 1, SlackPerHop: 1},
		{Mechanism: MechIdeal, Timed: true},
		{Mechanism: Mechanism(99)},
	}
	for i, o := range invalid {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid options %d accepted", i)
		}
	}
}

func TestMechanismAndOutcomeStrings(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechNone: "baseline", MechFragmented: "fragmented",
		MechComplete: "complete", MechIdeal: "ideal",
	} {
		if m.String() != want {
			t.Errorf("Mechanism %d String %q", m, m.String())
		}
	}
	for o, want := range map[Outcome]string{
		OutcomeCircuit: "circuit", OutcomeFailed: "failed", OutcomeUndone: "undone",
		OutcomeScrounger: "scrounger", OutcomeNotEligible: "not-eligible",
		OutcomeEliminated: "eliminated",
	} {
		if o.String() != want {
			t.Errorf("Outcome %d String %q", o, o.String())
		}
	}
}

// TestRoundTripClosedForm is the end-to-end latency property: for any
// source/destination pair on any mesh, an uncontended transaction's request
// takes exactly 5 cycles/hop and its circuit reply exactly 2 cycles/hop.
func TestRoundTripClosedForm(t *testing.T) {
	check := func(rawW, rawSrc, rawDst uint8) bool {
		w := 2 + int(rawW%5) // meshes from 2x2 to 6x6
		r := newRig(t, w, w, completeOpts(), 7)
		src := mesh.NodeID(int(rawSrc) % r.m.Nodes())
		dst := mesh.NodeID(int(rawDst) % r.m.Nodes())
		if src == dst {
			return true
		}
		req := r.request(src, dst, 5)
		r.runQuiet(5000)
		if len(r.replies) != 1 {
			return false
		}
		rep := r.replies[0]
		reqOK := req.DeliveredAt-req.InjectedAt == packetLatency(r.m, src, dst, 1)
		repOK := rep.DeliveredAt-rep.InjectedAt == circuitLatency(r.m, dst, src, 5)
		return reqOK && repOK
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAuditQuiescentCleanAndDirty(t *testing.T) {
	r := newRig(t, 4, 4, completeOpts(), 7)
	r.request(0, 15, 5)
	r.runQuiet(3000)
	if err := r.mgr.AuditQuiescent(r.kernel.Now()); err != nil {
		t.Fatalf("clean run failed the audit: %v", err)
	}
	// Forge an orphan entry: the audit must flag it.
	r.mgr.tables[3].insert(mesh.East,
		entry{built: true, dest: 1, block: 0x40, out: mesh.West, winEnd: noWindow}, 5, 0)
	if err := r.mgr.AuditQuiescent(r.kernel.Now()); err == nil {
		t.Fatal("leaked entry not detected")
	}
}

func TestFragmentedUndoClearsGappedCircuit(t *testing.T) {
	// A partially built fragmented circuit that the protocol undoes
	// (forward-to-owner) must not leak entries beyond its gaps — the
	// regression the quiescence audit originally caught.
	r := newRig(t, 6, 1, fragmentedOpts(), 400)
	a := r.request(5, 0, 5)
	r.run(80)
	bm := r.request(5, 1, 5)
	r.run(80)
	// The third request's circuit will be partial (reserved VCs exhausted
	// on the shared hops) and the responder will forward it, undoing the
	// partial circuit before any reply exists.
	r.forwardTo[r.blockSeq+64] = mesh.NodeID(4)
	c := r.request(5, 2, 5)
	r.run(80)
	if c.ReservedHops >= r.m.Hops(5, 2)+1 {
		t.Fatal("third circuit should be partial for this test")
	}
	_ = a
	_ = bm
	r.runQuiet(8000)
	if err := r.mgr.AuditQuiescent(r.kernel.Now()); err != nil {
		t.Fatalf("gapped undo leaked state: %v", err)
	}
}

func TestPlainReplyNotEligible(t *testing.T) {
	r := newRig(t, 4, 1, completeOpts(), 7)
	r.plainReply(0, 3, 1)
	r.runQuiet(2000)
	st := &r.mgr.Stats
	if st.Replies[OutcomeNotEligible] != 1 {
		t.Fatalf("plain reply not classified as not-eligible: %+v", st.Replies)
	}
}

func TestScroungerChainThenOwner(t *testing.T) {
	// Several scroungers borrow the same circuit back to back; the owner
	// still rides afterwards and everything is released.
	opts := completeOpts()
	opts.Reuse = true
	r := newRig(t, 4, 1, opts, 2000) // owner reply held for a long time
	r.request(2, 0, 5)               // circuit 0 -> 2
	r.run(80)
	for i := 0; i < 3; i++ {
		r.plainReply(0, 3, 1)
		r.run(60)
	}
	r.runQuiet(20000)
	st := &r.mgr.Stats
	if st.ScroungerRides == 0 {
		t.Fatal("no scrounger rides")
	}
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("owner did not ride after scroungers: %+v", st.Replies)
	}
	if len(r.replies) != 4 {
		t.Fatalf("delivered %d replies, want 4", len(r.replies))
	}
	if err := r.mgr.AuditQuiescent(r.kernel.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestIdealUndoClearsWholePath(t *testing.T) {
	r := newRig(t, 4, 4, Options{Mechanism: MechIdeal}, 7)
	req := r.request(0, 15, 5)
	r.forwardTo[req.Block] = mesh.NodeID(5)
	r.runQuiet(4000)
	if r.mgr.Stats.CircuitsUndone != 1 {
		t.Fatalf("undone %d", r.mgr.Stats.CircuitsUndone)
	}
	for id := range r.mgr.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range r.mgr.tables[id].inputs[d] {
				if e.built && e.block == req.Block {
					t.Fatalf("ideal undo left an entry at router %d", id)
				}
			}
		}
	}
	if err := r.mgr.AuditQuiescent(r.kernel.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerAccessors(t *testing.T) {
	r := newRig(t, 2, 2, completeOpts(), 7)
	if r.mgr.Options().Mechanism != MechComplete {
		t.Fatal("Options accessor")
	}
	if r.mgr.BypassBuffered() {
		t.Fatal("complete circuits are bufferless")
	}
	for _, m := range []Mechanism{MechFragmented, MechIdeal, MechProbe} {
		mg := &Manager{opts: Options{Mechanism: m}, pol: mustPolicyFor(Options{Mechanism: m})}
		if !mg.BypassBuffered() {
			t.Errorf("%v should buffer bypass flits", m)
		}
	}
	if r.mgr.DumpCircuits(0) != "no live circuits\n" {
		t.Fatal("empty dump")
	}
	// A slow responder keeps the circuit alive long enough to observe.
	r2 := newRig(t, 2, 2, completeOpts(), 500)
	r2.request(0, 3, 5)
	r2.run(60)
	if r2.mgr.DumpCircuits(r2.kernel.Now()) == "no live circuits\n" {
		t.Fatal("live circuit not dumped")
	}
	r2.runQuiet(4000)
}
