package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// completeFamily is the shared behaviour of every all-or-nothing policy:
// the complete mechanism itself, the ideal upper bound (which overrides
// reservation and teardown) and the profiled hybrid (which filters flows
// before delegating here). One failed router fails the whole circuit.
type completeFamily struct{ basePolicy }

// Reserve installs this router's reversed entry, applying the timed-window
// machinery when enabled; any rejection fails the whole circuit.
func (completeFamily) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	mg.reserveComplete(id, msg, in, out, w, now)
}

// Confirm finalizes an all-or-nothing walk: the record is complete exactly
// when no router failed, and timed records carry the accumulated injection
// window.
func (completeFamily) Confirm(mg *Manager, ni mesh.NodeID, msg *noc.Message, rec *record, w *walk) {
	rec.complete = !msg.BuildFailed
	rec.failed = msg.BuildFailed
	rec.injectVC = mg.circuitVC()
	if rec.complete {
		mg.st(ni).CircuitsBuilt++
	}
	if mg.opts.Timed && rec.complete {
		rec.timed = true
		rec.injStart, rec.injEnd = w.injLo, w.injHi
	}
}

// Inject rides the reply on its own circuit (observing timed windows and
// riding scroungers), or falls back to the shared scrounge/classify path.
func (completeFamily) Inject(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	key := circKey{dest: msg.Dst, block: msg.Block}
	rec := mg.regs[ni][key]
	if rec == nil {
		return mg.injectFallback(ni, msg, now)
	}
	if rec.failed {
		delete(mg.regs[ni], key)
		mg.classify(ni, msg, OutcomeFailed)
		return now
	}
	if rec.inUse {
		return now + 1 // a scrounger is riding; wait for it to clear
	}
	if rec.timed {
		if now > rec.injEnd {
			// Missed the slot (cache delays, blocked lines): undo the
			// circuit and use the normal pipeline (Section 4.7).
			delete(mg.regs[ni], key)
			mg.st(ni).CircuitsUndone++
			mg.classify(ni, msg, OutcomeUndone)
			if mg.tracer != nil {
				mg.tracer.Record(now, trace.CircuitUndone, msg.ID, ni,
					fmt.Sprintf("missed window [%d,%d]", rec.injStart, rec.injEnd))
			}
			return now
		}
		if now < rec.injStart {
			mg.st(ni).WaitedForWindow++
			return rec.injStart
		}
	}
	delete(mg.regs[ni], key)
	msg.UseCircuit = true
	msg.InjectVC = rec.injectVC
	msg.CircDest = msg.Dst
	msg.CircBlock = msg.Block
	mg.classify(ni, msg, OutcomeCircuit)
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.CircuitRide, msg.ID, ni,
			fmt.Sprintf("dest=%d block=%#x", msg.Dst, msg.Block))
	}
	return now
}

// Teardown reclaims an abandoned circuit with the default credit walk;
// timed entries instead self-expire when their finish counters run out.
func (p completeFamily) Teardown(mg *Manager, rec *record, now sim.Cycle) {
	if mg.opts.Timed {
		return
	}
	p.basePolicy.Teardown(mg, rec, now)
}

func (completeFamily) ConflictChecked() bool { return true }
func (completeFamily) RegistryChecked() bool { return true }
func (completeFamily) LeakChecked(o *Options) bool {
	return !o.Timed // timed entries self-expire; untimed must be accounted for
}

// completePolicy is the paper's complete-circuit mechanism (Section 4.2,
// second alternative): all-or-nothing reservation on an unbuffered reply
// circuit VC, optionally timed/slacked/delayed/postponed (Section 4.7).
type completePolicy struct{ completeFamily }

func (completePolicy) Name() string { return "complete" }

func (completePolicy) Validate(o *Options) error {
	if o.Mechanism != MechComplete {
		return fmt.Errorf("core: policy %q requires the complete mechanism", "complete")
	}
	if err := validateNotSpeculative(o); err != nil {
		return err
	}
	if o.MaxCircuitsPerPort <= 0 {
		return fmt.Errorf("core: complete circuits need MaxCircuitsPerPort > 0")
	}
	return validateTimed(o)
}

func (completePolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	cfg.ReplyCircuitVCs = 1
	cfg.CircuitVCUnbuffered = true
	cfg.RepRouting = mesh.RouteYX
}

// ---------------------------------------------------------------------------
// Reservation machinery shared by the complete family
// ---------------------------------------------------------------------------

func (mg *Manager) reserveComplete(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	if msg.BuildFailed {
		return // a failed all-or-nothing circuit reserves nothing further
	}
	tb := mg.tables[id]
	cvc := mg.circuitVC()

	winStart, winEnd := sim.Cycle(0), noWindow
	injLo, injHi := w.injLo, w.injHi
	if mg.opts.Timed {
		var ok bool
		winStart, winEnd, injLo, injHi, ok = mg.timedWindow(id, msg, out, in, w, now)
		if !ok {
			mg.failCircuit(id, msg, in, now, &mg.st(id).ReserveFailedConflict)
			return
		}
	} else if tb.conflict(out, in, winStart, winEnd, now) {
		mg.failCircuit(id, msg, in, now, &mg.st(id).ReserveFailedConflict)
		return
	}

	outVC := cvc
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: outVC, vc: cvc,
		winStart: winStart, winEnd: winEnd,
	}
	ins, ord := tb.insert(out, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		mg.failCircuit(id, msg, in, now, &mg.st(id).ReserveFailedStorage)
		return
	}
	if mg.fault != nil {
		if ins.timed() {
			if end, ok := mg.fault.TruncateWindow(id, ins.winStart, ins.winEnd, now); ok {
				ins.winEnd = end
			}
		}
		if mg.fault.FlipBuiltBit(id, now) {
			ins.built = false
		}
	}
	mg.noteOrdinal(id, ord)
	mg.net.EventsAt(id).CircuitWrites++
	w.injLo, w.injHi = injLo, injHi
	w.lastReserved = true
	if mg.tracer != nil {
		note := fmt.Sprintf("in=%v out=%v", out, in)
		if mg.opts.Timed {
			note += fmt.Sprintf(" window=[%d,%d]", winStart, winEnd)
		}
		mg.tracer.Record(now, trace.Reserve, msg.ID, id, note)
	}
}

// timedWindow computes this router's reservation window, applying the
// variant's slack, delay search and postponement, and intersecting the
// injection constraints accumulated along the path. inUnit is the input
// unit holding the new entry (the request's output port) and outPort the
// entry's output port (the request's input port).
func (mg *Manager) timedWindow(id mesh.NodeID, msg *noc.Message, inUnit, outPort mesh.Dir, w *walk, now sim.Cycle) (s, e, lo, hi sim.Cycle, ok bool) {
	h := sim.Cycle(mg.m.Hops(id, msg.Dst))
	size := sim.Cycle(msg.ExpectedReplySize)
	if size <= 0 {
		size = 1
	}
	H := sim.Cycle(mg.pathHops(msg))
	slackTot := sim.Cycle(mg.opts.SlackPerHop) * H
	delayTot := sim.Cycle(mg.opts.DelayPerHop) * H
	if delayTot > slackTot {
		delayTot = slackTot // delays must stay inside downstream slack
	}
	postTot := sim.Cycle(mg.opts.PostponePerHop) * H

	var base sim.Cycle
	if mg.opts.PostponePerHop > 0 {
		// Postponed circuits pin the reply's injection cycle at the
		// first router; every later router reserves the exact slot that
		// schedule implies, immune to request jitter.
		if !w.hasSched {
			head := now + (reqHopLatency+repHopLatency)*h + msg.ExpectedProcDelay +
				estimateOverhead + sim.Cycle(msg.Size-1)
			w.sched = head - repHopLatency*h - injectLead + postTot
			w.hasSched = true
		}
		base = w.sched + injectLead + repHopLatency*h
	} else {
		base = now + (reqHopLatency+repHopLatency)*h + msg.ExpectedProcDelay +
			estimateOverhead + sim.Cycle(msg.Size-1) + msg.AccumDelay
	}

	tb := mg.tables[id]
	maxDelta := delayTot - msg.AccumDelay
	if maxDelta < 0 {
		maxDelta = 0
	}
	for delta := sim.Cycle(0); delta <= maxDelta; delta++ {
		start := base + delta
		end := start + size - 1 + slackTot
		// Injection constraint from this router: the reply injected at
		// cycle t sees this router at t + injectLead + repHopLatency*h,
		// which must fall in [start, start+slackTot].
		cLo := start - repHopLatency*h - injectLead
		cHi := cLo + slackTot
		nLo, nHi := maxCycle(w.injLo, cLo), minCycle(w.injHi, cHi)
		if nLo <= nHi && !tb.conflict(inUnit, outPort, start, end, now) {
			msg.AccumDelay += delta
			return start, end, nLo, nHi, true
		}
		if mg.opts.DelayPerHop == 0 {
			break // no delay search in the basic/slack-only variants
		}
	}
	return 0, 0, 0, 0, false
}

// failCircuit marks an all-or-nothing reservation failed and tears down the
// prefix reserved so far. Non-timed prefixes are undone with credits
// walking toward the circuit destination; timed prefixes self-expire when
// their finish counters run out.
func (mg *Manager) failCircuit(id mesh.NodeID, msg *noc.Message, in mesh.Dir, now sim.Cycle, counter *int64) {
	msg.BuildFailed = true
	*counter++
	if mg.opts.Timed || in == mesh.Local {
		return
	}
	tok := &noc.UndoToken{Dest: msg.Src, Block: msg.Block}
	mg.net.Router(id).SendUndoCredit(in, tok, now)
}
