package core

import (
	"fmt"
	"strings"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// Policy is the first-class switching-policy seam: every circuit mechanism
// — the paper's variants and the post-paper policies from the related work
// — is one implementation of this interface, registered by name. The
// Manager owns the mechanism-independent state (router circuit tables, NI
// registries, reservation walks, statistics) and dispatches every
// variant-specific decision through its resolved Policy:
//
//   - Reserve runs at each router's VA stage, in parallel with the
//     request's VC allocation (the paper's key idea).
//   - Confirm finalizes the finished reservation walk into the NI registry
//     record the reply will consult.
//   - Inject steers a message about to leave its NI: ride the circuit,
//     wait for a timed slot, scrounge, or fall back to packet switching.
//   - Deliver intercepts message arrival before the generic paths (the
//     probe comparator consumes its setup flits here).
//   - Undo clears the reservation named by a teardown token at one router
//     and steers the undo walk onward.
//   - Teardown reclaims a built circuit's router entries when the
//     coherence protocol abandons it.
//
// The predicates scope the shared machinery: GapTolerant selects the
// bypass-miss behaviour, BypassBuffered whether circuit flits may wait in
// buffers, and ConflictChecked/RegistryChecked/LeakChecked which invariant
// oracles (internal/verify) apply to the policy's structures.
//
// Hook ordering follows the double-buffered simulation phases: Reserve and
// Undo fire during the router phase (compute on the current cycle's
// state), Inject and Deliver during the NI phase, and Confirm strictly
// after every Reserve of the same walk — a request's final router runs its
// VA stage before the NI delivers the tail flit.
type Policy interface {
	// Name is the registry key the policy was registered under.
	Name() string
	// Validate rejects option combinations the policy cannot honour.
	Validate(o *Options) error
	// NetConfig applies the policy's router microarchitecture (VC
	// inventory, routing, injection rules) to the baseline config.
	NetConfig(cfg *noc.NetConfig, o *Options)
	// Attach sizes per-manager policy state; called once from NewManager.
	Attach(mg *Manager)
	// DescribeMetrics registers policy-specific counters with the
	// sim.Registry scope the manager exports.
	DescribeMetrics(reg *sim.Registry)

	// Reserve installs this router's share of the reply circuit as the
	// request wins VC allocation. in/out are the request's ports.
	Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle)
	// Confirm finalizes the reservation walk into rec at the NI where the
	// reply will be injected.
	Confirm(mg *Manager, ni mesh.NodeID, msg *noc.Message, rec *record, w *walk)
	// Inject classifies and steers a message about to leave NI ni; it
	// returns the earliest cycle the message may be injected.
	Inject(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle
	// Deliver runs before the generic delivery paths. handled=false hands
	// the message to the shared record/scrounger logic; handled=true makes
	// deliver the final verdict (false consumes the message).
	Deliver(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) (handled, deliver bool)
	// Undo clears the reservation named by tok at router id and reports
	// which port the undo walk continues out of (ok=false stops it).
	Undo(mg *Manager, id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool)
	// UndoEligible reports whether a protocol-level Undo of rec counts as
	// tearing down a live circuit.
	UndoEligible(rec *record) bool
	// Teardown reclaims a built circuit's router entries.
	Teardown(mg *Manager, rec *record, now sim.Cycle)
	// Observe feeds every reply's final outcome back to the policy
	// (profiling policies learn from it; most ignore it). ni is the tile
	// where the classification fired — under the parallel engine the
	// policy must shard any mutable state it touches by it.
	Observe(mg *Manager, ni mesh.NodeID, msg *noc.Message, o Outcome)

	// GapTolerant: a reply expecting a circuit that finds no entry re-enters
	// the normal pipeline instead of violating an invariant.
	GapTolerant() bool
	// BypassBuffered: circuit flits may wait in router buffers.
	BypassBuffered() bool
	// ConflictChecked: the output-port construction rule applies, so the
	// circuit-table oracle must find no two inputs sharing an output.
	ConflictChecked() bool
	// RegistryChecked: NI records promise built entries along the whole
	// reply path, so the registry oracle may cross-check them.
	RegistryChecked() bool
	// LeakChecked: unclaimed built entries are leaks the online oracle may
	// flag (scoped by options — timed entries self-expire).
	LeakChecked(o *Options) bool
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var (
	policyFactories = map[string]func() Policy{}
	policyOrder     []string
)

// RegisterPolicy adds a switching policy under name. The factory returns a
// fresh instance per manager so stateful policies never share state across
// runs. Registration happens at init time; duplicates panic.
func RegisterPolicy(name string, factory func() Policy) {
	if name == "" || factory == nil {
		panic("core: RegisterPolicy needs a name and a factory")
	}
	if _, dup := policyFactories[name]; dup {
		panic("core: policy " + name + " registered twice")
	}
	policyFactories[name] = factory
	policyOrder = append(policyOrder, name)
}

// PolicyNames lists every registered policy in registration order.
func PolicyNames() []string {
	return append([]string(nil), policyOrder...)
}

func init() {
	RegisterPolicy("baseline", func() Policy { return baselinePolicy{} })
	RegisterPolicy("fragmented", func() Policy { return fragmentedPolicy{} })
	RegisterPolicy("complete", func() Policy { return completePolicy{} })
	RegisterPolicy("ideal", func() Policy { return idealPolicy{} })
	RegisterPolicy("probe-setup", func() Policy { return probePolicy{} })
	RegisterPolicy("profiled-hybrid", func() Policy { return &profiledPolicy{} })
	RegisterPolicy("dynamic-vc", func() Policy { return &dynVCPolicy{} })
	RegisterPolicy("sdm", func() Policy { return &sdmPolicy{} })
}

// PolicyFor resolves the policy an Options selects: the explicit Policy
// name when set, otherwise the mechanism's default implementation.
func PolicyFor(o Options) (Policy, error) {
	name := o.Policy
	if name == "" {
		switch o.Mechanism {
		case MechNone:
			name = "baseline"
		case MechFragmented:
			name = "fragmented"
		case MechComplete:
			name = "complete"
		case MechIdeal:
			name = "ideal"
		case MechProbe:
			name = "probe-setup"
		default:
			return nil, fmt.Errorf("core: unknown mechanism %d", o.Mechanism)
		}
	}
	f := policyFactories[name]
	if f == nil {
		return nil, fmt.Errorf("core: unknown policy %q (registered: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
	return f(), nil
}

// mustPolicyFor resolves a policy for options that already validated.
func mustPolicyFor(o Options) Policy {
	p, err := PolicyFor(o)
	if err != nil {
		panic(err)
	}
	return p
}

// ---------------------------------------------------------------------------
// Shared default behaviour
// ---------------------------------------------------------------------------

// basePolicy supplies the default hook implementations: the paper's
// reversed-entry undo walk, the credit-walk teardown, and conservative
// predicates. Concrete policies embed it and override what differs.
type basePolicy struct{}

func (basePolicy) Attach(*Manager)                    {}
func (basePolicy) DescribeMetrics(*sim.Registry)      {}
func (basePolicy) NetConfig(*noc.NetConfig, *Options) {}
func (basePolicy) Reserve(*Manager, mesh.NodeID, *noc.Message, mesh.Dir, mesh.Dir, *walk, sim.Cycle) {
}
func (basePolicy) Confirm(*Manager, mesh.NodeID, *noc.Message, *record, *walk) {}
func (basePolicy) Inject(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	return mg.injectFallback(ni, msg, now)
}
func (basePolicy) Deliver(*Manager, mesh.NodeID, *noc.Message, sim.Cycle) (bool, bool) {
	return false, true
}

// Undo clears the reversed entry the token names and continues out of the
// entry's output port — the default walk toward the circuit destination.
func (basePolicy) Undo(mg *Manager, id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	e := mg.tables[id].clear(in, tok.Dest, tok.Block, now)
	if e == nil {
		return 0, false
	}
	mg.net.EventsAt(id).CircuitWrites++
	return e.out, true
}

func (basePolicy) UndoEligible(rec *record) bool { return !rec.failed }

// Teardown clears the entry at the circuit's first router and sends an
// undo-credit walk down the reply path for the rest.
func (basePolicy) Teardown(mg *Manager, rec *record, now sim.Cycle) {
	if e := mg.tables[rec.src].clear(mesh.Local, rec.key.dest, rec.key.block, now); e != nil {
		mg.net.EventsAt(rec.src).CircuitWrites++
		if e.out != mesh.Local {
			tok := &noc.UndoToken{Dest: rec.key.dest, Block: rec.key.block}
			mg.net.Router(rec.src).SendUndoCredit(e.out, tok, now)
		}
	}
}

func (basePolicy) Observe(*Manager, mesh.NodeID, *noc.Message, Outcome) {}
func (basePolicy) GapTolerant() bool                       { return false }
func (basePolicy) BypassBuffered() bool                    { return false }
func (basePolicy) ConflictChecked() bool                   { return false }
func (basePolicy) RegistryChecked() bool                   { return false }
func (basePolicy) LeakChecked(*Options) bool               { return false }

// validateNotSpeculative is shared by every circuit policy: speculative
// routers are an alternative design, not an addition.
func validateNotSpeculative(o *Options) error {
	if o.SpeculativeRouter {
		return fmt.Errorf("core: speculative routers and circuits are alternative designs")
	}
	return nil
}

// validateTimed checks the Section 4.7 parameter rules (and that the
// parameters are absent when the policy is untimed).
func validateTimed(o *Options) error {
	if o.Timed {
		if o.SlackPerHop < 0 || o.DelayPerHop < 0 || o.PostponePerHop < 0 {
			return fmt.Errorf("core: negative timed parameters")
		}
		if o.DelayPerHop > 0 && o.SlackPerHop == 0 {
			return fmt.Errorf("core: delayed reservations require slack (Section 4.7)")
		}
		if o.PostponePerHop > 0 && (o.SlackPerHop > 0 || o.DelayPerHop > 0) {
			return fmt.Errorf("core: postponed circuits use exact windows, not slack/delay")
		}
	} else if o.SlackPerHop > 0 || o.DelayPerHop > 0 || o.PostponePerHop > 0 {
		return fmt.Errorf("core: slack/delay/postpone require Timed")
	}
	return nil
}

// orDefault substitutes def for an unset (zero or negative) knob.
func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
