package core

import (
	"math"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// noWindow marks a non-timed reservation, which holds its ports from
// construction until use or teardown.
const noWindow = sim.Cycle(math.MaxInt64)

// entry is one circuit reservation at a router input unit: the Figure-3
// fields (built bit B, destination identifier, cache-line address, output
// port) plus the reserved VCs and, for timed circuits, the window counters.
type entry struct {
	built bool
	dest  mesh.NodeID
	block uint64
	out   mesh.Dir
	// outVC is the virtual channel the reply occupies on the next link
	// (the VC reserved at the next reply-path router); -1 marks a
	// fragmented gap where the reply must re-enter the normal pipeline.
	outVC int
	// vc is the VC reserved at this input port (fragmented circuits).
	vc int
	// winStart/winEnd bound the flit arrival cycles of a timed
	// reservation; winEnd == noWindow means untimed.
	winStart, winEnd sim.Cycle
	// lane is the SDM lane the circuit holds on the output link (0 for
	// policies that do not divide links: the window rule arbitrates there).
	lane int
	// inUse is the message currently riding this entry.
	inUse *noc.Message
}

func (e *entry) timed() bool { return e.winEnd != noWindow }

// expired reports whether a timed entry's finish counter has run out; the
// slot self-invalidates and can be reclaimed without an undo walk.
func (e *entry) expired(now sim.Cycle) bool {
	return e.built && e.timed() && now > e.winEnd && e.inUse == nil
}

func (e *entry) active(now sim.Cycle) bool {
	return e.built && !e.expired(now)
}

// overlaps reports whether the [s, t] window collides with the entry's.
func (e *entry) overlaps(s, t sim.Cycle) bool {
	return s <= e.winEnd && e.winStart <= t
}

// table holds the circuit storage of one router: a bounded entry list per
// input port (five slots per input for complete circuits, one per reserved
// VC for fragmented, unbounded for ideal).
type table struct {
	inputs [mesh.NumDirs][]*entry
}

// activeCount returns the number of live reservations at input port d.
func (t *table) activeCount(d mesh.Dir, now sim.Cycle) int {
	n := 0
	for _, e := range t.inputs[d] {
		if e.active(now) {
			n++
		}
	}
	return n
}

// find returns the active entry at input d for circuit (dest, block).
func (t *table) find(d mesh.Dir, dest mesh.NodeID, block uint64, now sim.Cycle) *entry {
	for _, e := range t.inputs[d] {
		if e.active(now) && e.dest == dest && e.block == block {
			return e
		}
	}
	return nil
}

// conflict reports whether an active reservation on a *different* input
// port holds the same output port with an overlapping window — the paper's
// complete-circuit construction rule.
func (t *table) conflict(d mesh.Dir, out mesh.Dir, s, tEnd sim.Cycle, now sim.Cycle) bool {
	for in := mesh.Dir(0); in < mesh.NumDirs; in++ {
		if in == d {
			continue
		}
		for _, e := range t.inputs[in] {
			if e.active(now) && e.out == out && e.overlaps(s, tEnd) {
				return true
			}
		}
	}
	return false
}

// insert stores a reservation at input d, reclaiming freed or expired
// slots. cap <= 0 means unbounded (ideal). It returns the stored entry and
// its ordinal (how many active circuits that input now holds), or nil when
// the storage is full. Taking e by value lets a reclaimed slot's object be
// overwritten in place, so steady-state reservation allocates nothing.
func (t *table) insert(d mesh.Dir, e entry, capacity int, now sim.Cycle) (*entry, int) {
	slots := t.inputs[d]
	for i, old := range slots {
		if !old.built || old.expired(now) {
			*slots[i] = e
			return slots[i], t.activeCount(d, now)
		}
	}
	if capacity > 0 && len(slots) >= capacity {
		return nil, 0
	}
	ne := new(entry)
	*ne = e
	t.inputs[d] = append(slots, ne)
	return ne, t.activeCount(d, now)
}

// freeVC returns a reserved-VC index at input d that no active entry holds,
// for fragmented circuits with circuit VCs [firstVC, firstVC+n). It returns
// -1 when all are reserved.
func (t *table) freeVC(d mesh.Dir, firstVC, n int, now sim.Cycle) int {
	for vc := firstVC; vc < firstVC+n; vc++ {
		taken := false
		for _, e := range t.inputs[d] {
			if e.active(now) && e.vc == vc {
				taken = true
				break
			}
		}
		if !taken {
			return vc
		}
	}
	return -1
}

// freeLane returns the lowest circuit lane (1..lanes-1; lane 0 is the
// reserved packet lane) that no active entry in the whole table holds on
// output port out, or -1 when every circuit lane of that link is claimed.
// The scan covers all inputs because the lanes belong to the physical
// output link, not to any input unit.
func (t *table) freeLane(out mesh.Dir, lanes int, now sim.Cycle) int {
	for lane := 1; lane < lanes; lane++ {
		taken := false
		for in := mesh.Dir(0); in < mesh.NumDirs && !taken; in++ {
			for _, e := range t.inputs[in] {
				if e.active(now) && e.out == out && e.lane == lane {
					taken = true
					break
				}
			}
		}
		if !taken {
			return lane
		}
	}
	return -1
}

// clear removes the active entry for (dest, block) at input d, returning it.
func (t *table) clear(d mesh.Dir, dest mesh.NodeID, block uint64, now sim.Cycle) *entry {
	if e := t.find(d, dest, block, now); e != nil {
		e.built = false
		e.inUse = nil
		return e
	}
	return nil
}
