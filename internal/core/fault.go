package core

import (
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// FaultHook is the seam a deterministic fault injector (internal/fault)
// plugs into the circuit manager. It is consulted right after a reservation
// is installed in a router's circuit table, modelling single-event upsets
// of the Figure-3 entry fields that the riding invariants and conservation
// audits must catch. The hook must be deterministic.
type FaultHook interface {
	// FlipBuiltBit reports whether the entry just installed at router id
	// should have its built (B) bit cleared — an upset that makes the
	// reply's circuit check miss a reservation the NI registry still
	// advertises.
	FlipBuiltBit(id mesh.NodeID, now sim.Cycle) bool
	// TruncateWindow returns a corrupted end-of-window for the timed entry
	// just installed at router id (ok=false leaves it untouched). An entry
	// that expires before its reply arrives breaks the timed schedule.
	TruncateWindow(id mesh.NodeID, start, end, now sim.Cycle) (sim.Cycle, bool)
}

// SetFaultHook arms (or, with nil, disarms) a fault injector on the
// manager's reservation path.
func (mg *Manager) SetFaultHook(h FaultHook) { mg.fault = h }
