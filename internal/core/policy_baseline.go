package core

import (
	"fmt"

	"reactivenoc/internal/noc"
)

// baselinePolicy is the packet-switched network without any circuit
// machinery: no reservations, no records, every reply classified by its
// hint (or as not eligible). It also hosts the speculative-router
// comparator, which changes the router pipeline but not the policy hooks.
type baselinePolicy struct{ basePolicy }

func (baselinePolicy) Name() string { return "baseline" }

func (baselinePolicy) Validate(o *Options) error {
	if o.Mechanism != MechNone {
		return fmt.Errorf("core: policy %q requires the baseline mechanism", "baseline")
	}
	if o.NoAck || o.Reuse || o.Timed {
		return fmt.Errorf("core: baseline cannot enable circuit features")
	}
	return nil
}

func (baselinePolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	cfg.Speculative = o.SpeculativeRouter
}
