package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// DumpCircuits renders every live circuit entry and registry record for
// stall diagnostics.
func (mg *Manager) DumpCircuits(now sim.Cycle) string {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	for id, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range tb.inputs[d] {
				if !e.active(now) {
					continue
				}
				use := "idle"
				if e.inUse != nil {
					use = fmt.Sprintf("in use by msg %d", e.inUse.ID)
				}
				win := ""
				if e.timed() {
					win = fmt.Sprintf(" window=[%d,%d]", e.winStart, e.winEnd)
				}
				add("router %d in %v: circuit (%d,%#x) out=%v %s%s\n",
					id, d, e.dest, e.block, e.out, use, win)
			}
		}
	}
	for ni, regs := range mg.regs {
		for k, rec := range regs {
			add("NI %d: record (%d,%#x) complete=%v failed=%v inUse=%v\n",
				ni, k.dest, k.block, rec.complete, rec.failed, rec.inUse)
		}
	}
	if len(b) == 0 {
		return "no live circuits\n"
	}
	return string(b)
}

// AuditQuiescent verifies the mechanism leaked nothing once the chip is
// idle: every circuit entry released or expired, every registry record
// consumed, no reservation walk or scrounger ride outstanding.
func (mg *Manager) AuditQuiescent(now sim.Cycle) error {
	for id, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range tb.inputs[d] {
				if e.inUse != nil {
					return fmt.Errorf("core: router %d port %v entry (%d,%#x) still in use",
						id, d, e.dest, e.block)
				}
				if e.built && !e.expired(now) && !e.timed() {
					return fmt.Errorf("core: router %d port %v leaks untimed entry (%d,%#x)",
						id, d, e.dest, e.block)
				}
			}
		}
	}
	for ni, regs := range mg.regs {
		for k := range regs {
			return fmt.Errorf("core: NI %d leaks circuit record (%d,%#x)", ni, k.dest, k.block)
		}
	}
	var walks, rides int64
	for s := 0; s < mg.nshards; s++ {
		walks += mg.walksLive[s]
		rides += mg.ridesLive[s]
	}
	if walks != 0 {
		return fmt.Errorf("core: %d reservation walks outstanding", walks)
	}
	if rides != 0 {
		return fmt.Errorf("core: %d scrounger rides outstanding", rides)
	}
	return nil
}
