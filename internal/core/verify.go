package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// This file holds the circuit-mechanism invariant oracles of the opt-in
// verification suite (internal/verify). Each check is legal at any cycle
// boundary and read-only; the quiescent-only leak audit lives in audit.go.

// CheckTables verifies the legality of every router's circuit table:
// no input port holds more than MaxCircuitsPerPort live reservations, and
// — for policies obeying the complete construction rule, which forbids it
// — no two reservations from different input ports share an output port
// with overlapping time windows (untimed entries hold their port for an
// unbounded window, so any pair sharing an output is a conflict).
func (mg *Manager) CheckTables(now sim.Cycle) error {
	checkConflicts := mg.pol.ConflictChecked()
	if la, ok := mg.pol.(laneAware); ok {
		if err := mg.checkLanes(la.LaneCount(), now); err != nil {
			return err
		}
	}
	for id, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if cap := mg.opts.MaxCircuitsPerPort; cap > 0 {
				if n := tb.activeCount(d, now); n > cap {
					return fmt.Errorf("router %d input %v holds %d live circuits, cap %d", id, d, n, cap)
				}
			}
			if !checkConflicts {
				continue
			}
			for _, e := range tb.inputs[d] {
				if !e.active(now) {
					continue
				}
				for d2 := d + 1; d2 < mesh.NumDirs; d2++ {
					for _, e2 := range tb.inputs[d2] {
						if e2.active(now) && e2.out == e.out && e.overlaps(e2.winStart, e2.winEnd) {
							return fmt.Errorf(
								"router %d output %v double-booked: circuit (%d,%#x) from %v window [%d,%d] overlaps circuit (%d,%#x) from %v window [%d,%d]",
								id, e.out, e.dest, e.block, d, e.winStart, e.winEnd,
								e2.dest, e2.block, d2, e2.winStart, e2.winEnd)
						}
					}
				}
			}
		}
	}
	return nil
}

// checkLanes is the lane-conservation oracle for SDM-style policies: every
// live reservation must hold a circuit lane (1..lanes-1; lane 0 is the
// reserved packet lane), and no two live reservations at one router may
// hold the same lane of the same output link — the spatial analogue of the
// complete mechanism's window-conflict rule, which laneAware policies
// replace.
func (mg *Manager) checkLanes(lanes int, now sim.Cycle) error {
	for id, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for i, e := range tb.inputs[d] {
				if !e.active(now) {
					continue
				}
				if e.lane < 1 || e.lane >= lanes {
					return fmt.Errorf(
						"router %d input %v circuit (%d,%#x) holds lane %d outside the circuit lanes 1..%d",
						id, d, e.dest, e.block, e.lane, lanes-1)
				}
				for d2 := d; d2 < mesh.NumDirs; d2++ {
					others := tb.inputs[d2]
					lo := 0
					if d2 == d {
						lo = i + 1
					}
					for _, e2 := range others[lo:] {
						if e2.active(now) && e2.out == e.out && e2.lane == e.lane {
							return fmt.Errorf(
								"router %d output %v lane %d double-booked: circuit (%d,%#x) from %v and circuit (%d,%#x) from %v",
								id, e.out, e.lane, e.dest, e.block, d, e2.dest, e2.block, d2)
						}
					}
				}
			}
		}
	}
	return nil
}

// CheckRegistry cross-checks every NI circuit registry against the router
// tables it summarizes: a record advertising a complete circuit must have
// a built entry at every router of the reply's YX path, and for timed
// circuits each entry's window must still cover the latest arrival the
// record promises the reply (injection at injEnd reaches the router at
// hop distance h at injEnd + injectLead + repHopLatency*h). A flipped
// built bit or a truncated window breaks the promise at one router while
// the NI still plans to use the circuit — exactly the divergence this
// oracle exists to catch before the reply does.
func (mg *Manager) CheckRegistry(now sim.Cycle) error {
	if !mg.pol.RegistryChecked() {
		return nil // fragmented paths have legal gaps; ideal/probe differ structurally
	}
	for _, regs := range mg.regs {
		for key, rec := range regs {
			if !rec.complete || rec.failed || rec.src == key.dest {
				continue
			}
			if rec.timed && now > rec.injEnd {
				continue // missed window; the registry undoes it at injection
			}
			path := mg.m.Path(mesh.RouteYX, rec.src, key.dest)
			for i, node := range path {
				in := mesh.Local
				if i > 0 {
					in = dirBetween(mg.m, node, path[i-1])
				}
				var present, live bool
				for _, e := range mg.tables[node].inputs[in] {
					if e.dest != key.dest || e.block != key.block || !e.built {
						continue
					}
					present = true
					if !e.timed() ||
						e.winEnd >= rec.injEnd+injectLead+repHopLatency*sim.Cycle(i) {
						live = true
						break
					}
				}
				if !live {
					state := "no built entry"
					if present {
						state = "entry window expires before the promised reply arrival"
					}
					return fmt.Errorf(
						"NI %d advertises complete circuit (%d,%#x) but router %d input %v has %s (hop %d of %d)",
						rec.src, key.dest, key.block, node, in, state, i, len(path)-1)
				}
			}
		}
	}
	return nil
}

// CheckLeaks detects orphaned reservations while the run is still hot:
// an untimed complete-circuit entry that is built, unclaimed, and matched
// by no registry record, no in-flight circuit rider, and no teardown token
// still walking the wires will never be used or reclaimed — a dropped undo
// token manifests here within one check interval instead of surviving to
// the end-of-run audit. Timed entries self-expire and fragmented/ideal
// teardown differs structurally, so the oracle is scoped to untimed
// complete circuits.
func (mg *Manager) CheckLeaks(now sim.Cycle) error {
	if !mg.pol.LeakChecked(&mg.opts) {
		return nil
	}
	covered := map[circKey]bool{}
	for _, regs := range mg.regs {
		for key := range regs {
			covered[key] = true
		}
	}
	add := func(dest mesh.NodeID, block uint64) {
		covered[circKey{dest: dest, block: block}] = true
	}
	mg.net.CircuitTraffic(add, add)
	for id, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range tb.inputs[d] {
				if !e.built || e.timed() || e.inUse != nil {
					continue
				}
				if !covered[circKey{dest: e.dest, block: e.block}] {
					return fmt.Errorf(
						"router %d input %v holds circuit (%d,%#x) that no registry record, rider, or teardown token accounts for (leaked)",
						id, d, e.dest, e.block)
				}
			}
		}
	}
	return nil
}
