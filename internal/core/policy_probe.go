package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// probePolicy is the related-work comparator of the paper's reference [7]
// (Déjà-Vu switching): the circuit is set up by a probe flit sent when the
// reply is ready, with the data following behind. Entries are *forward*
// (the data travels the probe's own direction), so the undo walk scans
// toward the setup source rather than following reversed entries.
type probePolicy struct{ basePolicy }

func (probePolicy) Name() string { return "probe-setup" }

func (probePolicy) Validate(o *Options) error {
	if o.Mechanism != MechProbe {
		return fmt.Errorf("core: policy %q requires the probe mechanism", "probe-setup")
	}
	if err := validateNotSpeculative(o); err != nil {
		return err
	}
	if o.Timed || o.Reuse || o.NoAck {
		return fmt.Errorf("core: the probe comparator supports none of the paper's optimizations")
	}
	if o.MaxCircuitsPerPort <= 0 {
		return fmt.Errorf("core: probe setup needs MaxCircuitsPerPort > 0")
	}
	return validateTimed(o)
}

func (probePolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	// Probe setup keeps a buffered circuit VC and baseline routing
	// (probe and reply travel the same direction); replies waiting
	// for their setup must not serialize the interface.
	cfg.ReplyCircuitVCs = 1
	cfg.AllowQueueOvertake = true
}

// Reserve installs a *forward* circuit entry as a setup flit crosses the
// router: the data reply behind it enters and leaves through the probe's
// own ports. On a conflict or full storage the setup fails and the
// already-built prefix is torn down with a backward credit walk.
func (probePolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	if !msg.SetupProbe || msg.BuildFailed {
		return
	}
	tb := mg.tables[id]
	fail := func(counter *int64) {
		msg.BuildFailed = true
		*counter++
		if in != mesh.Local {
			tok := &noc.UndoToken{Dest: msg.Dst, Block: msg.Block}
			mg.net.Router(id).SendUndoCredit(in, tok, now)
		}
	}
	if tb.conflict(in, out, 0, noWindow, now) {
		fail(&mg.st(id).ReserveFailedConflict)
		return
	}
	e := entry{
		built: true, dest: msg.Dst, block: msg.Block,
		out: out, outVC: mg.circuitVC(), vc: mg.circuitVC(),
		winStart: 0, winEnd: noWindow,
	}
	ins, ord := tb.insert(in, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		fail(&mg.st(id).ReserveFailedStorage)
		return
	}
	mg.noteOrdinal(id, ord)
	mg.net.EventsAt(id).CircuitWrites++
}

// Inject implements the probe-setup comparator's injection side: an
// eligible reply launches a 1-flit setup flit and may only leave once the
// setup has finished building the whole circuit (the classic setup-delay
// schemes of the paper's references [12, 14]; completion is learned
// instantly here, which is *optimistic* for the comparator). A failed
// setup sends the reply through the normal pipeline. With a 7-cycle L2 hit
// the setup traversal is never hidden — the paper's argument for reserving
// with the request instead.
func (probePolicy) Inject(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	key := circKey{dest: msg.Dst, block: msg.Block}
	rec := mg.regs[ni][key]
	if msg.SetupProbe {
		return now // probes leave immediately
	}
	if !msg.WantCircuit {
		if !msg.Classified {
			mg.classify(ni, msg, OutcomeNotEligible)
		}
		return now
	}
	if rec == nil {
		probe := mg.net.NewMessageAt(ni)
		probe.ID = mg.net.NextMsgIDAt(ni)
		probe.Src, probe.Dst = ni, msg.Dst
		probe.VN, probe.Size = noc.VNReply, 1
		probe.Block = msg.Block
		probe.WantCircuit = true
		probe.SetupProbe = true
		mg.net.NI(ni).SendFront(probe, now)
		mg.st(ni).ProbesSent++
		mg.regs[ni][key] = &record{key: key, src: ni}
		return now + 1
	}
	if !rec.probeUp {
		return now + 1 // the setup is still traversing
	}
	delete(mg.regs[ni], key)
	msg.WantCircuit = false
	if rec.failed {
		mg.classify(ni, msg, OutcomeFailed)
		return now
	}
	msg.UseCircuit = true
	msg.CircDest = msg.Dst
	msg.CircBlock = msg.Block
	mg.st(ni).CircuitsBuilt++
	mg.classify(ni, msg, OutcomeCircuit)
	return now
}

// Deliver consumes setup flits at their destination, completing the
// record the waiting reply polls at its source.
func (probePolicy) Deliver(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) (bool, bool) {
	if !msg.SetupProbe {
		return false, true
	}
	if w, _ := msg.Walk.(*walk); w != nil {
		msg.Walk = nil
		mg.freeWalk(ni, w)
	}
	// Tell the waiting reply (at the probe's source) how the setup
	// went — instantaneous here, an optimistic short-cut for the
	// comparator (a real design needs a confirmation message back).
	// The source NI's registry belongs to another shard, which may be
	// inserting into that map right now, so even the lookup is deferred
	// to the cycle epilogue.
	mg.deferOp(ni, managerOp{
		kind:   opProbeUp,
		src:    msg.Src,
		key:    circKey{dest: msg.Dst, block: msg.Block},
		failed: msg.BuildFailed,
	})
	// The probe dies here: it exists only to carry the walk.
	mg.net.FreeMessageAt(ni, msg)
	return true, false
}

// Undo scans every input port for the forward entry (the walk travels
// backward toward the setup source, against the entries' direction).
func (probePolicy) Undo(mg *Manager, id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if e := mg.tables[id].clear(d, tok.Dest, tok.Block, now); e != nil {
			mg.net.EventsAt(id).CircuitWrites++
			return d, true // continue out of the entry's input side
		}
	}
	return 0, false
}

func (probePolicy) BypassBuffered() bool { return true }
