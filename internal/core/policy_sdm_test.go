package core

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
)

// sdmOpts is the sdm policy's plain configuration at a given lane count
// (0 = the default of 4).
func sdmOpts(lanes int) Options {
	return Options{
		Mechanism: MechComplete, MaxCircuitsPerPort: 5,
		Policy: "sdm", SDMLanes: lanes,
	}
}

// TestSDMValidateErrors: every structurally incompatible knob combination
// is rejected — most importantly NoAck, whose delivery guarantee a
// lane-paced (stallable) circuit reply cannot honour.
func TestSDMValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"wrong mechanism", func(o *Options) { o.Mechanism = MechFragmented }},
		{"no table entries", func(o *Options) { o.MaxCircuitsPerPort = 0 }},
		{"timed windows", func(o *Options) { o.Timed = true }},
		{"noack", func(o *Options) { o.NoAck = true }},
		{"speculative router", func(o *Options) { o.SpeculativeRouter = true }},
		{"one lane", func(o *Options) { o.SDMLanes = 1 }},
		{"nine lanes", func(o *Options) { o.SDMLanes = 9 }},
	}
	for _, c := range cases {
		o := sdmOpts(4)
		c.mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, o)
		}
	}
	for _, lanes := range []int{0, 2, 4, 8} {
		o := sdmOpts(lanes)
		if err := o.Validate(); err != nil {
			t.Errorf("SDMLanes=%d rejected: %v", lanes, err)
		}
	}
}

// TestSDMNetConfig pins the network sdm provisions: one *buffered* circuit
// VC (lane-paced flits wait under credit flow control), YX replies, and
// the mesh links sliced into the configured lane count (default 4).
func TestSDMNetConfig(t *testing.T) {
	m := mesh.New(4, 4)

	cfg := NetConfigFor(m, sdmOpts(0))
	if cfg.LinkLanes != 4 {
		t.Fatalf("default LinkLanes = %d, want 4", cfg.LinkLanes)
	}
	if cfg.ReplyCircuitVCs != 1 || cfg.RepRouting != mesh.RouteYX {
		t.Fatalf("sdm network = %+v, want 1 circuit VC with YX replies", cfg)
	}
	if cfg.CircuitVCUnbuffered {
		t.Fatal("sdm's circuit VC must stay buffered: lane-paced flits wait in it")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("sdm network invalid: %v", err)
	}

	if got := NetConfigFor(m, sdmOpts(8)).LinkLanes; got != 8 {
		t.Fatalf("SDMLanes=8 gave LinkLanes=%d", got)
	}
}

// TestTableFreeLane drives the per-link lane allocator directly: lane 0 is
// never handed out, the lowest free circuit lane wins, lanes are scoped to
// the output port across all inputs, and exhaustion returns -1.
func TestTableFreeLane(t *testing.T) {
	tb := &table{}
	if got := tb.freeLane(mesh.East, 4, 0); got != 1 {
		t.Fatalf("empty table freeLane = %d, want 1 (lane 0 is the packet lane)", got)
	}

	claim := func(in mesh.Dir, dest mesh.NodeID, lane int) *entry {
		e := mkEntry(dest, uint64(dest)*64, mesh.East, 0, -1)
		e.lane = lane
		ins, _ := tb.insert(in, e, 5, 0)
		if ins == nil {
			t.Fatalf("claim insert failed (dest %d lane %d)", dest, lane)
		}
		return ins
	}

	claim(mesh.West, 1, 1)
	if got := tb.freeLane(mesh.East, 4, 0); got != 2 {
		t.Fatalf("freeLane with lane 1 held = %d, want 2", got)
	}
	// The lanes belong to the physical output link: an entry from another
	// input port holds its lane against everyone.
	claim(mesh.North, 2, 2)
	if got := tb.freeLane(mesh.East, 4, 0); got != 3 {
		t.Fatalf("freeLane with lanes 1,2 held across inputs = %d, want 3", got)
	}
	e3 := claim(mesh.South, 3, 3)
	if got := tb.freeLane(mesh.East, 4, 0); got != -1 {
		t.Fatalf("exhausted link freeLane = %d, want -1", got)
	}
	// A different output link has its own lanes.
	if got := tb.freeLane(mesh.West, 4, 0); got != 1 {
		t.Fatalf("other output port freeLane = %d, want 1", got)
	}
	// Releasing an entry returns its lane.
	e3.built = false
	if got := tb.freeLane(mesh.East, 4, 0); got != 3 {
		t.Fatalf("freeLane after release = %d, want 3", got)
	}
}

// TestSDMCircuitRideAndSerialization runs one transaction end to end: the
// reply rides its lane circuit, the lane pacing makes it slower than a
// full-width complete circuit but still faster than the packet pipeline,
// and the teardown drains through the deferred queue leaving no entry
// behind.
func TestSDMCircuitRideAndSerialization(t *testing.T) {
	src, dst := mesh.NodeID(0), mesh.NodeID(15)

	lat := func(opts Options) (sim int64, rep *noc.Message, r *rig) {
		r = newRig(t, 4, 4, opts, 7)
		r.request(src, dst, 5)
		r.runQuiet(4000)
		if len(r.replies) != 1 {
			t.Fatalf("%+v: %d replies, want 1", opts, len(r.replies))
		}
		rep = r.replies[0]
		return int64(rep.DeliveredAt - rep.InjectedAt), rep, r
	}

	l2, rep2, rig2 := lat(sdmOpts(2))
	if !rep2.UseCircuit {
		t.Fatal("sdm reply did not ride its circuit")
	}
	if st := &rig2.mgr.Stats; st.CircuitsBuilt != 1 || st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("built/circuit = %d/%d, want 1/1", st.CircuitsBuilt, st.Replies[OutcomeCircuit])
	}

	lFull, _, _ := lat(completeOpts())
	lPacket, _, _ := lat(Options{})
	l8, _, _ := lat(sdmOpts(8))
	if !(lFull < l2 && l2 < l8) {
		t.Fatalf("serialization ordering broken: full %d, 2-lane %d, 8-lane %d", lFull, l2, l8)
	}
	if l2 >= lPacket {
		t.Fatalf("2-lane circuit (%d) not faster than the packet pipeline (%d)", l2, lPacket)
	}

	// An undone circuit (the L2-forwards-to-owner pattern) tears down
	// through the deferred per-shard queue, and nothing survives the drain.
	req := rig2.request(src, dst, 5)
	rig2.forwardTo[req.Block] = 10
	rig2.runQuiet(8000)
	pol := rig2.mgr.pol.(*sdmPolicy)
	var tears int64
	for s := range pol.tears {
		tears += pol.tears[s]
		if len(pol.pendingTear[s]) != 0 {
			t.Fatalf("shard %d still holds %d deferred teardowns", s, len(pol.pendingTear[s]))
		}
	}
	if tears == 0 {
		t.Fatal("undo bypassed the deferred teardown queue")
	}
	if rig2.mgr.Stats.CircuitsUndone != 1 {
		t.Fatalf("circuits undone = %d, want 1", rig2.mgr.Stats.CircuitsUndone)
	}
	now := rig2.kernel.Now()
	for id := range rig2.mgr.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if n := rig2.mgr.tables[id].activeCount(d, now); n != 0 {
				t.Fatalf("router %d input %v: %d entries leaked past quiesce", id, d, n)
			}
		}
	}
}

// TestSDMLaneExhaustionFallsBack: with 2 lanes there is exactly one
// circuit lane per link, so a second reservation crossing a shared link
// must fail the whole circuit (the all-or-nothing rule) and fall back to
// a packet reply — delivered, just not on a circuit.
func TestSDMLaneExhaustionFallsBack(t *testing.T) {
	r := newRig(t, 4, 4, sdmOpts(2), 20)
	// Both request paths converge on column 3 heading south to node 15,
	// so their reply circuits contend for the same link lanes.
	r.request(3, 15, 5)
	r.request(7, 15, 5)
	r.runQuiet(4000)
	if len(r.replies) != 2 {
		t.Fatalf("%d replies delivered, want 2", len(r.replies))
	}
	st := &r.mgr.Stats
	if st.ReserveFailedConflict == 0 {
		t.Fatal("no lane-exhaustion failure recorded on the shared link")
	}
	if st.Replies[OutcomeCircuit] != 1 || st.Replies[OutcomeFailed] != 1 {
		t.Fatalf("outcomes circuit/failed = %d/%d, want 1/1",
			st.Replies[OutcomeCircuit], st.Replies[OutcomeFailed])
	}

	// The same pair at 4 lanes fits side by side on one physical channel.
	r4 := newRig(t, 4, 4, sdmOpts(4), 20)
	r4.request(3, 15, 5)
	r4.request(7, 15, 5)
	r4.runQuiet(4000)
	if st := &r4.mgr.Stats; st.Replies[OutcomeCircuit] != 2 {
		t.Fatalf("4-lane outcomes = %+v, want both replies on circuits", st.Replies)
	}
}
