package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// idealPolicy is the unimplementable upper bound (Section 4.8): every
// reservation succeeds regardless of conflicts, collisions resolve with
// buffering, and teardown clears the whole path instantly. It shares the
// complete family's record/injection behaviour but opts out of the
// feasible-router oracles — its tables legally violate the construction
// rules the complete mechanism obeys.
type idealPolicy struct{ completeFamily }

func (idealPolicy) Name() string { return "ideal" }

func (idealPolicy) Validate(o *Options) error {
	if o.Mechanism != MechIdeal {
		return fmt.Errorf("core: policy %q requires the ideal mechanism", "ideal")
	}
	if err := validateNotSpeculative(o); err != nil {
		return err
	}
	if o.Timed || o.Reuse {
		return fmt.Errorf("core: ideal reservation has no timing or reuse")
	}
	return validateTimed(o)
}

func (idealPolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	cfg.ReplyCircuitVCs = 1 // keeps its buffer: ideal is not area-reduced
	cfg.RepRouting = mesh.RouteYX
}

// Reserve always succeeds: conflicts are ignored and storage is unbounded.
func (idealPolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: mg.circuitVC(), vc: mg.circuitVC(),
		winStart: 0, winEnd: noWindow,
	}
	_, ord := mg.tables[id].insert(out, e, 0, now)
	mg.noteOrdinal(id, ord)
	mg.net.EventsAt(id).CircuitWrites++
	w.lastReserved = true
}

// Teardown clears the whole path instantly — the upper-bound model does
// not charge teardown cost.
func (idealPolicy) Teardown(mg *Manager, rec *record, now sim.Cycle) {
	mg.clearPath(rec.src, rec.key.dest, rec.key.block, now)
}

func (idealPolicy) BypassBuffered() bool      { return true }
func (idealPolicy) ConflictChecked() bool     { return false }
func (idealPolicy) RegistryChecked() bool     { return false }
func (idealPolicy) LeakChecked(*Options) bool { return false }
