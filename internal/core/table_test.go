package core

import (
	"testing"
	"testing/quick"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
)

func mkEntry(dest mesh.NodeID, block uint64, out mesh.Dir, s, e int64) entry {
	win := noWindow
	if e >= 0 {
		win = e
	}
	return entry{built: true, dest: dest, block: block, out: out, winStart: s, winEnd: win, outVC: 1, vc: 1}
}

func TestTableInsertAndFind(t *testing.T) {
	tb := &table{}
	e := mkEntry(3, 0x40, mesh.West, 0, -1)
	ins, ord := tb.insert(mesh.East, e, 5, 0)
	if ins == nil || ord != 1 {
		t.Fatalf("insert failed: %v ord %d", ins, ord)
	}
	if tb.find(mesh.East, 3, 0x40, 10) != ins {
		t.Fatal("find missed the entry")
	}
	if tb.find(mesh.West, 3, 0x40, 10) != nil {
		t.Fatal("find matched the wrong input port")
	}
	if tb.find(mesh.East, 3, 0x80, 10) != nil {
		t.Fatal("find matched the wrong block")
	}
}

func TestTableCapacity(t *testing.T) {
	tb := &table{}
	for i := 0; i < 5; i++ {
		e, ord := tb.insert(mesh.East, mkEntry(mesh.NodeID(i), uint64(i*64), mesh.West, 0, -1), 5, 0)
		if e == nil || ord != i+1 {
			t.Fatalf("insert %d failed (ord %d)", i, ord)
		}
	}
	if e, _ := tb.insert(mesh.East, mkEntry(9, 0x900, mesh.West, 0, -1), 5, 0); e != nil {
		t.Fatal("sixth insert should fail at capacity 5")
	}
	// Another input port has independent storage.
	if e, _ := tb.insert(mesh.West, mkEntry(9, 0x900, mesh.East, 0, -1), 5, 0); e == nil {
		t.Fatal("other input port should accept")
	}
}

func TestTableReclaimsFreedSlots(t *testing.T) {
	tb := &table{}
	e := mkEntry(1, 0x40, mesh.West, 0, -1)
	tb.insert(mesh.East, e, 1, 0)
	if got, _ := tb.insert(mesh.East, mkEntry(2, 0x80, mesh.West, 0, -1), 1, 0); got != nil {
		t.Fatal("full table accepted an entry")
	}
	tb.clear(mesh.East, 1, 0x40, 0)
	if got, ord := tb.insert(mesh.East, mkEntry(2, 0x80, mesh.West, 0, -1), 1, 0); got == nil || ord != 1 {
		t.Fatal("cleared slot not reclaimed")
	}
}

func TestTimedEntrySelfExpires(t *testing.T) {
	tb := &table{}
	e := mkEntry(1, 0x40, mesh.West, 10, 20)
	tb.insert(mesh.East, e, 1, 0)
	if tb.find(mesh.East, 1, 0x40, 15) == nil {
		t.Fatal("entry should be live inside its window")
	}
	if tb.find(mesh.East, 1, 0x40, 21) != nil {
		t.Fatal("entry should have self-expired after its window")
	}
	// Expired slots are reclaimable without an undo walk.
	if got, _ := tb.insert(mesh.East, mkEntry(2, 0x80, mesh.West, 30, 40), 1, 25); got == nil {
		t.Fatal("expired slot not reclaimed")
	}
}

func TestExpiredEntryInUseStaysLive(t *testing.T) {
	// A message mid-flight keeps its entry alive past the window end, so
	// body flits never lose their circuit.
	tb := &table{}
	ins, _ := tb.insert(mesh.East, mkEntry(1, 0x40, mesh.West, 10, 20), 1, 0)
	ins.inUse = &noc.Message{ID: 7}
	if tb.find(mesh.East, 1, 0x40, 25) == nil {
		t.Fatal("claimed entry must outlive its window while in use")
	}
	ins.inUse = nil
	if tb.find(mesh.East, 1, 0x40, 25) != nil {
		t.Fatal("released entry past its window should expire")
	}
}

func TestConflictRule(t *testing.T) {
	tb := &table{}
	tb.insert(mesh.East, mkEntry(1, 0x40, mesh.West, 0, -1), 5, 0)
	// Different input, same output: conflict.
	if !tb.conflict(mesh.South, mesh.West, 0, noWindow, 0) {
		t.Fatal("expected a conflict")
	}
	// Same input, same output: allowed (same-source circuits serialize).
	if tb.conflict(mesh.East, mesh.West, 0, noWindow, 0) {
		t.Fatal("same-input circuits must not conflict")
	}
	// Different output: allowed.
	if tb.conflict(mesh.South, mesh.North, 0, noWindow, 0) {
		t.Fatal("different outputs must not conflict")
	}
}

func TestConflictWindowDisjoint(t *testing.T) {
	tb := &table{}
	tb.insert(mesh.East, mkEntry(1, 0x40, mesh.West, 10, 20), 5, 0)
	if tb.conflict(mesh.South, mesh.West, 21, 30, 0) {
		t.Fatal("disjoint windows must not conflict")
	}
	if !tb.conflict(mesh.South, mesh.West, 15, 25, 0) {
		t.Fatal("overlapping windows must conflict")
	}
	if !tb.conflict(mesh.South, mesh.West, 20, 20, 0) {
		t.Fatal("touching boundary cycle overlaps")
	}
	// The expired entry no longer conflicts.
	if tb.conflict(mesh.South, mesh.West, 15, 25, 50) {
		t.Fatal("expired entries must not conflict")
	}
}

func TestFreeVC(t *testing.T) {
	tb := &table{}
	if vc := tb.freeVC(mesh.East, 1, 2, 0); vc != 1 {
		t.Fatalf("empty table freeVC = %d, want 1", vc)
	}
	e := mkEntry(1, 0x40, mesh.West, 0, -1)
	e.vc = 1
	tb.insert(mesh.East, e, 2, 0)
	if vc := tb.freeVC(mesh.East, 1, 2, 0); vc != 2 {
		t.Fatalf("freeVC = %d, want 2", vc)
	}
	e2 := mkEntry(2, 0x80, mesh.West, 0, -1)
	e2.vc = 2
	tb.insert(mesh.East, e2, 2, 0)
	if vc := tb.freeVC(mesh.East, 1, 2, 0); vc != -1 {
		t.Fatalf("freeVC = %d, want -1 (all reserved)", vc)
	}
	tb.clear(mesh.East, 1, 0x40, 0)
	if vc := tb.freeVC(mesh.East, 1, 2, 0); vc != 1 {
		t.Fatalf("freeVC after clear = %d, want 1", vc)
	}
}

// Property: after any sequence of inserts and clears, activeCount equals
// the number of built, unexpired entries, and never exceeds capacity.
func TestTableActiveCountInvariant(t *testing.T) {
	check := func(ops []uint8) bool {
		tb := &table{}
		const capacity = 5
		now := int64(0)
		live := map[uint64]bool{}
		for _, op := range ops {
			block := uint64(op%8) * 64
			if op&0x80 == 0 {
				if e, _ := tb.insert(mesh.East, mkEntry(1, block, mesh.West, 0, -1), capacity, now); e != nil {
					live[block] = true
				}
			} else {
				if tb.clear(mesh.East, 1, block, now) != nil {
					delete(live, block)
				}
			}
			if tb.activeCount(mesh.East, now) > capacity {
				return false
			}
		}
		// Count distinct live blocks (duplicate inserts create multiple
		// entries for a block, and clear removes one at a time, so only
		// bound-check here).
		return tb.activeCount(mesh.East, now) <= capacity
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
