package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// fragmentedPolicy keeps partial reservations (Section 4.2, first
// alternative): a router that cannot reserve leaves a gap, the reply rides
// whatever fragments exist and re-enters the normal pipeline at each gap.
// It adds a third, buffered reply VC pair reserved for circuits.
type fragmentedPolicy struct{ basePolicy }

func (fragmentedPolicy) Name() string { return "fragmented" }

func (fragmentedPolicy) Validate(o *Options) error {
	if o.Mechanism != MechFragmented {
		return fmt.Errorf("core: policy %q requires the fragmented mechanism", "fragmented")
	}
	if err := validateNotSpeculative(o); err != nil {
		return err
	}
	if o.Timed || o.Reuse {
		return fmt.Errorf("core: fragmented circuits support neither timing nor reuse")
	}
	if o.NoAck {
		return fmt.Errorf("core: fragmented circuits cannot guarantee delivery order for NoAck")
	}
	if o.MaxCircuitsPerPort <= 0 {
		return fmt.Errorf("core: fragmented circuits need MaxCircuitsPerPort > 0")
	}
	return validateTimed(o)
}

func (fragmentedPolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	cfg.VCsPerVN[noc.VNReply] = 3
	cfg.ReplyCircuitVCs = 2
	cfg.RepRouting = mesh.RouteYX
}

// Reserve grabs any free reserved VC at this hop; failure keeps the
// partial path and retries at the next hop.
func (fragmentedPolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	cfg := mg.net.Config()
	mg.reserveFragmentedVC(id, msg, in, out, w, cfg.ReplyCircuitVCs, now)
}

// reserveFragmentedVC reserves one of the n reserved reply VCs starting at
// the circuit VC, shared by the fragmented policy (fixed n) and the
// dynamic-VC policy (adaptive per-router n).
func (mg *Manager) reserveFragmentedVC(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, n int, now sim.Cycle) bool {
	tb := mg.tables[id]
	cfg := mg.net.Config()
	vc := tb.freeVC(out, cfg.CircuitVC(), n, now)
	if vc < 0 {
		// No reserved VC available: keep the partial path and retry at
		// the next hop (Section 4.2, fragmented alternative).
		mg.st(id).ReserveFailedStorage++
		w.prevVC = -1
		w.lastReserved = false
		return false
	}
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: w.prevVC, vc: vc,
		winStart: 0, winEnd: noWindow,
	}
	ins, ord := tb.insert(out, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		mg.st(id).ReserveFailedStorage++
		w.prevVC = -1
		w.lastReserved = false
		return false
	}
	mg.noteOrdinal(id, ord)
	mg.net.EventsAt(id).CircuitWrites++
	msg.ReservedHops++
	w.prevVC = vc
	w.lastReserved = true
	return true
}

// Confirm counts the fragments: complete only when every hop reserved, and
// the injection VC is the first hop's reserved VC when it exists.
func (fragmentedPolicy) Confirm(mg *Manager, ni mesh.NodeID, msg *noc.Message, rec *record, w *walk) {
	rec.reserved = msg.ReservedHops
	rec.complete = msg.ReservedHops == rec.path
	rec.failed = !rec.complete
	if rec.complete {
		mg.st(ni).CircuitsBuilt++
	}
	if w.lastReserved {
		rec.injectVC = w.prevVC
	}
}

// Inject rides whatever fragments the request reserved; a wholly
// unreserved path travels as a normal packet.
func (fragmentedPolicy) Inject(mg *Manager, ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	key := circKey{dest: msg.Dst, block: msg.Block}
	rec := mg.regs[ni][key]
	if rec == nil {
		return mg.injectFallback(ni, msg, now)
	}
	if rec.inUse {
		return now + 1 // a scrounger is riding; wait for it to clear
	}
	delete(mg.regs[ni], key)
	if rec.reserved == 0 {
		mg.classify(ni, msg, OutcomeFailed)
		return now
	}
	msg.UseCircuit = true
	msg.InjectVC = rec.injectVC
	msg.CircDest = msg.Dst
	msg.CircBlock = msg.Block
	if rec.complete {
		mg.classify(ni, msg, OutcomeCircuit)
	} else {
		mg.classify(ni, msg, OutcomeFailed) // partial path still rides its fragments
	}
	return now
}

// Undo walks the reply's deterministic YX path, clearing what exists and
// continuing past gaps so entries beyond a gap are still reclaimed.
func (fragmentedPolicy) Undo(mg *Manager, id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	if mg.tables[id].clear(in, tok.Dest, tok.Block, now) != nil {
		mg.net.EventsAt(id).CircuitWrites++
	}
	return mg.m.NextDir(mesh.RouteYX, id, tok.Dest), true
}

func (fragmentedPolicy) UndoEligible(rec *record) bool { return rec.reserved > 0 }

// Teardown clears whatever entry is at the source and sends the walk
// toward the destination regardless, tolerating gaps.
func (fragmentedPolicy) Teardown(mg *Manager, rec *record, now sim.Cycle) {
	if mg.tables[rec.src].clear(mesh.Local, rec.key.dest, rec.key.block, now) != nil {
		mg.net.EventsAt(rec.src).CircuitWrites++
	}
	if fwd := mg.m.NextDir(mesh.RouteYX, rec.src, rec.key.dest); fwd != mesh.Local {
		tok := &noc.UndoToken{Dest: rec.key.dest, Block: rec.key.block}
		mg.net.Router(rec.src).SendUndoCredit(fwd, tok, now)
	}
}

func (fragmentedPolicy) GapTolerant() bool    { return true }
func (fragmentedPolicy) BypassBuffered() bool { return true }
