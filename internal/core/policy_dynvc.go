package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// dynVCPolicy implements load-adaptive VC partitioning (PAPERS.md: Onsori
// & Safaei): the fragmented mechanism with a per-router *adaptive* count
// of reply VCs usable for reservations. The router hardware provisions
// DynVCMax reserved VCs, but each router only hands out its current limit;
// a window with reservation failures grows the limit toward DynVCMax, a
// clean window shrinks it toward DynVCMin, returning buffer bandwidth to
// ordinary packet traffic under light circuit load.
type dynVCPolicy struct {
	fragmentedPolicy

	min, max, window int

	// Per-router adaptation state, indexed by NodeID. Tile-local: Reserve
	// at router id only touches index id, so shards never share a slot.
	limit    []int
	attempts []int
	fails    []int

	// grows/shrinks shard like the routers that move them (adapt runs in
	// the router phase); each slice registers under one summed name.
	grows   []int64
	shrinks []int64
}

func (p *dynVCPolicy) Name() string { return "dynamic-vc" }

func (p *dynVCPolicy) Validate(o *Options) error {
	if o.Mechanism != MechFragmented {
		return fmt.Errorf("core: policy %q partitions the fragmented mechanism's VCs (set MechFragmented)", "dynamic-vc")
	}
	if err := (fragmentedPolicy{}).Validate(o); err != nil {
		return err
	}
	if o.DynVCMin < 0 || o.DynVCMax < 0 || o.DynVCWindow < 0 {
		return fmt.Errorf("core: negative dynamic-vc parameters")
	}
	min, max := orDefault(o.DynVCMin, 1), orDefault(o.DynVCMax, 3)
	if min > max {
		return fmt.Errorf("core: dynamic-vc needs DynVCMin <= DynVCMax")
	}
	if max > 6 {
		return fmt.Errorf("core: dynamic-vc supports at most 6 reserved reply VCs")
	}
	if o.MaxCircuitsPerPort < max {
		return fmt.Errorf("core: dynamic-vc needs MaxCircuitsPerPort >= DynVCMax (one entry per reserved VC)")
	}
	return nil
}

// NetConfig provisions the maximum partition in hardware; the policy's
// per-router limit decides how much of it is usable each window.
func (p *dynVCPolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	max := orDefault(o.DynVCMax, 3)
	cfg.VCsPerVN[noc.VNReply] = 1 + max
	cfg.ReplyCircuitVCs = max
	cfg.RepRouting = mesh.RouteYX
}

func (p *dynVCPolicy) Attach(mg *Manager) {
	p.min = orDefault(mg.opts.DynVCMin, 1)
	p.max = orDefault(mg.opts.DynVCMax, 3)
	p.window = orDefault(mg.opts.DynVCWindow, 16)
	n := mg.m.Nodes()
	p.limit = make([]int, n)
	for i := range p.limit {
		p.limit[i] = p.min
	}
	p.attempts = make([]int, n)
	p.fails = make([]int, n)
	p.grows = make([]int64, 1)
	p.shrinks = make([]int64, 1)
}

// setShards re-partitions the counters; must run before any traffic (and
// before DescribeMetrics registers the counter slots).
func (p *dynVCPolicy) setShards(mg *Manager) {
	p.grows = make([]int64, mg.nshards)
	p.shrinks = make([]int64, mg.nshards)
}

func (p *dynVCPolicy) DescribeMetrics(reg *sim.Registry) {
	for s := range p.grows {
		reg.Counter("circ/dynvc_grows", &p.grows[s])
		reg.Counter("circ/dynvc_shrinks", &p.shrinks[s])
	}
}

// Reserve is the fragmented per-hop reservation restricted to this
// router's current VC limit, feeding the adaptation window.
func (p *dynVCPolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	p.attempts[id]++
	if !mg.reserveFragmentedVC(id, msg, in, out, w, p.limit[id], now) {
		p.fails[id]++
	}
	p.adapt(mg, id)
}

// adapt closes a router's observation window: any failure grows the
// usable partition (up to max), a clean window shrinks it (down to min).
func (p *dynVCPolicy) adapt(mg *Manager, id mesh.NodeID) {
	if p.attempts[id] < p.window {
		return
	}
	s := mg.shard(id)
	if p.fails[id] > 0 {
		if p.limit[id] < p.max {
			p.limit[id]++
			p.grows[s]++
		}
	} else if p.limit[id] > p.min {
		p.limit[id]--
		p.shrinks[s]++
	}
	p.attempts[id], p.fails[id] = 0, 0
}
