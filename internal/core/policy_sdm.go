package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// sdmPolicy implements spatial-division multiplexing (PAPERS.md: Zaeemi &
// Modarressi, "Ultra Low-Power SDM-based Circuit-Switching for NoCs"): every
// mesh link splits into SDMLanes equal-width lanes, lane 0 stays reserved
// for packet traffic, and each circuit claims one of the remaining lanes
// end-to-end instead of arbitrating the full-width link by time window. Up
// to SDMLanes-1 circuits coexist on one physical channel with no window
// conflicts; the price is serialization — a flit on a 1/L-width lane takes
// L-1 extra cycles per hop, for circuits and packets alike.
//
// The reservation is all-or-nothing like the complete mechanism, but the
// circuit VC keeps its buffer: lane-paced circuit flits legally wait in the
// bypass queue, bounded by the VC's credits. Teardown and undo release
// per-lane entries through the manager's deferred-op epilogue (cycleFlusher),
// so the policy is shardable by construction — no shard clears a neighbour's
// table mid-phase.
type sdmPolicy struct {
	completeFamily

	lanes int

	// pendingTear holds the records whose teardown walks were requested
	// this cycle, sliced by the shard of the circuit's source NI; the
	// epilogue drains them in shard order, which with contiguous tile bands
	// is ascending NI order — the sequential engine's visit order.
	pendingTear [][]*record
	// tears counts deferred teardown walks per shard.
	tears []int64
}

// laneAware is implemented by policies that arbitrate circuits by SDM lane
// instead of the output-port conflict rule; the lane-conservation oracle
// (CheckTables) keys on it.
type laneAware interface {
	LaneCount() int
}

func (p *sdmPolicy) Name() string { return "sdm" }

func (p *sdmPolicy) LaneCount() int { return p.lanes }

func (p *sdmPolicy) Validate(o *Options) error {
	if o.Mechanism != MechComplete {
		return fmt.Errorf("core: policy %q builds on the complete mechanism (set MechComplete)", "sdm")
	}
	if err := validateNotSpeculative(o); err != nil {
		return err
	}
	if o.MaxCircuitsPerPort <= 0 {
		return fmt.Errorf("core: sdm circuits need MaxCircuitsPerPort > 0")
	}
	if o.Timed {
		return fmt.Errorf("core: sdm replaces time windows with lanes; Timed does not apply")
	}
	if o.NoAck {
		// Section 4.6 removes the L1_DATA_ACK only when the reply is
		// guaranteed to ride a non-blocking circuit. Lane-paced flits wait
		// legally (BypassBuffered), so a later forward can overtake the
		// reply; the directory's ack handshake is what closes that race.
		return fmt.Errorf("core: sdm circuits are lane-paced and may stall; NoAck's delivery guarantee does not hold")
	}
	if err := validateTimed(o); err != nil {
		return err
	}
	if o.SDMLanes != 0 && (o.SDMLanes < 2 || o.SDMLanes > 8) {
		return fmt.Errorf("core: sdm needs 2..8 lanes (got %d)", o.SDMLanes)
	}
	return nil
}

// NetConfig keeps the complete variants' single circuit VC but leaves it
// buffered — lane-paced flits wait in the bypass queue under credit flow
// control — and divides every mesh link into the configured lane count.
func (p *sdmPolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	cfg.ReplyCircuitVCs = 1
	cfg.RepRouting = mesh.RouteYX
	cfg.LinkLanes = orDefault(o.SDMLanes, 4)
}

func (p *sdmPolicy) Attach(mg *Manager) {
	p.lanes = orDefault(mg.opts.SDMLanes, 4)
	p.pendingTear = make([][]*record, 1)
	p.tears = make([]int64, 1)
}

// setShards re-partitions the deferred-teardown queues; must run before any
// traffic (and before DescribeMetrics registers the counter slots).
func (p *sdmPolicy) setShards(mg *Manager) {
	p.pendingTear = make([][]*record, mg.nshards)
	p.tears = make([]int64, mg.nshards)
}

func (p *sdmPolicy) DescribeMetrics(reg *sim.Registry) {
	for s := range p.tears {
		reg.Counter("circ/sdm_deferred_teardowns", &p.tears[s])
	}
}

// Reserve claims a free circuit lane on the reply's output link (the port
// the request entered through) and installs the reversed entry. Lane
// exhaustion — every circuit lane of that link already claimed — fails the
// whole circuit, like a window conflict under the complete mechanism.
func (p *sdmPolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	if msg.BuildFailed {
		return // a failed all-or-nothing circuit reserves nothing further
	}
	tb := mg.tables[id]
	lane := tb.freeLane(in, p.lanes, now)
	if lane < 0 {
		mg.failCircuit(id, msg, in, now, &mg.st(id).ReserveFailedConflict)
		return
	}
	cvc := mg.circuitVC()
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: cvc, vc: cvc,
		winStart: 0, winEnd: noWindow, lane: lane,
	}
	ins, ord := tb.insert(out, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		mg.failCircuit(id, msg, in, now, &mg.st(id).ReserveFailedStorage)
		return
	}
	if mg.fault != nil && mg.fault.FlipBuiltBit(id, now) {
		ins.built = false
	}
	mg.noteOrdinal(id, ord)
	mg.net.EventsAt(id).CircuitWrites++
	w.lastReserved = true
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.Reserve, msg.ID, id,
			fmt.Sprintf("in=%v out=%v lane=%d", out, in, lane))
	}
}

// Teardown defers the lane-releasing undo walk to the cycle epilogue: the
// walk clears the entry at the circuit's source tile and sends an undo
// credit down the reply path, both of which may belong to another shard.
func (p *sdmPolicy) Teardown(mg *Manager, rec *record, now sim.Cycle) {
	s := mg.shard(rec.src)
	p.pendingTear[s] = append(p.pendingTear[s], rec)
}

// flushCycle drains the deferred teardowns in shard order, enqueue order
// within each shard — identical to the order the sequential engine would
// have performed them inline.
func (p *sdmPolicy) flushCycle(mg *Manager, now sim.Cycle) {
	for s := range p.pendingTear {
		pend := p.pendingTear[s]
		for i, rec := range pend {
			pend[i] = nil
			p.tears[s]++
			p.basePolicy.Teardown(mg, rec, now)
		}
		p.pendingTear[s] = pend[:0]
	}
}

// BypassBuffered: lane pacing makes circuit flits wait legally (in the
// bypass queue, bounded by the circuit VC's credits).
func (p *sdmPolicy) BypassBuffered() bool { return true }

// ConflictChecked is false: entries from different inputs may share an
// output port — on different lanes. The lane-conservation branch of the
// circuit-table oracle replaces the window-conflict rule.
func (p *sdmPolicy) ConflictChecked() bool { return false }
