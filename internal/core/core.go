// Package core implements the paper's contribution: Reactive Circuits, the
// dynamic construction of circuits for reply messages while their request
// traverses the network.
//
// A request that will provoke a reply (L2 data replies, write-back
// acknowledgements, memory replies) installs, in parallel with VC
// allocation at every router it crosses, a circuit entry for the reply: the
// reply enters the router on the port the request left through and leaves
// on the port the request entered through, because requests route XY and
// replies YX. A reply that finds its circuit built crosses each router in a
// single cycle instead of the four-stage pipeline.
//
// The package implements every variant evaluated in the paper: fragmented
// circuits (partial reservations, extra buffered VC), complete circuits
// (all-or-nothing, unbuffered circuit VC, up to five circuits per input
// port), circuit reuse by scrounger messages, elimination of
// L1_DATA_ACK coherence messages, timed reservations with slack, delay and
// postponement, and the unimplementable ideal upper bound.
package core

import "fmt"

// Mechanism selects the circuit-construction policy.
type Mechanism uint8

const (
	// MechNone is the baseline packet-switched network.
	MechNone Mechanism = iota
	// MechFragmented keeps partial reservations and adds a third,
	// buffered reply VC (Section 4.2, first alternative).
	MechFragmented
	// MechComplete builds all-or-nothing circuits on an unbuffered VC
	// (Section 4.2, second alternative).
	MechComplete
	// MechIdeal reserves every circuit regardless of conflicts and
	// resolves collisions with buffering (Section 4.8); an upper bound,
	// not a feasible router.
	MechIdeal
	// MechProbe is the related-work comparator of the paper's reference
	// [7] (Déjà-Vu switching): the circuit is set up by a probe flit sent
	// when the reply is ready, with the data following behind — the
	// approach the paper rejects because a fast L2 hit cannot hide the
	// setup traversal.
	MechProbe
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechNone:
		return "baseline"
	case MechFragmented:
		return "fragmented"
	case MechComplete:
		return "complete"
	case MechIdeal:
		return "ideal"
	case MechProbe:
		return "probe-setup"
	}
	return fmt.Sprintf("Mechanism(%d)", uint8(m))
}

// Options configures one Reactive Circuits variant.
type Options struct {
	Mechanism Mechanism

	// MaxCircuitsPerPort bounds simultaneous circuit entries at one input
	// port: 5 for complete circuits, 2 for fragmented (one per reserved
	// VC), unlimited for ideal.
	MaxCircuitsPerPort int

	// NoAck eliminates L1_DATA_ACK messages when the data reply used a
	// complete circuit (Section 4.6). Consumed by the coherence layer.
	NoAck bool

	// Reuse lets circuit-less replies ride idle complete circuits to an
	// intermediate node (scrounger messages, Section 4.5).
	Reuse bool

	// Timed enables timed reservations (Section 4.7): the circuit holds
	// its ports only during the reply's predicted time window.
	Timed bool
	// SlackPerHop widens every window by this many cycles per path hop.
	SlackPerHop int
	// DelayPerHop allows shifting a conflicting window later by up to
	// this many cycles per path hop (requires slack to stay compatible
	// with reservations already made downstream).
	DelayPerHop int
	// PostponePerHop shifts the exact-length window later unconditionally;
	// the reply always waits for its slot.
	PostponePerHop int

	// NoPool disables flit/message recycling in the network (the
	// allocation kill-switch; RC_NOPOOL=1 forces it process-wide).
	// Pooled and unpooled runs are bit-identical — this exists only to
	// bisect pooling bugs and to cross-check that claim in tests.
	NoPool bool

	// SpeculativeRouter enables the related-work comparator of the
	// paper's references [16-19]: no circuits at all, but head flits may
	// cross an uncontended router in a single cycle. Only valid with
	// MechNone — it is an alternative design, not an addition.
	SpeculativeRouter bool

	// Policy selects a registered switching policy by name (see
	// RegisterPolicy); empty picks the Mechanism's default
	// implementation, so every pre-policy Options encodes — and
	// fingerprints — exactly as before. The omitempty tags below keep
	// that true for the new knobs too.
	Policy string `json:",omitempty"`

	// ProfileWindow, ProfileThresholdPct and ProfileBackoff tune the
	// profiled-hybrid policy: a flow is profiled over ProfileWindow
	// replies and demoted to packet switching when fewer than
	// ProfileThresholdPct percent of them rode a circuit; a demoted flow
	// re-enters profiling after ProfileBackoff packet requests. Zero
	// means the policy's default (32 / 50 / 128).
	ProfileWindow       int `json:",omitempty"`
	ProfileThresholdPct int `json:",omitempty"`
	ProfileBackoff      int `json:",omitempty"`

	// DynVCMin, DynVCMax and DynVCWindow tune the dynamic-vc policy:
	// each router's usable reserved-VC partition floats between DynVCMin
	// and DynVCMax (the hardware provisions DynVCMax), adapting once per
	// DynVCWindow reservation attempts. Zero means the policy's default
	// (1 / 3 / 16).
	DynVCMin    int `json:",omitempty"`
	DynVCMax    int `json:",omitempty"`
	DynVCWindow int `json:",omitempty"`

	// SDMLanes tunes the sdm policy: every mesh link splits into this many
	// equal-width lanes — lane 0 reserved for packet traffic, the rest held
	// one-per-circuit — and per-flit link serialization stretches by the
	// lane fraction. Zero means the policy's default (4); valid values are
	// 2..8.
	SDMLanes int `json:",omitempty"`
}

// Validate rejects inconsistent option combinations by resolving the
// selected switching policy and asking it; each policy owns its own rules
// (see the policy_*.go files).
func (o *Options) Validate() error {
	pol, err := PolicyFor(*o)
	if err != nil {
		return err
	}
	return pol.Validate(o)
}

// Enabled reports whether any circuit machinery is active.
func (o *Options) Enabled() bool { return o.Mechanism != MechNone }

// Outcome classifies each reply for the paper's Figure 6 breakdown.
type Outcome uint8

const (
	// OutcomeNone is the zero value (unclassified).
	OutcomeNone Outcome = iota
	// OutcomeCircuit — the reply travelled on its own (fully built,
	// for fragmented: at least partially built) circuit.
	OutcomeCircuit
	// OutcomeFailed — the circuit could not be (completely) built.
	OutcomeFailed
	// OutcomeUndone — the circuit was completely built but had to be
	// undone before use (forwarded requests, missed timed windows).
	OutcomeUndone
	// OutcomeScrounger — the reply rode a circuit built for another
	// message to an intermediate node.
	OutcomeScrounger
	// OutcomeNotEligible — no request could reserve a circuit for this
	// reply type.
	OutcomeNotEligible
	// OutcomeEliminated — the L1_DATA_ACK was removed by the NoAck
	// optimization and never entered the network.
	OutcomeEliminated
	numOutcomes
)

// String names the outcome as in Figure 6's legend.
func (o Outcome) String() string {
	switch o {
	case OutcomeNone:
		return "none"
	case OutcomeCircuit:
		return "circuit"
	case OutcomeFailed:
		return "failed"
	case OutcomeUndone:
		return "undone"
	case OutcomeScrounger:
		return "scrounger"
	case OutcomeNotEligible:
		return "not-eligible"
	case OutcomeEliminated:
		return "eliminated"
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// Stats aggregates the mechanism's behaviour for the evaluation figures.
type Stats struct {
	// Replies counts network replies per Figure-6 outcome.
	Replies [numOutcomes]int64

	// Ordinals[i] counts reservations that were the (i+1)-th simultaneous
	// circuit at their input port (Table 5); ReserveFailedStorage counts
	// reservations rejected for lack of a free entry, and
	// ReserveFailedConflict those rejected by the output-port rule.
	Ordinals              [8]int64
	ReserveFailedStorage  int64
	ReserveFailedConflict int64

	// CircuitsBuilt counts complete end-to-end reservations;
	// CircuitsUndone counts built circuits torn down unused.
	CircuitsBuilt  int64
	CircuitsUndone int64

	// ScroungerRides counts circuit borrowings; EliminatedAcks counts
	// L1_DATA_ACK messages removed by NoAck.
	ScroungerRides int64
	EliminatedAcks int64

	// ProbesSent counts the Déjà-Vu comparator's setup flits.
	ProbesSent int64

	// WaitedForWindow accumulates cycles replies waited for a timed slot.
	WaitedForWindow int64
}

// Add folds o's counters into s — the parallel engine's per-shard shares
// merge into a whole-run total this way. Every field is a sum, so the fold
// is order-independent and bit-exact.
func (s *Stats) Add(o *Stats) {
	for i := range s.Replies {
		s.Replies[i] += o.Replies[i]
	}
	for i := range s.Ordinals {
		s.Ordinals[i] += o.Ordinals[i]
	}
	s.ReserveFailedStorage += o.ReserveFailedStorage
	s.ReserveFailedConflict += o.ReserveFailedConflict
	s.CircuitsBuilt += o.CircuitsBuilt
	s.CircuitsUndone += o.CircuitsUndone
	s.ScroungerRides += o.ScroungerRides
	s.EliminatedAcks += o.EliminatedAcks
	s.ProbesSent += o.ProbesSent
	s.WaitedForWindow += o.WaitedForWindow
}

// ReplyTotal returns the Figure-6 denominator: all replies including the
// eliminated acknowledgements (counted at zero latency, as in the paper).
func (s *Stats) ReplyTotal() int64 {
	var t int64
	for _, v := range s.Replies {
		t += v
	}
	return t
}

// OutcomeFraction returns the share of replies with the given outcome.
func (s *Stats) OutcomeFraction(o Outcome) float64 {
	t := s.ReplyTotal()
	if t == 0 {
		return 0
	}
	return float64(s.Replies[o]) / float64(t)
}
