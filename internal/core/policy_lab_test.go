package core

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// TestProfiledDemotionAndReadmission drives the profiled-hybrid decision
// logic directly: a flow whose replies keep missing their circuits is
// demoted after one full window, its requests travel as packets for the
// backoff period, and it is then re-admitted with a clean window.
func TestProfiledDemotionAndReadmission(t *testing.T) {
	p := &profiledPolicy{}
	mg := NewManager(Options{
		Mechanism: MechComplete, MaxCircuitsPerPort: 5,
		Policy:         "profiled-hybrid",
		ProfileWindow:  4,
		ProfileBackoff: 3,
	}, mesh.New(4, 4))
	p.Attach(mg)

	req := &noc.Message{Src: 1, Dst: 6}
	rep := &noc.Message{Src: 6, Dst: 1} // the reply's endpoints are swapped

	// A window of failures demotes the flow. Observations apply at the
	// cycle epilogue, so each cycle ends with a FlushCycle like the kernel's.
	for i := 0; i < 4; i++ {
		if !p.admit(mg, req) {
			t.Fatalf("request %d: flow demoted before its window closed", i)
		}
		p.Observe(mg, rep.Src, rep, OutcomeFailed)
		p.flushCycle(mg, sim.Cycle(i))
	}
	if p.demotions != 1 {
		t.Fatalf("demotions = %d, want 1", p.demotions)
	}

	// Demoted requests are packets for exactly the backoff period.
	for i := 0; i < 3; i++ {
		if p.admit(mg, req) {
			t.Fatalf("request %d during backoff admitted", i)
		}
	}
	if !p.admit(mg, req) {
		t.Fatal("flow not re-admitted after backoff")
	}
	if p.circuitReqs[0] != 5 || p.packetReqs[0] != 3 {
		t.Fatalf("circuit/packet requests = %d/%d, want 5/3", p.circuitReqs[0], p.packetReqs[0])
	}

	// A winning window keeps the re-admitted flow on circuits.
	p.Observe(mg, rep.Src, rep, OutcomeCircuit)
	for i := 0; i < 3; i++ {
		p.Observe(mg, rep.Src, rep, OutcomeCircuit)
	}
	p.flushCycle(mg, 10)
	if p.demotions != 1 || !p.admit(mg, req) {
		t.Fatal("winning flow was demoted")
	}

	// Outcomes that say nothing about the flow leave the window alone.
	p.Observe(mg, rep.Src, rep, OutcomeScrounger)
	p.Observe(mg, rep.Src, rep, OutcomeEliminated)
	p.flushCycle(mg, 11)
	if f := p.flows[0][flowKey{src: 1, dst: 6}]; f.winDone != 0 {
		t.Fatalf("neutral outcomes advanced the window: winDone = %d", f.winDone)
	}
}

// TestProfiledThreshold checks the demotion boundary: a flow at exactly
// the threshold percentage survives; one reply short is demoted.
func TestProfiledThreshold(t *testing.T) {
	for _, tc := range []struct {
		wins    int
		demoted bool
	}{{2, false}, {1, true}} {
		p := &profiledPolicy{}
		mg := NewManager(Options{
			Mechanism: MechComplete, MaxCircuitsPerPort: 5,
			Policy:        "profiled-hybrid",
			ProfileWindow: 4, ProfileThresholdPct: 50,
		}, mesh.New(4, 4))
		p.Attach(mg)
		req := &noc.Message{Src: 0, Dst: 5}
		rep := &noc.Message{Src: 5, Dst: 0}
		p.admit(mg, req)
		for i := 0; i < 4; i++ {
			o := OutcomeFailed
			if i < tc.wins {
				o = OutcomeCircuit
			}
			p.Observe(mg, rep.Src, rep, o)
		}
		p.flushCycle(mg, 0)
		if got := !p.admit(mg, req); got != tc.demoted {
			t.Errorf("wins=%d: demoted=%v, want %v", tc.wins, got, tc.demoted)
		}
	}
}

// TestDynVCAdaptation drives the per-router partition controller: windows
// with failures grow the usable VC count to the maximum, clean windows
// shrink it back to the minimum, and both bounds hold.
func TestDynVCAdaptation(t *testing.T) {
	p := &dynVCPolicy{}
	mg := NewManager(Options{
		Mechanism: MechFragmented, MaxCircuitsPerPort: 4,
		Policy:   "dynamic-vc",
		DynVCMin: 1, DynVCMax: 4, DynVCWindow: 2,
	}, mesh.New(4, 4))
	p.Attach(mg)

	const id = 3
	if p.limit[id] != 1 {
		t.Fatalf("initial limit = %d, want DynVCMin = 1", p.limit[id])
	}
	failWindow := func() {
		p.attempts[id] = 2
		p.fails[id] = 1
		p.adapt(mg, id)
	}
	cleanWindow := func() {
		p.attempts[id] = 2
		p.fails[id] = 0
		p.adapt(mg, id)
	}

	for i := 0; i < 5; i++ {
		failWindow()
	}
	if p.limit[id] != 4 {
		t.Fatalf("limit after failing windows = %d, want capped at DynVCMax = 4", p.limit[id])
	}
	if p.grows[0] != 3 {
		t.Fatalf("grows = %d, want 3 (1 -> 4)", p.grows[0])
	}

	for i := 0; i < 5; i++ {
		cleanWindow()
	}
	if p.limit[id] != 1 {
		t.Fatalf("limit after clean windows = %d, want floored at DynVCMin = 1", p.limit[id])
	}
	if p.shrinks[0] != 3 {
		t.Fatalf("shrinks = %d, want 3 (4 -> 1)", p.shrinks[0])
	}

	// A half-open window adapts nothing.
	p.attempts[id], p.fails[id] = 1, 1
	p.adapt(mg, id)
	if p.limit[id] != 1 || p.attempts[id] != 1 {
		t.Fatal("adapt fired before the window closed")
	}

	// Other routers are independent.
	if p.limit[0] != 1 || p.attempts[0] != 0 {
		t.Fatal("adaptation leaked to another router")
	}
}

// TestPolicyNetConfigs pins the network each new policy provisions:
// profiled-hybrid inherits the complete mechanism's unbuffered circuit VC
// and YX replies; dynamic-vc provisions its maximum partition in hardware.
func TestPolicyNetConfigs(t *testing.T) {
	m := mesh.New(4, 4)

	cfg := NetConfigFor(m, Options{
		Mechanism: MechComplete, MaxCircuitsPerPort: 5, NoAck: true,
		Policy: "profiled-hybrid",
	})
	if cfg.ReplyCircuitVCs != 1 || !cfg.CircuitVCUnbuffered || cfg.RepRouting != mesh.RouteYX {
		t.Fatalf("profiled-hybrid network = %+v, want the complete mechanism's", cfg)
	}

	cfg = NetConfigFor(m, Options{
		Mechanism: MechFragmented, MaxCircuitsPerPort: 4,
		Policy: "dynamic-vc", DynVCMax: 4,
	})
	if cfg.VCsPerVN[noc.VNReply] != 5 || cfg.ReplyCircuitVCs != 4 {
		t.Fatalf("dynamic-vc network = %+v, want 1+DynVCMax reply VCs with DynVCMax reserved", cfg)
	}
	if cfg.CircuitVCUnbuffered {
		t.Fatal("dynamic-vc partition must stay buffered (fragmented family)")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("dynamic-vc network invalid: %v", err)
	}
}

// TestPolicyValidateErrors: every knob misconfiguration for the lab
// policies is rejected with a specific error, and PolicyFor refuses
// unregistered names.
func TestPolicyValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		o    Options
	}{
		{"profiled wrong mechanism", Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 4, Policy: "profiled-hybrid"}},
		{"profiled negative window", Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Policy: "profiled-hybrid", ProfileWindow: -1}},
		{"profiled pct over 100", Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Policy: "profiled-hybrid", ProfileThresholdPct: 150}},
		{"dynvc wrong mechanism", Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Policy: "dynamic-vc"}},
		{"dynvc negative min", Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 4, Policy: "dynamic-vc", DynVCMin: -1}},
		{"dynvc min over max", Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 4, Policy: "dynamic-vc", DynVCMin: 4, DynVCMax: 2}},
		{"dynvc max over 6", Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 8, Policy: "dynamic-vc", DynVCMax: 7}},
		{"dynvc too few table entries", Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 2, Policy: "dynamic-vc", DynVCMax: 4}},
		{"unregistered policy", Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Policy: "no-such-policy"}},
	}
	for _, c := range cases {
		if err := c.o.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.o)
		}
	}
	if _, err := PolicyFor(Options{Policy: "no-such-policy"}); err == nil {
		t.Error("PolicyFor accepted an unregistered policy")
	}
}

// TestPolicyDescribeMetrics: the lab policies export their counters under
// the circ/ namespace so sweeps and the service surface them — and the
// per-shard slots sum under one name, keeping totals shard-count-blind.
func TestPolicyDescribeMetrics(t *testing.T) {
	p := &profiledPolicy{}
	p.sizeShards(2)
	p.circuitReqs[0], p.circuitReqs[1] = 4, 3
	p.packetReqs[0], p.packetReqs[1] = 1, 2
	p.demotions = 1
	reg := sim.NewRegistry()
	p.DescribeMetrics(reg)
	for name, want := range map[string]int64{
		"circ/profiled_circuit_requests": 7,
		"circ/profiled_packet_requests":  3,
		"circ/profiled_demotions":        1,
	} {
		if got := reg.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	d := &dynVCPolicy{}
	d.grows, d.shrinks = []int64{3, 2}, []int64{1, 1}
	rd := sim.NewRegistry()
	d.DescribeMetrics(rd)
	if rd.Value("circ/dynvc_grows") != 5 || rd.Value("circ/dynvc_shrinks") != 2 {
		t.Errorf("dynvc counters = %d/%d, want 5/2", rd.Value("circ/dynvc_grows"), rd.Value("circ/dynvc_shrinks"))
	}
}
