package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Timing constants of the paper's Section 4.7 estimate: "the number of hops
// between the current router and the destination, the hop latency for the
// request (five cycles/hop) and for the reply (two cycles/hop), and the
// cache hit latency".
const (
	reqHopLatency = 5
	repHopLatency = 2
	// estimateOverhead covers the fixed per-transaction cycles outside
	// the hop terms: the remaining pipeline stages of the reserving
	// router plus ejection (5), destination scheduling (1) and the
	// reply's NI injection turnaround (1). Verified by the timed-circuit
	// calibration test: an undisturbed request yields a reservation the
	// reply meets with zero waiting and zero slack.
	estimateOverhead = 7
	// injectLead is the NI-to-router link latency: a reply injected at
	// cycle t reaches the first router's circuit check at t+injectLead.
	injectLead = 2
)

// circKey names a circuit: the destination (original requestor) plus the
// cache-line address, exactly the identifying pair stored in the routers.
type circKey struct {
	dest  mesh.NodeID
	block uint64
}

// record is the circuit information kept "in the network interface where
// the circuit starts" (the request's destination, where the reply will be
// injected).
type record struct {
	key      circKey
	complete bool // fully built end to end
	failed   bool // could not be (completely) built
	reserved int  // routers reserved (fragmented partial paths)
	path     int  // routers on the full path
	injectVC int  // VC at the first router's local input (0 = allocator's choice)
	timed    bool
	injStart sim.Cycle // earliest reply injection cycle
	injEnd   sim.Cycle // latest reply injection cycle
	inUse    bool      // a scrounger is currently riding the circuit
	src      mesh.NodeID
	// pendingUndo defers teardown until a riding scrounger finishes: the
	// coherence protocol decided to undo the circuit mid-ride.
	pendingUndo bool
	// probeUp marks that the comparator's setup flit has been injected
	// and injStart holds the reply's no-overtake launch cycle.
	probeUp bool
}

// walk is the reservation state a request carries along its path.
type walk struct {
	routers      int
	prevVC       int // VC reserved at the previous router (fragmented)
	lastReserved bool
	// injLo/injHi is the running intersection of per-router injection
	// constraints for timed circuits; an empty intersection means the
	// request's own delays made the schedule infeasible.
	injLo, injHi sim.Cycle
	// sched is the fixed injection cycle of a postponed reservation,
	// pinned at the first router.
	sched    sim.Cycle
	hasSched bool
}

// Manager implements the Reactive Circuits mechanism: it owns every
// router's circuit table, every NI's circuit registry, and the statistics
// of Section 5.2. It plugs into the network as both the router-side
// CircuitHandler and the NI-side NIHook.
type Manager struct {
	opts Options
	m    mesh.Mesh
	net  *noc.Network

	tables []*table
	regs   []map[circKey]*record
	walks  map[*noc.Message]*walk
	rides  map[*noc.Message]*record
	// walkFree recycles walk objects: a walk lives strictly between the
	// first OnRequestVA on a path and recordCircuit/probe delivery, so a
	// LIFO free-list is deterministic and keeps reservation allocation-free.
	walkFree []*walk

	// Stats aggregates the circuit-construction outcomes (Figure 6,
	// Table 5) for the run.
	Stats Stats

	tracer *trace.Buffer
	fault  FaultHook
}

// SetTracer attaches a lifecycle tracer for circuit events (nil detaches).
func (mg *Manager) SetTracer(t *trace.Buffer) { mg.tracer = t }

var (
	_ noc.CircuitHandler = (*Manager)(nil)
	_ noc.NIHook         = (*Manager)(nil)
)

// NewManager builds the mechanism state for a chip of the given mesh. Call
// Bind after constructing the network.
func NewManager(opts Options, m mesh.Mesh) *Manager {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	mg := &Manager{
		opts:   opts,
		m:      m,
		tables: make([]*table, m.Nodes()),
		regs:   make([]map[circKey]*record, m.Nodes()),
		walks:  map[*noc.Message]*walk{},
		rides:  map[*noc.Message]*record{},
	}
	for i := range mg.tables {
		mg.tables[i] = &table{}
		mg.regs[i] = map[circKey]*record{}
	}
	return mg
}

// NetConfigFor returns the network microarchitecture each mechanism needs:
// the baseline Table 4 router, the fragmented variant's third buffered
// reply VC, or the complete variants' unbuffered circuit VC. All circuit
// variants route requests XY and replies YX so both traverse the same
// routers.
func NetConfigFor(m mesh.Mesh, opts Options) noc.NetConfig {
	cfg := noc.BaselineConfig(m)
	cfg.NoPool = opts.NoPool
	switch opts.Mechanism {
	case MechNone:
		cfg.Speculative = opts.SpeculativeRouter
		return cfg
	case MechFragmented:
		cfg.VCsPerVN[noc.VNReply] = 3
		cfg.ReplyCircuitVCs = 2
	case MechComplete:
		cfg.ReplyCircuitVCs = 1
		cfg.CircuitVCUnbuffered = true
	case MechIdeal:
		cfg.ReplyCircuitVCs = 1 // keeps its buffer: ideal is not area-reduced
	case MechProbe:
		// Probe setup keeps a buffered circuit VC and baseline routing
		// (probe and reply travel the same direction); replies waiting
		// for their setup must not serialize the interface.
		cfg.ReplyCircuitVCs = 1
		cfg.AllowQueueOvertake = true
		return cfg
	}
	cfg.RepRouting = mesh.RouteYX
	return cfg
}

// Bind attaches the manager to its network (needed for undo walks and
// scrounger re-injection).
func (mg *Manager) Bind(net *noc.Network) { mg.net = net }

// Options returns the variant this manager implements.
func (mg *Manager) Options() Options { return mg.opts }

// circuitVC returns the reply VC index circuits travel on in the complete
// and ideal mechanisms.
func (mg *Manager) circuitVC() int {
	return mg.net.Config().CircuitVC()
}

// pathHops returns the total hop count of the request (and reply) path.
func (mg *Manager) pathHops(msg *noc.Message) int {
	return mg.m.Hops(msg.Src, msg.Dst)
}

// newWalk returns a reset walk from the free-list (or a fresh one).
func (mg *Manager) newWalk() *walk {
	var w *walk
	if n := len(mg.walkFree); n > 0 {
		w = mg.walkFree[n-1]
		mg.walkFree[n-1] = nil
		mg.walkFree = mg.walkFree[:n-1]
	} else {
		w = new(walk)
	}
	*w = walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	return w
}

func (mg *Manager) freeWalk(w *walk) {
	if w != nil {
		mg.walkFree = append(mg.walkFree, w)
	}
}

// ---------------------------------------------------------------------------
// Router-side hooks (noc.CircuitHandler)
// ---------------------------------------------------------------------------

// OnRequestVA reserves the reply's circuit at this router, in parallel with
// the request's VC allocation. The reply will enter via port out (where the
// request leaves) and exit via port in (where the request entered).
func (mg *Manager) OnRequestVA(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, now sim.Cycle) {
	w := mg.walks[msg]
	if w == nil {
		w = mg.newWalk()
		mg.walks[msg] = w
	}
	w.routers++
	switch mg.opts.Mechanism {
	case MechIdeal:
		mg.reserveIdeal(id, msg, in, out, w, now)
	case MechComplete:
		mg.reserveComplete(id, msg, in, out, w, now)
	case MechFragmented:
		mg.reserveFragmented(id, msg, in, out, w, now)
	case MechProbe:
		if msg.SetupProbe {
			mg.reserveProbe(id, msg, in, out, now)
		}
	}
}

// reserveProbe installs a *forward* circuit entry as a setup flit crosses
// the router: the data reply behind it enters and leaves through the
// probe's own ports. On a conflict or full storage the setup fails and the
// already-built prefix is torn down with a backward credit walk.
func (mg *Manager) reserveProbe(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, now sim.Cycle) {
	if msg.BuildFailed {
		return
	}
	tb := mg.tables[id]
	fail := func(counter *int64) {
		msg.BuildFailed = true
		*counter++
		if in != mesh.Local {
			tok := &noc.UndoToken{Dest: msg.Dst, Block: msg.Block}
			mg.net.Router(id).SendUndoCredit(in, tok, now)
		}
	}
	if tb.conflict(in, out, 0, noWindow, now) {
		fail(&mg.Stats.ReserveFailedConflict)
		return
	}
	e := entry{
		built: true, dest: msg.Dst, block: msg.Block,
		out: out, outVC: mg.circuitVC(), vc: mg.circuitVC(),
		winStart: 0, winEnd: noWindow,
	}
	ins, ord := tb.insert(in, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		fail(&mg.Stats.ReserveFailedStorage)
		return
	}
	mg.noteOrdinal(ord)
	mg.net.Events().CircuitWrites++
}

func (mg *Manager) reserveIdeal(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: mg.circuitVC(), vc: mg.circuitVC(),
		winStart: 0, winEnd: noWindow,
	}
	_, ord := mg.tables[id].insert(out, e, 0, now)
	mg.noteOrdinal(ord)
	mg.net.Events().CircuitWrites++
	w.lastReserved = true
}

func (mg *Manager) reserveComplete(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	if msg.BuildFailed {
		return // a failed all-or-nothing circuit reserves nothing further
	}
	tb := mg.tables[id]
	cvc := mg.circuitVC()

	winStart, winEnd := sim.Cycle(0), noWindow
	injLo, injHi := w.injLo, w.injHi
	if mg.opts.Timed {
		var ok bool
		winStart, winEnd, injLo, injHi, ok = mg.timedWindow(id, msg, out, in, w, now)
		if !ok {
			mg.failCircuit(id, msg, in, now, &mg.Stats.ReserveFailedConflict)
			return
		}
	} else if tb.conflict(out, in, winStart, winEnd, now) {
		mg.failCircuit(id, msg, in, now, &mg.Stats.ReserveFailedConflict)
		return
	}

	outVC := cvc
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: outVC, vc: cvc,
		winStart: winStart, winEnd: winEnd,
	}
	ins, ord := tb.insert(out, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		mg.failCircuit(id, msg, in, now, &mg.Stats.ReserveFailedStorage)
		return
	}
	if mg.fault != nil {
		if ins.timed() {
			if end, ok := mg.fault.TruncateWindow(id, ins.winStart, ins.winEnd, now); ok {
				ins.winEnd = end
			}
		}
		if mg.fault.FlipBuiltBit(id, now) {
			ins.built = false
		}
	}
	mg.noteOrdinal(ord)
	mg.net.Events().CircuitWrites++
	w.injLo, w.injHi = injLo, injHi
	w.lastReserved = true
	if mg.tracer != nil {
		note := fmt.Sprintf("in=%v out=%v", out, in)
		if mg.opts.Timed {
			note += fmt.Sprintf(" window=[%d,%d]", winStart, winEnd)
		}
		mg.tracer.Record(now, trace.Reserve, msg.ID, id, note)
	}
}

// timedWindow computes this router's reservation window, applying the
// variant's slack, delay search and postponement, and intersecting the
// injection constraints accumulated along the path. inUnit is the input
// unit holding the new entry (the request's output port) and outPort the
// entry's output port (the request's input port).
func (mg *Manager) timedWindow(id mesh.NodeID, msg *noc.Message, inUnit, outPort mesh.Dir, w *walk, now sim.Cycle) (s, e, lo, hi sim.Cycle, ok bool) {
	h := sim.Cycle(mg.m.Hops(id, msg.Dst))
	size := sim.Cycle(msg.ExpectedReplySize)
	if size <= 0 {
		size = 1
	}
	H := sim.Cycle(mg.pathHops(msg))
	slackTot := sim.Cycle(mg.opts.SlackPerHop) * H
	delayTot := sim.Cycle(mg.opts.DelayPerHop) * H
	if delayTot > slackTot {
		delayTot = slackTot // delays must stay inside downstream slack
	}
	postTot := sim.Cycle(mg.opts.PostponePerHop) * H

	var base sim.Cycle
	if mg.opts.PostponePerHop > 0 {
		// Postponed circuits pin the reply's injection cycle at the
		// first router; every later router reserves the exact slot that
		// schedule implies, immune to request jitter.
		if !w.hasSched {
			head := now + (reqHopLatency+repHopLatency)*h + msg.ExpectedProcDelay +
				estimateOverhead + sim.Cycle(msg.Size-1)
			w.sched = head - repHopLatency*h - injectLead + postTot
			w.hasSched = true
		}
		base = w.sched + injectLead + repHopLatency*h
	} else {
		base = now + (reqHopLatency+repHopLatency)*h + msg.ExpectedProcDelay +
			estimateOverhead + sim.Cycle(msg.Size-1) + msg.AccumDelay
	}

	tb := mg.tables[id]
	maxDelta := delayTot - msg.AccumDelay
	if maxDelta < 0 {
		maxDelta = 0
	}
	for delta := sim.Cycle(0); delta <= maxDelta; delta++ {
		start := base + delta
		end := start + size - 1 + slackTot
		// Injection constraint from this router: the reply injected at
		// cycle t sees this router at t + injectLead + repHopLatency*h,
		// which must fall in [start, start+slackTot].
		cLo := start - repHopLatency*h - injectLead
		cHi := cLo + slackTot
		nLo, nHi := maxCycle(w.injLo, cLo), minCycle(w.injHi, cHi)
		if nLo <= nHi && !tb.conflict(inUnit, outPort, start, end, now) {
			msg.AccumDelay += delta
			return start, end, nLo, nHi, true
		}
		if mg.opts.DelayPerHop == 0 {
			break // no delay search in the basic/slack-only variants
		}
	}
	return 0, 0, 0, 0, false
}

func (mg *Manager) reserveFragmented(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	tb := mg.tables[id]
	cfg := mg.net.Config()
	vc := tb.freeVC(out, cfg.CircuitVC(), cfg.ReplyCircuitVCs, now)
	if vc < 0 {
		// No reserved VC available: keep the partial path and retry at
		// the next hop (Section 4.2, fragmented alternative).
		mg.Stats.ReserveFailedStorage++
		w.prevVC = -1
		w.lastReserved = false
		return
	}
	e := entry{
		built: true, dest: msg.Src, block: msg.Block,
		out: in, outVC: w.prevVC, vc: vc,
		winStart: 0, winEnd: noWindow,
	}
	ins, ord := tb.insert(out, e, mg.opts.MaxCircuitsPerPort, now)
	if ins == nil {
		mg.Stats.ReserveFailedStorage++
		w.prevVC = -1
		w.lastReserved = false
		return
	}
	mg.noteOrdinal(ord)
	mg.net.Events().CircuitWrites++
	msg.ReservedHops++
	w.prevVC = vc
	w.lastReserved = true
}

// failCircuit marks an all-or-nothing reservation failed and tears down the
// prefix reserved so far. Non-timed prefixes are undone with credits
// walking toward the circuit destination; timed prefixes self-expire when
// their finish counters run out.
func (mg *Manager) failCircuit(id mesh.NodeID, msg *noc.Message, in mesh.Dir, now sim.Cycle, counter *int64) {
	msg.BuildFailed = true
	*counter++
	if mg.opts.Timed || in == mesh.Local {
		return
	}
	tok := &noc.UndoToken{Dest: msg.Src, Block: msg.Block}
	mg.net.Router(id).SendUndoCredit(in, tok, now)
}

func (mg *Manager) noteOrdinal(ord int) {
	if ord < 1 {
		return
	}
	if ord > len(mg.Stats.Ordinals) {
		ord = len(mg.Stats.Ordinals)
	}
	mg.Stats.Ordinals[ord-1]++
}

// Bypass implements the input-unit circuit check of Figure 3.
func (mg *Manager) Bypass(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) (mesh.Dir, int, bool) {
	msg := f.Msg
	if !msg.UseCircuit {
		return 0, 0, false
	}
	e := mg.tables[id].find(in, msg.CircDest, msg.CircBlock, now)
	if e == nil {
		if mg.opts.Mechanism == MechFragmented {
			return 0, 0, false // gap in a fragmented circuit: normal pipeline
		}
		panic(fmt.Sprintf("core: reply msg %d expected a circuit at router %d port %v (invariant violated)", msg.ID, id, in))
	}
	if f.Head {
		if e.inUse != nil && e.inUse != msg {
			panic(fmt.Sprintf("core: circuit (%d,%#x) at router %d double-claimed", e.dest, e.block, id))
		}
		e.inUse = msg
	} else if e.inUse != msg {
		panic(fmt.Sprintf("core: body flit of msg %d on unclaimed circuit at router %d", msg.ID, id))
	}
	if mg.opts.Mechanism == MechFragmented && e.outVC < 0 && e.out != mesh.Local {
		// The next hop is not reserved: the flits re-enter the normal
		// pipeline from this reserved VC's buffer; the entry frees when
		// the tail has arrived.
		if f.Tail {
			e.built = false
			e.inUse = nil
			mg.net.Events().CircuitWrites++
		}
		return 0, 0, false
	}
	outVC := e.outVC
	if outVC < 0 {
		outVC = 0
	}
	return e.out, outVC, true
}

// Release frees a circuit when a tail flit leaves a router on it; a
// scrounger only releases its claim so the owner can still ride.
func (mg *Manager) Release(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) {
	e := mg.tables[id].find(in, f.Msg.CircDest, f.Msg.CircBlock, now)
	if e == nil || e.inUse != f.Msg {
		return
	}
	e.inUse = nil
	if !f.Msg.Scrounging {
		e.built = false
		mg.net.Events().CircuitWrites++
	}
}

// OnUndo clears the reservation named by the token at this router and
// steers the walk onward: toward the circuit destination for the paper's
// reversed entries, or backward toward the setup source for the probe
// comparator's forward entries.
func (mg *Manager) OnUndo(id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	if mg.opts.Mechanism == MechProbe {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if e := mg.tables[id].clear(d, tok.Dest, tok.Block, now); e != nil {
				mg.net.Events().CircuitWrites++
				return d, true // continue out of the entry's input side
			}
		}
		return 0, false
	}
	if mg.opts.Mechanism == MechFragmented {
		// Gap-tolerant walk: clear what exists and keep following the
		// reply's deterministic YX path toward the destination.
		if mg.tables[id].clear(in, tok.Dest, tok.Block, now) != nil {
			mg.net.Events().CircuitWrites++
		}
		return mg.m.NextDir(mesh.RouteYX, id, tok.Dest), true
	}
	e := mg.tables[id].clear(in, tok.Dest, tok.Block, now)
	if e == nil {
		return 0, false
	}
	mg.net.Events().CircuitWrites++
	return e.out, true
}

// BypassBuffered reports whether circuit flits may wait in buffers:
// fragmented and ideal routers keep them; complete routers must never block
// a circuit flit.
func (mg *Manager) BypassBuffered() bool {
	switch mg.opts.Mechanism {
	case MechFragmented, MechIdeal, MechProbe:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// NI-side hooks (noc.NIHook)
// ---------------------------------------------------------------------------

// OnInject classifies and steers a message about to leave its source NI.
// For requests it is a no-op. For replies it decides: ride the circuit the
// request built, wait for (or miss) a timed slot, scrounge a foreign
// circuit, or travel as a normal packet.
func (mg *Manager) OnInject(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	if msg.VN != noc.VNReply || msg.Scrounging {
		return now
	}
	if mg.opts.Mechanism == MechProbe {
		return mg.injectProbeMode(ni, msg, now)
	}
	key := circKey{dest: msg.Dst, block: msg.Block}
	rec := mg.regs[ni][key]
	if rec != nil {
		return mg.injectOwn(ni, msg, rec, key, now)
	}
	if msg.Classified {
		return now // a continuation leg already classified
	}
	// No circuit of its own: try borrowing one (scrounger messages).
	if mg.opts.Reuse {
		if r := mg.scroungeTarget(ni, msg); r != nil {
			r.inUse = true
			mg.rides[msg] = r
			msg.Scrounging = true
			msg.FinalDst = msg.Dst
			msg.Dst = r.key.dest
			msg.UseCircuit = true
			msg.InjectVC = r.injectVC
			msg.CircDest = r.key.dest
			msg.CircBlock = r.key.block
			mg.classify(msg, OutcomeScrounger)
			mg.Stats.ScroungerRides++
			if mg.tracer != nil {
				mg.tracer.Record(now, trace.Scrounge, msg.ID, ni,
					fmt.Sprintf("rides (%d,%#x) toward %d", r.key.dest, r.key.block, msg.FinalDst))
			}
			return now
		}
	}
	if msg.OutcomeHint != 0 {
		mg.classify(msg, Outcome(msg.OutcomeHint))
	} else {
		mg.classify(msg, OutcomeNotEligible)
	}
	return now
}

// injectProbeMode implements the probe-setup comparator's injection side:
// an eligible reply launches a 1-flit setup flit and may only leave once
// the setup has finished building the whole circuit (the classic
// setup-delay schemes of the paper's references [12, 14]; completion is
// learned instantly here, which is *optimistic* for the comparator). A
// failed setup sends the reply through the normal pipeline. With a 7-cycle
// L2 hit the setup traversal is never hidden — the paper's argument for
// reserving with the request instead.
func (mg *Manager) injectProbeMode(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	key := circKey{dest: msg.Dst, block: msg.Block}
	rec := mg.regs[ni][key]
	if msg.SetupProbe {
		return now // probes leave immediately
	}
	if !msg.WantCircuit {
		if !msg.Classified {
			mg.classify(msg, OutcomeNotEligible)
		}
		return now
	}
	if rec == nil {
		probe := mg.net.NewMessage()
		probe.ID = mg.net.NextMsgID()
		probe.Src, probe.Dst = ni, msg.Dst
		probe.VN, probe.Size = noc.VNReply, 1
		probe.Block = msg.Block
		probe.WantCircuit = true
		probe.SetupProbe = true
		mg.net.NI(ni).SendFront(probe, now)
		mg.Stats.ProbesSent++
		mg.regs[ni][key] = &record{key: key, src: ni}
		return now + 1
	}
	if !rec.probeUp {
		return now + 1 // the setup is still traversing
	}
	delete(mg.regs[ni], key)
	msg.WantCircuit = false
	if rec.failed {
		mg.classify(msg, OutcomeFailed)
		return now
	}
	msg.UseCircuit = true
	msg.CircDest = msg.Dst
	msg.CircBlock = msg.Block
	mg.Stats.CircuitsBuilt++
	mg.classify(msg, OutcomeCircuit)
	return now
}

// injectOwn handles a reply whose request reserved a circuit.
func (mg *Manager) injectOwn(ni mesh.NodeID, msg *noc.Message, rec *record, key circKey, now sim.Cycle) sim.Cycle {
	if rec.failed && mg.opts.Mechanism != MechFragmented {
		delete(mg.regs[ni], key)
		mg.classify(msg, OutcomeFailed)
		return now
	}
	if rec.inUse {
		return now + 1 // a scrounger is riding; wait for it to clear
	}
	if rec.timed {
		if now > rec.injEnd {
			// Missed the slot (cache delays, blocked lines): undo the
			// circuit and use the normal pipeline (Section 4.7).
			delete(mg.regs[ni], key)
			mg.Stats.CircuitsUndone++
			mg.classify(msg, OutcomeUndone)
			if mg.tracer != nil {
				mg.tracer.Record(now, trace.CircuitUndone, msg.ID, ni,
					fmt.Sprintf("missed window [%d,%d]", rec.injStart, rec.injEnd))
			}
			return now
		}
		if now < rec.injStart {
			mg.Stats.WaitedForWindow++
			return rec.injStart
		}
	}
	delete(mg.regs[ni], key)
	if mg.opts.Mechanism == MechFragmented {
		if rec.reserved == 0 {
			mg.classify(msg, OutcomeFailed)
			return now
		}
		msg.UseCircuit = true
		msg.InjectVC = rec.injectVC
		msg.CircDest = msg.Dst
		msg.CircBlock = msg.Block
		if rec.complete {
			mg.classify(msg, OutcomeCircuit)
		} else {
			mg.classify(msg, OutcomeFailed) // partial path still rides its fragments
		}
		return now
	}
	msg.UseCircuit = true
	msg.InjectVC = rec.injectVC
	msg.CircDest = msg.Dst
	msg.CircBlock = msg.Block
	mg.classify(msg, OutcomeCircuit)
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.CircuitRide, msg.ID, ni,
			fmt.Sprintf("dest=%d block=%#x", msg.Dst, msg.Block))
	}
	return now
}

// scroungeTarget picks the idle complete circuit at this NI that brings the
// reply closest to its destination, if any helps at all.
func (mg *Manager) scroungeTarget(ni mesh.NodeID, msg *noc.Message) *record {
	var best *record
	bestGain := 0
	from := mg.m.Hops(ni, msg.Dst)
	for _, r := range mg.regs[ni] {
		if !r.complete || r.failed || r.inUse || r.timed {
			continue
		}
		gain := from - mg.m.Hops(r.key.dest, msg.Dst)
		// Ties break on the circuit key, not map order: iteration order is
		// randomized per run, and a wandering pick here diverges whole runs.
		better := gain > bestGain
		if gain == bestGain && best != nil {
			better = r.key.dest < best.key.dest ||
				(r.key.dest == best.key.dest && r.key.block < best.key.block)
		}
		if better {
			best, bestGain = r, gain
		}
	}
	return best
}

func (mg *Manager) classify(msg *noc.Message, o Outcome) {
	if msg.Classified {
		return
	}
	msg.Classified = true
	mg.Stats.Replies[o]++
}

// OnDeliver finalizes a request's circuit record at the NI where its reply
// will start, and re-injects scrounger messages toward their destination.
func (mg *Manager) OnDeliver(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) bool {
	if msg.SetupProbe {
		mg.freeWalk(mg.walks[msg])
		delete(mg.walks, msg)
		// Tell the waiting reply (at the probe's source) how the setup
		// went — instantaneous here, an optimistic short-cut for the
		// comparator (a real design needs a confirmation message back).
		if rec := mg.regs[msg.Src][circKey{dest: msg.Dst, block: msg.Block}]; rec != nil {
			rec.probeUp = true
			rec.failed = msg.BuildFailed
			rec.complete = !msg.BuildFailed
		}
		// The probe dies here: it exists only to carry the walk.
		mg.net.FreeMessage(msg)
		return false
	}
	if msg.VN == noc.VNRequest {
		if msg.WantCircuit {
			mg.recordCircuit(ni, msg)
		}
		return true
	}
	if msg.Scrounging {
		rec := mg.rides[msg]
		if rec == nil {
			panic(fmt.Sprintf("core: scrounger msg %d has no ride record", msg.ID))
		}
		delete(mg.rides, msg)
		rec.inUse = false
		if rec.pendingUndo {
			// The protocol undid the circuit mid-ride; tear it down now
			// that the borrowed flits have cleared every router.
			mg.teardown(rec, now)
		}
		// Preserve the latency already spent, then continue toward the
		// real destination as a fresh injection.
		msg.QueueCredit += msg.InjectedAt - msg.EnqueuedAt
		msg.NetCredit += msg.DeliveredAt - msg.InjectedAt
		msg.Src = ni
		msg.Dst = msg.FinalDst
		msg.Scrounging = false
		msg.UseCircuit = false
		msg.InjectVC = 0
		msg.CircDest = 0
		msg.CircBlock = 0
		mg.net.NI(ni).Send(msg, now)
		return false
	}
	return true
}

// recordCircuit stores the finished reservation walk in this NI's registry.
func (mg *Manager) recordCircuit(ni mesh.NodeID, msg *noc.Message) {
	w := mg.walks[msg]
	delete(mg.walks, msg)
	if w == nil {
		// Zero-hop paths never touched a router; synthesize an empty walk.
		w = mg.newWalk()
	}
	defer mg.freeWalk(w)
	key := circKey{dest: msg.Src, block: msg.Block}
	path := mg.pathHops(msg) + 1
	rec := &record{key: key, path: path, src: ni}
	switch mg.opts.Mechanism {
	case MechIdeal, MechComplete:
		rec.complete = !msg.BuildFailed
		rec.failed = msg.BuildFailed
		rec.injectVC = mg.circuitVC()
		if rec.complete {
			mg.Stats.CircuitsBuilt++
		}
		if mg.opts.Timed && rec.complete {
			rec.timed = true
			rec.injStart, rec.injEnd = w.injLo, w.injHi
		}
	case MechFragmented:
		rec.reserved = msg.ReservedHops
		rec.complete = msg.ReservedHops == path
		rec.failed = !rec.complete
		if rec.complete {
			mg.Stats.CircuitsBuilt++
		}
		if w.lastReserved {
			rec.injectVC = w.prevVC
		}
	}
	mg.regs[ni][key] = rec
	if mg.tracer != nil {
		if rec.complete {
			note := fmt.Sprintf("dest=%d block=%#x", key.dest, key.block)
			if rec.timed {
				note += fmt.Sprintf(" window=[%d,%d]", rec.injStart, rec.injEnd)
			}
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitBuilt, msg.ID, ni, note)
		} else {
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitFailed, msg.ID, ni,
				fmt.Sprintf("dest=%d block=%#x reserved=%d/%d", key.dest, key.block, rec.reserved, rec.path))
		}
	}
}

// ---------------------------------------------------------------------------
// Coherence-protocol entry points
// ---------------------------------------------------------------------------

// Undo tears down the circuit starting at NI ni for (dest, block) before
// use — the coherence protocol calls this when an L2 forwards a request to
// an owning L1 and the L2→requestor circuit will never carry data. It
// reports whether a built circuit was actually undone.
func (mg *Manager) Undo(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) bool {
	key := circKey{dest: dest, block: block}
	rec := mg.regs[ni][key]
	if rec == nil {
		return false
	}
	delete(mg.regs[ni], key)
	if mg.opts.Mechanism == MechFragmented {
		if rec.reserved == 0 {
			return false
		}
	} else if rec.failed {
		return false // a failed all-or-nothing build already tore down
	}
	mg.Stats.CircuitsUndone++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.CircuitUndone, 0, ni,
			fmt.Sprintf("dest=%d block=%#x (forwarded request)", dest, block))
	}
	if rec.inUse {
		rec.pendingUndo = true // a scrounger is riding; tear down after it
		return true
	}
	mg.teardown(rec, now)
	return true
}

// teardown clears a built circuit's router entries.
func (mg *Manager) teardown(rec *record, now sim.Cycle) {
	switch {
	case mg.opts.Mechanism == MechIdeal:
		// Upper-bound model: clear the whole path instantly.
		mg.clearPath(rec.src, rec.key.dest, rec.key.block, now)
	case mg.opts.Timed:
		// Timed entries self-expire when their finish counters run out.
	case mg.opts.Mechanism == MechFragmented:
		// Fragmented circuits may have gaps: clear whatever is here and
		// send the walk toward the destination regardless, so entries
		// beyond a gap are still reclaimed.
		if mg.tables[rec.src].clear(mesh.Local, rec.key.dest, rec.key.block, now) != nil {
			mg.net.Events().CircuitWrites++
		}
		if fwd := mg.m.NextDir(mesh.RouteYX, rec.src, rec.key.dest); fwd != mesh.Local {
			tok := &noc.UndoToken{Dest: rec.key.dest, Block: rec.key.block}
			mg.net.Router(rec.src).SendUndoCredit(fwd, tok, now)
		}
	default:
		if e := mg.tables[rec.src].clear(mesh.Local, rec.key.dest, rec.key.block, now); e != nil {
			mg.net.Events().CircuitWrites++
			if e.out != mesh.Local {
				tok := &noc.UndoToken{Dest: rec.key.dest, Block: rec.key.block}
				mg.net.Router(rec.src).SendUndoCredit(e.out, tok, now)
			}
		}
	}
}

// clearPath removes every entry of a circuit along its YX path (ideal mode
// only, where teardown cost is not modelled).
func (mg *Manager) clearPath(from, dest mesh.NodeID, block uint64, now sim.Cycle) {
	path := mg.m.Path(mesh.RouteYX, from, dest)
	for i, node := range path {
		in := mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, node, path[i-1])
		}
		if mg.tables[node].clear(in, dest, block, now) != nil {
			mg.net.Events().CircuitWrites++
		}
	}
}

// dirBetween returns the port of `from` that faces the adjacent node `to`.
func dirBetween(m mesh.Mesh, from, to mesh.NodeID) mesh.Dir {
	for d := mesh.North; d <= mesh.West; d++ {
		if nb, ok := m.Neighbor(from, d); ok && nb == to {
			return d
		}
	}
	panic(fmt.Sprintf("core: nodes %d and %d are not adjacent", from, to))
}

// HasCircuit reports whether a (complete or partial) circuit for (dest,
// block) is registered at NI ni — the coherence layer uses it to decide
// whether a data reply will ride a complete circuit and its L1_DATA_ACK can
// be eliminated.
func (mg *Manager) HasCircuit(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) (complete, timedOK bool) {
	rec := mg.regs[ni][circKey{dest: dest, block: block}]
	if rec == nil || rec.failed || !rec.complete {
		return false, false
	}
	if rec.timed && now > rec.injEnd {
		return true, false
	}
	return true, true
}

// NoteEliminatedAck counts an L1_DATA_ACK removed by the NoAck
// optimization at NI ni; the paper counts these replies at zero latency.
func (mg *Manager) NoteEliminatedAck(ni mesh.NodeID, now sim.Cycle) {
	mg.Stats.Replies[OutcomeEliminated]++
	mg.Stats.EliminatedAcks++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.AckEliminated, 0, ni, "")
	}
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

func minCycle(a, b sim.Cycle) sim.Cycle {
	if a < b {
		return a
	}
	return b
}

// OpenCircuits returns how many reservations are live across every router
// table at cycle now — the occupancy level the metrics gauge samples.
func (mg *Manager) OpenCircuits(now sim.Cycle) int64 {
	var n int64
	for _, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			n += int64(tb.activeCount(d, now))
		}
	}
	return n
}

// DescribeMetrics registers the circuit-construction counters with reg
// under the circ/ scope. The occupancy gauge needs the current cycle and is
// registered by the chip layer, which owns the kernel.
func (mg *Manager) DescribeMetrics(reg *sim.Registry) {
	reg.Counter("circ/built", &mg.Stats.CircuitsBuilt)
	reg.Counter("circ/undone", &mg.Stats.CircuitsUndone)
	reg.Counter("circ/scrounger_rides", &mg.Stats.ScroungerRides)
	reg.Counter("circ/eliminated_acks", &mg.Stats.EliminatedAcks)
	reg.Counter("circ/probes", &mg.Stats.ProbesSent)
	reg.Counter("circ/reserve_failed_storage", &mg.Stats.ReserveFailedStorage)
	reg.Counter("circ/reserve_failed_conflict", &mg.Stats.ReserveFailedConflict)
	reg.Counter("circ/waited_for_window", &mg.Stats.WaitedForWindow)
}
