package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Timing constants of the paper's Section 4.7 estimate: "the number of hops
// between the current router and the destination, the hop latency for the
// request (five cycles/hop) and for the reply (two cycles/hop), and the
// cache hit latency".
const (
	reqHopLatency = 5
	repHopLatency = 2
	// estimateOverhead covers the fixed per-transaction cycles outside
	// the hop terms: the remaining pipeline stages of the reserving
	// router plus ejection (5), destination scheduling (1) and the
	// reply's NI injection turnaround (1). Verified by the timed-circuit
	// calibration test: an undisturbed request yields a reservation the
	// reply meets with zero waiting and zero slack.
	estimateOverhead = 7
	// injectLead is the NI-to-router link latency: a reply injected at
	// cycle t reaches the first router's circuit check at t+injectLead.
	injectLead = 2
)

// circKey names a circuit: the destination (original requestor) plus the
// cache-line address, exactly the identifying pair stored in the routers.
type circKey struct {
	dest  mesh.NodeID
	block uint64
}

// record is the circuit information kept "in the network interface where
// the circuit starts" (the request's destination, where the reply will be
// injected).
type record struct {
	key      circKey
	complete bool // fully built end to end
	failed   bool // could not be (completely) built
	reserved int  // routers reserved (fragmented partial paths)
	path     int  // routers on the full path
	injectVC int  // VC at the first router's local input (0 = allocator's choice)
	timed    bool
	injStart sim.Cycle // earliest reply injection cycle
	injEnd   sim.Cycle // latest reply injection cycle
	inUse    bool      // a scrounger is currently riding the circuit
	src      mesh.NodeID
	// pendingUndo defers teardown until a riding scrounger finishes: the
	// coherence protocol decided to undo the circuit mid-ride.
	pendingUndo bool
	// probeUp marks that the comparator's setup flit has been injected
	// and injStart holds the reply's no-overtake launch cycle.
	probeUp bool
}

// walk is the reservation state a request carries along its path.
type walk struct {
	routers      int
	prevVC       int // VC reserved at the previous router (fragmented)
	lastReserved bool
	// injLo/injHi is the running intersection of per-router injection
	// constraints for timed circuits; an empty intersection means the
	// request's own delays made the schedule infeasible.
	injLo, injHi sim.Cycle
	// sched is the fixed injection cycle of a postponed reservation,
	// pinned at the first router.
	sched    sim.Cycle
	hasSched bool
}

// Manager owns the mechanism-independent circuit state: every router's
// circuit table, every NI's circuit registry, the reservation walks and
// the statistics of Section 5.2. It plugs into the network as both the
// router-side CircuitHandler and the NI-side NIHook, and dispatches every
// variant-specific decision through its resolved Policy (see policy.go).
type Manager struct {
	opts Options
	pol  Policy
	m    mesh.Mesh
	net  *noc.Network

	tables []*table
	regs   []map[circKey]*record
	// walkFree recycles walk objects per shard: a walk lives strictly
	// between the first OnRequestVA on a path and recordCircuit/probe
	// delivery, so a LIFO free-list is deterministic and keeps reservation
	// allocation-free. The walk itself travels on Message.Walk.
	walkFree [][]*walk

	// Stats aggregates the circuit-construction outcomes (Figure 6,
	// Table 5) for the run. Under the parallel engine it holds shard 0's
	// share; stats[s] holds shard s's (stats[0] aliases &Stats) and
	// StatsTotal folds them.
	Stats Stats
	stats []*Stats

	// Parallel-engine state. nshards <= 1 means every tile maps to shard 0
	// and the manager behaves exactly as before sharding existed.
	nshards  int
	shardMap []int
	// ops holds the cross-tile mutations deferred to the cycle epilogue
	// (FlushCycle): scrounger ride releases and probe-completion notices.
	// Deferral runs in every engine mode, so sequential and parallel runs
	// apply them at the same point of the cycle by construction.
	ops [][]managerOp
	// walksLive/ridesLive track outstanding walks and rides for the
	// quiescence audit. A walk or ride may be created on one shard and
	// retired on another, so individual slots can go negative; only the
	// sum is meaningful.
	walksLive []int64
	ridesLive []int64

	tracer *trace.Buffer
	fault  FaultHook
}

// managerOp is one deferred cross-tile mutation, applied at FlushCycle.
type managerOp struct {
	kind   uint8
	rec    *record     // opRideRelease: the ridden circuit's record
	src    mesh.NodeID // opProbeUp: the probe's source NI
	key    circKey     // opProbeUp
	failed bool        // opProbeUp
}

const (
	opRideRelease uint8 = iota + 1
	opProbeUp
)

// shardAware is implemented by policies that keep per-shard state slices;
// the manager calls it from SetShards before any traffic exists.
type shardAware interface {
	setShards(mg *Manager)
}

// cycleFlusher is implemented by policies that defer work to the cycle
// epilogue; the manager calls it from FlushCycle after its own deferred
// operations.
type cycleFlusher interface {
	flushCycle(mg *Manager, now sim.Cycle)
}

// SetTracer attaches a lifecycle tracer for circuit events (nil detaches).
func (mg *Manager) SetTracer(t *trace.Buffer) { mg.tracer = t }

var (
	_ noc.CircuitHandler = (*Manager)(nil)
	_ noc.NIHook         = (*Manager)(nil)
)

// NewManager builds the mechanism state for a chip of the given mesh. Call
// Bind after constructing the network.
func NewManager(opts Options, m mesh.Mesh) *Manager {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	mg := &Manager{
		opts:   opts,
		m:      m,
		tables: make([]*table, m.Nodes()),
		regs:   make([]map[circKey]*record, m.Nodes()),
	}
	for i := range mg.tables {
		mg.tables[i] = &table{}
		mg.regs[i] = map[circKey]*record{}
	}
	mg.nshards = 1
	mg.stats = []*Stats{&mg.Stats}
	mg.walkFree = make([][]*walk, 1)
	mg.ops = make([][]managerOp, 1)
	mg.walksLive = make([]int64, 1)
	mg.ridesLive = make([]int64, 1)
	mg.pol = mustPolicyFor(opts)
	mg.pol.Attach(mg)
	return mg
}

// SetShards partitions the manager's mutable state for the parallel
// engine: per-shard statistics (slot 0 aliasing Stats), walk free-lists,
// deferred-op queues and policy state. Must run before any traffic;
// shardMap maps every tile to its shard. shards <= 1 is a no-op.
func (mg *Manager) SetShards(shards int, shardMap []int) {
	if shards <= 1 {
		return
	}
	mg.nshards = shards
	mg.shardMap = shardMap
	mg.stats = make([]*Stats, shards)
	mg.stats[0] = &mg.Stats
	for s := 1; s < shards; s++ {
		mg.stats[s] = &Stats{}
	}
	mg.walkFree = make([][]*walk, shards)
	mg.ops = make([][]managerOp, shards)
	mg.walksLive = make([]int64, shards)
	mg.ridesLive = make([]int64, shards)
	if sa, ok := mg.pol.(shardAware); ok {
		sa.setShards(mg)
	}
}

// Shards returns the shard count the manager is partitioned into.
func (mg *Manager) Shards() int { return mg.nshards }

// shard returns the shard owning tile id.
func (mg *Manager) shard(id mesh.NodeID) int {
	if mg.nshards <= 1 {
		return 0
	}
	return mg.shardMap[id]
}

// st returns the statistics slice the hook running at tile id must update.
func (mg *Manager) st(id mesh.NodeID) *Stats {
	return mg.stats[mg.shard(id)]
}

// StatsTotal folds every shard's statistics into one total; with one shard
// it is simply a copy of Stats. Shard order makes the fold deterministic
// (the fields are sums, so it is order-independent anyway).
func (mg *Manager) StatsTotal() Stats {
	total := mg.Stats
	for s := 1; s < mg.nshards; s++ {
		total.Add(mg.stats[s])
	}
	return total
}

// ResetStats zeroes every shard's statistics (post-warm-up measurement
// reset; architectural circuit state is untouched).
func (mg *Manager) ResetStats() {
	for _, st := range mg.stats {
		*st = Stats{}
	}
}

// deferOp queues a cross-tile mutation raised at tile at for FlushCycle.
func (mg *Manager) deferOp(at mesh.NodeID, op managerOp) {
	s := mg.shard(at)
	mg.ops[s] = append(mg.ops[s], op)
}

// FlushCycle applies the cycle's deferred cross-tile operations, in shard
// order and enqueue order within each shard — which, with the contiguous
// tile bands, is ascending NI order, the same order the sequential NI
// phase visits the raising tiles. It runs from the kernel epilogue in
// every engine mode; unit tests driving hooks by hand call it directly.
func (mg *Manager) FlushCycle(now sim.Cycle) {
	for s := range mg.ops {
		ops := mg.ops[s]
		for i := range ops {
			op := ops[i]
			ops[i] = managerOp{}
			switch op.kind {
			case opRideRelease:
				op.rec.inUse = false
				if op.rec.pendingUndo {
					// The protocol undid the circuit mid-ride; tear it
					// down now that the borrowed flits have cleared
					// every router.
					mg.teardown(op.rec, now)
				}
			case opProbeUp:
				if rec := mg.regs[op.src][op.key]; rec != nil {
					rec.probeUp = true
					rec.failed = op.failed
					rec.complete = !op.failed
				}
			}
		}
		mg.ops[s] = ops[:0]
	}
	if f, ok := mg.pol.(cycleFlusher); ok {
		f.flushCycle(mg, now)
	}
}

// Policy returns the switching policy this manager dispatches through.
func (mg *Manager) Policy() Policy { return mg.pol }

// NetConfigFor returns the network microarchitecture the selected policy
// needs: the baseline Table 4 router, the fragmented variant's third
// buffered reply VC, the complete variants' unbuffered circuit VC, or
// whatever a registered policy asks for. Circuit policies route requests
// XY and replies YX so both traverse the same routers.
func NetConfigFor(m mesh.Mesh, opts Options) noc.NetConfig {
	cfg := noc.BaselineConfig(m)
	cfg.NoPool = opts.NoPool
	mustPolicyFor(opts).NetConfig(&cfg, &opts)
	return cfg
}

// Bind attaches the manager to its network (needed for undo walks and
// scrounger re-injection).
func (mg *Manager) Bind(net *noc.Network) { mg.net = net }

// Options returns the variant this manager implements.
func (mg *Manager) Options() Options { return mg.opts }

// circuitVC returns the reply VC index circuits travel on in the complete
// and ideal mechanisms.
func (mg *Manager) circuitVC() int {
	return mg.net.Config().CircuitVC()
}

// pathHops returns the total hop count of the request (and reply) path.
func (mg *Manager) pathHops(msg *noc.Message) int {
	return mg.m.Hops(msg.Src, msg.Dst)
}

// newWalk returns a reset walk from tile at's shard free-list (or a fresh
// one) and counts it live.
func (mg *Manager) newWalk(at mesh.NodeID) *walk {
	s := mg.shard(at)
	var w *walk
	free := mg.walkFree[s]
	if n := len(free); n > 0 {
		w = free[n-1]
		free[n-1] = nil
		mg.walkFree[s] = free[:n-1]
	} else {
		w = new(walk)
	}
	mg.walksLive[s]++
	*w = walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	return w
}

// freeWalk retires w to tile at's shard free-list. A walk may start on one
// shard (the first reserving router) and retire on another (the recording
// NI); each side touches only its own shard's list and live counter.
func (mg *Manager) freeWalk(at mesh.NodeID, w *walk) {
	if w != nil {
		s := mg.shard(at)
		mg.walkFree[s] = append(mg.walkFree[s], w)
		mg.walksLive[s]--
	}
}

// ---------------------------------------------------------------------------
// Router-side hooks (noc.CircuitHandler)
// ---------------------------------------------------------------------------

// OnRequestVA reserves the reply's circuit at this router, in parallel with
// the request's VC allocation. The reply will enter via port out (where the
// request leaves) and exit via port in (where the request entered). The
// reservation itself is the policy's: the manager only tracks the walk.
func (mg *Manager) OnRequestVA(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, now sim.Cycle) {
	w, _ := msg.Walk.(*walk)
	if w == nil {
		w = mg.newWalk(id)
		msg.Walk = w
	}
	w.routers++
	mg.pol.Reserve(mg, id, msg, in, out, w, now)
}

func (mg *Manager) noteOrdinal(id mesh.NodeID, ord int) {
	if ord < 1 {
		return
	}
	st := mg.st(id)
	if ord > len(st.Ordinals) {
		ord = len(st.Ordinals)
	}
	st.Ordinals[ord-1]++
}

// Bypass implements the input-unit circuit check of Figure 3.
func (mg *Manager) Bypass(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) (mesh.Dir, int, bool) {
	msg := f.Msg
	if !msg.UseCircuit {
		return 0, 0, false
	}
	e := mg.tables[id].find(in, msg.CircDest, msg.CircBlock, now)
	if e == nil {
		if mg.pol.GapTolerant() {
			return 0, 0, false // gap in a fragmented circuit: normal pipeline
		}
		panic(fmt.Sprintf("core: reply msg %d expected a circuit at router %d port %v (invariant violated)", msg.ID, id, in))
	}
	if f.Head {
		if e.inUse != nil && e.inUse != msg {
			panic(fmt.Sprintf("core: circuit (%d,%#x) at router %d double-claimed", e.dest, e.block, id))
		}
		e.inUse = msg
	} else if e.inUse != msg {
		panic(fmt.Sprintf("core: body flit of msg %d on unclaimed circuit at router %d", msg.ID, id))
	}
	if mg.pol.GapTolerant() && e.outVC < 0 && e.out != mesh.Local {
		// The next hop is not reserved: the flits re-enter the normal
		// pipeline from this reserved VC's buffer; the entry frees when
		// the tail has arrived.
		if f.Tail {
			e.built = false
			e.inUse = nil
			mg.net.EventsAt(id).CircuitWrites++
		}
		return 0, 0, false
	}
	outVC := e.outVC
	if outVC < 0 {
		outVC = 0
	}
	// The flit inherits the circuit's SDM lane for its next link traversal
	// (0 — the packet lane's slot — under lane-less policies).
	f.Lane = e.lane
	return e.out, outVC, true
}

// Release frees a circuit when a tail flit leaves a router on it; a
// scrounger only releases its claim so the owner can still ride.
func (mg *Manager) Release(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) {
	e := mg.tables[id].find(in, f.Msg.CircDest, f.Msg.CircBlock, now)
	if e == nil || e.inUse != f.Msg {
		return
	}
	e.inUse = nil
	if !f.Msg.Scrounging {
		e.built = false
		mg.net.EventsAt(id).CircuitWrites++
	}
}

// OnUndo clears the reservation named by the token at this router and
// steers the walk onward: toward the circuit destination for the paper's
// reversed entries, or backward toward the setup source for the probe
// comparator's forward entries. The policy owns the walk's shape.
func (mg *Manager) OnUndo(id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	return mg.pol.Undo(mg, id, tok, in, now)
}

// BypassBuffered reports whether circuit flits may wait in buffers:
// fragmented and ideal routers keep them; complete routers must never block
// a circuit flit. The policy decides.
func (mg *Manager) BypassBuffered() bool {
	return mg.pol.BypassBuffered()
}

// ---------------------------------------------------------------------------
// NI-side hooks (noc.NIHook)
// ---------------------------------------------------------------------------

// OnInject classifies and steers a message about to leave its source NI.
// For requests it is a no-op. For replies the policy decides: ride the
// circuit the request built, wait for (or miss) a timed slot, scrounge a
// foreign circuit, or travel as a normal packet.
func (mg *Manager) OnInject(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	if msg.VN != noc.VNReply || msg.Scrounging {
		return now
	}
	return mg.pol.Inject(mg, ni, msg, now)
}

// injectFallback is the shared path for a reply with no circuit of its
// own: try borrowing one (scrounger messages, when Reuse is on), then
// classify by the coherence layer's hint.
func (mg *Manager) injectFallback(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	if msg.Classified {
		return now // a continuation leg already classified
	}
	if mg.opts.Reuse {
		if r := mg.scroungeTarget(ni, msg); r != nil {
			r.inUse = true
			msg.Ride = r
			mg.ridesLive[mg.shard(ni)]++
			msg.Scrounging = true
			msg.FinalDst = msg.Dst
			msg.Dst = r.key.dest
			msg.UseCircuit = true
			msg.InjectVC = r.injectVC
			msg.CircDest = r.key.dest
			msg.CircBlock = r.key.block
			mg.classify(ni, msg, OutcomeScrounger)
			mg.st(ni).ScroungerRides++
			if mg.tracer != nil {
				mg.tracer.Record(now, trace.Scrounge, msg.ID, ni,
					fmt.Sprintf("rides (%d,%#x) toward %d", r.key.dest, r.key.block, msg.FinalDst))
			}
			return now
		}
	}
	if msg.OutcomeHint != 0 {
		mg.classify(ni, msg, Outcome(msg.OutcomeHint))
	} else {
		mg.classify(ni, msg, OutcomeNotEligible)
	}
	return now
}

// scroungeTarget picks the idle complete circuit at this NI that brings the
// reply closest to its destination, if any helps at all.
func (mg *Manager) scroungeTarget(ni mesh.NodeID, msg *noc.Message) *record {
	var best *record
	bestGain := 0
	from := mg.m.Hops(ni, msg.Dst)
	for _, r := range mg.regs[ni] {
		if !r.complete || r.failed || r.inUse || r.timed {
			continue
		}
		gain := from - mg.m.Hops(r.key.dest, msg.Dst)
		// Ties break on the circuit key, not map order: iteration order is
		// randomized per run, and a wandering pick here diverges whole runs.
		better := gain > bestGain
		if gain == bestGain && best != nil {
			better = r.key.dest < best.key.dest ||
				(r.key.dest == best.key.dest && r.key.block < best.key.block)
		}
		if better {
			best, bestGain = r, gain
		}
	}
	return best
}

func (mg *Manager) classify(ni mesh.NodeID, msg *noc.Message, o Outcome) {
	if msg.Classified {
		return
	}
	msg.Classified = true
	mg.st(ni).Replies[o]++
	mg.pol.Observe(mg, ni, msg, o)
}

// OnDeliver finalizes a request's circuit record at the NI where its reply
// will start, and re-injects scrounger messages toward their destination.
// The policy's Deliver hook runs first (the probe comparator consumes its
// setup flits there).
func (mg *Manager) OnDeliver(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) bool {
	if handled, deliver := mg.pol.Deliver(mg, ni, msg, now); handled {
		return deliver
	}
	if msg.VN == noc.VNRequest {
		if msg.WantCircuit {
			mg.recordCircuit(ni, msg)
		}
		return true
	}
	if msg.Scrounging {
		rec, _ := msg.Ride.(*record)
		if rec == nil {
			panic(fmt.Sprintf("core: scrounger msg %d has no ride record", msg.ID))
		}
		msg.Ride = nil
		mg.ridesLive[mg.shard(ni)]--
		// The ridden record usually lives at another tile's registry:
		// releasing it (and any pending teardown) is deferred to the cycle
		// epilogue so no shard mutates a neighbour's records mid-phase.
		mg.deferOp(ni, managerOp{kind: opRideRelease, rec: rec})
		// Preserve the latency already spent, then continue toward the
		// real destination as a fresh injection.
		msg.QueueCredit += msg.InjectedAt - msg.EnqueuedAt
		msg.NetCredit += msg.DeliveredAt - msg.InjectedAt
		msg.Src = ni
		msg.Dst = msg.FinalDst
		msg.Scrounging = false
		msg.UseCircuit = false
		msg.InjectVC = 0
		msg.CircDest = 0
		msg.CircBlock = 0
		mg.net.NI(ni).Send(msg, now)
		return false
	}
	return true
}

// recordCircuit stores the finished reservation walk in this NI's registry.
func (mg *Manager) recordCircuit(ni mesh.NodeID, msg *noc.Message) {
	w, _ := msg.Walk.(*walk)
	msg.Walk = nil
	if w == nil {
		// Zero-hop paths never touched a router; synthesize an empty walk.
		w = mg.newWalk(ni)
	}
	defer mg.freeWalk(ni, w)
	key := circKey{dest: msg.Src, block: msg.Block}
	path := mg.pathHops(msg) + 1
	rec := &record{key: key, path: path, src: ni}
	mg.pol.Confirm(mg, ni, msg, rec, w)
	mg.regs[ni][key] = rec
	if mg.tracer != nil {
		if rec.complete {
			note := fmt.Sprintf("dest=%d block=%#x", key.dest, key.block)
			if rec.timed {
				note += fmt.Sprintf(" window=[%d,%d]", rec.injStart, rec.injEnd)
			}
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitBuilt, msg.ID, ni, note)
		} else {
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitFailed, msg.ID, ni,
				fmt.Sprintf("dest=%d block=%#x reserved=%d/%d", key.dest, key.block, rec.reserved, rec.path))
		}
	}
}

// ---------------------------------------------------------------------------
// Coherence-protocol entry points
// ---------------------------------------------------------------------------

// Undo tears down the circuit starting at NI ni for (dest, block) before
// use — the coherence protocol calls this when an L2 forwards a request to
// an owning L1 and the L2→requestor circuit will never carry data. It
// reports whether a built circuit was actually undone.
func (mg *Manager) Undo(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) bool {
	key := circKey{dest: dest, block: block}
	rec := mg.regs[ni][key]
	if rec == nil {
		return false
	}
	delete(mg.regs[ni], key)
	if !mg.pol.UndoEligible(rec) {
		return false // nothing built (or already torn down) to undo
	}
	mg.st(ni).CircuitsUndone++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.CircuitUndone, 0, ni,
			fmt.Sprintf("dest=%d block=%#x (forwarded request)", dest, block))
	}
	if rec.inUse {
		rec.pendingUndo = true // a scrounger is riding; tear down after it
		return true
	}
	mg.teardown(rec, now)
	return true
}

// teardown clears a built circuit's router entries (the policy's walk).
func (mg *Manager) teardown(rec *record, now sim.Cycle) {
	mg.pol.Teardown(mg, rec, now)
}

// clearPath removes every entry of a circuit along its YX path (ideal mode
// only, where teardown cost is not modelled).
func (mg *Manager) clearPath(from, dest mesh.NodeID, block uint64, now sim.Cycle) {
	path := mg.m.Path(mesh.RouteYX, from, dest)
	for i, node := range path {
		in := mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, node, path[i-1])
		}
		if mg.tables[node].clear(in, dest, block, now) != nil {
			mg.net.EventsAt(node).CircuitWrites++
		}
	}
}

// dirBetween returns the port of `from` that faces the adjacent node `to`.
func dirBetween(m mesh.Mesh, from, to mesh.NodeID) mesh.Dir {
	for d := mesh.North; d <= mesh.West; d++ {
		if nb, ok := m.Neighbor(from, d); ok && nb == to {
			return d
		}
	}
	panic(fmt.Sprintf("core: nodes %d and %d are not adjacent", from, to))
}

// HasCircuit reports whether a (complete or partial) circuit for (dest,
// block) is registered at NI ni — the coherence layer uses it to decide
// whether a data reply will ride a complete circuit and its L1_DATA_ACK can
// be eliminated.
func (mg *Manager) HasCircuit(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) (complete, timedOK bool) {
	rec := mg.regs[ni][circKey{dest: dest, block: block}]
	if rec == nil || rec.failed || !rec.complete {
		return false, false
	}
	if rec.timed && now > rec.injEnd {
		return true, false
	}
	return true, true
}

// NoteEliminatedAck counts an L1_DATA_ACK removed by the NoAck
// optimization at NI ni; the paper counts these replies at zero latency.
func (mg *Manager) NoteEliminatedAck(ni mesh.NodeID, now sim.Cycle) {
	mg.st(ni).Replies[OutcomeEliminated]++
	mg.st(ni).EliminatedAcks++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.AckEliminated, 0, ni, "")
	}
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

func minCycle(a, b sim.Cycle) sim.Cycle {
	if a < b {
		return a
	}
	return b
}

// OpenCircuits returns how many reservations are live across every router
// table at cycle now — the occupancy level the metrics gauge samples.
func (mg *Manager) OpenCircuits(now sim.Cycle) int64 {
	var n int64
	for _, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			n += int64(tb.activeCount(d, now))
		}
	}
	return n
}

// DescribeMetrics registers the circuit-construction counters with reg
// under the circ/ scope. The occupancy gauge needs the current cycle and is
// registered by the chip layer, which owns the kernel.
func (mg *Manager) DescribeMetrics(reg *sim.Registry) {
	// Per-shard slices register under the same names; the registry sums
	// same-named counters, so snapshots report totals independent of the
	// shard count (stats[0] aliases Stats).
	for _, st := range mg.stats {
		reg.Counter("circ/built", &st.CircuitsBuilt)
		reg.Counter("circ/undone", &st.CircuitsUndone)
		reg.Counter("circ/scrounger_rides", &st.ScroungerRides)
		reg.Counter("circ/eliminated_acks", &st.EliminatedAcks)
		reg.Counter("circ/probes", &st.ProbesSent)
		reg.Counter("circ/reserve_failed_storage", &st.ReserveFailedStorage)
		reg.Counter("circ/reserve_failed_conflict", &st.ReserveFailedConflict)
		reg.Counter("circ/waited_for_window", &st.WaitedForWindow)
	}
	mg.pol.DescribeMetrics(reg)
}
