package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Timing constants of the paper's Section 4.7 estimate: "the number of hops
// between the current router and the destination, the hop latency for the
// request (five cycles/hop) and for the reply (two cycles/hop), and the
// cache hit latency".
const (
	reqHopLatency = 5
	repHopLatency = 2
	// estimateOverhead covers the fixed per-transaction cycles outside
	// the hop terms: the remaining pipeline stages of the reserving
	// router plus ejection (5), destination scheduling (1) and the
	// reply's NI injection turnaround (1). Verified by the timed-circuit
	// calibration test: an undisturbed request yields a reservation the
	// reply meets with zero waiting and zero slack.
	estimateOverhead = 7
	// injectLead is the NI-to-router link latency: a reply injected at
	// cycle t reaches the first router's circuit check at t+injectLead.
	injectLead = 2
)

// circKey names a circuit: the destination (original requestor) plus the
// cache-line address, exactly the identifying pair stored in the routers.
type circKey struct {
	dest  mesh.NodeID
	block uint64
}

// record is the circuit information kept "in the network interface where
// the circuit starts" (the request's destination, where the reply will be
// injected).
type record struct {
	key      circKey
	complete bool // fully built end to end
	failed   bool // could not be (completely) built
	reserved int  // routers reserved (fragmented partial paths)
	path     int  // routers on the full path
	injectVC int  // VC at the first router's local input (0 = allocator's choice)
	timed    bool
	injStart sim.Cycle // earliest reply injection cycle
	injEnd   sim.Cycle // latest reply injection cycle
	inUse    bool      // a scrounger is currently riding the circuit
	src      mesh.NodeID
	// pendingUndo defers teardown until a riding scrounger finishes: the
	// coherence protocol decided to undo the circuit mid-ride.
	pendingUndo bool
	// probeUp marks that the comparator's setup flit has been injected
	// and injStart holds the reply's no-overtake launch cycle.
	probeUp bool
}

// walk is the reservation state a request carries along its path.
type walk struct {
	routers      int
	prevVC       int // VC reserved at the previous router (fragmented)
	lastReserved bool
	// injLo/injHi is the running intersection of per-router injection
	// constraints for timed circuits; an empty intersection means the
	// request's own delays made the schedule infeasible.
	injLo, injHi sim.Cycle
	// sched is the fixed injection cycle of a postponed reservation,
	// pinned at the first router.
	sched    sim.Cycle
	hasSched bool
}

// Manager owns the mechanism-independent circuit state: every router's
// circuit table, every NI's circuit registry, the reservation walks and
// the statistics of Section 5.2. It plugs into the network as both the
// router-side CircuitHandler and the NI-side NIHook, and dispatches every
// variant-specific decision through its resolved Policy (see policy.go).
type Manager struct {
	opts Options
	pol  Policy
	m    mesh.Mesh
	net  *noc.Network

	tables []*table
	regs   []map[circKey]*record
	walks  map[*noc.Message]*walk
	rides  map[*noc.Message]*record
	// walkFree recycles walk objects: a walk lives strictly between the
	// first OnRequestVA on a path and recordCircuit/probe delivery, so a
	// LIFO free-list is deterministic and keeps reservation allocation-free.
	walkFree []*walk

	// Stats aggregates the circuit-construction outcomes (Figure 6,
	// Table 5) for the run.
	Stats Stats

	tracer *trace.Buffer
	fault  FaultHook
}

// SetTracer attaches a lifecycle tracer for circuit events (nil detaches).
func (mg *Manager) SetTracer(t *trace.Buffer) { mg.tracer = t }

var (
	_ noc.CircuitHandler = (*Manager)(nil)
	_ noc.NIHook         = (*Manager)(nil)
)

// NewManager builds the mechanism state for a chip of the given mesh. Call
// Bind after constructing the network.
func NewManager(opts Options, m mesh.Mesh) *Manager {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	mg := &Manager{
		opts:   opts,
		m:      m,
		tables: make([]*table, m.Nodes()),
		regs:   make([]map[circKey]*record, m.Nodes()),
		walks:  map[*noc.Message]*walk{},
		rides:  map[*noc.Message]*record{},
	}
	for i := range mg.tables {
		mg.tables[i] = &table{}
		mg.regs[i] = map[circKey]*record{}
	}
	mg.pol = mustPolicyFor(opts)
	mg.pol.Attach(mg)
	return mg
}

// Policy returns the switching policy this manager dispatches through.
func (mg *Manager) Policy() Policy { return mg.pol }

// NetConfigFor returns the network microarchitecture the selected policy
// needs: the baseline Table 4 router, the fragmented variant's third
// buffered reply VC, the complete variants' unbuffered circuit VC, or
// whatever a registered policy asks for. Circuit policies route requests
// XY and replies YX so both traverse the same routers.
func NetConfigFor(m mesh.Mesh, opts Options) noc.NetConfig {
	cfg := noc.BaselineConfig(m)
	cfg.NoPool = opts.NoPool
	mustPolicyFor(opts).NetConfig(&cfg, &opts)
	return cfg
}

// Bind attaches the manager to its network (needed for undo walks and
// scrounger re-injection).
func (mg *Manager) Bind(net *noc.Network) { mg.net = net }

// Options returns the variant this manager implements.
func (mg *Manager) Options() Options { return mg.opts }

// circuitVC returns the reply VC index circuits travel on in the complete
// and ideal mechanisms.
func (mg *Manager) circuitVC() int {
	return mg.net.Config().CircuitVC()
}

// pathHops returns the total hop count of the request (and reply) path.
func (mg *Manager) pathHops(msg *noc.Message) int {
	return mg.m.Hops(msg.Src, msg.Dst)
}

// newWalk returns a reset walk from the free-list (or a fresh one).
func (mg *Manager) newWalk() *walk {
	var w *walk
	if n := len(mg.walkFree); n > 0 {
		w = mg.walkFree[n-1]
		mg.walkFree[n-1] = nil
		mg.walkFree = mg.walkFree[:n-1]
	} else {
		w = new(walk)
	}
	*w = walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	return w
}

func (mg *Manager) freeWalk(w *walk) {
	if w != nil {
		mg.walkFree = append(mg.walkFree, w)
	}
}

// ---------------------------------------------------------------------------
// Router-side hooks (noc.CircuitHandler)
// ---------------------------------------------------------------------------

// OnRequestVA reserves the reply's circuit at this router, in parallel with
// the request's VC allocation. The reply will enter via port out (where the
// request leaves) and exit via port in (where the request entered). The
// reservation itself is the policy's: the manager only tracks the walk.
func (mg *Manager) OnRequestVA(id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, now sim.Cycle) {
	w := mg.walks[msg]
	if w == nil {
		w = mg.newWalk()
		mg.walks[msg] = w
	}
	w.routers++
	mg.pol.Reserve(mg, id, msg, in, out, w, now)
}

func (mg *Manager) noteOrdinal(ord int) {
	if ord < 1 {
		return
	}
	if ord > len(mg.Stats.Ordinals) {
		ord = len(mg.Stats.Ordinals)
	}
	mg.Stats.Ordinals[ord-1]++
}

// Bypass implements the input-unit circuit check of Figure 3.
func (mg *Manager) Bypass(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) (mesh.Dir, int, bool) {
	msg := f.Msg
	if !msg.UseCircuit {
		return 0, 0, false
	}
	e := mg.tables[id].find(in, msg.CircDest, msg.CircBlock, now)
	if e == nil {
		if mg.pol.GapTolerant() {
			return 0, 0, false // gap in a fragmented circuit: normal pipeline
		}
		panic(fmt.Sprintf("core: reply msg %d expected a circuit at router %d port %v (invariant violated)", msg.ID, id, in))
	}
	if f.Head {
		if e.inUse != nil && e.inUse != msg {
			panic(fmt.Sprintf("core: circuit (%d,%#x) at router %d double-claimed", e.dest, e.block, id))
		}
		e.inUse = msg
	} else if e.inUse != msg {
		panic(fmt.Sprintf("core: body flit of msg %d on unclaimed circuit at router %d", msg.ID, id))
	}
	if mg.pol.GapTolerant() && e.outVC < 0 && e.out != mesh.Local {
		// The next hop is not reserved: the flits re-enter the normal
		// pipeline from this reserved VC's buffer; the entry frees when
		// the tail has arrived.
		if f.Tail {
			e.built = false
			e.inUse = nil
			mg.net.Events().CircuitWrites++
		}
		return 0, 0, false
	}
	outVC := e.outVC
	if outVC < 0 {
		outVC = 0
	}
	return e.out, outVC, true
}

// Release frees a circuit when a tail flit leaves a router on it; a
// scrounger only releases its claim so the owner can still ride.
func (mg *Manager) Release(id mesh.NodeID, f *noc.Flit, in mesh.Dir, now sim.Cycle) {
	e := mg.tables[id].find(in, f.Msg.CircDest, f.Msg.CircBlock, now)
	if e == nil || e.inUse != f.Msg {
		return
	}
	e.inUse = nil
	if !f.Msg.Scrounging {
		e.built = false
		mg.net.Events().CircuitWrites++
	}
}

// OnUndo clears the reservation named by the token at this router and
// steers the walk onward: toward the circuit destination for the paper's
// reversed entries, or backward toward the setup source for the probe
// comparator's forward entries. The policy owns the walk's shape.
func (mg *Manager) OnUndo(id mesh.NodeID, tok *noc.UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	return mg.pol.Undo(mg, id, tok, in, now)
}

// BypassBuffered reports whether circuit flits may wait in buffers:
// fragmented and ideal routers keep them; complete routers must never block
// a circuit flit. The policy decides.
func (mg *Manager) BypassBuffered() bool {
	return mg.pol.BypassBuffered()
}

// ---------------------------------------------------------------------------
// NI-side hooks (noc.NIHook)
// ---------------------------------------------------------------------------

// OnInject classifies and steers a message about to leave its source NI.
// For requests it is a no-op. For replies the policy decides: ride the
// circuit the request built, wait for (or miss) a timed slot, scrounge a
// foreign circuit, or travel as a normal packet.
func (mg *Manager) OnInject(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	if msg.VN != noc.VNReply || msg.Scrounging {
		return now
	}
	return mg.pol.Inject(mg, ni, msg, now)
}

// injectFallback is the shared path for a reply with no circuit of its
// own: try borrowing one (scrounger messages, when Reuse is on), then
// classify by the coherence layer's hint.
func (mg *Manager) injectFallback(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) sim.Cycle {
	if msg.Classified {
		return now // a continuation leg already classified
	}
	if mg.opts.Reuse {
		if r := mg.scroungeTarget(ni, msg); r != nil {
			r.inUse = true
			mg.rides[msg] = r
			msg.Scrounging = true
			msg.FinalDst = msg.Dst
			msg.Dst = r.key.dest
			msg.UseCircuit = true
			msg.InjectVC = r.injectVC
			msg.CircDest = r.key.dest
			msg.CircBlock = r.key.block
			mg.classify(msg, OutcomeScrounger)
			mg.Stats.ScroungerRides++
			if mg.tracer != nil {
				mg.tracer.Record(now, trace.Scrounge, msg.ID, ni,
					fmt.Sprintf("rides (%d,%#x) toward %d", r.key.dest, r.key.block, msg.FinalDst))
			}
			return now
		}
	}
	if msg.OutcomeHint != 0 {
		mg.classify(msg, Outcome(msg.OutcomeHint))
	} else {
		mg.classify(msg, OutcomeNotEligible)
	}
	return now
}

// scroungeTarget picks the idle complete circuit at this NI that brings the
// reply closest to its destination, if any helps at all.
func (mg *Manager) scroungeTarget(ni mesh.NodeID, msg *noc.Message) *record {
	var best *record
	bestGain := 0
	from := mg.m.Hops(ni, msg.Dst)
	for _, r := range mg.regs[ni] {
		if !r.complete || r.failed || r.inUse || r.timed {
			continue
		}
		gain := from - mg.m.Hops(r.key.dest, msg.Dst)
		// Ties break on the circuit key, not map order: iteration order is
		// randomized per run, and a wandering pick here diverges whole runs.
		better := gain > bestGain
		if gain == bestGain && best != nil {
			better = r.key.dest < best.key.dest ||
				(r.key.dest == best.key.dest && r.key.block < best.key.block)
		}
		if better {
			best, bestGain = r, gain
		}
	}
	return best
}

func (mg *Manager) classify(msg *noc.Message, o Outcome) {
	if msg.Classified {
		return
	}
	msg.Classified = true
	mg.Stats.Replies[o]++
	mg.pol.Observe(mg, msg, o)
}

// OnDeliver finalizes a request's circuit record at the NI where its reply
// will start, and re-injects scrounger messages toward their destination.
// The policy's Deliver hook runs first (the probe comparator consumes its
// setup flits there).
func (mg *Manager) OnDeliver(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) bool {
	if handled, deliver := mg.pol.Deliver(mg, ni, msg, now); handled {
		return deliver
	}
	if msg.VN == noc.VNRequest {
		if msg.WantCircuit {
			mg.recordCircuit(ni, msg)
		}
		return true
	}
	if msg.Scrounging {
		rec := mg.rides[msg]
		if rec == nil {
			panic(fmt.Sprintf("core: scrounger msg %d has no ride record", msg.ID))
		}
		delete(mg.rides, msg)
		rec.inUse = false
		if rec.pendingUndo {
			// The protocol undid the circuit mid-ride; tear it down now
			// that the borrowed flits have cleared every router.
			mg.teardown(rec, now)
		}
		// Preserve the latency already spent, then continue toward the
		// real destination as a fresh injection.
		msg.QueueCredit += msg.InjectedAt - msg.EnqueuedAt
		msg.NetCredit += msg.DeliveredAt - msg.InjectedAt
		msg.Src = ni
		msg.Dst = msg.FinalDst
		msg.Scrounging = false
		msg.UseCircuit = false
		msg.InjectVC = 0
		msg.CircDest = 0
		msg.CircBlock = 0
		mg.net.NI(ni).Send(msg, now)
		return false
	}
	return true
}

// recordCircuit stores the finished reservation walk in this NI's registry.
func (mg *Manager) recordCircuit(ni mesh.NodeID, msg *noc.Message) {
	w := mg.walks[msg]
	delete(mg.walks, msg)
	if w == nil {
		// Zero-hop paths never touched a router; synthesize an empty walk.
		w = mg.newWalk()
	}
	defer mg.freeWalk(w)
	key := circKey{dest: msg.Src, block: msg.Block}
	path := mg.pathHops(msg) + 1
	rec := &record{key: key, path: path, src: ni}
	mg.pol.Confirm(mg, ni, msg, rec, w)
	mg.regs[ni][key] = rec
	if mg.tracer != nil {
		if rec.complete {
			note := fmt.Sprintf("dest=%d block=%#x", key.dest, key.block)
			if rec.timed {
				note += fmt.Sprintf(" window=[%d,%d]", rec.injStart, rec.injEnd)
			}
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitBuilt, msg.ID, ni, note)
		} else {
			mg.tracer.Record(msg.DeliveredAt, trace.CircuitFailed, msg.ID, ni,
				fmt.Sprintf("dest=%d block=%#x reserved=%d/%d", key.dest, key.block, rec.reserved, rec.path))
		}
	}
}

// ---------------------------------------------------------------------------
// Coherence-protocol entry points
// ---------------------------------------------------------------------------

// Undo tears down the circuit starting at NI ni for (dest, block) before
// use — the coherence protocol calls this when an L2 forwards a request to
// an owning L1 and the L2→requestor circuit will never carry data. It
// reports whether a built circuit was actually undone.
func (mg *Manager) Undo(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) bool {
	key := circKey{dest: dest, block: block}
	rec := mg.regs[ni][key]
	if rec == nil {
		return false
	}
	delete(mg.regs[ni], key)
	if !mg.pol.UndoEligible(rec) {
		return false // nothing built (or already torn down) to undo
	}
	mg.Stats.CircuitsUndone++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.CircuitUndone, 0, ni,
			fmt.Sprintf("dest=%d block=%#x (forwarded request)", dest, block))
	}
	if rec.inUse {
		rec.pendingUndo = true // a scrounger is riding; tear down after it
		return true
	}
	mg.teardown(rec, now)
	return true
}

// teardown clears a built circuit's router entries (the policy's walk).
func (mg *Manager) teardown(rec *record, now sim.Cycle) {
	mg.pol.Teardown(mg, rec, now)
}

// clearPath removes every entry of a circuit along its YX path (ideal mode
// only, where teardown cost is not modelled).
func (mg *Manager) clearPath(from, dest mesh.NodeID, block uint64, now sim.Cycle) {
	path := mg.m.Path(mesh.RouteYX, from, dest)
	for i, node := range path {
		in := mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, node, path[i-1])
		}
		if mg.tables[node].clear(in, dest, block, now) != nil {
			mg.net.Events().CircuitWrites++
		}
	}
}

// dirBetween returns the port of `from` that faces the adjacent node `to`.
func dirBetween(m mesh.Mesh, from, to mesh.NodeID) mesh.Dir {
	for d := mesh.North; d <= mesh.West; d++ {
		if nb, ok := m.Neighbor(from, d); ok && nb == to {
			return d
		}
	}
	panic(fmt.Sprintf("core: nodes %d and %d are not adjacent", from, to))
}

// HasCircuit reports whether a (complete or partial) circuit for (dest,
// block) is registered at NI ni — the coherence layer uses it to decide
// whether a data reply will ride a complete circuit and its L1_DATA_ACK can
// be eliminated.
func (mg *Manager) HasCircuit(ni mesh.NodeID, dest mesh.NodeID, block uint64, now sim.Cycle) (complete, timedOK bool) {
	rec := mg.regs[ni][circKey{dest: dest, block: block}]
	if rec == nil || rec.failed || !rec.complete {
		return false, false
	}
	if rec.timed && now > rec.injEnd {
		return true, false
	}
	return true, true
}

// NoteEliminatedAck counts an L1_DATA_ACK removed by the NoAck
// optimization at NI ni; the paper counts these replies at zero latency.
func (mg *Manager) NoteEliminatedAck(ni mesh.NodeID, now sim.Cycle) {
	mg.Stats.Replies[OutcomeEliminated]++
	mg.Stats.EliminatedAcks++
	if mg.tracer != nil {
		mg.tracer.Record(now, trace.AckEliminated, 0, ni, "")
	}
}

func maxCycle(a, b sim.Cycle) sim.Cycle {
	if a > b {
		return a
	}
	return b
}

func minCycle(a, b sim.Cycle) sim.Cycle {
	if a < b {
		return a
	}
	return b
}

// OpenCircuits returns how many reservations are live across every router
// table at cycle now — the occupancy level the metrics gauge samples.
func (mg *Manager) OpenCircuits(now sim.Cycle) int64 {
	var n int64
	for _, tb := range mg.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			n += int64(tb.activeCount(d, now))
		}
	}
	return n
}

// DescribeMetrics registers the circuit-construction counters with reg
// under the circ/ scope. The occupancy gauge needs the current cycle and is
// registered by the chip layer, which owns the kernel.
func (mg *Manager) DescribeMetrics(reg *sim.Registry) {
	reg.Counter("circ/built", &mg.Stats.CircuitsBuilt)
	reg.Counter("circ/undone", &mg.Stats.CircuitsUndone)
	reg.Counter("circ/scrounger_rides", &mg.Stats.ScroungerRides)
	reg.Counter("circ/eliminated_acks", &mg.Stats.EliminatedAcks)
	reg.Counter("circ/probes", &mg.Stats.ProbesSent)
	reg.Counter("circ/reserve_failed_storage", &mg.Stats.ReserveFailedStorage)
	reg.Counter("circ/reserve_failed_conflict", &mg.Stats.ReserveFailedConflict)
	reg.Counter("circ/waited_for_window", &mg.Stats.WaitedForWindow)
	mg.pol.DescribeMetrics(reg)
}
