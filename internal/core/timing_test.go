package core

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// timedRig builds a manager over a real network without running it, so the
// window arithmetic can be unit-tested directly.
func timedRig(t *testing.T, opts Options) *Manager {
	t.Helper()
	m := mesh.New(4, 4)
	mg := NewManager(opts, m)
	net := noc.NewNetwork(NetConfigFor(m, opts), mg, mg)
	mg.Bind(net)
	return mg
}

func timedMsg(src, dst mesh.NodeID) *noc.Message {
	return &noc.Message{
		ID: 1, Src: src, Dst: dst, VN: noc.VNRequest, Size: 1,
		WantCircuit: true, Block: 0x40,
		ExpectedProcDelay: 7, ExpectedReplySize: 5,
	}
}

func TestTimedWindowUncontendedConsistency(t *testing.T) {
	// Reserving along the whole path at the uncontended cadence (5
	// cycles/hop between VA grants) must keep the injection interval
	// non-empty and, with zero slack, a single cycle wide.
	mg := timedRig(t, timedOpts(0, 0, 0))
	msg := timedMsg(0, 15)
	w := &walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	path := mg.m.Path(mesh.RouteXY, 0, 15)
	now := sim.Cycle(100)
	for i, id := range path {
		in, out := mesh.Local, mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, id, path[i-1])
		}
		if i < len(path)-1 {
			out = dirBetween(mg.m, id, path[i+1])
		}
		s, e, lo, hi, ok := mg.timedWindow(id, msg, out, in, w, now)
		if !ok {
			t.Fatalf("router %d: reservation infeasible", id)
		}
		if e-s != sim.Cycle(msg.ExpectedReplySize-1) {
			t.Fatalf("router %d: window length %d, want %d", id, e-s+1, msg.ExpectedReplySize)
		}
		w.injLo, w.injHi = lo, hi
		now += 5 // uncontended request cadence
	}
	if w.injLo != w.injHi {
		t.Fatalf("zero slack must pin injection to one cycle: [%d, %d]", w.injLo, w.injHi)
	}
}

func TestTimedWindowJitterBreaksZeroSlack(t *testing.T) {
	mg := timedRig(t, timedOpts(0, 0, 0))
	msg := timedMsg(0, 3)
	w := &walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	path := mg.m.Path(mesh.RouteXY, 0, 3)
	now := sim.Cycle(100)
	for i, id := range path {
		in, out := mesh.Local, mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, id, path[i-1])
		}
		if i < len(path)-1 {
			out = dirBetween(mg.m, id, path[i+1])
		}
		_, _, lo, hi, ok := mg.timedWindow(id, msg, out, in, w, now)
		if i == len(path)-1 {
			if ok {
				t.Fatal("a delayed request with zero slack must break its own schedule")
			}
			return
		}
		if !ok {
			t.Fatalf("router %d: unexpectedly infeasible", id)
		}
		w.injLo, w.injHi = lo, hi
		now += 5
		if i == len(path)-2 {
			now += 3 // jitter before the final reservation
		}
	}
}

func TestTimedWindowSlackAbsorbsJitter(t *testing.T) {
	mg := timedRig(t, timedOpts(2, 0, 0))
	msg := timedMsg(0, 3)
	w := &walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	path := mg.m.Path(mesh.RouteXY, 0, 3)
	now := sim.Cycle(100)
	for i, id := range path {
		in, out := mesh.Local, mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, id, path[i-1])
		}
		if i < len(path)-1 {
			out = dirBetween(mg.m, id, path[i+1])
		}
		_, _, lo, hi, ok := mg.timedWindow(id, msg, out, in, w, now)
		if !ok {
			t.Fatalf("router %d: slack failed to absorb jitter", id)
		}
		w.injLo, w.injHi = lo, hi
		now += 5
		if i == 0 {
			now += 4 // jitter within the 2-cycles/hop * 3-hop slack budget
		}
	}
	if w.injLo > w.injHi {
		t.Fatal("final interval empty despite slack")
	}
}

func TestTimedWindowDelaySearchShiftsPastConflicts(t *testing.T) {
	mg := timedRig(t, timedOpts(2, 2, 0))
	msg := timedMsg(0, 3)
	// Occupy the colliding slot at router 1 with a foreign circuit using
	// a different input port and the same output.
	id := mesh.NodeID(1)
	base := sim.Cycle(100) + (reqHopLatency+repHopLatency)*2 + 7 + estimateOverhead
	foreign := entry{
		built: true, dest: 9, block: 0x999, out: mesh.West,
		winStart: base - 2, winEnd: base + 8,
	}
	mg.tables[id].insert(mesh.Local, foreign, 5, 0)

	w := &walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	// Reserve at router 1 as the request passes (in from West toward
	// East; the reply enters East and leaves West, colliding with the
	// foreign entry's West output).
	s, _, _, _, ok := mg.timedWindow(id, msg, mesh.East, mesh.West, w, 105)
	if !ok {
		t.Fatal("delay search should find a later slot")
	}
	if s <= foreign.winEnd {
		t.Fatalf("window start %d not shifted past the conflict ending %d", s, foreign.winEnd)
	}
	if msg.AccumDelay == 0 {
		t.Fatal("accumulated delay not recorded")
	}
}

func TestTimedWindowPostponedPinsSchedule(t *testing.T) {
	mg := timedRig(t, timedOpts(0, 0, 2))
	msg := timedMsg(0, 3)
	w := &walk{prevVC: -1, injLo: -1 << 60, injHi: 1 << 60}
	path := mg.m.Path(mesh.RouteXY, 0, 3)
	now := sim.Cycle(100)
	var lows []sim.Cycle
	for i, id := range path {
		in, out := mesh.Local, mesh.Local
		if i > 0 {
			in = dirBetween(mg.m, id, path[i-1])
		}
		if i < len(path)-1 {
			out = dirBetween(mg.m, id, path[i+1])
		}
		_, _, lo, hi, ok := mg.timedWindow(id, msg, out, in, w, now)
		if !ok {
			t.Fatalf("router %d infeasible", id)
		}
		if lo != hi {
			t.Fatalf("postponed windows must pin a single injection cycle, got [%d,%d]", lo, hi)
		}
		lows = append(lows, lo)
		w.injLo, w.injHi = lo, hi
		now += 5
		now += sim.Cycle(i) // arbitrary jitter: the pinned schedule absorbs it
	}
	for i := 1; i < len(lows); i++ {
		if lows[i] != lows[0] {
			t.Fatalf("schedule drifted: %v", lows)
		}
	}
	// The pinned cycle includes the postponement budget.
	if !w.hasSched {
		t.Fatal("schedule not pinned")
	}
}
