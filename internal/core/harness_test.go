package core

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// rig wires a network with a Reactive Circuits manager and a scripted
// responder that answers every circuit-wanting request with a reply after a
// fixed processing delay — the request/reply skeleton of the coherence
// protocol, without the protocol.
type rig struct {
	t       *testing.T
	m       mesh.Mesh
	opts    Options
	mgr     *Manager
	net     *noc.Network
	kernel  *sim.Kernel
	proc    sim.Cycle
	pending []pendingReply
	// delivered replies and requests, by arrival order
	replies  []*noc.Message
	requests []*noc.Message
	// forwardTo, when set for a block, makes the responder undo the
	// circuit and have node forwardTo[block] send the reply instead
	// (the L2-forwards-to-owner pattern).
	forwardTo map[uint64]mesh.NodeID
	blockSeq  uint64
	// onReplyBuild lets tests adjust each responder-built reply before
	// it is scheduled (probe mode marks replies circuit-wanting).
	onReplyBuild func(*noc.Message)
}

type pendingReply struct {
	at  sim.Cycle
	msg *noc.Message
	at2 mesh.NodeID // reply source
}

func newRig(t *testing.T, w, h int, opts Options, proc sim.Cycle) *rig {
	t.Helper()
	m := mesh.New(w, h)
	r := &rig{t: t, m: m, opts: opts, proc: proc, forwardTo: map[uint64]mesh.NodeID{}}
	var handler noc.CircuitHandler
	var hook noc.NIHook
	cfg := NetConfigFor(m, opts)
	if opts.Enabled() {
		r.mgr = NewManager(opts, m)
		handler, hook = r.mgr, r.mgr
	}
	r.net = noc.NewNetwork(cfg, handler, hook)
	if r.mgr != nil {
		r.mgr.Bind(r.net)
	}
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		id := id
		r.net.NI(id).SetReceiver(func(msg *noc.Message, now sim.Cycle) {
			r.onDeliver(id, msg, now)
		})
	}
	r.kernel = sim.NewKernel()
	r.kernel.Register(r.net)
	r.kernel.Register(tickFunc(r.drainPending))
	if r.mgr != nil {
		// The manager's deferred cross-tile operations drain at the cycle
		// epilogue in every engine mode, exactly as System.Register wires it.
		r.kernel.AddEpilogue(r.mgr.FlushCycle)
	}
	return r
}

type tickFunc func(sim.Cycle)

func (f tickFunc) Tick(now sim.Cycle) { f(now) }

func (r *rig) onDeliver(ni mesh.NodeID, msg *noc.Message, now sim.Cycle) {
	if msg.VN == noc.VNRequest {
		r.requests = append(r.requests, msg)
		if msg.ExpectedReplySize <= 0 {
			return // pure contention traffic
		}
		src := ni
		hint := uint8(0)
		if fwd, ok := r.forwardTo[msg.Block]; ok {
			// The "L2 owns nothing" pattern: undo the circuit, the
			// owner sends the data instead.
			if r.mgr != nil {
				r.mgr.Undo(ni, msg.Src, msg.Block, now)
				hint = uint8(OutcomeUndone)
			}
			src = fwd
		}
		reply := &noc.Message{
			Type: msg.Type + 100,
			Src:  src, Dst: msg.Src,
			VN: noc.VNReply, Size: msg.ExpectedReplySize,
			Block:       msg.Block,
			OutcomeHint: hint,
		}
		if r.onReplyBuild != nil {
			r.onReplyBuild(reply)
		}
		r.pending = append(r.pending, pendingReply{at: now + r.proc, msg: reply, at2: src})
		return
	}
	r.replies = append(r.replies, msg)
}

func (r *rig) drainPending(now sim.Cycle) {
	rest := r.pending[:0]
	for _, p := range r.pending {
		if p.at <= now {
			r.net.Send(p.msg, now)
		} else {
			rest = append(rest, p)
		}
	}
	r.pending = rest
}

// request injects a circuit-wanting request at cycle 0-relative "now" and
// returns the message for inspection.
func (r *rig) request(src, dst mesh.NodeID, replySize int) *noc.Message {
	r.blockSeq += 64
	msg := &noc.Message{
		Src: src, Dst: dst, VN: noc.VNRequest, Size: 1,
		WantCircuit:       true,
		Block:             r.blockSeq,
		ExpectedProcDelay: r.proc,
		ExpectedReplySize: replySize,
	}
	r.net.Send(msg, r.kernel.Now())
	return msg
}

// plainRequest injects a request that reserves nothing — pure contention
// traffic for the request virtual network.
func (r *rig) plainRequest(src, dst mesh.NodeID, size int) *noc.Message {
	msg := &noc.Message{Src: src, Dst: dst, VN: noc.VNRequest, Size: size}
	r.net.Send(msg, r.kernel.Now())
	return msg
}

// plainReply injects a reply with no circuit of its own (an ack-like
// message) from src to dst.
func (r *rig) plainReply(src, dst mesh.NodeID, size int) *noc.Message {
	msg := &noc.Message{Src: src, Dst: dst, VN: noc.VNReply, Size: size, Block: 1<<62 + r.blockSeq}
	r.blockSeq += 64
	r.net.Send(msg, r.kernel.Now())
	return msg
}

func (r *rig) runQuiet(horizon sim.Cycle) {
	r.t.Helper()
	done := func() bool { return r.net.Quiescent() && len(r.pending) == 0 }
	if _, ok := r.kernel.RunUntil(done, horizon); !ok {
		r.t.Fatalf("system not quiescent after %d cycles (%d replies, %d requests delivered)",
			horizon, len(r.replies), len(r.requests))
	}
}

func (r *rig) run(n sim.Cycle) { r.kernel.Run(n) }

// completeOpts is the plain complete-circuits configuration.
func completeOpts() Options {
	return Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5}
}

func fragmentedOpts() Options {
	return Options{Mechanism: MechFragmented, MaxCircuitsPerPort: 2}
}

func timedOpts(slack, delay, postpone int) Options {
	return Options{
		Mechanism: MechComplete, MaxCircuitsPerPort: 5,
		Timed: true, SlackPerHop: slack, DelayPerHop: delay, PostponePerHop: postpone,
	}
}

// circuitLatency is the contention-free reply latency on a complete
// circuit: 2 cycles per router (1 in the router + 1 link) over hops+1
// routers, plus the injection link and the pipelined body flits.
func circuitLatency(m mesh.Mesh, src, dst mesh.NodeID, size int) sim.Cycle {
	h := sim.Cycle(m.Hops(src, dst))
	return 2*(h+1) + 2 + sim.Cycle(size-1)
}

// packetLatency is the contention-free reply latency through the normal
// four-stage pipeline.
func packetLatency(m mesh.Mesh, src, dst mesh.NodeID, size int) sim.Cycle {
	h := sim.Cycle(m.Hops(src, dst))
	return 5*(h+1) + 2 + sim.Cycle(size-1)
}
