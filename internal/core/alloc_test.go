package core

import (
	"os"
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// TestBypassFastPathAllocationBound pins the allocation cost of the circuit
// machinery itself: a full reserve → build → bypass → release round trip
// (request out, 5-flit reply back on its circuit) using pooled messages.
// Exactly one object per trip is expected — the record, which escapes into
// rides/pendingUndo and is deliberately not pooled (see DESIGN.md §5b). The
// walks, table entries, flits and messages all recycle.
func TestBypassFastPathAllocationBound(t *testing.T) {
	if os.Getenv("RC_NOPOOL") == "1" {
		t.Skip("pooling disabled by RC_NOPOOL; allocation bounds do not apply")
	}
	opts := completeOpts()
	m := mesh.New(8, 8)
	mgr := NewManager(opts, m)
	net := noc.NewNetwork(NetConfigFor(m, opts), mgr, mgr)
	mgr.Bind(net)
	kernel := sim.NewKernel()
	delivered := 0
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(msg *noc.Message, now sim.Cycle) {
			if msg.VN == noc.VNRequest {
				rep := net.NewMessage()
				rep.Src, rep.Dst = msg.Dst, msg.Src
				rep.VN, rep.Size = noc.VNReply, 5
				rep.Block = msg.Block
				net.Send(rep, now)
			} else {
				delivered++
			}
			net.FreeMessage(msg)
		})
	}
	kernel.Register(net)
	block := uint64(0)
	roundTrip := func() {
		block += 64
		req := net.NewMessage()
		req.Src, req.Dst = 0, 63
		req.VN, req.Size = noc.VNRequest, 1
		req.WantCircuit = true
		req.Block = block
		req.ExpectedReplySize = 5
		net.Send(req, kernel.Now())
		want := delivered + 1
		if _, ok := kernel.RunUntil(func() bool { return delivered >= want }, 10000); !ok {
			t.Fatal("reply never delivered")
		}
	}
	for i := 0; i < 8; i++ {
		roundTrip() // warm pools, walk free list, table slots, ride maps
	}
	avg := testing.AllocsPerRun(100, roundTrip)
	t.Logf("allocs per circuit round trip: %.2f", avg)
	if avg > 1 {
		t.Errorf("circuit round trip allocates %.2f objects, want <= 1 (the record)", avg)
	}
}
