package core

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// profiledPolicy implements profiled hybrid switching (PAPERS.md:
// "Energy-Efficient On-Chip Networks through Profiled Hybrid Switching"):
// a per-flow circuit-vs-packet decision driven by the observed outcomes of
// past replies. Flows whose circuits keep failing stop paying the
// reservation cost — their requests travel as plain packets for a backoff
// period before the flow is re-admitted and re-profiled.
//
// Mechanically it is the complete mechanism with a filter at the first
// router of each reservation walk: a demoted flow's request drops its
// WantCircuit bit before anything is reserved, so no table entry, registry
// record, or undo walk ever exists for it and every complete-circuit
// oracle keeps holding for the admitted flows.
type profiledPolicy struct {
	completeFamily

	window  int // replies profiled per decision window
	pct     int // minimum circuit-ride percentage to stay admitted
	backoff int // demoted requests before re-admission

	// flows is partitioned by the shard of the flow's request source: admit
	// runs at the first router of the walk (the request source's tile), so
	// each shard only ever touches its own map mid-phase. The epilogue
	// (flushCycle) may touch any of them.
	flows []map[flowKey]*flowProfile

	// pendingObs defers Observe to the cycle epilogue, per observing shard:
	// a reply classifies at its own source NI, which need not be the shard
	// owning the flow. Draining in shard order reproduces the sequential
	// NI-visit order exactly; and since every admit (router phase) precedes
	// every Observe (NI phase) of the same cycle, applying the window logic
	// at the epilogue is behaviour-identical to applying it inline.
	pendingObs [][]flowObs

	// Counters exported under circ/, sharded like the state they count
	// (the registry sums same-named counters). demotions only moves in the
	// single-threaded epilogue.
	circuitReqs []int64
	packetReqs  []int64
	demotions   int64
}

// flowObs is one deferred Observe.
type flowObs struct {
	key flowKey
	o   Outcome
}

// flowKey identifies a request flow by its endpoints.
type flowKey struct {
	src, dst mesh.NodeID
}

type flowProfile struct {
	packetMode bool
	backoff    int // demoted requests remaining before re-admission
	winDone    int // replies observed this window
	winWins    int // replies that rode a circuit this window
}

func (p *profiledPolicy) Name() string { return "profiled-hybrid" }

func (p *profiledPolicy) Validate(o *Options) error {
	if o.Mechanism != MechComplete {
		return fmt.Errorf("core: policy %q profiles the complete mechanism (set MechComplete)", "profiled-hybrid")
	}
	if err := (completePolicy{}).Validate(o); err != nil {
		return err
	}
	if o.ProfileWindow < 0 || o.ProfileThresholdPct < 0 || o.ProfileBackoff < 0 {
		return fmt.Errorf("core: negative profiled-hybrid parameters")
	}
	if o.ProfileThresholdPct > 100 {
		return fmt.Errorf("core: ProfileThresholdPct is a percentage (0-100)")
	}
	return nil
}

// NetConfig is the complete mechanism's network: the admitted flows ride
// the same unbuffered circuit VC with YX replies.
func (p *profiledPolicy) NetConfig(cfg *noc.NetConfig, o *Options) {
	(completePolicy{}).NetConfig(cfg, o)
}

func (p *profiledPolicy) Attach(mg *Manager) {
	p.window = orDefault(mg.opts.ProfileWindow, 32)
	p.pct = orDefault(mg.opts.ProfileThresholdPct, 50)
	p.backoff = orDefault(mg.opts.ProfileBackoff, 128)
	p.sizeShards(1)
}

// setShards re-partitions the flow state; must run before any traffic (and
// before DescribeMetrics registers the counter slots).
func (p *profiledPolicy) setShards(mg *Manager) { p.sizeShards(mg.nshards) }

func (p *profiledPolicy) sizeShards(n int) {
	p.flows = make([]map[flowKey]*flowProfile, n)
	for s := range p.flows {
		p.flows[s] = map[flowKey]*flowProfile{}
	}
	p.pendingObs = make([][]flowObs, n)
	p.circuitReqs = make([]int64, n)
	p.packetReqs = make([]int64, n)
}

func (p *profiledPolicy) DescribeMetrics(reg *sim.Registry) {
	for s := range p.circuitReqs {
		reg.Counter("circ/profiled_circuit_requests", &p.circuitReqs[s])
		reg.Counter("circ/profiled_packet_requests", &p.packetReqs[s])
	}
	reg.Counter("circ/profiled_demotions", &p.demotions)
}

// Reserve consults the flow profile at the first router of the walk: an
// admitted flow reserves like a complete circuit; a demoted flow's request
// drops its circuit wish entirely and the walk is abandoned before any
// state exists.
func (p *profiledPolicy) Reserve(mg *Manager, id mesh.NodeID, msg *noc.Message, in, out mesh.Dir, w *walk, now sim.Cycle) {
	if w.routers == 1 && !p.admit(mg, msg) {
		msg.WantCircuit = false // downstream routers skip reservation entirely
		msg.Walk = nil
		mg.freeWalk(id, w)
		return
	}
	p.completeFamily.Reserve(mg, id, msg, in, out, w, now)
}

// admit decides circuit vs packet for one request and advances the
// demotion backoff. The flow map is only ever indexed by key, never
// iterated, so the policy stays deterministic. It runs at the request
// source's tile, whose shard owns the flow.
func (p *profiledPolicy) admit(mg *Manager, msg *noc.Message) bool {
	s := mg.shard(msg.Src)
	flows := p.flows[s]
	f := flows[flowKey{src: msg.Src, dst: msg.Dst}]
	if f == nil {
		f = &flowProfile{}
		flows[flowKey{src: msg.Src, dst: msg.Dst}] = f
	}
	if f.packetMode {
		p.packetReqs[s]++
		f.backoff--
		if f.backoff <= 0 {
			// Re-admit and re-profile from a clean window.
			f.packetMode = false
			f.winDone, f.winWins = 0, 0
		}
		return false
	}
	p.circuitReqs[s]++
	return true
}

// Observe queues the classified reply for the cycle epilogue: the flow it
// grades may belong to another shard. The reply's endpoints are the
// request's swapped.
func (p *profiledPolicy) Observe(mg *Manager, ni mesh.NodeID, msg *noc.Message, o Outcome) {
	switch o {
	case OutcomeCircuit, OutcomeFailed, OutcomeUndone:
	default:
		return // scroungers/eliminated/not-eligible say nothing about this flow
	}
	s := mg.shard(ni)
	p.pendingObs[s] = append(p.pendingObs[s], flowObs{
		key: flowKey{src: msg.Dst, dst: msg.Src},
		o:   o,
	})
}

// flushCycle applies the cycle's deferred observations in shard order and
// enqueue order within each shard — ascending observing-NI order, the same
// order the sequential NI phase classified them.
func (p *profiledPolicy) flushCycle(mg *Manager, now sim.Cycle) {
	for s := range p.pendingObs {
		obs := p.pendingObs[s]
		for i := range obs {
			p.applyObs(mg, obs[i])
			obs[i] = flowObs{}
		}
		p.pendingObs[s] = obs[:0]
	}
}

// applyObs learns from one classified reply of an admitted flow: when a
// decision window closes with too few circuit rides, the flow is demoted
// for the backoff period.
func (p *profiledPolicy) applyObs(mg *Manager, ob flowObs) {
	f := p.flows[mg.shard(ob.key.src)][ob.key]
	if f == nil || f.packetMode {
		return
	}
	f.winDone++
	if ob.o == OutcomeCircuit {
		f.winWins++
	}
	if f.winDone >= p.window {
		if f.winWins*100 < p.pct*f.winDone {
			f.packetMode = true
			f.backoff = p.backoff
			p.demotions++
		}
		f.winDone, f.winWins = 0, 0
	}
}
