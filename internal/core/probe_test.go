package core

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
)

func probeOpts() Options {
	return Options{Mechanism: MechProbe, MaxCircuitsPerPort: 5}
}

// probeRig adapts the shared rig: in probe mode the *reply* is marked
// circuit-wanting (the coherence layer does this for eligible replies).
func newProbeRig(t *testing.T, w, h int, proc int64) *rig {
	r := newRig(t, w, h, probeOpts(), proc)
	return r
}

// probeRequest sends a plain request whose reply will be probe-announced.
func (r *rig) probeRequest(src, dst mesh.NodeID, replySize int) *noc.Message {
	msg := r.request(src, dst, replySize)
	msg.WantCircuit = false // probe mode: requests reserve nothing
	return msg
}

func markReplyEligible(r *rig) {
	old := r.onReplyBuild
	r.onReplyBuild = func(rep *noc.Message) {
		if old != nil {
			old(rep)
		}
		rep.WantCircuit = true
	}
}

func TestProbeSetupEndToEnd(t *testing.T) {
	r := newProbeRig(t, 4, 4, 7)
	markReplyEligible(r)
	r.probeRequest(0, 15, 5)
	r.runQuiet(4000)

	st := &r.mgr.Stats
	if st.ProbesSent != 1 {
		t.Fatalf("probes sent %d, want 1", st.ProbesSent)
	}
	if st.Replies[OutcomeCircuit] != 1 {
		t.Fatalf("reply did not ride the probe-built circuit: %+v", st.Replies)
	}
	if len(r.replies) != 1 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
	rep := r.replies[0]
	// The ride itself is fast (2 cycles/hop)...
	if got, want := rep.DeliveredAt-rep.InjectedAt, circuitLatency(r.m, 15, 0, 5); got != want {
		t.Fatalf("probe-circuit ride latency %d, want %d", got, want)
	}
	// ...but the exposed setup wait makes the total no better than the
	// plain pipeline — the paper's reason to reject setup-at-reply-time.
	total := rep.DeliveredAt - rep.EnqueuedAt
	if total < packetLatency(r.m, 15, 0, 5) {
		t.Fatalf("probe setup should not beat the plain pipeline end to end: total %d vs packet %d",
			total, packetLatency(r.m, 15, 0, 5))
	}
	// No leaked entries after the ride.
	for id := range r.mgr.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range r.mgr.tables[id].inputs[d] {
				if e.built {
					t.Fatalf("leaked probe entry at router %d port %v", id, d)
				}
			}
		}
	}
}

func TestProbeConflictFailsAndCleansUp(t *testing.T) {
	// Two overlapping probe circuits with different inputs and one output
	// conflict like any other circuits; the loser's prefix is torn down
	// by the backward walk and its reply takes the normal pipeline.
	r := newProbeRig(t, 4, 1, 7)
	markReplyEligible(r)
	r.probeRequest(3, 0, 5) // reply (and probe) travel 0 -> 3
	r.probeRequest(3, 1, 5) // reply 1 -> 3: at router 1 a different input
	// (Local vs West) wants the same East output: the later probe fails.
	r.runQuiet(8000)

	st := &r.mgr.Stats
	if st.ProbesSent != 2 {
		t.Fatalf("probes sent %d", st.ProbesSent)
	}
	if st.Replies[OutcomeCircuit] != 1 || st.Replies[OutcomeFailed] != 1 {
		t.Fatalf("want one ride and one failed setup: %+v", st.Replies)
	}
	if len(r.replies) != 2 {
		t.Fatalf("delivered %d replies", len(r.replies))
	}
	for id := range r.mgr.tables {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			for _, e := range r.mgr.tables[id].inputs[d] {
				if e.built {
					t.Fatalf("leaked entry at router %d port %v after conflict", id, d)
				}
			}
		}
	}
}

func TestProbeStressNoCorruption(t *testing.T) {
	// Many overlapping probe transactions: everything delivers and the
	// wormhole invariants hold (the assertions would panic otherwise).
	r := newProbeRig(t, 4, 4, 7)
	markReplyEligible(r)
	for src := mesh.NodeID(0); int(src) < r.m.Nodes(); src++ {
		for k := 0; k < 3; k++ {
			if int(src) != 5 {
				r.probeRequest(src, 5, 5)
			}
		}
	}
	r.runQuiet(60000)
	if len(r.replies) != 45 {
		t.Fatalf("delivered %d replies, want 45", len(r.replies))
	}
	st := &r.mgr.Stats
	if st.ProbesSent != 45 {
		t.Fatalf("probes sent %d", st.ProbesSent)
	}
	if st.Replies[OutcomeCircuit]+st.Replies[OutcomeFailed] != 45 {
		t.Fatalf("classification mismatch: %+v", st.Replies)
	}
}

func TestProbeOptionsValidation(t *testing.T) {
	bad := []Options{
		{Mechanism: MechProbe},
		{Mechanism: MechProbe, MaxCircuitsPerPort: 5, NoAck: true},
		{Mechanism: MechProbe, MaxCircuitsPerPort: 5, Timed: true},
		{Mechanism: MechProbe, MaxCircuitsPerPort: 5, Reuse: true},
		{Mechanism: MechProbe, MaxCircuitsPerPort: 5, SpeculativeRouter: true},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad probe options %d accepted", i)
		}
	}
	good := probeOpts()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid probe options rejected: %v", err)
	}
	if good.Mechanism.String() != "probe-setup" {
		t.Fatal("mechanism name")
	}
}

func TestSpeculativeRouterOptionValidation(t *testing.T) {
	good := Options{SpeculativeRouter: true}
	if err := good.Validate(); err != nil {
		t.Fatalf("speculative baseline rejected: %v", err)
	}
	bad := Options{Mechanism: MechComplete, MaxCircuitsPerPort: 5, SpeculativeRouter: true}
	if err := bad.Validate(); err == nil {
		t.Fatal("speculation + circuits accepted")
	}
	cfg := NetConfigFor(mesh.New(4, 4), good)
	if !cfg.Speculative {
		t.Fatal("NetConfigFor dropped the speculative flag")
	}
}
