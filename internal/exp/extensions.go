package exp

import (
	"fmt"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/workload"
)

// ---------------------------------------------------------------------------
// Load-threshold experiment (the paper's Section 5.5 claim: heavy traffic
// prevents complete circuits, and timed circuits raise that threshold).
// ---------------------------------------------------------------------------

// LoadSweep measures circuit success and speedup as the offered load grows.
type LoadSweep struct {
	Chip     config.Chip
	Rows     []LoadRow
	Failures []FailureReport
}

// LoadRow is one load point.
type LoadRow struct {
	Factor  float64
	InjRate float64 // baseline injected flits/node/cycle
	// Per variant: fraction of replies riding circuits, reservation
	// failures among attempts, and speedup over baseline at this load.
	Circuit map[string]float64
	Failed  map[string]float64
	Speedup map[string]float64
}

// loadVariants are the designs whose congestion behaviour the paper
// contrasts: untimed complete circuits vs timed with slack and delay.
func loadVariants() []string { return []string{"Complete_NoAck", "SlackDelay_1_NoAck"} }

// LoadSweepRun sweeps workload intensity multipliers on one chip. Failed
// runs are recorded in the result's Failures and their points skipped.
func LoadSweepRun(c config.Chip, factors []float64, ops int64, pol Policy) *LoadSweep {
	ls := &LoadSweep{Chip: c}
	cl := newCollector(nil, pol)
	base := workload.Micro()
	for _, f := range factors {
		if cl.halted() {
			break
		}
		w := base.Scaled(f)
		row := LoadRow{
			Factor:  f,
			Circuit: map[string]float64{},
			Failed:  map[string]float64{},
			Speedup: map[string]float64{},
		}
		bv, _ := config.ByName("Baseline")
		bspec := chip.DefaultSpec(c, bv, w)
		bspec.MeasureOps = ops
		b, ok := cl.run(bspec)
		if !ok {
			continue // no baseline at this load point; nothing to normalize to
		}
		row.InjRate = injectedFlitsPerNodeCycle(b)
		for _, name := range loadVariants() {
			v, _ := config.ByName(name)
			spec := chip.DefaultSpec(c, v, w)
			spec.MeasureOps = ops
			r, ok := cl.run(spec)
			if !ok {
				continue
			}
			row.Circuit[name] = r.Circ.OutcomeFraction(core.OutcomeCircuit)
			att := float64(r.Circ.CircuitsBuilt + r.Circ.ReserveFailedConflict + r.Circ.ReserveFailedStorage)
			if att > 0 {
				row.Failed[name] = float64(r.Circ.ReserveFailedConflict+r.Circ.ReserveFailedStorage) / att
			}
			row.Speedup[name] = r.Speedup(b)
		}
		ls.Rows = append(ls.Rows, row)
	}
	ls.Failures = cl.take()
	return ls
}

// injectedFlitsPerNodeCycle is the paper's load measure.
func injectedFlitsPerNodeCycle(r *chip.Results) float64 {
	var flits int64
	for t, n := range r.Msgs.Network {
		flits += n * int64(coherence.MsgType(t).SizeFlits())
	}
	return float64(flits) / float64(r.Cycles) / float64(r.Spec.Chip.Nodes())
}

// Format renders the sweep.
func (ls *LoadSweep) Format() string {
	tb := &table{header: []string{"load", "flits/node/100cy"}}
	for _, v := range loadVariants() {
		tb.header = append(tb.header, v+" circ", v+" fail", v+" speedup")
	}
	for _, r := range ls.Rows {
		row := []string{fmt.Sprintf("x%g", r.Factor), fmt.Sprintf("%.2f", r.InjRate*100)}
		for _, v := range loadVariants() {
			row = append(row, pct(r.Circuit[v]), pct(r.Failed[v]),
				fmt.Sprintf("%+.2f%%", (r.Speedup[v]-1)*100))
		}
		tb.add(row...)
	}
	return fmt.Sprintf("Load threshold (%s): circuit construction vs offered load\n%s", ls.Chip.Name, tb.String()) +
		"the paper (Section 5.5): heavy loads make conflicts frequent and prevent complete circuits;\n" +
		"timed circuits hold ports only for their windows, raising the congestion threshold\n" +
		FormatFailures(ls.Failures)
}

// ---------------------------------------------------------------------------
// Ablations of the paper's experimentally chosen constants.
// ---------------------------------------------------------------------------

// Ablation is a one-dimensional design sweep.
type Ablation struct {
	Chip     config.Chip
	Param    string
	Rows     []AblationRow
	Failures []FailureReport
}

// AblationRow is one parameter value's outcome.
type AblationRow struct {
	Value          int
	CircuitFrac    float64
	StorageFailed  float64 // reservation failures from full entry storage
	ConflictFailed float64
	Undone         float64
	Speedup        float64
	AreaSavings    float64
}

// AblateCircuitsPerPort sweeps the simultaneous-circuit storage that the
// paper fixes at five entries per input port ("big enough to reduce failed
// circuits due to lack of storage but small enough to minimize area").
func AblateCircuitsPerPort(c config.Chip, values []int, ops int64, pol Policy) *Ablation {
	ab := &Ablation{Chip: c, Param: "circuits/port"}
	cl := newCollector(nil, pol)
	w := workload.Micro()
	bv, _ := config.ByName("Baseline")
	bspec := chip.DefaultSpec(c, bv, w)
	bspec.MeasureOps = ops
	b, ok := cl.run(bspec)
	if !ok {
		ab.Failures = cl.take()
		return ab // no baseline, no ratios worth reporting
	}
	for _, n := range values {
		if cl.halted() {
			break
		}
		opts := core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: n, NoAck: true}
		v := config.Variant{Name: fmt.Sprintf("Complete_%dper", n), Opts: opts}
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = ops
		r, ok := cl.run(spec)
		if !ok {
			continue
		}
		att := float64(r.Circ.CircuitsBuilt + r.Circ.ReserveFailedConflict + r.Circ.ReserveFailedStorage)
		row := AblationRow{
			Value:       n,
			CircuitFrac: r.Circ.OutcomeFraction(core.OutcomeCircuit),
			Speedup:     r.Speedup(b),
			AreaSavings: r.AreaSavings,
		}
		if att > 0 {
			row.StorageFailed = float64(r.Circ.ReserveFailedStorage) / att
			row.ConflictFailed = float64(r.Circ.ReserveFailedConflict) / att
		}
		ab.Rows = append(ab.Rows, row)
	}
	ab.Failures = cl.take()
	return ab
}

// AblateSlack sweeps the slack of timed reservations (the paper's Slack_N
// family): small slack loses circuits to jitter, large slack occupies
// ports too long.
func AblateSlack(c config.Chip, values []int, ops int64, pol Policy) *Ablation {
	ab := &Ablation{Chip: c, Param: "slack/hop"}
	cl := newCollector(nil, pol)
	w := workload.Micro()
	bv, _ := config.ByName("Baseline")
	bspec := chip.DefaultSpec(c, bv, w)
	bspec.MeasureOps = ops
	b, ok := cl.run(bspec)
	if !ok {
		ab.Failures = cl.take()
		return ab
	}
	for _, s := range values {
		if cl.halted() {
			break
		}
		opts := core.Options{
			Mechanism: core.MechComplete, MaxCircuitsPerPort: 5,
			NoAck: true, Timed: true, SlackPerHop: s,
		}
		v := config.Variant{Name: fmt.Sprintf("Slack_%d", s), Opts: opts}
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = ops
		r, ok := cl.run(spec)
		if !ok {
			continue
		}
		att := float64(r.Circ.CircuitsBuilt + r.Circ.ReserveFailedConflict + r.Circ.ReserveFailedStorage)
		row := AblationRow{
			Value:       s,
			CircuitFrac: r.Circ.OutcomeFraction(core.OutcomeCircuit),
			Undone:      r.Circ.OutcomeFraction(core.OutcomeUndone),
			Speedup:     r.Speedup(b),
			AreaSavings: r.AreaSavings,
		}
		if att > 0 {
			row.ConflictFailed = float64(r.Circ.ReserveFailedConflict) / att
		}
		ab.Rows = append(ab.Rows, row)
	}
	ab.Failures = cl.take()
	return ab
}

// ---------------------------------------------------------------------------
// Related-work comparison: the design space the paper positions itself in.
// ---------------------------------------------------------------------------

// Compare contrasts Reactive Circuits with the related-work alternatives:
// speculative single-cycle routers and probe-based (Déjà-Vu) setup.
type Compare struct {
	Chip     config.Chip
	Rows     []CompareRow
	Failures []FailureReport
}

// CompareRow is one design's headline metrics at light load plus its
// speedup under an 8x-intensity workload (speculation decays with
// contention; circuits — especially timed ones — hold up).
type CompareRow struct {
	Name         string
	ReplyNet     float64 // circuit-eligible reply network latency (cycles)
	Speedup      float64
	SpeedupHeavy float64
	EnergyRatio  float64
	AreaSavings  float64
}

// CompareRun evaluates the comparator designs on one workload.
func CompareRun(c config.Chip, ops int64, pol Policy) *Compare {
	cmp := &Compare{Chip: c}
	cl := newCollector(nil, pol)
	light := workload.Micro()
	heavy := light.Scaled(8)
	var base, baseHeavy *chip.Results
	for _, v := range config.Comparators() {
		if cl.halted() {
			break
		}
		spec := chip.DefaultSpec(c, v, light)
		spec.MeasureOps = ops
		r, ok := cl.run(spec)
		if !ok {
			continue
		}
		hspec := chip.DefaultSpec(c, v, heavy)
		hspec.MeasureOps = ops
		hr, _ := cl.run(hspec)
		if v.Name == "Baseline" {
			base, baseHeavy = r, hr
		}
		row := CompareRow{
			Name:        v.Name,
			ReplyNet:    r.Lat.CircuitReplies.Network.Mean(),
			AreaSavings: r.AreaSavings,
		}
		if base != nil {
			row.Speedup = r.Speedup(base)
			row.EnergyRatio = r.Energy.Total() / base.Energy.Total()
		}
		if hr != nil && baseHeavy != nil {
			row.SpeedupHeavy = hr.Speedup(baseHeavy)
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	cmp.Failures = cl.take()
	return cmp
}

// Format renders the comparison.
func (cmp *Compare) Format() string {
	tb := &table{header: []string{"design", "data-reply net (cy)", "speedup", "speedup @8x load", "energy", "router area"}}
	for _, r := range cmp.Rows {
		tb.add(r.Name, fmt.Sprintf("%.1f", r.ReplyNet),
			fmt.Sprintf("%+.2f%%", (r.Speedup-1)*100),
			fmt.Sprintf("%+.2f%%", (r.SpeedupHeavy-1)*100),
			fmt.Sprintf("%.3f", r.EnergyRatio), pct2(r.AreaSavings))
	}
	return fmt.Sprintf("Related-work comparison (%s)\n%s", cmp.Chip.Name, tb.String()) +
		"speculative routers [16-19] are modelled WITHOUT their complexity/frequency penalty\n" +
		"(an optimistic bound) and only win while uncontended; probe setup at reply time [7]\n" +
		"cannot hide the traversal when the L2 answers in 7 cycles; reserving with the\n" +
		"request gets circuit latency plus the area and NoAck benefits\n" +
		FormatFailures(cmp.Failures)
}

// ---------------------------------------------------------------------------
// Scalability: circuit construction vs chip size (the paper's Section 5.5
// concern that longer paths and more traffic make circuits harder to build).
// ---------------------------------------------------------------------------

// ScaleSweep measures the mechanism across chip sizes.
type ScaleSweep struct {
	Rows     []ScaleRow
	Failures []FailureReport
}

// ScaleRow is one chip size's outcome for Complete_NoAck and the timed
// SlackDelay variant.
type ScaleRow struct {
	Nodes   int
	Circuit map[string]float64
	Failed  map[string]float64
	Speedup map[string]float64
}

func scaleVariants() []string { return []string{"Complete_NoAck", "SlackDelay_1_NoAck"} }

// ScaleSweepRun runs the micro workload across square meshes. Sizes above
// 64 nodes are rejected: the directory's sharer vector is one machine word,
// matching the paper's largest chip.
func ScaleSweepRun(dims []int, ops int64, pol Policy) *ScaleSweep {
	ss := &ScaleSweep{}
	cl := newCollector(nil, pol)
	w := workload.Micro()
	for _, d := range dims {
		if d*d > 64 {
			panic("exp: chips beyond 64 nodes exceed the directory's sharer vector")
		}
		if cl.halted() {
			break
		}
		c := config.Chip{Name: fmt.Sprintf("%d-core", d*d), Width: d, Height: d, MCs: 4}
		row := ScaleRow{
			Nodes:   d * d,
			Circuit: map[string]float64{},
			Failed:  map[string]float64{},
			Speedup: map[string]float64{},
		}
		bv, _ := config.ByName("Baseline")
		bspec := chip.DefaultSpec(c, bv, w)
		bspec.MeasureOps = ops
		b, ok := cl.run(bspec)
		if !ok {
			continue
		}
		for _, name := range scaleVariants() {
			v, _ := config.ByName(name)
			spec := chip.DefaultSpec(c, v, w)
			spec.MeasureOps = ops
			r, ok := cl.run(spec)
			if !ok {
				continue
			}
			row.Circuit[name] = r.Circ.OutcomeFraction(core.OutcomeCircuit)
			att := float64(r.Circ.CircuitsBuilt + r.Circ.ReserveFailedConflict + r.Circ.ReserveFailedStorage)
			if att > 0 {
				row.Failed[name] = float64(r.Circ.ReserveFailedConflict+r.Circ.ReserveFailedStorage) / att
			}
			row.Speedup[name] = r.Speedup(b)
		}
		ss.Rows = append(ss.Rows, row)
	}
	ss.Failures = cl.take()
	return ss
}

// Format renders the scalability sweep.
func (ss *ScaleSweep) Format() string {
	tb := &table{header: []string{"cores"}}
	for _, v := range scaleVariants() {
		tb.header = append(tb.header, v+" circ", v+" fail", v+" speedup")
	}
	for _, r := range ss.Rows {
		row := []string{fmt.Sprintf("%d", r.Nodes)}
		for _, v := range scaleVariants() {
			row = append(row, pct(r.Circuit[v]), pct(r.Failed[v]),
				fmt.Sprintf("%+.2f%%", (r.Speedup[v]-1)*100))
		}
		tb.add(row...)
	}
	return "Scalability: circuit construction vs chip size\n" + tb.String() +
		"the paper (Section 5.2/5.5): bigger chips mean longer paths and more conflicts,\n" +
		"so fewer circuits build; timed reservations are 'very useful to guarantee the\n" +
		"scalability of the mechanism'\n" +
		FormatFailures(ss.Failures)
}

// Format renders the ablation.
func (ab *Ablation) Format() string {
	tb := &table{header: []string{ab.Param, "circuit", "storage-fail", "conflict-fail", "undone", "speedup", "area"}}
	for _, r := range ab.Rows {
		tb.add(fmt.Sprintf("%d", r.Value), pct(r.CircuitFrac), pct(r.StorageFailed),
			pct(r.ConflictFailed), pct(r.Undone),
			fmt.Sprintf("%+.2f%%", (r.Speedup-1)*100), pct2(r.AreaSavings))
	}
	return fmt.Sprintf("Ablation (%s, %s)\n%s", ab.Chip.Name, ab.Param, tb.String()) +
		FormatFailures(ab.Failures)
}
