package exp

import (
	"context"
	"strings"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
)

func tinyScale() Scale { return Scale{MeasureOps: 2000, Apps: 3, Seed: 1} }

func tinySweep(t *testing.T, names ...string) *Sweep {
	t.Helper()
	var vs []config.Variant
	for _, n := range names {
		v, ok := config.ByName(n)
		if !ok {
			t.Fatalf("unknown variant %s", n)
		}
		vs = append(vs, v)
	}
	return RunSweep(config.Chip16(), vs, tinyScale())
}

func TestScaleWorkloads(t *testing.T) {
	q := QuickScale()
	ws := q.Workloads()
	if len(ws) != q.Apps {
		t.Fatalf("quick scale produced %d workloads, want %d", len(ws), q.Apps)
	}
	if ws[len(ws)-1].Name != "mix" {
		t.Fatal("the mix must always be included")
	}
	full := FullScale().Workloads()
	if len(full) != 22 {
		t.Fatalf("full scale has %d workloads, want 22", len(full))
	}
}

func TestSweepRunsEveryCell(t *testing.T) {
	s := tinySweep(t, "Baseline", "Complete_NoAck")
	for _, v := range s.Variants {
		for _, app := range s.AppNames() {
			if s.Res[v.Name][app] == nil {
				t.Fatalf("missing run %s/%s", v.Name, app)
			}
		}
	}
}

func TestTable1Shape(t *testing.T) {
	s := tinySweep(t, "Baseline")
	t1, err := Table1From(s)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Total == 0 {
		t.Fatal("no traffic")
	}
	if t1.ReplyFrac < 0.45 || t1.ReplyFrac > 0.75 {
		t.Fatalf("reply fraction %.3f implausible", t1.ReplyFrac)
	}
	if t1.EligibleFrac < 0.3 || t1.EligibleFrac > 0.8 {
		t.Fatalf("eligible-reply fraction %.3f implausible", t1.EligibleFrac)
	}
	var sum float64
	for _, v := range t1.ByType {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("type shares sum to %.3f", sum)
	}
	if !strings.Contains(t1.Format(), "L1_DATA_ACK") {
		t.Fatal("format misses message rows")
	}
}

func TestTable5Shape(t *testing.T) {
	s := tinySweep(t, "Complete_NoAck")
	t5 := Table5From(s, "Complete_NoAck")
	var sum float64
	for _, v := range t5.Ordinals {
		sum += v
	}
	sum += t5.Failed
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("ordinal shares sum to %.3f", sum)
	}
	if t5.Ordinals[0] < t5.Ordinals[1] {
		t.Fatal("first-circuit reservations should dominate (Table 5)")
	}
	if t5.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestTable6Shape(t *testing.T) {
	t6 := Table6Compute()
	if len(t6.Rows) != 3 {
		t.Fatalf("%d rows", len(t6.Rows))
	}
	byName := map[string]Table6Row{}
	for _, r := range t6.Rows {
		byName[r.Version] = r
	}
	if byName["Fragmented"].Savings16 >= 0 {
		t.Fatal("fragmented must increase area")
	}
	if !(byName["Complete"].Savings16 > byName["Complete Timed"].Savings16) {
		t.Fatal("timed circuits must save less area than plain complete")
	}
	if !strings.Contains(t6.Format(), "paper") {
		t.Fatal("format misses the paper reference")
	}
}

func TestFig6Fractions(t *testing.T) {
	s := tinySweep(t, "Baseline", "Complete_NoAck", "Timed_NoAck")
	f := Fig6From(s)
	if len(f.Rows) != 2 {
		t.Fatalf("%d rows (baseline excluded)", len(f.Rows))
	}
	for _, r := range f.Rows {
		total := r.Circuit + r.Failed + r.Undone + r.Scrounger + r.NotEligible + r.Eliminated
		if total < 0.98 || total > 1.02 {
			t.Fatalf("%s: outcome fractions sum to %.3f", r.Variant, total)
		}
	}
	// Basic timed circuits are undone more often than untimed complete.
	var comp, timed Fig6Row
	for _, r := range f.Rows {
		switch r.Variant {
		case "Complete_NoAck":
			comp = r
		case "Timed_NoAck":
			timed = r
		}
	}
	if timed.Undone <= comp.Undone {
		t.Fatalf("timed undone %.3f should exceed complete undone %.3f (Section 5.2)",
			timed.Undone, comp.Undone)
	}
}

func TestFig7LatencyDrop(t *testing.T) {
	s := tinySweep(t, "Baseline", "Complete_NoAck")
	f := Fig7From(s)
	var base, rc Fig7Row
	for _, r := range f.Rows {
		if r.Variant == "Baseline" {
			base = r
		} else {
			rc = r
		}
	}
	if rc.CircRepNet >= base.CircRepNet {
		t.Fatalf("circuit replies not faster: %.1f vs %.1f", rc.CircRepNet, base.CircRepNet)
	}
	if rc.OtherRepNet >= base.OtherRepNet {
		t.Fatalf("NoAck should collapse other-reply latency: %.1f vs %.1f",
			rc.OtherRepNet, base.OtherRepNet)
	}
}

func TestFig8And9Bands(t *testing.T) {
	s := tinySweep(t, "Baseline", "Fragmented", "Complete_NoAck")
	f8, err := Fig8From(s)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9From(s)
	if err != nil {
		t.Fatal(err)
	}
	get := func(rows []RatioRow, name string) RatioRow {
		for _, r := range rows {
			if r.Variant == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return RatioRow{}
	}
	if e := get(f8.Rows, "Complete_NoAck").Mean; e >= 1.0 || e < 0.6 {
		t.Fatalf("Complete_NoAck energy ratio %.3f out of band", e)
	}
	if e := get(f8.Rows, "Fragmented").Mean; e <= 0.95 {
		t.Fatalf("fragmented energy ratio %.3f should not show big savings", e)
	}
	if sp := get(f9.Rows, "Complete_NoAck").Mean; sp < 1.0 || sp > 1.25 {
		t.Fatalf("Complete_NoAck speedup %.3f out of band", sp)
	}
}

func TestFig10PerApp(t *testing.T) {
	s := tinySweep(t, "Baseline", "SlackDelay_1_NoAck")
	f, err := Fig10From(s, "SlackDelay_1_NoAck")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Apps) != len(s.AppNames()) {
		t.Fatalf("%d apps in fig10, want %d", len(f.Apps), len(s.AppNames()))
	}
	for i, sp := range f.Speedup {
		if sp < 0.8 || sp > 1.4 {
			t.Fatalf("%s speedup %.3f implausible", f.Apps[i], sp)
		}
	}
	if !strings.Contains(f.Format(), f.Apps[0]) {
		t.Fatal("format misses app rows")
	}
}

func TestSweepDeterminism(t *testing.T) {
	a := tinySweep(t, "Baseline")
	b := tinySweep(t, "Baseline")
	for _, app := range a.AppNames() {
		if a.Res["Baseline"][app].Cycles != b.Res["Baseline"][app].Cycles {
			t.Fatalf("sweep not deterministic for %s", app)
		}
	}
}

func TestMarkdownReport(t *testing.T) {
	s := tinySweep(t, "Baseline", "Complete_NoAck", "SlackDelay_1_NoAck")
	md := Markdown(s, nil)
	for _, want := range []string{"# Reproduction results", "Table 6", "Figure 6", "Figure 7", "Complete_NoAck"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown misses %q", want)
		}
	}
	// Nil sweeps are tolerated.
	if md2 := Markdown(nil, nil); !strings.Contains(md2, "Table 6") {
		t.Error("area-only report broken")
	}
}

// ---------------------------------------------------------------------------
// Fault-tolerant sweeps: poisoned runs are contained, reported, retried.
// ---------------------------------------------------------------------------

func TestPoisonedSweepCompletesWithPartialResults(t *testing.T) {
	vs := []config.Variant{}
	for _, n := range []string{"Baseline", "Complete_NoAck"} {
		v, _ := config.ByName(n)
		vs = append(vs, v)
	}
	pol := DefaultPolicy()
	// Poison exactly one cell: Complete_NoAck on the first app dies from a
	// flipped built bit; everything else must still produce results.
	apps := tinyScale().Workloads()
	poisoned := apps[0].Name
	pol.FaultFor = func(variant, workload string) *fault.Plan {
		if variant == "Complete_NoAck" && workload == poisoned {
			return &fault.Plan{Class: fault.FlipBuiltBit}
		}
		return nil
	}
	s := RunSweepCtx(context.Background(), config.Chip16(), vs, tinyScale(), pol)

	if len(s.Failures) != 1 {
		t.Fatalf("%d failures recorded, want exactly 1:\n%s", len(s.Failures), s.FailureSummary())
	}
	f := s.Failures[0]
	if f.Variant != "Complete_NoAck" || f.Workload != poisoned {
		t.Fatalf("failure names wrong cell: %s/%s", f.Variant, f.Workload)
	}
	if f.Err == nil || f.Err.Phase == "" || f.Err.Cycle == 0 {
		t.Fatalf("failure lacks phase/cycle: %+v", f.Err)
	}
	if f.Err.Diag == "" {
		t.Fatal("failure lacks the diagnostic dump")
	}
	// The injected plan is spec-deterministic, so the alternate-seed retry
	// must reproduce it and be classified as a deterministic bug.
	if !f.Retried || !f.Deterministic() {
		t.Fatalf("deterministic fault not classified as such: %s", f.String())
	}
	// Every other cell completed.
	for _, v := range s.Variants {
		for _, app := range s.AppNames() {
			if v.Name == "Complete_NoAck" && app == poisoned {
				if s.Res[v.Name][app] != nil {
					t.Fatal("poisoned cell leaked a result into the sweep")
				}
				continue
			}
			if s.Res[v.Name][app] == nil {
				t.Fatalf("healthy cell %s/%s missing", v.Name, app)
			}
		}
	}
	if s.FailureSummary() == "" {
		t.Fatal("no failure summary rendered")
	}
	// And the report generators survive the hole.
	if _, err := Fig9From(s); err != nil {
		t.Fatalf("Fig9 unavailable despite baseline present: %v", err)
	}
	md := Markdown(s, nil)
	if !strings.Contains(md, "Run failures") {
		t.Fatal("markdown report misses the failure section")
	}
}

func TestBaselineMissingIsAnError(t *testing.T) {
	s := tinySweep(t, "Complete_NoAck")
	if _, err := s.Baseline(); err == nil {
		t.Fatal("missing baseline not reported")
	}
	if _, err := Table1From(s); err == nil {
		t.Fatal("Table1From should fail without a baseline")
	}
	if _, err := Fig8From(s); err == nil {
		t.Fatal("Fig8From should fail without a baseline")
	}
	if _, err := Fig10From(s, "Complete_NoAck"); err == nil {
		t.Fatal("Fig10From should fail without a baseline")
	}
	if _, err := Fig10From(tinySweep(t, "Baseline"), "NoSuchVariant"); err == nil {
		t.Fatal("Fig10From should fail for an unknown variant")
	}
	// The markdown report degrades instead of panicking.
	if md := Markdown(nil, s); !strings.Contains(md, "unavailable") {
		t.Fatal("markdown report should note unavailable sections")
	}
}

func TestFailFastStopsScheduling(t *testing.T) {
	vs := []config.Variant{}
	for _, n := range []string{"Complete_NoAck", "Baseline"} {
		v, _ := config.ByName(n)
		vs = append(vs, v)
	}
	pol := Policy{FailFast: true} // no retry: first failure halts the sweep
	pol.FaultFor = func(variant, _ string) *fault.Plan {
		if variant == "Complete_NoAck" {
			return &fault.Plan{Class: fault.FlipBuiltBit}
		}
		return nil
	}
	scale := tinyScale()
	scale.Workers = 1 // serialize so the halt point is deterministic
	s := RunSweepCtx(context.Background(), config.Chip16(), vs, scale, pol)
	if len(s.Failures) == 0 {
		t.Fatal("no failure recorded")
	}
	ran := 0
	for _, byApp := range s.Res {
		ran += len(byApp)
	}
	total := len(vs) * len(s.Apps)
	if ran >= total-1 {
		t.Fatalf("fail-fast ran %d of %d cells", ran, total)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := RunSweepCtx(ctx, config.Chip16(), []config.Variant{}, tinyScale(), DefaultPolicy())
	if len(s.Res) != 0 {
		t.Fatal("cancelled sweep still has variant maps to fill")
	}
	v, _ := config.ByName("Baseline")
	s = RunSweepCtx(ctx, config.Chip16(), []config.Variant{v}, tinyScale(), DefaultPolicy())
	if n := len(s.Res["Baseline"]); n != 0 {
		t.Fatalf("cancelled sweep completed %d runs", n)
	}
}
