package exp

import (
	"fmt"
	"sync"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/stats"
	"reactivenoc/internal/workload"
)

// ---------------------------------------------------------------------------
// Tail latency: circuits don't just move the mean, they cut the tail.
// ---------------------------------------------------------------------------

// Tail reports data-reply network-latency percentiles per variant.
type Tail struct {
	Chip     config.Chip
	Rows     []TailRow
	Failures []FailureReport
}

// TailRow is one variant's distribution summary (cycles).
type TailRow struct {
	Variant       string
	Mean          float64
	P50, P95, P99 int64
}

// TailRun measures the key variants on one workload.
func TailRun(c config.Chip, ops int64, pol Policy) *Tail {
	t := &Tail{Chip: c}
	cl := newCollector(nil, pol)
	w := workload.Micro()
	for _, v := range config.KeyVariants() {
		if cl.halted() {
			break
		}
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = ops
		r, ok := cl.run(spec)
		if !ok {
			continue
		}
		t.Rows = append(t.Rows, TailRow{
			Variant: v.Name,
			Mean:    r.Lat.CircuitReplies.Network.Mean(),
			P50:     r.Lat.ReplyPercentile(0.50),
			P95:     r.Lat.ReplyPercentile(0.95),
			P99:     r.Lat.ReplyPercentile(0.99),
		})
	}
	t.Failures = cl.take()
	return t
}

// Format renders the percentile table.
func (t *Tail) Format() string {
	tb := &table{header: []string{"variant", "mean", "p50", "p95", "p99"}}
	for _, r := range t.Rows {
		tb.add(r.Variant, fmt.Sprintf("%.1f", r.Mean),
			fmt.Sprintf("%d", r.P50), fmt.Sprintf("%d", r.P95), fmt.Sprintf("%d", r.P99))
	}
	return fmt.Sprintf("Data-reply network latency distribution (%s, cycles)\n%s", t.Chip.Name, tb.String()) +
		FormatFailures(t.Failures)
}

// ---------------------------------------------------------------------------
// Confidence intervals across seeds (the paper quotes 95% margins under 2%
// at 64 cores and under 5% at 16 cores).
// ---------------------------------------------------------------------------

// CI reports speedup means with 95% confidence half-widths, measured
// across (workload x seed) replicas.
type CI struct {
	Chip     config.Chip
	Seeds    int
	Rows     []CIRow
	Failures []FailureReport
}

// CIRow is one variant's aggregate.
type CIRow struct {
	Variant string
	Mean    float64
	CI95    float64 // half-width, absolute speedup units
}

// CIRun measures speedups across seeds for the given variants. Baselines
// are shared per (workload, seed) replica, and the independent runs are
// spread across the machine's cores.
func CIRun(c config.Chip, variants []string, seeds int, ops int64, pol Policy) *CI {
	ci := &CI{Chip: c, Seeds: seeds}
	cl := newCollector(nil, pol)
	apps := []workload.Profile{workload.Micro(), workload.Multiprogrammed()}

	type key struct {
		app  string
		seed uint64
	}
	run := func(v config.Variant, w workload.Profile, seed uint64) (*chip.Results, bool) {
		spec := chip.DefaultSpec(c, v, w)
		spec.MeasureOps = ops
		spec.Seed = seed
		return cl.run(spec)
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, WorkersOr(0))
	go1 := func(fn func()) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			fn()
			<-sem
		}()
	}

	baselines := map[key]*chip.Results{}
	bv, _ := config.ByName("Baseline")
	for _, w := range apps {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			w, seed := w, seed
			go1(func() {
				if r, ok := run(bv, w, seed); ok {
					mu.Lock()
					baselines[key{w.Name, seed}] = r
					mu.Unlock()
				}
			})
		}
	}
	wg.Wait()

	samples := make([]stats.Sample, len(variants))
	for i, name := range variants {
		v, ok := config.ByName(name)
		if !ok {
			panic("exp: unknown variant " + name)
		}
		for _, w := range apps {
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				i, v, w, seed := i, v, w, seed
				go1(func() {
					r, ok := run(v, w, seed)
					if !ok {
						return
					}
					mu.Lock()
					if b := baselines[key{w.Name, seed}]; b != nil {
						samples[i].Add(r.Speedup(b))
					}
					mu.Unlock()
				})
			}
		}
	}
	wg.Wait()

	for i, name := range variants {
		ci.Rows = append(ci.Rows, CIRow{Variant: name, Mean: samples[i].Mean(), CI95: samples[i].CI95()})
	}
	ci.Failures = cl.take()
	return ci
}

// Format renders the confidence table.
func (ci *CI) Format() string {
	tb := &table{header: []string{"variant", "speedup", "95% CI"}}
	for _, r := range ci.Rows {
		tb.add(r.Variant,
			fmt.Sprintf("%+.2f%%", (r.Mean-1)*100),
			fmt.Sprintf("±%.2f%%", r.CI95*100))
	}
	return fmt.Sprintf("Speedup confidence (%s, %d seeds x 2 workloads)\n%s", ci.Chip.Name, ci.Seeds, tb.String()) +
		"paper: margins of error at 95% confidence below 2% (64 cores) and 5% (16 cores)\n" +
		FormatFailures(ci.Failures)
}
