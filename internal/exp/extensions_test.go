package exp

import (
	"strings"
	"testing"

	"reactivenoc/internal/config"
)

func TestLoadSweepShape(t *testing.T) {
	ls := LoadSweepRun(config.Chip16(), []float64{1, 8}, 2500, DefaultPolicy())
	if len(ls.Rows) != 2 {
		t.Fatalf("%d rows", len(ls.Rows))
	}
	light, heavy := ls.Rows[0], ls.Rows[1]
	if heavy.InjRate <= light.InjRate {
		t.Fatalf("offered load did not grow: %.4f -> %.4f", light.InjRate, heavy.InjRate)
	}
	// The paper's claim: heavier load means more reservation failures for
	// untimed complete circuits, and timed circuits fail less than
	// untimed at the same load.
	if heavy.Failed["Complete_NoAck"] <= light.Failed["Complete_NoAck"] {
		t.Fatalf("untimed failures did not grow with load: %.3f -> %.3f",
			light.Failed["Complete_NoAck"], heavy.Failed["Complete_NoAck"])
	}
	if heavy.Failed["SlackDelay_1_NoAck"] >= heavy.Failed["Complete_NoAck"] {
		t.Fatalf("timed circuits should fail less under load: timed %.3f vs untimed %.3f",
			heavy.Failed["SlackDelay_1_NoAck"], heavy.Failed["Complete_NoAck"])
	}
	if !strings.Contains(ls.Format(), "flits/node") {
		t.Fatal("format misses the load column")
	}
}

func TestAblateCircuitsPerPortShape(t *testing.T) {
	ab := AblateCircuitsPerPort(config.Chip16(), []int{1, 5}, 2500, DefaultPolicy())
	if len(ab.Rows) != 2 {
		t.Fatalf("%d rows", len(ab.Rows))
	}
	one, five := ab.Rows[0], ab.Rows[1]
	// One entry per port starves on storage; five (the paper's choice)
	// essentially eliminates storage failures, at an area cost.
	if one.StorageFailed <= five.StorageFailed {
		t.Fatalf("storage failures should drop with more entries: %.3f vs %.3f",
			one.StorageFailed, five.StorageFailed)
	}
	if one.AreaSavings <= five.AreaSavings {
		t.Fatalf("fewer entries should save more area: %.4f vs %.4f",
			one.AreaSavings, five.AreaSavings)
	}
	if !strings.Contains(ab.Format(), "circuits/port") {
		t.Fatal("format misses the parameter name")
	}
}

func TestAblateSlackShape(t *testing.T) {
	ab := AblateSlack(config.Chip16(), []int{0, 1, 8}, 2500, DefaultPolicy())
	if len(ab.Rows) != 3 {
		t.Fatalf("%d rows", len(ab.Rows))
	}
	zero, one, eight := ab.Rows[0], ab.Rows[1], ab.Rows[2]
	// The paper's trade-off: zero slack loses circuits to jitter (more
	// undone); too much slack occupies ports longer (more conflicts).
	if zero.Undone <= one.Undone {
		t.Fatalf("zero slack should miss more windows: %.3f vs %.3f", zero.Undone, one.Undone)
	}
	if eight.ConflictFailed <= one.ConflictFailed {
		t.Fatalf("large slack should conflict more: %.3f vs %.3f",
			eight.ConflictFailed, one.ConflictFailed)
	}
}

func TestScaleSweepShape(t *testing.T) {
	ss := ScaleSweepRun([]int{4, 8}, 2500, DefaultPolicy())
	small, big := ss.Rows[0], ss.Rows[1]
	if small.Nodes != 16 || big.Nodes != 64 {
		t.Fatalf("sizes %d/%d", small.Nodes, big.Nodes)
	}
	// Bigger chips build fewer circuits (Section 5.2).
	if big.Circuit["Complete_NoAck"] >= small.Circuit["Complete_NoAck"] {
		t.Fatalf("circuit share should shrink with chip size: %.3f -> %.3f",
			small.Circuit["Complete_NoAck"], big.Circuit["Complete_NoAck"])
	}
	// Timed circuits degrade more gently than untimed at 64 cores.
	if big.Failed["SlackDelay_1_NoAck"] >= big.Failed["Complete_NoAck"] {
		t.Fatal("timed circuits should fail less at scale")
	}
	if !strings.Contains(ss.Format(), "Scalability") {
		t.Fatal("format header missing")
	}
}

func TestTailRun(t *testing.T) {
	tl := TailRun(config.Chip16(), 2500, DefaultPolicy())
	if len(tl.Rows) == 0 {
		t.Fatal("no rows")
	}
	var base, circ TailRow
	for _, r := range tl.Rows {
		switch r.Variant {
		case "Baseline":
			base = r
		case "Complete_NoAck":
			circ = r
		}
		if !(r.P50 <= r.P95 && r.P95 <= r.P99) {
			t.Fatalf("%s: percentiles not monotonic: %d %d %d", r.Variant, r.P50, r.P95, r.P99)
		}
	}
	if circ.P95 >= base.P95 {
		t.Fatalf("circuits should cut the tail: p95 %d vs baseline %d", circ.P95, base.P95)
	}
	if !strings.Contains(tl.Format(), "p99") {
		t.Fatal("format misses percentiles")
	}
}

func TestCIRun(t *testing.T) {
	ci := CIRun(config.Chip16(), []string{"Complete_NoAck"}, 2, 2000, DefaultPolicy())
	if len(ci.Rows) != 1 {
		t.Fatalf("%d rows", len(ci.Rows))
	}
	r := ci.Rows[0]
	if r.Mean <= 1.0 || r.Mean > 1.2 {
		t.Fatalf("speedup %.4f out of band", r.Mean)
	}
	if r.CI95 < 0 || r.CI95 > 0.06 {
		t.Fatalf("CI %.4f outside the paper's consistency claim", r.CI95)
	}
	if !strings.Contains(ci.Format(), "95% CI") {
		t.Fatal("format misses the CI column")
	}
}

func TestCompareRun(t *testing.T) {
	cmp := CompareRun(config.Chip16(), 2000, DefaultPolicy())
	if len(cmp.Rows) != 5 {
		t.Fatalf("%d rows", len(cmp.Rows))
	}
	byName := map[string]CompareRow{}
	for _, r := range cmp.Rows {
		byName[r.Name] = r
	}
	// The paper's positioning: probe setup cannot beat the baseline when
	// the L2 answers fast; request-time reservation can.
	if byName["Probe_DejaVu"].Speedup >= byName["Complete_NoAck"].Speedup {
		t.Fatalf("probe setup (%.4f) should lose to request-time reservation (%.4f)",
			byName["Probe_DejaVu"].Speedup, byName["Complete_NoAck"].Speedup)
	}
	if byName["Probe_DejaVu"].Speedup > 1.02 {
		t.Fatalf("probe setup should not meaningfully beat the baseline: %.4f", byName["Probe_DejaVu"].Speedup)
	}
	if byName["Speculative"].AreaSavings != 0 {
		t.Fatal("the speculative comparator keeps every buffer")
	}
}

func TestScaleSweepRejectsHugeChips(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("chips beyond the sharer vector must be rejected")
		}
	}()
	ScaleSweepRun([]int{9}, 100, DefaultPolicy())
}
