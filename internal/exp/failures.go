package exp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/fault"
)

// Policy controls how an experiment responds to individual run failures.
// The zero value fails fast with no retries; DefaultPolicy is what the
// production sweeps want.
type Policy struct {
	// FailFast stops scheduling new runs after the first failure; already
	// started runs still finish and their results are kept.
	FailFast bool
	// Retry re-runs a failed spec once with an alternate seed, to
	// distinguish deterministic bugs from seed-sensitive ones. A retry
	// that succeeds contributes its results in place of the failed run.
	Retry bool
	// Timeout is the per-run wall-clock cap (0 = none).
	Timeout time.Duration
	// FaultFor, when non-nil, returns the fault plan to arm for a
	// (variant, workload) run — the chaos tests' poisoning seam.
	FaultFor func(variant, workload string) *fault.Plan
	// Run, when non-nil, replaces chip.RunCtx as the executor of
	// individual specs — the seam `rcsweep -remote` uses to submit sweep
	// cells to a running rcserved instead of simulating locally. Retry,
	// FailFast and Timeout semantics apply unchanged around it.
	Run func(ctx context.Context, spec chip.Spec) (*chip.Results, error)
	// Verify arms the online invariant oracles (chip.Spec.Verify) on every
	// run of the experiment — `rcsweep -verify` for paranoid sweeps.
	Verify bool
}

// DefaultPolicy keeps going past failures and retries each once.
func DefaultPolicy() Policy { return Policy{Retry: true} }

// retrySeed derives the alternate seed of a retried run.
func retrySeed(seed uint64) uint64 { return seed ^ 0x9E3779B97F4A7C15 }

// FailureReport records one failed run of an experiment: the spec that
// died, the structured error, and the outcome of the retry.
type FailureReport struct {
	Variant  string
	Workload string
	Seed     uint64
	Err      *chip.RunError
	// Retried reports whether the spec was re-run under RetrySeed. A nil
	// RetryErr then means the retry succeeded (the failure is
	// seed-sensitive) and its results stand in for the failed run.
	Retried   bool
	RetrySeed uint64
	RetryErr  *chip.RunError
}

// Deterministic reports whether the failure reproduced under a different
// seed — the signature of a genuine bug rather than a spec-sensitive one.
func (f *FailureReport) Deterministic() bool { return f.Retried && f.RetryErr != nil }

// String renders the report's summary line.
func (f *FailureReport) String() string {
	s := f.Err.Error()
	switch {
	case f.Deterministic():
		s += fmt.Sprintf(" [reproduced with seed %d: deterministic]", f.RetrySeed)
	case f.Retried:
		s += fmt.Sprintf(" [retry with seed %d succeeded: seed-sensitive]", f.RetrySeed)
	}
	return s
}

// FormatFailures renders a failure summary: a table of the failing specs
// plus each run's diagnostics. It returns "" when there are no failures.
func FormatFailures(fs []FailureReport) string {
	if len(fs) == 0 {
		return ""
	}
	tb := &table{header: []string{"variant", "workload", "seed", "phase", "cycle", "kind", "retry"}}
	for _, f := range fs {
		kind := "error"
		if f.Err.Panicked {
			kind = "panic"
		}
		retry := "-"
		switch {
		case f.Deterministic():
			retry = "reproduced"
		case f.Retried:
			retry = "recovered"
		}
		tb.add(f.Variant, f.Workload, fmt.Sprintf("%d", f.Seed), f.Err.Phase,
			fmt.Sprintf("%d", f.Err.Cycle), kind, retry)
	}
	out := fmt.Sprintf("%d failed runs\n%s", len(fs), tb.String())
	for _, f := range fs {
		out += "\n" + f.String() + "\n"
	}
	return out
}

// collector funnels every simulation run of an experiment through the
// error-aware path: a failure becomes a FailureReport (optionally retried
// under an alternate seed), fail-fast latches further scheduling off, and
// the experiment completes with partial results.
type collector struct {
	ctx context.Context
	pol Policy

	mu       sync.Mutex
	failures []FailureReport
	stopped  bool
}

func newCollector(ctx context.Context, pol Policy) *collector {
	if ctx == nil {
		ctx = context.Background()
	}
	return &collector{ctx: ctx, pol: pol}
}

// halted reports whether fail-fast or cancellation stopped the experiment.
func (cl *collector) halted() bool {
	if cl.ctx.Err() != nil {
		return true
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.stopped
}

// asRunError normalizes err to a *RunError carrying the spec fingerprint.
func asRunError(err error, spec chip.Spec) *chip.RunError {
	if re := chip.AsRunError(err); re != nil {
		return re
	}
	return &chip.RunError{
		Phase: "setup", Chip: spec.Chip.Name, Variant: spec.Variant.Name,
		Workload: spec.Workload.Name, Seed: spec.Seed, Msg: err.Error(),
	}
}

// RunOne executes one spec under the policy: the policy's timeout and
// fault plan are applied, a failure becomes a *FailureReport, and Retry
// re-runs the spec once under the alternate seed. res is non-nil whenever
// a usable result exists (from the original run or a successful retry);
// rep is non-nil whenever the original run failed. This is the same path
// every sweep worker takes — exported so the simulation service's worker
// pool shares retry semantics with the CLI harness instead of inventing
// its own.
func (p Policy) RunOne(ctx context.Context, spec chip.Spec) (res *chip.Results, rep *FailureReport) {
	if ctx == nil {
		ctx = context.Background()
	}
	exec := p.Run
	if exec == nil {
		exec = chip.RunCtx
	}
	if p.Timeout > 0 {
		spec.Timeout = p.Timeout
	}
	if p.FaultFor != nil {
		spec.Fault = p.FaultFor(spec.Variant.Name, spec.Workload.Name)
	}
	if p.Verify {
		spec.Verify = true
	}
	r, err := exec(ctx, spec)
	if err == nil {
		return r, nil
	}
	rep = &FailureReport{
		Variant: spec.Variant.Name, Workload: spec.Workload.Name,
		Seed: spec.Seed, Err: asRunError(err, spec),
	}
	if p.Retry && ctx.Err() == nil {
		retry := spec
		retry.Seed = retrySeed(spec.Seed)
		rep.Retried, rep.RetrySeed = true, retry.Seed
		if r2, err2 := exec(ctx, retry); err2 == nil {
			res = r2
		} else {
			rep.RetryErr = asRunError(err2, retry)
		}
	}
	return res, rep
}

// run executes spec under the policy. ok=false means no usable result; the
// failure (if any) has been recorded.
func (cl *collector) run(spec chip.Spec) (*chip.Results, bool) {
	if cl.halted() {
		return nil, false
	}
	res, rep := cl.pol.RunOne(cl.ctx, spec)
	if rep == nil {
		return res, true
	}
	cl.mu.Lock()
	cl.failures = append(cl.failures, *rep)
	if cl.pol.FailFast {
		cl.stopped = true
	}
	cl.mu.Unlock()
	return res, res != nil
}

// take returns the accumulated failure reports.
func (cl *collector) take() []FailureReport {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.failures
}
