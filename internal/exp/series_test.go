package exp

import (
	"strings"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

func TestSeriesFromWindowsSumToRunTotals(t *testing.T) {
	v, ok := config.ByName("Complete_NoAck")
	if !ok {
		t.Fatal("variant missing")
	}
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 600
	spec.MeasureOps = 2400
	spec.SampleEvery = 512
	r := chip.MustRun(spec)

	s, err := SeriesFrom(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Windows) < 2 {
		t.Fatalf("only %d windows for a multi-thousand-cycle run", len(s.Windows))
	}

	// Window counter deltas must partition the measured phase exactly.
	var flits, built int64
	for i, w := range s.Windows {
		flits += int64(w.InjRate * float64(w.Cycles) * float64(len(r.Cores)))
		built += w.CircuitsBuilt
		if i > 0 && w.End <= s.Windows[i-1].End {
			t.Fatalf("window ends not increasing: %d after %d", w.End, s.Windows[i-1].End)
		}
		if i < len(s.Windows)-1 && w.Cycles != spec.SampleEvery {
			t.Fatalf("interior window %d spans %d cycles, want %d", i, w.Cycles, spec.SampleEvery)
		}
	}
	if r.Circ == nil || built != r.Circ.CircuitsBuilt {
		t.Fatalf("windowed circuits built %d, run total %+v", built, r.Circ)
	}
	// Flit rates are rounded through float64 per window; allow one flit of
	// slack per window.
	if d := flits - r.Events.LinkFlits; d > int64(len(s.Windows)) || d < -int64(len(s.Windows)) {
		t.Fatalf("windowed flits %d vs run total %d", flits, r.Events.LinkFlits)
	}

	md := s.Markdown()
	if !strings.Contains(md, "Complete_NoAck") || !strings.Contains(md, "| window end |") {
		t.Fatalf("markdown rendering broken:\n%s", md)
	}
}

func TestSeriesFromRequiresSampling(t *testing.T) {
	if _, err := SeriesFrom(&chip.Results{}); err == nil {
		t.Fatal("want error for a run without Spec.SampleEvery")
	}
}
