package exp

import (
	"fmt"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/sim"
)

// ---------------------------------------------------------------------------
// Time series — per-window behaviour over the measured phase
// ---------------------------------------------------------------------------

// SeriesWindow is one sampling window of a run: counter deltas turned into
// rates, gauge levels carried as read.
type SeriesWindow struct {
	// End is the window's closing cycle, relative to the measured-phase
	// start; Cycles is the window length.
	End    sim.Cycle
	Cycles sim.Cycle

	// InjRate is flits per node per cycle within the window — the
	// network-load measure the paper quotes chip-wide.
	InjRate float64
	// RetireRate is retired operations per core per cycle (windowed IPC).
	RetireRate float64
	// OpenCircuits is the live-reservation level at the window's end;
	// CircuitsBuilt counts constructions within the window.
	OpenCircuits  int64
	CircuitsBuilt int64
}

// Series is the per-window time series of one run.
type Series struct {
	Chip, Variant, Workload string
	Windows                 []SeriesWindow
}

// SeriesFrom converts a run's raw snapshot windows (Spec.SampleEvery > 0)
// into rates. It returns an error when the run recorded no series.
func SeriesFrom(r *chip.Results) (*Series, error) {
	if len(r.Series) == 0 {
		return nil, fmt.Errorf("exp: run recorded no series (set Spec.SampleEvery)")
	}
	nodes := len(r.Cores)
	s := &Series{
		Chip:     r.Spec.Chip.Name,
		Variant:  r.Spec.Variant.Name,
		Workload: r.Spec.Workload.Name,
	}
	prevEnd := sim.Cycle(0)
	for _, w := range r.Series {
		cycles := w.At - prevEnd
		win := SeriesWindow{
			End:           w.At,
			Cycles:        cycles,
			OpenCircuits:  w.Value("circ/open"),
			CircuitsBuilt: w.Value("circ/built"),
		}
		if cycles > 0 && nodes > 0 {
			denom := float64(cycles) * float64(nodes)
			win.InjRate = float64(w.Value("noc/link_flits")) / denom
			win.RetireRate = float64(w.Value("core/retired")) / denom
		}
		s.Windows = append(s.Windows, win)
		prevEnd = w.At
	}
	return s, nil
}

// Markdown renders the series as a table, one row per window.
func (s *Series) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Time series — %s, %s, %s\n\n", s.Chip, s.Variant, s.Workload)
	b.WriteString("| window end | inj (flits/node/cyc) | IPC | circuits built | open |\n")
	b.WriteString("|---:|---:|---:|---:|---:|\n")
	for _, w := range s.Windows {
		fmt.Fprintf(&b, "| %d | %.4f | %.3f | %d | %d |\n",
			w.End, w.InjRate, w.RetireRate, w.CircuitsBuilt, w.OpenCircuits)
	}
	return b.String()
}
