// Package exp regenerates every table and figure of the paper's evaluation
// from simulation sweeps: message mixes (Table 1), circuit-reservation
// ordinals (Table 5), router area (Table 6), circuit-construction outcomes
// (Figure 6), message-latency anatomy (Figure 7), network energy
// (Figure 8) and system speedup (Figures 9 and 10).
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

// Scale selects the sweep effort.
type Scale struct {
	// MeasureOps per core for each run.
	MeasureOps int64
	// Apps caps the workload list (0 = all 21 parallel apps + mix).
	Apps int
	// Seed feeds the deterministic workload generators.
	Seed uint64
	// Workers caps the concurrent runs (0 = runtime.GOMAXPROCS(0)).
	Workers int
	// Profiles, when non-empty, replaces the evaluation's workload list
	// entirely (Apps is ignored): the seam the closed-loop tuner and
	// rcsweep -workloads use to sweep adversarial generators or trace
	// replays instead of the paper's apps.
	Profiles []workload.Profile
}

// WorkerCount resolves the sweep's concurrency: Workers when positive,
// otherwise the GOMAXPROCS fallback. Every parallel runner in this package
// (and the simulation service's worker pool) sizes itself through
// WorkersOr, so zero/negative requests can never spawn an empty pool.
func (s Scale) WorkerCount() int { return WorkersOr(s.Workers) }

// WorkersOr is the single place a requested worker count is validated:
// n when positive, runtime.GOMAXPROCS(0) for zero or negative requests.
func WorkersOr(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// QuickScale keeps benches and smoke runs fast.
func QuickScale() Scale { return Scale{MeasureOps: 4000, Apps: 6, Seed: 1} }

// FullScale runs the whole workload suite.
func FullScale() Scale { return Scale{MeasureOps: 12000, Apps: 0, Seed: 1} }

// Workloads returns the evaluation's workload list under the scale cap:
// the parallel applications plus the multiprogrammed mix.
func (s Scale) Workloads() []workload.Profile {
	if len(s.Profiles) > 0 {
		return s.Profiles
	}
	apps := workload.Parallel()
	if s.Apps > 0 && s.Apps-1 < len(apps) {
		apps = apps[:s.Apps-1]
	}
	return append(apps, workload.Multiprogrammed())
}

// Sweep holds the results of (variant x workload) runs on one chip size.
type Sweep struct {
	Chip     config.Chip
	Variants []config.Variant
	Apps     []workload.Profile
	Scale    Scale

	// Res[variant][app] is that run's measurements; failed runs leave
	// their cell absent and are listed in Failures instead.
	Res map[string]map[string]*chip.Results

	// Failures records every failed (variant, workload) run: the sweep
	// completes with partial results instead of crashing.
	Failures []FailureReport
}

// RunSweep executes every (variant, workload) pair, in parallel across the
// machine's cores; each run itself is deterministic. Failed runs are
// recorded, retried once under an alternate seed, and survived.
func RunSweep(c config.Chip, variants []config.Variant, scale Scale) *Sweep {
	return RunSweepCtx(context.Background(), c, variants, scale, DefaultPolicy())
}

// RunSweepCtx is RunSweep with cancellation and an explicit failure
// policy. Cancelling the context stops scheduling new runs; results
// gathered so far are returned.
func RunSweepCtx(ctx context.Context, c config.Chip, variants []config.Variant, scale Scale, pol Policy) *Sweep {
	apps := scale.Workloads()
	s := &Sweep{Chip: c, Variants: variants, Apps: apps, Scale: scale,
		Res: map[string]map[string]*chip.Results{}}
	for _, v := range variants {
		s.Res[v.Name] = map[string]*chip.Results{}
	}
	cl := newCollector(ctx, pol)

	type job struct {
		v config.Variant
		w workload.Profile
	}
	jobs := make(chan job)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < scale.WorkerCount(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := chip.DefaultSpec(c, j.v, j.w)
				spec.MeasureOps = scale.MeasureOps
				spec.Seed = scale.Seed
				if r, ok := cl.run(spec); ok {
					mu.Lock()
					s.Res[j.v.Name][j.w.Name] = r
					mu.Unlock()
				}
			}
		}()
	}
producer:
	for _, v := range variants {
		for _, w := range apps {
			if cl.halted() {
				break producer
			}
			jobs <- job{v: v, w: w}
		}
	}
	close(jobs)
	wg.Wait()
	s.Failures = cl.take()
	return s
}

// Baseline returns the baseline results per app; the error reports a sweep
// that ran without a Baseline variant.
func (s *Sweep) Baseline() (map[string]*chip.Results, error) {
	b, ok := s.Res["Baseline"]
	if !ok {
		return nil, fmt.Errorf("exp: sweep has no Baseline variant")
	}
	return b, nil
}

// FailureSummary renders the sweep's failure reports ("" when clean).
func (s *Sweep) FailureSummary() string { return FormatFailures(s.Failures) }

// AppNames returns the sweep's workload names in run order.
func (s *Sweep) AppNames() []string {
	out := make([]string, len(s.Apps))
	for i, a := range s.Apps {
		out[i] = a.Name
	}
	return out
}

// table is a tiny fixed-width text-table builder shared by the reports.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v*100) }
func pct2(v float64) string { return fmt.Sprintf("%+.2f%%", v*100) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
