package exp

import (
	"fmt"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/power"
	"reactivenoc/internal/stats"
)

// ---------------------------------------------------------------------------
// Table 1 — message mix
// ---------------------------------------------------------------------------

// Table1 aggregates the baseline message mix across a sweep's workloads:
// the population of the paper's Table 1 (percentage of messages that
// traverse the network, requests vs reply types).
type Table1 struct {
	Total        int64
	RequestFrac  float64
	ReplyFrac    float64
	ByType       map[string]float64
	EligibleFrac float64 // share of replies that can ride circuits
}

// Table1From computes the mix from a sweep's baseline runs. It fails when
// the sweep carries no baseline variant to aggregate.
func Table1From(s *Sweep) (*Table1, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	agg := coherence.MsgStats{}
	for _, r := range base {
		for t, n := range r.Msgs.Network {
			agg.Network[t] += n
		}
	}
	total, reqs := agg.Totals()
	t1 := &Table1{Total: total, ByType: map[string]float64{}}
	if total == 0 {
		return t1, nil
	}
	t1.RequestFrac = float64(reqs) / float64(total)
	t1.ReplyFrac = 1 - t1.RequestFrac
	var eligible, replies int64
	for t := coherence.MsgGetS; t < coherence.MsgType(len(agg.Network)); t++ {
		n := agg.Network[t]
		if n == 0 {
			continue
		}
		t1.ByType[t.String()] = float64(n) / float64(total)
		if t.IsReply() {
			replies += n
			if t.CircuitEligibleReply() {
				eligible += n
			}
		}
	}
	if replies > 0 {
		t1.EligibleFrac = float64(eligible) / float64(replies)
	}
	return t1, nil
}

// Format renders the table with the paper's reference values.
func (t *Table1) Format() string {
	tb := &table{header: []string{"class", "share", "paper (64-core)"}}
	tb.add("Requests", pct(t.RequestFrac), "47.0%")
	tb.add("Replies", pct(t.ReplyFrac), "53.0%")
	ref := map[string]string{
		"L2_Reply": "22.6%", "L1_DATA_ACK": "23.0%", "L2_WB_ACK": "4.7%",
		"L1_INV_ACK": "1.1%", "MEMORY_Data": "0.9% (with acks)", "L1_to_L1": "0.7%",
	}
	for _, name := range sortedKeys(t.ByType) {
		tb.add("  "+name, pct(t.ByType[name]), ref[name])
	}
	return fmt.Sprintf("Table 1: message mix (%d network messages)\n%s\nCircuit-eligible replies: %s (paper: 53.2%% of replies)\n",
		t.Total, tb.String(), pct(t.EligibleFrac))
}

// ---------------------------------------------------------------------------
// Table 5 — circuit reservation ordinals
// ---------------------------------------------------------------------------

// Table5 is the distribution of reservations over entry ordinals at the
// input ports, plus the failure share, for one variant.
type Table5 struct {
	Variant  string
	Ordinals []float64 // share of attempts that were the (i+1)-th circuit
	Failed   float64
}

// Table5From computes the distribution from the given variant's runs.
func Table5From(s *Sweep, variant string) *Table5 {
	res, ok := s.Res[variant]
	if !ok {
		panic("exp: variant missing from sweep: " + variant)
	}
	var ord [8]int64
	var failed int64
	for _, r := range res {
		if r.Circ == nil {
			continue
		}
		for i, n := range r.Circ.Ordinals {
			ord[i] += n
		}
		failed += r.Circ.ReserveFailedStorage + r.Circ.ReserveFailedConflict
	}
	var total int64 = failed
	for _, n := range ord {
		total += n
	}
	t5 := &Table5{Variant: variant, Ordinals: make([]float64, 5)}
	if total == 0 {
		return t5
	}
	for i := 0; i < 5; i++ {
		n := ord[i]
		if i == 4 { // fold deeper ordinals into the 5th bucket
			for j := 5; j < len(ord); j++ {
				n += ord[j]
			}
		}
		t5.Ordinals[i] = float64(n) / float64(total)
	}
	t5.Failed = float64(failed) / float64(total)
	return t5
}

// Format renders the table with the paper's reference row.
func (t *Table5) Format() string {
	tb := &table{header: []string{"", "1st", "2nd", "3rd", "4th", "5th", "failed"}}
	row := []string{t.Variant}
	for _, v := range t.Ordinals {
		row = append(row, pct(v))
	}
	row = append(row, pct(t.Failed))
	tb.add(row...)
	tb.add("paper", "48%", "24%", "7%", "6%", "6%", "9%")
	return "Table 5: circuit reservations by input-port ordinal\n" + tb.String()
}

// ---------------------------------------------------------------------------
// Table 6 — router area
// ---------------------------------------------------------------------------

// Table6 reports router-area savings per mechanism for both chip sizes.
type Table6 struct {
	Rows []Table6Row
}

// Table6Row is one mechanism's area delta (positive = smaller router).
type Table6Row struct {
	Version              string
	Savings16, Savings64 float64
}

// Table6Compute evaluates the analytical area model (no simulation).
func Table6Compute() *Table6 {
	rows := []struct {
		name    string
		variant string
	}{
		{"Fragmented", "Fragmented"},
		{"Complete", "Complete"},
		{"Complete Timed", "Slack_1_NoAck"},
	}
	t6 := &Table6{}
	for _, r := range rows {
		v, ok := config.ByName(r.variant)
		if !ok {
			panic("exp: unknown variant " + r.variant)
		}
		t6.Rows = append(t6.Rows, Table6Row{
			Version:   r.name,
			Savings16: power.AreaSavings(16, v.Opts),
			Savings64: power.AreaSavings(64, v.Opts),
		})
	}
	return t6
}

// Format renders the table with the paper's reference values.
func (t *Table6) Format() string {
	ref := map[string][2]string{
		"Fragmented":     {"-19.28%", "-18.96%"},
		"Complete":       {"+6.21%", "+5.77%"},
		"Complete Timed": {"+3.38%", "+1.09%"},
	}
	tb := &table{header: []string{"version", "16 cores", "64 cores", "paper 16", "paper 64"}}
	for _, r := range t.Rows {
		tb.add(r.Version, pct2(r.Savings16), pct2(r.Savings64), ref[r.Version][0], ref[r.Version][1])
	}
	return "Table 6: router area savings (positive = smaller router)\n" + tb.String()
}

// ---------------------------------------------------------------------------
// Figure 6 — construction and use of circuits
// ---------------------------------------------------------------------------

// Fig6 is the per-variant reply-outcome breakdown.
type Fig6 struct {
	Chip string
	Rows []Fig6Row
}

// Fig6Row is one variant's Figure-6 bar.
type Fig6Row struct {
	Variant     string
	Circuit     float64
	Failed      float64
	Undone      float64
	Scrounger   float64
	NotEligible float64
	Eliminated  float64
}

// Fig6From averages each variant's outcome fractions across workloads.
func Fig6From(s *Sweep) *Fig6 {
	f := &Fig6{Chip: s.Chip.Name}
	for _, v := range s.Variants {
		if v.Name == "Baseline" {
			continue
		}
		var row Fig6Row
		row.Variant = v.Name
		n := 0
		for _, r := range s.Res[v.Name] {
			if r.Circ == nil {
				continue
			}
			row.Circuit += r.Circ.OutcomeFraction(core.OutcomeCircuit)
			row.Failed += r.Circ.OutcomeFraction(core.OutcomeFailed)
			row.Undone += r.Circ.OutcomeFraction(core.OutcomeUndone)
			row.Scrounger += r.Circ.OutcomeFraction(core.OutcomeScrounger)
			row.NotEligible += r.Circ.OutcomeFraction(core.OutcomeNotEligible)
			row.Eliminated += r.Circ.OutcomeFraction(core.OutcomeEliminated)
			n++
		}
		if n > 0 {
			k := float64(n)
			row.Circuit /= k
			row.Failed /= k
			row.Undone /= k
			row.Scrounger /= k
			row.NotEligible /= k
			row.Eliminated /= k
		}
		f.Rows = append(f.Rows, row)
	}
	return f
}

// Format renders the breakdown.
func (f *Fig6) Format() string {
	tb := &table{header: []string{"variant", "circuit", "failed", "undone", "scrounger", "not-elig", "eliminated"}}
	for _, r := range f.Rows {
		tb.add(r.Variant, pct(r.Circuit), pct(r.Failed), pct(r.Undone),
			pct(r.Scrounger), pct(r.NotEligible), pct(r.Eliminated))
	}
	return fmt.Sprintf("Figure 6 (%s): reply outcomes per mechanism version\n%s", f.Chip, tb.String())
}

// ---------------------------------------------------------------------------
// Figure 7 — message latency anatomy
// ---------------------------------------------------------------------------

// Fig7 is the per-variant latency anatomy per message class.
type Fig7 struct {
	Chip string
	Rows []Fig7Row
}

// Fig7Row carries mean network and queueing latencies (cycles).
type Fig7Row struct {
	Variant                string
	ReqNet, ReqQ           float64
	CircRepNet, CircRepQ   float64
	OtherRepNet, OtherRepQ float64
}

// Fig7From averages latency means across workloads.
func Fig7From(s *Sweep) *Fig7 {
	f := &Fig7{Chip: s.Chip.Name}
	for _, v := range s.Variants {
		var row Fig7Row
		row.Variant = v.Name
		n := 0
		for _, r := range s.Res[v.Name] {
			row.ReqNet += r.Lat.Requests.Network.Mean()
			row.ReqQ += r.Lat.Requests.Queueing.Mean()
			row.CircRepNet += r.Lat.CircuitReplies.Network.Mean()
			row.CircRepQ += r.Lat.CircuitReplies.Queueing.Mean()
			row.OtherRepNet += r.Lat.OtherReplies.Network.Mean()
			row.OtherRepQ += r.Lat.OtherReplies.Queueing.Mean()
			n++
		}
		if n > 0 {
			k := float64(n)
			row.ReqNet /= k
			row.ReqQ /= k
			row.CircRepNet /= k
			row.CircRepQ /= k
			row.OtherRepNet /= k
			row.OtherRepQ /= k
		}
		f.Rows = append(f.Rows, row)
	}
	return f
}

// Format renders the latency table.
func (f *Fig7) Format() string {
	tb := &table{header: []string{"variant", "req net+q", "circuit-rep net+q", "other-rep net+q"}}
	for _, r := range f.Rows {
		tb.add(r.Variant,
			fmt.Sprintf("%.1f+%.1f", r.ReqNet, r.ReqQ),
			fmt.Sprintf("%.1f+%.1f", r.CircRepNet, r.CircRepQ),
			fmt.Sprintf("%.1f+%.1f", r.OtherRepNet, r.OtherRepQ))
	}
	return fmt.Sprintf("Figure 7 (%s): message latency, cycles (network + queueing)\n%s", f.Chip, tb.String())
}

// ---------------------------------------------------------------------------
// Figures 8 and 9 — normalized energy and speedup
// ---------------------------------------------------------------------------

// RatioRow is one variant's mean ratio vs baseline with its standard error
// across workloads (the paper's error bars).
type RatioRow struct {
	Variant string
	Mean    float64
	StdErr  float64
}

// Fig8 is normalized network energy per variant.
type Fig8 struct {
	Chip string
	Rows []RatioRow
}

// Fig8From computes per-app normalized energy, then averages.
func Fig8From(s *Sweep) (*Fig8, error) {
	rows, err := ratioRows(s, func(r, b *chip.Results) float64 {
		return r.Energy.Total() / b.Energy.Total()
	})
	if err != nil {
		return nil, err
	}
	return &Fig8{Chip: s.Chip.Name, Rows: rows}, nil
}

// Fig9 is speedup per variant.
type Fig9 struct {
	Chip string
	Rows []RatioRow
}

// Fig9From computes per-app speedups, then averages.
func Fig9From(s *Sweep) (*Fig9, error) {
	rows, err := ratioRows(s, func(r, b *chip.Results) float64 {
		return r.Speedup(b)
	})
	if err != nil {
		return nil, err
	}
	return &Fig9{Chip: s.Chip.Name, Rows: rows}, nil
}

// ratioRows folds per-app ratios for every non-baseline variant.
func ratioRows(s *Sweep, f func(r, b *chip.Results) float64) ([]RatioRow, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	var rows []RatioRow
	for _, v := range s.Variants {
		if v.Name == "Baseline" {
			continue
		}
		var sample stats.Sample
		for _, app := range s.AppNames() {
			r, ok := s.Res[v.Name][app]
			if !ok {
				continue
			}
			b, ok := base[app]
			if !ok {
				continue
			}
			sample.Add(f(r, b))
		}
		// A variant with no surviving (variant, baseline) pairs — every run
		// failed or the sweep halted early — has no ratio to report.
		if sample.N() == 0 {
			continue
		}
		rows = append(rows, RatioRow{Variant: v.Name, Mean: sample.Mean(), StdErr: sample.StdErr()})
	}
	// Preserve the sweep's variant order.
	ordered := make([]RatioRow, 0, len(rows))
	for _, v := range s.Variants {
		for _, r := range rows {
			if r.Variant == v.Name {
				ordered = append(ordered, r)
			}
		}
	}
	return ordered, nil
}

// Format renders normalized energy (lower is better).
func (f *Fig8) Format() string {
	tb := &table{header: []string{"variant", "energy vs baseline", "stderr"}}
	for _, r := range f.Rows {
		tb.add(r.Variant, fmt.Sprintf("%.3f", r.Mean), fmt.Sprintf("%.3f", r.StdErr))
	}
	return fmt.Sprintf("Figure 8 (%s): network energy normalized to baseline\n%s", f.Chip, tb.String()) +
		"paper: Complete_NoAck reaches 0.848 at 16 cores and 0.792 at 64 cores; Fragmented increases energy\n"
}

// Format renders speedups.
func (f *Fig9) Format() string {
	tb := &table{header: []string{"variant", "speedup", "stderr"}}
	for _, r := range f.Rows {
		tb.add(r.Variant, fmt.Sprintf("%+.2f%%", (r.Mean-1)*100), fmt.Sprintf("%.3f", r.StdErr))
	}
	return fmt.Sprintf("Figure 9 (%s): speedup over baseline\n%s", f.Chip, tb.String()) +
		"paper: Complete 3.8%/4.8%, SlackDelay_1 4.4%/6.0% (16/64 cores), ideal slightly above\n"
}

// ---------------------------------------------------------------------------
// Figure 10 — per-application speedup
// ---------------------------------------------------------------------------

// Fig10 is the per-application speedup of one variant.
type Fig10 struct {
	Chip    string
	Variant string
	Apps    []string
	Speedup []float64
}

// Fig10From extracts per-app speedups for the given variant.
func Fig10From(s *Sweep, variant string) (*Fig10, error) {
	base, err := s.Baseline()
	if err != nil {
		return nil, err
	}
	res, ok := s.Res[variant]
	if !ok {
		return nil, fmt.Errorf("exp: variant missing from sweep: %s", variant)
	}
	f := &Fig10{Chip: s.Chip.Name, Variant: variant}
	for _, app := range s.AppNames() {
		r, ok := res[app]
		if !ok {
			continue
		}
		b, ok := base[app]
		if !ok {
			continue
		}
		f.Apps = append(f.Apps, app)
		f.Speedup = append(f.Speedup, r.Speedup(b))
	}
	return f, nil
}

// Format renders the per-app bars.
func (f *Fig10) Format() string {
	tb := &table{header: []string{"application", "speedup"}}
	for i, app := range f.Apps {
		bar := strings.Repeat("#", int((f.Speedup[i]-1)*400+0.5))
		tb.add(app, fmt.Sprintf("%+.2f%%  %s", (f.Speedup[i]-1)*100, bar))
	}
	return fmt.Sprintf("Figure 10 (%s, %s): per-application speedup\n%s", f.Chip, f.Variant, tb.String())
}
