package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

// TestWorkerCountFallsBackToGOMAXPROCS: zero and negative worker requests
// must resolve to the GOMAXPROCS default, never to an empty pool that
// would deadlock the job channel.
func TestWorkerCountFallsBackToGOMAXPROCS(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1, -64} {
		if got := (Scale{Workers: n}).WorkerCount(); got != want {
			t.Errorf("Scale{Workers: %d}.WorkerCount() = %d, want %d", n, got, want)
		}
		if got := WorkersOr(n); got != want {
			t.Errorf("WorkersOr(%d) = %d, want %d", n, got, want)
		}
	}
	if got := (Scale{Workers: 3}).WorkerCount(); got != 3 {
		t.Errorf("positive request not honored: got %d, want 3", got)
	}
}

// TestSweepSurvivesNonPositiveWorkers: the original bug class — a sweep
// configured with Workers <= 0 must still execute every cell.
func TestSweepSurvivesNonPositiveWorkers(t *testing.T) {
	for _, n := range []int{0, -2} {
		scale := Scale{MeasureOps: 400, Apps: 2, Seed: 1, Workers: n}
		variants := []config.Variant{{Name: "Baseline"}}
		s := RunSweepCtx(context.Background(), config.Chip16(), variants, scale, Policy{})
		if len(s.Failures) != 0 {
			t.Fatalf("Workers=%d: %s", n, s.FailureSummary())
		}
		if got := len(s.Res["Baseline"]); got != len(scale.Workloads()) {
			t.Fatalf("Workers=%d: %d of %d cells ran", n, got, len(scale.Workloads()))
		}
	}
}

// TestPolicyRunOverride: a Policy.Run executor replaces chip.RunCtx for
// both the original attempt and the retry, and the retry uses the
// alternate seed — the contract rcsweep -remote depends on.
func TestPolicyRunOverride(t *testing.T) {
	v, _ := config.ByName("Baseline")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())

	var seeds []uint64
	pol := Policy{
		Retry: true,
		Run: func(_ context.Context, s chip.Spec) (*chip.Results, error) {
			seeds = append(seeds, s.Seed)
			if len(seeds) == 1 {
				return nil, errors.New("injected transport failure")
			}
			return &chip.Results{Spec: s, Cycles: 1}, nil
		},
	}
	res, rep := pol.RunOne(context.Background(), spec)
	if res == nil || rep == nil {
		t.Fatalf("want recovered result + failure report, got res=%v rep=%v", res, rep)
	}
	if !rep.Retried || rep.RetryErr != nil {
		t.Fatalf("retry outcome wrong: %+v", rep)
	}
	if len(seeds) != 2 || seeds[0] == seeds[1] {
		t.Fatalf("executor saw seeds %v, want two attempts under distinct seeds", seeds)
	}
	if seeds[1] != retrySeed(spec.Seed) {
		t.Fatalf("retry seed = %d, want %d", seeds[1], retrySeed(spec.Seed))
	}
}

// TestRunOneAppliesTimeoutAndFault: the policy decorates the spec before
// executing it, for local and remote executors alike.
func TestRunOneAppliesTimeoutAndFault(t *testing.T) {
	v, _ := config.ByName("Baseline")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	pol := Policy{
		Timeout: 123,
		Run: func(_ context.Context, s chip.Spec) (*chip.Results, error) {
			if s.Timeout != 123 {
				return nil, fmt.Errorf("timeout not applied: %v", s.Timeout)
			}
			return &chip.Results{Spec: s}, nil
		},
	}
	if _, rep := pol.RunOne(context.Background(), spec); rep != nil {
		t.Fatalf("unexpected failure: %v", rep)
	}
}
