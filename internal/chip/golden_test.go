package chip

import (
	"strings"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/workload"
)

// goldenRow pins one cell of the determinism matrix: the numbers were
// captured from the seed (pre-activity-tracking) engine and must stay bit
// for bit identical under the quiescence-skipping kernel. Regenerate with
// cmd/goldengen only when simulated behaviour changes on purpose.
type goldenRow struct {
	chip, workload, variant string

	cycles    sim.Cycle
	msgsTotal int64
	msgsReqs  int64

	reqN     int64
	reqSum   float64
	circN    int64
	circSum  float64
	otherN   int64
	otherSum float64

	linkFlits int64
}

var goldenMatrix = []goldenRow{
	{"16-core", "micro", "Baseline", 4008, 670, 247, 247, 5303, 193, 4862, 230, 5029, 6016},
	{"16-core", "micro", "Fragmented", 3836, 670, 247, 247, 5393, 193, 2639, 230, 5119, 6022},
	{"16-core", "micro", "Complete", 3833, 670, 247, 247, 5366, 193, 2896, 230, 5090, 6022},
	{"16-core", "micro", "Complete_NoAck", 3829, 514, 247, 247, 5362, 193, 2884, 230, 1734, 5424},
	{"16-core", "micro", "Reuse_NoAck", 3829, 514, 247, 247, 5362, 193, 2884, 230, 1734, 5429},
	{"16-core", "micro", "Timed_NoAck", 3839, 670, 247, 247, 5385, 193, 3052, 230, 5087, 6022},
	{"16-core", "micro", "Slack_1_NoAck", 3847, 521, 247, 247, 5357, 193, 2850, 230, 1787, 5433},
	{"16-core", "micro", "Slack_2_NoAck", 3847, 515, 247, 247, 5345, 193, 2811, 230, 1700, 5416},
	{"16-core", "micro", "Slack_4_NoAck", 3845, 521, 247, 247, 5397, 193, 2838, 230, 1817, 5437},
	{"16-core", "micro", "SlackDelay_1_NoAck", 3847, 521, 247, 247, 5357, 193, 2850, 230, 1787, 5433},
	{"16-core", "micro", "Postponed_1_NoAck", 3888, 523, 247, 247, 5360, 193, 2859, 230, 1859, 5444},
	{"16-core", "micro", "Ideal", 3818, 670, 247, 247, 5374, 193, 2623, 230, 5128, 6022},
	{"16-core", "canneal", "Baseline", 4586, 938, 340, 340, 7167, 310, 7462, 288, 6015, 8311},
	{"16-core", "canneal", "Fragmented", 4308, 938, 340, 340, 7302, 310, 4094, 288, 6085, 8311},
	{"16-core", "canneal", "Complete", 4350, 938, 340, 340, 7273, 310, 4733, 288, 6115, 8311},
	{"16-core", "canneal", "Complete_NoAck", 4350, 729, 340, 340, 7258, 310, 4733, 288, 1822, 7554},
	{"16-core", "canneal", "Reuse_NoAck", 4335, 728, 340, 340, 7224, 310, 4710, 288, 1803, 7570},
	{"16-core", "canneal", "Timed_NoAck", 4387, 938, 340, 340, 7267, 310, 4702, 288, 6124, 8311},
	{"16-core", "canneal", "Slack_1_NoAck", 4380, 726, 340, 340, 7237, 310, 4565, 288, 1691, 7523},
	{"16-core", "canneal", "Slack_2_NoAck", 4370, 721, 340, 340, 7277, 310, 4453, 288, 1581, 7506},
	{"16-core", "canneal", "Slack_4_NoAck", 4385, 720, 340, 340, 7264, 310, 4490, 288, 1569, 7507},
	{"16-core", "canneal", "SlackDelay_1_NoAck", 4380, 726, 340, 340, 7241, 310, 4549, 288, 1679, 7521},
	{"16-core", "canneal", "Postponed_1_NoAck", 4422, 724, 340, 340, 7269, 310, 4438, 288, 1650, 7520},
	{"16-core", "canneal", "Ideal", 4310, 938, 340, 340, 7300, 310, 4024, 288, 6107, 8311},
	{"64-core", "micro", "Baseline", 4752, 2990, 1176, 1176, 39527, 710, 26143, 1104, 37606, 40466},
	{"64-core", "micro", "Fragmented", 4369, 2991, 1176, 1176, 40003, 711, 13656, 1104, 38343, 40478},
	{"64-core", "micro", "Complete", 4516, 2993, 1177, 1177, 39979, 711, 17199, 1105, 38353, 40498},
	{"64-core", "micro", "Complete_NoAck", 4422, 2539, 1179, 1179, 40006, 713, 17033, 1107, 23351, 37848},
	{"64-core", "micro", "Reuse_NoAck", 4479, 2541, 1179, 1179, 39984, 713, 17038, 1107, 23357, 37994},
	{"64-core", "micro", "Timed_NoAck", 4462, 2994, 1177, 1177, 40052, 712, 16968, 1105, 38272, 40489},
	{"64-core", "micro", "Slack_1_NoAck", 4452, 2510, 1177, 1177, 39989, 712, 15874, 1105, 22232, 37590},
	{"64-core", "micro", "Slack_2_NoAck", 4449, 2522, 1176, 1176, 39896, 711, 16306, 1104, 22715, 37620},
	{"64-core", "micro", "Slack_4_NoAck", 4483, 2568, 1178, 1178, 39968, 712, 17148, 1106, 24248, 37923},
	{"64-core", "micro", "SlackDelay_1_NoAck", 4391, 2491, 1177, 1177, 40049, 713, 15437, 1105, 21518, 37470},
	{"64-core", "micro", "Postponed_1_NoAck", 4486, 2477, 1175, 1175, 39864, 710, 15281, 1103, 21150, 37300},
	{"64-core", "micro", "Ideal", 4353, 2994, 1177, 1177, 40091, 712, 13037, 1105, 38340, 40488},
	{"64-core", "canneal", "Baseline", 6018, 3747, 1443, 1443, 48392, 1021, 38075, 1283, 43008, 53824},
	{"64-core", "canneal", "Fragmented", 5513, 3753, 1446, 1446, 49388, 1020, 20558, 1287, 44170, 53782},
	{"64-core", "canneal", "Complete", 5582, 3751, 1445, 1445, 49033, 1020, 26441, 1286, 43964, 53755},
	{"64-core", "canneal", "Complete_NoAck", 5454, 3194, 1445, 1445, 49000, 1019, 26104, 1286, 25528, 50392},
	{"64-core", "canneal", "Reuse_NoAck", 5470, 3180, 1445, 1445, 49033, 1018, 26037, 1286, 25360, 50517},
	{"64-core", "canneal", "Timed_NoAck", 5480, 3752, 1446, 1446, 49065, 1019, 25211, 1287, 44067, 53791},
	{"64-core", "canneal", "Slack_1_NoAck", 5537, 3113, 1444, 1444, 49192, 1019, 22760, 1285, 22268, 49773},
	{"64-core", "canneal", "Slack_2_NoAck", 5551, 3143, 1444, 1444, 48990, 1019, 23657, 1285, 23470, 50003},
	{"64-core", "canneal", "Slack_4_NoAck", 5513, 3186, 1444, 1444, 48938, 1019, 24686, 1285, 24879, 50262},
	{"64-core", "canneal", "SlackDelay_1_NoAck", 5450, 3072, 1444, 1444, 49113, 1019, 21849, 1285, 20853, 49514},
	{"64-core", "canneal", "Postponed_1_NoAck", 5657, 3072, 1444, 1444, 48995, 1019, 21972, 1285, 20909, 49553},
	{"64-core", "canneal", "Ideal", 5395, 3748, 1444, 1444, 49316, 1019, 18850, 1285, 44131, 53757},
	{"256-core", "micro", "Baseline", 8194, 11727, 4599, 4599, 282835, 2810, 184957, 4318, 266410, 308349},
	{"256-core", "micro", "Complete_NoAck", 8202, 10641, 4590, 4590, 283822, 2796, 146464, 4310, 209236, 295487},
	{"256-core", "micro", "Reuse_NoAck", 7849, 10643, 4593, 4593, 284106, 2797, 145123, 4310, 207213, 295680},
	// Adversarial-generator rows (internal/tracefeed): single-tile hotspot
	// traffic on the small chip. Note the ordering flip vs the stationary
	// profiles — Timed_NoAck loses to Baseline here (the contended tile's
	// windows keep expiring) while Reuse wins big.
	{"16-core", "hotspot", "Baseline", 5262, 1982, 791, 791, 14427, 443, 9492, 748, 13901, 13147},
	{"16-core", "hotspot", "Reuse_NoAck", 4939, 1621, 792, 792, 15229, 444, 5646, 747, 7575, 12085},
	{"16-core", "hotspot", "Timed_NoAck", 5321, 1973, 787, 787, 14594, 442, 8335, 744, 14320, 13093},
	// SDM rows (internal/core policy_sdm): the lane sweep under uniform
	// traffic pins the serialization model — per-hop latency grows with the
	// lane count (SDM_2 < SDM < SDM_8) while flit counts stay flat — and the
	// hotspot cell pins the lane-exhaustion fallback under contention.
	{"16-core", "micro", "SDM", 4450, 675, 249, 249, 7697, 194, 6543, 232, 7443, 6014},
	{"16-core", "micro", "SDM_2", 4045, 670, 247, 247, 6086, 193, 4221, 230, 5847, 6016},
	{"16-core", "micro", "SDM_8", 5336, 675, 249, 249, 10867, 194, 11680, 232, 10670, 6014},
	{"16-core", "hotspot", "SDM", 7174, 2005, 799, 799, 21144, 455, 17374, 751, 20820, 13359},
}

func goldenSpec(row goldenRow, t *testing.T) Spec {
	t.Helper()
	var c config.Chip
	switch row.chip {
	case "16-core":
		c = config.Chip16()
	case "64-core":
		c = config.Chip64()
	case "256-core":
		c = config.Chip256()
	default:
		t.Fatalf("unknown chip %q", row.chip)
	}
	w := workload.Micro()
	if row.workload != "micro" {
		var ok bool
		w, ok = workload.ByName(row.workload)
		if !ok {
			t.Fatalf("unknown workload %q", row.workload)
		}
	}
	v, found := config.ByName(row.variant)
	if !found {
		t.Fatalf("unknown variant %q", row.variant)
	}
	spec := DefaultSpec(c, v, w)
	spec.WarmupOps = 600
	spec.MeasureOps = 2400
	spec.Seed = 7
	return spec
}

func checkGolden(t *testing.T, row goldenRow, r *Results) {
	t.Helper()
	if r.Cycles != row.cycles {
		t.Errorf("Cycles = %d, golden %d", r.Cycles, row.cycles)
	}
	total, reqs := r.Msgs.Totals()
	if total != row.msgsTotal || reqs != row.msgsReqs {
		t.Errorf("messages = %d/%d, golden %d/%d", total, reqs, row.msgsTotal, row.msgsReqs)
	}
	if n, s := r.Lat.Requests.Network.N(), r.Lat.Requests.Network.Sum(); n != row.reqN || s != row.reqSum {
		t.Errorf("request latency = (%d, %.0f), golden (%d, %.0f)", n, s, row.reqN, row.reqSum)
	}
	if n, s := r.Lat.CircuitReplies.Network.N(), r.Lat.CircuitReplies.Network.Sum(); n != row.circN || s != row.circSum {
		t.Errorf("circuit-reply latency = (%d, %.0f), golden (%d, %.0f)", n, s, row.circN, row.circSum)
	}
	if n, s := r.Lat.OtherReplies.Network.N(), r.Lat.OtherReplies.Network.Sum(); n != row.otherN || s != row.otherSum {
		t.Errorf("other-reply latency = (%d, %.0f), golden (%d, %.0f)", n, s, row.otherN, row.otherSum)
	}
	if r.Events.LinkFlits != row.linkFlits {
		t.Errorf("link flits = %d, golden %d", r.Events.LinkFlits, row.linkFlits)
	}
}

// TestGoldenDeterminism runs the pinned spec matrix (both chips, two
// workloads, every variant) on the activity-tracked kernel and asserts the
// cycle counts, message counts and latency aggregates reproduce the seed
// engine bit for bit. Under -short the 64-core half is trimmed to the
// variants that exercise distinct mechanisms.
func TestGoldenDeterminism(t *testing.T) {
	shortKeep := map[string]bool{
		"Baseline": true, "Fragmented": true, "Complete_NoAck": true,
		"Timed_NoAck": true, "Ideal": true,
	}
	for _, row := range goldenMatrix {
		row := row
		if testing.Short() && row.chip != "16-core" && !(row.chip == "64-core" && shortKeep[row.variant]) {
			continue
		}
		t.Run(row.chip+"/"+row.workload+"/"+row.variant, func(t *testing.T) {
			t.Parallel()
			r, err := Run(goldenSpec(row, t))
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			checkGolden(t, row, r)
		})
	}
}

// crossCheckRows selects the determinism-matrix cells the pooled/unpooled
// and sparse/dense cross-checks run: baseline, the complete mechanism, the
// scrounger-reuse and timed-circuit variants (whose circuit-riding and
// window-expiry paths have the trickiest pointer and scheduling lifetimes),
// the SDM lane-sliced cells (lane pacing and deferred teardown add the
// newest engine-sensitive lifetimes), a canneal cell, and the 64-core
// reuse/timed cells. Under -short the list trims to the 16-core
// distinct-mechanism cells.
func crossCheckRows() []int {
	if testing.Short() {
		return []int{0, 3, 4, 5, 54}
	}
	return []int{0, 3, 4, 5, 14, 28, 29, 54, 56}
}

// TestPooledMatchesUnpooled cross-checks flit/message recycling against the
// garbage-collected reference on a few cells: pooling only changes pointer
// identity, never simulated behaviour, so every pinned aggregate and every
// metric (including the pool's own alloc counters being the only divergence
// allowed) must agree bit for bit.
func TestPooledMatchesUnpooled(t *testing.T) {
	rows := crossCheckRows()
	for _, i := range rows {
		row := goldenMatrix[i]
		t.Run(row.chip+"/"+row.workload+"/"+row.variant, func(t *testing.T) {
			t.Parallel()
			pooled, err := Run(goldenSpec(row, t))
			if err != nil {
				t.Fatalf("pooled run failed: %v", err)
			}
			noPoolSpec := goldenSpec(row, t)
			noPoolSpec.NoPool = true
			unpooled, err := Run(noPoolSpec)
			if err != nil {
				t.Fatalf("unpooled run failed: %v", err)
			}
			checkGolden(t, row, pooled)
			checkGolden(t, row, unpooled)
			if pooled.SimCycles != unpooled.SimCycles {
				t.Errorf("SimCycles pooled %d != unpooled %d", pooled.SimCycles, unpooled.SimCycles)
			}
			for name, v := range pooled.Metrics.Vals {
				if name == "noc/pool_flit_allocs" || name == "noc/pool_flit_reuses" ||
					name == "noc/pool_msg_allocs" || name == "noc/pool_msg_reuses" {
					continue // the pool's own bookkeeping differs by design
				}
				if got := unpooled.Metrics.Value(name); got != v {
					t.Errorf("metric %s: pooled %d, unpooled %d", name, v, got)
				}
			}
		})
	}
}

// parallelRows selects the cells the sharded-engine cross-check runs: the
// usual tricky cells, every hotspot row (adversarial traffic concentrates
// on one tile, the worst case for shard-boundary traffic), plus (outside
// -short) every 256-core row — the scale the parallel engine exists for.
func parallelRows() []int {
	rows := crossCheckRows()
	for i, row := range goldenMatrix {
		if row.workload == "hotspot" {
			rows = append(rows, i)
		}
	}
	if !testing.Short() {
		for i, row := range goldenMatrix {
			if row.chip == "256-core" {
				rows = append(rows, i)
			}
		}
	}
	return rows
}

// TestParallelMatchesSequential cross-checks the tile-sharded engine
// against the sequential reference at every shard count the mesh admits:
// the pinned aggregates and the full metrics snapshot must agree bit for
// bit. Divergence is allowed only for scheduling state (kernel/active — a
// cross-shard wake can arrive mid-phase where the sequential engine's
// arrived before the tick) and the per-shard pools' own bookkeeping
// (noc/pool_*), the same carve-outs the dense and unpooled checks use.
func TestParallelMatchesSequential(t *testing.T) {
	for _, i := range parallelRows() {
		row := goldenMatrix[i]
		t.Run(row.chip+"/"+row.workload+"/"+row.variant, func(t *testing.T) {
			t.Parallel()
			seq, err := Run(goldenSpec(row, t))
			if err != nil {
				t.Fatalf("sequential run failed: %v", err)
			}
			checkGolden(t, row, seq)
			for _, shards := range []int{2, 4, 8} {
				spec := goldenSpec(row, t)
				if shards > spec.Chip.Height {
					break // ClampShards would collapse this into the previous count
				}
				spec.Shards = shards
				par, err := Run(spec)
				if err != nil {
					t.Fatalf("shards=%d run failed: %v", shards, err)
				}
				checkGolden(t, row, par)
				if par.SimCycles != seq.SimCycles {
					t.Errorf("shards=%d: SimCycles %d != sequential %d", shards, par.SimCycles, seq.SimCycles)
				}
				for name, v := range seq.Metrics.Vals {
					if name == "kernel/active" || strings.HasPrefix(name, "noc/pool_") {
						continue
					}
					if got := par.Metrics.Value(name); got != v {
						t.Errorf("shards=%d: metric %s: parallel %d, sequential %d", shards, name, got, v)
					}
				}
			}
		})
	}
}

// TestDenseMatchesSparse cross-checks the two scheduling modes against each
// other on a few cells: dense (tick everything, the seed engine's
// behaviour) and sparse (skip quiescent components) must agree on every
// pinned aggregate and on the metrics snapshot.
func TestDenseMatchesSparse(t *testing.T) {
	rows := crossCheckRows()
	for _, i := range rows {
		row := goldenMatrix[i]
		t.Run(row.chip+"/"+row.workload+"/"+row.variant, func(t *testing.T) {
			t.Parallel()
			sparse, err := Run(goldenSpec(row, t))
			if err != nil {
				t.Fatalf("sparse run failed: %v", err)
			}
			denseSpec := goldenSpec(row, t)
			denseSpec.DenseKernel = true
			dense, err := Run(denseSpec)
			if err != nil {
				t.Fatalf("dense run failed: %v", err)
			}
			checkGolden(t, row, sparse)
			checkGolden(t, row, dense)
			if sparse.SimCycles != dense.SimCycles {
				t.Errorf("SimCycles sparse %d != dense %d", sparse.SimCycles, dense.SimCycles)
			}
			for name, v := range dense.Metrics.Vals {
				if name == "kernel/active" {
					continue // scheduling state, not simulated state
				}
				if got := sparse.Metrics.Value(name); got != v {
					t.Errorf("metric %s: sparse %d, dense %d", name, got, v)
				}
			}
		})
	}
}
