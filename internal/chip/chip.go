// Package chip assembles the full simulated machine — network, circuit
// manager, caches, coherence controllers, memory controllers and cores —
// and runs measured experiments on it. Every table and figure of the
// evaluation is regenerated from the Results this package produces.
package chip

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/cpu"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/power"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/verify"
	"reactivenoc/internal/workload"
)

// Spec describes one simulation run.
type Spec struct {
	Chip     config.Chip
	Variant  config.Variant
	Workload workload.Profile

	// WarmupOps and MeasureOps are retired operations per core: the
	// warm-up fills the caches without statistics (the paper warms for
	// 200M cycles), then the measured phase runs to completion.
	WarmupOps  int64
	MeasureOps int64

	Seed uint64
	// Horizon caps the run (cycles); 0 selects a generous default.
	Horizon sim.Cycle
	// TraceCap, when positive, attaches a lifecycle tracer retaining the
	// last TraceCap events (returned in Results.Trace).
	TraceCap int
	// Audit runs every conservation and coherence audit after the run
	// (leaked circuit entries, unreturned credits, directory soundness)
	// and fails the run on any violation.
	Audit bool

	// Verify arms the online invariant oracles (internal/verify) inside
	// the cycle loop: credit and flit conservation, per-VC order, circuit
	// table legality, registry/table cross-checks, circuit leaks, the
	// single-writer coherence invariant, and a waits-for-graph deadlock
	// detector that fires before the watchdog. A violation fails the run
	// with RunError.Oracle naming the detector. Off by default: the
	// measured hot path pays nothing for the machinery.
	Verify bool
	// VerifyEvery is the oracle cadence in cycles when Verify is set
	// (0 = a default of 128). Fault-injection tests run at 1 so a
	// corruption is caught on the boundary it appears.
	VerifyEvery sim.Cycle

	// Timeout caps the run's wall-clock time (0 = none); an exceeded run
	// returns a *RunError instead of hogging its sweep worker.
	Timeout time.Duration
	// WatchdogStall overrides the forward-progress watchdog threshold in
	// cycles (0 = the package default).
	WatchdogStall sim.Cycle
	// Fault, when non-nil, arms the deterministic fault injector for
	// chaos runs; injections are reported in Results.Faults or, when the
	// corruption is caught, in RunError.Faults.
	Fault *fault.Plan

	// SampleEvery, when positive, records a metrics-registry snapshot
	// every SampleEvery cycles of the measured phase (Results.Series):
	// per-window counter deltas plus end-of-window gauge levels.
	SampleEvery sim.Cycle
	// OnSample, when non-nil, observes each recorded window as it closes,
	// with At already rebased to the measured-phase start — the seam the
	// simulation service streams live progress from. Observers run on the
	// simulation goroutine and must not block; they never affect results
	// and are excluded from Fingerprint.
	OnSample func(sim.Snapshot) `json:"-"`
	// DenseKernel disables the activity tracker, ticking every component
	// every cycle — the reference scheduling the golden determinism suite
	// cross-checks against.
	DenseKernel bool
	// Shards selects the parallel engine's tile-shard count: the mesh is
	// split into contiguous row bands whose components step concurrently
	// inside each kernel phase, exchanging boundary link state only at the
	// per-cycle barrier. Results are bit-identical for every value, so it
	// is an engine switch like DenseKernel — excluded from Fingerprint
	// (json:"-") so result caches and cluster routing never split on it.
	// 0 consults RC_SHARDS (itself "0" → GOMAXPROCS); 1 (or an
	// unparsable/unset environment) runs today's sequential engine. Runs
	// that need cross-shard mutation mid-phase fall back to 1 shard: the
	// ideal mechanism (instant path-walking teardown), fault injection,
	// and lifecycle tracing (one shared trace buffer).
	Shards int `json:"-"`
	// NoPool disables flit/message recycling (see core.Options.NoPool):
	// the reference allocation behaviour the pooled hot path is
	// cross-checked against. Results are bit-identical either way.
	NoPool bool

	// RecordTrace, when set, dumps the run's per-core instruction streams
	// to this path as a replayable binary trace (internal/tracefeed). The
	// recorder is purely passive — a recorded run is bit-identical to an
	// unrecorded one — so the knob is an observer like OnSample, excluded
	// from Fingerprint (json:"-"): result caches never split on it.
	RecordTrace string `json:"-"`
}

// DefaultSpec returns a spec with sane defaults for the given chip,
// variant and workload: warm-up long enough to touch the working set a few
// times (the paper warms caches for 200M cycles before measuring).
func DefaultSpec(c config.Chip, v config.Variant, w workload.Profile) Spec {
	return Spec{
		Chip: c, Variant: v, Workload: w,
		WarmupOps:  3000,
		MeasureOps: 12000,
		Seed:       1,
	}
}

// CoreStats summarizes one core's measured phase.
type CoreStats struct {
	Retired     int64
	Loads       int64
	Stores      int64
	Misses      int64
	StallCycles int64
	FinishedAt  sim.Cycle
}

// Results carries everything the evaluation needs from one run.
type Results struct {
	Spec Spec

	// Cycles is the measured-phase makespan: the cycle the last core
	// retired its final operation, minus the warm-up boundary.
	Cycles sim.Cycle

	Cores []CoreStats

	Msgs coherence.MsgStats
	Lat  coherence.LatencyStats
	// Circ holds the circuit-mechanism statistics (nil for baseline).
	Circ *core.Stats

	Events noc.PowerEvents
	Energy power.Energy
	// AreaSavings is the router-area delta vs the baseline router.
	AreaSavings float64

	L1Hits, L1Misses int64
	L2Hits, L2Misses int64

	// InjRate is flits per node per cycle, the network-load measure the
	// paper quotes ("less than four flits every 100 cycles").
	InjRate float64

	// SimCycles is the total simulated cycle count including warm-up —
	// the denominator for host-throughput metrics (sim_cycles/sec).
	SimCycles sim.Cycle

	// Metrics is the final metrics-registry snapshot of the run; Results'
	// scalar cache fields above are harvested from it.
	Metrics sim.Snapshot
	// Series holds the per-window snapshots recorded when
	// Spec.SampleEvery > 0, with At rebased to the measured-phase start.
	Series []sim.Snapshot

	// Trace holds the retained lifecycle events when Spec.TraceCap > 0.
	Trace []trace.Event

	// Faults logs the injected faults of a chaos run that finished
	// anyway (normally empty).
	Faults []fault.Event
}

// IPC returns retired operations per core per cycle.
func (r *Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var retired int64
	for _, c := range r.Cores {
		retired += c.Retired
	}
	return float64(retired) / float64(r.Cycles) / float64(len(r.Cores))
}

// Speedup returns baseline.Cycles / r.Cycles.
func (r *Results) Speedup(baseline *Results) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// watchdogStall is how long the cores may collectively retire nothing
// before the run is declared deadlocked. Memory round trips under heavy
// line-blocking contention reach a few thousand cycles; an order of
// magnitude above that is unambiguous.
const watchdogStall sim.Cycle = 50_000

// diagTraceCap is the trace tail retained for fault-armed runs that did
// not ask for tracing themselves, so a chaos failure still carries its
// last lifecycle events.
const diagTraceCap = 48

// checkEvery is how often (in cycles) a run polls its context and
// wall-clock deadline; cancellation latency stays under a millisecond of
// simulation work.
const checkEvery = 2048

// envShards resolves RC_SHARDS once per process. The read is lazy (first
// sharded spec, not package init) so `go test` cache keys only include the
// variable for packages that actually consult it. Unset, empty or
// unparsable → 1 (sequential engine); "0" → GOMAXPROCS; N → N.
var envShards = sync.OnceValue(func() int {
	v, ok := os.LookupEnv("RC_SHARDS")
	if !ok || v == "" {
		return 1
	}
	sh, err := strconv.Atoi(v)
	if err != nil || sh < 0 {
		return 1
	}
	if sh == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return sh
})

// effectiveShards resolves a spec's shard count against the run's
// constraints. Runs whose hooks mutate cross-shard state mid-phase fall
// back to the sequential engine: the ideal mechanism tears circuits down
// by walking the whole path instantly, fault injection corrupts arbitrary
// tiles from one hook, and lifecycle tracing appends to one shared ring
// (traceCap covers both explicit TraceCap and the fault-armed diagnostic
// tail). Everything else clamps to one row band per shard.
func effectiveShards(spec *Spec, m mesh.Mesh, traceCap int) int {
	sh := spec.Shards
	if sh == 0 {
		sh = envShards()
	}
	if sh <= 1 {
		return 1
	}
	if spec.Variant.Opts.Mechanism == core.MechIdeal || spec.Fault != nil || traceCap > 0 {
		return 1
	}
	return m.ClampShards(sh)
}

// Run executes the spec and returns its measurements.
func Run(spec Spec) (*Results, error) { return RunCtx(context.Background(), spec) }

// RunCtx executes the spec with cancellation and failure containment: an
// invariant panic anywhere in the simulated machine is recovered into a
// structured *RunError (never re-thrown), as are watchdog deadlocks,
// horizon and wall-clock timeouts, context cancellation, and audit
// failures. A long sweep survives any single run dying.
func RunCtx(ctx context.Context, spec Spec) (res *Results, err error) {
	if spec.MeasureOps <= 0 {
		return nil, fmt.Errorf("chip: MeasureOps must be positive")
	}
	if verr := spec.Workload.Validate(); verr != nil {
		return nil, fmt.Errorf("chip: %w", verr)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var (
		kernel *sim.Kernel
		sys    *coherence.System
		tr     *trace.Buffer
		inj    *fault.Injector
	)
	phase := "setup"

	// runErr builds the structured failure for the current phase with the
	// diagnostic dump, trace tail and injected-fault log attached.
	runErr := func(msg string, panicked bool) *RunError {
		e := &RunError{
			Phase: phase, Chip: spec.Chip.Name, Variant: spec.Variant.Name,
			Workload: spec.Workload.Name, Seed: spec.Seed,
			Msg: msg, Panicked: panicked,
		}
		if kernel != nil {
			e.Cycle = kernel.Now()
		}
		if sys != nil {
			e.Diag = sys.Net.DumpState()
			if sys.Mgr != nil {
				e.Diag += sys.Mgr.DumpCircuits(e.Cycle)
			}
		}
		if tr != nil {
			e.TraceTail = tr.Events()
		}
		if inj != nil {
			e.Faults = inj.Events()
		}
		return e
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, runErr(fmt.Sprint(r), true)
		}
	}()

	m := mesh.New(spec.Chip.Width, spec.Chip.Height)
	opts := spec.Variant.Opts
	opts.NoPool = opts.NoPool || spec.NoPool
	sys = coherence.NewSystem(m, opts, spec.Chip.MCs)
	n := m.Nodes()

	// A trace-driven workload replays a recorded run: the file supplies
	// the prefill regions and each core's exact operation sequence, and
	// the spec's phase budgets must match the recording's or the cores'
	// retirement limits would slice the stream differently.
	var feed *tracefeed.Trace
	if spec.Workload.TracePath != "" {
		var crc uint32
		var ferr error
		feed, crc, ferr = tracefeed.Load(spec.Workload.TracePath)
		if ferr != nil {
			return nil, fmt.Errorf("chip: %w", ferr)
		}
		if spec.Workload.TraceCRC != 0 && spec.Workload.TraceCRC != crc {
			return nil, fmt.Errorf("chip: trace %s has CRC %08x, spec pinned %08x",
				spec.Workload.TracePath, crc, spec.Workload.TraceCRC)
		}
		if feed.Cores() != n {
			return nil, fmt.Errorf("chip: trace %s recorded %d cores, chip %s has %d",
				spec.Workload.TracePath, feed.Cores(), spec.Chip.Name, n)
		}
		if feed.WarmupOps != spec.WarmupOps || feed.MeasureOps != spec.MeasureOps {
			return nil, fmt.Errorf("chip: trace %s recorded %d+%d ops/core, spec asks %d+%d",
				spec.Workload.TracePath, feed.WarmupOps, feed.MeasureOps, spec.WarmupOps, spec.MeasureOps)
		}
	}
	coreRegions := func(i int) []workload.Region {
		if feed != nil {
			return feed.CoreRegions(i)
		}
		return spec.Workload.Regions(i)
	}

	// Functional cache warming (the paper warms for 200M cycles): every
	// region each core touches is installed in its home L2 bank, and the
	// hot private region in the core's L1.
	for i := 0; i < n; i++ {
		for _, reg := range coreRegions(i) {
			for l := 0; l < reg.Lines; l++ {
				tile := mesh.NodeID(-1)
				if l < reg.L1Lines {
					tile = mesh.NodeID(i)
				}
				sys.Prefill(reg.Start+cache.Addr(l*64), tile, reg.Exclusive)
			}
		}
	}

	// A diagnostic tracer rides along whenever the caller asked for one or
	// armed the fault injector, so failures carry a bounded trace tail.
	traceCap := spec.TraceCap
	if traceCap <= 0 && spec.Fault != nil {
		traceCap = diagTraceCap
	}
	if traceCap > 0 {
		tr = trace.New(traceCap)
		sys.Net.SetTracer(tr)
		if sys.Mgr != nil {
			sys.Mgr.SetTracer(tr)
		}
	}

	if spec.Fault != nil {
		inj = fault.New(*spec.Fault)
		sys.Net.SetFaultHook(inj)
		if sys.Mgr != nil {
			sys.Mgr.SetFaultHook(inj)
		}
	}

	// The parallel engine partitions the mesh into row-band tiles stepped
	// concurrently inside each kernel phase. Sharding must be wired before
	// Register and DescribeMetrics below — both hand out per-shard counter
	// slots that SetShards allocates.
	shards := effectiveShards(&spec, m, traceCap)
	if shards > 1 {
		sys.SetShards(shards, m.ShardMap(shards))
	}

	// doneBy counts done-transitions per shard (a core's sink runs on its
	// shard's worker) so the end-of-phase predicate is a short sum instead
	// of an O(cores) scan every cycle; sys.Busy() (which walks the whole
	// machine) only runs in the drain tail after the last core finishes —
	// exactly when the seed engine's short-circuited allDone() reached it.
	// The trace recorder, like the replayer, keeps all state per-core, so
	// neither forces the sequential engine: a core is only ever ticked by
	// its own shard worker.
	var recorder *tracefeed.Recorder
	if spec.RecordTrace != "" {
		recorder = tracefeed.NewRecorder(spec.Workload, n, spec.Seed, spec.WarmupOps, spec.MeasureOps)
	}

	doneBy := make([]int64, shards)
	cores := make([]*cpu.Core, n)
	coreWakers := make([]sim.Waker, n)
	for i := 0; i < n; i++ {
		var st cpu.Stream
		if feed != nil {
			st = feed.Stream(i)
		} else {
			st = spec.Workload.StreamGeom(i, m.Width, m.Height, spec.Seed)
		}
		limit := spec.WarmupOps
		if limit <= 0 {
			limit = spec.MeasureOps
		}
		cores[i] = cpu.New(i, sys.L1s[i], st, limit)
		if recorder != nil {
			cores[i].SetRecorder(recorder)
		}
		s := m.ShardOf(mesh.NodeID(i), shards)
		cores[i].SetDoneSink(func() { doneBy[s]++ })
	}

	// Registration order replicates the seed engine's tick order exactly:
	// the system (routers, NIs, per-tile L1/L2, MCs), then the cores. Each
	// core carries its tile's shard tag so it steps on the same worker as
	// the caches it shares state with.
	kernel = sim.NewKernel()
	kernel.SetDense(spec.DenseKernel)
	kernel.SetShards(shards)
	defer kernel.Close()
	sys.Register(kernel)
	for i, c := range cores {
		kernel.SetShard(m.ShardOf(mesh.NodeID(i), shards))
		coreWakers[i] = kernel.Add(c)
	}
	kernel.SetShard(0)

	reg := sim.NewRegistry()
	sys.DescribeMetrics(reg)
	for _, c := range cores {
		c.Describe(reg)
	}
	if sys.Mgr != nil {
		reg.Gauge("circ/open", func() int64 { return sys.Mgr.OpenCircuits(kernel.Now()) })
	}
	reg.Gauge("kernel/active", func() int64 { return int64(kernel.ActiveCount()) })

	horizon := spec.Horizon
	if horizon == 0 {
		horizon = sim.Cycle(spec.WarmupOps+spec.MeasureOps)*220 + 1_000_000
	}
	stall := spec.WatchdogStall
	if stall <= 0 {
		stall = watchdogStall
	}
	var wallDeadline time.Time
	if spec.Timeout > 0 {
		wallDeadline = time.Now().Add(spec.Timeout)
	}

	// The oracle suite samples the machine on its own cadence, below the
	// watchdog threshold so a structural deadlock is diagnosed as a
	// waits-for cycle before the watchdog can blame generic "no progress".
	var suite *verify.Suite
	verifyEvery := spec.VerifyEvery
	if spec.Verify {
		if verifyEvery <= 0 {
			verifyEvery = 128
		}
		suite = verify.NewSuite(verify.Config{Sys: sys, ProgressStall: stall / 2})
	}

	allDone := func() bool {
		var done int64
		for _, d := range doneBy {
			done += d
		}
		return done == int64(n) && !sys.Busy()
	}

	// runPhase advances until every core finishes, with a forward-progress
	// watchdog: if no operation retires for a long stretch, the phase is
	// deadlocked and the network state dump is attached to the error. The
	// context, wall-clock deadline, and watchdog's O(cores) retired sum are
	// polled every checkEvery cycles.
	var sampler *sim.Sampler
	runPhase := func(name string) error {
		phase = name
		deadline := kernel.Now() + horizon
		lastRetired, lastProgress := int64(-1), kernel.Now()
		for kernel.Now() < deadline {
			if allDone() {
				return nil
			}
			if kernel.Now()%checkEvery == 0 {
				if cerr := ctx.Err(); cerr != nil {
					return runErr("canceled: "+cerr.Error(), false)
				}
				if !wallDeadline.IsZero() && time.Now().After(wallDeadline) {
					return runErr(fmt.Sprintf("exceeded wall-clock timeout %v", spec.Timeout), false)
				}
				var retired int64
				for _, c := range cores {
					retired += c.Retired
				}
				if retired != lastRetired {
					lastRetired, lastProgress = retired, kernel.Now()
				} else if kernel.Now()-lastProgress > stall {
					return runErr(fmt.Sprintf("no progress for %d cycles (deadlock?)", stall), false)
				}
			}
			kernel.Step()
			if sampler != nil {
				sampler.Poll(kernel.Now())
			}
			if suite != nil && kernel.Now()%verifyEvery == 0 {
				if v := suite.Check(kernel.Now()); v != nil {
					e := runErr(v.Msg, false)
					e.Oracle = v.Oracle
					return e
				}
			}
		}
		if allDone() {
			return nil
		}
		return runErr(fmt.Sprintf("did not finish within %d cycles", horizon), false)
	}

	resetCores := func() {
		for s := range doneBy {
			doneBy[s] = 0
		}
		for i, c := range cores {
			c.ResetStats(spec.MeasureOps)
			coreWakers[i].Wake()
		}
	}
	if spec.WarmupOps > 0 {
		if err := runPhase("warm-up"); err != nil {
			return nil, err
		}
		sys.ResetStats()
		resetCores()
	} else {
		resetCores()
	}

	measureStart := kernel.Now()
	if spec.SampleEvery > 0 {
		sampler = sim.NewSampler(reg, spec.SampleEvery, measureStart)
		if spec.OnSample != nil {
			sampler.OnWindow = func(snap sim.Snapshot) {
				snap.At -= measureStart
				spec.OnSample(snap)
			}
		}
	}
	if err := runPhase("measured"); err != nil {
		return nil, err
	}
	if sampler != nil {
		sampler.Flush(kernel.Now())
	}

	if suite != nil {
		phase = "audit"
		if v := suite.CheckQuiescent(kernel.Now()); v != nil {
			e := runErr(v.Msg, false)
			e.Oracle = v.Oracle
			return nil, e
		}
	}
	if spec.Audit {
		phase = "audit"
		if aerr := sys.AuditQuiescent(kernel.Now()); aerr != nil {
			return nil, runErr("post-run audit failed: "+aerr.Error(), false)
		}
	}

	res = &Results{Spec: spec}
	var lastFinish sim.Cycle
	for _, c := range cores {
		if c.FinishedAt > lastFinish {
			lastFinish = c.FinishedAt
		}
		res.Cores = append(res.Cores, CoreStats{
			Retired:     c.Retired,
			Loads:       c.Loads,
			Stores:      c.Stores,
			Misses:      c.Misses,
			StallCycles: c.StallCycles,
			FinishedAt:  c.FinishedAt,
		})
	}
	res.Cycles = lastFinish - measureStart
	if res.Cycles <= 0 {
		res.Cycles = kernel.Now() - measureStart
	}

	res.Msgs = sys.MsgsTotal()
	res.Lat = sys.LatTotal()
	if sys.Mgr != nil {
		st := sys.Mgr.StatsTotal()
		res.Circ = &st
	}
	res.Events = sys.Net.EventsTotal()
	res.Energy = power.NetworkEnergy(&res.Events, n, spec.Variant.Opts, int64(res.Cycles))
	res.AreaSavings = power.AreaSavings(n, spec.Variant.Opts)

	// The cache-layer scalars come from the registry snapshot: every
	// controller registered its counters once at construction, replacing
	// the per-field harvest loop of the original engine.
	res.SimCycles = kernel.Now()
	res.Metrics = reg.Snapshot(kernel.Now())
	res.L1Hits = res.Metrics.Value("l1/hits")
	res.L1Misses = res.Metrics.Value("l1/misses")
	res.L2Hits = res.Metrics.Value("l2/hits")
	res.L2Misses = res.Metrics.Value("l2/misses")
	if sampler != nil {
		res.Series = sampler.Samples()
		for i := range res.Series {
			res.Series[i].At -= measureStart
		}
	}
	if res.Cycles > 0 {
		res.InjRate = float64(res.Events.LinkFlits) / float64(res.Cycles) / float64(n)
	}
	if spec.TraceCap > 0 && tr != nil {
		res.Trace = tr.Events()
	}
	if inj != nil {
		res.Faults = inj.Events()
	}
	if recorder != nil {
		if _, werr := recorder.Trace().WriteFile(spec.RecordTrace); werr != nil {
			return nil, fmt.Errorf("chip: writing trace: %w", werr)
		}
	}
	return res, nil
}

// MustRun is Run, panicking on error (benchmarks, examples).
func MustRun(spec Spec) *Results {
	r, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return r
}
