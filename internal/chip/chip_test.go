package chip

import (
	"context"
	"strings"
	"testing"
	"time"

	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/workload"
)

func variant(t *testing.T, name string) config.Variant {
	t.Helper()
	v, ok := config.ByName(name)
	if !ok {
		t.Fatalf("unknown variant %s", name)
	}
	return v
}

func quickSpec(t *testing.T, c config.Chip, vname string) Spec {
	t.Helper()
	s := DefaultSpec(c, variant(t, vname), workload.Micro())
	s.WarmupOps = 1000
	s.MeasureOps = 3000
	return s
}

func TestBaselineRunProducesSaneResults(t *testing.T) {
	r := MustRun(quickSpec(t, config.Chip16(), "Baseline"))
	if r.Cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	ipc := r.IPC()
	if ipc < 0.2 || ipc > 1.2 {
		t.Fatalf("IPC %.3f outside the plausible in-order band", ipc)
	}
	if len(r.Cores) != 16 {
		t.Fatalf("%d core records", len(r.Cores))
	}
	for i, cs := range r.Cores {
		if cs.Retired < 3000 {
			t.Fatalf("core %d retired %d < 3000", i, cs.Retired)
		}
	}
	total, reqs := r.Msgs.Totals()
	if total == 0 || reqs == 0 {
		t.Fatal("no network traffic")
	}
	replyFrac := 1 - float64(reqs)/float64(total)
	if replyFrac < 0.45 || replyFrac > 0.75 {
		t.Fatalf("reply fraction %.2f implausible", replyFrac)
	}
	if r.Circ != nil {
		t.Fatal("baseline must have no circuit stats")
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if r.AreaSavings != 0 {
		t.Fatal("baseline area savings must be zero")
	}
}

func TestLightNetworkLoad(t *testing.T) {
	// The paper's environment: "nodes inject, in average, less than four
	// flits every 100 cycles". Injected flits = messages x size.
	r := MustRun(quickSpec(t, config.Chip64(), "Baseline"))
	var flits int64
	for tp, n := range r.Msgs.Network {
		flits += n * int64(coherenceSize(tp))
	}
	rate := float64(flits) / float64(r.Cycles) / 64
	if rate > 0.08 {
		t.Fatalf("injection rate %.4f flits/node/cycle is not a lightly loaded network", rate)
	}
}

func coherenceSize(t int) int {
	switch t {
	case 5, 7, 8, 9, 13, 14: // data message type ids
		return 5
	}
	return 1
}

func TestCircuitsSpeedUpAndSaveEnergy(t *testing.T) {
	base := MustRun(quickSpec(t, config.Chip64(), "Baseline"))
	rc := MustRun(quickSpec(t, config.Chip64(), "Complete_NoAck"))
	sp := rc.Speedup(base)
	if sp < 1.0 || sp > 1.25 {
		t.Fatalf("Complete_NoAck speedup %.4f outside the paper-plausible band", sp)
	}
	er := rc.Energy.Total() / base.Energy.Total()
	if er > 0.97 || er < 0.6 {
		t.Fatalf("energy ratio %.4f outside the paper-plausible band", er)
	}
	if rc.Circ == nil || rc.Circ.CircuitsBuilt == 0 {
		t.Fatal("no circuits built")
	}
	if rc.Circ.EliminatedAcks == 0 {
		t.Fatal("NoAck eliminated nothing")
	}
	// Circuit replies must be faster than baseline's.
	if rc.Lat.CircuitReplies.Network.Mean() >= base.Lat.CircuitReplies.Network.Mean() {
		t.Fatal("circuit replies not faster than baseline")
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	a := MustRun(quickSpec(t, config.Chip16(), "SlackDelay_1_NoAck"))
	b := MustRun(quickSpec(t, config.Chip16(), "SlackDelay_1_NoAck"))
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	at, _ := a.Msgs.Totals()
	bt, _ := b.Msgs.Totals()
	if at != bt {
		t.Fatalf("message totals differ: %d vs %d", at, bt)
	}
	if a.Circ.CircuitsBuilt != b.Circ.CircuitsBuilt {
		t.Fatal("circuit counts differ")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	s1 := quickSpec(t, config.Chip16(), "Baseline")
	s2 := s1
	s2.Seed = 99
	a, b := MustRun(s1), MustRun(s2)
	if a.Cycles == b.Cycles {
		t.Log("identical cycles across seeds (possible but unlikely)")
	}
	at, _ := a.Msgs.Totals()
	bt, _ := b.Msgs.Totals()
	if at == bt {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestRejectsBadSpec(t *testing.T) {
	s := quickSpec(t, config.Chip16(), "Baseline")
	s.MeasureOps = 0
	if _, err := Run(s); err == nil {
		t.Fatal("zero MeasureOps accepted")
	}
	s = quickSpec(t, config.Chip16(), "Baseline")
	s.Horizon = 10 // absurdly short
	if _, err := Run(s); err == nil {
		t.Fatal("impossible horizon should error, not hang")
	}
}

func TestWarmupSkippable(t *testing.T) {
	s := quickSpec(t, config.Chip16(), "Baseline")
	s.WarmupOps = 0
	r := MustRun(s)
	if r.Cycles <= 0 {
		t.Fatal("run without warm-up failed")
	}
}

func TestAllVariantsRunAt16(t *testing.T) {
	for _, v := range config.Variants() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			s := quickSpec(t, config.Chip16(), v.Name)
			s.Audit = true // every run must pass the conservation audits
			r := MustRun(s)
			if r.Cycles <= 0 {
				t.Fatal("no cycles")
			}
			if v.Opts.Enabled() {
				if r.Circ == nil {
					t.Fatal("missing circuit stats")
				}
				if v.Opts.Mechanism != core.MechFragmented &&
					r.Circ.Replies[core.OutcomeCircuit] == 0 {
					t.Fatal("no replies rode circuits")
				}
			}
		})
	}
}

func TestIdealIsUpperBoundOnCircuitUse(t *testing.T) {
	ideal := MustRun(quickSpec(t, config.Chip16(), "Ideal"))
	complete := MustRun(quickSpec(t, config.Chip16(), "Complete"))
	fi := ideal.Circ.OutcomeFraction(core.OutcomeCircuit)
	fc := complete.Circ.OutcomeFraction(core.OutcomeCircuit)
	if fi < fc {
		t.Fatalf("ideal rides fewer circuits (%.3f) than complete (%.3f)", fi, fc)
	}
	if ideal.Circ.Replies[core.OutcomeFailed] != 0 {
		t.Fatal("ideal reservation must never fail")
	}
}

func TestTraceCapture(t *testing.T) {
	s := quickSpec(t, config.Chip16(), "Complete_NoAck")
	s.TraceCap = 64
	r := MustRun(s)
	if len(r.Trace) == 0 {
		t.Fatal("no trace events captured")
	}
	if len(r.Trace) > 64 {
		t.Fatalf("trace exceeded its cap: %d", len(r.Trace))
	}
	kinds := map[string]bool{}
	for _, e := range r.Trace {
		kinds[e.Kind.String()] = true
	}
	for _, want := range []string{"enqueue", "inject", "deliver"} {
		if !kinds[want] {
			t.Errorf("trace misses %s events (have %v)", want, kinds)
		}
	}
}

func TestNoTraceByDefault(t *testing.T) {
	r := MustRun(quickSpec(t, config.Chip16(), "Baseline"))
	if r.Trace != nil {
		t.Fatal("tracing should be off by default")
	}
}

func TestComparatorsRunAt16(t *testing.T) {
	for _, v := range config.Comparators() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			s := DefaultSpec(config.Chip16(), v, workload.Micro())
			s.WarmupOps = 1000
			s.MeasureOps = 3000
			s.Audit = true
			r := MustRun(s)
			if r.Cycles <= 0 {
				t.Fatal("no cycles")
			}
			if v.Name == "Probe_DejaVu" && (r.Circ == nil || r.Circ.ProbesSent == 0) {
				t.Fatal("probe comparator sent no setup flits")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Failure containment: panics, watchdog, timeout, cancellation.
// ---------------------------------------------------------------------------

func TestWatchdogReturnsDiagnosticError(t *testing.T) {
	// A permanently stalled link starves the cores behind it: the run must
	// come back with a structured deadlock error carrying the network
	// dump, not hang until the horizon.
	s := quickSpec(t, config.Chip16(), "Complete_NoAck")
	s.Fault = &fault.Plan{Class: fault.StallLink, After: 2000}
	s.WatchdogStall = 2000
	_, err := Run(s)
	if err == nil {
		t.Fatal("stalled run reported success")
	}
	re := AsRunError(err)
	if re == nil {
		t.Fatalf("watchdog error is not a *RunError: %v", err)
	}
	if !strings.Contains(re.Msg, "no progress") {
		t.Fatalf("unexpected failure message: %s", re.Msg)
	}
	if re.Panicked {
		t.Fatal("watchdog failure misreported as a panic")
	}
	if re.Diag == "" {
		t.Fatal("deadlock error lacks the network state dump")
	}
	if re.Cycle == 0 {
		t.Fatal("deadlock error lacks the failure cycle")
	}
}

func TestPanicContainedAsRunError(t *testing.T) {
	// A flipped built bit makes the reply hit a vanished reservation: the
	// router's invariant panic must be recovered into a RunError with the
	// trace tail attached, never escape to the caller as a panic.
	s := quickSpec(t, config.Chip16(), "Complete_NoAck")
	s.Fault = &fault.Plan{Class: fault.FlipBuiltBit}
	res, err := Run(s)
	if err == nil {
		t.Skipf("flip-built-bit absorbed in this configuration (res=%v)", res != nil)
	}
	re := AsRunError(err)
	if re == nil {
		t.Fatalf("panic not wrapped as *RunError: %v", err)
	}
	if !re.Panicked {
		t.Fatalf("invariant failure not flagged as panic: %s", re.Msg)
	}
	if len(re.TraceTail) == 0 {
		t.Fatal("contained panic lacks the trace tail")
	}
	if re.Fingerprint() == "" || !strings.Contains(re.Error(), "Complete_NoAck") {
		t.Fatalf("error does not identify the spec: %s", re.Error())
	}
}

func TestWallClockTimeout(t *testing.T) {
	s := quickSpec(t, config.Chip16(), "Baseline")
	s.Timeout = time.Nanosecond
	_, err := Run(s)
	if err == nil {
		t.Fatal("nanosecond budget reported success")
	}
	re := AsRunError(err)
	if re == nil || !strings.Contains(re.Msg, "timeout") {
		t.Fatalf("expected a timeout RunError, got: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, quickSpec(t, config.Chip16(), "Baseline"))
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	re := AsRunError(err)
	if re == nil || !strings.Contains(re.Msg, "canceled") {
		t.Fatalf("expected a cancellation RunError, got: %v", err)
	}
}

func TestSuccessfulFaultRunKeepsEventLog(t *testing.T) {
	// A withheld credit is only caught by the audits; with auditing off
	// the run completes, but the injection must still be visible in the
	// results so nothing fires silently.
	s := quickSpec(t, config.Chip16(), "Baseline")
	s.Fault = &fault.Plan{Class: fault.WithholdCredit}
	r, err := Run(s)
	if err != nil {
		t.Fatalf("unaudited withheld credit should not fail the run: %v", err)
	}
	if len(r.Faults) == 0 {
		t.Fatal("injected fault missing from the results' event log")
	}
	if r.Trace != nil {
		t.Fatal("fault-armed run leaked its diagnostic trace into the results")
	}
}
