package chip

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Fingerprint returns a stable content hash of the spec: every
// result-affecting field (chip geometry, variant options, workload
// profile, operation counts, seed, horizon, fault plan, sampling and
// kernel/pool switches) feeds a SHA-256 over the spec's canonical JSON
// encoding. Two specs compare equal exactly when their fingerprints do,
// which is what lets a result cache return a stored Results for a
// re-submitted spec without re-simulating it.
//
// Runtime-only observers (Spec.OnSample) are excluded: they cannot change
// the simulation's outcome, only who watches it. Fields added to Spec in
// the future are picked up automatically because the hash covers the full
// JSON encoding; the mutation-coverage test in fingerprint_test.go keeps
// that claim honest.
func (s Spec) Fingerprint() string {
	s.OnSample = nil // observers never reach the encoder
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is plain exported data; Marshal can only fail if a future
		// field breaks that contract, which the stability test catches.
		panic(fmt.Sprintf("chip: spec not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return "spec-" + hex.EncodeToString(sum[:16])
}
