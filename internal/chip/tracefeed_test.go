package chip

import (
	"path/filepath"
	"reflect"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/workload"
)

func variantByName(t *testing.T, name string) config.Variant {
	t.Helper()
	for _, v := range config.Variants() {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("unknown variant %q", name)
	return config.Variant{}
}

// sameResults asserts two runs are bit-identical: every pinned aggregate,
// every per-core counter, and the full metrics snapshot.
func sameResults(t *testing.T, label string, a, b *Results) {
	t.Helper()
	if a.Cycles != b.Cycles || a.SimCycles != b.SimCycles {
		t.Errorf("%s: cycles (%d, %d) != (%d, %d)", label, a.Cycles, a.SimCycles, b.Cycles, b.SimCycles)
	}
	if !reflect.DeepEqual(a.Cores, b.Cores) {
		t.Errorf("%s: per-core stats differ", label)
	}
	for name, v := range a.Metrics.Vals {
		if got := b.Metrics.Value(name); got != v {
			t.Errorf("%s: metric %s: %d != %d", label, name, v, got)
		}
	}
	for name := range b.Metrics.Vals {
		if _, ok := a.Metrics.Vals[name]; !ok {
			t.Errorf("%s: metric %s only in second run", label, name)
		}
	}
}

// TestRecordReplayBitIdentity is the tentpole conformance check: a
// synthetic run recorded to a trace and replayed from it produces
// bit-identical Results — and the recorder itself is invisible (the
// recorded run equals the plain run). Replay is also cross-checked under
// the parallel engine at shards 2 and 4, since all replay state is
// per-core.
func TestRecordReplayBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name     string
		workload workload.Profile
		variant  string
	}{
		{"micro/Reuse", workload.Micro(), "Reuse_NoAck"},
		{"hotspot/Timed", tracefeed.Hotspot(), "Timed_NoAck"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			spec := DefaultSpec(config.Chip16(), variantByName(t, tc.variant), tc.workload)
			spec.WarmupOps = 600
			spec.MeasureOps = 2400
			spec.Seed = 7

			plain, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(t.TempDir(), "run.rctf")
			recSpec := spec
			recSpec.RecordTrace = path
			recorded, err := Run(recSpec)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "recorded-vs-plain", plain, recorded)

			traceProfile, _, err := tracefeed.LoadWorkload(path)
			if err != nil {
				t.Fatal(err)
			}
			replaySpec := spec
			replaySpec.Workload = traceProfile
			replayed, err := Run(replaySpec)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "replayed-vs-plain", plain, replayed)

			for _, shards := range []int{2, 4} {
				shardSpec := replaySpec
				shardSpec.Shards = shards
				par, err := Run(shardSpec)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if par.Cycles != plain.Cycles || par.SimCycles != plain.SimCycles {
					t.Errorf("shards=%d: cycles (%d, %d) != plain (%d, %d)",
						shards, par.Cycles, par.SimCycles, plain.Cycles, plain.SimCycles)
				}
				if !reflect.DeepEqual(par.Cores, plain.Cores) {
					t.Errorf("shards=%d: per-core stats differ from plain run", shards)
				}
			}
		})
	}
}

// TestReplayRejectsMismatchedSpecs pins the replay guard rails: wrong
// chip size, wrong phase budgets, and a stale CRC all fail at spec build
// with a plain error, not mid-run.
func TestReplayRejectsMismatchedSpecs(t *testing.T) {
	spec := DefaultSpec(config.Chip16(), variantByName(t, "Baseline"), workload.Micro())
	spec.WarmupOps = 100
	spec.MeasureOps = 400
	spec.Seed = 3
	path := filepath.Join(t.TempDir(), "run.rctf")
	spec.RecordTrace = path
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	traceProfile, _, err := tracefeed.LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}

	good := spec
	good.RecordTrace = ""
	good.Workload = traceProfile
	if _, err := Run(good); err != nil {
		t.Fatalf("faithful replay rejected: %v", err)
	}

	wrongChip := good
	wrongChip.Chip = config.Chip64()
	if _, err := Run(wrongChip); err == nil {
		t.Error("16-core trace accepted on a 64-core chip")
	}

	wrongOps := good
	wrongOps.MeasureOps = 999
	if _, err := Run(wrongOps); err == nil {
		t.Error("mismatched phase budget accepted")
	}

	wrongCRC := good
	wrongCRC.Workload.TraceCRC ^= 0xFFFF
	if _, err := Run(wrongCRC); err == nil {
		t.Error("stale CRC accepted")
	}

	missing := good
	missing.Workload.TracePath = filepath.Join(t.TempDir(), "gone.rctf")
	if _, err := Run(missing); err == nil {
		t.Error("missing trace file accepted")
	}
}
