package chip

import (
	"reflect"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/workload"
)

func testSpec() Spec {
	v, _ := config.ByName("Complete_NoAck")
	return DefaultSpec(config.Chip16(), v, workload.Micro())
}

// TestFingerprintStability: fingerprinting is pure — two specs built the
// same way hash identically, and repeated calls agree.
func TestFingerprintStability(t *testing.T) {
	a, b := testSpec(), testSpec()
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa == "" || fa != fb {
		t.Fatalf("equal specs disagree: %q vs %q", fa, fb)
	}
	if fa != a.Fingerprint() {
		t.Fatalf("fingerprint not idempotent")
	}
	// A spec with the fault plan populated is also stable.
	a.Fault = &fault.Plan{Class: fault.StallLink, After: 100}
	b.Fault = &fault.Plan{Class: fault.StallLink, After: 100}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal fault-armed specs disagree")
	}
}

// TestFingerprintIgnoresObservers: OnSample is a runtime observer, not an
// input — attaching one must not move the cache key.
func TestFingerprintIgnoresObservers(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.OnSample = func(sim.Snapshot) {}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("OnSample leaked into the fingerprint")
	}
}

// mutate flips one leaf field (addressed by v) to a different value,
// returning false for kinds that intentionally do not fingerprint (funcs).
func mutate(t *testing.T, v reflect.Value, path string) bool {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.125)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Func:
		return false
	default:
		t.Fatalf("field %s: unhandled kind %s — extend the fingerprint test", path, v.Kind())
	}
	return true
}

// leafFields walks every addressable leaf of a struct value, descending
// into nested structs and allocating nil pointers so pointed-to fields
// (the fault plan) are exercised too.
func leafFields(t *testing.T, v reflect.Value, path string, visit func(reflect.Value, string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("field %s.%s is unexported: JSON fingerprinting would miss it", path, f.Name)
			}
			leafFields(t, v.Field(i), path+"."+f.Name, visit)
		}
	case reflect.Ptr:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		leafFields(t, v.Elem(), path, visit)
	default:
		visit(v, path)
	}
}

// TestFingerprintCoversEveryField mutates each leaf field of the spec in
// turn and demands a fingerprint change — so nobody can add a
// result-affecting knob that the result cache silently ignores.
func TestFingerprintCoversEveryField(t *testing.T) {
	// Baseline includes an allocated fault plan so pointer leaves compare
	// against a populated baseline rather than nil-vs-zero.
	base := testSpec()
	base.Fault = &fault.Plan{}
	baseFP := base.Fingerprint()

	var paths []string
	leafFields(t, reflect.ValueOf(&base).Elem(), "Spec", func(_ reflect.Value, p string) {
		paths = append(paths, p)
	})
	if len(paths) < 15 {
		t.Fatalf("suspiciously few spec leaves (%d): walker broken?", len(paths))
	}

	for _, target := range paths {
		spec := testSpec()
		spec.Fault = &fault.Plan{}
		changed := false
		leafFields(t, reflect.ValueOf(&spec).Elem(), "Spec", func(v reflect.Value, p string) {
			if p == target && !changed {
				changed = mutate(t, v, p)
			}
		})
		if !changed {
			continue // non-fingerprinting kind (funcs), covered above
		}
		if got := spec.Fingerprint(); got == baseFP {
			t.Errorf("mutating %s did not change the fingerprint", target)
		}
	}
}
