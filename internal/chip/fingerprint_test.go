package chip

import (
	"reflect"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/workload"
)

func testSpec() Spec {
	v, _ := config.ByName("Complete_NoAck")
	return DefaultSpec(config.Chip16(), v, workload.Micro())
}

// TestFingerprintStability: fingerprinting is pure — two specs built the
// same way hash identically, and repeated calls agree.
func TestFingerprintStability(t *testing.T) {
	a, b := testSpec(), testSpec()
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa == "" || fa != fb {
		t.Fatalf("equal specs disagree: %q vs %q", fa, fb)
	}
	if fa != a.Fingerprint() {
		t.Fatalf("fingerprint not idempotent")
	}
	// A spec with the fault plan populated is also stable.
	a.Fault = &fault.Plan{Class: fault.StallLink, After: 100}
	b.Fault = &fault.Plan{Class: fault.StallLink, After: 100}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal fault-armed specs disagree")
	}
}

// TestFingerprintIgnoresObservers: OnSample is a runtime observer, not an
// input — attaching one must not move the cache key.
func TestFingerprintIgnoresObservers(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.OnSample = func(sim.Snapshot) {}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("OnSample leaked into the fingerprint")
	}
}

// TestFingerprintIgnoresEngineKnobs: Shards picks an execution engine, not
// an experiment — a sharded and a sequential run of the same spec produce
// bit-identical results and must land in the same cache slot.
func TestFingerprintIgnoresEngineKnobs(t *testing.T) {
	a, b := testSpec(), testSpec()
	b.Shards = 8
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("Shards leaked into the fingerprint")
	}
}

// mutate flips one leaf field (addressed by v) to a different value,
// returning false for kinds that intentionally do not fingerprint (funcs).
func mutate(t *testing.T, v reflect.Value, path string) bool {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.125)
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Func:
		return false
	default:
		t.Fatalf("field %s: unhandled kind %s — extend the fingerprint test", path, v.Kind())
	}
	return true
}

// leafFields walks every addressable leaf of a struct value, descending
// into nested structs and allocating nil pointers so pointed-to fields
// (the fault plan) are exercised too.
func leafFields(t *testing.T, v reflect.Value, path string, visit func(reflect.Value, string)) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("field %s.%s is unexported: JSON fingerprinting would miss it", path, f.Name)
			}
			if f.Tag.Get("json") == "-" {
				continue // deliberately unfingerprinted (observers, engine knobs)
			}
			leafFields(t, v.Field(i), path+"."+f.Name, visit)
		}
	case reflect.Ptr:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		leafFields(t, v.Elem(), path, visit)
	default:
		visit(v, path)
	}
}

// TestFingerprintCoversEveryField mutates each leaf field of the spec in
// turn and demands a fingerprint change — so nobody can add a
// result-affecting knob that the result cache silently ignores.
func TestFingerprintCoversEveryField(t *testing.T) {
	// Baseline includes an allocated fault plan so pointer leaves compare
	// against a populated baseline rather than nil-vs-zero.
	base := testSpec()
	base.Fault = &fault.Plan{}
	baseFP := base.Fingerprint()

	var paths []string
	leafFields(t, reflect.ValueOf(&base).Elem(), "Spec", func(_ reflect.Value, p string) {
		paths = append(paths, p)
	})
	if len(paths) < 15 {
		t.Fatalf("suspiciously few spec leaves (%d): walker broken?", len(paths))
	}

	for _, target := range paths {
		spec := testSpec()
		spec.Fault = &fault.Plan{}
		changed := false
		leafFields(t, reflect.ValueOf(&spec).Elem(), "Spec", func(v reflect.Value, p string) {
			if p == target && !changed {
				changed = mutate(t, v, p)
			}
		})
		if !changed {
			continue // non-fingerprinting kind (funcs), covered above
		}
		if got := spec.Fingerprint(); got == baseFP {
			t.Errorf("mutating %s did not change the fingerprint", target)
		}
	}
}

// prePolicyFingerprints pins the fingerprint of every pre-existing variant
// (the paper's inventory plus the related-work comparators) to the value it
// had before the switching-policy refactor, all under
// DefaultSpec(Chip16, v, Micro). The refactor added Options knobs; their
// omitempty JSON tags must keep every old encoding — and therefore every
// cached result — byte-identical.
var prePolicyFingerprints = map[string]string{
	"Baseline":           "spec-b154dcfc590eabec22d8aae0e2c2abbd",
	"Fragmented":         "spec-d4cecc44b69fa5bfa99641c265f2e7f5",
	"Complete":           "spec-badaf5d66f3dd63d948aec9318bc8a47",
	"Complete_NoAck":     "spec-da4735e809b6bceb3df68423e37e5561",
	"Reuse_NoAck":        "spec-5442271bc48fb0d6217740ed61cf8116",
	"Timed_NoAck":        "spec-3ca5fc5be14a24ad0a96c7e907ef28af",
	"Slack_1_NoAck":      "spec-db85d35b48a22d3c1e24d0a9a2c39b14",
	"Slack_2_NoAck":      "spec-4c8cd3d83341a77b4a6f1ed7074b3c28",
	"Slack_4_NoAck":      "spec-2792917b236cae93d443d2b7e0abb920",
	"SlackDelay_1_NoAck": "spec-77ba827cd27e6c5a065449080f6c08fe",
	"Postponed_1_NoAck":  "spec-d81fae2cfb7f82d022683246c2addce9",
	"Ideal":              "spec-34a5fdf7b3d14aab3a9125549f13b8a5",
	"Speculative":        "spec-559344353dfbe661418dfea01406414f",
	"Probe_DejaVu":       "spec-b96b17336729a9a29a3d2d944d6ece59",
}

// TestFingerprintsPinnedAcrossPolicyRefactor asserts every pre-refactor
// variant still fingerprints to its captured value: result caches survive
// the policy seam unchanged.
func TestFingerprintsPinnedAcrossPolicyRefactor(t *testing.T) {
	for name, want := range prePolicyFingerprints {
		v, ok := config.ByName(name)
		if !ok {
			t.Errorf("variant %s no longer registered", name)
			continue
		}
		spec := DefaultSpec(config.Chip16(), v, workload.Micro())
		if got := spec.Fingerprint(); got != want {
			t.Errorf("variant %s: fingerprint %s, want pinned %s (cached results invalidated)", name, got, want)
		}
	}
}

// TestPolicyVariantFingerprintsDistinct: the policy-lab and SDM variants
// and each of their tuning knobs land in distinct cache slots — never
// colliding with a pinned legacy fingerprint or with each other.
func TestPolicyVariantFingerprintsDistinct(t *testing.T) {
	seen := map[string]string{}
	for name, fp := range prePolicyFingerprints {
		seen[fp] = name
	}
	note := func(label, fp string) {
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s fingerprints identically to %s (%s)", label, prev, fp)
		}
		seen[fp] = label
	}
	variants := append(config.PolicyVariants(), config.SDMVariants()...)
	for _, v := range variants {
		base := DefaultSpec(config.Chip16(), v, workload.Micro())
		note(v.Name, base.Fingerprint())

		// Every policy knob must perturb the fingerprint: a swept tuning
		// value that hashed like the default would silently reuse the
		// default's cached results.
		knobs := map[string]func(*Spec){
			"Policy":              func(s *Spec) { s.Variant.Opts.Policy += "x" },
			"ProfileWindow":       func(s *Spec) { s.Variant.Opts.ProfileWindow++ },
			"ProfileThresholdPct": func(s *Spec) { s.Variant.Opts.ProfileThresholdPct++ },
			"ProfileBackoff":      func(s *Spec) { s.Variant.Opts.ProfileBackoff++ },
			"DynVCMin":            func(s *Spec) { s.Variant.Opts.DynVCMin++ },
			"DynVCMax":            func(s *Spec) { s.Variant.Opts.DynVCMax++ },
			"DynVCWindow":         func(s *Spec) { s.Variant.Opts.DynVCWindow++ },
			"SDMLanes":            func(s *Spec) { s.Variant.Opts.SDMLanes++ },
		}
		for knob, mut := range knobs {
			spec := DefaultSpec(config.Chip16(), v, workload.Micro())
			mut(&spec)
			if spec.Fingerprint() == base.Fingerprint() {
				t.Errorf("%s: mutating %s did not change the fingerprint", v.Name, knob)
			}
		}
	}
}
