package chip

import (
	"errors"
	"fmt"
	"strings"

	"reactivenoc/internal/fault"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// RunError is the structured failure of one simulation run: which spec
// died, in which phase, at which cycle, and why — with the network
// diagnostic dump, a bounded trace tail, and the injected-fault log
// attached so a failed run in a thousand-run sweep is actionable without
// re-running it.
type RunError struct {
	// Phase is where the run failed: setup, warm-up, measured, or audit.
	Phase string
	// Cycle is the simulation time of the failure.
	Cycle sim.Cycle

	// Chip, Variant, Workload and Seed fingerprint the failing spec.
	Chip     string
	Variant  string
	Workload string
	Seed     uint64

	// Msg describes the failure; Panicked marks a contained invariant
	// panic (as opposed to a watchdog, timeout, or audit error).
	Msg      string
	Panicked bool

	// Oracle names the verification-suite oracle that caught the failure
	// ("credit-conservation", "circuit-registry", ...) when the run was
	// executed with Spec.Verify; empty otherwise. Chaos tests assert on it
	// to prove each fault class is caught by its intended detector rather
	// than the generic watchdog.
	Oracle string

	// Diag is the network state dump plus the live-circuit dump taken at
	// failure time.
	Diag string
	// TraceTail holds the last retained lifecycle events, when a tracer
	// was attached.
	TraceTail []trace.Event
	// Faults logs the injected faults of a chaos run.
	Faults []fault.Event
}

// Fingerprint identifies the failing spec: chip/variant/workload/seed.
func (e *RunError) Fingerprint() string {
	return fmt.Sprintf("%s/%s/%s/seed%d", e.Chip, e.Variant, e.Workload, e.Seed)
}

// Error renders the one-line summary; Verbose adds the diagnostics.
func (e *RunError) Error() string {
	kind := ""
	if e.Panicked {
		kind = " (invariant panic)"
	}
	if e.Oracle != "" {
		kind += fmt.Sprintf(" [oracle %s]", e.Oracle)
	}
	return fmt.Sprintf("chip: run %s failed in %s phase at cycle %d%s: %s",
		e.Fingerprint(), e.Phase, e.Cycle, kind, e.Msg)
}

// Verbose renders the error with its diagnostic dump, trace tail and
// injected-fault log.
func (e *RunError) Verbose() string {
	var b strings.Builder
	b.WriteString(e.Error())
	b.WriteByte('\n')
	if len(e.Faults) > 0 {
		b.WriteString("injected faults:\n")
		for _, f := range e.Faults {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if len(e.TraceTail) > 0 {
		fmt.Fprintf(&b, "last %d lifecycle events:\n", len(e.TraceTail))
		for _, ev := range e.TraceTail {
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}
	if e.Diag != "" {
		b.WriteString(e.Diag)
	}
	return b.String()
}

// AsRunError unwraps err to its *RunError, or nil when it carries none.
func AsRunError(err error) *RunError {
	var re *RunError
	if errors.As(err, &re) {
		return re
	}
	return nil
}
