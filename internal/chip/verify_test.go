package chip

import (
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

// TestVerifyCleanRuns proves the oracle suite is false-positive free: a
// healthy run of every mechanism family must pass every online check at a
// tight cadence and the attributed quiescent audit. Any oracle firing here
// is a bug in the oracle (or a real one in the simulator).
func TestVerifyCleanRuns(t *testing.T) {
	names := []string{
		"Baseline", "Fragmented", "Complete", "Complete_NoAck",
		"Reuse_NoAck", "Timed_NoAck", "SlackDelay_1_NoAck", "Ideal",
	}
	if testing.Short() {
		names = []string{"Baseline", "Complete_NoAck", "Timed_NoAck"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			v, ok := config.ByName(name)
			if !ok {
				t.Fatalf("unknown variant %s", name)
			}
			spec := Spec{
				Chip: config.Chip16(), Variant: v, Workload: workload.Micro(),
				WarmupOps: 300, MeasureOps: 1500, Seed: 11,
				Audit: true, Verify: true, VerifyEvery: 8,
			}
			if _, err := Run(spec); err != nil {
				t.Fatalf("verified run failed: %v", err)
			}
		})
	}
}

// TestVerifyComparators extends the clean-run proof to the related-work
// comparators (speculative router, probe-based setup), whose bypass and
// probe traffic exercise oracle paths the main variants do not.
func TestVerifyComparators(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestVerifyCleanRuns in short mode")
	}
	for _, v := range config.Comparators() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			spec := Spec{
				Chip: config.Chip16(), Variant: v, Workload: workload.Micro(),
				WarmupOps: 300, MeasureOps: 1500, Seed: 13,
				Audit: true, Verify: true, VerifyEvery: 8,
			}
			if _, err := Run(spec); err != nil {
				t.Fatalf("verified run failed: %v", err)
			}
		})
	}
}
