// Package trace records message-lifecycle events — enqueue, injection,
// delivery, circuit reservation, rides, teardowns, eliminations — into a
// bounded ring buffer, cheap enough to leave attached during experiments
// and precise enough to reconstruct any transaction cycle by cycle.
package trace

import (
	"fmt"
	"strings"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// Kind classifies a lifecycle event.
type Kind uint8

const (
	// Enqueue: the message entered its source NI queue.
	Enqueue Kind = iota + 1
	// Inject: the head flit left the NI.
	Inject
	// Deliver: the tail flit reached the destination NI.
	Deliver
	// Reserve: a request installed one router's circuit entry.
	Reserve
	// CircuitBuilt: a reservation walk completed end to end.
	CircuitBuilt
	// CircuitFailed: a reservation walk hit a conflict or full storage.
	CircuitFailed
	// CircuitRide: a reply committed to its circuit at injection.
	CircuitRide
	// CircuitUndone: a built circuit was torn down before use.
	CircuitUndone
	// Scrounge: a reply borrowed a foreign circuit.
	Scrounge
	// AckEliminated: an L1_DATA_ACK was removed by NoAck.
	AckEliminated
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Enqueue:
		return "enqueue"
	case Inject:
		return "inject"
	case Deliver:
		return "deliver"
	case Reserve:
		return "reserve"
	case CircuitBuilt:
		return "circuit-built"
	case CircuitFailed:
		return "circuit-failed"
	case CircuitRide:
		return "circuit-ride"
	case CircuitUndone:
		return "circuit-undone"
	case Scrounge:
		return "scrounge"
	case AckEliminated:
		return "ack-eliminated"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Cycle
	Kind Kind
	// Msg is the message id (0 when the event is not message-bound).
	Msg uint64
	// Node is where the event happened.
	Node mesh.NodeID
	// Note carries free-form context (message type, ports, windows).
	Note string
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("@%-7d %-14s msg=%-6d node=%-3d %s", e.At, e.Kind, e.Msg, e.Node, e.Note)
}

// Buffer is a bounded ring of events. A nil *Buffer is a valid no-op
// tracer, so call sites need no guards beyond the nil receiver check Go
// performs anyway.
type Buffer struct {
	events []Event
	next   int
	full   bool
	total  int64
}

// New returns a buffer keeping the last capacity events.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Record appends an event; the oldest is overwritten when full. Recording
// on a nil buffer is a no-op.
func (b *Buffer) Record(at sim.Cycle, kind Kind, msg uint64, node mesh.NodeID, note string) {
	if b == nil {
		return
	}
	b.events[b.next] = Event{At: at, Kind: kind, Msg: msg, Node: node, Note: note}
	b.next++
	b.total++
	if b.next == len(b.events) {
		b.next = 0
		b.full = true
	}
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	if b.full {
		return len(b.events)
	}
	return b.next
}

// Total returns the number of events ever recorded.
func (b *Buffer) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Events returns the retained events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	out := make([]Event, 0, b.Len())
	if b.full {
		out = append(out, b.events[b.next:]...)
	}
	out = append(out, b.events[:b.next]...)
	return out
}

// ByMessage groups the retained events per message id, preserving order.
func (b *Buffer) ByMessage() map[uint64][]Event {
	m := map[uint64][]Event{}
	for _, e := range b.Events() {
		if e.Msg != 0 {
			m[e.Msg] = append(m[e.Msg], e)
		}
	}
	return m
}

// Transaction renders one message's lifecycle as a single line per event.
func (b *Buffer) Transaction(msg uint64) string {
	var sb strings.Builder
	for _, e := range b.Events() {
		if e.Msg == msg {
			sb.WriteString(e.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// String renders the whole buffer.
func (b *Buffer) String() string {
	var sb strings.Builder
	for _, e := range b.Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
