package trace

import (
	"strings"
	"testing"
)

func TestNilBufferIsNoOp(t *testing.T) {
	var b *Buffer
	b.Record(1, Enqueue, 1, 0, "x") // must not panic
	if b.Len() != 0 || b.Total() != 0 || b.Events() != nil {
		t.Fatal("nil buffer should be empty")
	}
}

func TestRecordAndOrder(t *testing.T) {
	b := New(8)
	b.Record(1, Enqueue, 7, 0, "a")
	b.Record(2, Inject, 7, 0, "b")
	b.Record(5, Deliver, 7, 3, "c")
	evs := b.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Kind != Enqueue || evs[2].Kind != Deliver {
		t.Fatal("order lost")
	}
	if b.Total() != 3 {
		t.Fatalf("total %d", b.Total())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	b := New(4)
	for i := 1; i <= 10; i++ {
		b.Record(int64(i), Enqueue, uint64(i), 0, "")
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("%d retained, want 4", len(evs))
	}
	if evs[0].Msg != 7 || evs[3].Msg != 10 {
		t.Fatalf("wrong window: %v..%v", evs[0].Msg, evs[3].Msg)
	}
	if b.Total() != 10 {
		t.Fatalf("total %d", b.Total())
	}
}

func TestByMessageAndTransaction(t *testing.T) {
	b := New(16)
	b.Record(1, Enqueue, 1, 0, "")
	b.Record(1, Enqueue, 2, 0, "")
	b.Record(2, Inject, 1, 0, "")
	b.Record(3, CircuitBuilt, 0, 5, "") // not message-bound
	b.Record(9, Deliver, 1, 3, "")
	by := b.ByMessage()
	if len(by[1]) != 3 || len(by[2]) != 1 {
		t.Fatalf("grouping wrong: %v", by)
	}
	if _, ok := by[0]; ok {
		t.Fatal("msg 0 must not be grouped")
	}
	tx := b.Transaction(1)
	if strings.Count(tx, "\n") != 3 {
		t.Fatalf("transaction render: %q", tx)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Enqueue; k <= AckEliminated; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(0)
	for i := 0; i < 2000; i++ {
		b.Record(int64(i), Inject, uint64(i), 0, "")
	}
	if b.Len() != 1024 {
		t.Fatalf("default capacity: %d", b.Len())
	}
}

func TestStringRendersAllEvents(t *testing.T) {
	b := New(4)
	b.Record(1, Enqueue, 1, 2, "note-here")
	s := b.String()
	if !strings.Contains(s, "enqueue") || !strings.Contains(s, "note-here") {
		t.Fatalf("render: %q", s)
	}
}
