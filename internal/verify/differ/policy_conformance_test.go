package differ

import (
	"context"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/fault"
	"reactivenoc/internal/verify"
	"reactivenoc/internal/workload"
)

// policySpec builds the conformance cell for one policy's representative
// variant: the 16-core chip under the micro workload with the online
// oracles armed at a tight cadence and the end-of-run audits on, so a
// leaked circuit entry, conservation violation or oracle breach fails the
// run rather than hiding in the aggregates.
func policySpec(v config.Variant) chip.Spec {
	s := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	s.WarmupOps = 500
	s.MeasureOps = 4000
	s.Audit = true
	s.Verify = true
	s.VerifyEvery = 8
	return s
}

// TestPolicyConformance enumerates every registered switching policy and
// runs its representative variant through the full gauntlet: a registered
// preset must exist (a policy without a runnable preset cannot be
// tested), the run must come back oracle-clean and audit-clean (which
// includes zero leaked circuit entries at quiesce), and the pooled,
// unpooled and dense-kernel legs must be bit-identical.
func TestPolicyConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("policy conformance runs full simulations")
	}
	names := config.PolicyNames()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 registered policies (5 paper mechanisms + profiled-hybrid + dynamic-vc), got %d: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			v, ok := config.VariantForPolicy(name)
			if !ok {
				t.Fatalf("policy %q has no registered representative variant; add one to config.Variants, PolicyVariants or Comparators", name)
			}
			if err := RunDifferential(context.Background(), policySpec(v), nil); err != nil {
				t.Fatalf("policy %q (variant %s): %v", name, v.Name, err)
			}
		})
	}
}

// policyFaultExpectations derives, from a policy's own predicates, which
// fault classes its armed oracles promise to catch: credit conservation is
// variant-independent, the registry cross-check applies when the policy
// advertises RegistryChecked, and the online leak oracle when LeakChecked.
// Deriving from the predicates (instead of a hand-kept table) means a new
// policy is automatically held to exactly the oracles it claims.
func policyFaultExpectations(pol core.Policy, opts core.Options) []fault.Class {
	expect := []fault.Class{fault.WithholdCredit}
	if pol.RegistryChecked() {
		expect = append(expect, fault.FlipBuiltBit)
	}
	if pol.LeakChecked(&opts) {
		expect = append(expect, fault.DropUndoToken)
	}
	return expect
}

// TestPolicyConformanceOracles closes the inverse gap of the conformance
// gauntlet: a clean run proves the policy violates no armed oracle, but not
// that the oracles have teeth under that policy. For every registered
// policy, each fault class its predicates map to an oracle is injected into
// the verify-armed representative cell, and the run must fail through
// exactly that oracle — a fault that never fires makes the cell vacuous and
// fails too.
func TestPolicyConformanceOracles(t *testing.T) {
	if testing.Short() {
		t.Skip("policy conformance runs full simulations")
	}
	for _, name := range config.PolicyNames() {
		name := name
		v, ok := config.VariantForPolicy(name)
		if !ok {
			t.Fatalf("policy %q has no registered representative variant", name)
		}
		pol, err := core.PolicyFor(v.Opts)
		if err != nil {
			t.Fatalf("policy %q: %v", name, err)
		}
		for _, c := range policyFaultExpectations(pol, v.Opts) {
			c := c
			t.Run(name+"/"+c.String(), func(t *testing.T) {
				t.Parallel()
				s := policySpec(v)
				s.VerifyEvery = 1
				s.Fault = &fault.Plan{Class: c}
				if c == fault.DropUndoToken {
					// Undo walks need reservation churn to be frequent
					// enough for one token to be swallowed mid-walk.
					s.Workload = workload.Micro().Scaled(8)
				}
				res, err := chip.RunCtx(context.Background(), s)
				if err == nil {
					if res != nil && len(res.Faults) > 0 {
						t.Fatalf("silent escape: %d injected %v faults produced a clean result", len(res.Faults), c)
					}
					t.Fatalf("%v never fired under policy %q: the oracle-teeth cell is vacuous; tune the plan", c, name)
				}
				re := chip.AsRunError(err)
				if re == nil {
					t.Fatalf("error is not a *chip.RunError: %v", err)
				}
				if len(re.Faults) == 0 {
					t.Fatalf("run failed but the fault log is empty: %v", re)
				}
				want := verify.OraclesFor(c)
				for _, w := range want {
					if re.Oracle == w {
						return
					}
				}
				t.Fatalf("%v under policy %q caught by %q (phase %s: %s), want oracle in %v",
					c, name, re.Oracle, re.Phase, re.Msg, want)
			})
		}
	}
}

// TestPolicyConformanceQuiesce reruns each policy's representative cell
// without pooling and asserts directly that no circuit state survives the
// drain: the audit inside the run checks router tables and NI registries
// at quiesce, so an unclean teardown fails here with the offending
// router/entry named instead of as an aggregate divergence.
func TestPolicyConformanceQuiesce(t *testing.T) {
	if testing.Short() {
		t.Skip("policy conformance runs full simulations")
	}
	for _, name := range config.PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			v, ok := config.VariantForPolicy(name)
			if !ok {
				t.Fatalf("policy %q has no registered representative variant", name)
			}
			s := policySpec(v)
			s.NoPool = true
			if _, err := chip.RunCtx(context.Background(), s); err != nil {
				t.Fatalf("policy %q unpooled audit run: %v", name, err)
			}
		})
	}
}
