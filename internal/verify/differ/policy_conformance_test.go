package differ

import (
	"context"
	"testing"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/workload"
)

// policySpec builds the conformance cell for one policy's representative
// variant: the 16-core chip under the micro workload with the online
// oracles armed at a tight cadence and the end-of-run audits on, so a
// leaked circuit entry, conservation violation or oracle breach fails the
// run rather than hiding in the aggregates.
func policySpec(v config.Variant) chip.Spec {
	s := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	s.WarmupOps = 500
	s.MeasureOps = 4000
	s.Audit = true
	s.Verify = true
	s.VerifyEvery = 8
	return s
}

// TestPolicyConformance enumerates every registered switching policy and
// runs its representative variant through the full gauntlet: a registered
// preset must exist (a policy without a runnable preset cannot be
// tested), the run must come back oracle-clean and audit-clean (which
// includes zero leaked circuit entries at quiesce), and the pooled,
// unpooled and dense-kernel legs must be bit-identical.
func TestPolicyConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("policy conformance runs full simulations")
	}
	names := config.PolicyNames()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 registered policies (5 paper mechanisms + profiled-hybrid + dynamic-vc), got %d: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			v, ok := config.VariantForPolicy(name)
			if !ok {
				t.Fatalf("policy %q has no registered representative variant; add one to config.Variants, PolicyVariants or Comparators", name)
			}
			if err := RunDifferential(context.Background(), policySpec(v), nil); err != nil {
				t.Fatalf("policy %q (variant %s): %v", name, v.Name, err)
			}
		})
	}
}

// TestPolicyConformanceQuiesce reruns each policy's representative cell
// without pooling and asserts directly that no circuit state survives the
// drain: the audit inside the run checks router tables and NI registries
// at quiesce, so an unclean teardown fails here with the offending
// router/entry named instead of as an aggregate divergence.
func TestPolicyConformanceQuiesce(t *testing.T) {
	if testing.Short() {
		t.Skip("policy conformance runs full simulations")
	}
	for _, name := range config.PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			v, ok := config.VariantForPolicy(name)
			if !ok {
				t.Fatalf("policy %q has no registered representative variant", name)
			}
			s := policySpec(v)
			s.NoPool = true
			if _, err := chip.RunCtx(context.Background(), s); err != nil {
				t.Fatalf("policy %q unpooled audit run: %v", name, err)
			}
		})
	}
}
