package differ

import (
	"context"
	"fmt"
	"testing"

	"reactivenoc/internal/chip"
)

// TestSpecFromSeedDeterministic pins the reproducer contract: a seed fully
// determines its spec, so a failing seed reported by cmd/rcverify (or a
// fuzz corpus entry) replays the exact same runs.
func TestSpecFromSeedDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := SpecFromSeed(seed), SpecFromSeed(seed)
		// Spec holds a func field (OnSample), so compare the rendering.
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d: specs differ:\n%+v\n%+v", seed, a, b)
		}
		if !a.Verify || !a.Audit {
			t.Fatalf("seed %d: generated spec must arm Verify and Audit", seed)
		}
	}
}

// TestDifferentialSeeds runs a few random specs through the full local
// differential matrix. cmd/rcverify scales this to hundreds of seeds; the
// test keeps CI to a handful.
func TestDifferentialSeeds(t *testing.T) {
	n := uint64(4)
	if testing.Short() {
		n = 2
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		spec := SpecFromSeed(seed)
		t.Run(spec.Variant.Name+"/"+spec.Workload.Name, func(t *testing.T) {
			t.Parallel()
			if err := RunDifferential(context.Background(), spec, nil); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// FuzzDifferential lets the fuzzer explore the seed space directly; any
// crasher it finds is a one-word reproducer for a determinism or invariant
// bug.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		spec := SpecFromSeed(seed)
		// Bound the fuzz iteration: one chip, short run, tight oracles.
		spec.WarmupOps, spec.MeasureOps = 150, 400
		spec.VerifyEvery = 8
		if err := RunDifferential(context.Background(), spec, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// FuzzParallelDifferential targets the parallel engine specifically: the
// fuzzer picks both the spec seed and the shard count, and the sharded run
// must be bit-identical to the sequential one. Committed corpus seeds pin
// the even, uneven and clamped (shards > mesh height) band shapes.
func FuzzParallelDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(7), uint8(3))
	f.Add(uint64(42), uint8(8))
	f.Fuzz(func(t *testing.T, seed uint64, shards uint8) {
		spec := SpecFromSeed(seed)
		spec.WarmupOps, spec.MeasureOps = 150, 400
		spec.VerifyEvery = 8
		spec.Shards = 1
		ref, err := chip.RunCtx(context.Background(), spec)
		if err != nil {
			t.Fatalf("seed %d: sequential leg: %v", seed, err)
		}
		par := spec
		// 2..9 covers even splits, uneven bands, and counts past the mesh
		// height (ClampShards folds those back to one row per band).
		par.Shards = 2 + int(shards%8)
		res, err := chip.RunCtx(context.Background(), par)
		if err != nil {
			t.Fatalf("seed %d shards %d: parallel leg: %v", seed, par.Shards, err)
		}
		if derr := Diff(ref, res, skipForLeg(true, true)); derr != nil {
			t.Fatalf("seed %d shards %d: %v", seed, par.Shards, derr)
		}
	})
}
