package differ

import (
	"context"
	"fmt"
	"testing"
)

// TestSpecFromSeedDeterministic pins the reproducer contract: a seed fully
// determines its spec, so a failing seed reported by cmd/rcverify (or a
// fuzz corpus entry) replays the exact same runs.
func TestSpecFromSeedDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		a, b := SpecFromSeed(seed), SpecFromSeed(seed)
		// Spec holds a func field (OnSample), so compare the rendering.
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d: specs differ:\n%+v\n%+v", seed, a, b)
		}
		if !a.Verify || !a.Audit {
			t.Fatalf("seed %d: generated spec must arm Verify and Audit", seed)
		}
	}
}

// TestDifferentialSeeds runs a few random specs through the full local
// differential matrix. cmd/rcverify scales this to hundreds of seeds; the
// test keeps CI to a handful.
func TestDifferentialSeeds(t *testing.T) {
	n := uint64(4)
	if testing.Short() {
		n = 2
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		spec := SpecFromSeed(seed)
		t.Run(spec.Variant.Name+"/"+spec.Workload.Name, func(t *testing.T) {
			t.Parallel()
			if err := RunDifferential(context.Background(), spec, nil); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}

// FuzzDifferential lets the fuzzer explore the seed space directly; any
// crasher it finds is a one-word reproducer for a determinism or invariant
// bug.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		spec := SpecFromSeed(seed)
		// Bound the fuzz iteration: one chip, short run, tight oracles.
		spec.WarmupOps, spec.MeasureOps = 150, 400
		spec.VerifyEvery = 8
		if err := RunDifferential(context.Background(), spec, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}
