// Package differ drives differential property testing: it generates random
// simulation specs and runs each one through configurations that must be
// observationally identical — the sparse activity-tracked kernel vs the
// dense tick-everything reference, the pooled hot path vs the
// garbage-collected reference, and (optionally) a local run vs a remote
// simulation service — asserting bit-identical results with the online
// invariant oracles armed on every leg. The golden determinism suite pins
// a handful of hand-picked cells; this subsystem searches the spec space
// between them.
package differ

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/stats"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/workload"
)

// RunFunc executes one spec — chip.RunCtx, or a remote client's Run.
type RunFunc func(ctx context.Context, spec chip.Spec) (*chip.Results, error)

// SpecFromSeed deterministically derives a random spec from a seed: chip
// size, variant (the paper's, the policy-lab presets and the related-work
// comparators), workload shape and scale, operation counts, and simulation
// seed all vary. The same seed always yields the same spec, so a failing
// seed is a complete reproducer.
func SpecFromSeed(seed uint64) chip.Spec {
	rng := sim.NewRNG(seed ^ 0x9e3779b97f4a7c15)

	// The variant pool freezes the pre-SDM composition explicitly — the
	// paper's variants, the two policy-lab presets, then comparators [1:3]
	// — so the first draw's modulus never changes and every committed
	// corpus seed keeps deriving the spec it always did. New variant
	// families join via draws appended at the end, never by widening this
	// pool (SweepVariants grows with each family and must not be used here).
	variants := append(append(config.Variants(), config.PolicyVariants()...),
		config.Comparators()[1:3]...)
	v := variants[rng.Intn(len(variants))]

	var w workload.Profile
	switch rng.Intn(4) {
	case 0:
		w = workload.Micro()
	case 1:
		w = workload.Micro().Scaled(0.5 + 7.5*rng.Float64())
	case 2:
		w, _ = workload.ByName("canneal")
	default:
		w = workload.Multiprogrammed()
	}

	c := config.Chip16()
	warm := int64(200 + rng.Intn(600))
	meas := int64(500 + rng.Intn(2000))
	if rng.Intn(8) == 0 {
		// The 64-core chip is ~10x the work per op; keep its share small
		// and its runs short so a campaign stays minutes, not hours.
		c = config.Chip64()
		warm, meas = 150, 400+int64(rng.Intn(400))
	}

	simSeed := rng.Uint64()%1_000_000 + 1

	// Adversarial-generator columns: ~1 in 4 seeds swaps the workload for
	// one of the registered generators (hotspot, transpose, tornado,
	// on/off bursts, phase-changing mixes), whose destination patterns and
	// burst windows exercise spec space the stationary profiles never
	// reach. The draws are appended after every pre-existing one so a
	// corpus seed from before this column derives the same chip, variant,
	// scale and simulation seed as it always did.
	if rng.Intn(4) == 0 {
		gens := tracefeed.Generators()
		w = gens[rng.Intn(len(gens))]
	}

	// SDM column: ~1 in 5 seeds swaps the variant for a spatial-division
	// preset, lane count drawn from {2, 4, 8}. Appended after every
	// pre-existing draw (including the generator swap above) so older
	// corpus seeds reproduce identically.
	if rng.Intn(5) == 0 {
		sdm := config.SDMVariants()
		v = sdm[rng.Intn(len(sdm))]
	}

	return chip.Spec{
		Chip: c, Variant: v, Workload: w,
		WarmupOps: warm, MeasureOps: meas,
		Seed:  simSeed,
		Audit: true, Verify: true, VerifyEvery: 16,
	}
}

// skipForLeg returns the metric-name filter for a leg: the pool's own
// bookkeeping legitimately differs between pooled and unpooled runs, and
// the kernel's activity gauge between sparse and dense scheduling. The
// parallel leg needs both exclusions — its per-shard pools recycle along
// different shard-local histories, and its activity gauge samples at
// barrier-aligned instants — while every architectural observable stays
// bit-identical.
func skipForLeg(noPool, dense bool) func(string) bool {
	return func(name string) bool {
		if noPool && strings.HasPrefix(name, "noc/pool_") {
			return true
		}
		if dense && name == "kernel/active" {
			return true
		}
		return false
	}
}

// Diff compares two results of the same spec and returns a description of
// every observable divergence (nil = bit-identical). skip filters metric
// names whose divergence is by design for this leg pair.
func Diff(a, b *chip.Results, skip func(string) bool) error {
	if skip == nil {
		skip = func(string) bool { return false }
	}
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if a.Cycles != b.Cycles {
		add("Cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.SimCycles != b.SimCycles {
		add("SimCycles: %d vs %d", a.SimCycles, b.SimCycles)
	}
	at, ar := a.Msgs.Totals()
	bt, br := b.Msgs.Totals()
	if at != bt || ar != br {
		add("messages: %d/%d vs %d/%d", at, ar, bt, br)
	}
	lat := func(name string, x, y *stats.Sample) {
		if x.N() != y.N() || x.Sum() != y.Sum() {
			add("%s latency: (%d, %.0f) vs (%d, %.0f)", name, x.N(), x.Sum(), y.N(), y.Sum())
		}
	}
	lat("request", &a.Lat.Requests.Network, &b.Lat.Requests.Network)
	lat("circuit-reply", &a.Lat.CircuitReplies.Network, &b.Lat.CircuitReplies.Network)
	lat("other-reply", &a.Lat.OtherReplies.Network, &b.Lat.OtherReplies.Network)
	if a.Events.LinkFlits != b.Events.LinkFlits {
		add("link flits: %d vs %d", a.Events.LinkFlits, b.Events.LinkFlits)
	}

	names := map[string]bool{}
	for name := range a.Metrics.Vals {
		names[name] = true
	}
	for name := range b.Metrics.Vals {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		if !skip(name) {
			sorted = append(sorted, name)
		}
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		if av, bv := a.Metrics.Value(name), b.Metrics.Value(name); av != bv {
			add("metric %s: %d vs %d", name, av, bv)
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("results diverge:\n  %s", strings.Join(diffs, "\n  "))
}

// Leg names one configuration of the differential matrix.
type Leg struct {
	Name string
	// mutate derives the leg's spec from the reference spec.
	mutate func(*chip.Spec)
	skip   func(string) bool
}

// Legs returns the local differential matrix: the reference leg is the
// pooled sparse kernel; each additional leg flips exactly one
// behaviour-neutral engine switch.
func Legs() []Leg {
	return []Leg{
		{Name: "dense-kernel", mutate: func(s *chip.Spec) { s.DenseKernel = true }, skip: skipForLeg(false, true)},
		{Name: "no-pool", mutate: func(s *chip.Spec) { s.NoPool = true }, skip: skipForLeg(true, false)},
		// Three row-band shards give uneven bands on every chip height, the
		// harshest shape for the barrier protocol. Specs the engine refuses
		// to shard (ideal mechanism, faults, tracing) degrade to a
		// sequential re-run, which still must match.
		{Name: "parallel=3", mutate: func(s *chip.Spec) { s.Shards = 3 }, skip: skipForLeg(true, true)},
	}
}

// RunDifferential runs spec through the reference configuration and every
// leg (plus remote, when non-nil, against the reference results) and
// returns the first divergence or run failure. All legs run with the
// invariant oracles armed, so a corruption that happens to cancel out in
// the aggregates still fails the seed.
func RunDifferential(ctx context.Context, spec chip.Spec, remote RunFunc) error {
	ref, err := chip.RunCtx(ctx, spec)
	if err != nil {
		return fmt.Errorf("reference leg: %w", err)
	}
	for _, leg := range Legs() {
		legSpec := spec
		leg.mutate(&legSpec)
		res, err := chip.RunCtx(ctx, legSpec)
		if err != nil {
			return fmt.Errorf("leg %s: %w", leg.Name, err)
		}
		if derr := Diff(ref, res, leg.skip); derr != nil {
			return fmt.Errorf("leg %s: %w", leg.Name, derr)
		}
	}
	if remote != nil {
		res, err := remote(ctx, spec)
		if err != nil {
			return fmt.Errorf("leg remote: %w", err)
		}
		if derr := Diff(ref, res, nil); derr != nil {
			return fmt.Errorf("leg remote: %w", derr)
		}
	}
	return nil
}
