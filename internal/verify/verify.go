// Package verify is the opt-in correctness layer of the simulator: a set of
// online invariant oracles that run on a configurable cadence inside the
// cycle loop and catch state corruption the moment it becomes observable,
// instead of cycles-to-never later as a hung run, a wrong metric, or a
// failed end-of-run audit. Each oracle is read-only and legal at any cycle
// boundary; violations name the oracle so a failure in a fault-injection
// run (internal/fault) or a differential run (verify/differ, cmd/rcverify)
// can assert exactly which detector fired.
package verify

import (
	"fmt"

	"reactivenoc/internal/coherence"
	"reactivenoc/internal/sim"
)

// A Violation is a broken invariant, attributed to the oracle that caught
// it and the cycle boundary it was observed at.
type Violation struct {
	Oracle string    // stable oracle name, e.g. "credit-conservation"
	Cycle  sim.Cycle // cycle boundary the check ran at
	Msg    string    // detail from the failing check
}

func (v *Violation) Error() string {
	return fmt.Sprintf("verify: oracle %q at cycle %d: %s", v.Oracle, v.Cycle, v.Msg)
}

// Config parameterizes a Suite.
type Config struct {
	Sys *coherence.System
	// ProgressStall is how many cycles of zero flit movement with a
	// non-quiescent network trigger the progress/deadlock oracle. It must
	// be below the run watchdog so a structural deadlock is diagnosed as a
	// waits-for cycle rather than a generic timeout.
	ProgressStall sim.Cycle
}

// Suite runs the invariant oracles against one system. It is stateful only
// for the progress oracle (last observed flit movement).
type Suite struct {
	cfg          Config
	lastMovement int64
	lastMoveAt   sim.Cycle
}

// NewSuite builds a suite for sys.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg}
}

// Check runs every online oracle at the cycle boundary now and returns the
// first violation, or nil. Cheap structural checks run before the graph
// walks so the most local diagnosis wins.
func (s *Suite) Check(now sim.Cycle) *Violation {
	sys := s.cfg.Sys
	if err := sys.Net.CheckCreditConservation(); err != nil {
		return &Violation{Oracle: "credit-conservation", Cycle: now, Msg: err.Error()}
	}
	if err := sys.Net.CheckFlitConservation(); err != nil {
		return &Violation{Oracle: "flit-conservation", Cycle: now, Msg: err.Error()}
	}
	if err := sys.Net.CheckVCOrder(); err != nil {
		return &Violation{Oracle: "vc-order", Cycle: now, Msg: err.Error()}
	}
	if mg := sys.Mgr; mg != nil {
		if err := mg.CheckTables(now); err != nil {
			return &Violation{Oracle: "circuit-table", Cycle: now, Msg: err.Error()}
		}
		if err := mg.CheckRegistry(now); err != nil {
			return &Violation{Oracle: "circuit-registry", Cycle: now, Msg: err.Error()}
		}
		if err := mg.CheckLeaks(now); err != nil {
			return &Violation{Oracle: "circuit-leak", Cycle: now, Msg: err.Error()}
		}
	}
	if err := sys.CheckSingleWriter(); err != nil {
		return &Violation{Oracle: "coherence", Cycle: now, Msg: err.Error()}
	}
	return s.checkProgress(now)
}

// checkProgress is the deadlock/livelock oracle: if no flit has been
// injected or ejected for ProgressStall cycles while the network still
// holds traffic, it builds the waits-for graph over the blocked virtual
// channels. A cycle in that graph is a structural deadlock and is dumped
// as such; no cycle means starvation or a livelock upstream of the
// network, reported with the most-starved channel.
func (s *Suite) checkProgress(now sim.Cycle) *Violation {
	mv := s.cfg.Sys.Net.FlitMovement()
	if mv != s.lastMovement || s.cfg.Sys.Net.Quiescent() {
		s.lastMovement = mv
		s.lastMoveAt = now
		return nil
	}
	if s.cfg.ProgressStall <= 0 || now-s.lastMoveAt < s.cfg.ProgressStall {
		return nil
	}
	desc, isCycle := s.cfg.Sys.Net.WaitsFor(now)
	oracle := "progress"
	if isCycle {
		oracle = "deadlock"
	}
	return &Violation{
		Oracle: oracle,
		Cycle:  now,
		Msg: fmt.Sprintf("no flit moved for %d cycles with traffic in flight: %s",
			now-s.lastMoveAt, desc),
	}
}

// CheckQuiescent runs the end-of-run audits under oracle attribution: the
// network conservation audit, the circuit-mechanism leak audit, and the
// full coherence audit, in that order. The system must be idle.
func (s *Suite) CheckQuiescent(now sim.Cycle) *Violation {
	sys := s.cfg.Sys
	if err := sys.Net.AuditQuiescent(); err != nil {
		return &Violation{Oracle: "credit-conservation", Cycle: now, Msg: err.Error()}
	}
	if mg := sys.Mgr; mg != nil {
		if err := mg.AuditQuiescent(now); err != nil {
			return &Violation{Oracle: "circuit-leak", Cycle: now, Msg: err.Error()}
		}
	}
	if err := sys.AuditCoherence(); err != nil {
		return &Violation{Oracle: "coherence", Cycle: now, Msg: err.Error()}
	}
	return nil
}
