package verify

import "reactivenoc/internal/fault"

// OraclesFor maps each injectable fault class to the oracle names allowed
// to catch it. The chaos suite and cmd/rcverify assert against this
// mapping, so every corruption class is pinned to its intended detector —
// a fault absorbed by the generic watchdog instead counts as a detection
// regression even though the run still failed.
func OraclesFor(c fault.Class) []string {
	switch c {
	case fault.FlipBuiltBit, fault.TruncateWindow:
		// The NI registry still advertises the circuit the router lost
		// (or whose window can no longer fit the reply): the
		// registry/table cross-check sees the divergence first.
		return []string{"circuit-registry"}
	case fault.DropUndoToken:
		// The stranded downstream entries are claimed by no record,
		// rider, or token: the leak oracle names them while the run is
		// still hot.
		return []string{"circuit-leak"}
	case fault.WithholdCredit:
		// A vanished credit breaks the per-link conservation sum on the
		// next check boundary.
		return []string{"credit-conservation"}
	case fault.StallLink:
		// A frozen link starves the fabric: zero flit movement with
		// traffic in flight trips the progress oracle, or the deadlock
		// oracle when the waits-for graph is genuinely cyclic.
		return []string{"progress", "deadlock"}
	}
	return nil
}
