package noc

import (
	"math/rand"
	"testing"
)

// TestRingEdgeCases drives the ring through the boundary conditions the hot
// path depends on: wrap-around at full capacity, growth on push-into-full,
// pop from empty, and length bookkeeping under interleaved push/pop.
func TestRingEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"wrap-around at full capacity", func(t *testing.T) {
			var r ring[int]
			r.reserve(8)
			if len(r.buf) != 8 {
				t.Fatalf("reserve(8): cap %d, want 8", len(r.buf))
			}
			// Rotate the head so pushes wrap past the end of the backing array.
			for i := 0; i < 5; i++ {
				r.Push(i)
			}
			for i := 0; i < 5; i++ {
				if got := r.Pop(); got != i {
					t.Fatalf("warm-up pop %d: got %d", i, got)
				}
			}
			// head is now 5; fill to capacity: indices 5,6,7,0,1,2,3,4.
			for i := 0; i < 8; i++ {
				r.Push(100 + i)
			}
			if r.Len() != 8 || len(r.buf) != 8 {
				t.Fatalf("full ring: len=%d cap=%d, want 8/8", r.Len(), len(r.buf))
			}
			for i := 0; i < 8; i++ {
				if got := r.Pop(); got != 100+i {
					t.Fatalf("wrapped pop %d: got %d, want %d", i, got, 100+i)
				}
			}
			if r.Len() != 0 {
				t.Fatalf("drained ring has len %d", r.Len())
			}
		}},
		{"push on full grows and preserves order", func(t *testing.T) {
			var r ring[int]
			r.reserve(8)
			// Wrap the contents so growth must linearize a split buffer.
			for i := 0; i < 6; i++ {
				r.Push(i)
			}
			for i := 0; i < 6; i++ {
				r.Pop()
			}
			for i := 0; i < 8; i++ {
				r.Push(i)
			}
			r.Push(8) // full -> grow
			if len(r.buf) != 16 {
				t.Fatalf("grown cap %d, want 16", len(r.buf))
			}
			if r.Len() != 9 {
				t.Fatalf("grown len %d, want 9", r.Len())
			}
			for i := 0; i <= 8; i++ {
				if got := r.Pop(); got != i {
					t.Fatalf("post-growth pop %d: got %d", i, got)
				}
			}
		}},
		{"pop on empty returns zero and stays sane", func(t *testing.T) {
			var r ring[*Flit]
			if got := r.Pop(); got != nil {
				t.Fatalf("pop of never-used ring: got %v, want nil", got)
			}
			if r.Len() != 0 {
				t.Fatalf("len after empty pop: %d", r.Len())
			}
			r.Push(&Flit{Seq: 1})
			r.Pop()
			if got := r.Pop(); got != nil {
				t.Fatalf("pop of drained ring: got %v, want nil", got)
			}
			if r.Len() != 0 {
				t.Fatalf("len after drained pop: %d, want 0", r.Len())
			}
			// The ring must still work after the underflow attempt.
			r.Push(&Flit{Seq: 2})
			if got := r.Pop(); got == nil || got.Seq != 2 {
				t.Fatalf("ring unusable after empty pop: got %v", got)
			}
		}},
		{"len under interleaved push and pop", func(t *testing.T) {
			var r ring[int]
			want := 0
			next, expect := 0, 0
			rng := rand.New(rand.NewSource(42))
			for step := 0; step < 10_000; step++ {
				if r.Len() != want {
					t.Fatalf("step %d: len=%d, want %d", step, r.Len(), want)
				}
				if rng.Intn(2) == 0 || want == 0 {
					r.Push(next)
					next++
					want++
				} else {
					if got := r.Pop(); got != expect {
						t.Fatalf("step %d: pop=%d, want %d", step, got, expect)
					}
					expect++
					want--
				}
			}
		}},
		{"pushfront and removeat keep FIFO order", func(t *testing.T) {
			var r ring[int]
			r.Push(2)
			r.Push(3)
			r.PushFront(1)
			r.Push(4)
			if got := r.At(0); got != 1 {
				t.Fatalf("At(0)=%d, want 1", got)
			}
			if got := r.RemoveAt(2); got != 3 {
				t.Fatalf("RemoveAt(2)=%d, want 3", got)
			}
			wantSeq := []int{1, 2, 4}
			for i, w := range wantSeq {
				if got := r.Pop(); got != w {
					t.Fatalf("pop %d: got %d, want %d", i, got, w)
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestSpecTableRandomInsertDelete is the backward-shift-deletion property
// test: after any sequence of put/del, every key inserted and not deleted is
// findable exactly once, every deleted key is absent, and the live count
// matches the model. Orphaning (a key stranded past an empty slot) shows up
// as a failed get; duplication shows up in the slot scan.
func TestSpecTableRandomInsertDelete(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tab specTable
		model := map[uint64]specRoute{}
		var keys []uint64
		for step := 0; step < 5_000; step++ {
			if rng.Intn(3) != 0 || len(keys) == 0 {
				// Small key range maximizes probe-chain collisions.
				id := uint64(rng.Intn(64) + 1)
				v := specRoute{outVC: rng.Intn(4)}
				if _, exists := model[id]; !exists {
					keys = append(keys, id)
				}
				model[id] = v
				tab.put(id, v)
			} else {
				i := rng.Intn(len(keys))
				id := keys[i]
				keys[i] = keys[len(keys)-1]
				keys = keys[:len(keys)-1]
				delete(model, id)
				tab.del(id)
			}
			checkSpecTable(t, &tab, model, seed, step)
			if t.Failed() {
				return
			}
		}
		// Drain completely: an emptied table must hold nothing.
		for _, id := range keys {
			tab.del(id)
			delete(model, id)
		}
		checkSpecTable(t, &tab, model, seed, -1)
		if tab.live() != 0 {
			t.Fatalf("seed %d: drained table has %d live entries", seed, tab.live())
		}
	}
}

// checkSpecTable asserts table-vs-model agreement and scans the raw slots
// for duplicates or keys missing from the model.
func checkSpecTable(t *testing.T, tab *specTable, model map[uint64]specRoute, seed int64, step int) {
	t.Helper()
	if tab.live() != len(model) {
		t.Errorf("seed %d step %d: live=%d, model=%d", seed, step, tab.live(), len(model))
		return
	}
	for id, want := range model {
		got, ok := tab.get(id)
		if !ok {
			t.Errorf("seed %d step %d: key %d orphaned (in model, not findable)", seed, step, id)
			return
		}
		if got != want {
			t.Errorf("seed %d step %d: key %d: got %+v, want %+v", seed, step, id, got, want)
			return
		}
	}
	seen := map[uint64]int{}
	for _, k := range tab.keys {
		if k != 0 {
			seen[k]++
		}
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("seed %d step %d: key %d duplicated in %d slots", seed, step, k, n)
			return
		}
		if _, ok := model[k]; !ok {
			t.Errorf("seed %d step %d: key %d present in table but deleted", seed, step, k)
			return
		}
	}
}
