package noc

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// flatHarness drives a network whose routers and NIs are registered with
// the kernel individually (activity-tracked), unlike harness which ticks
// the network monolithically.
type flatHarness struct {
	net       *Network
	kernel    *sim.Kernel
	delivered []*Message
}

func newFlatHarness(cfg NetConfig, dense bool) *flatHarness {
	h := &flatHarness{net: NewNetwork(cfg, nil, nil), kernel: sim.NewKernel()}
	h.kernel.SetDense(dense)
	for id := mesh.NodeID(0); int(id) < cfg.Mesh.Nodes(); id++ {
		h.net.NI(id).SetReceiver(func(m *Message, now sim.Cycle) {
			h.delivered = append(h.delivered, m)
		})
	}
	h.net.Register(h.kernel)
	return h
}

// randomTraffic enqueues the same pseudo-random message mix into any
// harness-like sender, returning the messages for later comparison.
func randomTraffic(m mesh.Mesh, send func(*Message), seed uint64) []*Message {
	rng := sim.NewRNG(seed)
	var msgs []*Message
	for i := 0; i < 60; i++ {
		src := mesh.NodeID(rng.Intn(m.Nodes()))
		dst := mesh.NodeID(rng.Intn(m.Nodes()))
		vn := rng.Intn(NumVNs)
		size := 1
		if rng.Bool(0.5) {
			size = 5
		}
		msgs = append(msgs, msg(src, dst, vn, size))
	}
	for _, mg := range msgs {
		send(mg)
	}
	return msgs
}

// TestActivityTrackedMatchesMonolithic is the noc-layer half of the golden
// determinism argument: registering routers and NIs individually with wake
// wiring must reproduce the monolithic engine's per-message timestamps
// bit for bit, for both sparse and dense kernel modes.
func TestActivityTrackedMatchesMonolithic(t *testing.T) {
	m := mesh.New(4, 4)
	for _, seed := range []uint64{1, 42, 9000} {
		ref := newHarness(BaselineConfig(m), nil, nil)
		refMsgs := randomTraffic(m, func(mg *Message) { ref.net.Send(mg, 0) }, seed)
		ref.runUntilQuiet(t, 20000)

		for _, dense := range []bool{false, true} {
			got := newFlatHarness(BaselineConfig(m), dense)
			gotMsgs := randomTraffic(m, func(mg *Message) { got.net.Send(mg, 0) }, seed)
			if _, ok := got.kernel.RunUntil(got.net.Quiescent, 20000); !ok {
				t.Fatalf("seed %d dense=%v: flattened network never drained", seed, dense)
			}
			if len(got.delivered) != len(ref.delivered) {
				t.Fatalf("seed %d dense=%v: delivered %d, ref %d",
					seed, dense, len(got.delivered), len(ref.delivered))
			}
			for i := range refMsgs {
				r, g := refMsgs[i], gotMsgs[i]
				if g.EnqueuedAt != r.EnqueuedAt || g.InjectedAt != r.InjectedAt || g.DeliveredAt != r.DeliveredAt {
					t.Fatalf("seed %d dense=%v msg %d: (enq,inj,del)=(%d,%d,%d), ref (%d,%d,%d)",
						seed, dense, i, g.EnqueuedAt, g.InjectedAt, g.DeliveredAt,
						r.EnqueuedAt, r.InjectedAt, r.DeliveredAt)
				}
			}
			if *got.net.Events() != *ref.net.Events() {
				t.Fatalf("seed %d dense=%v: power events diverged:\n got %+v\n ref %+v",
					seed, dense, *got.net.Events(), *ref.net.Events())
			}
		}
	}
}

// TestActivityTrackerActuallySkips asserts the scheduler delivers its whole
// point: once traffic drains, every component sleeps, and over a mostly
// idle run far fewer component ticks execute than dense mode would.
func TestActivityTrackerActuallySkips(t *testing.T) {
	m := mesh.New(4, 4)
	h := newFlatHarness(BaselineConfig(m), false)
	h.net.Send(msg(0, 15, VNRequest, 1), 0)
	h.kernel.Run(500)
	if !h.net.Quiescent() {
		t.Fatal("single message should have drained")
	}
	if h.kernel.ActiveCount() != 0 {
		t.Fatalf("%d components still awake after drain", h.kernel.ActiveCount())
	}
	denseTicks := int64(h.kernel.Components()) * h.kernel.Now()
	if got := h.kernel.Ticks(); got*4 > denseTicks {
		t.Fatalf("executed %d of %d dense ticks; expected a >4x skip on an idle mesh", got, denseTicks)
	}

	// A fresh message wakes only the components that see it.
	h.net.Send(msg(0, 15, VNRequest, 1), h.kernel.Now())
	if h.kernel.ActiveCount() == 0 {
		t.Fatal("send did not wake the source NI")
	}
	h.kernel.Run(500)
	if h.kernel.ActiveCount() != 0 {
		t.Fatal("mesh did not settle after the second message")
	}
}

// TestEventCountersDescribe checks the power-event counters surface through
// a metrics registry.
func TestEventCountersDescribe(t *testing.T) {
	h := newFlatHarness(BaselineConfig(mesh.New(4, 1)), false)
	reg := sim.NewRegistry()
	h.net.DescribeMetrics(reg)
	h.net.Send(msg(0, 3, VNRequest, 1), 0)
	h.kernel.Run(100)
	if got := reg.Value("noc/link_flits"); got != h.net.Events().LinkFlits || got == 0 {
		t.Fatalf("registry link_flits %d, events %d", got, h.net.Events().LinkFlits)
	}
	if reg.Value("noc/buf_writes") != h.net.Events().BufWrites {
		t.Fatal("registry buf_writes out of sync")
	}
}
