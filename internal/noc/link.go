package noc

import (
	"fmt"

	"reactivenoc/internal/sim"
)

// linkDelay is the number of cycles after the sending cycle at which a flit
// becomes visible at the receiving router: one cycle on the wire (Table 4:
// 1-cycle links) plus the receiving register. Together with the 4-stage
// pipeline this yields the paper's 5 cycles/hop for buffered traffic and
// 2 cycles/hop for circuit traffic (1 cycle in the router + the link).
const linkDelay = 2

// Link is a unidirectional flit pipeline between a router output port and
// the neighbouring input port (or an NI). At most one flit enters per cycle.
type Link struct {
	q ring[linkSlot]
	// lastSend guards the one-flit-per-cycle physical constraint.
	lastSend sim.Cycle
	hasSent  bool
	// wake revives the receiving component when a flit enters the wire, so
	// the activity-tracked kernel ticks it while anything is in flight.
	wake func()
	// staged links cross a shard boundary under the parallel engine: sends
	// accumulate in pending (owned by the sending shard) and only become
	// visible to the receiver — queue entry and wake-up alike — when the
	// coordinator calls Flush at the phase barrier. Because receipt is
	// governed by readyAt (always >= send cycle + linkDelay), deferring the
	// hand-off to the end of the sending cycle is visibility-identical to
	// the sequential engine's immediate push.
	staged  bool
	pending []linkSlot
	// lanes > 1 divides the wire into equal-width SDM lanes: a flit on a
	// 1/lanes-width lane serializes over lanes cycles, so its traversal
	// stretches by lanes-1 cycles and the lane refuses a new flit until the
	// previous one has fully left the sender (laneNext). Only the sending
	// shard touches laneNext, so the lane clocks stay race-free when the
	// link itself is staged across a shard boundary.
	lanes    int
	laneNext []sim.Cycle
}

// SetWake installs the receiver's wake callback (nil clears it).
func (l *Link) SetWake(fn func()) { l.wake = fn }

// SetLanes divides the link into n equal-width lanes (n <= 1 leaves it
// undivided). Flits carry their lane in Flit.Lane; senders must check
// LaneFree before driving a divided link.
func (l *Link) SetLanes(n int) {
	if n <= 1 {
		l.lanes, l.laneNext = 0, nil
		return
	}
	l.lanes = n
	l.laneNext = make([]sim.Cycle, n)
}

// Lanes returns the lane count (0 or 1 = undivided).
func (l *Link) Lanes() int { return l.lanes }

// LaneFree reports whether the given lane can accept a flit at cycle now.
// Undivided links are always free — the one-flit-per-cycle rule is enforced
// by Send itself.
func (l *Link) LaneFree(lane int, now sim.Cycle) bool {
	if l.lanes <= 1 {
		return true
	}
	return l.laneNext[lane] <= now
}

// SetStaged marks the link as crossing a shard boundary: sends are staged
// until Flush instead of landing in the receiver-visible queue.
func (l *Link) SetStaged(s bool) { l.staged = s }

// Flush publishes staged sends to the receiver and wakes it. Only the
// coordinator calls this, at the phase barrier, while no shard worker runs.
func (l *Link) Flush() {
	if len(l.pending) == 0 {
		return
	}
	for i := range l.pending {
		l.q.Push(l.pending[i])
		l.pending[i] = linkSlot{}
	}
	l.pending = l.pending[:0]
	if l.wake != nil {
		l.wake()
	}
}

type linkSlot struct {
	f       *Flit
	readyAt sim.Cycle
}

// Send puts f on the wire during cycle now. It panics if the link is driven
// twice in one cycle, which would indicate an allocator bug.
func (l *Link) Send(f *Flit, now sim.Cycle) { l.SendDelayed(f, now, 0) }

// SendDelayed puts f on the wire with extra cycles of traversal delay on
// top of the link latency — the fault injector's link-stall seam. Recv pops
// in FIFO order, so a delayed flit also holds back everything sent after it.
func (l *Link) SendDelayed(f *Flit, now sim.Cycle, extra sim.Cycle) {
	if l.hasSent && l.lastSend == now {
		panic(fmt.Sprintf("noc: link driven twice in cycle %d", now))
	}
	l.hasSent = true
	l.lastSend = now
	if l.lanes > 1 {
		if f.Lane < 0 || f.Lane >= l.lanes {
			panic(fmt.Sprintf("noc: flit on lane %d of a %d-lane link", f.Lane, l.lanes))
		}
		if l.laneNext[f.Lane] > now {
			panic(fmt.Sprintf("noc: lane %d driven at cycle %d while busy until %d",
				f.Lane, now, l.laneNext[f.Lane]))
		}
		l.laneNext[f.Lane] = now + sim.Cycle(l.lanes)
		// The 1/lanes-width lane needs lanes cycles to serialize the flit;
		// the first sub-flit spends linkDelay on the wire, the last arrives
		// lanes-1 cycles later.
		extra += sim.Cycle(l.lanes - 1)
	}
	slot := linkSlot{f: f, readyAt: now + linkDelay + extra}
	if l.staged {
		l.pending = append(l.pending, slot)
		return
	}
	l.q.Push(slot)
	if l.wake != nil {
		l.wake()
	}
}

// Recv returns the flit that completes traversal at cycle now, or nil.
func (l *Link) Recv(now sim.Cycle) *Flit {
	if l.q.Len() == 0 || l.q.Front().readyAt > now {
		return nil
	}
	return l.q.Pop().f
}

// Busy reports whether any flit is still in flight.
func (l *Link) Busy() bool { return l.q.Len() > 0 }

// CreditLink carries flow-control credits (and piggybacked circuit-undo
// tokens) in the direction opposite to its paired flit link. Credits have
// the same wire latency as flits.
type CreditLink struct {
	q    ring[creditSlot]
	wake func()
	// staged/pending mirror Link: boundary credits are published at the
	// phase barrier in send order.
	staged  bool
	pending []creditSlot
}

// SetWake installs the receiver's wake callback (nil clears it).
func (l *CreditLink) SetWake(fn func()) { l.wake = fn }

// SetStaged marks the credit link as crossing a shard boundary.
func (l *CreditLink) SetStaged(s bool) { l.staged = s }

// Flush publishes staged credits to the receiver and wakes it.
func (l *CreditLink) Flush() {
	if len(l.pending) == 0 {
		return
	}
	for i := range l.pending {
		l.q.Push(l.pending[i])
		l.pending[i] = creditSlot{}
	}
	l.pending = l.pending[:0]
	if l.wake != nil {
		l.wake()
	}
}

type creditSlot struct {
	c       Credit
	readyAt sim.Cycle
}

// Send puts credit c on the wire during cycle now. Multiple credits may
// share a cycle: a buffer credit and a piggybacked undo, or undo tokens for
// distinct circuits, travel on dedicated sideband wires.
func (l *CreditLink) Send(c Credit, now sim.Cycle) {
	slot := creditSlot{c: c, readyAt: now + linkDelay}
	if l.staged {
		l.pending = append(l.pending, slot)
		return
	}
	l.q.Push(slot)
	if l.wake != nil {
		l.wake()
	}
}

// Recv pops the next credit arriving at or before cycle now. Receivers loop
// until ok is false; the pop-one shape keeps the drain allocation-free
// (the old batch API built a fresh []Credit per cycle per port).
func (l *CreditLink) Recv(now sim.Cycle) (Credit, bool) {
	if l.q.Len() == 0 || l.q.Front().readyAt > now {
		return Credit{}, false
	}
	return l.q.Pop().c, true
}

// Busy reports whether any credit is still in flight.
func (l *CreditLink) Busy() bool { return l.q.Len() > 0 }
