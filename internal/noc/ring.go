package noc

// ring is a growable power-of-two circular FIFO. The hot-path queues of the
// network (VC buffers, bypass latches, link pipelines, NI injection queues)
// all pop from the head, which with a plain slice (`q = q[1:]`) both grows
// the backing array without bound and keeps every popped element reachable.
// A ring reuses its slots, zeroes a slot on pop so popped pointers become
// collectable, and — once warm — never allocates again.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

// reserve pre-sizes the ring for at least c elements (rounded up to a power
// of two), so queues with a known bound (a VC buffer holds at most BufDepth
// flits) never grow at runtime.
func (r *ring[T]) reserve(c int) {
	if c <= len(r.buf) {
		return
	}
	r.grow(c)
}

func (r *ring[T]) grow(min int) {
	c := len(r.buf) * 2
	if c < 8 {
		c = 8
	}
	for c < min {
		c *= 2
	}
	nb := make([]T, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// Len returns the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow(r.n + 1)
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PushFront prepends v at the head (setup probes overtake the NI queue).
func (r *ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow(r.n + 1)
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// Front returns the head element without removing it; the caller must have
// checked Len. For pointer element types an empty ring returns nil instead.
func (r *ring[T]) Front() T {
	var zero T
	if r.n == 0 {
		return zero
	}
	return r.buf[r.head]
}

// Pop removes and returns the head element, zeroing its slot so the ring
// does not pin popped pointers. Popping an empty ring returns the zero
// value and leaves the ring empty — every hot-path caller checks Len
// first, so the guard costs one predictable branch and turns a would-be
// state corruption (n going negative) into a harmless no-op.
func (r *ring[T]) Pop() T {
	var zero T
	if r.n == 0 {
		return zero
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the i-th element from the head (0 = front).
func (r *ring[T]) At(i int) T {
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// RemoveAt removes and returns the i-th element, shifting later elements
// forward (queue-overtake picks from the first few slots, so the shift is
// short in practice).
func (r *ring[T]) RemoveAt(i int) T {
	if i == 0 {
		return r.Pop()
	}
	mask := len(r.buf) - 1
	v := r.buf[(r.head+i)&mask]
	for j := i; j < r.n-1; j++ {
		r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
	}
	var zero T
	r.buf[(r.head+r.n-1)&mask] = zero
	r.n--
	return v
}
