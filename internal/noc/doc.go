// Package noc implements the baseline network on chip of the paper's
// Table 4: a 2-D mesh of 4-stage wormhole routers with two virtual networks
// (requests and replies), two virtual channels per virtual network, 5-flit
// buffers, credit-based flow control, 16-byte flits and 1-cycle links.
//
// The package is mechanism-agnostic: the Reactive Circuits layer
// (internal/core) plugs in through the CircuitHandler and NIHook interfaces
// without noc knowing anything about reservation policies.
//
// # Pipeline and timing reference
//
// The router implements the paper's Table 4 microarchitecture. A buffered
// head flit crosses a router in four stages plus the link:
//
//	cycle t     BW+RC   flit written into its input VC, route computed
//	cycle t+1   VA      two-phase round-robin VC allocation
//	                    (circuit reservation happens here, in parallel)
//	cycle t+2   SA      two-phase round-robin switch allocation
//	cycle t+3   ST      crossbar traversal, flit put on the link
//	cycle t+4   LT      link traversal
//	cycle t+5           visible at the next router's input
//
// giving the paper's five cycles per hop for requests. Body flits skip
// RC/VA and pipeline one per cycle behind the head. A reply whose reactive
// circuit is built skips everything:
//
//	cycle t     circuit check hits -> crossbar the same cycle
//	cycle t+1   LT
//	cycle t+2           visible at the next router
//
// two cycles per hop, one cycle inside the router — "it can go straight
// through the crossbar leaving the router in just one cycle".
//
// Within Router.Tick the stage order is: credit reception (including
// piggybacked circuit-undo tokens), flit reception (with the Figure-3
// circuit check at the input units), switch traversal executing last
// cycle's grants (circuit flits first — they own the crossbar; in the
// speculative comparator the bypass queue runs last instead), VC
// allocation, then switch allocation for the next cycle. All inter-router
// channels are one-cycle pipelines, so the tick order of routers within a
// cycle is observationally irrelevant.
//
// Flow control is credit-based with one credit per buffer slot. The
// complete-circuit variants remove the buffer from the circuit VC
// entirely: flits on a complete circuit are never stored, which is what
// shrinks the router (Table 6) — and the router panics if one would have
// to wait, turning the paper's central invariant into an executable
// assertion.
package noc
