package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
)

// AuditQuiescent verifies the network's conservation invariants at a
// quiescent point: every buffer empty, every credit returned, every output
// VC released, no latched or speculative state left behind. A non-nil
// error means simulator state was corrupted or leaked during the run.
func (n *Network) AuditQuiescent() error {
	if !n.Quiescent() {
		return fmt.Errorf("noc: audit requires a quiescent network")
	}
	for _, r := range n.routers {
		if err := r.audit(); err != nil {
			return err
		}
	}
	for _, ni := range n.nis {
		for vn := 0; vn < NumVNs; vn++ {
			for vc, cr := range ni.credits[vn] {
				if n.cfg.VCBuffered(vn, vc) && cr != n.cfg.BufDepth {
					return fmt.Errorf("noc: NI %d holds %d/%d credits for vn%d vc%d",
						ni.id, cr, n.cfg.BufDepth, vn, vc)
				}
			}
		}
	}
	return nil
}

// DumpState renders every non-idle structure in the network — buffered
// flits, latched bypasses, held output VCs, queued NI messages — for stall
// diagnostics.
func (n *Network) DumpState() string {
	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if p := r.in[d]; p != nil {
				for i := 0; i < p.byQ.Len(); i++ {
					e := p.byQ.At(i)
					add("router %d in %v: bypass flit msg=%d seq=%d out=%v\n",
						r.id, d, e.f.Msg.ID, e.f.Seq, e.out)
				}
				for vn := range p.vcs {
					for vci, vc := range p.vcs[vn] {
						if vc.buf.Len() > 0 {
							f := vc.buf.Front()
							add("router %d in %v vn%d vc%d: %d flits, front msg=%d seq=%d state=%d route=%v\n",
								r.id, d, vn, vci, vc.buf.Len(), f.Msg.ID, f.Seq, vc.state, vc.route)
						}
					}
				}
			}
			if op := r.out[d]; op != nil {
				for vn := range op.owner {
					for vc, o := range op.owner[vn] {
						if o.valid {
							add("router %d out %v vn%d vc%d: owned by in=%v vc%d, credits=%d\n",
								r.id, d, vn, vc, o.in, o.vc, op.credits[vn][vc])
						}
					}
				}
			}
		}
	}
	for _, ni := range n.nis {
		if q := ni.QueueLen(); q > 0 {
			add("NI %d: %d messages queued/draining\n", ni.id, q)
		}
	}
	if len(b) == 0 {
		return "network idle\n"
	}
	return string(b)
}

// audit checks one router's invariants.
func (r *Router) audit() error {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if p := r.in[d]; p != nil {
			if p.byQ.Len() != 0 {
				return fmt.Errorf("noc: router %d port %v retains %d bypass flits", r.id, d, p.byQ.Len())
			}
			if p.spec.live() != 0 {
				return fmt.Errorf("noc: router %d port %v retains %d speculative routes", r.id, d, p.spec.live())
			}
			if p.occupancy != 0 {
				return fmt.Errorf("noc: router %d port %v occupancy %d at quiescence", r.id, d, p.occupancy)
			}
			for vn := range p.vcs {
				for vci, vc := range p.vcs[vn] {
					if vc.buf.Len() != 0 {
						return fmt.Errorf("noc: router %d port %v vn%d vc%d retains %d flits",
							r.id, d, vn, vci, vc.buf.Len())
					}
					if vc.state != vcIdle {
						return fmt.Errorf("noc: router %d port %v vn%d vc%d stuck in state %d",
							r.id, d, vn, vci, vc.state)
					}
				}
			}
		}
		if op := r.out[d]; op != nil {
			for vn := range op.owner {
				for vc, o := range op.owner[vn] {
					if o.valid {
						return fmt.Errorf("noc: router %d output %v vn%d vc%d still owned",
							r.id, d, vn, vc)
					}
					if d != mesh.Local && r.cfg.VCBuffered(vn, vc) &&
						op.credits[vn][vc] != r.cfg.BufDepth {
						return fmt.Errorf("noc: router %d output %v vn%d vc%d holds %d/%d credits",
							r.id, d, vn, vc, op.credits[vn][vc], r.cfg.BufDepth)
					}
				}
			}
		}
		if g := r.grants[d]; g.valid {
			return fmt.Errorf("noc: router %d retains a grant for output %v", r.id, d)
		}
	}
	return nil
}
