package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// vcState is the input-VC state machine of a wormhole router: a VC is idle,
// has a routed head flit waiting for VC allocation, or is actively streaming
// a message through an allocated output VC.
type vcState uint8

const (
	vcIdle vcState = iota
	vcWaitVA
	vcActive
)

// inVC is the per-virtual-channel state at an input unit: buffer, global
// state (G), route (R) and output VC (O) — the fields of Figure 2.
type inVC struct {
	buf          ring[*Flit] // fixed capacity BufDepth; credits bound occupancy
	state        vcState
	route        mesh.Dir
	outVC        int
	vaEligibleAt sim.Cycle
	saEligibleAt sim.Cycle
}

func (v *inVC) front() *Flit { return v.buf.Front() }

// bypassEntry latches a flit crossing the router in a single cycle: on a
// reactive circuit, or speculatively in the comparator router. It departs
// in the arrival cycle unless the variant allows it to wait (fragmented and
// ideal circuits keep buffers; speculative flits hold their allocated VC).
type bypassEntry struct {
	f     *Flit
	vn    int
	out   mesh.Dir
	outVC int
	arrVC int // VC the flit arrived on, for the credit return
	spec  bool
}

// specRoute is the ephemeral per-message state of a speculative traversal:
// the output the head grabbed, followed by its body flits.
type specRoute struct {
	out   mesh.Dir
	outVC int
}

type inputPort struct {
	dir    mesh.Dir
	link   *Link       // flits from the upstream router or NI
	credit *CreditLink // credits we send upstream
	vcs    [NumVNs][]*inVC
	byQ    ring[bypassEntry]
	spec   specTable // routes of messages speculating through this port, by msg ID
	// occupancy counts buffered flits across the port's VCs, letting the
	// allocator stages skip idle ports.
	occupancy int
}

// outOwner records which input VC holds an output VC (fields I of Figure 2).
type outOwner struct {
	valid bool
	in    mesh.Dir
	vn    int
	vc    int
}

type outputPort struct {
	dir     mesh.Dir
	link    *Link       // flits to the downstream router or NI
	credit  *CreditLink // credits arriving from downstream
	owner   [NumVNs][]outOwner
	credits [NumVNs][]int
}

// grant is one switch-allocator decision, executed by switch traversal in
// the following cycle.
type grant struct {
	valid bool
	in    mesh.Dir
	vn    int
	vc    int
}

// Router is the 4-stage wormhole router of Table 4/Figure 2, optionally
// extended with the Reactive Circuits hooks of Figure 3.
type Router struct {
	id      mesh.NodeID
	cfg     *NetConfig
	handler CircuitHandler
	ev      *PowerEvents
	fault   FaultHook

	in  [mesh.NumDirs]*inputPort
	out [mesh.NumDirs]*outputPort

	// grants holds the switch allocations computed in the previous cycle.
	grants [mesh.NumDirs]grant

	// Round-robin arbiter pointers.
	vaPtr    [mesh.NumDirs]int // per output port, over requesting input VCs
	saInPtr  [mesh.NumDirs]int // per input port, over its VCs
	saOutPtr [mesh.NumDirs]int // per output port, over input ports
	byPtr    int               // over input ports, for bypass priority

	// Allocation-free scratch state for the allocator stages.
	vaReqs  [mesh.NumDirs][]vaReq
	vaMask  []bool
	saReq   []bool
	saSlots []vcSlot // static enumeration of (vn, vc) pairs

	// flitsOut counts flits sent per output port, for utilization maps.
	flitsOut [mesh.NumDirs]int64
}

// FlitsOut returns the number of flits this router sent through output
// port d over the run (Local = ejections to the NI).
func (r *Router) FlitsOut(d mesh.Dir) int64 { return r.flitsOut[d] }

// vaReq is one VC-allocation request in flight through the two phases.
type vaReq struct {
	in   mesh.Dir
	vn   int
	vc   int
	cand int // requested output VC
}

type vcSlot struct{ vn, vc int }

func newRouter(id mesh.NodeID, cfg *NetConfig, handler CircuitHandler, ev *PowerEvents) *Router {
	r := &Router{id: id, cfg: cfg, handler: handler, ev: ev}
	for vn := 0; vn < NumVNs; vn++ {
		for vc := 0; vc < cfg.VCsPerVN[vn]; vc++ {
			r.saSlots = append(r.saSlots, vcSlot{vn: vn, vc: vc})
		}
	}
	r.saReq = make([]bool, len(r.saSlots))
	return r
}

// ID returns the router's node id.
func (r *Router) ID() mesh.NodeID { return r.id }

// addInput wires an input port (nil links are mesh edges and stay absent).
func (r *Router) addInput(d mesh.Dir, link *Link, credit *CreditLink) {
	p := &inputPort{dir: d, link: link, credit: credit}
	for vn := 0; vn < NumVNs; vn++ {
		p.vcs[vn] = make([]*inVC, r.cfg.VCsPerVN[vn])
		for vc := range p.vcs[vn] {
			v := &inVC{outVC: -1}
			if r.cfg.VCBuffered(vn, vc) {
				v.buf.reserve(r.cfg.BufDepth)
			}
			p.vcs[vn][vc] = v
		}
	}
	r.in[d] = p
}

func (r *Router) addOutput(d mesh.Dir, link *Link, credit *CreditLink) {
	p := &outputPort{dir: d, link: link, credit: credit}
	for vn := 0; vn < NumVNs; vn++ {
		p.owner[vn] = make([]outOwner, r.cfg.VCsPerVN[vn])
		p.credits[vn] = make([]int, r.cfg.VCsPerVN[vn])
		for vc := range p.credits[vn] {
			if r.cfg.VCBuffered(vn, vc) {
				p.credits[vn][vc] = r.cfg.BufDepth
			}
		}
	}
	r.out[d] = p
}

// SendUndoCredit emits a circuit-undo token on the credit wire of input
// port in, toward the circuit destination. The Reactive Circuits layer uses
// it to start teardown walks ("we send the data of the circuit to be undone
// towards the circuit destination using credits").
func (r *Router) SendUndoCredit(in mesh.Dir, tok *UndoToken, now sim.Cycle) {
	p := r.in[in]
	if p == nil || p.credit == nil {
		return // the walk ends at an NI boundary
	}
	p.credit.Send(Credit{Pure: true, UndoCircuit: tok}, now)
	r.ev.CreditsSent++
}

// Tick advances the router one cycle. Stage order inside a cycle: credit
// and flit reception, switch traversal (executing last cycle's grants, with
// circuit flits taking priority), VC allocation, then switch allocation for
// the next cycle.
func (r *Router) Tick(now sim.Cycle) {
	r.recvCredits(now)
	r.recvFlits(now)
	r.stage3ST(now)
	r.stage2VA(now)
	r.stage3SAAlloc(now)
}

// recvCredits drains arriving credits, returning buffer slots and
// processing piggybacked circuit-undo tokens.
func (r *Router) recvCredits(now sim.Cycle) {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		op := r.out[d]
		if op == nil || op.credit == nil {
			continue
		}
		for {
			c, ok := op.credit.Recv(now)
			if !ok {
				break
			}
			if c.UndoCircuit != nil && r.handler != nil {
				if r.fault != nil && r.fault.DropUndo(r.id, c.UndoCircuit, now) {
					// Injected fault: the token vanishes and the teardown
					// walk ends here. A buffer credit sharing the wire is
					// still honoured below.
				} else if fwd, ok := r.handler.OnUndo(r.id, c.UndoCircuit, d, now); ok && fwd != mesh.Local {
					r.SendUndoCredit(fwd, c.UndoCircuit, now)
				}
			}
			if !c.Pure {
				op.credits[c.VN][c.VC]++
				if op.credits[c.VN][c.VC] > r.cfg.BufDepth {
					panic(fmt.Sprintf("noc: router %d credit overflow on %v vn%d vc%d", r.id, d, c.VN, c.VC))
				}
			}
		}
	}
}

// recvFlits performs stage 1 (routing and input buffering) plus the
// Figure-3 circuit check at the input units.
func (r *Router) recvFlits(now sim.Cycle) {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		p := r.in[d]
		if p == nil || p.link == nil {
			continue
		}
		f := p.link.Recv(now)
		if f == nil {
			continue
		}
		f.arrivedAt = now
		if r.handler != nil && f.Msg.VN == VNReply {
			r.ev.CircuitChecks++
			if out, outVC, ok := r.handler.Bypass(r.id, f, d, now); ok {
				p.byQ.Push(bypassEntry{f: f, vn: VNReply, out: out, outVC: outVC, arrVC: f.VC})
				continue
			}
		}
		if r.cfg.Speculative && r.trySpeculate(p, f, now) {
			continue
		}
		vn := f.Msg.VN
		if !r.cfg.VCBuffered(vn, f.VC) {
			panic(fmt.Sprintf("noc: router %d: flit of msg %d arrived on unbuffered vc%d without a circuit", r.id, f.Msg.ID, f.VC))
		}
		vc := p.vcs[vn][f.VC]
		if vc.buf.Len() >= r.cfg.BufDepth {
			panic(fmt.Sprintf("noc: router %d: buffer overflow at %v vn%d vc%d (credit protocol violated)", r.id, d, vn, f.VC))
		}
		vc.buf.Push(f)
		p.occupancy++
		r.ev.BufWrites++
		if f.Head && vc.buf.Len() == 1 && vc.state == vcIdle {
			r.startMessage(vc, f, 1, now)
		}
	}
}

// trySpeculate attempts the single-cycle comparator path: a head flit
// whose input VC is idle grabs a free output VC and crosses the router
// this cycle with lowest crossbar priority; its body flits follow through
// the same ephemeral route. On any missing resource the flit takes the
// normal pipeline.
func (r *Router) trySpeculate(p *inputPort, f *Flit, now sim.Cycle) bool {
	msg := f.Msg
	if sr, ok := p.spec.get(msg.ID); ok { // body/tail of a speculating message
		p.byQ.Push(bypassEntry{f: f, vn: msg.VN, out: sr.out, outVC: sr.outVC, arrVC: f.VC, spec: true})
		return true
	}
	if !f.Head {
		return false
	}
	vc := p.vcs[msg.VN][f.VC]
	if vc.state != vcIdle || vc.buf.Len() > 0 {
		return false // older flits queued: keep FIFO order
	}
	out := r.cfg.Mesh.NextDir(r.cfg.Routing(msg.VN), r.id, msg.Dst)
	op := r.out[out]
	if op == nil {
		return false
	}
	cand := -1
	for ov := 0; ov < r.cfg.AllocatableVCs(msg.VN); ov++ {
		if op.owner[msg.VN][ov].valid {
			continue
		}
		if out != mesh.Local && op.credits[msg.VN][ov] <= 0 {
			continue
		}
		cand = ov
		break
	}
	if cand < 0 {
		return false
	}
	op.owner[msg.VN][cand] = outOwner{valid: true, in: p.dir, vn: msg.VN, vc: f.VC}
	p.spec.put(msg.ID, specRoute{out: out, outVC: cand})
	p.byQ.Push(bypassEntry{f: f, vn: msg.VN, out: out, outVC: cand, arrVC: f.VC, spec: true})
	if f.Tail {
		// Single-flit message: nothing follows.
	}
	return true
}

// startMessage performs route computation for the head flit now at the
// front of vc; VC allocation becomes eligible after rcDelay cycles.
func (r *Router) startMessage(vc *inVC, head *Flit, rcDelay sim.Cycle, now sim.Cycle) {
	vc.state = vcWaitVA
	vc.vaEligibleAt = now + rcDelay
	vc.route = r.cfg.Mesh.NextDir(r.cfg.Routing(head.Msg.VN), r.id, head.Msg.Dst)
}

// stage3ST executes switch traversal: circuit flits first (they have
// crossbar priority), then the switch allocations granted last cycle.
func (r *Router) stage3ST(now sim.Cycle) {
	var usedIn, usedOut [mesh.NumDirs]bool
	var outUser [mesh.NumDirs]*Flit

	anyBypass := false
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if p := r.in[d]; p != nil && p.byQ.Len() > 0 {
			anyBypass = true
			break
		}
	}
	anyGrant := false
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if r.grants[d].valid {
			anyGrant = true
			break
		}
	}
	if !anyBypass && !anyGrant {
		return
	}

	// Circuit flits cross first (crossbar priority); in the speculative
	// comparator the bypass queue instead holds speculating flits, which
	// get the *lowest* priority and run after the grants.
	if anyBypass && !r.cfg.Speculative {
		r.runBypass(&usedIn, &usedOut, &outUser, now)
	}

	// Granted buffered flits. A grant whose crossbar input or output was
	// claimed by a circuit this cycle is cancelled and retried.
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		g := r.grants[d]
		r.grants[d] = grant{}
		if !g.valid {
			continue
		}
		if usedIn[g.in] || usedOut[d] {
			r.ev.Retries++
			continue
		}
		p := r.in[g.in]
		vc := p.vcs[g.vn][g.vc]
		f := vc.front()
		if vc.state != vcActive || f == nil {
			continue // stale grant
		}
		op := r.out[d]
		buffered := d != mesh.Local && r.cfg.VCBuffered(g.vn, vc.outVC)
		if buffered && op.credits[g.vn][vc.outVC] <= 0 {
			continue // credit consumed since allocation; retry
		}
		if !op.link.LaneFree(0, now) {
			r.ev.Retries++
			continue // packet lane still serializing; retry
		}
		vc.buf.Pop()
		p.occupancy--
		r.ev.BufReads++
		f.VC = vc.outVC
		f.Lane = 0 // granted traffic rides the reserved packet lane
		r.sendFlit(op, d, f, now)
		if buffered {
			op.credits[g.vn][vc.outVC]--
		}
		if p.credit != nil {
			r.returnCredit(p, Credit{VN: g.vn, VC: g.vc}, g.in, now)
		}
		usedIn[g.in] = true
		usedOut[d] = true
		if f.Tail {
			op.owner[g.vn][vc.outVC] = outOwner{}
			vc.state = vcIdle
			vc.outVC = -1
			if next := vc.front(); next != nil {
				if !next.Head {
					panic(fmt.Sprintf("noc: router %d: non-head flit of msg %d queued behind a tail", r.id, next.Msg.ID))
				}
				// The revealed head occupies the route-compute stage
				// next cycle and may try allocation the cycle after.
				r.startMessage(vc, next, 2, now)
			}
		}
	}

	if anyBypass && r.cfg.Speculative {
		r.runBypass(&usedIn, &usedOut, &outUser, now)
	}
}

// runBypass forwards the head of each input port's bypass queue through
// the crossbar, arbitrated round-robin. Circuit flits must never stall in
// the complete variants (invariant panic); fragmented, ideal and
// speculative flits may wait.
func (r *Router) runBypass(usedIn, usedOut *[mesh.NumDirs]bool, outUser *[mesh.NumDirs]*Flit, now sim.Cycle) {
	for i := 0; i < int(mesh.NumDirs); i++ {
		d := mesh.Dir((r.byPtr + i) % int(mesh.NumDirs))
		p := r.in[d]
		if p == nil || p.byQ.Len() == 0 || usedIn[d] {
			continue
		}
		e := p.byQ.Front()
		stall := usedOut[e.out]
		op := r.out[e.out]
		if op == nil {
			panic(fmt.Sprintf("noc: router %d circuit points at missing port %v", r.id, e.out))
		}
		needCredit := e.out != mesh.Local && r.cfg.VCBuffered(e.vn, e.outVC)
		if !stall && needCredit && op.credits[e.vn][e.outVC] <= 0 {
			stall = true
		}
		// On lane-divided links the circuit's lane (stamped on the flit by
		// the handler's Bypass) must have finished serializing its previous
		// flit before the next may enter the wire.
		if !stall && !op.link.LaneFree(e.f.Lane, now) {
			stall = true
		}
		if stall {
			if !e.spec && (r.handler == nil || !r.handler.BypassBuffered()) {
				var other *Message
				if outUser[e.out] != nil {
					other = outUser[e.out].Msg
				}
				panic(fmt.Sprintf("noc: router %d cycle %d: complete-circuit flit %d of msg %+v blocked at %v out %v (holder: %+v)",
					r.id, now, e.f.Seq, *e.f.Msg, d, e.out, other))
			}
			continue
		}
		p.byQ.Pop()
		usedIn[d] = true
		usedOut[e.out] = true
		outUser[e.out] = e.f
		e.f.VC = e.outVC
		e.f.OnCircuit = !e.spec
		r.sendFlit(op, e.out, e.f, now)
		if needCredit {
			op.credits[e.vn][e.outVC]--
		}
		// The flit left the input stage: return the slot it occupied
		// upstream (unless it rode the unbuffered circuit VC).
		if p.credit != nil && r.cfg.VCBuffered(e.vn, e.arrVC) {
			r.returnCredit(p, Credit{VN: e.vn, VC: e.arrVC}, d, now)
		}
		if e.f.Tail {
			if e.spec {
				op.owner[e.vn][e.outVC] = outOwner{}
				p.spec.del(e.f.Msg.ID)
			} else if r.handler != nil {
				r.handler.Release(r.id, e.f, d, now)
			}
		}
	}
	r.byPtr = (r.byPtr + 1) % int(mesh.NumDirs)
}

// stage2VA runs the two-phase round-robin VC allocator; circuit
// reservation happens "in parallel with VC allocation" via OnRequestVA —
// the switching policy's Reserve hook fires here, and its table write
// becomes visible to the next cycle's bypass checks, never this one's.
func (r *Router) stage2VA(now sim.Cycle) {
	reqs := &r.vaReqs
	for d := range reqs {
		reqs[d] = reqs[d][:0]
	}
	any := false

	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		p := r.in[d]
		if p == nil || p.occupancy == 0 {
			continue
		}
		for vn := 0; vn < NumVNs; vn++ {
			for vci, vc := range p.vcs[vn] {
				if vc.state != vcWaitVA || vc.vaEligibleAt > now {
					continue
				}
				f := vc.front()
				if f == nil || !f.Head {
					continue
				}
				op := r.out[vc.route]
				if op == nil {
					panic(fmt.Sprintf("noc: router %d: route %v has no port", r.id, vc.route))
				}
				// Phase 1: pick the free allocatable output VC with
				// the most credits.
				cand, best := -1, -1
				for ov := 0; ov < r.cfg.AllocatableVCs(vn); ov++ {
					if op.owner[vn][ov].valid {
						continue
					}
					cr := op.credits[vn][ov]
					if vc.route == mesh.Local {
						cr = r.cfg.BufDepth // ejection always sinks
					}
					if cr > best {
						best, cand = cr, ov
					}
				}
				if cand < 0 {
					continue
				}
				reqs[vc.route] = append(reqs[vc.route], vaReq{in: d, vn: vn, vc: vci, cand: cand})
				any = true
			}
		}
	}
	if !any {
		return
	}

	// Phase 2: per output port, grant contenders round-robin; at most one
	// grant per output VC per cycle.
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		rs := reqs[d]
		if len(rs) == 0 {
			continue
		}
		op := r.out[d]
		var taken [NumVNs][8]bool // output VCs granted this cycle
		mask := r.vaMask[:0]
		for range rs {
			mask = append(mask, true)
		}
		r.vaMask = mask
		for {
			idx := roundRobin(mask, &r.vaPtr[d])
			if idx < 0 {
				break
			}
			mask[idx] = false
			rq := rs[idx]
			if taken[rq.vn][rq.cand] || op.owner[rq.vn][rq.cand].valid {
				continue
			}
			taken[rq.vn][rq.cand] = true
			vc := r.in[rq.in].vcs[rq.vn][rq.vc]
			vc.state = vcActive
			vc.outVC = rq.cand
			vc.saEligibleAt = now + 1
			op.owner[rq.vn][rq.cand] = outOwner{valid: true, in: rq.in, vn: rq.vn, vc: rq.vc}
			r.ev.VAActivity++
			f := vc.front()
			// Circuit-reserving messages (requests in the paper's
			// mechanism, setup probes in the Déjà-Vu comparator) build
			// their reservation in parallel with VC allocation.
			if r.handler != nil && f.Msg.WantCircuit {
				r.handler.OnRequestVA(r.id, f.Msg, rq.in, d, now)
			}
		}
	}
}

// stage3SAAlloc runs the two-phase switch allocator, producing the grants
// that switch traversal executes next cycle.
func (r *Router) stage3SAAlloc(now sim.Cycle) {
	var phase1 [mesh.NumDirs]vcSlot
	var has [mesh.NumDirs]bool
	anyWinner := false

	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		p := r.in[d]
		if p == nil || p.occupancy == 0 {
			continue
		}
		req := r.saReq
		for i, slot := range r.saSlots {
			vc := p.vcs[slot.vn][slot.vc]
			f := vc.front()
			ok := vc.state == vcActive && f != nil &&
				vc.saEligibleAt <= now && f.arrivedAt+1 <= now
			if ok {
				op := r.out[vc.route]
				if vc.route != mesh.Local && r.cfg.VCBuffered(slot.vn, vc.outVC) &&
					op.credits[slot.vn][vc.outVC] <= 0 {
					ok = false
				}
				// The grant executes next cycle; skip outputs whose packet
				// lane will still be serializing then.
				if ok && !op.link.LaneFree(0, now+1) {
					ok = false
				}
			}
			req[i] = ok
		}
		if idx := roundRobin(req, &r.saInPtr[d]); idx >= 0 {
			phase1[d] = r.saSlots[idx]
			has[d] = true
			anyWinner = true
		}
	}
	if !anyWinner {
		return
	}

	var outReq [mesh.NumDirs][mesh.NumDirs]bool // [outPort][inPort]
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if !has[d] {
			continue
		}
		w := phase1[d]
		route := r.in[d].vcs[w.vn][w.vc].route
		outReq[route][d] = true
	}
	for o := mesh.Dir(0); o < mesh.NumDirs; o++ {
		any := false
		for i := mesh.Dir(0); i < mesh.NumDirs; i++ {
			if outReq[o][i] {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		idx := roundRobin(outReq[o][:], &r.saOutPtr[o])
		in := mesh.Dir(idx)
		w := phase1[in]
		r.grants[o] = grant{valid: true, in: in, vn: w.vn, vc: w.vc}
		r.ev.SAActivity++
	}
}

// sendFlit puts f on output port op's link and counts the traversal,
// honouring an armed link-stall fault.
func (r *Router) sendFlit(op *outputPort, out mesh.Dir, f *Flit, now sim.Cycle) {
	var extra sim.Cycle
	if r.fault != nil {
		extra = r.fault.StallFlit(r.id, out, now)
	}
	op.link.SendDelayed(f, now, extra)
	r.flitsOut[out]++
	r.ev.XbarTraversals++
	if out != mesh.Local {
		r.ev.LinkFlits++
	}
}

// returnCredit sends a buffer credit upstream through input port p,
// honouring an armed credit-withholding fault.
func (r *Router) returnCredit(p *inputPort, c Credit, in mesh.Dir, now sim.Cycle) {
	if r.fault != nil && r.fault.WithholdCredit(r.id, in, now) {
		return // injected fault: the slot is never returned upstream
	}
	p.credit.Send(c, now)
	r.ev.CreditsSent++
}

// Quiescent reports whether the router's next Tick is a pure no-op: no
// flit buffered or latched, nothing in flight on an input link, no credit
// in flight from a downstream neighbour, and no pending switch grant.
// Input links and downstream credit wires are part of the check because
// Tick drains both; their senders invoke this router's Waker at send time,
// so a sleeping router is revived before traffic reaches it.
func (r *Router) Quiescent() bool {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if p := r.in[d]; p != nil {
			if p.occupancy > 0 || p.byQ.Len() > 0 {
				return false
			}
			if p.link != nil && p.link.Busy() {
				return false
			}
		}
		if op := r.out[d]; op != nil && op.credit != nil && op.credit.Busy() {
			return false
		}
		if r.grants[d].valid {
			return false
		}
	}
	return true
}

// busy reports whether any flit is buffered, latched, or mid-pipeline in
// this router.
func (r *Router) busy() bool {
	for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
		if p := r.in[d]; p != nil {
			if p.byQ.Len() > 0 {
				return true
			}
			for vn := range p.vcs {
				for _, vc := range p.vcs[vn] {
					if vc.buf.Len() > 0 {
						return true
					}
				}
			}
		}
		if op := r.out[d]; op != nil && op.link != nil && op.link.Busy() {
			return true
		}
	}
	for _, g := range r.grants {
		if g.valid {
			return true
		}
	}
	return false
}
