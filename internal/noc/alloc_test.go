package noc

import (
	"os"
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// TestSteadyStateCycleDoesNotAllocate pins the tentpole claim directly: with
// the flit/message pools, ring-buffer VC queues and the open-addressed
// speculative-route table warmed up, stepping a saturated mesh performs zero
// heap allocations. A regression here means some hot-path structure went
// back to append/make/map churn.
func TestSteadyStateCycleDoesNotAllocate(t *testing.T) {
	if os.Getenv("RC_NOPOOL") == "1" {
		t.Skip("pooling disabled by RC_NOPOOL; allocation bounds do not apply")
	}
	m := mesh.New(8, 8)
	net := NewNetwork(BaselineConfig(m), nil, nil)
	rng := sim.NewRNG(5)
	kernel := sim.NewKernel()
	inject := func(now sim.Cycle) {
		msg := net.NewMessage()
		msg.Src = mesh.NodeID(rng.Intn(m.Nodes()))
		msg.Dst = mesh.NodeID(rng.Intn(m.Nodes()))
		msg.VN = rng.Intn(NumVNs)
		msg.Size = 1
		if rng.Bool(0.5) {
			msg.Size = 5
		}
		net.Send(msg, now)
	}
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(msg *Message, now sim.Cycle) {
			net.FreeMessage(msg)
			inject(now)
		})
	}
	net.Register(kernel)
	for i := 0; i < 96; i++ {
		inject(0)
	}
	kernel.Run(500) // warm up: grow rings, fill pools, size spec tables
	if avg := testing.AllocsPerRun(200, func() { kernel.Step() }); avg != 0 {
		t.Errorf("steady-state cycle allocates %.2f objects, want 0", avg)
	}
}

// TestInjectionDoesNotAllocate checks the NewMessage/Send edge on its own: a
// pooled message travels to delivery and back to the free list without a
// single allocation once the pool is primed.
func TestInjectionDoesNotAllocate(t *testing.T) {
	if os.Getenv("RC_NOPOOL") == "1" {
		t.Skip("pooling disabled by RC_NOPOOL; allocation bounds do not apply")
	}
	m := mesh.New(4, 1)
	net := NewNetwork(BaselineConfig(m), nil, nil)
	kernel := sim.NewKernel()
	delivered := 0
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		net.NI(id).SetReceiver(func(msg *Message, now sim.Cycle) {
			net.FreeMessage(msg)
			delivered++
		})
	}
	net.Register(kernel)
	roundTrip := func() {
		msg := net.NewMessage()
		msg.Src, msg.Dst = 0, 3
		msg.VN, msg.Size = VNReply, 5
		net.Send(msg, kernel.Now())
		want := delivered + 1
		if _, ok := kernel.RunUntil(func() bool { return delivered >= want }, 1000); !ok {
			t.Fatal("message never delivered")
		}
	}
	roundTrip() // prime the pools and the NI staging queues
	if avg := testing.AllocsPerRun(100, roundTrip); avg != 0 {
		t.Errorf("pooled round trip allocates %.2f objects, want 0", avg)
	}
}
