package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
)

// NetConfig describes the network microarchitecture. The baseline follows
// Table 4; the Reactive Circuits variants adjust the reply virtual network's
// channel inventory.
type NetConfig struct {
	Mesh mesh.Mesh

	// VCsPerVN is the virtual-channel count of each virtual network.
	// Baseline: {2, 2}. Fragmented circuits add a third reply VC.
	VCsPerVN [NumVNs]int

	// BufDepth is the per-VC buffer depth in flits (Table 4: 5, enough to
	// store a whole data message).
	BufDepth int

	// ReplyCircuitVCs is how many reply VCs (the highest-numbered ones)
	// are dedicated to circuits: 0 baseline, 1 complete, 2 fragmented.
	ReplyCircuitVCs int

	// CircuitVCUnbuffered removes the buffers from circuit VCs (the
	// complete-circuits simplification that shrinks router area).
	CircuitVCUnbuffered bool

	// ReqRouting / RepRouting are the dimension-order algorithms for each
	// virtual network. The baseline uses XY for both; every circuit
	// variant uses XY/YX so requests and replies share routers.
	ReqRouting mesh.Routing
	RepRouting mesh.Routing

	// AllowQueueOvertake lets an NI inject a queued message past an
	// earlier one whose injection hook is still holding it back (used by
	// the probe-setup comparator, where replies wait for their setup
	// flit to finish and would otherwise serialize the interface).
	AllowQueueOvertake bool

	// Speculative enables the related-work comparator of the paper's
	// references [16-19]: a head flit arriving at an idle input VC may
	// cross the router in a single cycle when an output VC is free and
	// no other flit wants the crossbar ports — "routers that speculate by
	// using paths without prior reservation, which only work if there is
	// no contention". Mutually exclusive with a circuit handler.
	Speculative bool

	// NoPool disables the flit/message free-lists, keeping the allocating
	// path as a reference (kill-switch; env RC_NOPOOL=1 forces it
	// process-wide). Pooled and unpooled runs are bit-identical — the
	// free-lists only change where objects come from, never what the
	// simulation does with them.
	NoPool bool

	// LinkLanes divides every inter-router link into that many equal-width
	// lanes (spatial-division multiplexing): lane 0 carries packet traffic,
	// lanes 1..LinkLanes-1 carry one circuit each. A flit on a 1/L-width
	// lane serializes over L cycles, so per-flit link latency grows by
	// LinkLanes-1 cycles and each lane accepts a new flit only every
	// LinkLanes cycles. 0 or 1 leaves links undivided. NI injection and
	// ejection links are never divided.
	LinkLanes int
}

// Validate checks internal consistency.
func (c *NetConfig) Validate() error {
	if c.Mesh.Width <= 0 || c.Mesh.Height <= 0 {
		return fmt.Errorf("noc: invalid mesh %dx%d", c.Mesh.Width, c.Mesh.Height)
	}
	if c.BufDepth <= 0 {
		return fmt.Errorf("noc: invalid buffer depth %d", c.BufDepth)
	}
	for vn, n := range c.VCsPerVN {
		if n <= 0 {
			return fmt.Errorf("noc: VN %d has %d VCs", vn, n)
		}
	}
	if c.ReplyCircuitVCs < 0 || c.ReplyCircuitVCs >= c.VCsPerVN[VNReply] {
		return fmt.Errorf("noc: %d circuit VCs leaves no non-circuit reply VC (reply VN has %d)",
			c.ReplyCircuitVCs, c.VCsPerVN[VNReply])
	}
	if c.LinkLanes != 0 && (c.LinkLanes < 2 || c.LinkLanes > 8) {
		return fmt.Errorf("noc: %d link lanes (want 0, or 2..8)", c.LinkLanes)
	}
	if c.LinkLanes > 1 && c.Speculative {
		return fmt.Errorf("noc: speculative router cannot drive lane-divided links")
	}
	return nil
}

// Routing returns the routing function used by virtual network vn.
func (c *NetConfig) Routing(vn int) mesh.Routing {
	if vn == VNRequest {
		return c.ReqRouting
	}
	return c.RepRouting
}

// IsCircuitVC reports whether (vn, vc) is dedicated to circuit traffic and
// therefore never assigned by the VC allocator.
func (c *NetConfig) IsCircuitVC(vn, vc int) bool {
	return vn == VNReply && vc >= c.VCsPerVN[VNReply]-c.ReplyCircuitVCs
}

// VCBuffered reports whether (vn, vc) has buffer storage.
func (c *NetConfig) VCBuffered(vn, vc int) bool {
	return !(c.CircuitVCUnbuffered && c.IsCircuitVC(vn, vc))
}

// AllocatableVCs returns the VC indices of vn the allocator (and NI
// injection) may choose freely.
func (c *NetConfig) AllocatableVCs(vn int) int {
	if vn == VNReply {
		return c.VCsPerVN[VNReply] - c.ReplyCircuitVCs
	}
	return c.VCsPerVN[vn]
}

// CircuitVC returns the index of the first circuit VC in the reply VN, or
// -1 when the configuration has none.
func (c *NetConfig) CircuitVC() int {
	if c.ReplyCircuitVCs == 0 {
		return -1
	}
	return c.VCsPerVN[VNReply] - c.ReplyCircuitVCs
}

// BaselineConfig returns the Table 4 network for the given mesh.
func BaselineConfig(m mesh.Mesh) NetConfig {
	return NetConfig{
		Mesh:       m,
		VCsPerVN:   [NumVNs]int{2, 2},
		BufDepth:   5,
		ReqRouting: mesh.RouteXY,
		RepRouting: mesh.RouteXY,
	}
}
