package noc

import (
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// Virtual network indices. The coherence protocol maps every message onto
// one of these two classes (Table 4: "2 virtual networks, requests and
// replies").
const (
	VNRequest = 0
	VNReply   = 1
	NumVNs    = 2
)

// FlitBytes is the link width (Table 4: 16-byte flits).
const FlitBytes = 16

// Message is one coherence-protocol message in flight. The NoC only
// interprets the fields it needs (geometry, size, virtual network); Type and
// Payload are opaque to it.
type Message struct {
	ID   uint64
	Type int // coherence message type; opaque tag for stats and hooks
	Src  mesh.NodeID
	Dst  mesh.NodeID
	VN   int // VNRequest or VNReply
	Size int // flits

	// Payload carries the coherence layer's transaction context, packed
	// into a word by the sender (coherence.Payload.Pack). A plain integer
	// rather than `any`: boxing a multi-word struct into an interface
	// heap-allocated on every protocol send.
	Payload uint64

	// Circuit-reservation state (written by internal/core hooks).

	// WantCircuit marks a request that should reserve a reactive circuit
	// for its reply as it traverses the network.
	WantCircuit bool
	// SetupProbe marks the Déjà-Vu comparator's setup flit: a 1-flit
	// reply-class message that builds a forward circuit for the data
	// reply travelling right behind it.
	SetupProbe bool
	// Block is the cache-line address identifying the circuit; together
	// with the requestor id it names the circuit at every router.
	Block uint64
	// BuildFailed is set by the circuit handler when a reservation could
	// not be (completely) made; the destination NI reads it on delivery.
	BuildFailed bool
	// ReservedHops counts routers where this request successfully
	// installed a reservation (fragmented circuits keep partial paths).
	ReservedHops int
	// AccumDelay is the injection delay accumulated by the timed
	// "delay" variant while the request reserved shifted windows.
	AccumDelay sim.Cycle
	// ExpectedProcDelay is the requestor's estimate of the destination's
	// processing latency (cache hit latency in the paper's timing
	// formula), used by timed reservations.
	ExpectedProcDelay sim.Cycle
	// ExpectedReplySize is the anticipated reply length in flits, which
	// sets the duration of a timed reservation window.
	ExpectedReplySize int

	// UseCircuit marks a reply that rides its reactive circuit.
	UseCircuit bool
	// InjectVC forces the virtual channel used at the source NI when > 0
	// (circuit VCs are always index >= 1); <= 0 lets the NI choose among
	// the allocatable VCs.
	InjectVC int
	// CircDest and CircBlock identify the circuit a reply rides; for a
	// reply on its own circuit they equal (Dst, Block), for a scrounger
	// they name the borrowed circuit.
	CircDest  mesh.NodeID
	CircBlock uint64
	// Scrounging marks a reply riding a circuit built for another message
	// to the intermediate node Dst; FinalDst is its true destination.
	Scrounging bool
	FinalDst   mesh.NodeID
	// OutcomeHint lets the coherence layer pre-classify a reply for the
	// Figure-6 breakdown (e.g. an L1-to-L1 transfer whose circuit was
	// undone by the forward). Zero means "classify normally".
	OutcomeHint uint8
	// Classified guards against double-counting a reply that re-enters
	// the network (scrounger continuation legs).
	Classified bool

	// Walk and Ride carry the circuit layer's per-message context (the
	// reservation walk a request is building; the borrowed record a
	// scrounger rides). They live on the message rather than in
	// manager-side maps so the parallel engine's shards never share a map:
	// at any cycle at most one router or NI touches a given message.
	// Both hold pointers the circuit layer type-asserts back; they are
	// opaque to the NoC.
	Walk any
	Ride any

	// LocalHop marks a message whose source and destination tile
	// coincide: it never traversed the network.
	LocalHop bool

	// Latency bookkeeping (cycles).
	EnqueuedAt  sim.Cycle // entered the source NI queue
	InjectedAt  sim.Cycle // head flit left the NI
	DeliveredAt sim.Cycle // tail flit reached the destination NI
	// QueueCredit preserves queueing delay accumulated before a scrounger
	// re-injection so end-to-end latency accounting survives the hop.
	QueueCredit sim.Cycle
	NetCredit   sim.Cycle
}

// Flit is the unit of flow control: 1/Size-th of a message.
type Flit struct {
	Msg  *Message
	Seq  int
	Head bool
	Tail bool
	// VC is the virtual channel the flit occupies on the link it most
	// recently traversed (within its message's virtual network).
	VC int
	// OnCircuit marks a flit travelling on the reactive-circuit bypass.
	OnCircuit bool
	// Lane is the SDM lane the flit occupies on the next lane-divided link
	// it traverses: 0 (the reserved packet lane) for granted traffic, the
	// circuit's claimed lane for bypass traffic. Ignored by undivided links.
	Lane int

	// arrivedAt is the cycle the flit became visible at the current
	// router, gating switch-allocation eligibility.
	arrivedAt sim.Cycle
}

// flitsOf expands a message into its flit train.
func flitsOf(m *Message) []*Flit {
	fs := make([]*Flit, m.Size)
	for i := range fs {
		fs[i] = &Flit{
			Msg:  m,
			Seq:  i,
			Head: i == 0,
			Tail: i == m.Size-1,
		}
	}
	return fs
}

// Credit is the flow-control token returned upstream when a buffer slot
// frees. UndoCircuit piggybacks the paper's circuit-teardown information on
// the credit wire ("if a credit had to be sent at the same time ... we
// piggyback the information; otherwise, we send a specific credit").
type Credit struct {
	VN int
	VC int
	// Pure marks a credit that only carries undo information and does not
	// return a buffer slot.
	Pure bool
	// UndoCircuit, when non-nil, instructs the receiving router to clear
	// the named circuit and forward the undo toward the circuit
	// destination.
	UndoCircuit *UndoToken
}

// UndoToken names a circuit being torn down before use.
type UndoToken struct {
	// Dest is the circuit destination (the node the reply would have
	// reached, i.e. the original requestor).
	Dest mesh.NodeID
	// Block is the cache-line address of the circuit.
	Block uint64
}

// CircuitHandler is the seam between the generic wormhole router and the
// Reactive Circuits mechanism. A nil handler yields the baseline network.
// The concrete handler is core.Manager, which delegates every decision to
// the registered switching policy (core.Policy) the run's options select —
// the routers never see which policy is driving them.
//
// All methods are invoked synchronously from within Router.Tick.
type CircuitHandler interface {
	// OnRequestVA fires in the cycle a circuit-wanting request's head flit
	// wins VC allocation at router id (entering via in, leaving via out):
	// the paper reserves the reply's circuit "in parallel with VC
	// allocation". The handler may set msg.BuildFailed or msg.AccumDelay.
	OnRequestVA(id mesh.NodeID, msg *Message, in, out mesh.Dir, now sim.Cycle)

	// Bypass inspects a flit arriving at input port in of router id and
	// reports whether it travels on a built circuit, returning the
	// circuit's output port and the virtual channel the flit occupies on
	// the next link. Bypass flits cross the router in one cycle.
	Bypass(id mesh.NodeID, f *Flit, in mesh.Dir, now sim.Cycle) (out mesh.Dir, outVC int, ok bool)

	// Release fires when the tail flit of a circuit message leaves router
	// id: "when the tail flit of the message leaves the router, it frees
	// the circuit resources by clearing the B bit".
	Release(id mesh.NodeID, f *Flit, in mesh.Dir, now sim.Cycle)

	// OnUndo fires when an undo token reaches router id via the credit
	// wire on input port in. The handler clears matching reservations and
	// returns the output port to forward the token on (toward the circuit
	// destination), or ok=false when the walk ends here.
	OnUndo(id mesh.NodeID, tok *UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool)

	// BypassBuffered reports whether a bypass flit may wait in a buffer
	// when it loses the crossbar (the ideal mechanism keeps buffers). When
	// false, a stalled bypass flit violates the complete-circuit
	// invariant and the router panics: circuits must never block.
	BypassBuffered() bool
}

// NIHook lets the circuit layer steer injection and delivery at the
// network interfaces. A nil hook yields baseline behaviour. Like
// CircuitHandler, the concrete hook is core.Manager dispatching to the
// selected switching policy (its Inject and Deliver hooks).
type NIHook interface {
	// OnInject is consulted when msg reaches the head of its NI queue. It
	// may set UseCircuit / Scrounging / route metadata and returns the
	// earliest cycle injection may start (timed variants make replies wait
	// for their slot); return now to start immediately.
	OnInject(ni mesh.NodeID, msg *Message, now sim.Cycle) sim.Cycle

	// OnDeliver fires when msg fully arrives at NI ni. Returning false
	// consumes the message inside the hook (scrounger re-injection)
	// instead of delivering it to the tile.
	OnDeliver(ni mesh.NodeID, msg *Message, now sim.Cycle) bool
}
