package noc

import (
	"os"
	"sync"

	"reactivenoc/internal/mesh"
)

// envNoPool force-disables recycling process-wide (kill-switch for
// comparing against the allocating reference path): RC_NOPOOL=1. The read
// is lazy, not a package-level init: `go test` only records environment
// dependencies accessed while the test runs, so an init-time Getenv would
// let the test cache serve a pooled run's result to an RC_NOPOOL=1 rerun.
var envNoPool = sync.OnceValue(func() bool { return os.Getenv("RC_NOPOOL") == "1" })

// pools holds the network's deterministic free-lists for flits and
// messages. They are plain LIFO slices, not sync.Pool: reuse order is then a
// pure function of simulation order, so pooled and unpooled runs produce
// bit-identical results and repeated runs reuse identically. One instance is
// owned by each Network; the simulator is single-goroutine per network
// (sweep workers each build their own), so no locking is needed.
//
// Lifetime rules (see DESIGN.md §5b):
//   - A *Flit is born at NI injection and dies at the destination NI the
//     cycle its ejection is processed; routers and links may hold it in
//     between but never after the NI consumed it.
//   - A *Message is born at its producer (coherence layer, circuit probes,
//     tests) and dies when its consumer retires it via Network.FreeMessage.
//     Freeing is optional — an unfreed message is simply garbage-collected —
//     but a freed one must never be referenced again.
type pools struct {
	disabled bool

	flits []*Flit
	msgs  []*Message

	// Recycling effectiveness counters, surfaced through the metrics
	// registry as noc/pool_*.
	FlitAllocs int64
	FlitReuses int64
	MsgAllocs  int64
	MsgReuses  int64
}

func (p *pools) getFlit() *Flit {
	if n := len(p.flits); n > 0 {
		f := p.flits[n-1]
		p.flits[n-1] = nil
		p.flits = p.flits[:n-1]
		p.FlitReuses++
		return f
	}
	p.FlitAllocs++
	return &Flit{}
}

func (p *pools) putFlit(f *Flit) {
	if p.disabled || f == nil {
		return
	}
	*f = Flit{}
	p.flits = append(p.flits, f)
}

func (p *pools) getMsg() *Message {
	if n := len(p.msgs); n > 0 {
		m := p.msgs[n-1]
		p.msgs[n-1] = nil
		p.msgs = p.msgs[:n-1]
		p.MsgReuses++
		return m
	}
	p.MsgAllocs++
	return &Message{}
}

func (p *pools) putMsg(m *Message) {
	if p.disabled || m == nil {
		return
	}
	*m = Message{}
	p.msgs = append(p.msgs, m)
}

// NewMessage returns a zeroed message from the network's free-list (or the
// heap when pooling is disabled). Callers fill the fields they need; a
// recycled message is indistinguishable from a fresh one. Production
// senders running under the parallel engine use NewMessageAt; this form
// draws from shard 0's list.
func (n *Network) NewMessage() *Message { return n.pool.getMsg() }

// NewMessageAt returns a zeroed message from tile at's shard free-list, so
// concurrent shards never contend on one pool.
func (n *Network) NewMessageAt(at mesh.NodeID) *Message {
	if n.nshards <= 1 {
		return n.pool.getMsg()
	}
	return n.poolSh[n.shardMap[at]].getMsg()
}

// FreeMessage retires m to the free-list. The caller asserts that no live
// reference to m remains anywhere — not in an NI queue, a router buffer, a
// controller transaction, or a circuit-layer map. With pooling disabled
// this is a no-op and m is left to the garbage collector.
func (n *Network) FreeMessage(m *Message) { n.pool.putMsg(m) }

// FreeMessageAt retires m to tile at's shard free-list; at must be the
// tile on which the caller runs (messages may retire to any shard's list,
// but only the owning shard may touch it mid-phase).
func (n *Network) FreeMessageAt(at mesh.NodeID, m *Message) {
	if n.nshards <= 1 {
		n.pool.putMsg(m)
		return
	}
	n.poolSh[n.shardMap[at]].putMsg(m)
}

// PoolDisabled reports whether recycling is off (Spec/Options kill-switch
// or RC_NOPOOL=1).
func (n *Network) PoolDisabled() bool { return n.pool.disabled }
