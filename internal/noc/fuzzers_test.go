package noc

import (
	"testing"
)

// FuzzRing interprets the input as a push/pop opcode stream and checks the
// ring against a slice model. Byte values: even = push (value = byte),
// odd = pop. The seed corpus includes the wrap-around and underflow shapes
// the table-driven tests cover.
func FuzzRing(f *testing.F) {
	f.Add([]byte{0, 2, 4, 1, 1, 1, 1}) // push×3 then pop past empty
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0})
	f.Add([]byte{1}) // pop on never-used ring
	f.Fuzz(func(t *testing.T, ops []byte) {
		var r ring[int]
		var model []int
		for i, op := range ops {
			if op%2 == 0 {
				r.Push(int(op))
				model = append(model, int(op))
			} else {
				var want int
				if len(model) > 0 {
					want = model[0]
					model = model[1:]
				}
				if got := r.Pop(); got != want {
					t.Fatalf("op %d: pop=%d, want %d", i, got, want)
				}
			}
			if r.Len() != len(model) {
				t.Fatalf("op %d: len=%d, model=%d", i, r.Len(), len(model))
			}
		}
		for i := 0; i < len(model); i++ {
			if got := r.At(i); got != model[i] {
				t.Fatalf("At(%d)=%d, want %d", i, got, model[i])
			}
		}
	})
}

// FuzzSpecTable interprets the input as put/del opcodes against a map model.
// Each pair of bytes is one op: low bit of the first byte selects put/del,
// the second byte (plus one, keys are never zero) is the message ID. The
// small ID space forces long probe chains, which is where backward-shift
// deletion can orphan or duplicate entries.
func FuzzSpecTable(f *testing.F) {
	f.Add([]byte{0, 1, 0, 9, 0, 17, 1, 9, 0, 25, 1, 1}) // colliding chain, delete middle
	f.Add([]byte{0, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var tab specTable
		model := map[uint64]specRoute{}
		for i := 0; i+1 < len(ops); i += 2 {
			id := uint64(ops[i+1]%64) + 1
			if ops[i]%2 == 0 {
				v := specRoute{outVC: int(ops[i] % 8)}
				tab.put(id, v)
				model[id] = v
			} else {
				tab.del(id)
				delete(model, id)
			}
		}
		if tab.live() != len(model) {
			t.Fatalf("live=%d, model=%d", tab.live(), len(model))
		}
		for id, want := range model {
			got, ok := tab.get(id)
			if !ok {
				t.Fatalf("key %d orphaned", id)
			}
			if got != want {
				t.Fatalf("key %d: got %+v, want %+v", id, got, want)
			}
		}
		seen := map[uint64]bool{}
		for _, k := range tab.keys {
			if k == 0 {
				continue
			}
			if seen[k] {
				t.Fatalf("key %d duplicated", k)
			}
			seen[k] = true
			if _, ok := model[k]; !ok {
				t.Fatalf("key %d survives deletion", k)
			}
		}
	})
}
