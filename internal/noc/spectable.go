package noc

// specTable is a small open-addressed hash table mapping the IDs of
// messages currently speculating through an input port to their ephemeral
// routes. It replaces a lazily-built map[*Message]specRoute: message IDs
// are dense uint64s (never zero, NextMsgID starts at 1), at most a handful
// of routes are live per port, and get/put/delete on a linear-probe table
// are allocation-free after the first insert. Deletion uses backward-shift
// compaction, so an emptied table holds no tombstones and no stale
// references — the map version kept its buckets (and delete()d keys'
// memory) alive for the lifetime of the port.
type specTable struct {
	keys []uint64 // 0 = empty slot
	vals []specRoute
	n    int
}

const specTableMinSize = 8 // power of two

func (t *specTable) get(id uint64) (specRoute, bool) {
	if t.n == 0 {
		return specRoute{}, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := id & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case id:
			return t.vals[i], true
		case 0:
			return specRoute{}, false
		}
	}
}

func (t *specTable) put(id uint64, v specRoute) {
	if len(t.keys) == 0 {
		t.keys = make([]uint64, specTableMinSize)
		t.vals = make([]specRoute, specTableMinSize)
	} else if 2*(t.n+1) > len(t.keys) {
		t.rehash(2 * len(t.keys))
	}
	mask := uint64(len(t.keys) - 1)
	for i := id & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case id:
			t.vals[i] = v
			return
		case 0:
			t.keys[i] = id
			t.vals[i] = v
			t.n++
			return
		}
	}
}

func (t *specTable) rehash(size int) {
	oldK, oldV := t.keys, t.vals
	t.keys = make([]uint64, size)
	t.vals = make([]specRoute, size)
	t.n = 0
	for i, k := range oldK {
		if k != 0 {
			t.put(k, oldV[i])
		}
	}
}

func (t *specTable) del(id uint64) {
	if t.n == 0 {
		return
	}
	mask := uint64(len(t.keys) - 1)
	i := id & mask
	for t.keys[i] != id {
		if t.keys[i] == 0 {
			return
		}
		i = (i + 1) & mask
	}
	t.n--
	// Backward-shift compaction: pull displaced entries of the probe chain
	// into the vacated slot so lookups never need tombstones.
	j := i
	for {
		t.keys[i] = 0
		t.vals[i] = specRoute{}
		for {
			j = (j + 1) & mask
			if t.keys[j] == 0 {
				return
			}
			ideal := t.keys[j] & mask
			// Entry at j may move into slot i unless its ideal slot lies
			// cyclically within (i, j].
			if i <= j {
				if i < ideal && ideal <= j {
					continue
				}
			} else if i < ideal || ideal <= j {
				continue
			}
			break
		}
		t.keys[i] = t.keys[j]
		t.vals[i] = t.vals[j]
		i = j
	}
}

// live returns the number of routes currently stored (test seam: spec state
// must be empty once all speculating messages drain).
func (t *specTable) live() int { return t.n }
