package noc

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// twoNodeHarness builds the smallest real network (1x2 mesh) so router
// internals can be poked directly while links and NIs stay genuine.
func twoNodeHarness(t *testing.T, cfg NetConfig) *harness {
	t.Helper()
	return newHarness(cfg, nil, nil)
}

func TestVAAllocatesDistinctOutputVCs(t *testing.T) {
	// Two messages from the same NI to the same destination: the second
	// must get the *other* VC of the virtual network and both stream
	// concurrently (VC-level parallelism of the Table 4 router).
	m := mesh.New(2, 1)
	h := twoNodeHarness(t, BaselineConfig(m))
	a, b := msg(0, 1, VNRequest, 5), msg(0, 1, VNRequest, 5)
	h.net.Send(a, 0)
	h.net.Send(b, 0)
	h.runUntilQuiet(t, 500)
	// With a single VC they would be fully serialized: b would finish a
	// full message time after a. With two VCs the NI interleaves flits,
	// so b's tail lands well under one message time after a's.
	gap := b.DeliveredAt - a.DeliveredAt
	if gap <= 0 || gap > 6 {
		t.Fatalf("VC parallelism missing: delivery gap %d", gap)
	}
}

func TestCreditStallAndRecovery(t *testing.T) {
	// Saturate one VC's downstream buffer, verify upstream stalls, then
	// confirm full drain and credit recovery via the audit.
	m := mesh.New(3, 1)
	cfg := BaselineConfig(m)
	h := twoNodeHarness(t, cfg)
	// Enough 5-flit messages on one VN to exhaust both VCs' credits.
	for i := 0; i < 6; i++ {
		h.net.Send(msg(0, 2, VNReply, 5), 0)
	}
	h.kernel.Run(12)
	// Mid-flight: some credits must be consumed at router 0's East port.
	r0 := h.net.Router(0)
	consumed := false
	for vc := 0; vc < cfg.VCsPerVN[VNReply]; vc++ {
		if r0.out[mesh.East].credits[VNReply][vc] < cfg.BufDepth {
			consumed = true
		}
	}
	if !consumed {
		t.Fatal("no credits consumed under load")
	}
	h.runUntilQuiet(t, 2000)
	if err := h.net.AuditQuiescent(); err != nil {
		t.Fatalf("credits not recovered: %v", err)
	}
	if len(h.delivered) != 6 {
		t.Fatalf("delivered %d of 6", len(h.delivered))
	}
}

func TestSAFairnessBetweenInputs(t *testing.T) {
	// Two input ports feeding one output: round-robin switch allocation
	// must not starve either; their delivered counts stay balanced.
	m := mesh.New(3, 1)
	h := twoNodeHarness(t, BaselineConfig(m))
	var fromWest, local []*Message
	for i := 0; i < 10; i++ {
		a := msg(0, 2, VNRequest, 5) // passes through router 1
		b := msg(1, 2, VNRequest, 5) // injected at router 1
		h.net.Send(a, 0)
		h.net.Send(b, 0)
		fromWest = append(fromWest, a)
		local = append(local, b)
	}
	h.runUntilQuiet(t, 5000)
	lastWest := fromWest[len(fromWest)-1].DeliveredAt
	lastLocal := local[len(local)-1].DeliveredAt
	diff := lastWest - lastLocal
	if diff < 0 {
		diff = -diff
	}
	// Fair interleaving finishes both streams within a message time.
	if diff > 30 {
		t.Fatalf("unfair switch allocation: streams finished %d cycles apart", diff)
	}
}

func TestHeadOfLineWithinOneVC(t *testing.T) {
	// Messages on the SAME VC serialize (wormhole): force single-VC use
	// by exhausting the other VC with a long-stalled message. Simplest
	// observable: same-VN same-path messages never interleave flit
	// sequences at the receiver (checkSequence would panic).
	m := mesh.New(4, 1)
	h := twoNodeHarness(t, BaselineConfig(m))
	for i := 0; i < 12; i++ {
		h.net.Send(msg(0, 3, VNReply, 5), 0)
	}
	h.runUntilQuiet(t, 5000)
	if len(h.delivered) != 12 {
		t.Fatalf("delivered %d", len(h.delivered))
	}
}

func TestRouterFlitsOutCounters(t *testing.T) {
	m := mesh.New(2, 1)
	h := twoNodeHarness(t, BaselineConfig(m))
	h.net.Send(msg(0, 1, VNRequest, 5), 0)
	h.runUntilQuiet(t, 200)
	r0, r1 := h.net.Router(0), h.net.Router(1)
	if got := r0.FlitsOut(mesh.East); got != 5 {
		t.Fatalf("router 0 east flits %d, want 5", got)
	}
	if got := r1.FlitsOut(mesh.Local); got != 5 {
		t.Fatalf("router 1 ejection flits %d, want 5", got)
	}
	if got := r0.FlitsOut(mesh.West); got != 0 {
		t.Fatalf("router 0 west flits %d, want 0", got)
	}
}

func TestUndoCreditWalkThroughRouters(t *testing.T) {
	// Unit-level check of the undo plumbing: a token sent on a router's
	// input credit wire reaches the upstream router's handler with the
	// right port, then keeps walking.
	m := mesh.New(3, 1)
	walker := &undoSpy{}
	h := newHarness(func() NetConfig { c := BaselineConfig(m); return c }(), walker, nil)
	// Start a walk from router 2 toward router 0: emit on router 2's
	// West input credit wire.
	h.net.Router(2).SendUndoCredit(mesh.West, &UndoToken{Dest: 0, Block: 0x40}, h.kernel.Now())
	h.kernel.Run(10)
	if len(walker.undos) != 2 {
		t.Fatalf("undo visited %d routers, want 2 (router 1 then 0)", len(walker.undos))
	}
	if walker.undos[0].id != 1 || walker.undos[0].in != mesh.East {
		t.Fatalf("first undo at router %d port %v", walker.undos[0].id, walker.undos[0].in)
	}
	if walker.undos[1].id != 0 || walker.undos[1].in != mesh.East {
		t.Fatalf("second undo at router %d port %v", walker.undos[1].id, walker.undos[1].in)
	}
}

type undoSpy struct {
	undos []struct {
		id mesh.NodeID
		in mesh.Dir
	}
}

func (u *undoSpy) OnRequestVA(mesh.NodeID, *Message, mesh.Dir, mesh.Dir, sim.Cycle) {}
func (u *undoSpy) Bypass(mesh.NodeID, *Flit, mesh.Dir, sim.Cycle) (mesh.Dir, int, bool) {
	return 0, 0, false
}
func (u *undoSpy) Release(mesh.NodeID, *Flit, mesh.Dir, sim.Cycle) {}
func (u *undoSpy) OnUndo(id mesh.NodeID, tok *UndoToken, in mesh.Dir, now sim.Cycle) (mesh.Dir, bool) {
	u.undos = append(u.undos, struct {
		id mesh.NodeID
		in mesh.Dir
	}{id, in})
	// Keep walking west until the edge.
	if id == 0 {
		return mesh.Local, true
	}
	return mesh.West, true
}
func (u *undoSpy) BypassBuffered() bool { return false }
