package noc

import (
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// FaultHook is the seam a deterministic fault injector (internal/fault)
// plugs into the fabric. Each method is consulted at the exact point the
// corresponding hardware event would happen and decides whether to corrupt
// it; a nil hook — the normal case — costs one branch per site. The hook
// must be deterministic for the run to stay reproducible.
type FaultHook interface {
	// DropUndo reports whether the circuit-undo token arriving at router
	// id should vanish instead of being processed and forwarded, stranding
	// the rest of the teardown walk.
	DropUndo(id mesh.NodeID, tok *UndoToken, now sim.Cycle) bool
	// WithholdCredit reports whether the buffer credit router id is about
	// to return upstream through input port in should be withheld,
	// breaking credit conservation.
	WithholdCredit(id mesh.NodeID, in mesh.Dir, now sim.Cycle) bool
	// StallFlit returns extra wire cycles for the flit router id is about
	// to send through output port out (0 = no fault). Links deliver in
	// FIFO order, so one large delay stalls everything behind it.
	StallFlit(id mesh.NodeID, out mesh.Dir, now sim.Cycle) sim.Cycle
}

// SetFaultHook arms (or, with nil, disarms) a fault injector on every
// router in the network.
func (n *Network) SetFaultHook(h FaultHook) {
	for _, r := range n.routers {
		r.fault = h
	}
}
