package noc

import "testing"

func TestLinkDelay(t *testing.T) {
	l := &Link{}
	f := &Flit{}
	l.Send(f, 10)
	if l.Recv(10) != nil || l.Recv(11) != nil {
		t.Fatal("flit visible too early")
	}
	if got := l.Recv(12); got != f {
		t.Fatal("flit not visible at send+2")
	}
	if l.Recv(13) != nil {
		t.Fatal("flit delivered twice")
	}
}

func TestLinkOrdering(t *testing.T) {
	l := &Link{}
	a, b := &Flit{Seq: 0}, &Flit{Seq: 1}
	l.Send(a, 1)
	l.Send(b, 2)
	if got := l.Recv(3); got != a {
		t.Fatal("first flit should arrive first")
	}
	if got := l.Recv(4); got != b {
		t.Fatal("second flit should arrive second")
	}
}

func TestLinkDoubleDrivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double drive")
		}
	}()
	l := &Link{}
	l.Send(&Flit{}, 5)
	l.Send(&Flit{}, 5)
}

func TestLinkBusy(t *testing.T) {
	l := &Link{}
	if l.Busy() {
		t.Fatal("fresh link busy")
	}
	l.Send(&Flit{}, 0)
	if !l.Busy() {
		t.Fatal("link with in-flight flit not busy")
	}
	l.Recv(2)
	if l.Busy() {
		t.Fatal("drained link still busy")
	}
}

func TestCreditLinkBatching(t *testing.T) {
	l := &CreditLink{}
	l.Send(Credit{VN: 0, VC: 1}, 5)
	l.Send(Credit{VN: 1, VC: 0}, 5)
	if _, ok := l.Recv(6); ok {
		t.Fatal("credits visible too early")
	}
	var got []Credit
	for {
		c, ok := l.Recv(7)
		if !ok {
			break
		}
		got = append(got, c)
	}
	if len(got) != 2 {
		t.Fatalf("got %d credits, want 2", len(got))
	}
	if got[0].VC != 1 || got[1].VN != 1 {
		t.Fatalf("credit order/content wrong: %+v", got)
	}
	if l.Busy() {
		t.Fatal("drained credit link busy")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	ptr := 0
	req := []bool{true, true, true}
	order := []int{}
	for i := 0; i < 6; i++ {
		order = append(order, roundRobin(req, &ptr))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	ptr := 0
	if got := roundRobin([]bool{false, false, true}, &ptr); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	if got := roundRobin([]bool{false, false, false}, &ptr); got != -1 {
		t.Fatalf("got %d, want -1", got)
	}
	if got := roundRobin(nil, &ptr); got != -1 {
		t.Fatalf("empty: got %d, want -1", got)
	}
}

func TestRoundRobinPointerWraps(t *testing.T) {
	ptr := 7 // stale pointer beyond slice length
	if got := roundRobin([]bool{true, false}, &ptr); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}
