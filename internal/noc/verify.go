package noc

import (
	"fmt"
	"strings"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// This file holds the network-layer invariant oracles of the opt-in
// verification suite (internal/verify). Unlike the quiescent audits in
// audit.go, every check here is legal mid-run, at any cycle boundary: the
// conservation sums count in-flight state (link pipelines, credit wires,
// bypass latches) alongside the resting state, so the invariant holds even
// while traffic is streaming. All methods are read-only.

// CheckCreditConservation verifies the credit-flow invariant on every
// link: for each buffered virtual channel, the sender's credit counter,
// the flits in flight on the wire, the flits resting in the downstream
// buffer (or latched in its bypass queue), and the credits in flight back
// upstream must sum to exactly BufDepth. A withheld or duplicated credit
// breaks the sum immediately and permanently.
func (n *Network) CheckCreditConservation() error {
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			op := r.out[d]
			if op == nil || d == mesh.Local || op.credit == nil {
				continue
			}
			nb, ok := n.cfg.Mesh.Neighbor(r.id, d)
			if !ok {
				continue
			}
			dp := n.routers[nb].in[d.Opposite()]
			for vn := 0; vn < NumVNs; vn++ {
				for vc := 0; vc < n.cfg.VCsPerVN[vn]; vc++ {
					if !n.cfg.VCBuffered(vn, vc) {
						continue
					}
					sum := op.credits[vn][vc] +
						linkFlitCount(op.link, vn, vc) +
						dp.vcs[vn][vc].buf.Len() +
						byQHeldCredits(dp, vn, vc) +
						creditsInFlight(op.credit, vn, vc)
					if sum != n.cfg.BufDepth {
						return fmt.Errorf(
							"router %d -> %d (%v) vn%d vc%d: credits account for %d slots, want %d (sender=%d wire=%d buffered=%d latched=%d returning=%d)",
							r.id, nb, d, vn, vc, sum, n.cfg.BufDepth,
							op.credits[vn][vc], linkFlitCount(op.link, vn, vc),
							dp.vcs[vn][vc].buf.Len(), byQHeldCredits(dp, vn, vc),
							creditsInFlight(op.credit, vn, vc))
					}
				}
			}
		}
	}
	// The NI -> router local hop runs the same protocol with the NI as the
	// credit-tracking sender.
	for i, ni := range n.nis {
		p := n.routers[i].in[mesh.Local]
		for vn := 0; vn < NumVNs; vn++ {
			for vc := 0; vc < n.cfg.VCsPerVN[vn]; vc++ {
				if !n.cfg.VCBuffered(vn, vc) {
					continue
				}
				sum := ni.credits[vn][vc] +
					linkFlitCount(ni.toRouter, vn, vc) +
					p.vcs[vn][vc].buf.Len() +
					byQHeldCredits(p, vn, vc) +
					creditsInFlight(ni.creditIn, vn, vc)
				if sum != n.cfg.BufDepth {
					return fmt.Errorf(
						"NI %d -> router vn%d vc%d: credits account for %d slots, want %d (NI=%d wire=%d buffered=%d latched=%d returning=%d)",
						ni.id, vn, vc, sum, n.cfg.BufDepth,
						ni.credits[vn][vc], linkFlitCount(ni.toRouter, vn, vc),
						p.vcs[vn][vc].buf.Len(), byQHeldCredits(p, vn, vc),
						creditsInFlight(ni.creditIn, vn, vc))
				}
			}
		}
	}
	return nil
}

func linkFlitCount(l *Link, vn, vc int) int {
	c := 0
	for i := 0; i < l.q.Len(); i++ {
		if f := l.q.At(i).f; f.Msg.VN == vn && f.VC == vc {
			c++
		}
	}
	return c
}

// byQHeldCredits counts bypass-latched flits still holding an upstream
// buffer slot: a flit parked in the bypass queue returns its arrival-VC
// credit only when it leaves, so until then the slot is accounted here.
func byQHeldCredits(p *inputPort, vn, vc int) int {
	c := 0
	for i := 0; i < p.byQ.Len(); i++ {
		if e := p.byQ.At(i); e.vn == vn && e.arrVC == vc {
			c++
		}
	}
	return c
}

func creditsInFlight(l *CreditLink, vn, vc int) int {
	c := 0
	for i := 0; i < l.q.Len(); i++ {
		if s := l.q.At(i); !s.c.Pure && s.c.VN == vn && s.c.VC == vc {
			c++
		}
	}
	return c
}

// CheckFlitConservation verifies end-to-end flit conservation: every flit
// an NI injected and no NI has ejected yet must be resting in exactly one
// place — a VC buffer, a bypass latch, or a link pipeline. A flit dropped
// (or duplicated) anywhere in the fabric breaks the balance.
func (n *Network) CheckFlitConservation() error {
	var injected, ejected, inFlight int64
	for _, ni := range n.nis {
		injected += ni.injected
		ejected += ni.ejected
		inFlight += int64(ni.toRouter.q.Len())
	}
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if p := r.in[d]; p != nil {
				inFlight += int64(p.byQ.Len())
				for vn := range p.vcs {
					for _, vc := range p.vcs[vn] {
						inFlight += int64(vc.buf.Len())
					}
				}
			}
			if op := r.out[d]; op != nil && op.link != nil {
				inFlight += int64(op.link.q.Len())
			}
		}
	}
	if want := injected - ejected; inFlight != want {
		return fmt.Errorf("flit conservation: %d injected - %d ejected = %d outstanding, but %d found in the fabric",
			injected, ejected, want, inFlight)
	}
	return nil
}

// CheckVCOrder verifies wormhole well-formedness inside every VC buffer:
// flits of one message are contiguous and sequence-ordered, and a new
// message may start only after the previous one's tail — the in-network
// half of the per-VC in-order-delivery invariant (the NI's checkSequence
// asserts the ejection half).
func (n *Network) CheckVCOrder() error {
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			p := r.in[d]
			if p == nil {
				continue
			}
			for vn := range p.vcs {
				for vci, vc := range p.vcs[vn] {
					for i := 1; i < vc.buf.Len(); i++ {
						prev, cur := vc.buf.At(i-1), vc.buf.At(i)
						if cur.Msg == prev.Msg {
							if cur.Seq != prev.Seq+1 {
								return fmt.Errorf("router %d %v vn%d vc%d: msg %d flit %d queued behind flit %d (sequence broken)",
									r.id, d, vn, vci, cur.Msg.ID, cur.Seq, prev.Seq)
							}
						} else if !prev.Tail || !cur.Head {
							return fmt.Errorf("router %d %v vn%d vc%d: msg %d interleaves msg %d mid-message (wormhole violated)",
								r.id, d, vn, vci, cur.Msg.ID, prev.Msg.ID)
						}
					}
				}
			}
		}
	}
	return nil
}

// FlitMovement returns the monotonic count of injection and ejection
// events across every NI — the progress signal the livelock detector
// watches. Any flit entering or leaving the network advances it.
func (n *Network) FlitMovement() int64 {
	var t int64
	for _, ni := range n.nis {
		t += ni.injected + ni.ejected
	}
	return t
}

// CircuitTraffic reports every circuit-related item currently in flight:
// ride is called with the (dest, block) key of each circuit-riding message
// found anywhere in the fabric (NI queues, drain slots, link pipelines, VC
// buffers, bypass latches) — and of each circuit-*building* request still
// traversing, whose reservations exist at the routers behind it before any
// registry record does — and undo with the key of each teardown token
// still travelling on a credit wire. The circuit manager's leak oracle
// uses this to separate "entry awaiting its in-flight reply, request tail,
// or teardown" from "entry nothing will ever claim".
func (n *Network) CircuitTraffic(ride, undo func(dest mesh.NodeID, block uint64)) {
	msg := func(m *Message) {
		if m == nil {
			return
		}
		if m.UseCircuit {
			ride(m.CircDest, m.CircBlock)
		}
		if m.WantCircuit || m.SetupProbe {
			ride(m.Src, m.Block)
		}
	}
	flit := func(f *Flit) {
		if f != nil {
			msg(f.Msg)
		}
	}
	for _, ni := range n.nis {
		for vn := range ni.queues {
			for i := 0; i < ni.queues[vn].Len(); i++ {
				msg(ni.queues[vn].At(i))
			}
			msg(ni.open[vn].msg)
		}
		for i := 0; i < ni.toRouter.q.Len(); i++ {
			flit(ni.toRouter.q.At(i).f)
		}
	}
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			if p := r.in[d]; p != nil {
				for i := 0; i < p.byQ.Len(); i++ {
					flit(p.byQ.At(i).f)
				}
				for vn := range p.vcs {
					for _, vc := range p.vcs[vn] {
						for i := 0; i < vc.buf.Len(); i++ {
							flit(vc.buf.At(i))
						}
					}
				}
				if p.credit != nil {
					for i := 0; i < p.credit.q.Len(); i++ {
						if tok := p.credit.q.At(i).c.UndoCircuit; tok != nil {
							undo(tok.Dest, tok.Block)
						}
					}
				}
			}
			if op := r.out[d]; op != nil && op.link != nil {
				for i := 0; i < op.link.q.Len(); i++ {
					flit(op.link.q.At(i).f)
				}
			}
		}
	}
}

// wfNode identifies one input VC in the waits-for graph.
type wfNode struct {
	router mesh.NodeID
	in     mesh.Dir
	vn, vc int
}

func (w wfNode) String() string {
	return fmt.Sprintf("router %d %v vn%d vc%d", w.router, w.in, w.vn, w.vc)
}

// WaitsFor builds the channel waits-for graph — which blocked input VCs
// wait on which resource holders — and searches it for a cycle. A VC in
// VC-allocation waits on the current owners of its requested output port's
// VCs; an active VC out of downstream credits waits on the downstream
// input VC holding those slots. It returns a rendered cycle and true, or a
// description of the most-starved blocked channels and false when the
// graph is acyclic (a stalled chain, not a deadlock).
func (n *Network) WaitsFor(now sim.Cycle) (string, bool) {
	edges := map[wfNode][]wfNode{}
	oldest := map[wfNode]sim.Cycle{}
	for _, r := range n.routers {
		for d := mesh.Dir(0); d < mesh.NumDirs; d++ {
			p := r.in[d]
			if p == nil {
				continue
			}
			for vn := range p.vcs {
				for vci, vc := range p.vcs[vn] {
					f := vc.front()
					if f == nil || vc.state == vcIdle {
						continue
					}
					node := wfNode{router: r.id, in: d, vn: vn, vc: vci}
					oldest[node] = f.arrivedAt
					op := r.out[vc.route]
					if op == nil {
						continue
					}
					switch vc.state {
					case vcWaitVA:
						for ov := 0; ov < n.cfg.AllocatableVCs(vn); ov++ {
							if o := op.owner[vn][ov]; o.valid {
								edges[node] = append(edges[node],
									wfNode{router: r.id, in: o.in, vn: o.vn, vc: o.vc})
							}
						}
					case vcActive:
						if vc.route != mesh.Local && n.cfg.VCBuffered(vn, vc.outVC) &&
							op.credits[vn][vc.outVC] <= 0 {
							if nb, ok := n.cfg.Mesh.Neighbor(r.id, vc.route); ok {
								edges[node] = append(edges[node],
									wfNode{router: nb, in: vc.route.Opposite(), vn: vn, vc: vc.outVC})
							}
						}
					}
				}
			}
		}
	}

	// Iterative DFS with tri-state marks; a back edge closes a cycle.
	const (
		unseen = 0
		onPath = 1
		done   = 2
	)
	mark := map[wfNode]int{}
	var path []wfNode
	var dfs func(u wfNode) []wfNode
	dfs = func(u wfNode) []wfNode {
		mark[u] = onPath
		path = append(path, u)
		for _, v := range edges[u] {
			switch mark[v] {
			case onPath:
				for i, x := range path {
					if x == v {
						return path[i:]
					}
				}
			case unseen:
				if cyc := dfs(v); cyc != nil {
					return cyc
				}
			}
		}
		mark[u] = done
		path = path[:len(path)-1]
		return nil
	}
	for u := range edges {
		if mark[u] == unseen {
			if cyc := dfs(u); cyc != nil {
				var b strings.Builder
				b.WriteString("waits-for cycle: ")
				for i, x := range cyc {
					if i > 0 {
						b.WriteString(" -> ")
					}
					b.WriteString(x.String())
				}
				b.WriteString(" -> ")
				b.WriteString(cyc[0].String())
				return b.String(), true
			}
		}
	}

	// Acyclic: report the most-starved blocked channels instead.
	var worst wfNode
	worstAge := sim.Cycle(-1)
	for node, at := range oldest {
		if age := now - at; age > worstAge {
			worst, worstAge = node, age
		}
	}
	if worstAge < 0 {
		return "no blocked channels", false
	}
	return fmt.Sprintf("no waits-for cycle; most-starved channel: %s (head flit waiting %d cycles)",
		worst, worstAge), false
}
