package noc

import (
	"fmt"
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// TestFuzzConfigsWithAudit pushes randomized traffic through every network
// configuration shape (baseline, extra reply VC, unbuffered circuit VC
// without a handler is invalid — skip, speculative) and audits conservation
// after the drain. The credit/buffer panics inside the router double as
// in-flight assertions.
func TestFuzzConfigsWithAudit(t *testing.T) {
	shapes := map[string]func(m mesh.Mesh) NetConfig{
		"baseline": BaselineConfig,
		"threeReplyVCs": func(m mesh.Mesh) NetConfig {
			cfg := BaselineConfig(m)
			cfg.VCsPerVN[VNReply] = 3
			return cfg
		},
		"yxReplies": func(m mesh.Mesh) NetConfig {
			cfg := BaselineConfig(m)
			cfg.RepRouting = mesh.RouteYX
			return cfg
		},
		"speculative": specConfig,
		"overtake": func(m mesh.Mesh) NetConfig {
			cfg := BaselineConfig(m)
			cfg.AllowQueueOvertake = true
			return cfg
		},
	}
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for name, mk := range shapes {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(iters); seed++ {
				m := mesh.New(4, 4)
				rng := sim.NewRNG(seed * 977)
				h := newHarness(mk(m), nil, nil)
				n := 0
				// Bursty injection over time, not just at cycle 0.
				for burst := 0; burst < 10; burst++ {
					for i := 0; i < 15; i++ {
						src := mesh.NodeID(rng.Intn(m.Nodes()))
						dst := mesh.NodeID(rng.Intn(m.Nodes()))
						size := 1
						if rng.Bool(0.5) {
							size = 5
						}
						h.net.Send(msg(src, dst, rng.Intn(NumVNs), size), h.kernel.Now())
						if src != dst {
							n++
						} else {
							n++
						}
					}
					h.kernel.Run(sim.Cycle(rng.Intn(40)))
				}
				if _, ok := h.kernel.RunUntil(h.net.Quiescent, 100000); !ok {
					t.Fatalf("seed %d: drain failed", seed)
				}
				if len(h.delivered) != n {
					t.Fatalf("seed %d: delivered %d of %d", seed, len(h.delivered), n)
				}
				if err := h.net.AuditQuiescent(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestAuditCatchesForgedState(t *testing.T) {
	m := mesh.New(2, 2)
	h := newHarness(BaselineConfig(m), nil, nil)
	h.kernel.Run(5)
	r := h.net.Router(0)
	// Forge a stuck flit in a buffer.
	p := r.in[mesh.Local]
	p.vcs[VNRequest][0].buf.Push(
		&Flit{Msg: &Message{ID: 99, Size: 1}, Head: true, Tail: true})
	if err := h.net.AuditQuiescent(); err == nil {
		t.Fatal("forged buffered flit not detected")
	}
	p.vcs[VNRequest][0].buf.Pop()
	// Forge a held output VC.
	r.out[mesh.East].owner[VNReply][1] = outOwner{valid: true}
	if err := h.net.AuditQuiescent(); err == nil {
		t.Fatal("forged VC ownership not detected")
	}
	r.out[mesh.East].owner[VNReply][1] = outOwner{}
	// Forge a missing credit.
	r.out[mesh.East].credits[VNRequest][0]--
	if err := h.net.AuditQuiescent(); err == nil {
		t.Fatal("missing credit not detected")
	}
	r.out[mesh.East].credits[VNRequest][0]++
	if err := h.net.AuditQuiescent(); err != nil {
		t.Fatalf("restored state still failing: %v", err)
	}
}

func TestAuditNameErrors(t *testing.T) {
	// Error strings should carry enough context to debug from logs.
	m := mesh.New(2, 2)
	h := newHarness(BaselineConfig(m), nil, nil)
	r := h.net.Router(3)
	r.out[mesh.North].credits[VNReply][0] = 0
	err := h.net.AuditQuiescent()
	if err == nil {
		t.Fatal("expected an error")
	}
	want := fmt.Sprintf("router %d", 3)
	if !contains(err.Error(), want) || !contains(err.Error(), "credits") {
		t.Fatalf("uninformative audit error: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestDumpStateShowsStuckWork(t *testing.T) {
	m := mesh.New(2, 2)
	h := newHarness(BaselineConfig(m), nil, nil)
	if s := h.net.DumpState(); s != "network idle\n" {
		t.Fatalf("fresh network dump: %q", s)
	}
	h.net.Send(msg(0, 3, VNReply, 5), 0)
	h.kernel.Run(6) // mid-flight
	s := h.net.DumpState()
	if s == "network idle\n" {
		t.Fatal("in-flight traffic not visible in the dump")
	}
	if !contains(s, "router") && !contains(s, "NI") {
		t.Fatalf("dump lacks context: %q", s)
	}
	h.runUntilQuiet(t, 500)
	if s := h.net.DumpState(); s != "network idle\n" {
		t.Fatalf("drained network dump: %q", s)
	}
}
