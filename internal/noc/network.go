package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Network assembles the full mesh: one router and one NI per tile, with
// paired flit and credit links on every adjacency. It implements
// sim.Ticker; ticking the network advances every router and NI one cycle.
type Network struct {
	cfg     NetConfig
	routers []*Router
	nis     []*NI
	ev      PowerEvents
	msgID   uint64
	pool    pools
}

// NewNetwork builds the network. handler and hook may be nil (baseline).
func NewNetwork(cfg NetConfig, handler CircuitHandler, hook NIHook) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Speculative && handler != nil {
		panic("noc: speculative routers and reactive circuits are alternative designs; pick one")
	}
	n := &Network{cfg: cfg}
	n.pool.disabled = cfg.NoPool || envNoPool()
	m := cfg.Mesh
	n.routers = make([]*Router, m.Nodes())
	n.nis = make([]*NI, m.Nodes())
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		n.routers[id] = newRouter(id, &n.cfg, handler, &n.ev)
		n.nis[id] = newNI(id, &n.cfg, &n.ev, hook, &n.pool)
	}

	// Wire the local ports: NI -> router (injection) and router -> NI
	// (ejection), plus the credit wire for the router's local input.
	for id := range n.routers {
		r, ni := n.routers[id], n.nis[id]
		inj, injCr := &Link{}, &CreditLink{}
		ej := &Link{}
		ni.toRouter = inj
		ni.creditIn = injCr
		ni.fromRouter = ej
		r.addInput(mesh.Local, inj, injCr)
		r.addOutput(mesh.Local, ej, nil)
	}

	// Wire inter-router links: for every adjacency a->b create a flit
	// link (a's output, b's input) and its reverse credit wire.
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		for d := mesh.North; d <= mesh.West; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			flits, credits := &Link{}, &CreditLink{}
			n.routers[id].addOutput(d, flits, credits)
			n.routers[nb].addInput(d.Opposite(), flits, credits)
		}
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() *NetConfig { return &n.cfg }

// SetTracer attaches a lifecycle tracer to every NI (nil detaches).
func (n *Network) SetTracer(t *trace.Buffer) {
	for _, ni := range n.nis {
		ni.tracer = t
	}
}

// Router returns the router at node id.
func (n *Network) Router(id mesh.NodeID) *Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id mesh.NodeID) *NI { return n.nis[id] }

// Events returns the accumulated power-event counters.
func (n *Network) Events() *PowerEvents { return &n.ev }

// NextMsgID hands out unique message identifiers.
func (n *Network) NextMsgID() uint64 {
	n.msgID++
	return n.msgID
}

// Register adds every router and NI to k as individually activity-tracked
// components, in the exact order Tick visits them (routers by id, then NIs
// by id), and wires each link's wake callback to its receiving component.
// A network registered this way must not also be ticked monolithically.
func (n *Network) Register(k *sim.Kernel) {
	for _, r := range n.routers {
		w := k.Add(r)
		for d := range r.in {
			if p := r.in[d]; p != nil && p.link != nil {
				p.link.SetWake(w.Wake) // flits arriving from upstream / the NI
			}
		}
		for d := range r.out {
			if op := r.out[d]; op != nil && op.credit != nil {
				op.credit.SetWake(w.Wake) // credits arriving from downstream
			}
		}
	}
	for _, ni := range n.nis {
		w := k.Add(ni)
		ni.SetWaker(w)
		ni.fromRouter.SetWake(w.Wake)
		ni.creditIn.SetWake(w.Wake)
	}
}

// DescribeMetrics registers the network's counters with reg, including the
// free-list effectiveness gauges.
func (n *Network) DescribeMetrics(reg *sim.Registry) {
	n.ev.Describe(reg)
	reg.Counter("noc/pool_flit_allocs", &n.pool.FlitAllocs)
	reg.Counter("noc/pool_flit_reuses", &n.pool.FlitReuses)
	reg.Counter("noc/pool_msg_allocs", &n.pool.MsgAllocs)
	reg.Counter("noc/pool_msg_reuses", &n.pool.MsgReuses)
}

// Tick advances every router and NI one cycle.
func (n *Network) Tick(now sim.Cycle) {
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, ni := range n.nis {
		ni.Tick(now)
	}
}

// Quiescent reports whether no message is queued, buffered, or in flight
// anywhere in the network.
func (n *Network) Quiescent() bool {
	for _, ni := range n.nis {
		if ni.QueueLen() > 0 || ni.toRouter.Busy() || ni.fromRouter.Busy() {
			return false
		}
	}
	for _, r := range n.routers {
		if r.busy() {
			return false
		}
	}
	return true
}

// Send is a convenience for tests and examples: it assigns an id and
// enqueues m at its source NI.
func (n *Network) Send(m *Message, now sim.Cycle) {
	if !n.cfg.Mesh.Contains(m.Src) || !n.cfg.Mesh.Contains(m.Dst) {
		panic(fmt.Sprintf("noc: message endpoints %d->%d outside mesh", m.Src, m.Dst))
	}
	if m.ID == 0 {
		m.ID = n.NextMsgID()
	}
	n.nis[m.Src].Send(m, now)
}
