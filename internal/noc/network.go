package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Network assembles the full mesh: one router and one NI per tile, with
// paired flit and credit links on every adjacency. It implements
// sim.Ticker; ticking the network advances every router and NI one cycle.
type Network struct {
	cfg     NetConfig
	routers []*Router
	nis     []*NI
	ev      PowerEvents
	msgID   uint64
	pool    pools

	// Parallel-engine state (SetShards). Slot 0 of each per-shard array
	// aliases the legacy field above, so sequential execution and every
	// accessor that predates sharding see unchanged behaviour.
	nshards  int
	shardMap []int
	evShard  []*PowerEvents
	poolSh   []*pools
	// msgSeq holds per-shard message-id sequence counters; shard s hands
	// out ids seq*nshards+s+1, so the streams interleave without colliding
	// and a 1-shard network degenerates to the legacy 1,2,3,... sequence.
	msgSeq []uint64
	// boundary links cross a shard seam; they are staged and flushed at
	// the per-cycle barrier.
	boundaryFlits   []*Link
	boundaryCredits []*CreditLink
}

// NewNetwork builds the network. handler and hook may be nil (baseline).
func NewNetwork(cfg NetConfig, handler CircuitHandler, hook NIHook) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Speculative && handler != nil {
		panic("noc: speculative routers and reactive circuits are alternative designs; pick one")
	}
	n := &Network{cfg: cfg}
	n.pool.disabled = cfg.NoPool || envNoPool()
	m := cfg.Mesh
	n.routers = make([]*Router, m.Nodes())
	n.nis = make([]*NI, m.Nodes())
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		n.routers[id] = newRouter(id, &n.cfg, handler, &n.ev)
		n.nis[id] = newNI(id, &n.cfg, &n.ev, hook, &n.pool)
	}

	// Wire the local ports: NI -> router (injection) and router -> NI
	// (ejection), plus the credit wire for the router's local input.
	for id := range n.routers {
		r, ni := n.routers[id], n.nis[id]
		inj, injCr := &Link{}, &CreditLink{}
		ej := &Link{}
		ni.toRouter = inj
		ni.creditIn = injCr
		ni.fromRouter = ej
		r.addInput(mesh.Local, inj, injCr)
		r.addOutput(mesh.Local, ej, nil)
	}

	// Wire inter-router links: for every adjacency a->b create a flit
	// link (a's output, b's input) and its reverse credit wire.
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		for d := mesh.North; d <= mesh.West; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			flits, credits := &Link{}, &CreditLink{}
			// SDM divides only the mesh wires; the NI injection/ejection
			// links wired above stay full-width.
			flits.SetLanes(cfg.LinkLanes)
			n.routers[id].addOutput(d, flits, credits)
			n.routers[nb].addInput(d.Opposite(), flits, credits)
		}
	}
	return n
}

// Config returns the network configuration.
func (n *Network) Config() *NetConfig { return &n.cfg }

// SetTracer attaches a lifecycle tracer to every NI (nil detaches).
func (n *Network) SetTracer(t *trace.Buffer) {
	for _, ni := range n.nis {
		ni.tracer = t
	}
}

// Router returns the router at node id.
func (n *Network) Router(id mesh.NodeID) *Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id mesh.NodeID) *NI { return n.nis[id] }

// Events returns the accumulated power-event counters (shard 0's slice of
// them under the parallel engine; see EventsTotal for the whole network).
func (n *Network) Events() *PowerEvents { return &n.ev }

// EventsAt returns the power-event counters the component at tile id must
// charge — its shard's slice. With one shard this is Events().
func (n *Network) EventsAt(id mesh.NodeID) *PowerEvents {
	if n.nshards <= 1 {
		return &n.ev
	}
	return n.evShard[n.shardMap[id]]
}

// EventsTotal folds every shard's power events into one total. With one
// shard it is simply a copy of Events().
func (n *Network) EventsTotal() PowerEvents {
	total := n.ev
	for s := 1; s < n.nshards; s++ {
		total.Add(n.evShard[s])
	}
	return total
}

// ResetEvents zeroes every shard's power-event counters.
func (n *Network) ResetEvents() {
	n.ev = PowerEvents{}
	for s := 1; s < n.nshards; s++ {
		*n.evShard[s] = PowerEvents{}
	}
}

// NextMsgID hands out unique message identifiers. Production senders use
// NextMsgIDAt so id allocation stays shard-local; this tile-less form
// (tests, examples) draws from shard 0's stream.
func (n *Network) NextMsgID() uint64 {
	if n.nshards > 1 {
		return n.nextMsgIDShard(0)
	}
	n.msgID++
	return n.msgID
}

// NextMsgIDAt hands out a unique message identifier from tile src's shard
// stream. The per-shard streams interleave (shard s issues s+1, s+1+N,
// s+1+2N, ...), so ids are globally unique without cross-shard contention,
// and a 1-shard network produces the legacy 1,2,3,... sequence.
func (n *Network) NextMsgIDAt(src mesh.NodeID) uint64 {
	if n.nshards <= 1 {
		return n.NextMsgID()
	}
	return n.nextMsgIDShard(n.shardMap[src])
}

func (n *Network) nextMsgIDShard(s int) uint64 {
	seq := n.msgSeq[s]
	n.msgSeq[s]++
	return seq*uint64(n.nshards) + uint64(s) + 1
}

// Shards returns the shard count the network is partitioned into.
func (n *Network) Shards() int {
	if n.nshards < 1 {
		return 1
	}
	return n.nshards
}

// ShardOf returns the shard owning tile id.
func (n *Network) ShardOf(id mesh.NodeID) int {
	if n.nshards <= 1 {
		return 0
	}
	return n.shardMap[id]
}

// SetShards partitions the network into shards tile bands for the parallel
// engine: per-shard power-event and pool slices replace the single shared
// instances (slot 0 aliasing the legacy fields), per-tile components are
// re-pointed at their shard's slices, and every link crossing a shard seam
// is switched to staged (barrier-flushed) delivery. Must run before the
// network is registered with a kernel and before any traffic. shardMap maps
// every tile to its shard (mesh.ShardMap); shards <= 1 is a no-op.
func (n *Network) SetShards(shards int, shardMap []int) {
	if shards <= 1 {
		return
	}
	if len(shardMap) != len(n.routers) {
		panic(fmt.Sprintf("noc: shard map covers %d of %d tiles", len(shardMap), len(n.routers)))
	}
	n.nshards = shards
	n.shardMap = shardMap
	n.msgSeq = make([]uint64, shards)
	n.evShard = make([]*PowerEvents, shards)
	n.poolSh = make([]*pools, shards)
	n.evShard[0] = &n.ev
	n.poolSh[0] = &n.pool
	for s := 1; s < shards; s++ {
		n.evShard[s] = &PowerEvents{}
		n.poolSh[s] = &pools{disabled: n.pool.disabled}
	}
	for id := range n.routers {
		s := shardMap[id]
		n.routers[id].ev = n.evShard[s]
		n.nis[id].ev = n.evShard[s]
		n.nis[id].pool = n.poolSh[s]
	}
	m := n.cfg.Mesh
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		for d := mesh.North; d <= mesh.West; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok || shardMap[id] == shardMap[nb] {
				continue
			}
			op := n.routers[id].out[d]
			op.link.SetStaged(true)
			op.credit.SetStaged(true)
			n.boundaryFlits = append(n.boundaryFlits, op.link)
			n.boundaryCredits = append(n.boundaryCredits, op.credit)
		}
	}
}

// FlushBoundary publishes every staged boundary-link send and wakes the
// receiving components. The kernel coordinator calls it from the per-cycle
// epilogue, after all shard workers passed the phase barrier — this is the
// deterministic cross-shard wake hand-off.
func (n *Network) FlushBoundary(sim.Cycle) {
	for _, l := range n.boundaryFlits {
		l.Flush()
	}
	for _, l := range n.boundaryCredits {
		l.Flush()
	}
}

// Register adds every router and NI to k as individually activity-tracked
// components, in the exact order Tick visits them (routers by id, then NIs
// by id), and wires each link's wake callback to its receiving component.
// A network registered this way must not also be ticked monolithically.
func (n *Network) Register(k *sim.Kernel) {
	for id, r := range n.routers {
		k.SetShard(n.ShardOf(mesh.NodeID(id)))
		w := k.Add(r)
		for d := range r.in {
			if p := r.in[d]; p != nil && p.link != nil {
				p.link.SetWake(w.Wake) // flits arriving from upstream / the NI
			}
		}
		for d := range r.out {
			if op := r.out[d]; op != nil && op.credit != nil {
				op.credit.SetWake(w.Wake) // credits arriving from downstream
			}
		}
	}
	for id, ni := range n.nis {
		k.SetShard(n.ShardOf(mesh.NodeID(id)))
		w := k.Add(ni)
		ni.SetWaker(w)
		ni.fromRouter.SetWake(w.Wake)
		ni.creditIn.SetWake(w.Wake)
	}
	k.SetShard(0)
}

// DescribeMetrics registers the network's counters with reg, including the
// free-list effectiveness gauges.
func (n *Network) DescribeMetrics(reg *sim.Registry) {
	n.ev.Describe(reg)
	reg.Counter("noc/pool_flit_allocs", &n.pool.FlitAllocs)
	reg.Counter("noc/pool_flit_reuses", &n.pool.FlitReuses)
	reg.Counter("noc/pool_msg_allocs", &n.pool.MsgAllocs)
	reg.Counter("noc/pool_msg_reuses", &n.pool.MsgReuses)
	// Per-shard slices register under the same names; the registry sums
	// same-named counters, so snapshots report whole-network totals
	// independent of the shard count.
	for s := 1; s < n.nshards; s++ {
		n.evShard[s].Describe(reg)
		reg.Counter("noc/pool_flit_allocs", &n.poolSh[s].FlitAllocs)
		reg.Counter("noc/pool_flit_reuses", &n.poolSh[s].FlitReuses)
		reg.Counter("noc/pool_msg_allocs", &n.poolSh[s].MsgAllocs)
		reg.Counter("noc/pool_msg_reuses", &n.poolSh[s].MsgReuses)
	}
}

// Tick advances every router and NI one cycle.
func (n *Network) Tick(now sim.Cycle) {
	for _, r := range n.routers {
		r.Tick(now)
	}
	for _, ni := range n.nis {
		ni.Tick(now)
	}
}

// Quiescent reports whether no message is queued, buffered, or in flight
// anywhere in the network.
func (n *Network) Quiescent() bool {
	for _, ni := range n.nis {
		if ni.QueueLen() > 0 || ni.toRouter.Busy() || ni.fromRouter.Busy() {
			return false
		}
	}
	for _, r := range n.routers {
		if r.busy() {
			return false
		}
	}
	return true
}

// Send is a convenience for tests and examples: it assigns an id and
// enqueues m at its source NI.
func (n *Network) Send(m *Message, now sim.Cycle) {
	if !n.cfg.Mesh.Contains(m.Src) || !n.cfg.Mesh.Contains(m.Dst) {
		panic(fmt.Sprintf("noc: message endpoints %d->%d outside mesh", m.Src, m.Dst))
	}
	if m.ID == 0 {
		m.ID = n.NextMsgIDAt(m.Src)
	}
	n.nis[m.Src].Send(m, now)
}
