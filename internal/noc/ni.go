package noc

import (
	"fmt"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/trace"
)

// Receiver consumes messages fully delivered at a network interface.
type Receiver func(m *Message, now sim.Cycle)

// NI is a tile's network interface: it serializes outgoing messages into
// flits, arbitrates injection between the two virtual networks, tracks the
// credits of its router's local input port, and reassembles arrivals.
// Messages whose source and destination tile coincide never enter the
// network and are delivered locally after one cycle.
type NI struct {
	id   mesh.NodeID
	cfg  *NetConfig
	ev   *PowerEvents
	pool *pools

	toRouter   *Link
	fromRouter *Link
	creditIn   *CreditLink

	queues  [NumVNs]ring[*Message]
	open    [NumVNs]openMsg
	credits [NumVNs][]int
	vnPtr   int

	local ring[localDelivery]

	hook   NIHook
	recv   Receiver
	tracer *trace.Buffer
	wake   sim.Waker

	// expectSeq validates wormhole integrity on ejection: flits of each
	// message must arrive in sequence order with none missing.
	expectSeq map[*Message]int

	// injected/ejected count flits this NI has put on and taken off the
	// network, feeding the verification suite's conservation and progress
	// oracles. Local (Src == Dst) deliveries never become flits and are
	// not counted.
	injected int64
	ejected  int64
}

// openMsg is the message currently serializing into flits on a virtual
// network. Flits are drawn from the network's free-list one per cycle as
// they inject, rather than pre-expanded into a []*Flit per message.
type openMsg struct {
	msg  *Message
	next int
	vc   int
}

type localDelivery struct {
	msg *Message
	at  sim.Cycle
}

func newNI(id mesh.NodeID, cfg *NetConfig, ev *PowerEvents, hook NIHook, pool *pools) *NI {
	ni := &NI{id: id, cfg: cfg, ev: ev, hook: hook, pool: pool}
	for vn := 0; vn < NumVNs; vn++ {
		ni.credits[vn] = make([]int, cfg.VCsPerVN[vn])
		for vc := range ni.credits[vn] {
			if cfg.VCBuffered(vn, vc) {
				ni.credits[vn][vc] = cfg.BufDepth
			}
		}
	}
	return ni
}

// ID returns the tile id this NI serves.
func (ni *NI) ID() mesh.NodeID { return ni.id }

// SetReceiver installs the delivery callback (the tile's controllers).
func (ni *NI) SetReceiver(r Receiver) { ni.recv = r }

// SetWaker installs the NI's kernel waker; Send and SendFront self-wake so
// an activity-tracked NI resumes injecting when it is handed a message.
func (ni *NI) SetWaker(w sim.Waker) { ni.wake = w }

// Quiescent reports whether the NI's next Tick is a pure no-op: nothing
// queued, draining, or pending local delivery, and nothing in flight on the
// ejection or credit wires from its router.
func (ni *NI) Quiescent() bool {
	return ni.QueueLen() == 0 && !ni.fromRouter.Busy() && !ni.creditIn.Busy()
}

// Send enqueues m for injection at cycle now.
func (ni *NI) Send(m *Message, now sim.Cycle) {
	if m.Size <= 0 {
		panic(fmt.Sprintf("noc: message %d has size %d", m.ID, m.Size))
	}
	if m.VN < 0 || m.VN >= NumVNs {
		panic(fmt.Sprintf("noc: message %d has VN %d", m.ID, m.VN))
	}
	m.EnqueuedAt = now
	ni.wake.Wake()
	if ni.tracer != nil {
		ni.tracer.Record(now, trace.Enqueue, m.ID, ni.id,
			fmt.Sprintf("type=%d %d->%d size=%d", m.Type, m.Src, m.Dst, m.Size))
	}
	if m.Src == m.Dst {
		// Local exchange between the L1 and the co-located L2 bank: it
		// never traverses the network (Table 1 counts only network
		// messages) but still costs a cycle through the tile wiring.
		m.LocalHop = true
		m.InjectedAt = now
		ni.local.Push(localDelivery{msg: m, at: now + 1})
		return
	}
	ni.queues[m.VN].Push(m)
}

// SendFront enqueues m ahead of everything waiting in its virtual network —
// used by setup probes that must precede the reply they announce.
func (ni *NI) SendFront(m *Message, now sim.Cycle) {
	if m.Src == m.Dst {
		ni.Send(m, now)
		return
	}
	m.EnqueuedAt = now
	ni.wake.Wake()
	ni.queues[m.VN].PushFront(m)
}

// ReplyIdle reports whether the reply virtual network has nothing queued or
// draining at this NI — a reply enqueued now will start injecting within
// two cycles. The coherence layer uses this to decide when eliminating an
// acknowledgement is safe for timed circuits.
func (ni *NI) ReplyIdle() bool {
	return ni.queues[VNReply].Len() == 0 && ni.open[VNReply].msg == nil
}

// QueueLen returns the number of messages waiting or draining at this NI.
func (ni *NI) QueueLen() int {
	n := ni.local.Len()
	for vn := 0; vn < NumVNs; vn++ {
		n += ni.queues[vn].Len()
		if ni.open[vn].msg != nil {
			n++
		}
	}
	return n
}

// Tick advances the NI one cycle: credits, ejection, local deliveries,
// then at most one injected flit.
func (ni *NI) Tick(now sim.Cycle) {
	for {
		c, ok := ni.creditIn.Recv(now)
		if !ok {
			break
		}
		if c.Pure {
			continue
		}
		ni.credits[c.VN][c.VC]++
		if ni.credits[c.VN][c.VC] > ni.cfg.BufDepth {
			panic(fmt.Sprintf("noc: NI %d credit overflow vn%d vc%d", ni.id, c.VN, c.VC))
		}
	}

	if f := ni.fromRouter.Recv(now); f != nil {
		ni.ejected++
		ni.checkSequence(f)
		if f.Tail {
			ni.deliverTail(f, now)
		}
		// The flit's journey ends here; nothing downstream of the NI may
		// hold it (DESIGN.md §5b), so it returns to the free-list.
		ni.pool.putFlit(f)
	}

	for ni.local.Len() > 0 && ni.local.Front().at <= now {
		m := ni.local.Pop().msg
		m.DeliveredAt = now
		if ni.recv != nil {
			ni.recv(m, now)
		}
	}

	ni.inject(now)
}

// checkSequence asserts wormhole integrity: the flits of every message
// arrive in order with none missing — any routing or VC-discipline bug
// surfaces here instead of as silent data corruption.
func (ni *NI) checkSequence(f *Flit) {
	if ni.expectSeq == nil {
		ni.expectSeq = map[*Message]int{}
	}
	want := ni.expectSeq[f.Msg]
	if f.Seq != want {
		panic(fmt.Sprintf("noc: NI %d: msg %d flit %d arrived, expected %d (wormhole violated)",
			ni.id, f.Msg.ID, f.Seq, want))
	}
	if f.Tail {
		delete(ni.expectSeq, f.Msg)
	} else {
		ni.expectSeq[f.Msg] = want + 1
	}
}

// deliverTail finalizes a fully arrived message.
func (ni *NI) deliverTail(f *Flit, now sim.Cycle) {
	m := f.Msg
	m.DeliveredAt = now
	if ni.tracer != nil {
		ni.tracer.Record(now, trace.Deliver, m.ID, ni.id,
			fmt.Sprintf("net=%d queue=%d", m.DeliveredAt-m.InjectedAt, m.InjectedAt-m.EnqueuedAt))
	}
	deliver := true
	if ni.hook != nil {
		deliver = ni.hook.OnDeliver(ni.id, m, now)
	}
	if deliver && ni.recv != nil {
		ni.recv(m, now)
	}
}

// inject sends at most one flit. A reply streaming onto a reactive circuit
// has absolute priority and is never interleaved with other traffic: the
// reserved time window covers exactly one flit per cycle, so the burst must
// stay contiguous. Otherwise the virtual networks round-robin.
func (ni *NI) inject(now sim.Cycle) {
	for vn := 0; vn < NumVNs; vn++ {
		if o := &ni.open[vn]; o.msg != nil && o.msg.UseCircuit {
			ni.tryInjectVN(vn, now)
			return
		}
	}
	for i := 0; i < NumVNs; i++ {
		vn := (ni.vnPtr + i) % NumVNs
		if ni.tryInjectVN(vn, now) {
			ni.vnPtr = (vn + 1) % NumVNs
			return
		}
	}
}

func (ni *NI) tryInjectVN(vn int, now sim.Cycle) bool {
	o := &ni.open[vn]
	if o.msg == nil {
		q := &ni.queues[vn]
		if q.Len() == 0 {
			return false
		}
		// The hook is consulted every cycle until injection starts; it
		// commits its decision (circuit ride, scrounge, classification)
		// only in the call whose returned cycle allows injection now.
		// Normally only the queue head is considered (FIFO); with
		// AllowQueueOvertake later messages may pass a held-back head.
		scan := 1
		if ni.cfg.AllowQueueOvertake {
			scan = q.Len()
			if scan > 8 {
				scan = 8
			}
		}
		pick := -1
		for i := 0; i < scan; i++ {
			m := q.At(i)
			if ni.hook != nil {
				if notBefore := ni.hook.OnInject(ni.id, m, now); now < notBefore {
					continue // still waiting (e.g. for its setup probe)
				}
			}
			pick = i
			break
		}
		if pick < 0 {
			return false
		}
		m := q.At(pick)
		vc := ni.pickVC(vn, m)
		if vc < 0 {
			return false
		}
		q.RemoveAt(pick)
		*o = openMsg{msg: m, vc: vc}
	}
	// Credit for the next flit (unbuffered circuit VCs need none).
	if ni.cfg.VCBuffered(vn, o.vc) {
		if ni.credits[vn][o.vc] <= 0 {
			return false
		}
		ni.credits[vn][o.vc]--
	}
	f := ni.pool.getFlit()
	f.Msg = o.msg
	f.Seq = o.next
	f.Head = o.next == 0
	f.Tail = o.next == o.msg.Size-1
	f.VC = o.vc
	if f.Head {
		o.msg.InjectedAt = now
		if ni.tracer != nil {
			note := fmt.Sprintf("vc=%d", o.vc)
			if o.msg.UseCircuit {
				note += " on-circuit"
			}
			ni.tracer.Record(now, trace.Inject, o.msg.ID, ni.id, note)
		}
	}
	ni.toRouter.Send(f, now)
	ni.injected++
	ni.ev.LinkFlits++
	o.next++
	if o.next == o.msg.Size {
		*o = openMsg{}
	}
	return true
}

// pickVC chooses the injection VC: a forced circuit VC (the switching
// policy's Inject hook sets Message.InjectVC when the reply rides a
// reservation), or the allocatable VC with the most credits.
func (ni *NI) pickVC(vn int, m *Message) int {
	if m.InjectVC > 0 {
		if m.InjectVC >= ni.cfg.VCsPerVN[vn] {
			panic(fmt.Sprintf("noc: message %d forces invalid vc%d", m.ID, m.InjectVC))
		}
		if ni.cfg.VCBuffered(vn, m.InjectVC) && ni.credits[vn][m.InjectVC] <= 0 {
			return -1
		}
		return m.InjectVC
	}
	best, bestCr := -1, 0
	for vc := 0; vc < ni.cfg.AllocatableVCs(vn); vc++ {
		if cr := ni.credits[vn][vc]; cr > bestCr {
			best, bestCr = vc, cr
		}
	}
	return best
}
