package noc

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

func TestSendFrontOrdersAheadOfQueue(t *testing.T) {
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	ni := h.net.NI(0)
	a := msg(0, 1, VNReply, 1)
	b := msg(0, 1, VNReply, 1)
	a.ID, b.ID = 1, 2
	ni.Send(a, 0)
	ni.SendFront(b, 0)
	h.runUntilQuiet(t, 200)
	if len(h.delivered) != 2 {
		t.Fatalf("delivered %d", len(h.delivered))
	}
	if !(b.InjectedAt < a.InjectedAt) {
		t.Fatalf("SendFront did not jump the queue: front@%d, queued@%d", b.InjectedAt, a.InjectedAt)
	}
}

func TestReplyIdle(t *testing.T) {
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	ni := h.net.NI(0)
	if !ni.ReplyIdle() {
		t.Fatal("fresh NI should be reply-idle")
	}
	ni.Send(msg(0, 1, VNReply, 5), 0)
	if ni.ReplyIdle() {
		t.Fatal("queued reply should clear ReplyIdle")
	}
	// Requests do not affect reply idleness.
	h.runUntilQuiet(t, 300)
	if !ni.ReplyIdle() {
		t.Fatal("drained NI should be reply-idle again")
	}
	ni.Send(msg(0, 1, VNRequest, 5), h.kernel.Now())
	if !ni.ReplyIdle() {
		t.Fatal("request traffic must not affect ReplyIdle")
	}
	h.runUntilQuiet(t, 300)
}

func TestForcedInjectVC(t *testing.T) {
	// A message forcing a circuit VC must be injected on it; the handler
	// spy observes the arrival VC at the first router via Bypass.
	m := mesh.New(2, 1)
	opts := BaselineConfig(m)
	opts.ReplyCircuitVCs = 1
	opts.CircuitVCUnbuffered = false // buffered so no circuit is required
	vcSpy := &vcRecorder{}
	h := newHarness(opts, vcSpy, nil)
	mg := msg(0, 1, VNReply, 1)
	mg.InjectVC = 1
	mg.UseCircuit = true // force the bypass lookup so the spy sees the VC
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 200)
	if len(vcSpy.vcs) == 0 {
		t.Fatal("spy saw no flits")
	}
	if vcSpy.vcs[0] != 1 {
		t.Fatalf("flit arrived on vc%d, want the forced vc1", vcSpy.vcs[0])
	}
}

type vcRecorder struct{ vcs []int }

func (v *vcRecorder) OnRequestVA(mesh.NodeID, *Message, mesh.Dir, mesh.Dir, sim.Cycle) {}
func (v *vcRecorder) Bypass(_ mesh.NodeID, f *Flit, _ mesh.Dir, _ sim.Cycle) (mesh.Dir, int, bool) {
	v.vcs = append(v.vcs, f.VC)
	return 0, 0, false
}
func (v *vcRecorder) Release(mesh.NodeID, *Flit, mesh.Dir, sim.Cycle) {}
func (v *vcRecorder) OnUndo(mesh.NodeID, *UndoToken, mesh.Dir, sim.Cycle) (mesh.Dir, bool) {
	return 0, false
}
func (v *vcRecorder) BypassBuffered() bool { return true }

func TestLocalDeliverySkipsHooksAndNetwork(t *testing.T) {
	m := mesh.New(2, 2)
	h := newHarness(BaselineConfig(m), nil, nil)
	mg := msg(1, 1, VNReply, 5)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 50)
	if !mg.LocalHop {
		t.Fatal("local message not marked")
	}
	if mg.DeliveredAt != 1 {
		t.Fatalf("local delivery at %d", mg.DeliveredAt)
	}
}

func TestSequenceCheckerCatchesCorruption(t *testing.T) {
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	ni := h.net.NI(1)
	msg5 := msg(0, 1, VNReply, 5)
	flits := flitsOf(msg5)
	ni.checkSequence(flits[0])
	ni.checkSequence(flits[1])
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order flit not caught")
		}
	}()
	ni.checkSequence(flits[3]) // skipped flit 2
}

func TestInjectionRoundRobinBetweenVNs(t *testing.T) {
	// With both VNs loaded, neither starves: interleaving means both
	// finish within a message time of each other.
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	a := msg(0, 1, VNRequest, 5)
	b := msg(0, 1, VNReply, 5)
	h.net.Send(a, 0)
	h.net.Send(b, 0)
	h.runUntilQuiet(t, 200)
	gap := a.DeliveredAt - b.DeliveredAt
	if gap < 0 {
		gap = -gap
	}
	if gap > 5 {
		t.Fatalf("VN starvation at injection: gap %d", gap)
	}
}
