package noc

import (
	"testing"
	"testing/quick"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// harness drives a network and collects deliveries.
type harness struct {
	net       *Network
	kernel    *sim.Kernel
	delivered []*Message
}

func newHarness(cfg NetConfig, handler CircuitHandler, hook NIHook) *harness {
	h := &harness{net: NewNetwork(cfg, handler, hook), kernel: sim.NewKernel()}
	for id := mesh.NodeID(0); int(id) < cfg.Mesh.Nodes(); id++ {
		h.net.NI(id).SetReceiver(func(m *Message, now sim.Cycle) {
			h.delivered = append(h.delivered, m)
		})
	}
	h.kernel.Register(h.net)
	return h
}

func (h *harness) runUntilQuiet(t *testing.T, horizon sim.Cycle) {
	t.Helper()
	_, ok := h.kernel.RunUntil(h.net.Quiescent, horizon)
	if !ok {
		t.Fatalf("network not quiescent after %d cycles (%d delivered)", horizon, len(h.delivered))
	}
}

func msg(src, dst mesh.NodeID, vn, size int) *Message {
	return &Message{Src: src, Dst: dst, VN: vn, Size: size}
}

// minLatency is the contention-free end-to-end latency from head injection
// to tail delivery: 5 cycles per router (4 pipeline stages + link) for each
// of hops+1 routers, plus the injection link, plus size-1 cycles of
// pipelined body flits.
func minLatency(m mesh.Mesh, src, dst mesh.NodeID, size int) sim.Cycle {
	h := sim.Cycle(m.Hops(src, dst))
	return 5*(h+1) + 2 + sim.Cycle(size-1)
}

func TestSingleFlitLatencyExact(t *testing.T) {
	m := mesh.New(4, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	mg := msg(0, 3, VNRequest, 1)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 200)
	if len(h.delivered) != 1 {
		t.Fatalf("delivered %d messages", len(h.delivered))
	}
	want := minLatency(m, 0, 3, 1) // 3 hops: 5*4+2 = 22
	if got := mg.DeliveredAt - mg.InjectedAt; got != want {
		t.Fatalf("latency %d, want %d", got, want)
	}
	if mg.InjectedAt != mg.EnqueuedAt {
		t.Fatalf("uncontended injection should be immediate: enq %d inj %d", mg.EnqueuedAt, mg.InjectedAt)
	}
}

func TestFiveFlitMessageLatency(t *testing.T) {
	m := mesh.New(4, 4)
	h := newHarness(BaselineConfig(m), nil, nil)
	mg := msg(0, 15, VNReply, 5)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 300)
	want := minLatency(m, 0, 15, 5) // 6 hops: 5*7+2+4 = 41
	if got := mg.DeliveredAt - mg.InjectedAt; got != want {
		t.Fatalf("latency %d, want %d", got, want)
	}
}

func TestOneHopLatency(t *testing.T) {
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	mg := msg(0, 1, VNRequest, 1)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 100)
	if got, want := mg.DeliveredAt-mg.InjectedAt, minLatency(m, 0, 1, 1); got != want {
		t.Fatalf("one-hop latency %d, want %d", got, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := mesh.New(2, 2)
	h := newHarness(BaselineConfig(m), nil, nil)
	mg := msg(2, 2, VNRequest, 5)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 10)
	if len(h.delivered) != 1 {
		t.Fatal("local message not delivered")
	}
	if mg.DeliveredAt != 1 {
		t.Fatalf("local delivery at %d, want 1", mg.DeliveredAt)
	}
	if h.net.Events().LinkFlits != 0 {
		t.Fatal("local message must not touch the network")
	}
}

func TestManyToOneAllDelivered(t *testing.T) {
	m := mesh.New(4, 4)
	h := newHarness(BaselineConfig(m), nil, nil)
	n := 0
	for src := mesh.NodeID(0); int(src) < m.Nodes(); src++ {
		if src == 5 {
			continue
		}
		h.net.Send(msg(src, 5, VNReply, 5), 0)
		h.net.Send(msg(src, 5, VNRequest, 1), 0)
		n += 2
	}
	h.runUntilQuiet(t, 5000)
	if len(h.delivered) != n {
		t.Fatalf("delivered %d of %d", len(h.delivered), n)
	}
}

func TestWormholeFlitOrder(t *testing.T) {
	// Two 5-flit messages from the same source to the same destination
	// must arrive fully and in order.
	m := mesh.New(4, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	a, b := msg(0, 3, VNReply, 5), msg(0, 3, VNReply, 5)
	h.net.Send(a, 0)
	h.net.Send(b, 0)
	h.runUntilQuiet(t, 500)
	if len(h.delivered) != 2 {
		t.Fatalf("delivered %d", len(h.delivered))
	}
	if a.DeliveredAt >= b.DeliveredAt {
		t.Fatalf("same-NI messages reordered: a@%d b@%d", a.DeliveredAt, b.DeliveredAt)
	}
}

func TestVNIsolation(t *testing.T) {
	// Heavy reply traffic must not starve requests forever (separate VNs).
	m := mesh.New(4, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	for i := 0; i < 10; i++ {
		h.net.Send(msg(0, 3, VNReply, 5), 0)
	}
	req := msg(0, 3, VNRequest, 1)
	h.net.Send(req, 0)
	h.runUntilQuiet(t, 2000)
	if req.DeliveredAt == 0 {
		t.Fatal("request starved")
	}
	// The request shares only the physical links; it should not wait for
	// all 10 replies to fully drain.
	last := h.delivered[len(h.delivered)-1]
	if req == last {
		t.Fatal("request delivered dead last despite separate VN")
	}
}

func TestOppositeDirectionsShareNothing(t *testing.T) {
	m := mesh.New(2, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	a, b := msg(0, 1, VNRequest, 1), msg(1, 0, VNRequest, 1)
	h.net.Send(a, 0)
	h.net.Send(b, 0)
	h.runUntilQuiet(t, 100)
	want := minLatency(m, 0, 1, 1)
	if a.DeliveredAt-a.InjectedAt != want || b.DeliveredAt-b.InjectedAt != want {
		t.Fatalf("opposite flows interfered: %d and %d, want %d",
			a.DeliveredAt-a.InjectedAt, b.DeliveredAt-b.InjectedAt, want)
	}
}

func TestRandomTrafficProperty(t *testing.T) {
	// Property: under random traffic, every message is delivered, and no
	// message beats the contention-free minimum latency.
	m := mesh.New(4, 4)
	check := func(seed uint32) bool {
		rng := sim.NewRNG(uint64(seed))
		h := newHarness(BaselineConfig(m), nil, nil)
		var msgs []*Message
		for i := 0; i < 40; i++ {
			src := mesh.NodeID(rng.Intn(m.Nodes()))
			dst := mesh.NodeID(rng.Intn(m.Nodes()))
			vn := rng.Intn(NumVNs)
			size := 1
			if rng.Bool(0.5) {
				size = 5
			}
			mg := msg(src, dst, vn, size)
			msgs = append(msgs, mg)
			h.net.Send(mg, 0)
		}
		if _, ok := h.kernel.RunUntil(h.net.Quiescent, 20000); !ok {
			return false
		}
		if len(h.delivered) != len(msgs) {
			return false
		}
		for _, mg := range msgs {
			if mg.Src == mg.Dst {
				continue
			}
			if mg.DeliveredAt-mg.InjectedAt < minLatency(m, mg.Src, mg.Dst, mg.Size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPowerEventsAccumulate(t *testing.T) {
	m := mesh.New(4, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	h.net.Send(msg(0, 3, VNRequest, 1), 0)
	h.runUntilQuiet(t, 200)
	ev := h.net.Events()
	// 4 routers on the path, each buffers and reads the flit once.
	if ev.BufWrites != 4 || ev.BufReads != 4 {
		t.Fatalf("buffer events %d/%d, want 4/4", ev.BufWrites, ev.BufReads)
	}
	if ev.XbarTraversals != 4 {
		t.Fatalf("xbar traversals %d, want 4", ev.XbarTraversals)
	}
	// Link flits: injection + 3 inter-router (ejection to NI is local wiring).
	if ev.LinkFlits != 4 {
		t.Fatalf("link flits %d, want 4", ev.LinkFlits)
	}
	if ev.VAActivity != 4 || ev.SAActivity != 4 {
		t.Fatalf("allocator events %d/%d, want 4/4", ev.VAActivity, ev.SAActivity)
	}
}

func TestQuiescentInitially(t *testing.T) {
	h := newHarness(BaselineConfig(mesh.New(2, 2)), nil, nil)
	if !h.net.Quiescent() {
		t.Fatal("fresh network should be quiescent")
	}
}

func TestNetConfigValidate(t *testing.T) {
	good := BaselineConfig(mesh.New(4, 4))
	if err := good.Validate(); err != nil {
		t.Fatalf("baseline config invalid: %v", err)
	}
	bad := good
	bad.BufDepth = 0
	if bad.Validate() == nil {
		t.Fatal("zero buffer depth accepted")
	}
	bad = good
	bad.ReplyCircuitVCs = 2 // would leave no non-circuit reply VC
	if bad.Validate() == nil {
		t.Fatal("all-circuit reply VN accepted")
	}
	bad = good
	bad.VCsPerVN[0] = 0
	if bad.Validate() == nil {
		t.Fatal("zero VCs accepted")
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := BaselineConfig(mesh.New(4, 4))
	cfg.VCsPerVN = [NumVNs]int{2, 3}
	cfg.ReplyCircuitVCs = 2
	cfg.CircuitVCUnbuffered = false
	if cfg.CircuitVC() != 1 {
		t.Fatalf("CircuitVC = %d, want 1", cfg.CircuitVC())
	}
	if !cfg.IsCircuitVC(VNReply, 1) || !cfg.IsCircuitVC(VNReply, 2) || cfg.IsCircuitVC(VNReply, 0) {
		t.Fatal("IsCircuitVC wrong")
	}
	if cfg.IsCircuitVC(VNRequest, 1) {
		t.Fatal("request VN has no circuit VCs")
	}
	if cfg.AllocatableVCs(VNReply) != 1 || cfg.AllocatableVCs(VNRequest) != 2 {
		t.Fatal("AllocatableVCs wrong")
	}
	cfg.CircuitVCUnbuffered = true
	if cfg.VCBuffered(VNReply, 1) || !cfg.VCBuffered(VNReply, 0) || !cfg.VCBuffered(VNRequest, 1) {
		t.Fatal("VCBuffered wrong")
	}
	base := BaselineConfig(mesh.New(2, 2))
	if base.CircuitVC() != -1 {
		t.Fatal("baseline should have no circuit VC")
	}
}

// spyHandler records reservation-walk callbacks without ever bypassing.
type spyHandler struct {
	calls []spyCall
}

type spyCall struct {
	id      mesh.NodeID
	in, out mesh.Dir
	at      sim.Cycle
}

func (s *spyHandler) OnRequestVA(id mesh.NodeID, m *Message, in, out mesh.Dir, now sim.Cycle) {
	s.calls = append(s.calls, spyCall{id: id, in: in, out: out, at: now})
}
func (s *spyHandler) Bypass(mesh.NodeID, *Flit, mesh.Dir, sim.Cycle) (mesh.Dir, int, bool) {
	return 0, 0, false
}
func (s *spyHandler) Release(mesh.NodeID, *Flit, mesh.Dir, sim.Cycle) {}
func (s *spyHandler) OnUndo(mesh.NodeID, *UndoToken, mesh.Dir, sim.Cycle) (mesh.Dir, bool) {
	return 0, false
}
func (s *spyHandler) BypassBuffered() bool { return false }

// TestReservationWalkVisitsEveryRouter verifies the OnRequestVA hook fires
// exactly once per router on the request's XY path, with the in/out ports
// the reply will traverse in reverse.
func TestReservationWalkVisitsEveryRouter(t *testing.T) {
	m := mesh.New(4, 4)
	cfg := BaselineConfig(m)
	cfg.RepRouting = mesh.RouteYX
	spy := &spyHandler{}
	h := newHarness(cfg, spy, nil)
	src, dst := m.Node(0, 0), m.Node(2, 2)
	mg := msg(src, dst, VNRequest, 1)
	mg.WantCircuit = true
	mg.Block = 0x40
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 500)

	path := m.Path(mesh.RouteXY, src, dst)
	if len(spy.calls) != len(path) {
		t.Fatalf("OnRequestVA fired %d times, want %d", len(spy.calls), len(path))
	}
	for i, c := range spy.calls {
		if c.id != path[i] {
			t.Fatalf("call %d at router %d, want %d", i, c.id, path[i])
		}
		wantIn := mesh.Local
		if i > 0 {
			wantIn = m.NextDir(mesh.RouteXY, path[i-1], dst).Opposite()
		}
		wantOut := mesh.Local
		if i < len(path)-1 {
			wantOut = m.NextDir(mesh.RouteXY, path[i], dst)
		}
		if c.in != wantIn || c.out != wantOut {
			t.Fatalf("call %d ports in=%v out=%v, want %v/%v", i, c.in, c.out, wantIn, wantOut)
		}
		if i > 0 && c.at <= spy.calls[i-1].at {
			t.Fatalf("reservations not time-ordered: %d then %d", spy.calls[i-1].at, c.at)
		}
	}
}

// TestNonCircuitRequestSkipsHook checks requests without WantCircuit never
// trigger reservations.
func TestNonCircuitRequestSkipsHook(t *testing.T) {
	m := mesh.New(4, 4)
	spy := &spyHandler{}
	h := newHarness(BaselineConfig(m), spy, nil)
	h.net.Send(msg(0, 15, VNRequest, 1), 0)
	h.runUntilQuiet(t, 500)
	if len(spy.calls) != 0 {
		t.Fatalf("hook fired %d times for a non-circuit request", len(spy.calls))
	}
}

func TestSendPanicsOutsideMesh(t *testing.T) {
	h := newHarness(BaselineConfig(mesh.New(2, 2)), nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.net.Send(msg(0, 99, VNRequest, 1), 0)
}

func TestQueueingLatencyMeasured(t *testing.T) {
	// Saturate one NI so later messages wait in the injection queue.
	m := mesh.New(4, 1)
	h := newHarness(BaselineConfig(m), nil, nil)
	var last *Message
	for i := 0; i < 8; i++ {
		last = msg(0, 3, VNReply, 5)
		h.net.Send(last, 0)
	}
	h.runUntilQuiet(t, 3000)
	if q := last.InjectedAt - last.EnqueuedAt; q <= 0 {
		t.Fatalf("queueing latency %d, want > 0", q)
	}
}

func TestAccessorsAndEventAdd(t *testing.T) {
	h := newHarness(BaselineConfig(mesh.New(2, 2)), nil, nil)
	if h.net.Config().BufDepth != 5 {
		t.Fatal("Config accessor")
	}
	if h.net.Router(1).ID() != 1 || h.net.NI(2).ID() != 2 {
		t.Fatal("ID accessors")
	}
	var a, b PowerEvents
	a.BufWrites, b.BufWrites = 2, 3
	b.LinkFlits = 7
	a.Add(&b)
	if a.BufWrites != 5 || a.LinkFlits != 7 {
		t.Fatal("PowerEvents.Add")
	}
}

func TestSendFrontLocalFallsThrough(t *testing.T) {
	h := newHarness(BaselineConfig(mesh.New(2, 2)), nil, nil)
	mg := msg(1, 1, VNReply, 1)
	h.net.NI(1).SendFront(mg, 0)
	h.runUntilQuiet(t, 50)
	if !mg.LocalHop || len(h.delivered) != 1 {
		t.Fatal("local SendFront should deliver locally")
	}
}
