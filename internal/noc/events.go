package noc

import "reactivenoc/internal/sim"

// PowerEvents tallies the microarchitectural events the DSENT-substitute
// energy model charges for. One instance is shared by all routers and NIs
// of a network; the simulator is single-goroutine so plain fields suffice.
type PowerEvents struct {
	BufWrites      int64 // flit written into an input VC buffer
	BufReads       int64 // flit read out of an input VC buffer
	XbarTraversals int64 // flit through the crossbar (incl. circuit bypass)
	LinkFlits      int64 // flit on an inter-router link
	VAActivity     int64 // VC-allocator grants
	SAActivity     int64 // switch-allocator grants
	CreditsSent    int64 // flow-control credits on the reverse wires
	CircuitChecks  int64 // circuit-table lookups at input units
	CircuitWrites  int64 // circuit-table entry installs/clears
	Retries        int64 // SA grants cancelled by circuit priority
}

// Describe registers every event counter with reg under the noc/ scope.
func (e *PowerEvents) Describe(reg *sim.Registry) {
	reg.Counter("noc/buf_writes", &e.BufWrites)
	reg.Counter("noc/buf_reads", &e.BufReads)
	reg.Counter("noc/xbar_traversals", &e.XbarTraversals)
	reg.Counter("noc/link_flits", &e.LinkFlits)
	reg.Counter("noc/va_activity", &e.VAActivity)
	reg.Counter("noc/sa_activity", &e.SAActivity)
	reg.Counter("noc/credits_sent", &e.CreditsSent)
	reg.Counter("noc/circuit_checks", &e.CircuitChecks)
	reg.Counter("noc/circuit_writes", &e.CircuitWrites)
	reg.Counter("noc/retries", &e.Retries)
}

// Add folds o into e.
func (e *PowerEvents) Add(o *PowerEvents) {
	e.BufWrites += o.BufWrites
	e.BufReads += o.BufReads
	e.XbarTraversals += o.XbarTraversals
	e.LinkFlits += o.LinkFlits
	e.VAActivity += o.VAActivity
	e.SAActivity += o.SAActivity
	e.CreditsSent += o.CreditsSent
	e.CircuitChecks += o.CircuitChecks
	e.CircuitWrites += o.CircuitWrites
	e.Retries += o.Retries
}

// roundRobin picks the first true index in req starting from *ptr,
// wrapping around, and advances *ptr past the winner. It returns -1 when no
// index is requested. This is the arbiter primitive behind the paper's
// "round-robin 2-phase VC/switch allocators".
func roundRobin(req []bool, ptr *int) int {
	n := len(req)
	if n == 0 {
		return -1
	}
	if *ptr >= n {
		*ptr = 0
	}
	for i := 0; i < n; i++ {
		idx := (*ptr + i) % n
		if req[idx] {
			*ptr = (idx + 1) % n
			return idx
		}
	}
	return -1
}
