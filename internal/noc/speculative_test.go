package noc

import (
	"testing"

	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

func specConfig(m mesh.Mesh) NetConfig {
	cfg := BaselineConfig(m)
	cfg.Speculative = true
	return cfg
}

func TestSpeculativeSingleCycleHops(t *testing.T) {
	// On an idle mesh a speculating flit crosses each router in one cycle:
	// 2 cycles per hop, like a reactive circuit but without reservation.
	m := mesh.New(4, 1)
	h := newHarness(specConfig(m), nil, nil)
	mg := msg(0, 3, VNRequest, 1)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 200)
	hops := sim.Cycle(m.Hops(0, 3))
	want := 2*(hops+1) + 2 // bypass every router + injection link
	if got := mg.DeliveredAt - mg.InjectedAt; got != want {
		t.Fatalf("speculative latency %d, want %d", got, want)
	}
}

func TestSpeculativeMultiFlitMessage(t *testing.T) {
	m := mesh.New(4, 4)
	h := newHarness(specConfig(m), nil, nil)
	mg := msg(0, 15, VNReply, 5)
	h.net.Send(mg, 0)
	h.runUntilQuiet(t, 300)
	hops := sim.Cycle(m.Hops(0, 15))
	want := 2*(hops+1) + 2 + 4 // head pipeline + 4 trailing flits
	if got := mg.DeliveredAt - mg.InjectedAt; got != want {
		t.Fatalf("speculative 5-flit latency %d, want %d", got, want)
	}
}

func TestSpeculativeFallsBackUnderContention(t *testing.T) {
	// Two streams crossing one router: everything still delivers, and the
	// aggregate is slower than two isolated speculative paths (losers take
	// the pipeline).
	// Two streams merging into router (1,1)'s East output: one passing
	// through from the west, one injected locally.
	m := mesh.New(3, 3)
	h := newHarness(specConfig(m), nil, nil)
	var msgs []*Message
	for i := 0; i < 6; i++ {
		a := msg(m.Node(0, 1), m.Node(2, 1), VNRequest, 5)
		b := msg(m.Node(1, 1), m.Node(2, 1), VNRequest, 5)
		h.net.Send(a, 0)
		h.net.Send(b, 0)
		msgs = append(msgs, a, b)
	}
	h.runUntilQuiet(t, 5000)
	if len(h.delivered) != len(msgs) {
		t.Fatalf("delivered %d of %d", len(h.delivered), len(msgs))
	}
	// At least one message must have been forced off the fast path.
	slow := 0
	for _, mg := range msgs {
		if mg.DeliveredAt-mg.InjectedAt > 2*sim.Cycle(m.Hops(mg.Src, mg.Dst)+1)+2+4 {
			slow++
		}
	}
	if slow == 0 {
		t.Fatal("contention never forced the pipeline fallback")
	}
}

func TestSpeculativeKeepsWormholeOrder(t *testing.T) {
	// Back-to-back messages on one path: FIFO per source is preserved and
	// flit trains never interleave incorrectly (assertions would fire).
	m := mesh.New(4, 1)
	h := newHarness(specConfig(m), nil, nil)
	var msgs []*Message
	for i := 0; i < 8; i++ {
		mg := msg(0, 3, VNReply, 5)
		h.net.Send(mg, 0)
		msgs = append(msgs, mg)
	}
	h.runUntilQuiet(t, 2000)
	for i := 1; i < len(msgs); i++ {
		if msgs[i].DeliveredAt <= msgs[i-1].DeliveredAt {
			t.Fatalf("messages reordered: %d before %d", i, i-1)
		}
	}
}

func TestSpeculativeRandomTraffic(t *testing.T) {
	m := mesh.New(4, 4)
	rng := sim.NewRNG(31)
	h := newHarness(specConfig(m), nil, nil)
	n := 0
	for i := 0; i < 80; i++ {
		src := mesh.NodeID(rng.Intn(m.Nodes()))
		dst := mesh.NodeID(rng.Intn(m.Nodes()))
		size := 1
		if rng.Bool(0.5) {
			size = 5
		}
		h.net.Send(msg(src, dst, rng.Intn(NumVNs), size), 0)
		n++
	}
	h.runUntilQuiet(t, 30000)
	if len(h.delivered) != n {
		t.Fatalf("delivered %d of %d", len(h.delivered), n)
	}
}

func TestSpeculativeRejectsCircuitHandler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("speculation plus a circuit handler must be rejected")
		}
	}()
	NewNetwork(specConfig(mesh.New(2, 2)), &spyHandler{}, nil)
}

// specLiveRoutes sums the live speculative-route entries across every input
// port of every router.
func specLiveRoutes(n *Network) int {
	total := 0
	for _, r := range n.routers {
		for _, p := range r.in {
			if p != nil {
				total += p.spec.live()
			}
		}
	}
	return total
}

// TestSpecTableEmptyAfterDrain is the regression test for the open-addressed
// route table that replaced a map[*Message]specRoute: once every message has
// delivered, no port may retain a route. A leaked entry would silently poison
// a later message whose pooled ID collides after wraparound, and — unlike the
// map version — backward-shift deletion means a correct table is exactly
// empty, not merely logically empty.
func TestSpecTableEmptyAfterDrain(t *testing.T) {
	m := mesh.New(4, 4)
	rng := sim.NewRNG(97)
	h := newHarness(specConfig(m), nil, nil)
	n := 0
	// Three bursts with drains in between: deletion must hold mid-run, not
	// just at the end of one burst.
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 60; i++ {
			src := mesh.NodeID(rng.Intn(m.Nodes()))
			dst := mesh.NodeID(rng.Intn(m.Nodes()))
			size := 1
			if rng.Bool(0.5) {
				size = 5
			}
			h.net.Send(msg(src, dst, rng.Intn(NumVNs), size), 0)
			n++
		}
		h.runUntilQuiet(t, 60000)
		if live := specLiveRoutes(h.net); live != 0 {
			t.Fatalf("burst %d: %d speculative routes leaked after drain", burst, live)
		}
	}
	if len(h.delivered) != n {
		t.Fatalf("delivered %d of %d", len(h.delivered), n)
	}
}
