package coherence

import (
	"fmt"

	"reactivenoc/internal/cache"
)

// CheckSingleWriter is the online slice of the coherence audit: at most one
// L1 may hold a line exclusively (E or M) at any cycle boundary, even
// mid-transaction. The remaining AuditCoherence invariants (inclusion,
// directory owner/sharer agreement) are legitimately violated while a
// transfer is in flight and stay quiescent-only; two simultaneous writers
// never are.
func (s *System) CheckSingleWriter() error {
	owner := map[cache.Addr]int{}
	for tile, l1 := range s.L1s {
		c := l1.Cache()
		cfg := c.Config()
		for set := 0; set < cfg.Sets(); set++ {
			hint := cache.Addr(set * cfg.LineBytes)
			for _, line := range c.Lines(hint) {
				if !line.Valid || (line.State != l1M && line.State != l1E) {
					continue
				}
				a := c.AddrOf(&line, hint)
				if prev, dup := owner[a]; dup {
					return fmt.Errorf("coherence: %#x held exclusively by both tile %d and tile %d", a, prev, tile)
				}
				owner[a] = tile
			}
		}
	}
	return nil
}
