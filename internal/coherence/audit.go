package coherence

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/sim"
)

// AuditCoherence verifies the protocol's steady-state invariants across
// every cache and directory: inclusion (an L1 line is present in its home
// bank), ownership (a directory owner actually holds the line exclusively),
// sharer soundness (an L1 shared copy has its directory record) and
// single-writer (at most one exclusive copy, never alongside others).
// It may be called at any quiescent point.
func (s *System) AuditCoherence() error {
	type holder struct {
		tile  int
		state uint8
	}
	lines := map[cache.Addr][]holder{}
	for tile, l1 := range s.L1s {
		c := l1.Cache()
		cfg := c.Config()
		for set := 0; set < cfg.Sets(); set++ {
			hint := cache.Addr(set * cfg.LineBytes)
			for _, line := range c.Lines(hint) {
				if !line.Valid {
					continue
				}
				a := c.AddrOf(&line, hint)
				lines[a] = append(lines[a], holder{tile: tile, state: line.State})
			}
		}
	}
	for a, hs := range lines {
		home := s.HomeBank(a)
		l2line, ok := s.L2s[home].Cache().Peek(a)
		if !ok {
			return fmt.Errorf("coherence: inclusion violated: %#x cached in L1 but absent from bank %d", a, home)
		}
		exclusive := 0
		for _, h := range hs {
			switch h.state {
			case l1M, l1E:
				exclusive++
				if int(l2line.Owner) != h.tile {
					return fmt.Errorf("coherence: %#x: tile %d holds E/M but directory owner is %d",
						a, h.tile, l2line.Owner)
				}
			case l1S:
				if l2line.Sharers&(1<<uint(h.tile)) == 0 && int(l2line.Owner) != h.tile {
					return fmt.Errorf("coherence: %#x: tile %d holds S without a directory record", a, h.tile)
				}
			}
		}
		if exclusive > 1 {
			return fmt.Errorf("coherence: %#x has %d exclusive holders", a, exclusive)
		}
		if exclusive == 1 && len(hs) > 1 {
			return fmt.Errorf("coherence: %#x: exclusive copy coexists with %d other copies", a, len(hs))
		}
	}
	return nil
}

// AuditQuiescent runs every layer's leak and conservation audit: the
// protocol controllers, the network and — when circuits are enabled — the
// mechanism state. The system must be idle.
func (s *System) AuditQuiescent(now sim.Cycle) error {
	if s.Busy() {
		return fmt.Errorf("coherence: audit requires an idle system")
	}
	for i := range s.L1s {
		if s.L1s[i].txn != nil {
			return fmt.Errorf("coherence: L1 %d retains a transaction", i)
		}
		if n := len(s.L1s[i].wb); n != 0 {
			return fmt.Errorf("coherence: L1 %d retains %d write-back entries", i, n)
		}
		if n := len(s.L2s[i].txns); n != 0 {
			return fmt.Errorf("coherence: L2 %d retains %d blocked lines", i, n)
		}
		for a, q := range s.L2s[i].waiting {
			if len(q) != 0 {
				return fmt.Errorf("coherence: L2 %d retains %d queued requests for %#x", i, len(q), a)
			}
		}
	}
	if err := s.AuditCoherence(); err != nil {
		return err
	}
	if err := s.Net.AuditQuiescent(); err != nil {
		return err
	}
	if s.Mgr != nil {
		if err := s.Mgr.AuditQuiescent(now); err != nil {
			return err
		}
	}
	return nil
}
