// Package coherence implements the directory-based MESI protocol of the
// modelled chip (Tables 2 and 3): private L1s, a shared inclusive L2
// distributed one bank per tile with the directory embedded in the banks,
// direct L1-to-L1 data transfers, write-back L1 replacements, and memory
// controllers at the chip edges.
//
// The protocol is the traffic generator Reactive Circuits exploits: every
// message sequence of Table 3 is produced here, requests reserve circuits
// for their replies, and the NoAck optimization (Section 4.6) eliminates
// L1_DATA_ACK messages when the data reply is guaranteed to ride a complete
// circuit.
package coherence

import (
	"fmt"

	"reactivenoc/internal/sim"
)

// MsgType enumerates the protocol messages of Table 3. The values are
// carried in noc.Message.Type.
type MsgType int

const (
	// Requests (virtual network 0).

	// MsgGetS asks the home L2 bank for read access to a line.
	MsgGetS MsgType = iota + 1
	// MsgGetX asks the home L2 bank for write access to a line.
	MsgGetX
	// MsgFwd is the L2 forwarding a request to the L1 that owns the line
	// exclusively; ownership migrates to the requestor.
	MsgFwd
	// MsgInv invalidates an L1 copy (writes and L2 replacements).
	MsgInv
	// MsgWBData carries a replaced L1 line's data to the home L2 bank.
	MsgWBData
	// MsgMemFetch asks a memory controller for a line on an L2 miss.
	MsgMemFetch
	// MsgMemWB carries a replaced L2 line's data to a memory controller.
	MsgMemWB

	// Replies (virtual network 1).

	// MsgL2Reply is data from an L2 bank to an L1 (circuit-eligible).
	MsgL2Reply
	// MsgL1ToL1 is data sent directly from the owning L1 to the
	// requesting L1 (not eligible: its path has no prior request).
	MsgL1ToL1
	// MsgDataAck acknowledges data reception to the home L2 bank; the
	// NoAck optimization eliminates it when the data rode a circuit.
	MsgDataAck
	// MsgWBAck acknowledges a write-back to the replacing L1
	// (circuit-eligible: the WBData reserves it).
	MsgWBAck
	// MsgInvAck acknowledges an invalidation to the home L2 bank.
	MsgInvAck
	// MsgInvAckData is an invalidation acknowledgement carrying modified
	// data — the recall path when the L2 evicts a line an L1 owns.
	MsgInvAckData
	// MsgMemData is line data from a memory controller to an L2 bank
	// (circuit-eligible).
	MsgMemData
	// MsgMemAck acknowledges an L2 write-back at the memory controller
	// (circuit-eligible; the paper's MEMORY class covers both).
	MsgMemAck
	// MsgFwdMiss tells the home L2 that a forwarded request found no copy
	// (the owner silently replaced a clean line); the L2 serves the data
	// itself.
	MsgFwdMiss

	numMsgTypes
)

// String returns the paper's name for the message type.
func (t MsgType) String() string {
	switch t {
	case MsgGetS:
		return "GetS"
	case MsgGetX:
		return "GetX"
	case MsgFwd:
		return "Fwd"
	case MsgInv:
		return "Inv"
	case MsgWBData:
		return "WB_Data"
	case MsgMemFetch:
		return "Mem_Fetch"
	case MsgMemWB:
		return "Mem_WB"
	case MsgL2Reply:
		return "L2_Reply"
	case MsgL1ToL1:
		return "L1_to_L1"
	case MsgDataAck:
		return "L1_DATA_ACK"
	case MsgWBAck:
		return "L2_WB_ACK"
	case MsgInvAck:
		return "L1_INV_ACK"
	case MsgInvAckData:
		return "L1_INV_ACK_Data"
	case MsgMemData:
		return "MEMORY_Data"
	case MsgMemAck:
		return "MEMORY_Ack"
	case MsgFwdMiss:
		return "Fwd_Miss"
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// IsReply reports whether the type travels on the reply virtual network.
func (t MsgType) IsReply() bool { return t >= MsgL2Reply }

// SizeFlits returns the message length: data messages carry a 64-byte line
// over 16-byte flits plus a header flit; control messages are one flit.
func (t MsgType) SizeFlits() int {
	switch t {
	case MsgWBData, MsgMemWB, MsgL2Reply, MsgL1ToL1, MsgInvAckData, MsgMemData:
		return 5
	}
	return 1
}

// CircuitEligibleReply reports whether this reply type can ride a reactive
// circuit (the Circuit_Rep class of Figure 7).
func (t MsgType) CircuitEligibleReply() bool {
	switch t {
	case MsgL2Reply, MsgWBAck, MsgMemData, MsgMemAck:
		return true
	}
	return false
}

// ReservesCircuit reports whether a request of this type reserves a
// reactive circuit for its reply (Section 4.1: L2_Replies, L2_WB_ACK and
// MEMORY replies, 53.2% of replies).
func (t MsgType) ReservesCircuit() bool {
	switch t {
	case MsgGetS, MsgGetX, MsgWBData, MsgMemFetch, MsgMemWB:
		return true
	}
	return false
}

// ExpectedReply returns the reply type a circuit-reserving request
// anticipates and the processing-latency estimate used by timed
// reservations (cache hit latency / memory latency).
func (t MsgType) ExpectedReply() (MsgType, sim.Cycle) {
	switch t {
	case MsgGetS, MsgGetX:
		return MsgL2Reply, L2HitLatency
	case MsgWBData:
		return MsgWBAck, L2HitLatency
	case MsgMemFetch:
		return MsgMemData, MemLatency
	case MsgMemWB:
		return MsgMemAck, MemLatency
	}
	return 0, 0
}

// Protocol latencies (Table 2).
const (
	// L1HitLatency is the L1 access pipe, also charged to snoop-style
	// lookups (forwards, invalidations).
	L1HitLatency sim.Cycle = 2
	// L2HitLatency is the bank access pipe.
	L2HitLatency sim.Cycle = 7
	// MemLatency is the memory controller's service latency.
	MemLatency sim.Cycle = 160
)

// Payload is the transaction context carried inside noc.Message.Payload,
// packed into a uint64 so sending never boxes (Pack/UnpackPayload are
// lossless inverses; see TestPayloadPackRoundTrip).
type Payload struct {
	// Requestor is the original requesting tile (needed by forwards).
	Requestor int
	// Write distinguishes GetX-origin forwards and replies.
	Write bool
	// Exclusive marks an L2 data reply granting E instead of S.
	Exclusive bool
	// Dirty marks data that is modified relative to memory (migrated
	// M lines, recalled modified data). On an L1_DATA_ACK it tells the
	// directory the forwarded data was modified.
	Dirty bool
	// OwnerKept, on L1-to-L1 transfers and their acks, reports that the
	// previous owner kept a shared copy (GetS downgrades; GetX and
	// replacement-race forwards do not).
	OwnerKept bool
	// NoAck marks a data reply whose L1_DATA_ACK was eliminated.
	NoAck bool
	// CircuitUndone tags the eventual L1-to-L1 reply for the Figure-6
	// "undone" category when the L2 tore down the requestor's circuit.
	CircuitUndone bool
}

// Payload bit layout: Requestor in the low 16 bits, one flag bit each above.
const (
	plWrite uint64 = 1 << (16 + iota)
	plExclusive
	plDirty
	plOwnerKept
	plNoAck
	plCircuitUndone
)

// Pack encodes the payload into the word carried by noc.Message.
func (p Payload) Pack() uint64 {
	v := uint64(uint16(p.Requestor))
	if p.Write {
		v |= plWrite
	}
	if p.Exclusive {
		v |= plExclusive
	}
	if p.Dirty {
		v |= plDirty
	}
	if p.OwnerKept {
		v |= plOwnerKept
	}
	if p.NoAck {
		v |= plNoAck
	}
	if p.CircuitUndone {
		v |= plCircuitUndone
	}
	return v
}

// UnpackPayload decodes a word packed by Pack.
func UnpackPayload(v uint64) Payload {
	return Payload{
		Requestor:     int(uint16(v)),
		Write:         v&plWrite != 0,
		Exclusive:     v&plExclusive != 0,
		Dirty:         v&plDirty != 0,
		OwnerKept:     v&plOwnerKept != 0,
		NoAck:         v&plNoAck != 0,
		CircuitUndone: v&plCircuitUndone != 0,
	}
}
