package coherence

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
)

// TestL1StateTransitions drives every (initial state, operation) pair on a
// single line and checks the resulting L1 state and the network messages
// the transition produced — a conformance table for the Table-3 protocol.
func TestL1StateTransitions(t *testing.T) {
	type deltas map[MsgType]int64
	cases := []struct {
		name  string
		setup func(b *tb, addr cache.Addr) // establish the initial state on tile 0
		op    func(b *tb, addr cache.Addr) // the transition under test
		state uint8                        // expected final state at tile 0 (0 = absent)
		msgs  deltas                       // expected network message deltas
	}{
		{
			name:  "I->E on load",
			setup: func(b *tb, a cache.Addr) {},
			op:    func(b *tb, a cache.Addr) { b.access(0, a, false) },
			state: l1E,
			msgs:  deltas{MsgGetS: 1, MsgL2Reply: 1, MsgDataAck: 1},
		},
		{
			name:  "I->M on store",
			setup: func(b *tb, a cache.Addr) {},
			op:    func(b *tb, a cache.Addr) { b.access(0, a, true) },
			state: l1M,
			msgs:  deltas{MsgGetX: 1, MsgL2Reply: 1, MsgDataAck: 1},
		},
		{
			name:  "E->M silent upgrade",
			setup: func(b *tb, a cache.Addr) { b.access(0, a, false) },
			op:    func(b *tb, a cache.Addr) { b.access(0, a, true) },
			state: l1M,
			msgs:  deltas{},
		},
		{
			name: "S->M upgrade invalidates the other sharer",
			setup: func(b *tb, a cache.Addr) {
				b.access(0, a, false)
				b.access(1, a, false) // both shared
			},
			op:    func(b *tb, a cache.Addr) { b.access(0, a, true) },
			state: l1M,
			msgs:  deltas{MsgGetX: 1, MsgInv: 1, MsgInvAck: 1, MsgL2Reply: 1, MsgDataAck: 1},
		},
		{
			name:  "M->S on a remote load (forwarded, downgrade)",
			setup: func(b *tb, a cache.Addr) { b.access(0, a, true) },
			op:    func(b *tb, a cache.Addr) { b.access(1, a, false) },
			state: l1S,
			msgs:  deltas{MsgGetS: 1, MsgFwd: 1, MsgL1ToL1: 1, MsgDataAck: 1},
		},
		{
			name:  "M->I on a remote store (forwarded, migrate)",
			setup: func(b *tb, a cache.Addr) { b.access(0, a, true) },
			op:    func(b *tb, a cache.Addr) { b.access(1, a, true) },
			state: 0,
			msgs:  deltas{MsgGetX: 1, MsgFwd: 1, MsgL1ToL1: 1, MsgDataAck: 1},
		},
		{
			name:  "S->I on a remote store",
			setup: func(b *tb, a cache.Addr) { b.access(0, a, false); b.access(1, a, false) },
			op:    func(b *tb, a cache.Addr) { b.access(2, a, true) },
			state: 0,
			msgs:  deltas{MsgGetX: 1, MsgInv: 2, MsgInvAck: 2, MsgL2Reply: 1, MsgDataAck: 1},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := newTB(t, 2, 2, core.Options{})
			addr := b.remoteAddr(3, 1)
			tc.setup(b, addr)
			b.drain()
			before := b.sys.Msgs
			tc.op(b, addr)
			b.drain()
			line, ok := b.sys.L1s[0].Cache().Peek(addr)
			switch {
			case tc.state == 0 && ok:
				t.Fatalf("tile 0 should no longer hold %#x (state %d)", addr, line.State)
			case tc.state != 0 && (!ok || line.State != tc.state):
				t.Fatalf("tile 0 state = %v (present %v), want %d", line, ok, tc.state)
			}
			for mt, want := range tc.msgs {
				got := b.sys.Msgs.Network[mt] - before.Network[mt]
				if got != want {
					t.Errorf("%v delta = %d, want %d", mt, got, want)
				}
			}
			// No unexpected extra message classes for the transition.
			for mt := MsgGetS; mt < numMsgTypes; mt++ {
				if _, expected := tc.msgs[mt]; expected {
					continue
				}
				if mt == MsgMemFetch || mt == MsgMemData || mt == MsgMemWB || mt == MsgMemAck {
					continue // cold-path memory traffic depends on setup
				}
				if got := b.sys.Msgs.Network[mt] - before.Network[mt]; got != 0 {
					t.Errorf("unexpected %v traffic: %d", mt, got)
				}
			}
			checkCoherenceInvariants(t, b.sys)
		})
	}
}
