package coherence

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// L1 line states (MESI; I is simply "not present").
const (
	l1S uint8 = 1
	l1E uint8 = 2
	l1M uint8 = 3
)

// L1Ctrl is a tile's private L1 cache controller. The core is in-order and
// blocking: at most one outstanding data miss.
type L1Ctrl struct {
	sys *System
	id  mesh.NodeID
	c   *cache.Cache
	q   procQueue

	// txn points at txnBuf while a miss is outstanding (at most one: the
	// core is blocking), so starting a miss never allocates.
	txn    *l1Txn
	txnBuf l1Txn
	// wb is the write-back buffer: evicted E/M lines awaiting L2_WB_ACK.
	// Forwards and invalidations are served from it, so data is never
	// lost to a replacement race.
	wb map[cache.Addr]uint8

	// onDone resumes the core when the outstanding miss completes.
	onDone func(now sim.Cycle)

	wake sim.Waker
}

type l1Txn struct {
	addr   cache.Addr
	write  bool
	waitWB bool // the target line is draining through the wb buffer
}

func newL1(sys *System, id mesh.NodeID) *L1Ctrl {
	return &L1Ctrl{sys: sys, id: id, c: cache.New(cache.L1Config()), wb: map[cache.Addr]uint8{}}
}

// Cache exposes the underlying array (stats, tests).
func (l *L1Ctrl) Cache() *cache.Cache { return l.c }

// SetMissHandler installs the core's resume callback.
func (l *L1Ctrl) SetMissHandler(fn func(now sim.Cycle)) { l.onDone = fn }

// Pending reports whether a miss is outstanding.
func (l *L1Ctrl) Pending() bool { return l.txn != nil }

// Access performs a load (write=false) or store (write=true). It returns
// true on a hit; on a miss the controller issues the coherence transaction
// and later invokes the miss handler. At most one access may be outstanding.
func (l *L1Ctrl) Access(a cache.Addr, write bool, now sim.Cycle) bool {
	if l.txn != nil {
		panic(fmt.Sprintf("coherence: L1 %d access while a miss is outstanding", l.id))
	}
	addr := l.c.Config().Block(a)
	if line, ok := l.c.Lookup(addr); ok {
		if !write || line.State != l1S {
			if write {
				line.State = l1M
			}
			return true
		}
		// Write to a shared line: upgrade through a GetX miss.
	}
	l.txnBuf = l1Txn{addr: addr, write: write}
	l.txn = &l.txnBuf
	if _, pending := l.wb[addr]; pending {
		l.txn.waitWB = true // reissue after the write-back drains
		return false
	}
	l.issue(now)
	return false
}

func (l *L1Ctrl) issue(now sim.Cycle) {
	t := MsgGetS
	if l.txn.write {
		t = MsgGetX
	}
	l.sys.send(t, l.id, l.sys.HomeBank(l.txn.addr), l.txn.addr,
		Payload{Requestor: int(l.id), Write: l.txn.write}, now)
}

func (l *L1Ctrl) deliver(msg *noc.Message, now sim.Cycle) {
	l.wake.Wake()
	l.q.push(now+L1HitLatency, msg)
}

// Quiescent reports whether the next Tick is a pure no-op: Tick only
// drains the access-latency queue, so an empty queue suffices even while a
// miss or write-back is outstanding — those resolve through deliver, which
// wakes the controller.
func (l *L1Ctrl) Quiescent() bool { return l.q.empty() }

// Tick processes messages whose L1 access latency has elapsed. The L1
// never retains a message past handle, so every one retires to the
// network's free-list here.
func (l *L1Ctrl) Tick(now sim.Cycle) {
	for _, msg := range l.q.due(now) {
		l.handle(msg, now)
		l.sys.Net.FreeMessageAt(l.id, msg)
	}
}

func (l *L1Ctrl) handle(msg *noc.Message, now sim.Cycle) {
	addr := cache.Addr(msg.Block)
	pl := UnpackPayload(msg.Payload)
	switch MsgType(msg.Type) {
	case MsgL2Reply:
		l.completeMiss(addr, pl, now)
		if !pl.NoAck {
			l.sys.send(MsgDataAck, l.id, l.sys.HomeBank(addr), addr, Payload{}, now)
		}
	case MsgL1ToL1:
		l.completeMiss(addr, pl, now)
		l.sys.send(MsgDataAck, l.id, l.sys.HomeBank(addr), addr,
			Payload{Dirty: pl.Dirty, OwnerKept: pl.OwnerKept}, now)
	case MsgWBAck:
		if _, ok := l.wb[addr]; !ok {
			panic(fmt.Sprintf("coherence: L1 %d WBAck for unknown write-back %#x", l.id, addr))
		}
		delete(l.wb, addr)
		if l.txn != nil && l.txn.waitWB && l.txn.addr == addr {
			l.txn.waitWB = false
			l.issue(now)
		}
	case MsgFwd:
		l.handleFwd(addr, pl, now)
	case MsgInv:
		l.handleInv(addr, now)
	default:
		panic(fmt.Sprintf("coherence: L1 %d cannot handle %v", l.id, MsgType(msg.Type)))
	}
}

// completeMiss fills the line and resumes the core.
func (l *L1Ctrl) completeMiss(addr cache.Addr, pl Payload, now sim.Cycle) {
	if l.txn == nil || l.txn.addr != addr {
		panic(fmt.Sprintf("coherence: L1 %d data reply for %#x without transaction", l.id, addr))
	}
	state := l1S
	switch {
	case l.txn.write:
		state = l1M
	case pl.Exclusive:
		state = l1E
	}
	l.fill(addr, state, now)
	l.txn = nil
	if l.onDone != nil {
		l.onDone(now)
	}
}

// fill installs a line, writing back any dirty victim through the wb buffer.
func (l *L1Ctrl) fill(addr cache.Addr, state uint8, now sim.Cycle) {
	if line, ok := l.c.Peek(addr); ok {
		line.State = state // upgrade in place
		return
	}
	v := l.c.Victim(addr)
	if v == nil {
		panic(fmt.Sprintf("coherence: L1 %d has no victim for %#x", l.id, addr))
	}
	// Only modified lines carry data back (Table 3's L1 replacement);
	// clean lines are dropped silently — a later forward that finds
	// nothing is answered with Fwd_Miss and served by the bank.
	if v.Valid && v.State == l1M {
		vaddr := l.c.AddrOf(v, addr)
		if _, dup := l.wb[vaddr]; dup {
			panic(fmt.Sprintf("coherence: L1 %d double write-back of %#x", l.id, vaddr))
		}
		l.wb[vaddr] = v.State
		l.sys.send(MsgWBData, l.id, l.sys.HomeBank(vaddr), vaddr, Payload{}, now)
	}
	l.c.Fill(v, addr, state)
}

// handleFwd serves a forward: this L1 owns the line (possibly in its
// write-back buffer) and sends it directly to the requestor. A forwarded
// GetX migrates ownership; a forwarded GetS downgrades this L1 to shared.
func (l *L1Ctrl) handleFwd(addr cache.Addr, pl Payload, now sim.Cycle) {
	reply := Payload{
		Requestor:     pl.Requestor,
		Write:         pl.Write,
		CircuitUndone: pl.CircuitUndone,
	}
	if line, ok := l.c.Peek(addr); ok {
		if line.State == l1S {
			panic(fmt.Sprintf("coherence: L1 %d forwarded for a shared line %#x", l.id, addr))
		}
		reply.Dirty = line.State == l1M
		if pl.Write {
			l.c.Invalidate(addr)
		} else {
			line.State = l1S
			reply.OwnerKept = true
		}
	} else if st, ok := l.wb[addr]; ok {
		reply.Dirty = st == l1M // serve from the wb buffer; entry stays until acked
	} else {
		// The clean copy was silently replaced: tell the bank to serve
		// the request from its own (still valid) data.
		l.sys.send(MsgFwdMiss, l.id, l.sys.HomeBank(addr), addr, reply, now)
		return
	}
	l.sys.send(MsgL1ToL1, l.id, mesh.NodeID(pl.Requestor), addr, reply, now)
}

// handleInv invalidates a copy. Owners being recalled return their data;
// stale-sharer invalidations (the line was silently replaced) are simply
// acknowledged.
func (l *L1Ctrl) handleInv(addr cache.Addr, now sim.Cycle) {
	home := l.sys.HomeBank(addr)
	if line, ok := l.c.Peek(addr); ok {
		dirty := line.State == l1M
		l.c.Invalidate(addr)
		if dirty {
			l.sys.send(MsgInvAckData, l.id, home, addr, Payload{Dirty: true}, now)
		} else {
			l.sys.send(MsgInvAck, l.id, home, addr, Payload{}, now)
		}
		return
	}
	if st, ok := l.wb[addr]; ok {
		if st == l1M {
			l.sys.send(MsgInvAckData, l.id, home, addr, Payload{Dirty: true}, now)
		} else {
			l.sys.send(MsgInvAck, l.id, home, addr, Payload{}, now)
		}
		return
	}
	l.sys.send(MsgInvAck, l.id, home, addr, Payload{}, now)
}

func (l *L1Ctrl) busy() bool {
	return l.txn != nil || len(l.wb) > 0 || !l.q.empty()
}
