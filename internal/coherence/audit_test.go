package coherence

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
)

func TestAuditPassesAfterCleanRun(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, true)
	b.access(1, addr, false)
	b.drain()
	if err := b.sys.AuditQuiescent(b.kernel.Now()); err != nil {
		t.Fatalf("clean run failed the audit: %v", err)
	}
}

func TestAuditDetectsInclusionViolation(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	b.drain()
	// Corrupt: drop the bank copy while the L1 still holds the line.
	b.sys.L2s[3].Cache().Invalidate(addr)
	if err := b.sys.AuditCoherence(); err == nil {
		t.Fatal("inclusion violation not detected")
	}
}

func TestAuditDetectsOwnershipMismatch(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, true) // tile 0 owns M
	b.drain()
	line, _ := b.sys.L2s[3].Cache().Peek(addr)
	line.Owner = 2 // corrupt the directory
	if err := b.sys.AuditCoherence(); err == nil {
		t.Fatal("ownership mismatch not detected")
	}
}

func TestAuditDetectsDoubleExclusive(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, true)
	b.drain()
	// Forge a second exclusive copy in another L1.
	l1 := b.sys.L1s[1].Cache()
	v := l1.Victim(cache.Addr(addr))
	l1.Fill(v, cache.Addr(addr), l1M)
	if err := b.sys.AuditCoherence(); err == nil {
		t.Fatal("double-exclusive not detected")
	}
}

// The circuit-leak case is exercised in internal/core's own tests; here we
// only need the wiring check that a busy system refuses the audit.
func TestAuditRefusesBusySystem(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	b.sys.L1s[0].Access(b.remoteAddr(3, 0), false, 0)
	// Don't run: the miss is outstanding.
	if err := b.sys.AuditQuiescent(0); err == nil {
		t.Fatal("audit must refuse a busy system")
	}
	b.kernel.RunUntil(func() bool { return !b.sys.Busy() }, 100000)
}
