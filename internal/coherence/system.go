package coherence

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/stats"
)

// MsgStats counts protocol messages. Network counts only include messages
// that actually traverse the network (Table 1's population); exchanges
// between an L1 and its co-located L2 bank are tallied separately.
type MsgStats struct {
	Network [numMsgTypes]int64
	Local   [numMsgTypes]int64
}

// Count returns the network count for one type.
func (s *MsgStats) Count(t MsgType) int64 { return s.Network[t] }

// Add folds o's counts into s (per-shard shares merge into run totals).
func (s *MsgStats) Add(o *MsgStats) {
	for t := range s.Network {
		s.Network[t] += o.Network[t]
		s.Local[t] += o.Local[t]
	}
}

// Totals returns total network messages and the request subset.
func (s *MsgStats) Totals() (total, requests int64) {
	for t := MsgType(1); t < numMsgTypes; t++ {
		n := s.Network[t]
		total += n
		if !t.IsReply() {
			requests += n
		}
	}
	return total, requests
}

// Fraction returns the share of network messages of type t.
func (s *MsgStats) Fraction(t MsgType) float64 {
	total, _ := s.Totals()
	if total == 0 {
		return 0
	}
	return float64(s.Network[t]) / float64(total)
}

// LatencyStats is the Figure-7 latency anatomy: network and queueing
// latency per message class. Eliminated acknowledgements contribute
// zero-latency samples to OtherReplies, as the paper's methodology states.
type LatencyStats struct {
	Requests       stats.LatencyRecord
	CircuitReplies stats.LatencyRecord // replies eligible for circuits
	OtherReplies   stats.LatencyRecord // acks and L1-to-L1 transfers

	// CircuitReplyHist buckets data-reply network latency (4-cycle
	// buckets) for tail analysis: circuits do not just move the mean,
	// they cut the distribution's tail.
	CircuitReplyHist *stats.Histogram

	// ByType records per-message-type latency anatomy.
	ByType [numMsgTypes]stats.LatencyRecord
}

// TypeRecord returns the latency record of one message type.
func (l *LatencyStats) TypeRecord(t MsgType) *stats.LatencyRecord {
	return &l.ByType[t]
}

// ReplyPercentile returns an upper bound on the p-quantile of the
// circuit-eligible replies' network latency.
func (l *LatencyStats) ReplyPercentile(p float64) int64 {
	if l.CircuitReplyHist == nil {
		return 0
	}
	return l.CircuitReplyHist.Percentile(p)
}

// Merge folds o into l, including the per-type anatomy and the reply
// histogram. Cycle latencies are integers, so the float64 sample sums
// reassociate exactly: merging per-shard halves is bit-identical to having
// recorded every observation into one instance.
func (l *LatencyStats) Merge(o *LatencyStats) {
	l.Requests.Merge(&o.Requests)
	l.CircuitReplies.Merge(&o.CircuitReplies)
	l.OtherReplies.Merge(&o.OtherReplies)
	for t := range l.ByType {
		l.ByType[t].Merge(&o.ByType[t])
	}
	if o.CircuitReplyHist != nil {
		if l.CircuitReplyHist == nil {
			l.CircuitReplyHist = stats.NewHistogram(4, 128)
		}
		l.CircuitReplyHist.Merge(o.CircuitReplyHist)
	}
}

// System assembles the coherent memory hierarchy over one network: an L1
// controller and an L2 bank controller per tile, plus memory controllers on
// the edge tiles. It implements sim.Ticker.
type System struct {
	M    mesh.Mesh
	Opts core.Options
	Net  *noc.Network
	Mgr  *core.Manager // nil for the baseline network

	L1s []*L1Ctrl
	L2s []*L2Ctrl
	MCs []*MemCtrl

	// Msgs and Lat hold shard 0's share under the parallel engine (the
	// whole run's with one shard); MsgsTotal and LatTotal fold all shards.
	Msgs MsgStats
	Lat  LatencyStats

	// Per-shard aggregation state (SetShards); slot 0 aliases the exported
	// fields above so sequential runs and existing accessors see unchanged
	// behaviour.
	nshards int
	msgsSh  []*MsgStats
	latSh   []*LatencyStats

	mcNodes   []mesh.NodeID
	mcByTile  map[mesh.NodeID]*MemCtrl
	lineBytes uint64
}

// NewSystem builds the chip: network (with the mechanism's router variant),
// circuit manager, caches and controllers. mcCount memory controllers are
// placed on the mesh edges (the paper uses 4 for both chip sizes).
func NewSystem(m mesh.Mesh, opts core.Options, mcCount int) *System {
	s := &System{M: m, Opts: opts, lineBytes: 64}
	s.nshards = 1
	s.msgsSh = []*MsgStats{&s.Msgs}
	s.latSh = []*LatencyStats{&s.Lat}
	cfg := core.NetConfigFor(m, opts)
	if opts.Enabled() {
		s.Mgr = core.NewManager(opts, m)
		s.Net = noc.NewNetwork(cfg, s.Mgr, s.Mgr)
		s.Mgr.Bind(s.Net)
	} else {
		s.Net = noc.NewNetwork(cfg, nil, nil)
	}

	s.mcNodes = m.MemoryControllerNodes(mcCount)
	s.mcByTile = map[mesh.NodeID]*MemCtrl{}

	s.L1s = make([]*L1Ctrl, m.Nodes())
	s.L2s = make([]*L2Ctrl, m.Nodes())
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		s.L1s[id] = newL1(s, id)
		s.L2s[id] = newL2(s, id)
	}
	for _, id := range s.mcNodes {
		mc := newMC(s, id)
		s.MCs = append(s.MCs, mc)
		s.mcByTile[id] = mc
	}
	for id := mesh.NodeID(0); int(id) < m.Nodes(); id++ {
		id := id
		s.Net.NI(id).SetReceiver(func(msg *noc.Message, now sim.Cycle) {
			s.dispatch(id, msg, now)
		})
	}
	return s
}

// SetShards partitions the system's aggregation state for the parallel
// engine and cascades to the network and circuit manager. Must run before
// Register, DescribeMetrics, and any traffic. shards <= 1 is a no-op.
func (s *System) SetShards(shards int, shardMap []int) {
	s.Net.SetShards(shards, shardMap)
	if s.Mgr != nil {
		s.Mgr.SetShards(shards, shardMap)
	}
	if shards <= 1 {
		return
	}
	s.nshards = shards
	s.msgsSh = make([]*MsgStats, shards)
	s.latSh = make([]*LatencyStats, shards)
	s.msgsSh[0] = &s.Msgs
	s.latSh[0] = &s.Lat
	for sh := 1; sh < shards; sh++ {
		s.msgsSh[sh] = &MsgStats{}
		s.latSh[sh] = &LatencyStats{}
	}
}

// msgsAt returns the message-mix counters tile's shard owns.
func (s *System) msgsAt(tile mesh.NodeID) *MsgStats {
	return s.msgsSh[s.Net.ShardOf(tile)]
}

// latAt returns the latency aggregates tile's shard owns.
func (s *System) latAt(tile mesh.NodeID) *LatencyStats {
	return s.latSh[s.Net.ShardOf(tile)]
}

// MsgsTotal folds every shard's message counts into one total.
func (s *System) MsgsTotal() MsgStats {
	total := s.Msgs
	for sh := 1; sh < s.nshards; sh++ {
		total.Add(s.msgsSh[sh])
	}
	return total
}

// LatTotal folds every shard's latency anatomy into one total, in shard
// order (bit-exact: see LatencyStats.Merge).
func (s *System) LatTotal() LatencyStats {
	var total LatencyStats
	for _, ls := range s.latSh {
		total.Merge(ls)
	}
	return total
}

// HomeBank returns the tile whose L2 bank owns the line (addresses are
// line-interleaved across all banks).
func (s *System) HomeBank(a cache.Addr) mesh.NodeID {
	return mesh.NodeID((a / s.lineBytes) % uint64(s.M.Nodes()))
}

// HomeMC returns the memory controller serving the line.
func (s *System) HomeMC(a cache.Addr) mesh.NodeID {
	return s.mcNodes[(a/s.lineBytes)%uint64(len(s.mcNodes))]
}

// dispatch routes a delivered message to the tile's controller, recording
// its latency anatomy first.
func (s *System) dispatch(tile mesh.NodeID, msg *noc.Message, now sim.Cycle) {
	if !msg.LocalHop {
		lat := s.latAt(tile)
		net := msg.DeliveredAt - msg.InjectedAt + msg.NetCredit
		queue := msg.InjectedAt - msg.EnqueuedAt + msg.QueueCredit
		t := MsgType(msg.Type)
		if t >= MsgGetS && t < numMsgTypes {
			lat.ByType[t].Add(net, queue)
		}
		switch {
		case !t.IsReply():
			lat.Requests.Add(net, queue)
		case t.CircuitEligibleReply():
			lat.CircuitReplies.Add(net, queue)
			if lat.CircuitReplyHist == nil {
				lat.CircuitReplyHist = stats.NewHistogram(4, 128)
			}
			lat.CircuitReplyHist.Add(int64(net))
		default:
			lat.OtherReplies.Add(net, queue)
		}
	}
	switch MsgType(msg.Type) {
	case MsgFwd, MsgInv, MsgL2Reply, MsgL1ToL1, MsgWBAck:
		s.L1s[tile].deliver(msg, now)
	case MsgGetS, MsgGetX, MsgWBData, MsgDataAck, MsgInvAck, MsgInvAckData,
		MsgMemData, MsgMemAck, MsgFwdMiss:
		s.L2s[tile].deliver(msg, now)
	case MsgMemFetch, MsgMemWB:
		mc := s.mcByTile[tile]
		if mc == nil {
			panic(fmt.Sprintf("coherence: tile %d has no memory controller", tile))
		}
		mc.deliver(msg, now)
	default:
		panic(fmt.Sprintf("coherence: unroutable message type %d at tile %d", msg.Type, tile))
	}
}

// send builds and injects a protocol message. It sets the circuit
// reservation metadata on eligible requests and tallies the message mix.
func (s *System) send(t MsgType, src, dst mesh.NodeID, addr cache.Addr, pl Payload, now sim.Cycle) {
	vn := noc.VNRequest
	if t.IsReply() {
		vn = noc.VNReply
	}
	msg := s.Net.NewMessageAt(src)
	msg.Type = int(t)
	msg.Src, msg.Dst = src, dst
	msg.VN, msg.Size = vn, t.SizeFlits()
	msg.Block = uint64(addr)
	msg.Payload = pl.Pack()
	if pl.CircuitUndone {
		msg.OutcomeHint = uint8(core.OutcomeUndone)
	}
	if s.Opts.Enabled() && src != dst {
		if s.Opts.Mechanism == core.MechProbe {
			// Déjà-Vu comparator: data replies announce themselves with
			// a setup probe; requests reserve nothing.
			msg.WantCircuit = t.IsReply() && t.CircuitEligibleReply()
		} else if t.ReservesCircuit() {
			msg.WantCircuit = true
			rep, proc := t.ExpectedReply()
			msg.ExpectedProcDelay = proc
			msg.ExpectedReplySize = rep.SizeFlits()
		}
	}
	ms := s.msgsAt(src)
	if src == dst {
		ms.Local[t]++
	} else {
		ms.Network[t]++
	}
	s.Net.Send(msg, now)
}

// canEliminateAck implements the Section 4.6 decision: the L1_DATA_ACK for
// this data reply may be removed only when the reply is guaranteed to ride
// a complete circuit — the circuit is fully built and, for timed variants,
// the injection (which starts within two cycles because the reply VN is
// idle) still falls inside the reserved window.
func (s *System) canEliminateAck(bank, requestor mesh.NodeID, addr cache.Addr, now sim.Cycle) bool {
	if s.Mgr == nil || !s.Opts.NoAck || bank == requestor {
		return false
	}
	complete, timedOK := s.Mgr.HasCircuit(bank, requestor, uint64(addr), now+2)
	if !complete || !timedOK {
		return false
	}
	if s.Opts.Timed && !s.Net.NI(bank).ReplyIdle() {
		return false // queueing could push the reply past its window
	}
	return true
}

// Register adds the network and every controller to k as individually
// activity-tracked components, in the exact order Tick visits them:
// routers and NIs first, then each tile's L1 and L2 interleaved, then the
// memory controllers. A system registered this way must not also be ticked
// monolithically.
func (s *System) Register(k *sim.Kernel) {
	s.Net.Register(k)
	for i := range s.L1s {
		k.SetShard(s.Net.ShardOf(mesh.NodeID(i)))
		s.L1s[i].wake = k.Add(s.L1s[i])
		s.L2s[i].wake = k.Add(s.L2s[i])
	}
	for _, mc := range s.MCs {
		k.SetShard(s.Net.ShardOf(mc.id))
		mc.wake = k.Add(mc)
	}
	k.SetShard(0)
	// Cycle epilogue: the circuit manager's deferred cross-tile operations
	// apply first (teardowns there emit staged boundary credits), then the
	// boundary links publish. Runs in every engine mode so sequential and
	// parallel runs apply deferred work at the same point of the cycle.
	if s.Mgr != nil {
		k.AddEpilogue(s.Mgr.FlushCycle)
	}
	k.AddEpilogue(s.Net.FlushBoundary)
}

// DescribeMetrics registers the system's counters and gauges with reg:
// network power events, per-layer cache counters (same-name registrations
// sum across tiles), memory-controller operations, and the circuit
// manager's outcome statistics when the mechanism is enabled.
func (s *System) DescribeMetrics(reg *sim.Registry) {
	s.Net.DescribeMetrics(reg)
	for i := range s.L1s {
		c1 := s.L1s[i].Cache()
		reg.Counter("l1/hits", &c1.Hits)
		reg.Counter("l1/misses", &c1.Misses)
		reg.Counter("l1/evictions", &c1.Evictions)
		c2 := s.L2s[i].Cache()
		reg.Counter("l2/hits", &c2.Hits)
		reg.Counter("l2/misses", &c2.Misses)
		reg.Counter("l2/evictions", &c2.Evictions)
		reg.Counter("l2/blocked_cycles", &s.L2s[i].BlockedCycles)
	}
	for _, mc := range s.MCs {
		reg.Counter("mem/fetches", &mc.Fetches)
		reg.Counter("mem/writebacks", &mc.WriteBacks)
	}
	reg.Gauge("sys/net_msgs", func() int64 {
		msgs := s.MsgsTotal()
		total, _ := msgs.Totals()
		return total
	})
	if s.Mgr != nil {
		s.Mgr.DescribeMetrics(reg)
	}
}

// Tick advances the network and every controller one cycle.
func (s *System) Tick(now sim.Cycle) {
	s.Net.Tick(now)
	for i := range s.L1s {
		s.L1s[i].Tick(now)
		s.L2s[i].Tick(now)
	}
	for _, mc := range s.MCs {
		mc.Tick(now)
	}
}

// Prefill installs a line architecturally before simulation starts — the
// functional cache warming that stands in for the paper's 200M-cycle
// warm-up. The line is filled clean into its home L2 bank; when tile >= 0
// it is also installed in that tile's L1 — exclusively (E, directory owner)
// for private data, shared (S, directory bit) otherwise.
func (s *System) Prefill(a cache.Addr, tile mesh.NodeID, exclusive bool) {
	a = cache.Addr(uint64(a) &^ (s.lineBytes - 1))
	home := s.HomeBank(a)
	l2 := s.L2s[home].c
	line, ok := l2.Peek(a)
	if !ok {
		v := l2.Victim(a)
		if v == nil {
			return // set pinned; skip this line
		}
		if v.Valid {
			// Evicting a prefilled line of another core: drop its L1
			// copies to preserve inclusion (warm-up only; no traffic).
			va := l2.AddrOf(v, a)
			for i := range s.L1s {
				s.L1s[i].c.Invalidate(va)
			}
		}
		l2.Fill(v, a, l2Clean)
		line = v
	}
	if tile >= 0 {
		l1 := s.L1s[tile].c
		if _, ok := l1.Peek(a); !ok {
			v := l1.Victim(a)
			if v.Valid {
				// Drop the old copy's directory record.
				va := l1.AddrOf(v, a)
				if old, ok2 := s.L2s[s.HomeBank(va)].c.Peek(va); ok2 {
					old.Sharers &^= 1 << uint(tile)
					if old.Owner == int16(tile) {
						old.Owner = -1
					}
				}
			}
			st := l1S
			if exclusive {
				st = l1E
			}
			l1.Fill(v, a, st)
		}
		if exclusive {
			line.Owner = int16(tile)
			line.Sharers = 0
		} else {
			line.Sharers |= 1 << uint(tile)
		}
	}
}

// ResetStats zeroes every measurement aggregate (message mix, latency
// anatomy, power events, circuit statistics, cache counters) after a cache
// warm-up phase, without touching architectural state.
func (s *System) ResetStats() {
	for _, ms := range s.msgsSh {
		*ms = MsgStats{}
	}
	for _, ls := range s.latSh {
		*ls = LatencyStats{}
	}
	s.Net.ResetEvents()
	if s.Mgr != nil {
		s.Mgr.ResetStats()
	}
	for i := range s.L1s {
		c := s.L1s[i].Cache()
		c.Hits, c.Misses, c.Evictions = 0, 0, 0
		c2 := s.L2s[i].Cache()
		c2.Hits, c2.Misses, c2.Evictions = 0, 0, 0
		s.L2s[i].BlockedCycles = 0
	}
	for _, mc := range s.MCs {
		mc.Fetches, mc.WriteBacks = 0, 0
	}
}

// Busy reports whether any transaction, queue or flit is still in flight.
func (s *System) Busy() bool {
	if !s.Net.Quiescent() {
		return true
	}
	for i := range s.L1s {
		if s.L1s[i].busy() || s.L2s[i].busy() {
			return true
		}
	}
	for _, mc := range s.MCs {
		if mc.busy() {
			return true
		}
	}
	return false
}

// procQueue is the shared delayed-processing queue of the controllers:
// every delivered message is handled a fixed access latency after arrival.
type procQueue struct {
	items []procItem
	// scratch is reused across due calls so the per-tick drain allocates
	// nothing in steady state. Handlers may push while iterating the
	// returned slice (pushes go to items), but must not call due again.
	scratch []*noc.Message
}

type procItem struct {
	at  sim.Cycle
	msg *noc.Message
}

func (q *procQueue) push(at sim.Cycle, msg *noc.Message) {
	q.items = append(q.items, procItem{at: at, msg: msg})
}

// due removes and returns the messages scheduled at or before now,
// preserving insertion order.
func (q *procQueue) due(now sim.Cycle) []*noc.Message {
	out := q.scratch[:0]
	rest := q.items[:0]
	for _, it := range q.items {
		if it.at <= now {
			out = append(out, it.msg)
		} else {
			rest = append(rest, it)
		}
	}
	q.items = rest
	q.scratch = out
	return out
}

func (q *procQueue) empty() bool { return len(q.items) == 0 }
