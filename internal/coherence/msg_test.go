package coherence

import (
	"strings"
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
	"reactivenoc/internal/noc"
)

func TestMsgTypeProperties(t *testing.T) {
	for mt := MsgGetS; mt < numMsgTypes; mt++ {
		if strings.HasPrefix(mt.String(), "MsgType(") {
			t.Errorf("type %d unnamed", mt)
		}
		if n := mt.SizeFlits(); n != 1 && n != 5 {
			t.Errorf("%v size %d", mt, n)
		}
		if mt.SizeFlits() == 5 && mt != MsgWBData && mt != MsgMemWB &&
			mt != MsgL2Reply && mt != MsgL1ToL1 && mt != MsgInvAckData && mt != MsgMemData {
			t.Errorf("%v should not carry data", mt)
		}
	}
	// Request/reply split matches the virtual-network mapping.
	requests := []MsgType{MsgGetS, MsgGetX, MsgFwd, MsgInv, MsgWBData, MsgMemFetch, MsgMemWB}
	for _, mt := range requests {
		if mt.IsReply() {
			t.Errorf("%v misclassified as reply", mt)
		}
	}
	replies := []MsgType{MsgL2Reply, MsgL1ToL1, MsgDataAck, MsgWBAck, MsgInvAck, MsgInvAckData, MsgMemData, MsgMemAck, MsgFwdMiss}
	for _, mt := range replies {
		if !mt.IsReply() {
			t.Errorf("%v misclassified as request", mt)
		}
	}
}

func TestExpectedReplies(t *testing.T) {
	cases := map[MsgType]struct {
		rep  MsgType
		proc int64
	}{
		MsgGetS:     {MsgL2Reply, int64(L2HitLatency)},
		MsgGetX:     {MsgL2Reply, int64(L2HitLatency)},
		MsgWBData:   {MsgWBAck, int64(L2HitLatency)},
		MsgMemFetch: {MsgMemData, int64(MemLatency)},
		MsgMemWB:    {MsgMemAck, int64(MemLatency)},
	}
	for req, want := range cases {
		rep, proc := req.ExpectedReply()
		if rep != want.rep || int64(proc) != want.proc {
			t.Errorf("%v expects (%v, %d), want (%v, %d)", req, rep, proc, want.rep, want.proc)
		}
		if !req.ReservesCircuit() {
			t.Errorf("%v should reserve a circuit", req)
		}
	}
	if rep, proc := MsgInv.ExpectedReply(); rep != 0 || proc != 0 {
		t.Error("Inv expects no circuit reply")
	}
	for _, mt := range []MsgType{MsgFwd, MsgInv, MsgDataAck, MsgL2Reply} {
		if mt.ReservesCircuit() {
			t.Errorf("%v must not reserve", mt)
		}
	}
}

func TestMsgStatsFractionAndTotals(t *testing.T) {
	var s MsgStats
	s.Network[MsgGetS] = 3
	s.Network[MsgL2Reply] = 6
	s.Network[MsgDataAck] = 3
	total, reqs := s.Totals()
	if total != 12 || reqs != 3 {
		t.Fatalf("totals %d/%d", total, reqs)
	}
	if f := s.Fraction(MsgL2Reply); f != 0.5 {
		t.Fatalf("fraction %v", f)
	}
	var empty MsgStats
	if empty.Fraction(MsgGetS) != 0 {
		t.Fatal("empty fraction should be 0")
	}
	if s.Count(MsgGetS) != 3 {
		t.Fatal("count wrong")
	}
}

func TestLatencyStatsAccessors(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	b.access(0, b.remoteAddr(3, 0), false)
	b.drain()
	if b.sys.Lat.TypeRecord(MsgGetS).Network.N() == 0 {
		t.Fatal("per-type latency not recorded")
	}
	if b.sys.Lat.ReplyPercentile(0.5) == 0 {
		t.Fatal("reply percentile empty after a data reply")
	}
	var empty LatencyStats
	if empty.ReplyPercentile(0.99) != 0 {
		t.Fatal("nil histogram should report 0")
	}
	// Merge folds records.
	var a, c LatencyStats
	a.Requests.Add(10, 1)
	c.Requests.Add(20, 2)
	a.Merge(&c)
	if a.Requests.Network.N() != 2 {
		t.Fatal("merge lost samples")
	}
}

func TestResetStatsClearsEverything(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5})
	b.access(0, b.remoteAddr(3, 0), false)
	b.drain()
	total, _ := b.sys.Msgs.Totals()
	if total == 0 {
		t.Fatal("no traffic before reset")
	}
	b.sys.ResetStats()
	total, _ = b.sys.Msgs.Totals()
	if total != 0 {
		t.Fatal("message stats survived reset")
	}
	if b.sys.Lat.Requests.Network.N() != 0 {
		t.Fatal("latency stats survived reset")
	}
	if b.sys.Net.Events().LinkFlits != 0 {
		t.Fatal("power events survived reset")
	}
	if b.sys.Mgr.Stats.ReplyTotal() != 0 {
		t.Fatal("circuit stats survived reset")
	}
	if b.sys.L1s[0].Cache().Misses != 0 {
		t.Fatal("cache counters survived reset")
	}
	// Architectural state must survive: the line is still cached.
	if _, ok := b.sys.L1s[0].Cache().Peek(b.remoteAddr(3, 0)); !ok {
		t.Fatal("reset must not touch cache contents")
	}
}

func TestMemCtrlID(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	for _, mc := range b.sys.MCs {
		if !b.sys.M.Contains(mc.ID()) {
			t.Fatalf("MC on phantom tile %d", mc.ID())
		}
	}
	if len(b.sys.MCs) != 4 {
		t.Fatalf("%d MCs, want 4", len(b.sys.MCs))
	}
}

func TestInvOnWriteBackBufferedLine(t *testing.T) {
	// An invalidation reaching an L1 whose only copy sits in the
	// write-back buffer must answer with the buffered (dirty) data.
	b := newTB(t, 4, 4, core.Options{})
	addr := b.remoteAddr(0, 0)
	b.access(15, addr, true)
	b.drain()
	l1 := b.sys.L1s[15].Cache().Config()
	stride := cache.Addr(l1.Sets() * l1.LineBytes)
	for i := 1; i < l1.Ways; i++ {
		b.sys.Prefill(addr+cache.Addr(i)*stride, 15, true)
		b.access(15, addr+cache.Addr(i)*stride, false)
	}
	b.done[15] = false
	b.sys.L1s[15].Access(addr+cache.Addr(l1.Ways)*stride, false, b.kernel.Now()) // evicts dirty addr
	if _, ok := b.kernel.RunUntil(func() bool {
		_, pending := b.sys.L1s[15].wb[addr]
		return pending
	}, 100000); !ok {
		t.Fatal("write-back never started")
	}
	// A competing writer triggers Inv toward tile 15 while the WB flies.
	b.done[1] = false
	b.sys.L1s[1].Access(addr, true, b.kernel.Now())
	if _, ok := b.kernel.RunUntil(func() bool { return b.done[1] && b.done[15] }, 100000); !ok {
		t.Fatal("accesses did not finish")
	}
	b.drain()
	checkCoherenceInvariants(t, b.sys)
	line, ok := b.sys.L1s[1].Cache().Peek(addr)
	if !ok || line.State != l1M {
		t.Fatal("writer did not end with M")
	}
}

func TestSendRejectsNothing(t *testing.T) {
	// noc.Message construction path: eligible requests carry estimates.
	b := newTB(t, 2, 2, core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5})
	// Snapshot the message at delivery: the bank recycles it once the
	// transaction completes, so holding the pointer would read a zeroed
	// free-list object.
	var seen noc.Message
	b.sys.Net.NI(3).SetReceiver(func(m *noc.Message, now int64) {
		if seen.Type == 0 && m.Type == int(MsgGetS) {
			seen = *m
		}
		b.sys.L2s[3].deliver(m, now)
	})
	b.access(0, b.remoteAddr(3, 0), false)
	b.drain()
	if seen.Type == 0 {
		t.Fatal("GetS not observed")
	}
	if !seen.WantCircuit || seen.ExpectedReplySize != 5 || seen.ExpectedProcDelay != L2HitLatency {
		t.Fatalf("request metadata wrong: %+v", seen)
	}
}

// TestPayloadPackRoundTrip exhaustively checks every flag combination (and
// the requestor-id corners) through Pack/UnpackPayload: the packed uint64
// replaced an interface-boxed payload on the hot path, so any lost bit would
// silently corrupt the protocol.
func TestPayloadPackRoundTrip(t *testing.T) {
	for _, req := range []int{0, 1, 15, 63, 1<<16 - 1} {
		for bits := 0; bits < 1<<6; bits++ {
			p := Payload{
				Requestor:     req,
				Write:         bits&1 != 0,
				Exclusive:     bits&2 != 0,
				Dirty:         bits&4 != 0,
				OwnerKept:     bits&8 != 0,
				NoAck:         bits&16 != 0,
				CircuitUndone: bits&32 != 0,
			}
			if got := UnpackPayload(p.Pack()); got != p {
				t.Fatalf("round trip lost data: %+v -> %#x -> %+v", p, p.Pack(), got)
			}
		}
	}
	// The zero payload must pack to zero: freshly pooled messages carry a
	// zeroed Payload field and must decode as the empty payload.
	if (Payload{}).Pack() != 0 {
		t.Errorf("zero payload packs to %#x, want 0", (Payload{}).Pack())
	}
}
