package coherence

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
)

// evictLine forces tile id's L1 to evict addr by filling its set with
// conflicting lines (same L1 set, same home bank pattern irrelevant).
func (b *tb) evictLine(id int, addr cache.Addr) {
	l1 := b.sys.L1s[id].Cache().Config()
	stride := cache.Addr(l1.Sets() * l1.LineBytes)
	for i := 1; i <= l1.Ways; i++ {
		b.access(id, addr+cache.Addr(i)*stride, false)
	}
	if _, ok := b.sys.L1s[id].Cache().Peek(addr); ok {
		b.t.Fatalf("line %#x survived the eviction storm", addr)
	}
}

func TestSilentCleanEvictionThenFwdMiss(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false) // tile 0 exclusive (clean)
	b.evictLine(0, addr)     // silent drop: the directory still says owner=0
	b.drain()

	// Tile 1 requests: the forward finds nothing; the bank serves.
	lat := b.access(1, addr, false)
	b.drain()
	if lat == 0 {
		t.Fatal("expected a miss")
	}
	if got := b.sys.Msgs.Count(MsgFwdMiss); got != 1 {
		t.Fatalf("FwdMiss count %d, want 1", got)
	}
	line, ok := b.sys.L1s[1].Cache().Peek(addr)
	if !ok || line.State == 0 {
		t.Fatal("requestor did not receive the line")
	}
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	if l2line.Owner != 1 {
		t.Fatalf("directory owner %d, want 1", l2line.Owner)
	}
	checkCoherenceInvariants(t, b.sys)
}

func TestStaleSelfOwnerRefetch(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	b.evictLine(0, addr)
	b.drain()
	fwdsBefore := b.sys.Msgs.Count(MsgFwd)

	// The same tile re-requests: no forward to itself.
	if lat := b.access(0, addr, false); lat == 0 {
		t.Fatal("expected a miss after the silent drop")
	}
	b.drain()
	if got := b.sys.Msgs.Count(MsgFwd); got != fwdsBefore {
		t.Fatalf("self-refetch forwarded (%d -> %d)", fwdsBefore, got)
	}
	line, _ := b.sys.L1s[0].Cache().Peek(addr)
	if line == nil || line.State != l1E {
		t.Fatal("refetch should grant E again")
	}
	checkCoherenceInvariants(t, b.sys)
}

func TestDirtyEvictionWritesBackOnce(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, true) // dirty
	b.evictLine(0, addr)
	b.drain()
	if got := b.sys.Msgs.Count(MsgWBData); got != 1 {
		t.Fatalf("WBData count %d, want 1", got)
	}
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	if l2line.State != l2Dirty || l2line.Owner != -1 {
		t.Fatalf("bank state after wb: %+v", l2line)
	}
	// The data survives: re-read hits the bank (no memory fetch).
	fetches := b.sys.Msgs.Count(MsgMemFetch)
	b.access(1, addr, false)
	b.drain()
	if got := b.sys.Msgs.Count(MsgMemFetch); got != fetches {
		t.Fatal("re-read went to memory despite the write-back")
	}
}

func TestForwardRaceServedFromWBBuffer(t *testing.T) {
	// Tile 3 holds X dirty and evicts it (WBData in flight on a long
	// path) while nearby tile 1 requests it: the forward must be served
	// from tile 3's write-back buffer and the stale WBData dropped.
	b := newTB(t, 4, 4, core.Options{})
	addr := b.remoteAddr(0, 0) // home bank at tile 0, far from tile 15
	b.access(15, addr, true)   // tile 15 owns dirty (longest path)
	b.drain()

	// Fill the rest of X's set and touch those lines so X is the PLRU
	// victim, then kick off the eviction and the competing request in
	// the same cycle.
	l1 := b.sys.L1s[15].Cache().Config()
	stride := cache.Addr(l1.Sets() * l1.LineBytes)
	for i := 1; i < l1.Ways; i++ {
		b.sys.Prefill(addr+cache.Addr(i)*stride, 15, true)
	}
	for i := 1; i < l1.Ways; i++ {
		if lat := b.access(15, addr+cache.Addr(i)*stride, false); lat != 0 {
			t.Fatal("prefilled line missed")
		}
	}
	b.done[15] = false
	b.sys.L1s[15].Access(addr+cache.Addr(l1.Ways)*stride, false, b.kernel.Now())
	// Wait for the eviction's WBData to be in flight (wb buffer armed),
	// then fire the competing request: its forward reaches tile 15 while
	// X only exists in the write-back buffer.
	if _, ok := b.kernel.RunUntil(func() bool {
		_, pending := b.sys.L1s[15].wb[addr]
		return pending
	}, 100000); !ok {
		t.Fatal("write-back never left")
	}
	b.done[1] = false
	b.sys.L1s[1].Access(addr, false, b.kernel.Now())
	if _, ok := b.kernel.RunUntil(func() bool { return b.done[1] && b.done[15] }, 100000); !ok {
		t.Fatal("accesses did not complete")
	}
	b.drain()
	line, ok := b.sys.L1s[1].Cache().Peek(addr)
	if !ok || line.State == 0 {
		t.Fatal("requestor did not get the line")
	}
	if b.sys.Msgs.Count(MsgWBData) == 0 {
		t.Fatal("eviction should have written back")
	}
	checkCoherenceInvariants(t, b.sys)
}

func TestUpgradeRaceInvalidatedWhileWaiting(t *testing.T) {
	// Two sharers upgrade the same line concurrently: the loser's S copy
	// is invalidated while its GetX waits, and it still ends with M.
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	b.access(1, addr, false) // both shared
	now := b.kernel.Now()
	b.done[0], b.done[1] = false, false
	b.sys.L1s[0].Access(addr, true, now)
	b.sys.L1s[1].Access(addr, true, now)
	if _, ok := b.kernel.RunUntil(func() bool { return b.done[0] && b.done[1] }, 100000); !ok {
		t.Fatal("concurrent upgrades did not complete")
	}
	b.drain()
	// Exactly one tile ends with the line in M; the directory agrees.
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	owner := int(l2line.Owner)
	if owner != 0 && owner != 1 {
		t.Fatalf("directory owner %d after racing upgrades", owner)
	}
	line, ok := b.sys.L1s[owner].Cache().Peek(addr)
	if !ok || line.State != l1M {
		t.Fatal("winner does not hold M")
	}
	if _, ok := b.sys.L1s[1-owner].Cache().Peek(addr); ok {
		t.Fatal("loser still holds a copy")
	}
	checkCoherenceInvariants(t, b.sys)
}

func TestBlockedLineQueuesFIFO(t *testing.T) {
	// Several requestors pile onto one line: the L2 serializes them and
	// everyone completes (the line-blocking behaviour NoAck shortens).
	b := newTB(t, 4, 4, core.Options{})
	addr := b.remoteAddr(5, 0)
	now := b.kernel.Now()
	for id := 0; id < 8; id++ {
		if id == 5 {
			continue
		}
		b.done[id] = false
		b.sys.L1s[id].Access(addr, id%2 == 0, now)
	}
	done := func() bool {
		for id := 0; id < 8; id++ {
			if id != 5 && !b.done[id] {
				return false
			}
		}
		return true
	}
	if _, ok := b.kernel.RunUntil(done, 200000); !ok {
		t.Fatal("pile-up did not drain")
	}
	b.drain()
	checkCoherenceInvariants(t, b.sys)
	if b.sys.L2s[5].BlockedCycles == 0 {
		t.Fatal("line blocking never observed")
	}
}
