package coherence

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
	"reactivenoc/internal/sim"
)

// TestSoakWithPeriodicAudits runs long randomized traffic on the two most
// intricate variants, draining and auditing every layer several times
// mid-run — the heaviest correctness exercise in the suite.
func TestSoakWithPeriodicAudits(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	variants := map[string]core.Options{
		"reuse":      {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Reuse: true},
		"slackdelay": {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Timed: true, SlackPerHop: 1, DelayPerHop: 1},
		"fragmented": {Mechanism: core.MechFragmented, MaxCircuitsPerPort: 2},
		"probe":      {Mechanism: core.MechProbe, MaxCircuitsPerPort: 5},
	}
	for name, opts := range variants {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b := newTB(t, 4, 4, opts)
			rng := sim.NewRNG(4242)
			pool := make([]cache.Addr, 96)
			for i := range pool {
				pool[i] = cache.Addr(i * 64)
			}
			n := b.sys.M.Nodes()
			issued := make([]int, n)
			const opsPerRound, rounds = 80, 4
			for round := 0; round < rounds; round++ {
				target := (round + 1) * opsPerRound
				driver := tickFn(func(now sim.Cycle) {
					for id := 0; id < n; id++ {
						if b.sys.L1s[id].Pending() || issued[id] >= target {
							continue
						}
						issued[id]++
						b.sys.L1s[id].Access(pool[rng.Intn(len(pool))], rng.Bool(0.4), now)
					}
				})
				b.kernel.Register(driver)
				done := func() bool {
					if b.sys.Busy() {
						return false
					}
					for id := 0; id < n; id++ {
						if issued[id] < target {
							return false
						}
					}
					return true
				}
				if _, ok := b.kernel.RunUntil(done, 500000); !ok {
					t.Fatalf("round %d did not drain", round)
				}
				// Unregister by letting the driver saturate (it no-ops once
				// the target is met); audit the drained system.
				if err := b.sys.AuditQuiescent(b.kernel.Now()); err != nil {
					t.Fatalf("round %d audit: %v", round, err)
				}
			}
		})
	}
}
