package coherence

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/core"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// tb drives a System with scripted per-core accesses.
type tb struct {
	t      *testing.T
	sys    *System
	kernel *sim.Kernel
	done   []bool
}

func newTB(t *testing.T, w, h int, opts core.Options) *tb {
	t.Helper()
	b := &tb{t: t, sys: NewSystem(mesh.New(w, h), opts, 4), kernel: sim.NewKernel()}
	b.done = make([]bool, b.sys.M.Nodes())
	for i := range b.sys.L1s {
		i := i
		b.sys.L1s[i].SetMissHandler(func(now sim.Cycle) { b.done[i] = true })
	}
	b.kernel.Register(b.sys)
	if b.sys.Mgr != nil {
		// The manager's deferred cross-tile operations drain at the cycle
		// epilogue in every engine mode, exactly as System.Register wires it.
		b.kernel.AddEpilogue(b.sys.Mgr.FlushCycle)
	}
	return b
}

// access performs one access on core id and runs until it completes,
// returning the miss latency in cycles (0 for a hit).
func (b *tb) access(id int, addr cache.Addr, write bool) sim.Cycle {
	b.t.Helper()
	start := b.kernel.Now()
	b.done[id] = false
	if b.sys.L1s[id].Access(addr, write, start) {
		return 0
	}
	if _, ok := b.kernel.RunUntil(func() bool { return b.done[id] }, 100000); !ok {
		b.t.Fatalf("core %d access %#x did not complete", id, addr)
	}
	return b.kernel.Now() - start
}

// drain runs until the whole system is idle.
func (b *tb) drain() {
	b.t.Helper()
	if _, ok := b.kernel.RunUntil(func() bool { return !b.sys.Busy() }, 100000); !ok {
		b.t.Fatal("system did not drain")
	}
}

// remoteAddr returns a line address whose home bank is tile `home`.
func (b *tb) remoteAddr(home int, k int) cache.Addr {
	n := uint64(b.sys.M.Nodes())
	return cache.Addr(uint64(home)*64 + uint64(k)*64*n)
}

func TestColdReadMissFromMemory(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0) // home bank at tile 3, requestor tile 0
	lat := b.access(0, addr, false)
	b.drain()

	if lat <= MemLatency {
		t.Fatalf("cold miss latency %d should exceed memory latency", lat)
	}
	line, ok := b.sys.L1s[0].Cache().Peek(addr)
	if !ok || line.State != l1E {
		t.Fatalf("requestor should hold the line in E, got %+v ok=%v", line, ok)
	}
	l2line, ok := b.sys.L2s[3].Cache().Peek(addr)
	if !ok || l2line.Owner != 0 {
		t.Fatalf("home bank should record owner 0, got %+v ok=%v", l2line, ok)
	}
	m := &b.sys.Msgs
	for _, want := range []struct {
		t MsgType
		n int64
	}{
		{MsgGetS, 1}, {MsgMemFetch, 1}, {MsgMemData, 1}, {MsgL2Reply, 1}, {MsgDataAck, 1},
	} {
		if got := m.Count(want.t); got != want.n {
			t.Errorf("%v count %d, want %d", want.t, got, want.n)
		}
	}
}

func TestReadHitAfterFill(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	if lat := b.access(0, addr, false); lat != 0 {
		t.Fatalf("second read should hit, latency %d", lat)
	}
	if lat := b.access(0, addr+8, false); lat != 0 {
		t.Fatalf("same-line offset should hit, latency %d", lat)
	}
}

func TestForwardedReadSharesLine(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false) // tile 0 becomes exclusive owner
	b.access(1, addr, false) // forwarded; both end shared
	b.drain()

	m := &b.sys.Msgs
	if m.Count(MsgFwd) != 1 || m.Count(MsgL1ToL1) != 1 {
		t.Fatalf("fwd/L1toL1 = %d/%d, want 1/1", m.Count(MsgFwd), m.Count(MsgL1ToL1))
	}
	for _, id := range []int{0, 1} {
		line, ok := b.sys.L1s[id].Cache().Peek(addr)
		if !ok || line.State != l1S {
			t.Fatalf("tile %d should hold S, got %+v ok=%v", id, line, ok)
		}
	}
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	if l2line.Owner != -1 || l2line.Sharers != 0b11 {
		t.Fatalf("directory after share: owner=%d sharers=%b", l2line.Owner, l2line.Sharers)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	b.access(1, addr, false) // 0 and 1 share
	b.access(2, addr, true)  // 2 writes: invalidate both
	b.drain()

	m := &b.sys.Msgs
	if m.Count(MsgInv) != 2 || m.Count(MsgInvAck) != 2 {
		t.Fatalf("inv/ack = %d/%d, want 2/2", m.Count(MsgInv), m.Count(MsgInvAck))
	}
	for _, id := range []int{0, 1} {
		if _, ok := b.sys.L1s[id].Cache().Peek(addr); ok {
			t.Fatalf("tile %d copy survived invalidation", id)
		}
	}
	line, ok := b.sys.L1s[2].Cache().Peek(addr)
	if !ok || line.State != l1M {
		t.Fatalf("writer should hold M, got %+v ok=%v", line, ok)
	}
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	if l2line.Owner != 2 || l2line.Sharers != 0 {
		t.Fatalf("directory after write: owner=%d sharers=%b", l2line.Owner, l2line.Sharers)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false)
	b.access(1, addr, false) // shared by 0 and 1
	lat := b.access(1, addr, true)
	b.drain()
	if lat == 0 {
		t.Fatal("upgrade from S must miss")
	}
	if got := b.sys.Msgs.Count(MsgInv); got != 1 {
		t.Fatalf("upgrade should invalidate only the other sharer, got %d Invs", got)
	}
	line, _ := b.sys.L1s[1].Cache().Peek(addr)
	if line == nil || line.State != l1M {
		t.Fatal("upgrader should hold M")
	}
}

func TestWriteToExclusiveHits(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, false) // E
	before, _ := b.sys.Msgs.Totals()
	if lat := b.access(0, addr, true); lat != 0 {
		t.Fatalf("write to E should hit silently, latency %d", lat)
	}
	after, _ := b.sys.Msgs.Totals()
	if after != before {
		t.Fatal("silent E->M upgrade generated messages")
	}
}

func TestOwnershipMigrationOnWrite(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(3, 0)
	b.access(0, addr, true) // 0 owns M
	b.access(1, addr, true) // forwarded GetX migrates ownership
	b.drain()
	if b.sys.Msgs.Count(MsgFwd) != 1 || b.sys.Msgs.Count(MsgL1ToL1) != 1 {
		t.Fatal("migration should use the forward path")
	}
	if _, ok := b.sys.L1s[0].Cache().Peek(addr); ok {
		t.Fatal("old owner copy should be invalidated")
	}
	line, _ := b.sys.L1s[1].Cache().Peek(addr)
	if line == nil || line.State != l1M {
		t.Fatal("new owner should hold M")
	}
	l2line, _ := b.sys.L2s[3].Cache().Peek(addr)
	if l2line.Owner != 1 {
		t.Fatalf("directory owner %d, want 1", l2line.Owner)
	}
}

func TestL1ReplacementWritesBack(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	// Five lines mapping to the same L1 set on tile 0 (L1: 128 sets).
	l1 := b.sys.L1s[0].Cache().Config()
	stride := cache.Addr(l1.Sets() * l1.LineBytes)
	base := cache.Addr(4 * 64) // keep homes off tile 0 for network counts
	var addrs []cache.Addr
	for i := 0; i < 5; i++ {
		addrs = append(addrs, base+cache.Addr(i)*stride*4)
	}
	for _, a := range addrs {
		b.access(0, a, true) // dirty fills
	}
	b.drain()
	if got := b.sys.Msgs.Count(MsgWBData) + b.sys.Msgs.Local[MsgWBData]; got != 1 {
		t.Fatalf("write-backs %d, want 1", got)
	}
	if got := b.sys.Msgs.Count(MsgWBAck) + b.sys.Msgs.Local[MsgWBAck]; got != 1 {
		t.Fatalf("wb acks %d, want 1", got)
	}
	// The evicted line must be re-fetchable and served dirty from L2.
	if lat := b.access(0, addrs[0], false); lat == 0 {
		t.Fatal("evicted line should miss")
	}
	b.drain()
	home := b.sys.HomeBank(addrs[0])
	l2line, ok := b.sys.L2s[home].Cache().Peek(addrs[0])
	if !ok {
		t.Fatal("home bank lost the line")
	}
	if l2line.State != l2Dirty {
		t.Fatal("absorbed write-back should mark the bank copy dirty")
	}
}

func TestL2EvictionRecallsOwner(t *testing.T) {
	b := newTB(t, 4, 4, core.Options{})
	// 17 lines in the same set of the same bank (tile 1), each owned
	// dirty by a different core so the L1s never write them back on
	// their own. Same L2 set means a line-number stride equal to the
	// set count, which is bank-aligned (1024 ≡ 0 mod 16).
	l2cfg := b.sys.L2s[1].Cache().Config()
	stride := cache.Addr(b.sys.M.Nodes() * l2cfg.Sets() * l2cfg.LineBytes)
	base := cache.Addr(1 * 64)
	var addrs []cache.Addr
	for i := 0; i < 17; i++ {
		addrs = append(addrs, base+cache.Addr(i)*stride)
	}
	for i, a := range addrs[:16] {
		b.access(i, a, true) // core i owns line i dirty
	}
	b.access(2, addrs[16], true) // forces an L2 eviction with recall
	b.drain()
	m := &b.sys.Msgs
	if m.Count(MsgInvAckData) == 0 {
		t.Fatal("evicting an owned dirty line must recall the data")
	}
	if m.Count(MsgMemWB) == 0 || m.Count(MsgMemAck) == 0 {
		t.Fatalf("dirty eviction should write to memory (wb=%d ack=%d)",
			m.Count(MsgMemWB), m.Count(MsgMemAck))
	}
	// Inclusivity: exactly one L1 copy was recalled.
	victims := 0
	for i, a := range addrs[:16] {
		if _, ok := b.sys.L1s[i].Cache().Peek(a); !ok {
			victims++
		}
	}
	if victims != 1 {
		t.Fatalf("exactly one L1 copy should have been recalled, got %d", victims)
	}
}

func TestLocalExchangeStaysOffNetwork(t *testing.T) {
	b := newTB(t, 2, 2, core.Options{})
	addr := b.remoteAddr(0, 0) // home bank is the requestor's own tile
	b.access(0, addr, false)
	b.drain()
	m := &b.sys.Msgs
	if m.Network[MsgGetS] != 0 || m.Local[MsgGetS] != 1 {
		t.Fatalf("local GetS miscounted: net=%d local=%d", m.Network[MsgGetS], m.Local[MsgGetS])
	}
	if m.Network[MsgL2Reply] != 0 || m.Local[MsgL2Reply] != 1 {
		t.Fatal("local reply miscounted")
	}
	// The memory fetch still crosses the network (MC on another tile or
	// the same: tile 0 may host an MC; accept either).
}

func TestDataAckEliminatedOnCircuit(t *testing.T) {
	opts := core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true}
	b := newTB(t, 4, 4, opts)
	addr := b.remoteAddr(15, 3)
	b.access(0, addr, false) // cold: L2 miss -> memory (acks for MemData handled circuit-wise)
	b.access(1, addr+64*16*100, false)
	b.drain()

	// Warm L2, clean request-reply: new line, remote bank hit.
	warm := b.remoteAddr(15, 7)
	b.access(2, warm, false)
	b.drain()
	acks := b.sys.Msgs.Count(MsgDataAck)
	st := b.sys.Mgr.Stats
	if st.EliminatedAcks == 0 {
		t.Fatalf("no acks eliminated (acks sent: %d)", acks)
	}
	l2line, _ := b.sys.L2s[15].Cache().Peek(warm)
	if l2line == nil || l2line.Busy {
		t.Fatal("NoAck grant should leave the line unblocked")
	}
}

func TestNoAckKeepsProtocolCorrect(t *testing.T) {
	// Write/read ping-pong with NoAck must preserve directory sanity.
	opts := core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true}
	b := newTB(t, 4, 4, opts)
	addr := b.remoteAddr(5, 0)
	for i := 0; i < 6; i++ {
		b.access(i%3, addr, i%2 == 0)
	}
	b.drain()
	checkCoherenceInvariants(t, b.sys)
}

// checkCoherenceInvariants runs the full quiescent audit: the coherence
// invariants plus the network and circuit-mechanism leak checks.
func checkCoherenceInvariants(t *testing.T, sys *System) {
	t.Helper()
	if err := sys.AuditCoherence(); err != nil {
		t.Error(err)
	}
}

// auditAll additionally checks conservation across every layer (only valid
// when the system is fully idle).
func auditAll(t *testing.T, b *tb) {
	t.Helper()
	if err := b.sys.AuditQuiescent(b.kernel.Now()); err != nil {
		t.Error(err)
	}
}

func TestStressRandomTrafficAllMechanisms(t *testing.T) {
	mechs := map[string]core.Options{
		"baseline":   {},
		"fragmented": {Mechanism: core.MechFragmented, MaxCircuitsPerPort: 2},
		"complete":   {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5},
		"noack":      {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true},
		"reuse":      {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true, Reuse: true},
		"timed":      {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, Timed: true, NoAck: true},
		"slackdelay": {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, Timed: true, SlackPerHop: 1, DelayPerHop: 1, NoAck: true},
		"postponed":  {Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, Timed: true, PostponePerHop: 1, NoAck: true},
		"ideal":      {Mechanism: core.MechIdeal},
	}
	for name, opts := range mechs {
		t.Run(name, func(t *testing.T) {
			b := newTB(t, 4, 4, opts)
			rng := sim.NewRNG(12345)
			n := b.sys.M.Nodes()
			// Interleaved async traffic: every core runs 60 accesses
			// over a small shared pool to force forwards, upgrades,
			// invalidations and replacements.
			ops := make([]int, n)
			pool := make([]cache.Addr, 48)
			for i := range pool {
				pool[i] = cache.Addr(i * 64)
			}
			driver := tickFn(func(now sim.Cycle) {
				for id := 0; id < n; id++ {
					if b.sys.L1s[id].Pending() || ops[id] >= 60 {
						continue
					}
					a := pool[rng.Intn(len(pool))]
					w := rng.Bool(0.4)
					ops[id]++
					b.sys.L1s[id].Access(a, w, now)
				}
			})
			b.kernel.Register(driver)
			deadline := sim.Cycle(400000)
			_, ok := b.kernel.RunUntil(func() bool {
				if b.sys.Busy() {
					return false
				}
				for id := 0; id < n; id++ {
					if ops[id] < 60 {
						return false
					}
				}
				return true
			}, deadline)
			if !ok {
				t.Fatalf("stress run did not finish in %d cycles", deadline)
			}
			checkCoherenceInvariants(t, b.sys)
			auditAll(t, b)
			if opts.Enabled() {
				st := b.sys.Mgr.Stats
				if st.ReplyTotal() == 0 {
					t.Fatal("no replies classified")
				}
				if opts.Mechanism != core.MechFragmented && st.Replies[core.OutcomeCircuit] == 0 {
					t.Fatal("no circuits ridden under stress")
				}
			}
		})
	}
}

type tickFn func(sim.Cycle)

func (f tickFn) Tick(now sim.Cycle) { f(now) }

func TestDeterminism(t *testing.T) {
	run := func() (sim.Cycle, int64) {
		b := newTB(t, 4, 4, core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, NoAck: true})
		rng := sim.NewRNG(99)
		for i := 0; i < 40; i++ {
			b.access(rng.Intn(16), cache.Addr(rng.Intn(64)*64), rng.Bool(0.5))
		}
		b.drain()
		total, _ := b.sys.Msgs.Totals()
		return b.kernel.Now(), total
	}
	c1, m1 := run()
	c2, m2 := run()
	if c1 != c2 || m1 != m2 {
		t.Fatalf("non-deterministic: run1=(%d,%d) run2=(%d,%d)", c1, m1, c2, m2)
	}
}

func TestMessageMixRepliesDominate(t *testing.T) {
	// Table 1's headline: more than half the network messages are replies.
	b := newTB(t, 4, 4, core.Options{})
	rng := sim.NewRNG(7)
	for i := 0; i < 200; i++ {
		b.access(rng.Intn(16), cache.Addr(rng.Intn(96)*64), rng.Bool(0.35))
	}
	b.drain()
	total, reqs := b.sys.Msgs.Totals()
	if total == 0 {
		t.Fatal("no traffic")
	}
	replyFrac := 1 - float64(reqs)/float64(total)
	if replyFrac <= 0.45 || replyFrac >= 0.7 {
		t.Fatalf("reply fraction %.2f outside the plausible Table-1 band", replyFrac)
	}
}
