package coherence

import (
	"fmt"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// MemCtrl models one of the memory controllers on the chip edges: a fixed
// 160-cycle service latency (Table 2), fetches answered with line data and
// write-backs with an acknowledgement — both circuit-eligible MEMORY
// replies.
type MemCtrl struct {
	sys *System
	id  mesh.NodeID
	q   procQueue

	// Fetches and WriteBacks count serviced operations.
	Fetches, WriteBacks int64

	wake sim.Waker
}

func newMC(sys *System, id mesh.NodeID) *MemCtrl {
	return &MemCtrl{sys: sys, id: id}
}

// ID returns the tile hosting this controller.
func (m *MemCtrl) ID() mesh.NodeID { return m.id }

func (m *MemCtrl) deliver(msg *noc.Message, now sim.Cycle) {
	m.wake.Wake()
	m.q.push(now+MemLatency, msg)
}

// Quiescent reports whether no request is waiting out its memory latency.
func (m *MemCtrl) Quiescent() bool { return m.q.empty() }

// Tick answers requests whose memory latency has elapsed.
func (m *MemCtrl) Tick(now sim.Cycle) {
	for _, msg := range m.q.due(now) {
		addr := cache.Addr(msg.Block)
		switch MsgType(msg.Type) {
		case MsgMemFetch:
			m.Fetches++
			m.sys.send(MsgMemData, m.id, msg.Src, addr, Payload{}, now)
		case MsgMemWB:
			m.WriteBacks++
			m.sys.send(MsgMemAck, m.id, msg.Src, addr, Payload{}, now)
		default:
			panic(fmt.Sprintf("coherence: MC %d cannot handle %v", m.id, MsgType(msg.Type)))
		}
		m.sys.Net.FreeMessageAt(m.id, msg)
	}
}

func (m *MemCtrl) busy() bool { return !m.q.empty() }
