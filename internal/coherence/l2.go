package coherence

import (
	"fmt"
	"math/bits"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/noc"
	"reactivenoc/internal/sim"
)

// L2 line states (the directory lives in the line's Sharers/Owner fields).
const (
	l2Clean uint8 = 1
	l2Dirty uint8 = 2
)

// l2Phase tracks where a blocked line's transaction stands.
type l2Phase uint8

const (
	phEvict     l2Phase = iota + 1 // recalling/invalidating the victim's L1 copies
	phFetch                        // waiting for memory data
	phInvGather                    // collecting invalidation acks for a write
	phFwd                          // waiting for the migrated owner's data ack
	phAwaitAck                     // waiting for the requestor's data ack
)

// l2Txn is one in-flight transaction; it blocks its line (and, while
// evicting, the victim's line) until completion — later requests for the
// line wait in FIFO order, the behaviour whose cost the NoAck optimization
// reduces.
type l2Txn struct {
	addr        cache.Addr
	phase       l2Phase
	req         *noc.Message // original GetS/GetX being served
	pendingAcks int
	victim      *cache.Line
	victimAddr  cache.Addr
	victimValid bool
	dirtyEvict  bool
}

// L2Ctrl is one bank of the shared, inclusive L2 with its directory slice.
type L2Ctrl struct {
	sys *System
	id  mesh.NodeID
	c   *cache.Cache
	q   procQueue

	txns    map[cache.Addr]*l2Txn
	waiting map[cache.Addr][]*noc.Message

	// BlockedCycles accumulates (transactions × cycles) of line blocking,
	// an observability hook for the NoAck effect.
	BlockedCycles int64

	wake sim.Waker
}

func newL2(sys *System, id mesh.NodeID) *L2Ctrl {
	cfg := cache.L2BankConfig()
	// Addresses are line-interleaved across the banks; strip the
	// bank-select bits before set indexing so each bank uses its whole
	// array.
	cfg.Interleave = sys.M.Nodes()
	cfg.InterleaveIndex = int(id)
	return &L2Ctrl{
		sys: sys, id: id, c: cache.New(cfg),
		txns:    map[cache.Addr]*l2Txn{},
		waiting: map[cache.Addr][]*noc.Message{},
	}
}

// Cache exposes the underlying array.
func (l *L2Ctrl) Cache() *cache.Cache { return l.c }

func (l *L2Ctrl) deliver(msg *noc.Message, now sim.Cycle) {
	l.wake.Wake()
	l.q.push(now+L2HitLatency, msg)
}

// Quiescent reports whether the next Tick is a pure no-op. Open
// transactions keep the bank awake: Tick accrues BlockedCycles for each of
// them every cycle.
func (l *L2Ctrl) Quiescent() bool { return l.q.empty() && len(l.txns) == 0 }

// Tick processes due messages and accounts blocked-line time. A message
// handle reports as consumed retires to the network's free-list; requests
// stay alive inside the transaction that serves them (txns, waiting, or a
// requeue) and retire when that transaction completes.
func (l *L2Ctrl) Tick(now sim.Cycle) {
	for _, msg := range l.q.due(now) {
		if l.handle(msg, now) {
			l.sys.Net.FreeMessageAt(l.id, msg)
		}
	}
	l.BlockedCycles += int64(len(l.txns))
}

// handle processes one due message and reports whether the bank is done
// with it (true = caller frees). GetS/GetX hand ownership to serve;
// blocked requests park in the waiting queue.
func (l *L2Ctrl) handle(msg *noc.Message, now sim.Cycle) bool {
	addr := cache.Addr(msg.Block)
	switch MsgType(msg.Type) {
	case MsgGetS, MsgGetX, MsgWBData:
		if _, blocked := l.txns[addr]; blocked {
			l.waiting[addr] = append(l.waiting[addr], msg)
			return false
		}
		if MsgType(msg.Type) == MsgWBData {
			l.handleWB(msg, addr, now)
			return true
		}
		l.serve(msg, addr, now)
		return false
	case MsgDataAck:
		l.handleDataAck(msg, addr, now)
	case MsgInvAck, MsgInvAckData:
		l.handleInvAck(msg, addr, now)
	case MsgMemData:
		l.handleMemData(addr, now)
	case MsgFwdMiss:
		l.handleFwdMiss(addr, now)
	case MsgMemAck:
		// Write-back confirmed; nothing pends on it.
	default:
		panic(fmt.Sprintf("coherence: L2 %d cannot handle %v", l.id, MsgType(msg.Type)))
	}
	return true
}

// serve processes a GetS/GetX against an unblocked line.
func (l *L2Ctrl) serve(msg *noc.Message, addr cache.Addr, now sim.Cycle) {
	pl := UnpackPayload(msg.Payload)
	requestor := mesh.NodeID(pl.Requestor)
	write := MsgType(msg.Type) == MsgGetX

	line, hit := l.c.Lookup(addr)
	if !hit {
		l.startFetch(msg, addr, now)
		return
	}

	if line.Owner == int16(requestor) {
		// The requestor silently replaced its clean exclusive copy and
		// wants the line back: the stale ownership is its own.
		line.Owner = -1
	}
	if line.Owner >= 0 {
		// An L1 owns the line exclusively: forward the request; the
		// requestor's circuit (built toward this bank) will never carry
		// data, so undo it (Section 4.4).
		owner := mesh.NodeID(line.Owner)
		undone := false
		if l.sys.Mgr != nil {
			undone = l.sys.Mgr.Undo(l.id, requestor, uint64(addr), now)
		}
		l.sys.send(MsgFwd, l.id, owner, addr,
			Payload{Requestor: pl.Requestor, Write: write, CircuitUndone: undone}, now)
		line.Busy = true
		l.txns[addr] = &l2Txn{addr: addr, phase: phFwd, req: msg}
		return
	}

	if write {
		others := line.Sharers &^ (1 << uint(requestor))
		if others != 0 {
			n := 0
			for t := 0; t < l.sys.M.Nodes(); t++ {
				if others&(1<<uint(t)) != 0 {
					l.sys.send(MsgInv, l.id, mesh.NodeID(t), addr, Payload{}, now)
					n++
				}
			}
			line.Busy = true
			l.txns[addr] = &l2Txn{addr: addr, phase: phInvGather, req: msg, pendingAcks: n}
			return
		}
		l.grantData(msg, line, addr, true, now)
		return
	}

	// GetS: a line with no copies is granted exclusively (the E state);
	// otherwise the requestor joins the sharers.
	if line.Sharers == 0 {
		l.grantData(msg, line, addr, true, now)
		return
	}
	l.grantData(msg, line, addr, false, now)
}

// grantData sends the L2 data reply, updates the directory, and either
// blocks the line until the L1_DATA_ACK or — when the reply is guaranteed
// to ride a complete circuit — eliminates the ack and unblocks at once.
func (l *L2Ctrl) grantData(req *noc.Message, line *cache.Line, addr cache.Addr, exclusive bool, now sim.Cycle) {
	pl := UnpackPayload(req.Payload)
	requestor := mesh.NodeID(pl.Requestor)
	write := MsgType(req.Type) == MsgGetX

	if write || exclusive {
		line.Owner = int16(requestor)
		line.Sharers = 0
	} else {
		line.Sharers |= 1 << uint(requestor)
	}

	noAck := l.sys.canEliminateAck(l.id, requestor, addr, now)
	l.sys.send(MsgL2Reply, l.id, requestor, addr,
		Payload{Requestor: pl.Requestor, Write: write, Exclusive: exclusive || write, NoAck: noAck}, now)
	if noAck {
		l.sys.Mgr.NoteEliminatedAck(l.id, now)
		// The paper counts eliminated messages at zero latency, recorded
		// against this bank's shard like every reply it sends.
		l.sys.latAt(l.id).OtherReplies.Add(0, 0)
		line.Busy = false
		l.unblock(addr, now)
		// No ack will come back for req: the request retires here.
		l.sys.Net.FreeMessageAt(l.id, req)
		return
	}
	line.Busy = true
	l.txns[addr] = &l2Txn{addr: addr, phase: phAwaitAck, req: req}
}

func (l *L2Ctrl) handleDataAck(msg *noc.Message, addr cache.Addr, now sim.Cycle) {
	txn := l.txns[addr]
	if txn == nil {
		panic(fmt.Sprintf("coherence: L2 %d data ack for idle line %#x", l.id, addr))
	}
	switch txn.phase {
	case phFwd:
		pl := UnpackPayload(txn.req.Payload)
		ack := UnpackPayload(msg.Payload)
		line, ok := l.c.Peek(addr)
		if !ok {
			panic(fmt.Sprintf("coherence: L2 %d lost line %#x mid-forward", l.id, addr))
		}
		if MsgType(txn.req.Type) == MsgGetX {
			// Ownership migrated to the requestor.
			line.Owner = int16(pl.Requestor)
			line.Sharers = 0
		} else {
			// The forwarded GetS shared the line; the old owner may
			// have kept a downgraded copy.
			line.Sharers = 1 << uint(pl.Requestor)
			if ack.OwnerKept && line.Owner >= 0 {
				line.Sharers |= 1 << uint(line.Owner)
			}
			line.Owner = -1
			if ack.Dirty {
				line.State = l2Dirty
			}
		}
		line.Busy = false
	case phAwaitAck:
		if line, ok := l.c.Peek(addr); ok {
			line.Busy = false
		}
	default:
		panic(fmt.Sprintf("coherence: L2 %d data ack in phase %d", l.id, txn.phase))
	}
	l.unblock(addr, now)
	// The ack closes the transaction; the original request retires.
	l.sys.Net.FreeMessageAt(l.id, txn.req)
}

func (l *L2Ctrl) handleInvAck(msg *noc.Message, addr cache.Addr, now sim.Cycle) {
	txn := l.txns[addr]
	if txn == nil {
		panic(fmt.Sprintf("coherence: L2 %d inv ack for idle line %#x", l.id, addr))
	}
	if MsgType(msg.Type) == MsgInvAckData {
		txn.dirtyEvict = true
	}
	txn.pendingAcks--
	if txn.pendingAcks > 0 {
		return
	}
	switch txn.phase {
	case phInvGather:
		line, ok := l.c.Peek(addr)
		if !ok {
			panic(fmt.Sprintf("coherence: L2 %d lost line %#x mid-invalidation", l.id, addr))
		}
		if txn.dirtyEvict {
			line.State = l2Dirty // a recalled M copy refreshed the bank
		}
		line.Sharers = 0
		delete(l.txns, addr) // grantData re-blocks as needed
		l.grantData(txn.req, line, addr, true, now)
	case phEvict:
		l.finishEvict(txn, now)
	default:
		panic(fmt.Sprintf("coherence: L2 %d inv ack in phase %d", l.id, txn.phase))
	}
}

// handleWB absorbs an L1 write-back. Stale write-backs (the line migrated
// or was evicted while the data was in flight) are acknowledged and
// dropped: the current owner's copy is newer.
func (l *L2Ctrl) handleWB(msg *noc.Message, addr cache.Addr, now sim.Cycle) {
	if line, ok := l.c.Peek(addr); ok && line.Owner == int16(msg.Src) {
		line.Owner = -1
		line.State = l2Dirty
	}
	l.sys.send(MsgWBAck, l.id, msg.Src, addr, Payload{}, now)
}

// startFetch begins an L2 miss: evict a victim (recalling L1 copies),
// write it back if dirty, and fetch the line from memory.
func (l *L2Ctrl) startFetch(req *noc.Message, addr cache.Addr, now sim.Cycle) {
	victim := l.c.Victim(addr)
	if victim == nil {
		// Every way is pinned by in-flight transactions; retry shortly.
		l.q.push(now+L2HitLatency, req)
		return
	}
	txn := &l2Txn{addr: addr, phase: phFetch, req: req, victim: victim}
	l.txns[addr] = txn
	victim.Busy = true

	if victim.Valid {
		txn.victimValid = true
		txn.victimAddr = l.c.AddrOf(victim, addr)
		txn.dirtyEvict = victim.State == l2Dirty
		l.txns[txn.victimAddr] = txn

		// Inclusive L2: recall or invalidate the L1 copies first
		// (Table 3's "Invalidation (write or L2 replacement)").
		switch {
		case victim.Owner >= 0:
			l.sys.send(MsgInv, l.id, mesh.NodeID(victim.Owner), txn.victimAddr, Payload{}, now)
			txn.phase = phEvict
			txn.pendingAcks = 1
			return
		case victim.Sharers != 0:
			txn.phase = phEvict
			txn.pendingAcks = bits.OnesCount64(victim.Sharers)
			for t := 0; t < l.sys.M.Nodes(); t++ {
				if victim.Sharers&(1<<uint(t)) != 0 {
					l.sys.send(MsgInv, l.id, mesh.NodeID(t), txn.victimAddr, Payload{}, now)
				}
			}
			return
		}
		l.finishEvict(txn, now)
		return
	}
	l.sendFetch(txn, now)
}

// finishEvict writes dirty victim data to memory and proceeds to the fetch.
func (l *L2Ctrl) finishEvict(txn *l2Txn, now sim.Cycle) {
	if txn.dirtyEvict {
		l.sys.send(MsgMemWB, l.id, l.sys.HomeMC(txn.victimAddr), txn.victimAddr, Payload{}, now)
	}
	txn.victim.Valid = false
	txn.victim.Sharers = 0
	txn.victim.Owner = -1
	delete(l.txns, txn.victimAddr)
	l.drainWaiting(txn.victimAddr, now)
	txn.phase = phFetch
	l.sendFetch(txn, now)
}

func (l *L2Ctrl) sendFetch(txn *l2Txn, now sim.Cycle) {
	l.sys.send(MsgMemFetch, l.id, l.sys.HomeMC(txn.addr), txn.addr, Payload{}, now)
}

func (l *L2Ctrl) handleMemData(addr cache.Addr, now sim.Cycle) {
	txn := l.txns[addr]
	if txn == nil || txn.phase != phFetch {
		panic(fmt.Sprintf("coherence: L2 %d memory data for idle line %#x", l.id, addr))
	}
	l.c.Fill(txn.victim, addr, l2Clean)
	txn.victim.Busy = true
	delete(l.txns, addr) // grantData re-blocks as needed
	// A freshly fetched line has no copies: both GetS and GetX are
	// granted exclusively.
	l.grantData(txn.req, txn.victim, addr, true, now)
}

// handleFwdMiss serves a forwarded request whose owner had silently
// dropped its clean copy: the bank's data is still valid, so it answers
// directly. The requestor's circuit was already undone at forward time.
func (l *L2Ctrl) handleFwdMiss(addr cache.Addr, now sim.Cycle) {
	txn := l.txns[addr]
	if txn == nil || txn.phase != phFwd {
		panic(fmt.Sprintf("coherence: L2 %d Fwd_Miss for idle line %#x", l.id, addr))
	}
	line, ok := l.c.Peek(addr)
	if !ok {
		panic(fmt.Sprintf("coherence: L2 %d lost line %#x mid-forward", l.id, addr))
	}
	line.Owner = -1
	delete(l.txns, addr) // grantData re-blocks as needed
	l.grantData(txn.req, line, addr, true, now)
}

// unblock releases a line and reprocesses requests that queued behind the
// transaction.
func (l *L2Ctrl) unblock(addr cache.Addr, now sim.Cycle) {
	delete(l.txns, addr)
	l.drainWaiting(addr, now)
}

func (l *L2Ctrl) drainWaiting(addr cache.Addr, now sim.Cycle) {
	queued := l.waiting[addr]
	if len(queued) == 0 {
		return
	}
	delete(l.waiting, addr)
	for _, m := range queued {
		l.q.push(now+1, m)
	}
}

func (l *L2Ctrl) busy() bool {
	if len(l.txns) > 0 || !l.q.empty() {
		return true
	}
	for _, w := range l.waiting {
		if len(w) > 0 {
			return true
		}
	}
	return false
}
