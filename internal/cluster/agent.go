package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AgentConfig wires one rcserved node into a cluster.
type AgentConfig struct {
	// Registry is the discovery service's base URL.
	Registry string
	// Self is this node's identity and advertised base URL.
	Self Node
	// Interval is the heartbeat cadence (<= 0: DefaultTTL/3). The first
	// successful beat switches to a third of the registry's actual TTL,
	// so a misconfigured interval cannot silently exceed the expiry
	// window.
	Interval time.Duration
	// Logf sinks warnings (nil: log.Printf).
	Logf func(format string, args ...any)
}

// Agent keeps one node registered: it beats on a timer, re-registers
// transparently after a registry restart (every beat is an upsert), and on
// Leave sends the explicit teardown. Registry outages are survivable by
// design — the node keeps serving, clients keep routing to it from their
// last good membership view, and the next successful beat re-joins it.
type Agent struct {
	cfg AgentConfig
	hc  *http.Client

	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	interval atomic.Int64 // nanoseconds, adapted from the registry's TTL

	beats    atomic.Int64
	failures atomic.Int64
}

// NewAgent builds a stopped agent.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultTTL / 3
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	a := &Agent{
		cfg:  cfg,
		hc:   &http.Client{Timeout: 5 * time.Second},
		stop: make(chan struct{}),
	}
	a.interval.Store(int64(cfg.Interval))
	return a
}

// Beats and Failures report the heartbeat tallies (for tests and logs).
func (a *Agent) Beats() int64    { return a.beats.Load() }
func (a *Agent) Failures() int64 { return a.failures.Load() }

// beat sends one registration/heartbeat and adapts the cadence to the
// registry's TTL contract.
func (a *Agent) beat(ctx context.Context) error {
	body, err := json.Marshal(a.cfg.Self)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(a.cfg.Registry, "/")+"/v1/nodes", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: heartbeat: %s", resp.Status)
	}
	var br beatResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return err
	}
	if br.TTLMillis > 0 {
		if iv := time.Duration(br.TTLMillis) * time.Millisecond / 3; iv > 0 {
			a.interval.Store(int64(iv))
		}
	}
	a.beats.Add(1)
	return nil
}

// Register performs the initial registration synchronously, so the caller
// can log a hard failure before taking traffic. A failure here is not
// fatal to Start: the heartbeat loop keeps trying, and the first beat that
// lands registers the node.
func (a *Agent) Register(ctx context.Context) error {
	return a.beat(ctx)
}

// Start arms the heartbeat loop.
func (a *Agent) Start() {
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for {
			iv := time.Duration(a.interval.Load())
			select {
			case <-a.stop:
				return
			case <-time.After(iv):
			}
			ctx, cancel := context.WithTimeout(context.Background(), iv)
			if err := a.beat(ctx); err != nil {
				a.failures.Add(1)
				a.cfg.Logf("cluster: heartbeat to %s failed: %v", a.cfg.Registry, err)
			}
			cancel()
		}
	}()
}

// Stop halts heartbeats without deregistering — the crash path (tests use
// it to simulate SIGKILL): the registry only learns of the death when the
// TTL expires.
func (a *Agent) Stop() {
	a.stopped.Do(func() { close(a.stop) })
	a.wg.Wait()
}

// Leave stops heartbeats and deregisters explicitly, so a gracefully
// draining node falls out of routing immediately instead of after a TTL.
func (a *Agent) Leave(ctx context.Context) error {
	a.Stop()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		strings.TrimRight(a.cfg.Registry, "/")+"/v1/nodes/"+a.cfg.Self.ID, nil)
	if err != nil {
		return err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: leave: %s", resp.Status)
	}
	return nil
}
