// In-process chaos tests for the cluster: three real serve.Servers behind
// real listeners, joined to a real discovery registry, driven through the
// same cluster.Client rcsweep -remote uses. These encode the PR's
// acceptance criteria — a node killed mid-sweep (connections severed, no
// deregistration, TTL expiry) costs no results and no duplicates, a
// partitioned registry degrades to stale-view routing instead of stalling
// the sweep, and a queue-full node sheds load with 429s that the client
// absorbs without a handoff.
package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/cluster"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/serve"
	"reactivenoc/internal/verify/differ"
)

// quiet discards log output from servers, agents, and clients whose
// goroutines may outlive the test body.
func quiet(string, ...any) {}

// chaosNode is one cluster member: a simulation server, its listener, and
// the heartbeat agent that keeps it registered.
type chaosNode struct {
	id    string
	srv   *serve.Server
	hs    *httptest.Server
	agent *cluster.Agent
	dead  bool
}

// kill simulates SIGKILL: heartbeats stop without a Leave, and every open
// connection is severed — the registry only learns of the death by TTL.
func (n *chaosNode) kill() {
	n.dead = true
	n.agent.Stop()
	n.hs.CloseClientConnections()
	n.hs.Close()
}

// startCluster stands up a registry (with the given TTL) plus n joined
// nodes and registers teardown for all of it.
func startCluster(t *testing.T, ttl time.Duration, n int, nodeCfg serve.Config) (*cluster.Registry, *httptest.Server, []*chaosNode) {
	t.Helper()
	reg := cluster.NewRegistry(cluster.RegistryConfig{TTL: ttl, Logf: quiet})
	reg.Start()
	regHS := httptest.NewServer(reg.Handler())
	t.Cleanup(func() {
		reg.Stop()
		regHS.Close()
	})

	nodes := make([]*chaosNode, n)
	for i := range nodes {
		cfg := nodeCfg
		cfg.Logf = quiet
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		hs := httptest.NewServer(srv.Handler())
		id := fmt.Sprintf("node-%d", i)
		agent := cluster.NewAgent(cluster.AgentConfig{
			Registry: regHS.URL,
			Self:     cluster.Node{ID: id, URL: hs.URL},
			Interval: ttl / 3,
			Logf:     quiet,
		})
		if err := agent.Register(context.Background()); err != nil {
			t.Fatal(err)
		}
		agent.Start()
		node := &chaosNode{id: id, srv: srv, hs: hs, agent: agent}
		t.Cleanup(func() {
			agent.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			// A killed node has cancelled in-flight work; its drain error is
			// part of the scenario, not a test failure.
			if err := node.srv.Shutdown(ctx); err != nil && !node.dead {
				t.Errorf("node %s shutdown: %v", node.id, err)
			}
			if !node.dead {
				node.hs.Close()
			}
		})
		nodes[i] = node
	}
	return reg, regHS, nodes
}

// chaosScale keeps the sweep quick but wide enough that cells keep landing
// on a node killed partway through.
func chaosScale() exp.Scale {
	return exp.Scale{MeasureOps: 800, Apps: 3, Seed: 1, Workers: 4}
}

// sweepSpecs reproduces exactly the specs RunSweepCtx submits, so tests can
// reason about the sweep's fingerprint universe.
func sweepSpecs(scale exp.Scale) []chip.Spec {
	var specs []chip.Spec
	for _, v := range config.Variants() {
		for _, w := range scale.Workloads() {
			spec := chip.DefaultSpec(config.Chip16(), v, w)
			spec.MeasureOps = scale.MeasureOps
			spec.Seed = scale.Seed
			specs = append(specs, spec)
		}
	}
	return specs
}

// clusterPolicy plugs the cluster client into the sweep harness the way
// rcsweep -remote does: the nodes own retry, the client owns handoff.
func clusterPolicy(cl *cluster.Client) exp.Policy {
	pol := exp.DefaultPolicy()
	pol.Run = cl.Run
	pol.Retry = false
	return pol
}

// TestClusterKillNodeMidSweep is the headline chaos scenario: a three-node
// cluster loses a node partway through a sweep. The sweep must complete
// with zero failures, every cell bit-identical to a local run, and the
// surviving caches must partition the fingerprint space — pairwise
// disjoint, and (after a second pass re-homes the dead node's keyspace)
// exactly one copy of every fingerprint cluster-wide.
func TestClusterKillNodeMidSweep(t *testing.T) {
	const ttl = 500 * time.Millisecond
	reg, regHS, nodes := startCluster(t, ttl, 3, serve.Config{Workers: 2, QueueDepth: 64, Policy: exp.Policy{Retry: true}})
	scale := chaosScale()

	// The ground truth: the same sweep simulated locally.
	ref := exp.RunSweepCtx(context.Background(), config.Chip16(), config.Variants(), scale, exp.DefaultPolicy())
	if len(ref.Failures) > 0 {
		t.Fatalf("local reference sweep failed: %v", ref.Failures)
	}

	// Kill node-0 once the fleet has demonstrably done work, while most of
	// the sweep is still ahead of it.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			var done int64
			for _, n := range nodes {
				done += n.srv.Metrics().Value("serve/jobs_done")
			}
			if done >= 3 {
				nodes[0].kill()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	cl := cluster.NewClient(regHS.URL, cluster.WithLogf(quiet))
	sweep := exp.RunSweepCtx(context.Background(), config.Chip16(), config.Variants(), scale, clusterPolicy(cl))
	<-killed

	if len(sweep.Failures) > 0 {
		t.Fatalf("cluster sweep reported failures despite handoff: %v", sweep.Failures)
	}
	for _, v := range config.Variants() {
		for _, w := range scale.Workloads() {
			got, want := sweep.Res[v.Name][w.Name], ref.Res[v.Name][w.Name]
			if got == nil || want == nil {
				t.Fatalf("missing cell %s/%s (cluster=%v local=%v)", v.Name, w.Name, got != nil, want != nil)
			}
			if err := differ.Diff(want, got, nil); err != nil {
				t.Fatalf("cell %s/%s diverged from local run: %v", v.Name, w.Name, err)
			}
		}
	}

	// The registry saw the death as a TTL expiry (never a graceful leave)
	// and re-homed the dead node's keyspace. Whether any client dispatch
	// actually hit the corpse is a timing race (the expiry may win), so the
	// guaranteed-handoff scenario lives in TestClusterHandoffToSuccessor.
	waitFor(t, 3*ttl, func() bool { return reg.Metrics().Value("cluster/expiries") >= 1 })
	snap := reg.Metrics()
	if snap.Value("cluster/node_down_transitions") < 1 || snap.Value("cluster/leaves") != 0 {
		t.Fatalf("death misclassified: %+v", snap.Vals)
	}
	if snap.Value("cluster/ring_moves") == 0 {
		t.Fatal("membership churn moved no keyspace")
	}

	// Sharding invariant, part 1: the survivors' caches are disjoint — no
	// fingerprint was simulated (or stored) on two live nodes.
	assertDisjointCaches(t, nodes[1:])

	// Part 2: a second pass re-homes the dead node's keyspace onto the
	// survivors (every cell is now a cache hit or a single re-run), after
	// which the live cluster holds exactly one copy of every fingerprint.
	again := exp.RunSweepCtx(context.Background(), config.Chip16(), config.Variants(), scale, clusterPolicy(cl))
	if len(again.Failures) > 0 {
		t.Fatalf("second pass failed: %v", again.Failures)
	}
	holders := map[string]int{}
	for _, n := range nodes[1:] {
		for _, fp := range n.srv.CachedFingerprints() {
			holders[fp]++
		}
	}
	for _, spec := range sweepSpecs(scale) {
		if got := holders[spec.Fingerprint()]; got != 1 {
			t.Fatalf("fingerprint %.12s held by %d live nodes, want exactly 1", spec.Fingerprint(), got)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition never held")
	}
}

// assertDisjointCaches fails if any fingerprint is cached on two nodes.
func assertDisjointCaches(t *testing.T, nodes []*chaosNode) {
	t.Helper()
	seen := map[string]string{}
	for _, n := range nodes {
		for _, fp := range n.srv.CachedFingerprints() {
			if other, dup := seen[fp]; dup {
				t.Fatalf("fingerprint %.12s cached on both %s and %s — sharding broken", fp, other, n.id)
			}
			seen[fp] = n.id
		}
	}
}

// TestClusterHandoffToSuccessor pins the failure-aware handoff itself,
// with the timing race removed: the TTL is a minute, so the registry never
// notices the death and keeps advertising the corpse. A job owned by the
// dead node MUST fail its first dispatch, be handed off, and complete on
// the deterministic ring successor — and the registry's counters must see
// the client's reports.
func TestClusterHandoffToSuccessor(t *testing.T) {
	reg, regHS, nodes := startCluster(t, time.Minute, 2, serve.Config{Workers: 2, QueueDepth: 64, Policy: exp.Policy{Retry: true}})
	ctx := context.Background()

	m, ok := cluster.Probe(ctx, regHS.URL)
	if !ok || len(m.Nodes) != 2 {
		t.Fatalf("probe: ok=%v %+v", ok, m)
	}
	ring := m.Ring(cluster.DefaultVNodes)

	// A spec whose fingerprint is owned by node-0 — the node we will kill.
	var victim chip.Spec
	found := false
	for _, spec := range sweepSpecs(exp.Scale{MeasureOps: 500, Apps: 4, Seed: 1}) {
		if owner, ok := ring.Owner(spec.Fingerprint()); ok && owner.ID == nodes[0].id {
			victim, found = spec, true
			break
		}
	}
	if !found {
		t.Fatal("no spec hashed to node-0 — enlarge the spec pool")
	}

	nodes[0].kill()

	cl := cluster.NewClient(regHS.URL, cluster.WithLogf(quiet))
	res, err := cl.Run(ctx, victim)
	if err != nil {
		t.Fatalf("run after owner death: %v", err)
	}
	if res.Cycles == 0 {
		t.Fatal("handoff returned an empty result")
	}
	counters := cl.Counters()
	if counters["handoffs"] == 0 || counters["redispatches"] == 0 {
		t.Fatalf("dead owner produced no handoff: %+v", counters)
	}
	snap := reg.Metrics()
	if snap.Value("cluster/handoffs") == 0 || snap.Value("cluster/redispatches") == 0 {
		t.Fatalf("client reports never reached the registry: %+v", snap.Vals)
	}
	// The survivor holds the result; bit-identical to a local simulation.
	fps := nodes[1].srv.CachedFingerprints()
	held := false
	for _, fp := range fps {
		if fp == victim.Fingerprint() {
			held = true
		}
	}
	if !held {
		t.Fatalf("successor does not hold the handed-off fingerprint (%d cached)", len(fps))
	}
	local, err := chip.RunCtx(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := differ.Diff(local, res, nil); err != nil {
		t.Fatalf("handed-off result diverged from local run: %v", err)
	}
}

// TestClusterRegistryPartition: the registry vanishing mid-sweep must not
// stall dispatch — the client routes on its last good membership view (the
// established circuits outlive the setup network).
func TestClusterRegistryPartition(t *testing.T) {
	const ttl = 300 * time.Millisecond
	reg, regHS, nodes := startCluster(t, ttl, 2, serve.Config{Workers: 2, QueueDepth: 64, Policy: exp.Policy{Retry: true}})

	cl := cluster.NewClient(regHS.URL, cluster.WithLogf(quiet))
	ctx := context.Background()
	warm := sweepSpecs(exp.Scale{MeasureOps: 500, Apps: 2, Seed: 1})
	if _, err := cl.Run(ctx, warm[0]); err != nil {
		t.Fatalf("warmup run: %v", err)
	}

	// Partition: the registry goes away entirely. The expiry sweeper is
	// stopped too, so nothing mutates membership behind the test's back.
	reg.Stop()
	regHS.CloseClientConnections()
	regHS.Close()
	time.Sleep(ttl + 50*time.Millisecond) // force the cached view stale

	for _, spec := range warm[1:4] {
		if _, err := cl.Run(ctx, spec); err != nil {
			t.Fatalf("run during registry partition: %v", err)
		}
	}
	if cl.Counters()["stale_views"] == 0 {
		t.Fatal("partition never exercised the stale-view path")
	}
	assertDisjointCaches(t, nodes)
}

// TestClusterBackpressure429: a queue-full node sheds load with 429 +
// Retry-After; the client's jittered backoff absorbs it — every submission
// completes, none is handed off to another node (backpressure is not
// death).
func TestClusterBackpressure429(t *testing.T) {
	_, regHS, nodes := startCluster(t, time.Minute, 1, serve.Config{Workers: 1, QueueDepth: 1, Policy: exp.Policy{Retry: true}})

	cl := cluster.NewClient(regHS.URL, cluster.WithLogf(quiet))
	specs := sweepSpecs(exp.Scale{MeasureOps: 2000, Apps: 2, Seed: 1})[:8]
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec chip.Spec) {
			defer wg.Done()
			_, errs[i] = cl.Run(context.Background(), spec)
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed under backpressure: %v", i, err)
		}
	}
	if nodes[0].srv.Metrics().Value("serve/rejected") == 0 {
		t.Fatal("queue never filled — the scenario did not exercise 429s")
	}
	if cl.Counters()["handoffs"] != 0 {
		t.Fatalf("backpressure was misread as node death: %+v", cl.Counters())
	}
}
