package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{ID: fmt.Sprintf("node-%d", i), URL: fmt.Sprintf("http://10.0.0.%d:8134", i)}
	}
	return out
}

// TestRingDeterministic: two rings built from the same membership — in any
// order — route every key identically. This is the property the whole
// cluster leans on: client and nodes never exchange routing tables, they
// just agree by construction.
func TestRingDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(nodes, 0)
	reversed := make([]Node, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	b := NewRing(reversed, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		na, _ := a.Owner(key)
		nb, _ := b.Owner(key)
		if na.ID != nb.ID {
			t.Fatalf("key %q: owner %s vs %s across identical memberships", key, na.ID, nb.ID)
		}
	}
}

// TestRingBalance: with vnodes, no node owns a wildly disproportionate
// keyspace share (each of 4 nodes should see ~25% ± a loose factor).
func TestRingBalance(t *testing.T) {
	r := NewRing(ringNodes(4), 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		n, ok := r.Owner(fmt.Sprintf("fp-%d", i))
		if !ok {
			t.Fatal("owner lookup failed")
		}
		counts[n.ID]++
	}
	for id, c := range counts {
		if c < keys/4/2 || c > keys/4*2 {
			t.Fatalf("node %s owns %d of %d keys — ring badly unbalanced: %v", id, c, keys, counts)
		}
	}
}

// TestRingMinimalMovement: removing one node must not move any key whose
// owner survives — only the dead node's keyspace re-homes.
func TestRingMinimalMovement(t *testing.T) {
	nodes := ringNodes(5)
	before := NewRing(nodes, 0)
	after := NewRing(nodes[:4], 0) // node-4 removed
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("fp-%d", i)
		ob, _ := before.Owner(key)
		oa, _ := after.Owner(key)
		if ob.ID == "node-4" {
			moved++
			if oa.ID == "node-4" {
				t.Fatal("key still owned by a removed node")
			}
			continue
		}
		if ob.ID != oa.ID {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, ob.ID, oa.ID)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestRingSuccessors: the failover order starts at the owner, never
// repeats a node, and is itself deterministic — every client re-dispatches
// a dead node's key to the same survivor.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(ringNodes(4), 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fp-%d", i)
		owner, _ := r.Owner(key)
		succ := r.Successors(key, 4)
		if len(succ) != 4 {
			t.Fatalf("Successors returned %d nodes, want 4", len(succ))
		}
		if succ[0].ID != owner.ID {
			t.Fatalf("failover order does not start at the owner: %s vs %s", succ[0].ID, owner.ID)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n.ID] {
				t.Fatalf("failover order repeats %s", n.ID)
			}
			seen[n.ID] = true
		}
	}
	// Clamped when n exceeds membership.
	if got := r.Successors("k", 99); len(got) != 4 {
		t.Fatalf("Successors(99) = %d nodes", len(got))
	}
	// Empty ring: no owner, no successors.
	empty := NewRing(nil, 0)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := empty.Successors("k", 3); got != nil {
		t.Fatalf("empty ring returned successors: %v", got)
	}
}

// TestMovedShare: identical rings score zero churn; removing a node scores
// roughly its keyspace share; a full replacement scores everything.
func TestMovedShare(t *testing.T) {
	nodes := ringNodes(4)
	a := NewRing(nodes, 0)
	if got := MovedShare(a, NewRing(nodes, 0)); got != 0 {
		t.Fatalf("identical rings moved %d probes", got)
	}
	drop := MovedShare(a, NewRing(nodes[:3], 0))
	if drop == 0 || drop > movedProbes/2 {
		t.Fatalf("dropping 1 of 4 nodes moved %d of %d probes", drop, movedProbes)
	}
	other := ringNodes(8)[4:]
	if got := MovedShare(a, NewRing(other, 0)); got != movedProbes {
		t.Fatalf("total replacement moved %d of %d probes", got, movedProbes)
	}
}
