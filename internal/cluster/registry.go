package cluster

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reactivenoc/internal/sim"
)

// DefaultTTL is how long a node survives without a heartbeat before the
// registry expires it. Three one-second heartbeats fit inside it, so a
// single dropped beat never declares a node dead.
const DefaultTTL = 3 * time.Second

// RegistryConfig sizes the discovery service.
type RegistryConfig struct {
	// TTL is the heartbeat expiry window (<= 0: DefaultTTL).
	TTL time.Duration
	// VNodes is the ring's virtual-node count (<= 0: DefaultVNodes).
	VNodes int
	// Logf sinks warnings (nil: log.Printf).
	Logf func(format string, args ...any)

	// now is the test seam for TTL expiry.
	now func() time.Time
}

// member is one registered node.
type member struct {
	Node
	joined   time.Time
	lastBeat time.Time
}

// Membership is the wire representation of the live node set. Epoch bumps
// on every join, leave, and expiry, so clients can cheaply detect change.
type Membership struct {
	Epoch     int64  `json:"epoch"`
	TTLMillis int64  `json:"ttl_ms"`
	Nodes     []Node `json:"nodes"`
}

// Ring builds the membership's consistent-hash ring; every process that
// sees the same epoch routes fingerprints identically.
func (m Membership) Ring(vnodes int) *Ring { return NewRing(m.Nodes, vnodes) }

// beatResponse acknowledges a registration/heartbeat — the "ack" of the
// node's setup — carrying the expiry contract back to the agent.
type beatResponse struct {
	Epoch     int64 `json:"epoch"`
	TTLMillis int64 `json:"ttl_ms"`
	// Joined reports whether this beat registered a new node (vs
	// refreshing a live one).
	Joined bool `json:"joined"`
}

// clusterEvent is a client- or node-reported incident the registry counts:
// "handoff" when a client abandons a dead node mid-job, "redispatch" when
// the job lands on a surviving node.
type clusterEvent struct {
	Type        string `json:"type"`
	From        string `json:"from,omitempty"`
	To          string `json:"to,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Registry is the discovery service: node registration with TTL expiry,
// membership snapshots with epochs, and cluster-level counters.
type Registry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	members map[string]*member
	ring    *Ring

	epoch   atomic.Int64
	startAt time.Time
	reg     *sim.Registry
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup

	joins        atomic.Int64
	leaves       atomic.Int64
	expiries     atomic.Int64
	heartbeats   atomic.Int64
	handoffs     atomic.Int64
	redispatches atomic.Int64
	ringMoves    atomic.Int64
}

// NewRegistry builds a stopped registry; Start arms the expiry sweeper.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	g := &Registry{
		cfg:     cfg,
		members: map[string]*member{},
		ring:    NewRing(nil, cfg.VNodes),
		startAt: cfg.now(),
		stop:    make(chan struct{}),
	}
	g.reg = g.describeMetrics()
	return g
}

// describeMetrics registers the cluster/ scope. Everything reads through
// atomics or takes the membership lock briefly, so scrapes race cleanly
// with heartbeats.
func (g *Registry) describeMetrics() *sim.Registry {
	reg := sim.NewRegistry()
	reg.Gauge("cluster/nodes", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(len(g.members))
	})
	reg.Gauge("cluster/epoch", g.epoch.Load)
	reg.Gauge("cluster/node_up_transitions", g.joins.Load)
	reg.Gauge("cluster/node_down_transitions", func() int64 { return g.leaves.Load() + g.expiries.Load() })
	reg.Gauge("cluster/leaves", g.leaves.Load)
	reg.Gauge("cluster/expiries", g.expiries.Load)
	reg.Gauge("cluster/heartbeats", g.heartbeats.Load)
	reg.Gauge("cluster/handoffs", g.handoffs.Load)
	reg.Gauge("cluster/redispatches", g.redispatches.Load)
	reg.Gauge("cluster/ring_moves", g.ringMoves.Load)
	reg.Gauge("cluster/uptime_seconds", func() int64 { return int64(g.cfg.now().Sub(g.startAt).Seconds()) })
	return reg
}

// Metrics snapshots the cluster/ scope.
func (g *Registry) Metrics() sim.Snapshot {
	return g.reg.Snapshot(int64(g.cfg.now().Sub(g.startAt).Seconds()))
}

// Start arms the background expiry sweeper (TTL/2 cadence, so a dead node
// is expelled between one and one-and-a-half TTLs after its last beat).
func (g *Registry) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.TTL / 2)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.expire()
			}
		}
	}()
}

// Stop halts the sweeper. Registered nodes are left as-is.
func (g *Registry) Stop() {
	g.stopped.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// rebuildLocked recomputes the ring and counts keyspace churn. Callers
// hold g.mu and have already mutated g.members.
func (g *Registry) rebuildLocked() {
	nodes := make([]Node, 0, len(g.members))
	for _, m := range g.members {
		nodes = append(nodes, m.Node)
	}
	next := NewRing(nodes, g.cfg.VNodes)
	g.ringMoves.Add(int64(MovedShare(g.ring, next)))
	g.ring = next
	g.epoch.Add(1)
}

// Beat registers or refreshes a node. A new ID (or a known ID advertising
// a new URL — a node restarted on a different port) joins the ring; a live
// one just pushes its expiry out.
func (g *Registry) Beat(n Node) (beatResponse, error) {
	if n.ID == "" || n.URL == "" {
		return beatResponse{}, fmt.Errorf("cluster: node id and url are required")
	}
	now := g.cfg.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.heartbeats.Add(1)
	joined := false
	m, ok := g.members[n.ID]
	switch {
	case !ok:
		g.members[n.ID] = &member{Node: n, joined: now, lastBeat: now}
		g.joins.Add(1)
		g.rebuildLocked()
		joined = true
		g.cfg.Logf("cluster: node %s joined at %s (%d live)", n.ID, n.URL, len(g.members))
	case m.URL != n.URL:
		m.URL = n.URL
		m.lastBeat = now
		g.rebuildLocked()
		g.cfg.Logf("cluster: node %s moved to %s", n.ID, n.URL)
	default:
		m.lastBeat = now
	}
	return beatResponse{Epoch: g.epoch.Load(), TTLMillis: g.cfg.TTL.Milliseconds(), Joined: joined}, nil
}

// Leave deregisters a node — the graceful teardown, vs TTL expiry's
// speculative one. Unknown IDs are a no-op.
func (g *Registry) Leave(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[id]; !ok {
		return
	}
	delete(g.members, id)
	g.leaves.Add(1)
	g.rebuildLocked()
	g.cfg.Logf("cluster: node %s left (%d live)", id, len(g.members))
}

// expire expels every member whose last beat is older than the TTL.
func (g *Registry) expire() {
	now := g.cfg.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	changed := false
	for id, m := range g.members {
		if now.Sub(m.lastBeat) > g.cfg.TTL {
			delete(g.members, id)
			g.expiries.Add(1)
			changed = true
			g.cfg.Logf("cluster: node %s expired (last beat %v ago)", id, now.Sub(m.lastBeat).Round(time.Millisecond))
		}
	}
	if changed {
		g.rebuildLocked()
	}
}

// Membership snapshots the live node set. Expiry runs first, so a reader
// polling faster than the sweeper still never sees a node past its TTL.
func (g *Registry) Membership() Membership {
	g.expire()
	g.mu.Lock()
	defer g.mu.Unlock()
	nodes := make([]Node, 0, len(g.members))
	for _, m := range g.members {
		nodes = append(nodes, m.Node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return Membership{Epoch: g.epoch.Load(), TTLMillis: g.cfg.TTL.Milliseconds(), Nodes: nodes}
}

// Record counts a reported cluster event.
func (g *Registry) Record(ev clusterEvent) {
	switch ev.Type {
	case "handoff":
		g.handoffs.Add(1)
	case "redispatch":
		g.redispatches.Add(1)
	}
}

// Routes mounts the registry's API onto mux — the embeddable surface
// (rcserved -registry shares its mux between serving and discovery).
//
//	POST   /v1/nodes             register / heartbeat {id, url}
//	GET    /v1/nodes             membership snapshot (the cluster probe)
//	DELETE /v1/nodes/{id}        graceful leave
//	POST   /v1/cluster/events    handoff / re-dispatch reports
func (g *Registry) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		var n Node
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&n); err != nil {
			httpError(w, http.StatusBadRequest, "bad node: "+err.Error())
			return
		}
		resp, err := g.Beat(n)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSONResp(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/nodes", func(w http.ResponseWriter, _ *http.Request) {
		writeJSONResp(w, http.StatusOK, g.Membership())
	})
	mux.HandleFunc("DELETE /v1/nodes/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.Leave(r.PathValue("id"))
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/cluster/events", func(w http.ResponseWriter, r *http.Request) {
		var ev clusterEvent
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&ev); err != nil {
			httpError(w, http.StatusBadRequest, "bad event: "+err.Error())
			return
		}
		g.Record(ev)
		w.WriteHeader(http.StatusNoContent)
	})
}

// Handler returns a standalone HTTP surface: the Routes API plus /metrics
// and /healthz, for running the registry as its own small process.
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	g.Routes(mux)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		WriteMetrics(w, g.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSONResp(w, http.StatusOK, map[string]string{"status": "ok", "role": "registry"})
	})
	return mux
}

// WriteMetrics renders snapshots as sorted "name value" lines — the same
// plain-text contract rcserved's /metrics uses, so chaos tests scrape the
// registry and the nodes with one parser.
func WriteMetrics(w http.ResponseWriter, snaps ...sim.Snapshot) {
	keys := []string{}
	vals := map[string]int64{}
	for _, s := range snaps {
		for _, k := range s.Keys() {
			if _, dup := vals[k]; !dup {
				keys = append(keys, k)
			}
			vals[k] = s.Vals[k]
		}
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, vals[k])
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSONResp(w, code, map[string]string{"error": msg})
}

func writeJSONResp(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
