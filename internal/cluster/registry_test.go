package cluster

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is the registry's test time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testRegistry(ttl time.Duration) (*Registry, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	g := NewRegistry(RegistryConfig{TTL: ttl, Logf: func(string, ...any) {}, now: clk.now})
	return g, clk
}

// TestRegistryLifecycle: join bumps the epoch and counters, heartbeats
// keep a node alive past its TTL, a missed TTL expires it, and an explicit
// leave is counted separately from an expiry.
func TestRegistryLifecycle(t *testing.T) {
	g, clk := testRegistry(3 * time.Second)

	br, err := g.Beat(Node{ID: "n1", URL: "http://a:1"})
	if err != nil || !br.Joined {
		t.Fatalf("first beat: %+v, %v", br, err)
	}
	if br, _ = g.Beat(Node{ID: "n1", URL: "http://a:1"}); br.Joined {
		t.Fatal("refresh beat reported a join")
	}
	if _, err := g.Beat(Node{ID: "", URL: "x"}); err == nil {
		t.Fatal("anonymous node accepted")
	}
	g.Beat(Node{ID: "n2", URL: "http://b:1"})

	m := g.Membership()
	if len(m.Nodes) != 2 || m.Nodes[0].ID != "n1" || m.Nodes[1].ID != "n2" {
		t.Fatalf("membership: %+v", m.Nodes)
	}
	epoch := m.Epoch

	// Heartbeats inside the TTL keep n1 alive across any span.
	for i := 0; i < 5; i++ {
		clk.advance(2 * time.Second)
		g.Beat(Node{ID: "n1", URL: "http://a:1"})
	}
	g.expire()
	m = g.Membership()
	if len(m.Nodes) != 1 || m.Nodes[0].ID != "n1" {
		t.Fatalf("n2 (silent for 10s) should have expired, n1 (beating) survived: %+v", m.Nodes)
	}
	if m.Epoch == epoch {
		t.Fatal("expiry did not bump the epoch")
	}
	if got := g.Metrics().Value("cluster/expiries"); got != 1 {
		t.Fatalf("cluster/expiries = %d, want 1", got)
	}
	if got := g.Metrics().Value("cluster/node_down_transitions"); got != 1 {
		t.Fatalf("cluster/node_down_transitions = %d, want 1", got)
	}

	g.Leave("n1")
	g.Leave("n1") // unknown id: no-op, no double count
	snap := g.Metrics()
	if snap.Value("cluster/leaves") != 1 || snap.Value("cluster/nodes") != 0 {
		t.Fatalf("leave accounting wrong: leaves=%d nodes=%d",
			snap.Value("cluster/leaves"), snap.Value("cluster/nodes"))
	}
	if snap.Value("cluster/node_down_transitions") != 2 {
		t.Fatalf("down transitions = %d, want expiry+leave = 2", snap.Value("cluster/node_down_transitions"))
	}
	if snap.Value("cluster/node_up_transitions") != 2 {
		t.Fatalf("up transitions = %d, want 2 joins", snap.Value("cluster/node_up_transitions"))
	}
	if snap.Value("cluster/ring_moves") == 0 {
		t.Fatal("membership churn recorded no ring moves")
	}
}

// TestRegistryRelocatedNode: a node that re-registers from a new URL (a
// restart on another port) updates routing and bumps the epoch.
func TestRegistryRelocatedNode(t *testing.T) {
	g, _ := testRegistry(3 * time.Second)
	g.Beat(Node{ID: "n1", URL: "http://a:1"})
	before := g.Membership().Epoch
	g.Beat(Node{ID: "n1", URL: "http://a:2"})
	m := g.Membership()
	if m.Nodes[0].URL != "http://a:2" {
		t.Fatalf("URL not updated: %+v", m.Nodes)
	}
	if m.Epoch == before {
		t.Fatal("relocation did not bump the epoch")
	}
}

// TestRegistryHTTP: the wire surface — register, snapshot, report events,
// leave, scrape — all through a real listener.
func TestRegistryHTTP(t *testing.T) {
	g, _ := testRegistry(time.Minute)
	hs := httptest.NewServer(g.Handler())
	defer hs.Close()
	ctx := context.Background()

	a := NewAgent(AgentConfig{Registry: hs.URL, Self: Node{ID: "n1", URL: "http://a:1"}, Logf: func(string, ...any) {}})
	if err := a.Register(ctx); err != nil {
		t.Fatalf("register: %v", err)
	}

	m, ok := Probe(ctx, hs.URL)
	if !ok || len(m.Nodes) != 1 || m.Nodes[0].ID != "n1" {
		t.Fatalf("probe: ok=%v %+v", ok, m)
	}
	if m.TTLMillis != time.Minute.Milliseconds() {
		t.Fatalf("ttl_ms = %d", m.TTLMillis)
	}

	// Event reports land in the counters.
	c := NewClient(hs.URL, WithLogf(func(string, ...any) {}))
	c.report("handoff", "n1", "", "fp")
	c.report("redispatch", "n1", "n2", "fp")
	snap := g.Metrics()
	if snap.Value("cluster/handoffs") != 1 || snap.Value("cluster/redispatches") != 1 {
		t.Fatalf("event counters: %+v", snap.Vals)
	}

	if err := a.Leave(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if m := g.Membership(); len(m.Nodes) != 0 {
		t.Fatalf("node still registered after leave: %+v", m.Nodes)
	}

	// /metrics renders the plain-text contract.
	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<14)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "cluster/handoffs 1") || !strings.Contains(body, "cluster/nodes 0") {
		t.Fatalf("metrics body:\n%s", body)
	}

	// A non-registry endpoint does not probe as a cluster.
	if _, ok := Probe(ctx, hs.URL+"/metrics"); ok {
		t.Fatal("probe accepted a non-discovery endpoint")
	}
}

// TestAgentHeartbeatsAndCrash: a started agent keeps its node alive across
// several real TTLs; stopping it without Leave (the crash path) lets the
// TTL expire the node.
func TestAgentHeartbeatsAndCrash(t *testing.T) {
	g := NewRegistry(RegistryConfig{TTL: 200 * time.Millisecond, Logf: func(string, ...any) {}})
	g.Start()
	defer g.Stop()
	hs := httptest.NewServer(g.Handler())
	defer hs.Close()

	a := NewAgent(AgentConfig{
		Registry: hs.URL,
		Self:     Node{ID: "n1", URL: "http://a:1"},
		Interval: 50 * time.Millisecond,
		Logf:     func(string, ...any) {},
	})
	if err := a.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Start()

	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if m := g.Membership(); len(m.Nodes) != 1 {
			t.Fatalf("heartbeating node expired: %+v", m.Nodes)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if a.Beats() < 5 {
		t.Fatalf("agent sent only %d beats", a.Beats())
	}

	// Crash: heartbeats stop, no deregistration — the registry must learn
	// of the death by TTL, the speculative teardown.
	a.Stop()
	expired := func() bool { return len(g.Membership().Nodes) == 0 }
	deadline = time.Now().Add(2 * time.Second)
	for !expired() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !expired() {
		t.Fatal("crashed node never expired")
	}
	if g.Metrics().Value("cluster/expiries") != 1 {
		t.Fatal("crash was not counted as an expiry")
	}
}
