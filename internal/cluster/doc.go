// Package cluster turns a fleet of rcserved nodes into one service: a
// lightweight discovery registry with heartbeats and TTL expiry, a
// consistent-hash ring that partitions spec fingerprints (and with them the
// sharded result cache) across the live nodes, and a failure-aware client
// that fans sweep cells out to the owning node and re-dispatches to the
// ring successor when a node dies mid-sweep.
//
// The design deliberately mirrors the paper's circuit-construction
// protocol one level up. A node registration is a circuit setup: it is
// acknowledged (the heartbeat response), kept alive by traffic (further
// heartbeats), and torn down either explicitly (DELETE, the undo token) or
// by timeout (TTL expiry, the speculative teardown). Job dispatch is
// at-least-once exactly the way a re-tried circuit setup is: a re-dispatch
// after a node failure can never double-count, because every node
// deduplicates by spec fingerprint — the serving-layer analogue of the
// setup/ack/undo tokens that keep a re-built circuit from double-reserving
// a link.
//
// Roles:
//
//   - Registry: the discovery service. Usually embedded in one rcserved
//     process (-registry); any node can host it.
//   - Agent: runs inside each rcserved node; registers and heartbeats.
//   - Client: used by rcsweep -remote when pointed at a registry; routes
//     each Spec.Fingerprint() through the ring, absorbs per-node
//     backpressure, and hands jobs off to surviving nodes on failure.
package cluster
