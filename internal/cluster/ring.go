package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 64 points per
// node keeps the keyspace share within a few percent of uniform for small
// fleets while the ring stays tiny (a 16-node cluster is 1024 points).
const DefaultVNodes = 64

// Node is one ring member: a stable identity plus the base URL clients
// reach it at.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a node set. Ownership of
// a key is the first virtual node clockwise from the key's hash, so adding
// or removing one node only moves the keyspace adjacent to its points —
// every other fingerprint keeps its cache shard.
type Ring struct {
	nodes  []Node
	points []ringPoint
}

// hash64 maps a label onto the ring circle. SHA-256 (truncated) rather
// than FNV: ownership must agree across every process in the cluster and
// stay uniform even for adversarially similar node ids.
func hash64(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over nodes with vnodes virtual nodes each
// (<= 0: DefaultVNodes). The node list is sorted by ID first, so two
// processes holding the same membership build bit-identical rings.
func NewRing(nodes []Node, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	r := &Ring{nodes: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for ni, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(vnodeLabel(n.ID, v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Tie-break on node id so equal hashes (astronomically rare but
		// possible) still order identically everywhere.
		return r.nodes[a.node].ID < r.nodes[b.node].ID
	})
	return r
}

// vnodeLabel names one virtual node deterministically.
func vnodeLabel(id string, v int) string {
	// id#v with v in decimal; fmt.Sprintf avoided on the (cheap) build
	// path for no good reason other than keeping this allocation-light.
	buf := make([]byte, 0, len(id)+8)
	buf = append(buf, id...)
	buf = append(buf, '#')
	if v == 0 {
		buf = append(buf, '0')
	} else {
		var digits [8]byte
		i := len(digits)
		for v > 0 {
			i--
			digits[i] = byte('0' + v%10)
			v /= 10
		}
		buf = append(buf, digits[i:]...)
	}
	return string(buf)
}

// Len is the physical-node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members sorted by ID.
func (r *Ring) Nodes() []Node { return r.nodes }

// successorIndex finds the first ring point at or after h, wrapping.
func (r *Ring) successorIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node owning key — the first virtual node clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (Node, bool) {
	if len(r.points) == 0 {
		return Node{}, false
	}
	return r.nodes[r.points[r.successorIndex(hash64(key))].node], true
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner. This is the deterministic failover order: when the owner
// dies mid-sweep, every client independently re-dispatches the key to the
// same next node, so the re-built cache entry lands in exactly one place.
func (r *Ring) Successors(key string, n int) []Node {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]Node, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.successorIndex(hash64(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// movedProbes is the fixed probe-key count MovedShare samples; 256 keys
// resolve ownership movement to better than half a percent of keyspace.
const movedProbes = 256

// MovedShare counts how many of a fixed set of probe keys changed owner
// between two rings — the registry's measure of keyspace churn per
// membership change (the cluster/ring_moves counter). Identical rings
// score 0; replacing every node scores movedProbes.
func MovedShare(old, new *Ring) int {
	if old == nil || new == nil {
		return 0
	}
	moved := 0
	for i := 0; i < movedProbes; i++ {
		a, aok := old.Owner(probeKey(i))
		b, bok := new.Owner(probeKey(i))
		if aok != bok || (aok && a.ID != b.ID) {
			moved++
		}
	}
	return moved
}

// probeKey names the i'th fixed probe key.
func probeKey(i int) string { return vnodeLabel("ring-probe", i) }
