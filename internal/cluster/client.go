package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/serve"
)

// Client fans spec submissions out across a cluster. Each fingerprint is
// routed to its ring owner, so the fleet's result caches partition instead
// of duplicating; when the owner dies mid-job the client re-dispatches to
// the deterministic ring successor. Run has the same shape as chip.RunCtx
// and serve.Client.Run, so it plugs straight into exp.Policy.Run.
//
// Safe for concurrent use: a sweep's worker pool shares one Client, one
// membership view, and one per-node connection set.
type Client struct {
	registry string
	hc       *http.Client
	vnodes   int
	logf     func(format string, args ...any)

	mu      sync.Mutex
	view    Membership
	ring    *Ring
	fetched time.Time
	nodes   map[string]*serve.Client // keyed by node URL
	suspect map[string]time.Time     // node ID -> when the client last saw it fail

	refreshes    atomic.Int64
	staleViews   atomic.Int64
	handoffs     atomic.Int64
	redispatches atomic.Int64
}

// ClientOption tweaks a cluster client.
type ClientOption func(*Client)

// WithLogf sinks the client's warnings.
func WithLogf(logf func(format string, args ...any)) ClientOption {
	return func(c *Client) { c.logf = logf }
}

// WithVNodes overrides the ring's virtual-node count (tests).
func WithVNodes(v int) ClientOption {
	return func(c *Client) { c.vnodes = v }
}

// NewClient targets a discovery registry base URL.
func NewClient(registry string, opts ...ClientOption) *Client {
	c := &Client{
		registry: strings.TrimRight(registry, "/"),
		hc:       &http.Client{},
		vnodes:   DefaultVNodes,
		logf:     log.Printf,
		nodes:    map[string]*serve.Client{},
		suspect:  map[string]time.Time{},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Counters reports the client-side tallies, mirroring the names the
// registry publishes so chaos tests can cross-check both sides.
func (c *Client) Counters() map[string]int64 {
	return map[string]int64{
		"refreshes":    c.refreshes.Load(),
		"stale_views":  c.staleViews.Load(),
		"handoffs":     c.handoffs.Load(),
		"redispatches": c.redispatches.Load(),
	}
}

// fetchMembership pulls a fresh membership snapshot from the registry.
func (c *Client) fetchMembership(ctx context.Context) (Membership, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.registry+"/v1/nodes", nil)
	if err != nil {
		return Membership{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Membership{}, fmt.Errorf("cluster: GET /v1/nodes: %s", resp.Status)
	}
	var m Membership
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Membership{}, err
	}
	c.refreshes.Add(1)
	return m, nil
}

// viewTTL is how long a membership view is trusted without a refresh.
func (c *Client) viewTTL() time.Duration {
	if c.view.TTLMillis > 0 {
		return time.Duration(c.view.TTLMillis) * time.Millisecond
	}
	return DefaultTTL
}

// currentRing returns a routing view, refreshing from the registry when
// the cached one is stale (or force is set, after a dispatch failure). A
// partitioned or empty registry degrades, never blocks: the last non-empty
// membership keeps routing — nodes outlive a registry outage by design,
// exactly like an established circuit outliving its setup network.
func (c *Client) currentRing(ctx context.Context, force bool) (*Ring, error) {
	c.mu.Lock()
	if c.ring != nil && !force && time.Since(c.fetched) < c.viewTTL() {
		r := c.ring
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()

	m, err := c.fetchMembership(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err != nil && c.ring != nil && c.ring.Len() > 0:
		c.staleViews.Add(1)
		c.logf("cluster: registry unreachable (%v); routing on stale membership epoch %d", err, c.view.Epoch)
		return c.ring, nil
	case err != nil:
		return nil, fmt.Errorf("cluster: no membership available: %w", err)
	case len(m.Nodes) == 0 && c.ring != nil && c.ring.Len() > 0:
		// A registry that just restarted (or sat through a partition)
		// reports an empty fleet until the nodes beat again. Trust the
		// nodes we knew over a freshly amnesiac registry.
		c.staleViews.Add(1)
		c.logf("cluster: registry reports no nodes; keeping stale membership epoch %d", c.view.Epoch)
		return c.ring, nil
	}
	if c.ring == nil || m.Epoch != c.view.Epoch {
		c.ring = m.Ring(c.vnodes)
	}
	c.view = m
	c.fetched = time.Now()
	return c.ring, nil
}

// nodeClient returns (caching) the serve client for a node URL.
func (c *Client) nodeClient(url string) *serve.Client {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.nodes[url]
	if !ok {
		cl = serve.NewClient(url)
		c.nodes[url] = cl
	}
	return cl
}

// suspectNode marks a node failed so the next dispatch skips it until the
// registry has had a TTL to expire it (or it recovers).
func (c *Client) suspectNode(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.suspect[id] = time.Now()
}

// isSuspect reports whether a node is inside its local suspicion window.
func (c *Client) isSuspect(id string, ttl time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	at, ok := c.suspect[id]
	if !ok {
		return false
	}
	if time.Since(at) > ttl {
		delete(c.suspect, id)
		return false
	}
	return true
}

// report tells the registry about a handoff or re-dispatch so the
// cluster/ counters see what the clients saw. Fire-and-forget: a
// partitioned registry must not slow the sweep down.
func (c *Client) report(typ, from, to, fp string) {
	body, err := json.Marshal(clusterEvent{Type: typ, From: from, To: to, Fingerprint: fp})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.registry+"/v1/cluster/events", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := c.hc.Do(req); err == nil {
		resp.Body.Close()
	}
}

// permanent reports whether a dispatch error is the job's fault (a
// structured simulation failure, or a request the server rejected) rather
// than the node's — only node-level failures justify a handoff.
func permanent(err error) bool {
	if chip.AsRunError(err) != nil {
		return true
	}
	var se *serve.StatusError
	return errors.As(err, &se) && se.Code >= 400 && se.Code < 500
}

// backoff schedule for re-dispatch: bounded exponential with full jitter,
// so N sweep workers that lost the same node don't stampede its successor.
const (
	redispatchBase = 100 * time.Millisecond
	redispatchMax  = 2 * time.Second
)

// jittered picks a sleep in [d/2, 3d/2).
func jittered(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Run routes one spec to its ring owner and blocks for the results. On a
// node-level failure it suspects the node, refreshes membership, and
// re-dispatches to the next surviving successor with jittered exponential
// backoff — at-least-once delivery whose double-count protection is the
// target node's fingerprint dedup, the same undo-token discipline the
// simulated NIs use. Per-node backpressure (429/503) is absorbed inside
// serve.Client.Run and never triggers a handoff.
func (c *Client) Run(ctx context.Context, spec chip.Spec) (*chip.Results, error) {
	fp := spec.Fingerprint()
	delay := redispatchBase
	var lastErr error
	var lastNode string
	for attempt := 0; ; attempt++ {
		ring, err := c.currentRing(ctx, attempt > 0)
		if err != nil {
			return nil, err
		}
		if ring.Len() == 0 {
			return nil, fmt.Errorf("cluster: no live nodes registered at %s", c.registry)
		}
		// maxAttempts gives every node two shots plus slack for membership
		// to catch up with reality.
		maxAttempts := 2*ring.Len() + 3

		// First non-suspect node in deterministic failover order; if the
		// whole ring is suspected, take the owner anyway — suspicion is a
		// hint, not a verdict.
		order := ring.Successors(fp, ring.Len())
		target := order[0]
		for _, n := range order {
			if !c.isSuspect(n.ID, c.viewTTL()) {
				target = n
				break
			}
		}

		res, err := c.nodeClient(target.URL).Run(ctx, spec)
		if err == nil {
			if attempt > 0 {
				c.redispatches.Add(1)
				c.report("redispatch", lastNode, target.ID, fp)
				c.logf("cluster: job %.12s re-dispatched %s -> %s (attempt %d)", fp, lastNode, target.ID, attempt+1)
			}
			return res, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		if permanent(err) {
			return nil, err
		}

		// Node-level failure: hand the job off.
		lastErr = err
		lastNode = target.ID
		c.suspectNode(target.ID)
		c.handoffs.Add(1)
		c.report("handoff", target.ID, "", fp)
		c.logf("cluster: node %s failed job %.12s (%v); handing off", target.ID, fp, err)
		if attempt+1 >= maxAttempts {
			return nil, fmt.Errorf("cluster: job %.12s failed on every candidate after %d attempts: %w", fp, attempt+1, lastErr)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(jittered(delay)):
		}
		if delay *= 2; delay > redispatchMax {
			delay = redispatchMax
		}
	}
}

// Probe asks base for a membership snapshot. ok reports whether base
// speaks the discovery protocol — the seam rcsweep -remote uses to accept
// either a single rcserved or a cluster endpoint transparently.
func Probe(ctx context.Context, base string) (Membership, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/v1/nodes", nil)
	if err != nil {
		return Membership{}, false
	}
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Do(req)
	if err != nil {
		return Membership{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Membership{}, false
	}
	var m Membership
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Membership{}, false
	}
	return m, true
}

// RunFunc resolves a -remote endpoint into an executor: a cluster Client
// when base hosts the discovery protocol, a plain serve.Client otherwise.
// The returned description is for the caller's logs.
func RunFunc(ctx context.Context, base string, logf func(format string, args ...any)) (func(context.Context, chip.Spec) (*chip.Results, error), string) {
	if m, ok := Probe(ctx, base); ok {
		cl := NewClient(base)
		if logf != nil {
			cl.logf = logf
		}
		return cl.Run, fmt.Sprintf("cluster of %d nodes (epoch %d)", len(m.Nodes), m.Epoch)
	}
	return serve.NewClient(base).Run, "single node"
}
