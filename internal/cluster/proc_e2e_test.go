// Process-level chaos: real rcserved binaries, real sockets, real SIGKILL.
// The in-process suite (chaos_e2e_test.go) covers the protocol; this one
// proves the packaging — flag wiring, advertise derivation, the embedded
// registry, and that a kill -9'd process (no drain, no journal flush, no
// TCP FIN beyond the kernel reset) costs a cluster sweep nothing.
//
// Skipped under -short: it builds cmd/rcserved and spawns four processes.
package cluster_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reactivenoc/internal/cluster"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/serve"
	"reactivenoc/internal/verify/differ"
)

// buildRCServed compiles the server binary into dir.
func buildRCServed(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "rcserved")
	cmd := exec.Command("go", "build", "-o", bin, "reactivenoc/cmd/rcserved")
	cmd.Dir = "../.." // repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build rcserved: %v\n%s", err, out)
	}
	return bin
}

// freePort grabs an ephemeral port. The tiny close-to-bind race is
// acceptable in tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

// proc is one spawned rcserved with its log file and base URL.
type proc struct {
	cmd *exec.Cmd
	url string
	log string
}

// spawn starts rcserved with args, logging to dir/name.log.
func spawn(t *testing.T, bin, dir, name string, args ...string) *proc {
	t.Helper()
	logPath := filepath.Join(dir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn %s: %v", name, err)
	}
	p := &proc{cmd: cmd, log: logPath}
	t.Cleanup(func() {
		logFile.Close()
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return p
}

// sigkill delivers the real thing and reaps the corpse.
func (p *proc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = p.cmd.Process.Wait()
}

// dumpLog attaches a process log to the test output on failure.
func (p *proc) dumpLog(t *testing.T) {
	if b, err := os.ReadFile(p.log); err == nil {
		t.Logf("---- %s ----\n%s", p.log, b)
	}
}

// scrapeCache reads a node's /v1/cache plain-text fingerprint list.
func scrapeCache(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/cache")
	if err != nil {
		t.Fatalf("GET /v1/cache: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fps []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			fps = append(fps, line)
		}
	}
	return fps
}

// TestClusterProcessSIGKILL: a four-process cluster (registry + three
// nodes) loses a node to kill -9 mid-sweep. The sweep completes with every
// cell bit-identical to a local run, and the surviving processes' caches
// partition the fingerprint space.
func TestClusterProcessSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped under -short")
	}
	dir := t.TempDir()
	bin := buildRCServed(t, dir)

	regPort := freePort(t)
	regURL := fmt.Sprintf("http://127.0.0.1:%d", regPort)
	registry := spawn(t, bin, dir, "registry",
		"-addr", fmt.Sprintf("127.0.0.1:%d", regPort),
		"-registry", "-registry-ttl", "500ms", "-workers", "1", "-queue", "4")

	var nodes []*proc
	for i := 0; i < 3; i++ {
		port := freePort(t)
		name := fmt.Sprintf("node-%d", i)
		p := spawn(t, bin, dir, name,
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-join", regURL,
			"-journal", filepath.Join(dir, name+".journal"),
			"-workers", "2")
		p.url = fmt.Sprintf("http://127.0.0.1:%d", port)
		nodes = append(nodes, p)
	}
	dumpAll := func() {
		registry.dumpLog(t)
		for _, n := range nodes {
			n.dumpLog(t)
		}
	}

	// Wait for the fleet to assemble.
	ctx := context.Background()
	assembled := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		if m, ok := cluster.Probe(ctx, regURL); ok && len(m.Nodes) == 3 {
			assembled = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !assembled {
		dumpAll()
		t.Fatal("cluster never assembled 3 nodes")
	}

	scale := chaosScale()
	ref := exp.RunSweepCtx(ctx, config.Chip16(), config.Variants(), scale, exp.DefaultPolicy())
	if len(ref.Failures) > 0 {
		t.Fatalf("local reference sweep failed: %v", ref.Failures)
	}

	// SIGKILL node-0 once the fleet has demonstrably done work: poll the
	// nodes' /metrics for completed jobs while the sweep runs.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for {
			var done int64
			for _, n := range nodes {
				if m, err := serve.NewClient(n.url).Metrics(ctx); err == nil {
					done += m["serve/jobs_done"]
				}
			}
			if done >= 3 {
				nodes[0].sigkill(t)
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	cl := cluster.NewClient(regURL, cluster.WithLogf(quiet))
	sweep := exp.RunSweepCtx(ctx, config.Chip16(), config.Variants(), scale, clusterPolicy(cl))
	<-killed

	if len(sweep.Failures) > 0 {
		dumpAll()
		t.Fatalf("cluster sweep failed despite handoff: %v", sweep.Failures)
	}
	for _, v := range config.Variants() {
		for _, w := range scale.Workloads() {
			got, want := sweep.Res[v.Name][w.Name], ref.Res[v.Name][w.Name]
			if got == nil {
				t.Fatalf("missing cell %s/%s", v.Name, w.Name)
			}
			if err := differ.Diff(want, got, nil); err != nil {
				t.Fatalf("cell %s/%s diverged from local run: %v", v.Name, w.Name, err)
			}
		}
	}

	// A second pass re-homes the dead process's keyspace, after which the
	// two survivors hold exactly one copy of every sweep fingerprint.
	again := exp.RunSweepCtx(ctx, config.Chip16(), config.Variants(), scale, clusterPolicy(cl))
	if len(again.Failures) > 0 {
		dumpAll()
		t.Fatalf("second pass failed: %v", again.Failures)
	}
	holders := map[string]int{}
	for _, n := range nodes[1:] {
		for _, fp := range scrapeCache(t, n.url) {
			holders[fp]++
		}
	}
	for _, spec := range sweepSpecs(scale) {
		if got := holders[spec.Fingerprint()]; got != 1 {
			dumpAll()
			t.Fatalf("fingerprint %.12s held by %d survivors, want exactly 1", spec.Fingerprint(), got)
		}
	}

	// The registry classified the kill as an expiry.
	resp, err := http.Get(regURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	if strings.Contains(metrics, "cluster/expiries 0\n") {
		dumpAll()
		t.Fatalf("SIGKILL never became a TTL expiry:\n%s", metrics)
	}
}
