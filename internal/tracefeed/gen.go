package tracefeed

import "reactivenoc/internal/workload"

// The adversarial generator suite: traffic the stationary evaluation
// profiles never produce, aimed at the regimes where profile-based
// switching degrades (PAPERS.md: He & Cao) — a single contended tile,
// permutation traffic with no reuse locality across destinations, duty
// cycled bursts that defeat window averaging, and phase changes that
// invalidate whatever the predictor learned. Each is registered as a
// first-class workload name at package init, so importing tracefeed
// (which internal/chip does) makes them resolvable everywhere a
// workload name is accepted: rcsim -workload, sweep columns, differ
// specs and the spec fingerprint.

// Hotspot funnels every shared access to lines homed on the central
// tile. The elevated shared fraction keeps the hotspot's queue full.
func Hotspot() workload.Profile {
	p := workload.Micro()
	p.Name = "hotspot"
	p.Pattern = workload.PatternHotspot
	p.SharedLines = 1024
	p.SharedFraction = 0.030
	return p
}

// Transpose sends core (x,y)'s shared accesses to lines homed on tile
// (y,x) — the classic bit-permutation worst case for dimension-ordered
// routing.
func Transpose() workload.Profile {
	p := workload.Micro()
	p.Name = "transpose"
	p.Pattern = workload.PatternTranspose
	p.SharedLines = 1024
	p.SharedFraction = 0.020
	return p
}

// Tornado targets the tile halfway around the row, maximizing average
// hop distance in the X dimension.
func Tornado() workload.Profile {
	p := workload.Micro()
	p.Name = "tornado"
	p.Pattern = workload.PatternTornado
	p.SharedLines = 1024
	p.SharedFraction = 0.020
	return p
}

// OnOff chops the micro profile into bursts: heavy traffic for 400 ops,
// silence for 1200 (duty cycle 1/4). The timed-window predictor sees
// circuits go cold mid-window.
func OnOff() workload.Profile {
	p := workload.Micro()
	p.Name = "onoff"
	p.BurstOn = 400
	p.BurstOff = 1200
	p.StreamFraction = 0.040
	p.SharedFraction = 0.020
	return p
}

// Phased ping-pongs between a communication-heavy phase and a
// compute-quiet one every 1500 ops: the phase-changing mix that
// invalidates profile-based tuning. phasedQuiet is its other half.
func Phased() workload.Profile {
	p := workload.Micro()
	p.Name = "phased"
	p.StreamFraction = 0.040
	p.SharedFraction = 0.020
	p.PhaseOps = 1500
	p.PhaseNext = "phased_quiet"
	return p
}

func phasedQuiet() workload.Profile {
	p := workload.Micro()
	p.Name = "phased_quiet"
	p.MemFraction = 0.10
	p.StreamFraction = 0.004
	p.SharedFraction = 0.002
	p.ColdFraction = 0.0002
	p.PhaseOps = 1500
	p.PhaseNext = "phased"
	return p
}

// Generators lists the adversarial suite in its canonical order (the
// order -list-workloads and the tuner report them).
func Generators() []workload.Profile {
	return []workload.Profile{
		Hotspot(), Transpose(), Tornado(), OnOff(), Phased(),
	}
}

func init() {
	for _, p := range Generators() {
		workload.Register(p)
	}
	// The quiet half of the phased ping-pong must resolve by name for
	// the phase switch (and is a usable workload in its own right).
	workload.Register(phasedQuiet())
}
