// Package tracefeed records, encodes and replays the memory-access
// streams that drive the chip's cores, and registers the adversarial
// workload generators (hotspot, transpose, tornado, on/off bursts,
// phase-changing mixes) as first-class workload names.
//
// The trace format (DESIGN.md §5h) is a compact versioned binary: a
// self-describing header (workload name, seed, phase budgets, core
// count), a per-core region table for functional cache prefill, one
// varint-encoded record sequence per core ({cycle-gap, op,
// address-region, sharer-hint}, compute runs run-length encoded,
// addresses delta-coded), and a CRC-32 trailer over everything before
// it. All replay state is per-core, so a trace-driven run shards exactly
// like a synthetic one.
package tracefeed

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/cpu"
	"reactivenoc/internal/workload"
)

// Format constants. Version bumps when the wire layout changes; Decode
// rejects versions it does not know.
const (
	magic   = "RCTF"
	version = 1
)

// Decode hard caps: a header that claims more than these is corrupt (or
// adversarial fuzz input), not a bigger trace. They are far above
// anything the simulator produces.
const (
	maxCores       = 1 << 14
	maxRegions     = 1 << 10
	maxRegionLines = 1 << 26
)

// Rec is one trace record: an operation (or a run of compute
// operations) issued Gap cycles after the previous record.
type Rec struct {
	// Gap is the issue-cycle delta to the previous record (the absolute
	// cycle for a core's first record). Replay does not consume it — a
	// core's timing re-emerges from its misses — but it makes a trace
	// analyzable without re-simulation.
	Gap int64
	// Kind is the operation; for OpCompute the record covers a run of N
	// back-to-back compute cycles.
	Kind cpu.OpKind
	// N is the run length for compute records (>= 1); 1 for memory ops.
	N int64
	// Addr is the absolute line address for memory ops (delta-coded on
	// the wire).
	Addr cache.Addr
	// Region and Hint label the address: which of the generating
	// profile's regions it fell in and how widely the line is expected
	// to be shared (workload.Profile.Classify).
	Region workload.RegionClass
	Hint   uint8
}

// Trace is a decoded trace file: everything needed to rebuild the run
// that produced it — prefill regions per core plus each core's exact
// operation sequence.
type Trace struct {
	Workload   string
	Seed       uint64
	WarmupOps  int64
	MeasureOps int64
	Regions    [][]workload.Region
	Recs       [][]Rec
}

// Cores returns the number of per-core streams in the trace.
func (t *Trace) Cores() int { return len(t.Recs) }

// Encode serializes the trace: header, region table, per-core records,
// CRC-32 trailer. The encoding is canonical — one trace value has one
// byte representation — so the CRC doubles as a content fingerprint
// (workload.Profile.TraceCRC).
func (t *Trace) Encode() []byte {
	var buf []byte
	buf = append(buf, magic...)
	buf = binary.AppendUvarint(buf, version)
	buf = binary.AppendUvarint(buf, 0) // flags, reserved
	buf = binary.AppendUvarint(buf, uint64(len(t.Workload)))
	buf = append(buf, t.Workload...)
	buf = binary.AppendUvarint(buf, t.Seed)
	buf = binary.AppendUvarint(buf, uint64(t.WarmupOps))
	buf = binary.AppendUvarint(buf, uint64(t.MeasureOps))
	buf = binary.AppendUvarint(buf, uint64(len(t.Recs)))
	for core := range t.Recs {
		var regions []workload.Region
		if core < len(t.Regions) {
			regions = t.Regions[core]
		}
		buf = binary.AppendUvarint(buf, uint64(len(regions)))
		for _, r := range regions {
			buf = binary.AppendUvarint(buf, uint64(r.Start))
			buf = binary.AppendUvarint(buf, uint64(r.Lines))
			buf = binary.AppendUvarint(buf, uint64(r.L1From))
			buf = binary.AppendUvarint(buf, uint64(r.L1Lines))
			if r.Exclusive {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	for core := range t.Recs {
		recs := t.Recs[core]
		buf = binary.AppendUvarint(buf, uint64(len(recs)))
		var prevAddr cache.Addr
		for _, r := range recs {
			buf = binary.AppendUvarint(buf, uint64(r.Gap))
			meta := byte(r.Kind) | byte(r.Region)<<2 | r.Hint<<5
			buf = append(buf, meta)
			if r.Kind == cpu.OpCompute {
				buf = binary.AppendUvarint(buf, uint64(r.N))
			} else {
				buf = binary.AppendVarint(buf, int64(r.Addr)-int64(prevAddr))
				prevAddr = r.Addr
			}
		}
	}
	crc := crc32.ChecksumIEEE(buf)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// decoder is a bounds-checked cursor over an encoded trace. Every read
// reports corruption as an error — Decode must never panic on arbitrary
// bytes (FuzzTraceRoundTrip).
type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracefeed: truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("tracefeed: truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.data) {
		return nil, fmt.Errorf("tracefeed: truncated read of %d bytes at offset %d", n, d.pos)
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

// count reads a length-prefix and bounds it: the remaining bytes must be
// able to hold at least one byte per claimed element, so a corrupt
// header cannot force a giant allocation.
func (d *decoder) count(cap64 uint64) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > cap64 || int(v) > len(d.data)-d.pos {
		return 0, fmt.Errorf("tracefeed: implausible element count %d at offset %d", v, d.pos)
	}
	return int(v), nil
}

// Decode parses an encoded trace, verifying magic, version, the CRC
// trailer and every structural bound. It returns the trace and its CRC
// (the value pinned by workload.Profile.TraceCRC).
func Decode(data []byte) (*Trace, uint32, error) {
	if len(data) < len(magic)+4 {
		return nil, 0, fmt.Errorf("tracefeed: %d bytes is shorter than any trace", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, 0, fmt.Errorf("tracefeed: CRC mismatch (file %08x, payload %08x)", want, got)
	}
	crc := binary.LittleEndian.Uint32(trailer)
	d := &decoder{data: payload}
	if m, err := d.bytes(len(magic)); err != nil || string(m) != magic {
		return nil, 0, fmt.Errorf("tracefeed: bad magic")
	}
	v, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if v != version {
		return nil, 0, fmt.Errorf("tracefeed: unsupported version %d (have %d)", v, version)
	}
	if _, err := d.uvarint(); err != nil { // flags
		return nil, 0, err
	}
	nameLen, err := d.count(1 << 10)
	if err != nil {
		return nil, 0, err
	}
	name, err := d.bytes(nameLen)
	if err != nil {
		return nil, 0, err
	}
	t := &Trace{Workload: string(name)}
	if t.Seed, err = d.uvarint(); err != nil {
		return nil, 0, err
	}
	warm, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	meas, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if warm > math.MaxInt64 || meas > math.MaxInt64 {
		return nil, 0, fmt.Errorf("tracefeed: phase budget overflows int64")
	}
	t.WarmupOps, t.MeasureOps = int64(warm), int64(meas)
	cores, err := d.count(maxCores)
	if err != nil {
		return nil, 0, err
	}
	t.Regions = make([][]workload.Region, cores)
	for c := 0; c < cores; c++ {
		n, err := d.count(maxRegions)
		if err != nil {
			return nil, 0, err
		}
		regions := make([]workload.Region, 0, n)
		for i := 0; i < n; i++ {
			var r workload.Region
			start, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			r.Start = cache.Addr(start)
			for _, dst := range []*int{&r.Lines, &r.L1From, &r.L1Lines} {
				v, err := d.uvarint()
				if err != nil {
					return nil, 0, err
				}
				if v > maxRegionLines {
					return nil, 0, fmt.Errorf("tracefeed: region spans %d lines", v)
				}
				*dst = int(v)
			}
			excl, err := d.bytes(1)
			if err != nil {
				return nil, 0, err
			}
			if excl[0] > 1 {
				return nil, 0, fmt.Errorf("tracefeed: bad exclusive flag %d", excl[0])
			}
			r.Exclusive = excl[0] == 1
			regions = append(regions, r)
		}
		t.Regions[c] = regions
	}
	t.Recs = make([][]Rec, cores)
	for c := 0; c < cores; c++ {
		n, err := d.count(uint64(len(payload)))
		if err != nil {
			return nil, 0, err
		}
		recs := make([]Rec, 0, n)
		var prevAddr cache.Addr
		for i := 0; i < n; i++ {
			var r Rec
			gap, err := d.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if gap > math.MaxInt64 {
				return nil, 0, fmt.Errorf("tracefeed: cycle gap overflows int64")
			}
			r.Gap = int64(gap)
			meta, err := d.bytes(1)
			if err != nil {
				return nil, 0, err
			}
			r.Kind = cpu.OpKind(meta[0] & 0b11)
			r.Region = workload.RegionClass(meta[0] >> 2 & 0b111)
			r.Hint = meta[0] >> 5
			if r.Kind > cpu.OpStore || r.Region > workload.RegionOther {
				return nil, 0, fmt.Errorf("tracefeed: bad record meta %02x", meta[0])
			}
			if r.Kind == cpu.OpCompute {
				run, err := d.uvarint()
				if err != nil {
					return nil, 0, err
				}
				if run == 0 || run > math.MaxInt64 {
					return nil, 0, fmt.Errorf("tracefeed: compute run of %d ops", run)
				}
				r.N = int64(run)
			} else {
				delta, err := d.varint()
				if err != nil {
					return nil, 0, err
				}
				r.N = 1
				r.Addr = cache.Addr(int64(prevAddr) + delta)
				prevAddr = r.Addr
			}
			recs = append(recs, r)
		}
		t.Recs[c] = recs
	}
	if d.pos != len(payload) {
		return nil, 0, fmt.Errorf("tracefeed: %d trailing bytes after records", len(payload)-d.pos)
	}
	return t, crc, nil
}

// WriteFile encodes the trace to path and returns the payload CRC.
func (t *Trace) WriteFile(path string) (uint32, error) {
	enc := t.Encode()
	crc := binary.LittleEndian.Uint32(enc[len(enc)-4:])
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return 0, err
	}
	return crc, nil
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, uint32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return Decode(data)
}
