package tracefeed

import (
	"path/filepath"
	"reflect"
	"testing"

	"reactivenoc/internal/cpu"
	"reactivenoc/internal/workload"
)

// sampleTrace records a few thousand ops of a synthetic stream per core
// through the real Recorder, so tests exercise the same path chip runs.
func sampleTrace(t *testing.T, p workload.Profile, cores, ops int) *Trace {
	t.Helper()
	rec := NewRecorder(p, cores, 7, int64(ops/3), int64(ops-ops/3))
	for c := 0; c < cores; c++ {
		st := p.Stream(c, 7)
		now := int64(0)
		for i := 0; i < ops; i++ {
			op := st.Next()
			rec.Record(c, now, op)
			// Model the issue clock loosely: memory ops cost extra cycles.
			now++
			if op.Kind != cpu.OpCompute {
				now += int64(i % 13)
			}
		}
	}
	return rec.Trace()
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace(t, workload.Micro(), 4, 3000)
	enc := tr.Encode()
	got, crc, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if crc == 0 {
		t.Fatal("zero CRC")
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("decoded trace differs from original")
	}
}

func TestEncodeIsCanonical(t *testing.T) {
	tr := sampleTrace(t, workload.Micro(), 2, 1000)
	a, b := tr.Encode(), tr.Encode()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two encodings of one trace differ")
	}
	dec, _, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Encode(), a) {
		t.Fatal("encode(decode(x)) != x for a canonical encoding")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr := sampleTrace(t, workload.Micro(), 2, 500)
	enc := tr.Encode()
	// Flip one byte anywhere: the CRC must catch it.
	for _, pos := range []int{0, 4, len(enc) / 2, len(enc) - 5} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0xFF
		if _, _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", pos)
		}
	}
	// Truncations at every length must error, never panic.
	for n := 0; n < len(enc); n += 7 {
		if _, _, err := Decode(enc[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestReplayMatchesRecordedStream(t *testing.T) {
	p := workload.Micro()
	tr := sampleTrace(t, p, 3, 5000)
	for c := 0; c < 3; c++ {
		live := p.Stream(c, 7)
		replay := tr.Stream(c)
		for i := 0; i < 5000; i++ {
			if got, want := replay.Next(), live.Next(); got != want {
				t.Fatalf("core %d op %d: replay %+v != live %+v", c, i, got, want)
			}
		}
		// Exhausted replay degrades to compute.
		if op := replay.Next(); op.Kind != cpu.OpCompute {
			t.Fatalf("exhausted replay returned %+v", op)
		}
	}
}

func TestReplayPreservesAdversarialStreams(t *testing.T) {
	for _, p := range Generators() {
		tr := sampleTrace(t, p, 2, 4000)
		live := p.Stream(1, 7)
		replay := tr.Stream(1)
		for i := 0; i < 4000; i++ {
			if got, want := replay.Next(), live.Next(); got != want {
				t.Fatalf("%s op %d: replay %+v != live %+v", p.Name, i, got, want)
			}
		}
	}
}

func TestRegionTableSurvivesRoundTrip(t *testing.T) {
	p := workload.Micro()
	tr := sampleTrace(t, p, 4, 100)
	enc := tr.Encode()
	dec, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		if !reflect.DeepEqual(dec.CoreRegions(c), p.Regions(c)) {
			t.Fatalf("core %d regions differ after round trip", c)
		}
	}
	if dec.CoreRegions(99) != nil {
		t.Fatal("out-of-range core returned regions")
	}
}

func TestRecordsCarryRegionLabels(t *testing.T) {
	tr := sampleTrace(t, workload.Micro(), 1, 20000)
	seen := map[workload.RegionClass]bool{}
	for _, r := range tr.Recs[0] {
		seen[r.Region] = true
		if r.Kind == cpu.OpCompute && r.Region != workload.RegionNone {
			t.Fatalf("compute record labeled %v", r.Region)
		}
		if r.Kind != cpu.OpCompute && r.Region == workload.RegionNone {
			t.Fatalf("memory record at %#x unlabeled", r.Addr)
		}
	}
	for _, want := range []workload.RegionClass{workload.RegionHot, workload.RegionStream, workload.RegionShared} {
		if !seen[want] {
			t.Errorf("no record labeled %v in 20k micro ops", want)
		}
	}
}

func TestLoadWorkloadPinsCRC(t *testing.T) {
	tr := sampleTrace(t, workload.Micro(), 2, 500)
	path := filepath.Join(t.TempDir(), "run.rctf")
	crc, err := tr.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, loaded, err := LoadWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.TraceCRC != crc {
		t.Fatalf("profile CRC %08x != written CRC %08x", p.TraceCRC, crc)
	}
	if p.TracePath != path || p.Name != "trace:run.rctf" {
		t.Fatalf("bad trace profile: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if loaded.Cores() != 2 {
		t.Fatalf("loaded %d cores", loaded.Cores())
	}
}

func TestResolveWorkload(t *testing.T) {
	for _, name := range []string{"micro", "mix", "canneal", "hotspot", "tornado", "onoff", "phased"} {
		p, err := ResolveWorkload(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("resolved %q as %q", name, p.Name)
		}
	}
	if _, err := ResolveWorkload("doom"); err == nil {
		t.Error("phantom workload resolved")
	}
	if _, err := ResolveWorkload("trace:/no/such/file.rctf"); err == nil {
		t.Error("missing trace file resolved")
	}
	tr := sampleTrace(t, workload.Micro(), 1, 100)
	path := filepath.Join(t.TempDir(), "t.rctf")
	if _, err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveWorkload("trace:" + path); err != nil {
		t.Error(err)
	}
}

func TestWorkloadNamesEnumeratesEverything(t *testing.T) {
	names := WorkloadNames()
	want := map[string]bool{
		"micro": false, "mix": false, "canneal": false,
		"hotspot": false, "transpose": false, "tornado": false,
		"onoff": false, "phased": false, "trace:<path>": false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("%s missing from WorkloadNames", n)
		}
	}
}

func TestGeneratorsAllValid(t *testing.T) {
	for _, p := range Generators() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestComputeRunsCompress(t *testing.T) {
	// A compute-heavy profile must not pay one record per op.
	p := workload.Micro()
	p.MemFraction = 0.05
	tr := sampleTrace(t, p, 1, 10000)
	if n := len(tr.Recs[0]); n > 2500 {
		t.Fatalf("%d records for 10000 ops at 5%% memory: compute runs not compressed", n)
	}
}
