package tracefeed

import (
	"reflect"
	"testing"

	"reactivenoc/internal/workload"
)

// FuzzTraceRoundTrip asserts the two format invariants: Decode never
// panics on arbitrary bytes, and any input that decodes re-encodes to a
// value-identical trace (the canonical encoding also byte-round-trips,
// checked when the re-encoding decodes).
func FuzzTraceRoundTrip(f *testing.F) {
	micro := workload.Micro()
	rec := NewRecorder(micro, 2, 7, 100, 300)
	for c := 0; c < 2; c++ {
		st := micro.Stream(c, 7)
		for i := int64(0); i < 400; i++ {
			rec.Record(c, i*2, st.Next())
		}
	}
	f.Add(rec.Trace().Encode())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, crc, err := Decode(data)
		if err != nil {
			return
		}
		enc := tr.Encode()
		tr2, crc2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("trace changed across encode/decode")
		}
		_ = crc
		if crc2 == 0 && len(enc) == 0 {
			t.Fatal("unreachable")
		}
	})
}
