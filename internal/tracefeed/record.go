package tracefeed

import (
	"reactivenoc/internal/cpu"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/workload"
)

// Recorder taps the core instruction stream (cpu.Core.SetRecorder) and
// accumulates one record sequence per core. It is purely passive — the
// recorded run is bit-identical to an unrecorded one — and all state is
// per-core, so it is safe under the parallel engine's sharding: two
// cores never share a coreState, and one core is only ever ticked by one
// shard worker.
type Recorder struct {
	profile    workload.Profile
	seed       uint64
	warmupOps  int64
	measureOps int64
	cores      []coreState
}

type coreState struct {
	last sim.Cycle
	recs []Rec
}

// NewRecorder prepares a recorder for a run of the given synthetic
// profile: the profile labels each address with its region class and
// sharer hint and supplies the prefill region table of the eventual
// trace.
func NewRecorder(p workload.Profile, cores int, seed uint64, warmupOps, measureOps int64) *Recorder {
	return &Recorder{
		profile:    p,
		seed:       seed,
		warmupOps:  warmupOps,
		measureOps: measureOps,
		cores:      make([]coreState, cores),
	}
}

// Record implements cpu.Recorder. Consecutive compute operations merge
// into one run-length-encoded record (a compute never stalls, so a
// compute issued the cycle after another extends its run).
func (r *Recorder) Record(core int, now sim.Cycle, op cpu.Op) {
	cs := &r.cores[core]
	gap := int64(now - cs.last)
	cs.last = now
	if op.Kind == cpu.OpCompute {
		if n := len(cs.recs); n > 0 && cs.recs[n-1].Kind == cpu.OpCompute && gap == 1 {
			cs.recs[n-1].N++
			return
		}
		cs.recs = append(cs.recs, Rec{Gap: gap, Kind: cpu.OpCompute, N: 1})
		return
	}
	region, hint := r.profile.Classify(core, op.Addr)
	cs.recs = append(cs.recs, Rec{
		Gap: gap, Kind: op.Kind, N: 1,
		Addr: op.Addr, Region: region, Hint: hint,
	})
}

// Trace assembles the recorded run into an encodable trace: header from
// the run parameters, region table from the profile, records from the
// tap.
func (r *Recorder) Trace() *Trace {
	t := &Trace{
		Workload:   r.profile.Name,
		Seed:       r.seed,
		WarmupOps:  r.warmupOps,
		MeasureOps: r.measureOps,
		Regions:    make([][]workload.Region, len(r.cores)),
		Recs:       make([][]Rec, len(r.cores)),
	}
	for c := range r.cores {
		t.Regions[c] = r.profile.Regions(c)
		t.Recs[c] = r.cores[c].recs
	}
	return t
}
