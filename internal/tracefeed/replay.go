package tracefeed

import (
	"fmt"
	"path/filepath"
	"strings"

	"reactivenoc/internal/cpu"
	"reactivenoc/internal/workload"
)

// Stream returns core's replay stream: the recorded operations in
// order, then compute forever (a core retires exactly its op budget, so
// a faithful replay never reaches the filler). The stream's cursor is
// the only state — per-core, no cross-tile references — which is the
// whole determinism argument for replay under sharding: each shard
// worker advances only its own cores' cursors.
func (t *Trace) Stream(core int) cpu.Stream {
	if core >= len(t.Recs) {
		return &replayStream{}
	}
	return &replayStream{recs: t.Recs[core]}
}

// CoreRegions returns core's prefill region table.
func (t *Trace) CoreRegions(core int) []workload.Region {
	if core >= len(t.Regions) {
		return nil
	}
	return t.Regions[core]
}

type replayStream struct {
	recs []Rec
	i    int
	run  int64 // remaining ops of the current compute run
}

func (s *replayStream) Next() cpu.Op {
	if s.run > 0 {
		s.run--
		return cpu.Op{Kind: cpu.OpCompute}
	}
	if s.i >= len(s.recs) {
		return cpu.Op{Kind: cpu.OpCompute}
	}
	r := s.recs[s.i]
	s.i++
	if r.Kind == cpu.OpCompute {
		s.run = r.N - 1
		return cpu.Op{Kind: cpu.OpCompute}
	}
	return cpu.Op{Kind: r.Kind, Addr: r.Addr}
}

// TracePrefix marks a workload name as a trace file reference:
// "trace:<path>" loads and replays <path>.
const TracePrefix = "trace:"

// LoadWorkload loads a trace file and wraps it in a replayable workload
// profile: TracePath names the file, TraceCRC pins its payload checksum
// so two different traces at the same path never alias in the spec
// fingerprint or a result cache.
func LoadWorkload(path string) (workload.Profile, *Trace, error) {
	t, crc, err := Load(path)
	if err != nil {
		return workload.Profile{}, nil, err
	}
	p := workload.Profile{
		Name:      TracePrefix + filepath.Base(path),
		TracePath: path,
		TraceCRC:  crc,
	}
	return p, t, nil
}

// ResolveWorkload turns a CLI workload name into a profile: built-in
// profiles and registered generators by name, or "trace:<path>" for a
// recorded trace file.
func ResolveWorkload(name string) (workload.Profile, error) {
	if strings.HasPrefix(name, TracePrefix) {
		p, _, err := LoadWorkload(strings.TrimPrefix(name, TracePrefix))
		return p, err
	}
	if p, ok := workload.ByName(name); ok {
		return p, nil
	}
	return workload.Profile{}, fmt.Errorf("unknown workload %q (rcsim -list-workloads enumerates them)", name)
}

// WorkloadNames enumerates every resolvable workload name for
// -list-workloads: the paper's built-ins, then the registered
// adversarial generators, then the trace pseudo-entry.
func WorkloadNames() []string {
	names := []string{"micro"}
	names = append(names, workload.Names()...)
	names = append(names, workload.GeneratorNames()...)
	return append(names, TracePrefix+"<path>")
}
