// Package tune is the closed-loop parameter tuner: it sweeps a grid of
// mechanism variants (config.TuneGrid — the Slack/Postponed knob range
// plus the Baseline and Reuse anchors) across a set of workloads via the
// exp sweep machinery, and reports the per-app optimum. Run against the
// adversarial generator suite it extends the paper's figures into the
// regimes where profile-based tuning degrades: the hotspot row flips the
// Baseline-vs-Timed ordering the stationary profiles show.
package tune

import (
	"context"
	"fmt"
	"strings"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/core"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/sim"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/workload"
)

// Config parameterizes one tuning campaign.
type Config struct {
	Chip config.Chip
	// Variants is the candidate grid (nil = config.TuneGrid()).
	Variants []config.Variant
	// Workloads is the application list (nil = DefaultWorkloads()).
	Workloads []workload.Profile
	// MeasureOps per core per run (0 = 4000).
	MeasureOps int64
	Seed       uint64
	// Workers caps concurrent runs (0 = GOMAXPROCS).
	Workers int
}

// DefaultWorkloads returns the tuner's standard application list: three
// stationary anchors (micro, canneal, mix) followed by the adversarial
// generator suite, so every report contrasts the regimes directly.
func DefaultWorkloads() []workload.Profile {
	anchors := []workload.Profile{workload.Micro()}
	if p, ok := workload.ByName("canneal"); ok {
		anchors = append(anchors, p)
	}
	anchors = append(anchors, workload.Multiprogrammed())
	return append(anchors, tracefeed.Generators()...)
}

// Pick is one workload's tuning outcome.
type Pick struct {
	Workload string
	// Best names the grid variant with the fewest measured cycles;
	// Speedup is Baseline cycles over Best cycles.
	Best       string
	BestCycles sim.Cycle
	Speedup    float64
	// BaselineCycles and TimedCycles anchor the ordering comparison:
	// TimedDelta is (Timed - Baseline) / Baseline — negative when the
	// plain timed-window predictor beats the baseline, positive when the
	// workload defeats it.
	BaselineCycles sim.Cycle
	TimedCycles    sim.Cycle
	TimedDelta     float64
	// BestCircuitHit and TimedCircuitHit are the share of replies that
	// rode their own circuit (Figure 6's CIRCUIT outcome) under the best
	// and plain-timed variants.
	BestCircuitHit  float64
	TimedCircuitHit float64
}

// Report is a finished tuning campaign.
type Report struct {
	Chip  config.Chip
	Scale exp.Scale
	Sweep *exp.Sweep
	// Picks holds one row per workload, in campaign order.
	Picks []Pick
}

// Run executes the campaign: one sweep over (variants x workloads), then
// a per-workload argmin. Failed runs leave their cells out of the argmin
// (the sweep policy retries and survives them); a workload with no
// surviving cells is skipped.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	variants := cfg.Variants
	if len(variants) == 0 {
		variants = config.TuneGrid()
	}
	workloads := cfg.Workloads
	if len(workloads) == 0 {
		workloads = DefaultWorkloads()
	}
	measure := cfg.MeasureOps
	if measure <= 0 {
		measure = 4000
	}
	scale := exp.Scale{
		MeasureOps: measure,
		Seed:       cfg.Seed,
		Workers:    cfg.Workers,
		Profiles:   workloads,
	}
	sweep := exp.RunSweepCtx(ctx, cfg.Chip, variants, scale, exp.DefaultPolicy())
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	rep := &Report{Chip: cfg.Chip, Scale: scale, Sweep: sweep}
	circuitHit := func(r *chip.Results) float64 {
		if r == nil || r.Circ == nil {
			return 0
		}
		return r.Circ.OutcomeFraction(core.OutcomeCircuit)
	}
	for _, w := range workloads {
		pick := Pick{Workload: w.Name}
		for _, v := range variants {
			r := sweep.Res[v.Name][w.Name]
			if r == nil {
				continue
			}
			if pick.Best == "" || r.Cycles < pick.BestCycles {
				pick.Best, pick.BestCycles = v.Name, r.Cycles
				pick.BestCircuitHit = circuitHit(r)
			}
			switch v.Name {
			case "Baseline":
				pick.BaselineCycles = r.Cycles
			case "Timed_NoAck":
				pick.TimedCycles = r.Cycles
				pick.TimedCircuitHit = circuitHit(r)
			}
		}
		if pick.Best == "" {
			continue // every cell failed; the sweep's Failures has the story
		}
		if pick.BaselineCycles > 0 {
			pick.Speedup = float64(pick.BaselineCycles) / float64(pick.BestCycles)
			if pick.TimedCycles > 0 {
				pick.TimedDelta = float64(pick.TimedCycles-pick.BaselineCycles) / float64(pick.BaselineCycles)
			}
		}
		rep.Picks = append(rep.Picks, pick)
	}
	if len(rep.Picks) == 0 {
		return nil, fmt.Errorf("tune: every run failed\n%s", sweep.FailureSummary())
	}
	return rep, nil
}

// Markdown renders the campaign as the EXPERIMENTS.md table: one row per
// workload with its optimum, the Baseline-vs-Timed ordering signal and
// the circuit-hit rates.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| workload | best variant | cycles | speedup vs Baseline | Timed vs Baseline | circuit-hit (best) | circuit-hit (Timed) |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|---|\n")
	for _, p := range r.Picks {
		fmt.Fprintf(&b, "| %s | %s | %d | %.3fx | %+.1f%% | %.1f%% | %.1f%% |\n",
			p.Workload, p.Best, p.BestCycles, p.Speedup,
			p.TimedDelta*100, p.BestCircuitHit*100, p.TimedCircuitHit*100)
	}
	return b.String()
}

// Text renders the campaign as a fixed-width table for the terminal.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-20s %9s %9s %9s %11s %11s\n",
		"workload", "best", "cycles", "speedup", "timedΔ", "hit(best)", "hit(timed)")
	for _, p := range r.Picks {
		fmt.Fprintf(&b, "%-14s %-20s %9d %8.3fx %+8.1f%% %10.1f%% %10.1f%%\n",
			p.Workload, p.Best, p.BestCycles, p.Speedup,
			p.TimedDelta*100, p.BestCircuitHit*100, p.TimedCircuitHit*100)
	}
	if fs := r.Sweep.FailureSummary(); fs != "" {
		b.WriteString("\nfailures:\n")
		b.WriteString(fs)
	}
	return b.String()
}
