package tune

import (
	"context"
	"strings"
	"testing"

	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/tracefeed"
	"reactivenoc/internal/workload"
)

func TestTuneSmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning campaign is a multi-run sweep")
	}
	cfg := Config{
		Chip: config.Chip16(),
		Variants: []config.Variant{
			config.TuneGrid()[0], // Baseline
			config.TuneGrid()[1], // Reuse_NoAck
			config.TuneGrid()[2], // Timed_NoAck
		},
		Workloads:  []workload.Profile{workload.Micro(), tracefeed.Hotspot()},
		MeasureOps: 2000,
		Seed:       7,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Picks) != 2 {
		t.Fatalf("%d picks, want 2", len(rep.Picks))
	}
	for _, p := range rep.Picks {
		if p.Best == "" || p.BestCycles <= 0 {
			t.Errorf("%s: empty pick %+v", p.Workload, p)
		}
		if p.BaselineCycles <= 0 || p.TimedCycles <= 0 {
			t.Errorf("%s: missing anchor cycles %+v", p.Workload, p)
		}
		if p.Speedup < 1.0 {
			// Baseline is in the grid, so the best variant can never lose
			// to it.
			t.Errorf("%s: best variant slower than Baseline (%+v)", p.Workload, p)
		}
	}
	md := rep.Markdown()
	for _, want := range []string{"micro", "hotspot", "| workload |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if txt := rep.Text(); !strings.Contains(txt, "hotspot") {
		t.Errorf("text table missing hotspot:\n%s", txt)
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{
		Sweep: &exp.Sweep{},
		Picks: []Pick{
			{Workload: "micro", Best: "Timed_NoAck", BestCycles: 4100,
				Speedup: 1.210, BaselineCycles: 4961, TimedCycles: 4100,
				TimedDelta: -0.174, BestCircuitHit: 0.31, TimedCircuitHit: 0.31},
			{Workload: "hotspot", Best: "Reuse_NoAck", BestCycles: 4939,
				Speedup: 1.065, BaselineCycles: 5262, TimedCycles: 5321,
				TimedDelta: 0.011, BestCircuitHit: 0.28, TimedCircuitHit: 0.19},
		},
	}
	md := rep.Markdown()
	for _, want := range []string{
		"| workload |", "| micro | Timed_NoAck | 4100 | 1.210x | -17.4% |",
		"| hotspot | Reuse_NoAck | 4939 | 1.065x | +1.1% |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	txt := rep.Text()
	for _, want := range []string{"workload", "micro", "hotspot", "Reuse_NoAck"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "failures:") {
		t.Errorf("clean report should not list failures:\n%s", txt)
	}
}

func TestTuneGridValid(t *testing.T) {
	grid := config.TuneGrid()
	if len(grid) < 8 {
		t.Fatalf("tuning grid has only %d variants", len(grid))
	}
	seen := map[string]bool{}
	for _, v := range grid {
		if seen[v.Name] {
			t.Errorf("duplicate grid variant %s", v.Name)
		}
		seen[v.Name] = true
	}
	for _, want := range []string{"Baseline", "Timed_NoAck", "Slack_8_NoAck", "Postponed_2_NoAck"} {
		if !seen[want] {
			t.Errorf("grid missing %s", want)
		}
	}
	// The beyond-the-paper grid points resolve through the registry too
	// (rcsim -variant Slack_8_NoAck).
	if _, ok := config.ByName("Slack_8_NoAck"); !ok {
		t.Error("Slack_8_NoAck not in the variant registry")
	}
}

func TestDefaultWorkloadsContrastRegimes(t *testing.T) {
	names := map[string]bool{}
	for _, p := range DefaultWorkloads() {
		names[p.Name] = true
	}
	for _, want := range []string{"micro", "canneal", "mix", "hotspot", "transpose", "tornado", "onoff", "phased"} {
		if !names[want] {
			t.Errorf("default campaign missing %s", want)
		}
	}
}
