package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGDistinctSeedsDiverge(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws from distinct seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestGeometricBounds(t *testing.T) {
	r := NewRNG(15)
	for i := 0; i < 10000; i++ {
		v := r.Geometric(0.3, 50)
		if v < 0 || v > 50 {
			t.Fatalf("geometric out of bounds: %d", v)
		}
	}
	if v := r.Geometric(1.0, 10); v != 0 {
		t.Fatalf("p=1 should return 0, got %d", v)
	}
	if v := r.Geometric(0, 10); v != 10 {
		t.Fatalf("p=0 should return max, got %d", v)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(17)
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5, 1000)
	}
	mean := float64(sum) / n
	// E[X] = (1-p)/p = 1 for p = 0.5.
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("geometric mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collide %d times", same)
	}
}
