package sim

// Cycle is a simulation timestamp measured in core clock cycles (2 GHz in
// the modelled chip). Cycles are int64 so arithmetic on windows and
// deadlines can go transiently negative without wrapping.
type Cycle = int64

// Ticker is implemented by every clocked component. The kernel calls Tick
// exactly once per cycle on each registered component.
//
// Components must only *read* state written by other components in earlier
// cycles: all inter-component channels (links, credit wires) are one-cycle
// double-buffered pipelines, which makes the tick order across components
// observationally irrelevant.
type Ticker interface {
	Tick(now Cycle)
}

// Kernel drives a set of Tickers with a shared clock.
type Kernel struct {
	now     Cycle
	tickers []Ticker
	// post runs after every component ticked, in registration order. Links
	// use it to flop their pipeline registers.
	post []Ticker
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Register adds a component to the main tick phase.
func (k *Kernel) Register(t Ticker) { k.tickers = append(k.tickers, t) }

// RegisterPost adds a component to the post-tick phase (pipeline flop).
func (k *Kernel) RegisterPost(t Ticker) { k.post = append(k.post, t) }

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	now := k.now
	for _, t := range k.tickers {
		t.Tick(now)
	}
	for _, t := range k.post {
		t.Tick(now)
	}
	k.now++
}

// Run advances n cycles.
func (k *Kernel) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil advances until done reports true or the horizon is hit,
// returning the cycle count actually simulated and whether done fired.
func (k *Kernel) RunUntil(done func() bool, horizon Cycle) (Cycle, bool) {
	start := k.now
	for k.now-start < horizon {
		if done() {
			return k.now - start, true
		}
		k.Step()
	}
	return k.now - start, done()
}
