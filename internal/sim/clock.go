package sim

import (
	"fmt"
	"sync"
)

// Cycle is a simulation timestamp measured in core clock cycles (2 GHz in
// the modelled chip). Cycles are int64 so arithmetic on windows and
// deadlines can go transiently negative without wrapping.
type Cycle = int64

// Ticker is implemented by every clocked component. The kernel calls Tick
// exactly once per cycle on each registered component.
//
// Components must only *read* state written by other components in earlier
// cycles: all inter-component channels (links, credit wires) are one-cycle
// double-buffered pipelines, which makes the tick order across components
// observationally irrelevant.
type Ticker interface {
	Tick(now Cycle)
}

// Component is a Ticker that reports quiescence. The contract is strict:
// Quiescent() may return true only when the next Tick would be a pure
// no-op — no architectural state, statistic or counter may change when a
// quiescent component ticks. Under that contract the kernel may skip
// sleeping components without perturbing the simulation by a single bit,
// which is exactly what the golden determinism suite asserts.
//
// A component goes back to sleep on its own (the kernel re-checks
// quiescence after every tick); it is revived by a Waker, which whoever
// hands it work — a link delivering a flit, an NI accepting a message, a
// controller queueing a response — must invoke at hand-off time.
type Component interface {
	Ticker
	Quiescent() bool
}

// Waker revives one registered component. The zero Waker is a no-op, so
// components wired outside a kernel (unit tests driving Tick by hand) need
// no special casing. Waking an already-active component is free; waking a
// component whose slot already passed this cycle takes effect next cycle —
// identical to the dense engine, where that component's earlier tick was a
// no-op by the quiescence contract.
type Waker struct {
	k    *Kernel
	idx  int
	post bool
}

// Wake marks the component active so the kernel ticks it again.
func (w Waker) Wake() {
	if w.k == nil {
		return
	}
	if w.post {
		w.k.post[w.idx].active = true
	} else {
		w.k.main[w.idx].active = true
	}
}

// entry is one registered component with its scheduling state.
type entry struct {
	t Ticker
	// c is non-nil for activity-tracked components; nil entries (legacy
	// Register calls) are ticked unconditionally every cycle.
	c      Component
	active bool
	// shard is the tile shard that owns this component under parallel
	// execution; it is the value of SetShard at registration time.
	shard int32
}

// shardState is one worker shard's private scheduling state, padded so the
// per-shard tick counters never share a cache line across workers.
type shardState struct {
	ticks int64
	_     [7]int64
}

// Kernel drives a set of Tickers with a shared clock. Components added
// through Add are activity-tracked: the kernel skips them while they are
// quiescent and revives them through their Waker. Components added through
// Register tick every cycle, preserving the original engine's behaviour
// for monolithic tickers.
type Kernel struct {
	now  Cycle
	main []entry
	// post runs after every component ticked, in registration order.
	// Pipeline-flop style components use it.
	post []entry
	// dense disables activity skipping: every component ticks every
	// cycle, exactly like the original engine. The golden determinism
	// suite cross-checks dense against sparse execution.
	dense bool
	// ticks counts component ticks actually executed; with the component
	// count and cycle count this yields the scheduler's skip ratio.
	ticks int64

	// Sharded (parallel) execution state. With nshards <= 1 the kernel is
	// exactly the sequential engine and none of this is consulted on the
	// hot path.
	nshards  int
	curShard int32
	// epilogues run at the end of every Step — after both phases, before
	// the cycle counter advances — in all engine modes. The circuit layer
	// drains its deferred cross-tile operations here and the network
	// flushes staged boundary links, which is what makes the parallel
	// engine bit-identical to the sequential one.
	epilogues []func(Cycle)
	mainPlans [][]int32
	postPlans [][]int32
	shards    []shardState
	jobs      []chan int
	wg        sync.WaitGroup
	workerWG  sync.WaitGroup
	prepared  bool
	closed    bool
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Register adds a component to the main tick phase; it ticks every cycle.
func (k *Kernel) Register(t Ticker) {
	k.checkOpen()
	k.main = append(k.main, entry{t: t, active: true, shard: k.curShard})
}

// RegisterPost adds a component to the post-tick phase (pipeline flop); it
// ticks every cycle.
func (k *Kernel) RegisterPost(t Ticker) {
	k.checkOpen()
	k.post = append(k.post, entry{t: t, active: true, shard: k.curShard})
}

// Add registers an activity-tracked component in the main phase and
// returns its Waker. Components start active and fall asleep after their
// first quiescent tick.
func (k *Kernel) Add(c Component) Waker {
	k.checkOpen()
	k.main = append(k.main, entry{t: c, c: c, active: true, shard: k.curShard})
	return Waker{k: k, idx: len(k.main) - 1}
}

// AddPost registers an activity-tracked component in the post phase.
func (k *Kernel) AddPost(c Component) Waker {
	k.checkOpen()
	k.post = append(k.post, entry{t: c, c: c, active: true, shard: k.curShard})
	return Waker{k: k, idx: len(k.post) - 1, post: true}
}

func (k *Kernel) checkOpen() {
	if k.prepared {
		panic("sim: component registered after the sharded kernel started stepping")
	}
}

// SetShards declares how many tile shards the kernel will step in parallel.
// 0 and 1 select the sequential engine. Call before registering components;
// components are tagged with the current SetShard value as they register.
func (k *Kernel) SetShards(n int) {
	if k.prepared {
		panic("sim: SetShards after the kernel started stepping")
	}
	if n < 1 {
		n = 1
	}
	k.nshards = n
}

// Shards returns the shard count the kernel executes with (1 = sequential).
func (k *Kernel) Shards() int {
	if k.nshards < 1 {
		return 1
	}
	return k.nshards
}

// SetShard selects the shard that owns components registered from now on.
func (k *Kernel) SetShard(s int) { k.curShard = int32(s) }

// AddEpilogue appends f to the per-cycle epilogue chain. Epilogues run at
// the end of every Step, after both phases and before the clock advances,
// in every engine mode — so any behaviour they carry (deferred circuit
// operations, boundary-link flushes) is shared by the sequential and
// parallel engines rather than a parallel-only code path.
func (k *Kernel) AddEpilogue(f func(Cycle)) { k.epilogues = append(k.epilogues, f) }

// SetDense switches the kernel to dense (tick-everything) execution, the
// reference mode the activity tracker is verified against.
func (k *Kernel) SetDense(d bool) { k.dense = d }

// Components returns how many components are registered across both
// phases.
func (k *Kernel) Components() int { return len(k.main) + len(k.post) }

// ActiveCount returns how many registered components are currently awake.
func (k *Kernel) ActiveCount() int {
	n := 0
	for i := range k.main {
		if k.main[i].active {
			n++
		}
	}
	for i := range k.post {
		if k.post[i].active {
			n++
		}
	}
	return n
}

// Ticks returns the number of component ticks executed since construction.
// Comparing it against Components() × Now() gives the skip ratio the
// activity tracker achieved.
func (k *Kernel) Ticks() int64 {
	n := k.ticks
	for s := range k.shards {
		n += k.shards[s].ticks
	}
	return n
}

// WakeAll revives every component. It remains as the blunt but safe
// instrument for external phase transitions; the engine itself uses the
// targeted WakeShard / per-component Waker paths.
func (k *Kernel) WakeAll() {
	for i := range k.main {
		k.main[i].active = true
	}
	for i := range k.post {
		k.post[i].active = true
	}
}

// WakeShard revives every component owned by shard s — the targeted
// replacement for WakeAll at shard-scoped transitions. Waking a quiescent
// component is harmless (its next tick is a no-op by the quiescence
// contract), so over-waking a shard is safe; the point is not waking the
// other shards' components, whose entries a concurrently running worker
// may own.
func (k *Kernel) WakeShard(s int) {
	sh := int32(s)
	for i := range k.main {
		if k.main[i].shard == sh {
			k.main[i].active = true
		}
	}
	for i := range k.post {
		if k.post[i].shard == sh {
			k.post[i].active = true
		}
	}
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	now := k.now
	if k.nshards > 1 {
		if !k.prepared {
			k.prepare()
		}
		k.runPhaseParallel(0)
		k.runPhaseParallel(1)
	} else {
		k.stepPhase(k.main, now)
		k.stepPhase(k.post, now)
	}
	for _, f := range k.epilogues {
		f(now)
	}
	k.now++
}

// prepare seals the component set and builds the per-shard step plans: for
// each shard, the indices of its entries in global registration order. A
// shard's plan therefore preserves the sequential engine's relative tick
// order among the components it owns; components of different shards only
// interact through state exchanged at the phase barriers, so their mutual
// order is immaterial.
func (k *Kernel) prepare() {
	k.mainPlans = buildPlans(k.main, k.nshards)
	k.postPlans = buildPlans(k.post, k.nshards)
	k.shards = make([]shardState, k.nshards)
	k.jobs = make([]chan int, k.nshards)
	for s := 1; s < k.nshards; s++ {
		k.jobs[s] = make(chan int, 1)
		k.workerWG.Add(1)
		go k.worker(s)
	}
	k.prepared = true
}

func buildPlans(es []entry, nshards int) [][]int32 {
	plans := make([][]int32, nshards)
	for i := range es {
		s := int(es[i].shard)
		if s < 0 || s >= nshards {
			panic(fmt.Sprintf("sim: component %d tagged with shard %d of %d", i, s, nshards))
		}
		plans[s] = append(plans[s], int32(i))
	}
	return plans
}

// worker is one shard's persistent goroutine: it blocks on its job channel,
// steps its shard through the requested phase, and signals the barrier.
func (k *Kernel) worker(s int) {
	defer k.workerWG.Done()
	for phase := range k.jobs[s] {
		k.runShard(phase, s)
		k.wg.Done()
	}
}

// runPhaseParallel steps one kernel phase with every shard running
// concurrently. The coordinator goroutine doubles as shard 0's worker. The
// WaitGroup is the phase barrier: no goroutine observes another shard's
// writes except through it, and all cross-shard state (boundary links,
// deferred operations) is exchanged strictly on the coordinator side of it.
func (k *Kernel) runPhaseParallel(phase int) {
	if phase == 1 && len(k.post) == 0 {
		return
	}
	k.wg.Add(k.nshards - 1)
	for s := 1; s < k.nshards; s++ {
		k.jobs[s] <- phase
	}
	k.runShard(phase, 0)
	k.wg.Wait()
}

func (k *Kernel) runShard(phase, s int) {
	es, plan := k.main, k.mainPlans[s]
	if phase == 1 {
		es, plan = k.post, k.postPlans[s]
	}
	now := k.now
	var n int64
	for _, idx := range plan {
		e := &es[idx]
		if !e.active && !k.dense {
			continue
		}
		e.t.Tick(now)
		n++
		if e.c != nil {
			e.active = !e.c.Quiescent()
		}
	}
	k.shards[s].ticks += n
}

// Close shuts down the shard workers. It is a no-op for a sequential
// kernel and is idempotent; a parallel kernel must not Step after Close.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for s := 1; s < len(k.jobs); s++ {
		close(k.jobs[s])
	}
	k.workerWG.Wait()
}

func (k *Kernel) stepPhase(es []entry, now Cycle) {
	for i := range es {
		e := &es[i]
		if !e.active && !k.dense {
			continue
		}
		e.t.Tick(now)
		k.ticks++
		if e.c != nil {
			// Re-evaluated after every tick: work the component handed
			// itself keeps it awake; work handed to it by a later-ticking
			// peer sets the flag directly and survives this check because
			// sends only happen after this component's slot.
			e.active = !e.c.Quiescent()
		}
	}
}

// Run advances n cycles.
func (k *Kernel) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil advances until done reports true or the horizon is hit,
// returning the cycle count actually simulated and whether done fired.
func (k *Kernel) RunUntil(done func() bool, horizon Cycle) (Cycle, bool) {
	start := k.now
	for k.now-start < horizon {
		if done() {
			return k.now - start, true
		}
		k.Step()
	}
	return k.now - start, done()
}
