package sim

// Cycle is a simulation timestamp measured in core clock cycles (2 GHz in
// the modelled chip). Cycles are int64 so arithmetic on windows and
// deadlines can go transiently negative without wrapping.
type Cycle = int64

// Ticker is implemented by every clocked component. The kernel calls Tick
// exactly once per cycle on each registered component.
//
// Components must only *read* state written by other components in earlier
// cycles: all inter-component channels (links, credit wires) are one-cycle
// double-buffered pipelines, which makes the tick order across components
// observationally irrelevant.
type Ticker interface {
	Tick(now Cycle)
}

// Component is a Ticker that reports quiescence. The contract is strict:
// Quiescent() may return true only when the next Tick would be a pure
// no-op — no architectural state, statistic or counter may change when a
// quiescent component ticks. Under that contract the kernel may skip
// sleeping components without perturbing the simulation by a single bit,
// which is exactly what the golden determinism suite asserts.
//
// A component goes back to sleep on its own (the kernel re-checks
// quiescence after every tick); it is revived by a Waker, which whoever
// hands it work — a link delivering a flit, an NI accepting a message, a
// controller queueing a response — must invoke at hand-off time.
type Component interface {
	Ticker
	Quiescent() bool
}

// Waker revives one registered component. The zero Waker is a no-op, so
// components wired outside a kernel (unit tests driving Tick by hand) need
// no special casing. Waking an already-active component is free; waking a
// component whose slot already passed this cycle takes effect next cycle —
// identical to the dense engine, where that component's earlier tick was a
// no-op by the quiescence contract.
type Waker struct {
	k    *Kernel
	idx  int
	post bool
}

// Wake marks the component active so the kernel ticks it again.
func (w Waker) Wake() {
	if w.k == nil {
		return
	}
	if w.post {
		w.k.post[w.idx].active = true
	} else {
		w.k.main[w.idx].active = true
	}
}

// entry is one registered component with its scheduling state.
type entry struct {
	t Ticker
	// c is non-nil for activity-tracked components; nil entries (legacy
	// Register calls) are ticked unconditionally every cycle.
	c      Component
	active bool
}

// Kernel drives a set of Tickers with a shared clock. Components added
// through Add are activity-tracked: the kernel skips them while they are
// quiescent and revives them through their Waker. Components added through
// Register tick every cycle, preserving the original engine's behaviour
// for monolithic tickers.
type Kernel struct {
	now  Cycle
	main []entry
	// post runs after every component ticked, in registration order.
	// Pipeline-flop style components use it.
	post []entry
	// dense disables activity skipping: every component ticks every
	// cycle, exactly like the original engine. The golden determinism
	// suite cross-checks dense against sparse execution.
	dense bool
	// ticks counts component ticks actually executed; with the component
	// count and cycle count this yields the scheduler's skip ratio.
	ticks int64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Register adds a component to the main tick phase; it ticks every cycle.
func (k *Kernel) Register(t Ticker) { k.main = append(k.main, entry{t: t, active: true}) }

// RegisterPost adds a component to the post-tick phase (pipeline flop); it
// ticks every cycle.
func (k *Kernel) RegisterPost(t Ticker) { k.post = append(k.post, entry{t: t, active: true}) }

// Add registers an activity-tracked component in the main phase and
// returns its Waker. Components start active and fall asleep after their
// first quiescent tick.
func (k *Kernel) Add(c Component) Waker {
	k.main = append(k.main, entry{t: c, c: c, active: true})
	return Waker{k: k, idx: len(k.main) - 1}
}

// AddPost registers an activity-tracked component in the post phase.
func (k *Kernel) AddPost(c Component) Waker {
	k.post = append(k.post, entry{t: c, c: c, active: true})
	return Waker{k: k, idx: len(k.post) - 1, post: true}
}

// SetDense switches the kernel to dense (tick-everything) execution, the
// reference mode the activity tracker is verified against.
func (k *Kernel) SetDense(d bool) { k.dense = d }

// Components returns how many components are registered across both
// phases.
func (k *Kernel) Components() int { return len(k.main) + len(k.post) }

// ActiveCount returns how many registered components are currently awake.
func (k *Kernel) ActiveCount() int {
	n := 0
	for i := range k.main {
		if k.main[i].active {
			n++
		}
	}
	for i := range k.post {
		if k.post[i].active {
			n++
		}
	}
	return n
}

// Ticks returns the number of component ticks executed since construction.
// Comparing it against Components() × Now() gives the skip ratio the
// activity tracker achieved.
func (k *Kernel) Ticks() int64 { return k.ticks }

// WakeAll revives every component. Phase transitions use it as a blunt but
// safe instrument: a truly quiescent component falls back asleep after one
// no-op tick.
func (k *Kernel) WakeAll() {
	for i := range k.main {
		k.main[i].active = true
	}
	for i := range k.post {
		k.post[i].active = true
	}
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	now := k.now
	k.stepPhase(k.main, now)
	k.stepPhase(k.post, now)
	k.now++
}

func (k *Kernel) stepPhase(es []entry, now Cycle) {
	for i := range es {
		e := &es[i]
		if !e.active && !k.dense {
			continue
		}
		e.t.Tick(now)
		k.ticks++
		if e.c != nil {
			// Re-evaluated after every tick: work the component handed
			// itself keeps it awake; work handed to it by a later-ticking
			// peer sets the flag directly and survives this check because
			// sends only happen after this component's slot.
			e.active = !e.c.Quiescent()
		}
	}
}

// Run advances n cycles.
func (k *Kernel) Run(n Cycle) {
	for i := Cycle(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil advances until done reports true or the horizon is hit,
// returning the cycle count actually simulated and whether done fired.
func (k *Kernel) RunUntil(done func() bool, horizon Cycle) (Cycle, bool) {
	start := k.now
	for k.now-start < horizon {
		if done() {
			return k.now - start, true
		}
		k.Step()
	}
	return k.now - start, done()
}
