package sim

import "testing"

type countTicker struct {
	n     int
	seen  []Cycle
	other *countTicker
	diffs []int
}

func (c *countTicker) Tick(now Cycle) {
	c.n++
	c.seen = append(c.seen, now)
	if c.other != nil {
		c.diffs = append(c.diffs, c.other.n-c.n)
	}
}

func TestKernelStepAdvancesClock(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("fresh kernel at cycle %d", k.Now())
	}
	k.Run(10)
	if k.Now() != 10 {
		t.Fatalf("after Run(10) at cycle %d", k.Now())
	}
}

func TestKernelTicksEveryComponentOncePerCycle(t *testing.T) {
	k := NewKernel()
	a, b := &countTicker{}, &countTicker{}
	k.Register(a)
	k.Register(b)
	k.Run(5)
	if a.n != 5 || b.n != 5 {
		t.Fatalf("tick counts a=%d b=%d, want 5", a.n, b.n)
	}
	for i, c := range a.seen {
		if c != Cycle(i) {
			t.Fatalf("a saw cycle %d at step %d", c, i)
		}
	}
}

func TestKernelPostPhaseRunsAfterMain(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Register(tickFunc(func(Cycle) { order = append(order, "main") }))
	k.RegisterPost(tickFunc(func(Cycle) { order = append(order, "post") }))
	k.Step()
	if len(order) != 2 || order[0] != "main" || order[1] != "post" {
		t.Fatalf("phase order %v", order)
	}
}

type tickFunc func(Cycle)

func (f tickFunc) Tick(now Cycle) { f(now) }

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Register(tickFunc(func(Cycle) { n++ }))
	ran, ok := k.RunUntil(func() bool { return n >= 7 }, 100)
	if !ok {
		t.Fatal("RunUntil should have satisfied the predicate")
	}
	if ran != 7 {
		t.Fatalf("ran %d cycles, want 7", ran)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	ran, ok := k.RunUntil(func() bool { return false }, 50)
	if ok {
		t.Fatal("predicate can never be true")
	}
	if ran != 50 {
		t.Fatalf("ran %d cycles, want horizon 50", ran)
	}
	if k.Now() != 50 {
		t.Fatalf("kernel at cycle %d after horizon run, want 50", k.Now())
	}
}

// RunUntil must not step once the predicate holds, and a predicate that
// turns true exactly at the horizon is still reported as done.
func TestRunUntilDoneFiresWithoutStepping(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Register(tickFunc(func(Cycle) { n++ }))
	ran, ok := k.RunUntil(func() bool { return true }, 100)
	if !ok || ran != 0 || n != 0 {
		t.Fatalf("ran=%d ok=%v ticks=%d, want 0/true/0", ran, ok, n)
	}

	ran, ok = k.RunUntil(func() bool { return n >= 5 }, 5)
	if !ok {
		t.Fatal("predicate satisfied exactly at the horizon must report done")
	}
	if ran != 5 || n != 5 {
		t.Fatalf("ran=%d ticks=%d, want 5/5", ran, n)
	}
}

// Main-phase components all tick before any post-phase component,
// regardless of the order Register and RegisterPost were interleaved in;
// within a phase, registration order is preserved.
func TestInterleavedRegisterKeepsPhaseOrder(t *testing.T) {
	k := NewKernel()
	order := []string{}
	rec := func(name string) tickFunc {
		return func(Cycle) { order = append(order, name) }
	}
	k.Register(rec("m1"))
	k.RegisterPost(rec("p1"))
	k.Register(rec("m2"))
	k.RegisterPost(rec("p2"))
	k.Register(rec("m3"))
	k.Step()
	want := []string{"m1", "m2", "m3", "p1", "p2"}
	if len(order) != len(want) {
		t.Fatalf("tick order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
}

// toggler is an activity-tracked component: it works for burst ticks after
// every wake, then reports quiescence.
type toggler struct {
	pending int
	ticks   int
}

func (c *toggler) Tick(Cycle) {
	if c.pending > 0 {
		c.pending--
		c.ticks++
	}
}
func (c *toggler) Quiescent() bool { return c.pending == 0 }

func TestKernelSkipsQuiescentComponents(t *testing.T) {
	k := NewKernel()
	c := &toggler{pending: 3}
	w := k.Add(c)
	k.Run(10)
	if c.ticks != 3 {
		t.Fatalf("component worked %d ticks, want its 3-cycle burst", c.ticks)
	}
	if k.ActiveCount() != 0 {
		t.Fatalf("%d components awake after quiescence", k.ActiveCount())
	}
	// A quiescent component must not be ticked at all (the skip is what
	// the activity tracker buys): 1 registered component x 10 cycles
	// would be 10 ticks dense; quiescence is re-checked after every tick,
	// so the 3-cycle burst costs exactly 3 executed ticks.
	if got := k.Ticks(); got != 3 {
		t.Fatalf("kernel executed %d component ticks, want 3", got)
	}

	w.Wake()
	c.pending = 2
	k.Run(5)
	if c.ticks != 5 {
		t.Fatalf("woken component worked %d ticks total, want 5", c.ticks)
	}
}

// The zero Waker is a no-op so components can run outside a kernel.
func TestZeroWakerIsNoop(t *testing.T) {
	var w Waker
	w.Wake()
}

// Dense mode must tick everything every cycle and still produce the same
// component-visible behaviour.
func TestDenseModeTicksEverything(t *testing.T) {
	k := NewKernel()
	k.SetDense(true)
	c := &toggler{pending: 3}
	k.Add(c)
	k.Run(10)
	if c.ticks != 3 {
		t.Fatalf("dense component worked %d ticks, want 3", c.ticks)
	}
	if got := k.Ticks(); got != 10 {
		t.Fatalf("dense kernel executed %d ticks, want 10", got)
	}
}

// WakeShard must revive exactly the components tagged with that shard —
// main and post phase alike — and leave the other shards' entries asleep,
// because a concurrently running worker may own them.
func TestWakeShardWakesOnlyItsShard(t *testing.T) {
	k := NewKernel()
	k.SetShards(2)
	defer k.Close()
	mk := func(shard int, post bool) *toggler {
		k.SetShard(shard)
		c := &toggler{pending: 1}
		if post {
			k.AddPost(c)
		} else {
			k.Add(c)
		}
		return c
	}
	m0, p0 := mk(0, false), mk(0, true)
	m1, p1 := mk(1, false), mk(1, true)

	k.Run(3)
	if k.ActiveCount() != 0 {
		t.Fatalf("%d components awake after the initial burst drained", k.ActiveCount())
	}
	for _, c := range []*toggler{m0, p0, m1, p1} {
		c.pending = 1
	}

	k.WakeShard(1)
	if k.ActiveCount() != 2 {
		t.Fatalf("WakeShard(1) left %d components awake, want shard 1's 2", k.ActiveCount())
	}
	k.Run(3)
	if m1.ticks != 2 || p1.ticks != 2 {
		t.Fatalf("shard 1 worked %d/%d ticks after its wake, want 2/2", m1.ticks, p1.ticks)
	}
	if m0.ticks != 1 || p0.ticks != 1 {
		t.Fatalf("shard 0 worked %d/%d ticks while asleep, want 1/1 (untouched)", m0.ticks, p0.ticks)
	}

	k.WakeShard(0)
	k.Run(3)
	if m0.ticks != 2 || p0.ticks != 2 {
		t.Fatalf("shard 0 worked %d/%d ticks after its wake, want 2/2", m0.ticks, p0.ticks)
	}
}

// A sharded kernel must execute the same component ticks as the sequential
// engine: same per-component work, same executed-tick total, and the same
// quiescence state afterwards.
func TestShardedKernelMatchesSequential(t *testing.T) {
	build := func(k *Kernel, shards int) []*toggler {
		cs := make([]*toggler, 6)
		for i := range cs {
			if shards > 1 {
				k.SetShard(i * shards / len(cs))
			}
			// Uneven bursts so the shards finish draining at different
			// cycles and the skip accounting is exercised.
			cs[i] = &toggler{pending: (i*3)%5 + 1}
			k.Add(cs[i])
		}
		return cs
	}
	seq := NewKernel()
	ref := build(seq, 1)
	seq.Run(8)

	for _, shards := range []int{2, 3} {
		par := NewKernel()
		par.SetShards(shards)
		got := build(par, shards)
		par.Run(8)
		par.Close()
		for i := range ref {
			if got[i].ticks != ref[i].ticks {
				t.Fatalf("shards=%d: component %d worked %d ticks, sequential worked %d",
					shards, i, got[i].ticks, ref[i].ticks)
			}
		}
		if par.Ticks() != seq.Ticks() {
			t.Fatalf("shards=%d: kernel executed %d ticks, sequential executed %d",
				shards, par.Ticks(), seq.Ticks())
		}
		if par.ActiveCount() != seq.ActiveCount() {
			t.Fatalf("shards=%d: %d components awake, sequential has %d",
				shards, par.ActiveCount(), seq.ActiveCount())
		}
	}
}

// Epilogues run once per Step with the pre-advance cycle value, in every
// engine mode — they are where the circuit layer's deferred operations and
// the network's boundary flushes live, so a mode that skipped them would
// diverge from the sequential engine.
func TestEpilogueRunsEveryCycleInAllModes(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		dense  bool
	}{{"sequential", 1, false}, {"dense", 1, true}, {"sharded", 2, false}} {
		k := NewKernel()
		k.SetShards(tc.shards)
		k.SetDense(tc.dense)
		var seen []Cycle
		k.AddEpilogue(func(now Cycle) { seen = append(seen, now) })
		k.Add(&toggler{pending: 1})
		k.SetShard(tc.shards - 1)
		k.AddPost(&toggler{pending: 1})
		k.Run(4)
		k.Close()
		if len(seen) != 4 {
			t.Fatalf("%s: epilogue ran %d times over 4 cycles", tc.name, len(seen))
		}
		for i, c := range seen {
			if c != Cycle(i) {
				t.Fatalf("%s: epilogue saw cycle %d at step %d", tc.name, c, i)
			}
		}
	}
}

// The sharded kernel seals its component set at the first Step; a late
// registration would silently miss the prepared step plans, so it panics
// instead. Close is idempotent and a no-op on a sequential kernel.
func TestShardedKernelSealsAndCloses(t *testing.T) {
	k := NewKernel()
	k.SetShards(2)
	k.Add(&toggler{pending: 1})
	k.SetShard(1)
	k.Add(&toggler{pending: 1})
	k.Step()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("registering after the sharded kernel stepped must panic")
			}
		}()
		k.Add(&toggler{})
	}()
	k.Close()
	k.Close() // idempotent

	seq := NewKernel()
	seq.Add(&toggler{})
	seq.Close() // no workers to stop; must not block or panic
	seq.Close()
}

// Post-phase activity tracking: an AddPost component sleeps and wakes like
// a main-phase one, and still runs after the whole main phase.
func TestAddPostActivityAndOrdering(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Register(tickFunc(func(Cycle) { order = append(order, "main") }))
	c := &toggler{pending: 1}
	w := k.AddPost(c)
	k.Step()
	if len(order) != 1 || c.ticks != 1 {
		t.Fatalf("post component did not tick (order=%v ticks=%d)", order, c.ticks)
	}
	k.Run(3)
	if c.ticks != 1 {
		t.Fatalf("quiescent post component ticked %d times, want 1", c.ticks)
	}
	c.pending = 1
	w.Wake()
	k.Step()
	if c.ticks != 2 {
		t.Fatalf("woken post component ticked %d times, want 2", c.ticks)
	}
}
