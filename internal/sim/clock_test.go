package sim

import "testing"

type countTicker struct {
	n     int
	seen  []Cycle
	other *countTicker
	diffs []int
}

func (c *countTicker) Tick(now Cycle) {
	c.n++
	c.seen = append(c.seen, now)
	if c.other != nil {
		c.diffs = append(c.diffs, c.other.n-c.n)
	}
}

func TestKernelStepAdvancesClock(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("fresh kernel at cycle %d", k.Now())
	}
	k.Run(10)
	if k.Now() != 10 {
		t.Fatalf("after Run(10) at cycle %d", k.Now())
	}
}

func TestKernelTicksEveryComponentOncePerCycle(t *testing.T) {
	k := NewKernel()
	a, b := &countTicker{}, &countTicker{}
	k.Register(a)
	k.Register(b)
	k.Run(5)
	if a.n != 5 || b.n != 5 {
		t.Fatalf("tick counts a=%d b=%d, want 5", a.n, b.n)
	}
	for i, c := range a.seen {
		if c != Cycle(i) {
			t.Fatalf("a saw cycle %d at step %d", c, i)
		}
	}
}

func TestKernelPostPhaseRunsAfterMain(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Register(tickFunc(func(Cycle) { order = append(order, "main") }))
	k.RegisterPost(tickFunc(func(Cycle) { order = append(order, "post") }))
	k.Step()
	if len(order) != 2 || order[0] != "main" || order[1] != "post" {
		t.Fatalf("phase order %v", order)
	}
}

type tickFunc func(Cycle)

func (f tickFunc) Tick(now Cycle) { f(now) }

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Register(tickFunc(func(Cycle) { n++ }))
	ran, ok := k.RunUntil(func() bool { return n >= 7 }, 100)
	if !ok {
		t.Fatal("RunUntil should have satisfied the predicate")
	}
	if ran != 7 {
		t.Fatalf("ran %d cycles, want 7", ran)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	ran, ok := k.RunUntil(func() bool { return false }, 50)
	if ok {
		t.Fatal("predicate can never be true")
	}
	if ran != 50 {
		t.Fatalf("ran %d cycles, want horizon 50", ran)
	}
	if k.Now() != 50 {
		t.Fatalf("kernel at cycle %d after horizon run, want 50", k.Now())
	}
}

// RunUntil must not step once the predicate holds, and a predicate that
// turns true exactly at the horizon is still reported as done.
func TestRunUntilDoneFiresWithoutStepping(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Register(tickFunc(func(Cycle) { n++ }))
	ran, ok := k.RunUntil(func() bool { return true }, 100)
	if !ok || ran != 0 || n != 0 {
		t.Fatalf("ran=%d ok=%v ticks=%d, want 0/true/0", ran, ok, n)
	}

	ran, ok = k.RunUntil(func() bool { return n >= 5 }, 5)
	if !ok {
		t.Fatal("predicate satisfied exactly at the horizon must report done")
	}
	if ran != 5 || n != 5 {
		t.Fatalf("ran=%d ticks=%d, want 5/5", ran, n)
	}
}

// Main-phase components all tick before any post-phase component,
// regardless of the order Register and RegisterPost were interleaved in;
// within a phase, registration order is preserved.
func TestInterleavedRegisterKeepsPhaseOrder(t *testing.T) {
	k := NewKernel()
	order := []string{}
	rec := func(name string) tickFunc {
		return func(Cycle) { order = append(order, name) }
	}
	k.Register(rec("m1"))
	k.RegisterPost(rec("p1"))
	k.Register(rec("m2"))
	k.RegisterPost(rec("p2"))
	k.Register(rec("m3"))
	k.Step()
	want := []string{"m1", "m2", "m3", "p1", "p2"}
	if len(order) != len(want) {
		t.Fatalf("tick order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tick order %v, want %v", order, want)
		}
	}
}

// toggler is an activity-tracked component: it works for burst ticks after
// every wake, then reports quiescence.
type toggler struct {
	pending int
	ticks   int
}

func (c *toggler) Tick(Cycle) {
	if c.pending > 0 {
		c.pending--
		c.ticks++
	}
}
func (c *toggler) Quiescent() bool { return c.pending == 0 }

func TestKernelSkipsQuiescentComponents(t *testing.T) {
	k := NewKernel()
	c := &toggler{pending: 3}
	w := k.Add(c)
	k.Run(10)
	if c.ticks != 3 {
		t.Fatalf("component worked %d ticks, want its 3-cycle burst", c.ticks)
	}
	if k.ActiveCount() != 0 {
		t.Fatalf("%d components awake after quiescence", k.ActiveCount())
	}
	// A quiescent component must not be ticked at all (the skip is what
	// the activity tracker buys): 1 registered component x 10 cycles
	// would be 10 ticks dense; quiescence is re-checked after every tick,
	// so the 3-cycle burst costs exactly 3 executed ticks.
	if got := k.Ticks(); got != 3 {
		t.Fatalf("kernel executed %d component ticks, want 3", got)
	}

	w.Wake()
	c.pending = 2
	k.Run(5)
	if c.ticks != 5 {
		t.Fatalf("woken component worked %d ticks total, want 5", c.ticks)
	}
}

// The zero Waker is a no-op so components can run outside a kernel.
func TestZeroWakerIsNoop(t *testing.T) {
	var w Waker
	w.Wake()
}

// Dense mode must tick everything every cycle and still produce the same
// component-visible behaviour.
func TestDenseModeTicksEverything(t *testing.T) {
	k := NewKernel()
	k.SetDense(true)
	c := &toggler{pending: 3}
	k.Add(c)
	k.Run(10)
	if c.ticks != 3 {
		t.Fatalf("dense component worked %d ticks, want 3", c.ticks)
	}
	if got := k.Ticks(); got != 10 {
		t.Fatalf("dense kernel executed %d ticks, want 10", got)
	}
}

// Post-phase activity tracking: an AddPost component sleeps and wakes like
// a main-phase one, and still runs after the whole main phase.
func TestAddPostActivityAndOrdering(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Register(tickFunc(func(Cycle) { order = append(order, "main") }))
	c := &toggler{pending: 1}
	w := k.AddPost(c)
	k.Step()
	if len(order) != 1 || c.ticks != 1 {
		t.Fatalf("post component did not tick (order=%v ticks=%d)", order, c.ticks)
	}
	k.Run(3)
	if c.ticks != 1 {
		t.Fatalf("quiescent post component ticked %d times, want 1", c.ticks)
	}
	c.pending = 1
	w.Wake()
	k.Step()
	if c.ticks != 2 {
		t.Fatalf("woken post component ticked %d times, want 2", c.ticks)
	}
}
