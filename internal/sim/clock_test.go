package sim

import "testing"

type countTicker struct {
	n     int
	seen  []Cycle
	other *countTicker
	diffs []int
}

func (c *countTicker) Tick(now Cycle) {
	c.n++
	c.seen = append(c.seen, now)
	if c.other != nil {
		c.diffs = append(c.diffs, c.other.n-c.n)
	}
}

func TestKernelStepAdvancesClock(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("fresh kernel at cycle %d", k.Now())
	}
	k.Run(10)
	if k.Now() != 10 {
		t.Fatalf("after Run(10) at cycle %d", k.Now())
	}
}

func TestKernelTicksEveryComponentOncePerCycle(t *testing.T) {
	k := NewKernel()
	a, b := &countTicker{}, &countTicker{}
	k.Register(a)
	k.Register(b)
	k.Run(5)
	if a.n != 5 || b.n != 5 {
		t.Fatalf("tick counts a=%d b=%d, want 5", a.n, b.n)
	}
	for i, c := range a.seen {
		if c != Cycle(i) {
			t.Fatalf("a saw cycle %d at step %d", c, i)
		}
	}
}

func TestKernelPostPhaseRunsAfterMain(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Register(tickFunc(func(Cycle) { order = append(order, "main") }))
	k.RegisterPost(tickFunc(func(Cycle) { order = append(order, "post") }))
	k.Step()
	if len(order) != 2 || order[0] != "main" || order[1] != "post" {
		t.Fatalf("phase order %v", order)
	}
}

type tickFunc func(Cycle)

func (f tickFunc) Tick(now Cycle) { f(now) }

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Register(tickFunc(func(Cycle) { n++ }))
	ran, ok := k.RunUntil(func() bool { return n >= 7 }, 100)
	if !ok {
		t.Fatal("RunUntil should have satisfied the predicate")
	}
	if ran != 7 {
		t.Fatalf("ran %d cycles, want 7", ran)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	ran, ok := k.RunUntil(func() bool { return false }, 50)
	if ok {
		t.Fatal("predicate can never be true")
	}
	if ran != 50 {
		t.Fatalf("ran %d cycles, want horizon 50", ran)
	}
}
