package sim

import (
	"fmt"
	"sort"
)

// metricKind distinguishes cumulative counters from level gauges: window
// deltas subtract counters but carry gauges at their end-of-window level.
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
)

type metric struct {
	name     string
	kind     metricKind
	counters []*int64
	gauges   []func() int64
}

func (m *metric) value() int64 {
	var v int64
	for _, p := range m.counters {
		v += *p
	}
	for _, f := range m.gauges {
		v += f()
	}
	return v
}

// Registry maps stable metric names to the counters and gauges components
// registered once at construction. Components keep owning their plain
// int64 fields — the registry only holds pointers — so the hot simulation
// paths never pay for instrumentation; reading happens exclusively at
// snapshot time.
//
// Several registrations under one name sum in snapshots: the 64 L1
// controllers each register their own hit counter under "l1/hits" and the
// registry aggregates them. Names are slash-scoped by layer:
// "core/retired", "l1/hits", "noc/link_flits", "circ/built",
// "kernel/active".
type Registry struct {
	byName  map[string]int
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]int{}} }

func (r *Registry) slot(name string, kind metricKind) *metric {
	if i, ok := r.byName[name]; ok {
		m := &r.metrics[i]
		if m.kind != kind {
			panic(fmt.Sprintf("sim: metric %q registered as both counter and gauge", name))
		}
		return m
	}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metric{name: name, kind: kind})
	return &r.metrics[len(r.metrics)-1]
}

// Counter registers the cumulative counter at p under name. Registering
// several pointers under the same name sums them in snapshots.
func (r *Registry) Counter(name string, p *int64) {
	m := r.slot(name, counterKind)
	m.counters = append(m.counters, p)
}

// Gauge registers a level metric computed on demand; same-name gauges sum.
func (r *Registry) Gauge(name string, f func() int64) {
	m := r.slot(name, gaugeKind)
	m.gauges = append(m.gauges, f)
}

// Names returns every registered metric name in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.metrics))
	for i := range r.metrics {
		out[i] = r.metrics[i].name
	}
	return out
}

// Value reads one metric's current aggregate (0 for unknown names).
func (r *Registry) Value(name string) int64 {
	if i, ok := r.byName[name]; ok {
		return r.metrics[i].value()
	}
	return 0
}

// Snapshot reads every metric at cycle at.
func (r *Registry) Snapshot(at Cycle) Snapshot {
	s := Snapshot{At: at, Vals: make(map[string]int64, len(r.metrics))}
	for i := range r.metrics {
		s.Vals[r.metrics[i].name] = r.metrics[i].value()
	}
	return s
}

// Delta builds the window view between two snapshots: counters are
// differenced, gauges keep cur's level. The result's At is cur.At.
func (r *Registry) Delta(cur, prev Snapshot) Snapshot {
	d := Snapshot{At: cur.At, Vals: make(map[string]int64, len(cur.Vals))}
	for i := range r.metrics {
		m := &r.metrics[i]
		v := cur.Vals[m.name]
		if m.kind == counterKind {
			v -= prev.Vals[m.name]
		}
		d.Vals[m.name] = v
	}
	return d
}

// Snapshot is a point-in-time (or, after Delta, per-window) reading of
// every registered metric.
type Snapshot struct {
	At   Cycle
	Vals map[string]int64
}

// Value returns one metric (0 for unknown names), so report code never
// needs existence checks.
func (s Snapshot) Value(name string) int64 { return s.Vals[name] }

// Keys returns the snapshot's metric names in sorted order — the stable
// iteration order wire formats (the service's /metrics endpoint, JSON
// progress events) rely on, since Vals itself is an unordered map.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s.Vals))
	for k := range s.Vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Sampler turns a registry into an interval time series: Poll it once per
// cycle and it records one windowed Delta snapshot per SampleEvery cycles.
type Sampler struct {
	reg   *Registry
	every Cycle
	next  Cycle
	prev  Snapshot
	out   []Snapshot

	// OnWindow, when non-nil, observes every recorded window right after
	// it is appended to the series. It runs on the polling goroutine (the
	// simulation loop) — observers that hand the snapshot to another
	// goroutine must do so through their own synchronization.
	OnWindow func(Snapshot)
}

// NewSampler starts sampling windows of the given length beginning at
// start; the baseline snapshot is taken immediately.
func NewSampler(reg *Registry, every, start Cycle) *Sampler {
	if every <= 0 {
		panic("sim: sampler window must be positive")
	}
	return &Sampler{reg: reg, every: every, next: start + every, prev: reg.Snapshot(start)}
}

// Poll records a window if now reached its boundary. Call it after every
// kernel step with the kernel's (already advanced) cycle.
func (s *Sampler) Poll(now Cycle) {
	for now >= s.next {
		cur := s.reg.Snapshot(s.next)
		s.record(s.reg.Delta(cur, s.prev))
		s.prev = cur
		s.next += s.every
	}
}

// Flush closes the final, possibly partial window at now.
func (s *Sampler) Flush(now Cycle) {
	if now > s.prev.At {
		cur := s.reg.Snapshot(now)
		s.record(s.reg.Delta(cur, s.prev))
		s.prev = cur
		s.next = now + s.every
	}
}

func (s *Sampler) record(w Snapshot) {
	s.out = append(s.out, w)
	if s.OnWindow != nil {
		s.OnWindow(w)
	}
}

// Samples returns the recorded windows; each snapshot holds that window's
// counter deltas and end-of-window gauge levels, with At at the window
// end.
func (s *Sampler) Samples() []Snapshot { return s.out }
