package sim

import "testing"

func TestRegistryCountersSumAcrossRegistrations(t *testing.T) {
	reg := NewRegistry()
	var a, b int64 = 3, 4
	reg.Counter("l1/hits", &a)
	reg.Counter("l1/hits", &b)
	if v := reg.Value("l1/hits"); v != 7 {
		t.Fatalf("summed counter = %d, want 7", v)
	}
	a += 10
	if v := reg.Value("l1/hits"); v != 17 {
		t.Fatalf("registry must read live fields: got %d, want 17", v)
	}
	if v := reg.Value("no/such"); v != 0 {
		t.Fatalf("unknown metric = %d, want 0", v)
	}
}

func TestRegistryGaugeAndKindConflict(t *testing.T) {
	reg := NewRegistry()
	level := int64(5)
	reg.Gauge("circ/open", func() int64 { return level })
	if v := reg.Value("circ/open"); v != 5 {
		t.Fatalf("gauge = %d, want 5", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge name as a counter must panic")
		}
	}()
	var c int64
	reg.Counter("circ/open", &c)
}

func TestSnapshotDeltaSubtractsCountersKeepsGauges(t *testing.T) {
	reg := NewRegistry()
	var flits int64
	level := int64(0)
	reg.Counter("noc/link_flits", &flits)
	reg.Gauge("circ/open", func() int64 { return level })

	prev := reg.Snapshot(0)
	flits, level = 100, 9
	cur := reg.Snapshot(50)
	d := reg.Delta(cur, prev)
	if d.At != 50 {
		t.Fatalf("delta At = %d, want 50", d.At)
	}
	if d.Value("noc/link_flits") != 100 {
		t.Fatalf("counter delta = %d, want 100", d.Value("noc/link_flits"))
	}
	if d.Value("circ/open") != 9 {
		t.Fatalf("gauge in delta = %d, want the level 9", d.Value("circ/open"))
	}
}

func TestSamplerWindowsPartitionTheRun(t *testing.T) {
	reg := NewRegistry()
	var ops int64
	reg.Counter("core/retired", &ops)

	s := NewSampler(reg, 10, 0)
	for now := Cycle(1); now <= 25; now++ {
		ops += 2
		s.Poll(now)
	}
	s.Flush(25)
	ws := s.Samples()
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3 (10+10+5 cycles)", len(ws))
	}
	wantAt := []Cycle{10, 20, 25}
	wantVal := []int64{20, 20, 10}
	var total int64
	for i, w := range ws {
		if w.At != wantAt[i] || w.Value("core/retired") != wantVal[i] {
			t.Fatalf("window %d = (at=%d, v=%d), want (at=%d, v=%d)",
				i, w.At, w.Value("core/retired"), wantAt[i], wantVal[i])
		}
		total += w.Value("core/retired")
	}
	if total != ops {
		t.Fatalf("windows sum to %d, want the full counter %d", total, ops)
	}
	// A second flush at the same cycle must not add an empty window.
	s.Flush(25)
	if len(s.Samples()) != 3 {
		t.Fatalf("idempotent flush added windows: %d", len(s.Samples()))
	}
}

func TestRegistryNamesKeepRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	var a, b int64
	reg.Counter("z/last", &a)
	reg.Counter("a/first", &b)
	reg.Counter("z/last", &b) // re-registration must not duplicate
	names := reg.Names()
	if len(names) != 2 || names[0] != "z/last" || names[1] != "a/first" {
		t.Fatalf("names = %v, want [z/last a/first]", names)
	}
}
