// Package sim provides the cycle-driven simulation kernel shared by every
// model in the repository: a global clock, deterministic random numbers,
// and the Ticker contract components implement to advance one cycle.
package sim

// RNG is a small, fast, deterministic xorshift64* generator.
//
// The simulator must be bit-reproducible across runs and platforms, so all
// stochastic decisions (workload address streams, mix shuffles) draw from
// explicitly seeded RNG instances instead of math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed odd constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {0, 1, 2, ...}), clamped to max. It is used for
// burst lengths and inter-miss gaps in the synthetic workloads.
func (r *RNG) Geometric(p float64, max int) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return max
	}
	n := 0
	for n < max && !r.Bool(p) {
		n++
	}
	return n
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split derives an independent child generator. Children seeded from
// distinct draws of the parent never share a stream in practice.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() | 1)
}
