package sim

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotKeysStableAndSorted: Snapshot.Keys must return the same
// sorted name list no matter the registration order or how often it is
// asked — the /metrics endpoint renders directly from it, and a text
// format that reshuffles between scrapes is useless to diff.
func TestSnapshotKeysStableAndSorted(t *testing.T) {
	var a, b, c int64
	fwd := NewRegistry()
	fwd.Counter("serve/cache_hits", &a)
	fwd.Counter("noc/link_flits", &b)
	fwd.Gauge("kernel/active", func() int64 { return c })

	rev := NewRegistry()
	rev.Gauge("kernel/active", func() int64 { return c })
	rev.Counter("noc/link_flits", &b)
	rev.Counter("serve/cache_hits", &a)

	want := []string{"kernel/active", "noc/link_flits", "serve/cache_hits"}
	if got := fwd.Snapshot(0).Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	if got := rev.Snapshot(0).Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registration order leaked into keys: %v", got)
	}
	s := fwd.Snapshot(7)
	if !reflect.DeepEqual(s.Keys(), s.Keys()) {
		t.Fatalf("repeated Keys calls disagree")
	}
}

// countingComponent steps a counter every tick and quiesces after limit.
type countingComponent struct {
	ticks int64
	limit int64
}

func (c *countingComponent) Tick(Cycle)      { c.ticks++ }
func (c *countingComponent) Quiescent() bool { return c.ticks >= c.limit }

// TestSnapshotWhileSteppingRace drives a kernel whose components mutate
// registered counters while other goroutines continuously read snapshots.
// Plain counter fields are owned by the simulation goroutine, so the
// supported concurrent-read path is a gauge over an atomic — exactly how
// the service exports queue/cache/worker levels. Run under -race this
// proves that pattern (and the registry's own internals) are data-race
// free while a simulation is stepping.
func TestSnapshotWhileSteppingRace(t *testing.T) {
	var published atomic.Int64
	reg := NewRegistry()
	reg.Gauge("serve/ticks", func() int64 { return published.Load() })

	comp := &countingComponent{limit: 50_000}
	k := NewKernel()
	k.Add(comp)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64 = -1
			for {
				select {
				case <-done:
					return
				default:
				}
				s := reg.Snapshot(0)
				v := s.Value("serve/ticks")
				if v < last {
					t.Errorf("snapshot went backwards: %d after %d", v, last)
					return
				}
				last = v
				for range s.Keys() {
				}
			}
		}()
	}

	for !comp.Quiescent() {
		k.Step()
		published.Store(comp.ticks)
	}
	close(done)
	wg.Wait()

	if got := reg.Value("serve/ticks"); got != comp.limit {
		t.Fatalf("final gauge = %d, want %d", got, comp.limit)
	}
}

// TestSamplerOnWindowObservesEveryWindow: the streaming hook must see the
// same windows, in the same order, that land in Samples().
func TestSamplerOnWindowObservesEveryWindow(t *testing.T) {
	var flits int64
	reg := NewRegistry()
	reg.Counter("noc/link_flits", &flits)

	s := NewSampler(reg, 10, 0)
	var streamed []Snapshot
	s.OnWindow = func(w Snapshot) { streamed = append(streamed, w) }

	for now := Cycle(1); now <= 25; now++ {
		flits++
		s.Poll(now)
	}
	s.Flush(25)

	if !reflect.DeepEqual(streamed, s.Samples()) {
		t.Fatalf("streamed windows diverge from the recorded series:\n%v\nvs\n%v",
			streamed, s.Samples())
	}
	if len(streamed) != 3 {
		t.Fatalf("got %d windows, want 3 (two full + one partial)", len(streamed))
	}
}
