// Package cpu models the chip's processors: in-order, IPC-1, single
// threaded cores (Table 2: UltraSPARC III Plus class) that execute a
// synthetic instruction stream and block on L1 misses. The cores only
// matter to the NoC through the memory-request stream they generate, so
// the model retires one operation per cycle and stalls on misses.
package cpu

import (
	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/sim"
)

// OpKind classifies one retired operation.
type OpKind uint8

const (
	// OpCompute occupies the pipeline for a cycle without touching memory.
	OpCompute OpKind = iota
	// OpLoad reads memory.
	OpLoad
	// OpStore writes memory.
	OpStore
)

// Op is one instruction of the synthetic stream.
type Op struct {
	Kind OpKind
	Addr cache.Addr
}

// Stream produces a core's instruction stream. Implementations must be
// deterministic for a given seed.
type Stream interface {
	Next() Op
}

// Recorder observes every operation a core consumes from its stream, at
// the cycle it is issued — the tap point the trace recorder
// (internal/tracefeed) hangs off. Implementations must confine per-call
// state to the given core: cores on different shards of the parallel
// engine record concurrently.
type Recorder interface {
	Record(core int, now sim.Cycle, op Op)
}

// Core is one in-order processor bound to its private L1.
type Core struct {
	id     int
	l1     *coherence.L1Ctrl
	stream Stream
	limit  int64

	stalled bool
	done    bool

	// recorder, when non-nil, observes each issued operation. Purely
	// passive: it never changes what the core does, so a recorded run is
	// bit-identical to an unrecorded one.
	recorder Recorder

	// doneSink fires once when the core retires its last operation; the
	// chip layer counts completions there instead of scanning every core
	// every cycle.
	doneSink func()

	// Retired counts completed operations; Loads/Stores/Misses and
	// StallCycles describe the memory behaviour; FinishedAt is the cycle
	// the core retired its last operation.
	Retired     int64
	Loads       int64
	Stores      int64
	Misses      int64
	StallCycles int64
	FinishedAt  sim.Cycle
}

// New binds a core to its L1 and stream; the core halts after limit
// retired operations.
func New(id int, l1 *coherence.L1Ctrl, stream Stream, limit int64) *Core {
	c := &Core{id: id, l1: l1, stream: stream, limit: limit}
	l1.SetMissHandler(c.onMissDone)
	return c
}

// Done reports whether the core has retired its whole stream.
func (c *Core) Done() bool { return c.done }

// SetDoneSink installs a callback invoked exactly once per done-transition.
func (c *Core) SetDoneSink(fn func()) { c.doneSink = fn }

// SetRecorder attaches a passive operation recorder to the core.
func (c *Core) SetRecorder(r Recorder) { c.recorder = r }

// Quiescent reports whether the core's next Tick is a pure no-op. Only a
// finished core sleeps: a stalled core burns a StallCycles counter every
// cycle, and a running core retires work.
func (c *Core) Quiescent() bool { return c.done }

// Describe registers the core's counters with reg under the core/ scope;
// same-name registrations sum across the chip's cores.
func (c *Core) Describe(reg *sim.Registry) {
	reg.Counter("core/retired", &c.Retired)
	reg.Counter("core/loads", &c.Loads)
	reg.Counter("core/stores", &c.Stores)
	reg.Counter("core/misses", &c.Misses)
	reg.Counter("core/stall_cycles", &c.StallCycles)
}

// ResetStats zeroes the core's counters after a warm-up phase and extends
// its retirement budget by limit additional operations.
func (c *Core) ResetStats(limit int64) {
	c.Loads, c.Stores, c.Misses, c.StallCycles = 0, 0, 0, 0
	c.limit = c.Retired + limit
	c.done = false
}

func (c *Core) onMissDone(now sim.Cycle) {
	c.stalled = false
	c.retire(now) // the memory operation completes with its miss
}

func (c *Core) retire(now sim.Cycle) {
	c.Retired++
	if c.Retired >= c.limit {
		c.done = true
		c.FinishedAt = now
		if c.doneSink != nil {
			c.doneSink()
		}
	}
}

// Tick advances the core one cycle: retire one operation, or burn a stall
// cycle waiting for an outstanding miss.
func (c *Core) Tick(now sim.Cycle) {
	if c.done {
		return
	}
	if c.stalled {
		c.StallCycles++
		return
	}
	op := c.stream.Next()
	if c.recorder != nil {
		c.recorder.Record(c.id, now, op)
	}
	switch op.Kind {
	case OpCompute:
		c.retire(now)
	case OpLoad, OpStore:
		write := op.Kind == OpStore
		if write {
			c.Stores++
		} else {
			c.Loads++
		}
		if c.l1.Access(op.Addr, write, now) {
			c.retire(now)
			return
		}
		c.Misses++
		c.stalled = true
		c.StallCycles++
	}
}
