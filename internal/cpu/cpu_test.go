package cpu

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/core"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// scriptStream replays a fixed op list, then computes forever.
type scriptStream struct {
	ops []Op
	i   int
}

func (s *scriptStream) Next() Op {
	if s.i < len(s.ops) {
		op := s.ops[s.i]
		s.i++
		return op
	}
	return Op{Kind: OpCompute}
}

func testSystem(t *testing.T) (*coherence.System, *sim.Kernel) {
	t.Helper()
	sys := coherence.NewSystem(mesh.New(2, 2), core.Options{}, 4)
	k := sim.NewKernel()
	k.Register(sys)
	return sys, k
}

func TestComputeOpsRetireOnePerCycle(t *testing.T) {
	sys, k := testSystem(t)
	st := &scriptStream{}
	c := New(0, sys.L1s[0], st, 10)
	k.Register(tickOne{c})
	k.Run(10)
	if !c.Done() || c.Retired != 10 {
		t.Fatalf("retired %d done=%v after 10 cycles", c.Retired, c.Done())
	}
	if c.FinishedAt != 9 {
		t.Fatalf("finished at %d, want 9", c.FinishedAt)
	}
	if c.StallCycles != 0 {
		t.Fatalf("pure compute stalled %d cycles", c.StallCycles)
	}
}

type tickOne struct{ c *Core }

func (tk tickOne) Tick(now sim.Cycle) { tk.c.Tick(now) }

func TestMissStallsAndResumes(t *testing.T) {
	sys, k := testSystem(t)
	st := &scriptStream{ops: []Op{
		{Kind: OpLoad, Addr: 3 * 64}, // remote bank: a real miss
		{Kind: OpCompute},
	}}
	c := New(0, sys.L1s[0], st, 2)
	k.Register(tickOne{c})
	k.RunUntil(func() bool { return c.Done() }, 10000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Misses != 1 || c.Loads != 1 {
		t.Fatalf("misses=%d loads=%d", c.Misses, c.Loads)
	}
	if c.StallCycles == 0 {
		t.Fatal("a miss must stall the core")
	}
	// Second access to the same line hits.
	st2 := &scriptStream{ops: []Op{{Kind: OpLoad, Addr: 3 * 64}}}
	c2 := New(1, sys.L1s[1], st2, 1)
	_ = c2
}

func TestHitDoesNotStall(t *testing.T) {
	sys, k := testSystem(t)
	// Pre-warm the line into L1 and L2.
	sys.Prefill(cache.Addr(3*64), 0, true)
	st := &scriptStream{ops: []Op{
		{Kind: OpLoad, Addr: 3 * 64},
		{Kind: OpStore, Addr: 3 * 64},
	}}
	c := New(0, sys.L1s[0], st, 2)
	k.Register(tickOne{c})
	k.Run(2)
	if !c.Done() {
		t.Fatalf("two hits should retire in two cycles (retired %d)", c.Retired)
	}
	if c.StallCycles != 0 || c.Misses != 0 {
		t.Fatalf("hits stalled: stalls=%d misses=%d", c.StallCycles, c.Misses)
	}
	if c.Stores != 1 || c.Loads != 1 {
		t.Fatalf("loads=%d stores=%d", c.Loads, c.Stores)
	}
}

func TestResetStatsExtendsBudget(t *testing.T) {
	sys, k := testSystem(t)
	c := New(0, sys.L1s[0], &scriptStream{}, 5)
	k.Register(tickOne{c})
	k.Run(5)
	if !c.Done() {
		t.Fatal("should be done after 5")
	}
	c.ResetStats(3)
	if c.Done() {
		t.Fatal("reset should reopen the budget")
	}
	k.Run(3)
	if !c.Done() || c.Retired != 8 {
		t.Fatalf("retired %d, want 8", c.Retired)
	}
}

func TestDoneCoreIgnoresTicks(t *testing.T) {
	sys, k := testSystem(t)
	c := New(0, sys.L1s[0], &scriptStream{}, 1)
	k.Register(tickOne{c})
	k.Run(10)
	if c.Retired != 1 {
		t.Fatalf("done core kept retiring: %d", c.Retired)
	}
}

// opLog records every operation the core consumes, with its cycle.
type opLog struct {
	cores  []int
	cycles []sim.Cycle
	ops    []Op
}

func (l *opLog) Record(core int, now sim.Cycle, op Op) {
	l.cores = append(l.cores, core)
	l.cycles = append(l.cycles, now)
	l.ops = append(l.ops, op)
}

func TestRecorderSeesEveryConsumedOp(t *testing.T) {
	sys, k := testSystem(t)
	st := &scriptStream{ops: []Op{
		{Kind: OpCompute},
		{Kind: OpLoad, Addr: 3 * 64},  // remote bank: a real miss, stalls
		{Kind: OpStore, Addr: 3 * 64}, // now cached: hits
	}}
	c := New(7, sys.L1s[0], st, 4)
	rec := &opLog{}
	c.SetRecorder(rec)
	done := 0
	c.SetDoneSink(func() { done++ })
	reg := sim.NewRegistry()
	c.Describe(reg)
	k.Register(tickOne{c})
	k.RunUntil(func() bool { return c.Done() }, 10000)
	if !c.Done() {
		t.Fatalf("core never finished (retired %d)", c.Retired)
	}
	if !c.Quiescent() {
		t.Fatal("done core must be quiescent")
	}
	if done != 1 {
		t.Fatalf("done sink fired %d times, want exactly 1", done)
	}
	// The recorder saw one entry per consumed op — the stall cycles the
	// miss burned consume nothing and record nothing.
	if len(rec.ops) != 4 {
		t.Fatalf("recorded %d ops, want 4: %+v", len(rec.ops), rec.ops)
	}
	if int64(len(rec.ops)) != c.Retired {
		t.Fatalf("recorded %d ops but retired %d", len(rec.ops), c.Retired)
	}
	want := []OpKind{OpCompute, OpLoad, OpStore, OpCompute}
	for i, k := range want {
		if rec.ops[i].Kind != k {
			t.Fatalf("op %d kind %v, want %v", i, rec.ops[i].Kind, k)
		}
		if rec.cores[i] != 7 {
			t.Fatalf("op %d recorded for core %d, want 7", i, rec.cores[i])
		}
	}
	if c.StallCycles == 0 {
		t.Fatal("the remote-bank load should have stalled")
	}
	for i := 1; i < len(rec.cycles); i++ {
		if rec.cycles[i] <= rec.cycles[i-1] {
			t.Fatalf("recorded cycles not increasing: %v", rec.cycles)
		}
	}
	if got := reg.Snapshot(k.Now()).Value("core/retired"); got != c.Retired {
		t.Fatalf("registry sees %d retired, core says %d", got, c.Retired)
	}
}
