package cpu

import (
	"testing"

	"reactivenoc/internal/cache"
	"reactivenoc/internal/coherence"
	"reactivenoc/internal/core"
	"reactivenoc/internal/mesh"
	"reactivenoc/internal/sim"
)

// scriptStream replays a fixed op list, then computes forever.
type scriptStream struct {
	ops []Op
	i   int
}

func (s *scriptStream) Next() Op {
	if s.i < len(s.ops) {
		op := s.ops[s.i]
		s.i++
		return op
	}
	return Op{Kind: OpCompute}
}

func testSystem(t *testing.T) (*coherence.System, *sim.Kernel) {
	t.Helper()
	sys := coherence.NewSystem(mesh.New(2, 2), core.Options{}, 4)
	k := sim.NewKernel()
	k.Register(sys)
	return sys, k
}

func TestComputeOpsRetireOnePerCycle(t *testing.T) {
	sys, k := testSystem(t)
	st := &scriptStream{}
	c := New(0, sys.L1s[0], st, 10)
	k.Register(tickOne{c})
	k.Run(10)
	if !c.Done() || c.Retired != 10 {
		t.Fatalf("retired %d done=%v after 10 cycles", c.Retired, c.Done())
	}
	if c.FinishedAt != 9 {
		t.Fatalf("finished at %d, want 9", c.FinishedAt)
	}
	if c.StallCycles != 0 {
		t.Fatalf("pure compute stalled %d cycles", c.StallCycles)
	}
}

type tickOne struct{ c *Core }

func (tk tickOne) Tick(now sim.Cycle) { tk.c.Tick(now) }

func TestMissStallsAndResumes(t *testing.T) {
	sys, k := testSystem(t)
	st := &scriptStream{ops: []Op{
		{Kind: OpLoad, Addr: 3 * 64}, // remote bank: a real miss
		{Kind: OpCompute},
	}}
	c := New(0, sys.L1s[0], st, 2)
	k.Register(tickOne{c})
	k.RunUntil(func() bool { return c.Done() }, 10000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Misses != 1 || c.Loads != 1 {
		t.Fatalf("misses=%d loads=%d", c.Misses, c.Loads)
	}
	if c.StallCycles == 0 {
		t.Fatal("a miss must stall the core")
	}
	// Second access to the same line hits.
	st2 := &scriptStream{ops: []Op{{Kind: OpLoad, Addr: 3 * 64}}}
	c2 := New(1, sys.L1s[1], st2, 1)
	_ = c2
}

func TestHitDoesNotStall(t *testing.T) {
	sys, k := testSystem(t)
	// Pre-warm the line into L1 and L2.
	sys.Prefill(cache.Addr(3*64), 0, true)
	st := &scriptStream{ops: []Op{
		{Kind: OpLoad, Addr: 3 * 64},
		{Kind: OpStore, Addr: 3 * 64},
	}}
	c := New(0, sys.L1s[0], st, 2)
	k.Register(tickOne{c})
	k.Run(2)
	if !c.Done() {
		t.Fatalf("two hits should retire in two cycles (retired %d)", c.Retired)
	}
	if c.StallCycles != 0 || c.Misses != 0 {
		t.Fatalf("hits stalled: stalls=%d misses=%d", c.StallCycles, c.Misses)
	}
	if c.Stores != 1 || c.Loads != 1 {
		t.Fatalf("loads=%d stores=%d", c.Loads, c.Stores)
	}
}

func TestResetStatsExtendsBudget(t *testing.T) {
	sys, k := testSystem(t)
	c := New(0, sys.L1s[0], &scriptStream{}, 5)
	k.Register(tickOne{c})
	k.Run(5)
	if !c.Done() {
		t.Fatal("should be done after 5")
	}
	c.ResetStats(3)
	if c.Done() {
		t.Fatal("reset should reopen the budget")
	}
	k.Run(3)
	if !c.Done() || c.Retired != 8 {
		t.Fatalf("retired %d, want 8", c.Retired)
	}
}

func TestDoneCoreIgnoresTicks(t *testing.T) {
	sys, k := testSystem(t)
	c := New(0, sys.L1s[0], &scriptStream{}, 1)
	k.Register(tickOne{c})
	k.Run(10)
	if c.Retired != 1 {
		t.Fatalf("done core kept retiring: %d", c.Retired)
	}
}
