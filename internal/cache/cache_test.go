package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{SizeBytes: 1024, Ways: 4, LineBytes: 64, HitLatency: 2}
}

func TestGeometry(t *testing.T) {
	l1 := L1Config()
	if l1.Sets() != 128 {
		t.Fatalf("L1 sets %d, want 128", l1.Sets())
	}
	l2 := L2BankConfig()
	if l2.Sets() != 1024 {
		t.Fatalf("L2 sets %d, want 1024", l2.Sets())
	}
	if l1.Block(0x12345) != 0x12340 {
		t.Fatalf("Block alignment wrong: %#x", l1.Block(0x12345))
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 1024, Ways: 3, LineBytes: 64},
		{SizeBytes: 1000, Ways: 4, LineBytes: 64},
		{SizeBytes: 1024, Ways: 4, LineBytes: 48},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted: %+v", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small())
	if _, ok := c.Lookup(0x1000); ok {
		t.Fatal("empty cache hit")
	}
	v := c.Victim(0x1000)
	if v == nil || v.Valid {
		t.Fatal("no invalid victim in an empty set")
	}
	c.Fill(v, 0x1000, 2)
	l, ok := c.Lookup(0x1000)
	if !ok || l.State != 2 {
		t.Fatal("fill not visible")
	}
	// Same line, different byte offset.
	if _, ok := c.Lookup(0x103f); !ok {
		t.Fatal("offset within the line missed")
	}
	// Different line.
	if _, ok := c.Lookup(0x1040); ok {
		t.Fatal("neighbouring line hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits/misses %d/%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(small())
	v := c.Victim(0x40)
	c.Fill(v, 0x40, 1)
	h, m := c.Hits, c.Misses
	if _, ok := c.Peek(0x40); !ok {
		t.Fatal("peek missed")
	}
	if _, ok := c.Peek(0x80); ok {
		t.Fatal("peek hit a missing line")
	}
	if c.Hits != h || c.Misses != m {
		t.Fatal("peek changed counters")
	}
}

// conflictAddrs returns n addresses mapping to the same set.
func conflictAddrs(c *Cache, n int) []Addr {
	stride := Addr(c.cfg.Sets() * c.cfg.LineBytes)
	out := make([]Addr, n)
	for i := range out {
		out[i] = Addr(i+1) * stride
	}
	return out
}

func TestPLRUEvictsColdLine(t *testing.T) {
	c := New(small())
	addrs := conflictAddrs(c, 5)
	for _, a := range addrs[:4] {
		c.Fill(c.Victim(a), a, 1)
	}
	// Touch all but addrs[0]; it becomes the PLRU victim.
	for _, a := range addrs[1:4] {
		if _, ok := c.Lookup(a); !ok {
			t.Fatal("expected hit")
		}
	}
	v := c.Victim(addrs[4])
	if got := c.AddrOf(v, addrs[4]); got != addrs[0] {
		t.Fatalf("PLRU victim %#x, want cold line %#x", got, addrs[0])
	}
	c.Fill(v, addrs[4], 1)
	if _, ok := c.Lookup(addrs[0]); ok {
		t.Fatal("evicted line still present")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", c.Evictions)
	}
}

func TestBusyLinesNotVictimized(t *testing.T) {
	c := New(small())
	addrs := conflictAddrs(c, 4)
	for _, a := range addrs {
		c.Fill(c.Victim(a), a, 1)
	}
	for _, a := range addrs[:3] {
		l, _ := c.Peek(a)
		l.Busy = true
	}
	v := c.Victim(Addr(5 * c.cfg.Sets() * c.cfg.LineBytes))
	if v == nil {
		t.Fatal("one way is free; victim must exist")
	}
	if got := c.AddrOf(v, addrs[3]); got != addrs[3] {
		t.Fatalf("victim %#x, want the only non-busy line %#x", got, addrs[3])
	}
	l, _ := c.Peek(addrs[3])
	l.Busy = true
	if c.Victim(Addr(5*c.cfg.Sets()*c.cfg.LineBytes)) != nil {
		t.Fatal("all ways busy: victim must be nil")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(small())
	c.Fill(c.Victim(0x40), 0x40, 3)
	c.Invalidate(0x40)
	if _, ok := c.Peek(0x40); ok {
		t.Fatal("line survived invalidation")
	}
	c.Invalidate(0x9999940) // absent: no-op
}

func TestAddrOfRoundTrip(t *testing.T) {
	c := New(L1Config())
	check := func(raw uint32) bool {
		a := Addr(raw) &^ 63
		v := c.Victim(a)
		if v == nil {
			return true
		}
		c.Fill(v, a, 1)
		return c.AddrOf(v, a) == a
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDirectoryFieldsResetOnFill(t *testing.T) {
	c := New(small())
	addrs := conflictAddrs(c, 5)
	for _, a := range addrs[:4] {
		c.Fill(c.Victim(a), a, 1)
	}
	l, _ := c.Peek(addrs[0])
	l.Sharers = 0xff
	l.Owner = 3
	// Evict through the same set; the reused way must come back clean.
	for i := 0; i < 4; i++ {
		v := c.Victim(addrs[4])
		c.Fill(v, addrs[4]+Addr(i)*64*Addr(c.cfg.Sets()), 1)
		if v.Sharers != 0 || v.Owner != -1 {
			t.Fatal("directory fields not reset on fill")
		}
	}
}

// TestPLRUFullCoverage: filling W conflicting lines and touching them in
// order, repeated evictions must cycle through all ways rather than
// thrashing one.
func TestPLRUCyclesAllWays(t *testing.T) {
	c := New(small())
	addrs := conflictAddrs(c, 12)
	seen := map[Addr]bool{}
	for _, a := range addrs {
		v := c.Victim(a)
		if v.Valid {
			seen[c.AddrOf(v, a)] = true
		}
		c.Fill(v, a, 1)
	}
	if len(seen) < 4 {
		t.Fatalf("PLRU evicted only %d distinct lines over 8 evictions", len(seen))
	}
}

func TestSixteenWayPLRU(t *testing.T) {
	c := New(L2BankConfig())
	stride := Addr(c.cfg.Sets() * c.cfg.LineBytes)
	for i := 0; i < 16; i++ {
		a := Addr(i+1) * stride
		c.Fill(c.Victim(a), a, 1)
	}
	// All 16 resident.
	for i := 0; i < 16; i++ {
		if _, ok := c.Lookup(Addr(i+1) * stride); !ok {
			t.Fatalf("way %d lost", i)
		}
	}
	// 17th fill evicts exactly one.
	c.Fill(c.Victim(17*stride), 17*stride, 1)
	live := 0
	for i := 0; i < 17; i++ {
		if _, ok := c.Peek(Addr(i+1) * stride); ok {
			live++
		}
	}
	if live != 16 {
		t.Fatalf("%d lines live after 17 fills into one 16-way set", live)
	}
}
