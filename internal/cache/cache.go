// Package cache provides the set-associative cache arrays of the modelled
// chip: 32 KB 4-way L1s and 1 MB 16-way L2 banks with 64-byte lines and
// tree-PLRU replacement (Table 2). The coherence protocol lives in
// internal/coherence; this package only manages tags, state bytes and the
// directory fields embedded in L2 lines ("the directory, which is included
// in the L2 cache bank").
package cache

import (
	"fmt"
	"math/bits"

	"reactivenoc/internal/sim"
)

// Addr is a physical byte address.
type Addr = uint64

// Config describes one cache's geometry. For a bank of an interleaved
// cache, Interleave is the bank count and InterleaveIndex this bank's
// residue: the bank-select bits are stripped before set indexing, so the
// bank's sets see a dense local line space.
type Config struct {
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency sim.Cycle

	Interleave      int
	InterleaveIndex int
}

// L1Config returns the paper's L1 geometry: 32 KB, 4-way, 64 B lines,
// 2-cycle hit.
func L1Config() Config {
	return Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 2}
}

// L2BankConfig returns the paper's per-bank L2 geometry: 1 MB, 16-way,
// 64 B lines, 7-cycle hit.
func L2BankConfig() Config {
	return Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 7}
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	if c.Ways&(c.Ways-1) != 0 {
		return fmt.Errorf("cache: way count %d not a power of two", c.Ways)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.Interleave < 0 || (c.Interleave > 1 &&
		(c.InterleaveIndex < 0 || c.InterleaveIndex >= c.Interleave)) {
		return fmt.Errorf("cache: invalid interleave %d/%d", c.InterleaveIndex, c.Interleave)
	}
	return nil
}

// Block returns the line-aligned address containing a.
func (c Config) Block(a Addr) Addr { return a &^ Addr(c.LineBytes-1) }

// Line is one cache line's bookkeeping. State is owned by the coherence
// protocol; Sharers and Owner embed the directory for L2 banks.
type Line struct {
	Valid bool
	Tag   uint64
	State uint8
	// Busy marks lines pinned by an in-flight transaction; the victim
	// picker never selects them.
	Busy bool

	// Directory payload (L2 banks only): bit i of Sharers set means tile
	// i's L1 holds the line in shared state; Owner >= 0 names the tile
	// holding it exclusively.
	Sharers uint64
	Owner   int16
}

type set struct {
	lines []Line
	// plru is the tree-PLRU bit vector: bit i is the direction flag of
	// internal node i (0 = left subtree is older).
	plru uint64
}

// Cache is one set-associative array.
type Cache struct {
	cfg      Config
	sets     []set
	setShift uint
	setMask  uint64
	div      uint64 // interleave divisor (1 for private caches)
	rem      uint64 // this bank's residue

	// Access statistics.
	Hits, Misses, Evictions int64
}

// New builds a cache; it panics on invalid geometry (configs are static).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	c.sets = make([]set, cfg.Sets())
	// All sets share one backing array: building a chip instantiates
	// thousands of sets, and a per-set make dominated construction cost.
	backing := make([]Line, cfg.Sets()*cfg.Ways)
	// Seed Owner = -1 by doubling copies: memmove beats a per-line loop on
	// the quarter-million lines a 64-tile chip instantiates.
	backing[0].Owner = -1
	for i := 1; i < len(backing); i *= 2 {
		copy(backing[i:], backing[:i])
	}
	for i := range c.sets {
		c.sets[i].lines = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	c.setShift = uint(bits.TrailingZeros(uint(cfg.LineBytes)))
	c.setMask = uint64(cfg.Sets() - 1)
	c.div = 1
	if cfg.Interleave > 1 {
		c.div = uint64(cfg.Interleave)
		c.rem = uint64(cfg.InterleaveIndex)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// localLine maps a global address to this bank's dense line number.
func (c *Cache) localLine(a Addr) uint64 { return (a >> c.setShift) / c.div }

func (c *Cache) index(a Addr) int { return int(c.localLine(a) & c.setMask) }
func (c *Cache) tag(a Addr) uint64 {
	return c.localLine(a) >> uint(bits.TrailingZeros(uint(c.cfg.Sets())))
}

// Lookup returns the line holding a, touching PLRU state and hit counters.
func (c *Cache) Lookup(a Addr) (*Line, bool) {
	s := &c.sets[c.index(a)]
	t := c.tag(a)
	for w := range s.lines {
		if s.lines[w].Valid && s.lines[w].Tag == t {
			c.Hits++
			s.touch(w, c.cfg.Ways)
			return &s.lines[w], true
		}
	}
	c.Misses++
	return nil, false
}

// Peek returns the line holding a without touching replacement state or
// counters (used by snoop-style lookups: invalidations, forwards).
func (c *Cache) Peek(a Addr) (*Line, bool) {
	s := &c.sets[c.index(a)]
	t := c.tag(a)
	for w := range s.lines {
		if s.lines[w].Valid && s.lines[w].Tag == t {
			return &s.lines[w], true
		}
	}
	return nil, false
}

// Victim picks the fill way for address a: an invalid way if one exists,
// else the tree-PLRU victim among non-busy lines. It returns nil when every
// way is pinned by an in-flight transaction.
func (c *Cache) Victim(a Addr) *Line {
	s := &c.sets[c.index(a)]
	for w := range s.lines {
		if !s.lines[w].Valid && !s.lines[w].Busy {
			return &s.lines[w]
		}
	}
	w := s.plruVictim(c.cfg.Ways)
	if !s.lines[w].Busy {
		return &s.lines[w]
	}
	// The PLRU choice is pinned: fall back to any non-busy way.
	for w := range s.lines {
		if !s.lines[w].Busy {
			return &s.lines[w]
		}
	}
	return nil
}

// Fill installs address a into the given line (obtained from Victim),
// resetting directory fields and touching PLRU. The caller must have
// handled any eviction first.
func (c *Cache) Fill(l *Line, a Addr, state uint8) {
	if l.Valid {
		c.Evictions++
	}
	*l = Line{Valid: true, Tag: c.tag(a), State: state, Owner: -1}
	s := &c.sets[c.index(a)]
	for w := range s.lines {
		if &s.lines[w] == l {
			s.touch(w, c.cfg.Ways)
			return
		}
	}
	panic("cache: Fill with a line from another set")
}

// AddrOf reconstructs the block address stored in line l of the set that
// contains address hint (same index).
func (c *Cache) AddrOf(l *Line, hint Addr) Addr {
	idx := uint64(c.index(hint))
	shift := uint(bits.TrailingZeros(uint(c.cfg.Sets())))
	local := (l.Tag << shift) | idx
	return (local*c.div + c.rem) << c.setShift
}

// Lines returns a copy of the lines in the set containing hint, for
// invariant checkers and state dumps.
func (c *Cache) Lines(hint Addr) []Line {
	s := &c.sets[c.index(hint)]
	out := make([]Line, len(s.lines))
	copy(out, s.lines)
	return out
}

// Invalidate clears the line holding a, if present.
func (c *Cache) Invalidate(a Addr) {
	if l, ok := c.Peek(a); ok {
		*l = Line{Owner: -1}
	}
}

// touch marks way w most recently used in the PLRU tree.
func (s *set) touch(w, ways int) {
	node := 0
	for span := ways; span > 1; {
		span /= 2
		var dir uint64
		if w%(span*2) >= span {
			dir = 1
		}
		// Point the node away from the touched side.
		if dir == 1 {
			s.plru &^= 1 << uint(node)
		} else {
			s.plru |= 1 << uint(node)
		}
		node = node*2 + 1 + int(dir)
	}
}

// plruVictim walks the tree toward the pseudo-least-recently-used way.
func (s *set) plruVictim(ways int) int {
	node, w := 0, 0
	for span := ways; span > 1; {
		span /= 2
		dir := (s.plru >> uint(node)) & 1
		if dir == 1 {
			w += span
		}
		node = node*2 + 1 + int(dir)
	}
	return w
}
