// Package power is the DSENT substitute: analytical area and energy models
// for every router variant at a 32 nm-class technology point.
//
// The paper evaluates area and energy with DSENT, which we cannot run.
// Instead, the model charges area to the same components DSENT sees —
// input buffers, crossbar, allocators, per-VC state, circuit-information
// registers and timed-reservation counters — and charges energy per
// microarchitectural event plus leakage proportional to area. Component
// ratios were fitted so the baseline matches DSENT folklore (input buffers
// ≈ 64% of router area; register/CAM bits ≈ 1.8x the cost of SRAM buffer
// bits) and so the *relative* deltas the model produces land in the bands
// the paper reports (Table 6, Figure 8). Absolute numbers carry no claim.
package power

import (
	"math"
	"math/bits"

	"reactivenoc/internal/core"
	"reactivenoc/internal/noc"
)

// Area-model constants, in abstract area units (1 unit = one SRAM buffer
// bit equivalent).
const (
	flitBits = noc.FlitBytes * 8 // 128-bit links (Table 4)
	bufDepth = 5                 // flits per VC (Table 4)
	ports    = 5                 // mesh router

	// sramBit and regBit are the per-bit areas of buffer SRAM and of the
	// registers/comparators holding circuit information.
	sramBit = 1.0
	regBit  = 1.77

	// fixedBase covers crossbar, switch allocator and routing logic;
	// fixedPerAddrBit grows it with the node-address width (wider route
	// and state fields on bigger chips).
	fixedBase       = 6138.0
	fixedPerAddrBit = 300.0

	// vcStateBits is the per-VC input-unit state (G, R, O, C of Figure 2).
	vcStateBits = 24.0

	// blockTagBits is the cache-line address field of a circuit entry.
	blockTagBits = 30
	// entryCtrlBits covers the built bit, output port and output VC.
	entryCtrlBits = 6
	// memLatency sizes the timed-reservation counters: windows must reach
	// past a memory round trip.
	memLatency = 160

	// laneSerdes is the per-extra-lane, per-mesh-port cost of SDM link
	// slicing: the serializer/deserializer pair and the lane-steering muxes
	// that multiplex a full-width flit onto a 1/L-width lane.
	laneSerdes = 220.0
)

// addrBits returns the node-identifier width.
func addrBits(nodes int) int {
	if nodes <= 1 {
		return 1
	}
	return bits.Len(uint(nodes - 1))
}

// RouterConfig captures what the area model needs about a router variant.
type RouterConfig struct {
	TotalVCs    int // per input port, both VNs
	BufferedVCs int
	CircEntries int // circuit-information entries per input port
	TimerBits   int // timed-window counter bits per entry (0 if untimed)
	LinkLanes   int // SDM lanes per mesh link (0/1 = undivided)
	Nodes       int
}

// ConfigFor derives the router inventory of a mechanism variant.
func ConfigFor(nodes int, opts core.Options) RouterConfig {
	rc := RouterConfig{TotalVCs: 4, BufferedVCs: 4, Nodes: nodes}
	switch opts.Mechanism {
	case core.MechNone:
	case core.MechFragmented:
		rc.TotalVCs = 5
		rc.BufferedVCs = 5
		rc.CircEntries = opts.MaxCircuitsPerPort
		if opts.Policy == "dynamic-vc" {
			// The dynamic-vc policy provisions DynVCMax reserved reply
			// VCs in hardware (the adaptive limit is control state, not
			// area): 2 request VCs + 1 ordinary reply VC + the partition.
			max := opts.DynVCMax
			if max <= 0 {
				max = 3
			}
			rc.TotalVCs = 3 + max
			rc.BufferedVCs = rc.TotalVCs
		}
	case core.MechComplete:
		rc.BufferedVCs = 3 // the circuit VC loses its buffer
		rc.CircEntries = opts.MaxCircuitsPerPort
		if opts.Policy == "sdm" {
			// The sdm policy keeps the circuit VC's buffer (lane-paced
			// flits wait under credit flow control) and provisions the
			// lane-sliced mesh links; each entry also stores its lane index
			// (charged in Budget).
			rc.BufferedVCs = 4
			lanes := opts.SDMLanes
			if lanes <= 0 {
				lanes = 4
			}
			rc.LinkLanes = lanes
		}
	case core.MechIdeal:
		// Unbounded storage: not a feasible design; area is reported for
		// reference with the same entry count as complete circuits.
		rc.CircEntries = 5
	}
	if opts.Timed {
		// Two counters per entry, sized to the largest window the chip
		// can reserve: request+reply traversal of the diameter plus a
		// memory access, stretched by the slack budget.
		diam := 2 * (intSqrt(nodes) - 1)
		horizon := 7*diam*(1+opts.SlackPerHop+opts.PostponePerHop) + memLatency
		rc.TimerBits = 2 * bits.Len(uint(horizon))
	}
	return rc
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// entryBits is the width of one circuit-information entry (Figure 3:
// B bit, destination identifier, cache-line address, output port).
func entryBits(nodes, timerBits int) int {
	return addrBits(nodes) + blockTagBits + entryCtrlBits + timerBits
}

// AreaBudget itemizes one router's area (model units).
type AreaBudget struct {
	Buffers     float64 // input VC buffer SRAM
	VCState     float64 // per-VC G/R/O/C state and allocator slices
	CircuitInfo float64 // circuit-information registers (incl. timers)
	Fixed       float64 // crossbar, switch allocator, routing logic
}

// Total sums the budget.
func (a AreaBudget) Total() float64 {
	return a.Buffers + a.VCState + a.CircuitInfo + a.Fixed
}

// Budget returns the router's itemized area.
func (rc RouterConfig) Budget() AreaBudget {
	eb := entryBits(rc.Nodes, rc.TimerBits)
	fixed := fixedBase + fixedPerAddrBit*float64(addrBits(rc.Nodes))
	if rc.LinkLanes > 1 {
		// SDM: each circuit entry stores its lane index, and every mesh
		// port carries the serdes/steering logic of its extra lanes (the
		// local port's NI links stay full-width).
		eb += bits.Len(uint(rc.LinkLanes - 1))
		fixed += laneSerdes * float64(rc.LinkLanes-1) * (ports - 1)
	}
	return AreaBudget{
		Buffers:     float64(rc.BufferedVCs*ports*bufDepth*flitBits) * sramBit,
		VCState:     float64(rc.TotalVCs*ports) * vcStateBits * regBit,
		CircuitInfo: float64(rc.CircEntries*ports*eb) * regBit,
		Fixed:       fixed,
	}
}

// RouterArea returns one router's area in model units.
func (rc RouterConfig) RouterArea() float64 { return rc.Budget().Total() }

// AreaSavings returns the router-area reduction of a variant relative to
// the baseline router of the same chip size; positive means smaller
// (Table 6 reports Fragmented ≈ -19%, Complete ≈ +6%, Complete Timed
// ≈ +1..3%).
func AreaSavings(nodes int, opts core.Options) float64 {
	base := ConfigFor(nodes, core.Options{}).RouterArea()
	v := ConfigFor(nodes, opts).RouterArea()
	return 1 - v/base
}

// Energy-model constants: per-event dynamic energies in picojoules
// (32 nm-class magnitudes) and leakage per area unit per cycle.
const (
	eBufWrite  = 1.2
	eBufRead   = 1.0
	eXbar      = 0.8
	eLink      = 1.6
	eArb       = 0.10
	eCircCheck = 0.05
	eCircWrite = 0.10
	eCredit    = 0.02

	// Leakage dominates lightly loaded 32 nm NoCs; this constant puts the
	// baseline's static share near 80% of network energy at the paper's
	// ~0.04 flits/node/cycle load, which is what makes buffer removal
	// (complete circuits) profitable and the fragmented variant's extra
	// VC costly, as in Figure 8.
	leakPerAreaPerCycle = 7.0e-5
)

// Energy is a network-energy breakdown in picojoules.
type Energy struct {
	Dynamic float64
	Static  float64

	// Per-component dynamic shares (picojoules).
	Buffers   float64
	Crossbars float64
	Links     float64
	Arbiters  float64
	Circuits  float64 // circuit checks and table writes
	Credits   float64
}

// Total returns dynamic + static energy.
func (e Energy) Total() float64 { return e.Dynamic + e.Static }

// NetworkEnergy charges the run's microarchitectural events and the
// chip-wide router leakage over the run's duration.
func NetworkEnergy(ev *noc.PowerEvents, nodes int, opts core.Options, cycles int64) Energy {
	e := Energy{
		Buffers:   float64(ev.BufWrites)*eBufWrite + float64(ev.BufReads)*eBufRead,
		Crossbars: float64(ev.XbarTraversals) * eXbar,
		Links:     float64(ev.LinkFlits) * eLink,
		Arbiters:  float64(ev.VAActivity+ev.SAActivity) * eArb,
		Circuits:  float64(ev.CircuitChecks)*eCircCheck + float64(ev.CircuitWrites)*eCircWrite,
		Credits:   float64(ev.CreditsSent) * eCredit,
	}
	e.Dynamic = e.Buffers + e.Crossbars + e.Links + e.Arbiters + e.Circuits + e.Credits
	area := ConfigFor(nodes, opts).RouterArea() * float64(nodes)
	e.Static = area * leakPerAreaPerCycle * float64(cycles)
	return e
}
