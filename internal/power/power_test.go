package power

import (
	"testing"

	"reactivenoc/internal/core"
	"reactivenoc/internal/noc"
)

func opts(m core.Mechanism, maxPerPort int, timed bool, slack int) core.Options {
	o := core.Options{Mechanism: m, MaxCircuitsPerPort: maxPerPort}
	if timed {
		o.Timed = true
		o.SlackPerHop = slack
	}
	return o
}

func TestBaselineAreaDominatedByBuffers(t *testing.T) {
	rc := ConfigFor(16, core.Options{})
	buffers := float64(4*ports*bufDepth*flitBits) * sramBit
	frac := buffers / rc.RouterArea()
	if frac < 0.55 || frac > 0.75 {
		t.Fatalf("buffer share of router area %.2f outside the DSENT-plausible band", frac)
	}
}

func TestTable6AreaBands(t *testing.T) {
	// The paper's Table 6: Fragmented -19.28%/-18.96%, Complete
	// +6.21%/+5.77%, Complete Timed +3.38%/+1.09% (16/64 cores). The
	// model must land in the same bands with the same ordering.
	cases := []struct {
		name   string
		o      core.Options
		nodes  int
		lo, hi float64
	}{
		{"fragmented16", opts(core.MechFragmented, 2, false, 0), 16, -0.25, -0.14},
		{"fragmented64", opts(core.MechFragmented, 2, false, 0), 64, -0.25, -0.14},
		{"complete16", opts(core.MechComplete, 5, false, 0), 16, 0.04, 0.09},
		{"complete64", opts(core.MechComplete, 5, false, 0), 64, 0.03, 0.08},
		{"timed16", opts(core.MechComplete, 5, true, 1), 16, 0.005, 0.05},
		{"timed64", opts(core.MechComplete, 5, true, 1), 64, 0.001, 0.045},
	}
	for _, c := range cases {
		got := AreaSavings(c.nodes, c.o)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: area savings %.4f outside [%v, %v]", c.name, got, c.lo, c.hi)
		}
	}
}

func TestAreaOrderings(t *testing.T) {
	for _, nodes := range []int{16, 64} {
		frag := AreaSavings(nodes, opts(core.MechFragmented, 2, false, 0))
		comp := AreaSavings(nodes, opts(core.MechComplete, 5, false, 0))
		timed := AreaSavings(nodes, opts(core.MechComplete, 5, true, 1))
		if !(frag < 0) {
			t.Errorf("%d nodes: fragmented must increase area, got savings %.4f", nodes, frag)
		}
		if !(comp > timed && timed > 0) {
			t.Errorf("%d nodes: want complete (%.4f) > timed (%.4f) > 0", nodes, comp, timed)
		}
	}
	// Bigger chips store wider identifiers: savings shrink with size.
	if AreaSavings(64, opts(core.MechComplete, 5, false, 0)) >= AreaSavings(16, opts(core.MechComplete, 5, false, 0)) {
		t.Error("complete-circuit savings should shrink from 16 to 64 cores")
	}
	if AreaSavings(64, opts(core.MechComplete, 5, true, 1)) >= AreaSavings(16, opts(core.MechComplete, 5, true, 1)) {
		t.Error("timed savings should shrink from 16 to 64 cores")
	}
}

func TestBaselineSavingsZero(t *testing.T) {
	if s := AreaSavings(16, core.Options{}); s != 0 {
		t.Fatalf("baseline vs itself should be 0, got %v", s)
	}
}

func TestTimerBitsGrowWithChipAndSlack(t *testing.T) {
	small := ConfigFor(16, opts(core.MechComplete, 5, true, 0))
	big := ConfigFor(64, opts(core.MechComplete, 5, true, 0))
	if big.TimerBits < small.TimerBits {
		t.Fatalf("timer bits shrank with chip size: %d vs %d", small.TimerBits, big.TimerBits)
	}
	slacked := ConfigFor(64, opts(core.MechComplete, 5, true, 4))
	if slacked.TimerBits < big.TimerBits {
		t.Fatal("slack should widen reservation counters")
	}
}

func TestNetworkEnergyComponents(t *testing.T) {
	ev := &noc.PowerEvents{BufWrites: 100, BufReads: 100, XbarTraversals: 150, LinkFlits: 150}
	e := NetworkEnergy(ev, 16, core.Options{}, 10000)
	if e.Dynamic <= 0 || e.Static <= 0 {
		t.Fatalf("energy components must be positive: %+v", e)
	}
	if e.Total() != e.Dynamic+e.Static {
		t.Fatal("total mismatch")
	}
	// Leakage scales with run length.
	e2 := NetworkEnergy(ev, 16, core.Options{}, 20000)
	if e2.Static <= e.Static || e2.Dynamic != e.Dynamic {
		t.Fatal("static energy must scale with cycles only")
	}
}

func TestStaticEnergyTracksArea(t *testing.T) {
	ev := &noc.PowerEvents{}
	base := NetworkEnergy(ev, 64, core.Options{}, 1000).Static
	frag := NetworkEnergy(ev, 64, opts(core.MechFragmented, 2, false, 0), 1000).Static
	comp := NetworkEnergy(ev, 64, opts(core.MechComplete, 5, false, 0), 1000).Static
	if !(frag > base && comp < base) {
		t.Fatalf("leakage ordering wrong: frag=%v base=%v comp=%v", frag, base, comp)
	}
}

func TestAreaBudgetItemization(t *testing.T) {
	base := ConfigFor(64, core.Options{}).Budget()
	if base.CircuitInfo != 0 {
		t.Fatal("baseline router has no circuit storage")
	}
	if base.Total() != ConfigFor(64, core.Options{}).RouterArea() {
		t.Fatal("budget total disagrees with RouterArea")
	}
	comp := ConfigFor(64, opts(core.MechComplete, 5, false, 0)).Budget()
	if comp.Buffers >= base.Buffers {
		t.Fatal("complete circuits must shed buffer area")
	}
	if comp.CircuitInfo <= 0 {
		t.Fatal("complete circuits need circuit-information storage")
	}
	timed := ConfigFor(64, opts(core.MechComplete, 5, true, 1)).Budget()
	if timed.CircuitInfo <= comp.CircuitInfo {
		t.Fatal("timers must grow the circuit storage")
	}
	if timed.Fixed != comp.Fixed || timed.Buffers != comp.Buffers {
		t.Fatal("timers must not change unrelated components")
	}
}

func TestEnergyComponentBreakdown(t *testing.T) {
	ev := &noc.PowerEvents{
		BufWrites: 10, BufReads: 10, XbarTraversals: 20, LinkFlits: 20,
		VAActivity: 5, SAActivity: 5, CircuitChecks: 8, CircuitWrites: 2, CreditsSent: 12,
	}
	e := NetworkEnergy(ev, 16, core.Options{}, 100)
	sum := e.Buffers + e.Crossbars + e.Links + e.Arbiters + e.Circuits + e.Credits
	if sum != e.Dynamic {
		t.Fatalf("component sum %.3f != dynamic %.3f", sum, e.Dynamic)
	}
	if e.Buffers <= 0 || e.Links <= 0 || e.Circuits <= 0 {
		t.Fatal("components missing")
	}
}

func TestIntSqrt(t *testing.T) {
	for _, c := range [][2]int{{16, 4}, {64, 8}, {15, 3}, {17, 4}, {1, 1}} {
		if got := intSqrt(c[0]); got != c[1] {
			t.Errorf("intSqrt(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestAddrBits(t *testing.T) {
	for _, c := range [][2]int{{16, 4}, {64, 6}, {1, 1}, {2, 1}, {17, 5}} {
		if got := addrBits(c[0]); got != c[1] {
			t.Errorf("addrBits(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

// TestSDMRouterInventory: the sdm policy keeps the full buffer complement
// (lane-paced flits wait under credit flow control), provisions the
// configured lane count (defaulting to 4), and pays for it — serdes per
// extra lane per mesh port plus a lane-index field in every circuit
// entry — so more lanes must cost strictly more area.
func TestSDMRouterInventory(t *testing.T) {
	base := core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5, Policy: "sdm"}

	rc := ConfigFor(16, base)
	if rc.BufferedVCs != 4 {
		t.Fatalf("sdm BufferedVCs = %d, want 4 (packet lane keeps its buffers)", rc.BufferedVCs)
	}
	if rc.LinkLanes != 4 {
		t.Fatalf("default sdm LinkLanes = %d, want 4", rc.LinkLanes)
	}

	lanes := func(n int) RouterConfig {
		o := base
		o.SDMLanes = n
		return ConfigFor(16, o)
	}
	if got := lanes(8).LinkLanes; got != 8 {
		t.Fatalf("SDMLanes=8 gave LinkLanes=%d", got)
	}
	a2, a4, a8 := lanes(2).RouterArea(), lanes(4).RouterArea(), lanes(8).RouterArea()
	if !(a2 < a4 && a4 < a8) {
		t.Fatalf("area must grow with lane count: %v, %v, %v", a2, a4, a8)
	}

	// The lane cost lands in serdes (Fixed) and the entry's lane-index
	// bits (CircuitInfo); buffers stay the baseline complement.
	plain := ConfigFor(16, core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5})
	b4, bPlain := lanes(4).Budget(), plain.Budget()
	if b4.Fixed <= bPlain.Fixed {
		t.Fatal("lane serdes must grow the fixed logic area")
	}
	if b4.CircuitInfo <= bPlain.CircuitInfo {
		t.Fatal("lane-index bits must widen the circuit entries")
	}
	if b4.Buffers <= bPlain.Buffers {
		t.Fatal("sdm keeps the circuit VC's buffer; plain complete sheds it")
	}

	// A complete-mechanism variant without the sdm policy never slices links.
	if plain.LinkLanes != 0 {
		t.Fatalf("plain complete LinkLanes = %d, want 0 (policy leak?)", plain.LinkLanes)
	}
}

// TestDynamicVCRouterInventory: the dynamic-vc policy provisions its
// maximum reserved-VC partition in hardware — the area model must charge
// for DynVCMax buffered VCs (plus 2 request VCs and 1 ordinary reply VC),
// defaulting to 3 when the knob is unset, and more VCs must cost area.
func TestDynamicVCRouterInventory(t *testing.T) {
	base := core.Options{Mechanism: core.MechFragmented, MaxCircuitsPerPort: 4, Policy: "dynamic-vc"}

	rc := ConfigFor(16, base)
	if rc.TotalVCs != 6 || rc.BufferedVCs != 6 {
		t.Fatalf("default dynamic-vc VCs = %d/%d, want 6/6 (3 + DynVCMax default 3)", rc.TotalVCs, rc.BufferedVCs)
	}

	wide := base
	wide.DynVCMax = 5
	rcWide := ConfigFor(16, wide)
	if rcWide.TotalVCs != 8 || rcWide.BufferedVCs != 8 {
		t.Fatalf("DynVCMax=5 VCs = %d/%d, want 8/8", rcWide.TotalVCs, rcWide.BufferedVCs)
	}
	if rcWide.RouterArea() <= rc.RouterArea() {
		t.Fatal("a wider provisioned partition must cost router area")
	}

	frag := ConfigFor(16, core.Options{Mechanism: core.MechFragmented, MaxCircuitsPerPort: 2})
	if frag.TotalVCs != 5 {
		t.Fatalf("plain fragmented VCs = %d, want 5 (policy leak?)", frag.TotalVCs)
	}
}
