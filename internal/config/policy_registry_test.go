package config

import (
	"testing"

	"reactivenoc/internal/core"
)

// TestPolicyVariantsValidAndSeparate: the policy-lab presets validate,
// resolve to their named policies, and stay out of the paper's inventory.
func TestPolicyVariantsValidAndSeparate(t *testing.T) {
	pvs := PolicyVariants()
	want := map[string]string{
		"ProfiledHybrid": "profiled-hybrid",
		"DynamicVC":      "dynamic-vc",
	}
	if len(pvs) != len(want) {
		t.Fatalf("PolicyVariants has %d entries, want %d", len(pvs), len(want))
	}
	for _, v := range pvs {
		policy, ok := want[v.Name]
		if !ok {
			t.Errorf("unexpected policy variant %s", v.Name)
			continue
		}
		if err := v.Opts.Validate(); err != nil {
			t.Errorf("%s invalid: %v", v.Name, err)
		}
		pol, err := core.PolicyFor(v.Opts)
		if err != nil || pol.Name() != policy {
			t.Errorf("%s resolves to policy %v (err %v), want %s", v.Name, pol, err, policy)
		}
		for _, pv := range Variants() {
			if pv.Name == v.Name {
				t.Errorf("%s leaked into the paper inventory Variants()", v.Name)
			}
		}
	}
}

// TestSweepVariantsOrder: sweeps run the paper's columns first, then the
// policy lab, then the SDM presets, with no duplicates.
func TestSweepVariantsOrder(t *testing.T) {
	sv := SweepVariants()
	want := len(Variants()) + len(PolicyVariants()) + len(SDMVariants())
	if len(sv) != want {
		t.Fatalf("SweepVariants has %d entries, want %d", len(sv), want)
	}
	seen := map[string]bool{}
	for i, v := range Variants() {
		if sv[i].Name != v.Name {
			t.Fatalf("sweep column %d is %s, want paper variant %s", i, sv[i].Name, v.Name)
		}
	}
	for _, v := range sv {
		if seen[v.Name] {
			t.Errorf("duplicate sweep column %s", v.Name)
		}
		seen[v.Name] = true
	}
}

// TestRegistry: the once-built registry serves every preset family by
// name, first registration winning for duplicated names.
func TestRegistry(t *testing.T) {
	names := RegisteredNames()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	idx := map[string]int{}
	for i, n := range names {
		if _, dup := idx[n]; dup {
			t.Fatalf("registry lists %s twice", n)
		}
		idx[n] = i
	}
	// Every family is reachable through ByName.
	for _, want := range []string{"Baseline", "ProfiledHybrid", "DynamicVC", "Speculative", "Probe_DejaVu"} {
		v, ok := ByName(want)
		if !ok || v.Name != want {
			t.Errorf("ByName(%q) = (%v, %v)", want, v.Name, ok)
		}
	}
	if _, ok := ByName("NoSuchVariant"); ok {
		t.Error("ByName invented a variant")
	}
	// "Baseline" is duplicated between Variants and Comparators; the
	// paper-inventory registration must win (same Opts either way, but the
	// order contract matters for RegisteredNames).
	if idx["Baseline"] != 0 {
		t.Errorf("Baseline registered at %d, want 0", idx["Baseline"])
	}
}

// TestVariantForPolicy: every registered policy has a representative
// preset — the contract the conformance suite enforces at run time.
func TestVariantForPolicy(t *testing.T) {
	for _, name := range PolicyNames() {
		v, ok := VariantForPolicy(name)
		if !ok {
			t.Errorf("policy %s has no representative variant", name)
			continue
		}
		pol, err := core.PolicyFor(v.Opts)
		if err != nil || pol.Name() != name {
			t.Errorf("representative %s for %s resolves to %v (err %v)", v.Name, name, pol, err)
		}
	}
	if _, ok := VariantForPolicy("no-such-policy"); ok {
		t.Error("VariantForPolicy invented a policy")
	}
}

// TestVariantsForPolicy: the complete family owns most paper columns, the
// new policies own exactly their own, and probe-setup has no sweep column
// (its preset is a comparator, not a sweep variant).
func TestVariantsForPolicy(t *testing.T) {
	for policy, wantNames := range map[string][]string{
		"baseline":        {"Baseline"},
		"fragmented":      {"Fragmented"},
		"profiled-hybrid": {"ProfiledHybrid"},
		"dynamic-vc":      {"DynamicVC"},
		"sdm":             {"SDM", "SDM_2", "SDM_8"},
		"probe-setup":     nil,
	} {
		got := VariantsForPolicy(policy)
		if len(got) != len(wantNames) {
			t.Errorf("VariantsForPolicy(%s) = %d variants, want %d", policy, len(got), len(wantNames))
			continue
		}
		for i, v := range got {
			if v.Name != wantNames[i] {
				t.Errorf("VariantsForPolicy(%s)[%d] = %s, want %s", policy, i, v.Name, wantNames[i])
			}
		}
	}
	if n := len(VariantsForPolicy("complete")); n != 9 {
		t.Errorf("complete policy sweeps %d columns, want 9", n)
	}
}

// TestPolicyNamesForwarding: config re-exports core's registration order.
func TestPolicyNamesForwarding(t *testing.T) {
	got, want := PolicyNames(), core.PolicyNames()
	if len(got) != len(want) {
		t.Fatalf("PolicyNames = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("PolicyNames = %v, want %v", got, want)
		}
	}
}
