package config

import (
	"testing"

	"reactivenoc/internal/core"
)

func TestChipPresets(t *testing.T) {
	c16, c64 := Chip16(), Chip64()
	if c16.Nodes() != 16 || c64.Nodes() != 64 {
		t.Fatalf("node counts %d/%d", c16.Nodes(), c64.Nodes())
	}
	if c16.MCs != 4 || c64.MCs != 4 {
		t.Fatal("the paper uses 4 memory controllers for both sizes")
	}
}

func TestAllVariantsValid(t *testing.T) {
	for _, v := range Variants() {
		if err := v.Opts.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
}

func TestVariantInventoryMatchesPaper(t *testing.T) {
	want := []string{
		"Baseline", "Fragmented", "Complete", "Complete_NoAck", "Reuse_NoAck",
		"Timed_NoAck", "Slack_1_NoAck", "Slack_2_NoAck", "Slack_4_NoAck",
		"SlackDelay_1_NoAck", "Postponed_1_NoAck", "Ideal",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("variant names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("variant %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	v, ok := ByName("SlackDelay_1_NoAck")
	if !ok {
		t.Fatal("missing SlackDelay_1_NoAck")
	}
	if !v.Opts.Timed || v.Opts.SlackPerHop != 1 || v.Opts.DelayPerHop != 1 || !v.Opts.NoAck {
		t.Fatalf("wrong options: %+v", v.Opts)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom variant")
	}
}

func TestVariantSemantics(t *testing.T) {
	frag, _ := ByName("Fragmented")
	if frag.Opts.Mechanism != core.MechFragmented || frag.Opts.MaxCircuitsPerPort != 2 {
		t.Fatal("fragmented must use 2 circuits per port (one per reserved VC)")
	}
	comp, _ := ByName("Complete")
	if comp.Opts.Mechanism != core.MechComplete || comp.Opts.MaxCircuitsPerPort != 5 {
		t.Fatal("complete must use the paper's 5 circuits per port")
	}
	post, _ := ByName("Postponed_1_NoAck")
	if post.Opts.PostponePerHop != 1 || post.Opts.SlackPerHop != 0 {
		t.Fatal("postponed uses exact windows at a later time")
	}
	ideal, _ := ByName("Ideal")
	if ideal.Opts.Mechanism != core.MechIdeal || ideal.Opts.NoAck {
		t.Fatal("ideal keeps all coherence messages")
	}
}

func TestKeyVariantsSubset(t *testing.T) {
	ks := KeyVariants()
	if len(ks) < 5 {
		t.Fatalf("only %d key variants", len(ks))
	}
	for _, k := range ks {
		if _, ok := ByName(k.Name); !ok {
			t.Errorf("key variant %s not in the full list", k.Name)
		}
	}
	if ks[0].Name != "Baseline" {
		t.Fatal("key variants must start with the baseline")
	}
}

func TestComparators(t *testing.T) {
	cs := Comparators()
	if len(cs) != 5 {
		t.Fatalf("%d comparators", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		if err := c.Opts.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"Baseline", "Speculative", "Probe_DejaVu", "Complete_NoAck", "SlackDelay_1_NoAck"} {
		if !names[want] {
			t.Errorf("missing comparator %s", want)
		}
	}
	spec, _ := func() (Variant, bool) {
		for _, c := range cs {
			if c.Name == "Speculative" {
				return c, true
			}
		}
		return Variant{}, false
	}()
	if !spec.Opts.SpeculativeRouter || spec.Opts.Enabled() {
		t.Fatal("the speculative comparator must be a circuit-less baseline router")
	}
}
