// Package config names the system presets of the evaluation: the two chip
// sizes of Table 2 and every Reactive Circuits variant that appears in the
// paper's figures.
package config

import (
	"fmt"
	"sync"

	"reactivenoc/internal/core"
)

// Chip is a chip-size preset.
type Chip struct {
	Name          string
	Width, Height int
	MCs           int
}

// Chip16 is the 16-core chip (4x4 mesh, 4 memory controllers).
func Chip16() Chip { return Chip{Name: "16-core", Width: 4, Height: 4, MCs: 4} }

// Chip64 is the 64-core chip (8x8 mesh, 4 memory controllers).
func Chip64() Chip { return Chip{Name: "64-core", Width: 8, Height: 8, MCs: 4} }

// Chip256 is the 256-core chip (16x16 mesh, 4 memory controllers) — beyond
// the paper's Table 2, the scaling point the parallel engine targets.
func Chip256() Chip { return Chip{Name: "256-core", Width: 16, Height: 16, MCs: 4} }

// Nodes returns the tile count.
func (c Chip) Nodes() int { return c.Width * c.Height }

// Variant is one named mechanism configuration from the evaluation.
type Variant struct {
	Name string
	Opts core.Options
}

func completeBase() core.Options {
	return core.Options{Mechanism: core.MechComplete, MaxCircuitsPerPort: 5}
}

// Variants returns every configuration evaluated in the paper, in the
// order of Figure 6's bars.
func Variants() []Variant {
	mk := func(name string, mod func(*core.Options)) Variant {
		o := completeBase()
		mod(&o)
		if err := o.Validate(); err != nil {
			panic(fmt.Sprintf("config: variant %s invalid: %v", name, err))
		}
		return Variant{Name: name, Opts: o}
	}
	return []Variant{
		{Name: "Baseline", Opts: core.Options{}},
		{Name: "Fragmented", Opts: core.Options{Mechanism: core.MechFragmented, MaxCircuitsPerPort: 2}},
		mk("Complete", func(o *core.Options) {}),
		mk("Complete_NoAck", func(o *core.Options) { o.NoAck = true }),
		mk("Reuse_NoAck", func(o *core.Options) { o.NoAck = true; o.Reuse = true }),
		mk("Timed_NoAck", func(o *core.Options) { o.NoAck = true; o.Timed = true }),
		mk("Slack_1_NoAck", func(o *core.Options) { o.NoAck = true; o.Timed = true; o.SlackPerHop = 1 }),
		mk("Slack_2_NoAck", func(o *core.Options) { o.NoAck = true; o.Timed = true; o.SlackPerHop = 2 }),
		mk("Slack_4_NoAck", func(o *core.Options) { o.NoAck = true; o.Timed = true; o.SlackPerHop = 4 }),
		mk("SlackDelay_1_NoAck", func(o *core.Options) {
			o.NoAck = true
			o.Timed = true
			o.SlackPerHop = 1
			o.DelayPerHop = 1
		}),
		mk("Postponed_1_NoAck", func(o *core.Options) { o.NoAck = true; o.Timed = true; o.PostponePerHop = 1 }),
		{Name: "Ideal", Opts: core.Options{Mechanism: core.MechIdeal}},
	}
}

// PolicyVariants returns the post-paper switching-policy presets from the
// related work, built on the first-class policy seam (core.Policy): the
// profiled hybrid of "Energy-Efficient On-Chip Networks through Profiled
// Hybrid Switching" and the load-adaptive VC partitioning of Onsori &
// Safaei. They ride every sweep as comparable columns next to the paper's
// variants (SweepVariants) but stay out of Variants(), which remains the
// paper's exact inventory.
func PolicyVariants() []Variant {
	mk := func(name string, o core.Options) Variant {
		if err := o.Validate(); err != nil {
			panic(fmt.Sprintf("config: variant %s invalid: %v", name, err))
		}
		return Variant{Name: name, Opts: o}
	}
	return []Variant{
		mk("ProfiledHybrid", core.Options{
			Mechanism:          core.MechComplete,
			MaxCircuitsPerPort: 5,
			NoAck:              true,
			Policy:             "profiled-hybrid",
		}),
		mk("DynamicVC", core.Options{
			Mechanism:          core.MechFragmented,
			MaxCircuitsPerPort: 3,
			Policy:             "dynamic-vc",
		}),
	}
}

// SDMVariants returns the spatial-division multiplexing presets (PAPERS.md:
// Zaeemi & Modarressi): the complete mechanism with every mesh link split
// into lanes, one reserved for packet traffic and the rest held
// one-per-circuit. SDM is the 4-lane default; SDM_2 and SDM_8 bracket the
// serialization/parallelism trade-off. Like the policy-lab variants they
// ride every sweep (SweepVariants) but stay out of Variants(), the paper's
// exact inventory.
func SDMVariants() []Variant {
	mk := func(name string, lanes int) Variant {
		// No NoAck: lane-paced circuit flits may stall, so the ack
		// elimination's delivery guarantee (Section 4.6) does not hold —
		// the sdm policy rejects the combination outright.
		o := core.Options{
			Mechanism:          core.MechComplete,
			MaxCircuitsPerPort: 5,
			Policy:             "sdm",
			SDMLanes:           lanes,
		}
		if err := o.Validate(); err != nil {
			panic(fmt.Sprintf("config: variant %s invalid: %v", name, err))
		}
		return Variant{Name: name, Opts: o}
	}
	return []Variant{
		mk("SDM", 4),
		mk("SDM_2", 2),
		mk("SDM_8", 8),
	}
}

// SweepVariants returns every comparable sweep column: the paper's
// variants followed by the policy-lab variants and the SDM presets.
func SweepVariants() []Variant {
	return append(append(Variants(), PolicyVariants()...), SDMVariants()...)
}

// TuneGrid returns the candidate grid the closed-loop tuner (cmd/rctune)
// sweeps per workload: the Baseline and Reuse anchors plus the timed
// family across its Slack/Postponed knob range — including Slack_8 and
// Postponed_2 points beyond the paper's figures, so the per-app optimum
// can land outside the published inventory — and the SDM lane sweep, the
// spatial alternative to every timed knob.
func TuneGrid() []Variant {
	mk := func(name string, mod func(*core.Options)) Variant {
		o := completeBase()
		o.NoAck = true
		mod(&o)
		if err := o.Validate(); err != nil {
			panic(fmt.Sprintf("config: variant %s invalid: %v", name, err))
		}
		return Variant{Name: name, Opts: o}
	}
	grid := []Variant{
		{Name: "Baseline", Opts: core.Options{}},
		mk("Reuse_NoAck", func(o *core.Options) { o.Reuse = true }),
		mk("Timed_NoAck", func(o *core.Options) { o.Timed = true }),
		mk("Slack_1_NoAck", func(o *core.Options) { o.Timed = true; o.SlackPerHop = 1 }),
		mk("Slack_2_NoAck", func(o *core.Options) { o.Timed = true; o.SlackPerHop = 2 }),
		mk("Slack_4_NoAck", func(o *core.Options) { o.Timed = true; o.SlackPerHop = 4 }),
		mk("Slack_8_NoAck", func(o *core.Options) { o.Timed = true; o.SlackPerHop = 8 }),
		mk("SlackDelay_1_NoAck", func(o *core.Options) {
			o.Timed = true
			o.SlackPerHop = 1
			o.DelayPerHop = 1
		}),
		mk("Postponed_1_NoAck", func(o *core.Options) { o.Timed = true; o.PostponePerHop = 1 }),
		mk("Postponed_2_NoAck", func(o *core.Options) { o.Timed = true; o.PostponePerHop = 2 }),
	}
	// The SDM lane sweep joins after the timed family so tuner reports
	// keep their historical column order.
	return append(grid, SDMVariants()...)
}

// The variant registry is built once: every preset from Variants,
// PolicyVariants and Comparators, keyed by name (first registration wins
// for the duplicated entries).
var (
	regOnce  sync.Once
	regMap   map[string]Variant
	regOrder []string
)

func registry() map[string]Variant {
	regOnce.Do(func() {
		regMap = map[string]Variant{}
		all := append(append(Variants(), PolicyVariants()...), SDMVariants()...)
		all = append(all, Comparators()...)
		all = append(all, TuneGrid()...)
		for _, v := range all {
			if _, dup := regMap[v.Name]; dup {
				continue
			}
			regMap[v.Name] = v
			regOrder = append(regOrder, v.Name)
		}
	})
	return regMap
}

// ByName returns the named variant from the once-built registry (paper
// variants, policy-lab variants and comparators alike).
func ByName(name string) (Variant, bool) {
	v, ok := registry()[name]
	return v, ok
}

// RegisteredNames lists every registry entry in registration order:
// Variants, then PolicyVariants, then the comparators not already listed.
func RegisteredNames() []string {
	registry()
	return append([]string(nil), regOrder...)
}

// PolicyNames lists every switching policy registered in core, in
// registration order.
func PolicyNames() []string { return core.PolicyNames() }

// VariantForPolicy returns the first registered variant whose options
// resolve to the named switching policy — the representative preset the
// conformance suite runs for each policy. ok is false when no registered
// variant exercises the policy, which is exactly what the conformance
// suite fails on: a policy without a runnable preset cannot be gauntleted.
func VariantForPolicy(policy string) (Variant, bool) {
	registry()
	for _, name := range regOrder {
		v := regMap[name]
		if pol, err := core.PolicyFor(v.Opts); err == nil && pol.Name() == policy {
			return v, true
		}
	}
	return Variant{}, false
}

// VariantsForPolicy returns every sweep column whose options resolve to
// the named switching policy, in sweep order — what `rcsweep -policy`
// restricts a sweep to.
func VariantsForPolicy(policy string) []Variant {
	var out []Variant
	for _, v := range SweepVariants() {
		if pol, err := core.PolicyFor(v.Opts); err == nil && pol.Name() == policy {
			out = append(out, v)
		}
	}
	return out
}

// Names lists every variant name.
func Names() []string {
	vs := Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

// Comparators returns the related-work alternatives the paper positions
// Reactive Circuits against: the baseline, a speculative single-cycle
// router (references [16-19]) and probe-based setup at reply time
// (Déjà-Vu switching, reference [7]).
func Comparators() []Variant {
	// This runs inside the registry build, so it must not call ByName
	// (re-entering the sync.Once would deadlock): look the two paper
	// variants up with a plain scan instead.
	fromPaper := func(name string) Variant {
		for _, v := range Variants() {
			if v.Name == name {
				return v
			}
		}
		panic("config: missing paper variant " + name)
	}
	return []Variant{
		{Name: "Baseline", Opts: core.Options{}},
		{Name: "Speculative", Opts: core.Options{SpeculativeRouter: true}},
		{Name: "Probe_DejaVu", Opts: core.Options{Mechanism: core.MechProbe, MaxCircuitsPerPort: 5}},
		fromPaper("Complete_NoAck"),
		fromPaper("SlackDelay_1_NoAck"),
	}
}

// KeyVariants returns the "most relevant versions" the paper uses in
// Figures 7-9: baseline, fragmented, the complete family, timed variants
// and the ideal bound.
func KeyVariants() []Variant {
	keys := []string{
		"Baseline", "Fragmented", "Complete", "Complete_NoAck", "Reuse_NoAck",
		"Timed_NoAck", "SlackDelay_1_NoAck", "Postponed_1_NoAck", "Ideal",
	}
	out := make([]Variant, 0, len(keys))
	for _, k := range keys {
		v, ok := ByName(k)
		if !ok {
			panic("config: missing key variant " + k)
		}
		out = append(out, v)
	}
	return out
}
