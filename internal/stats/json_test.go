package stats

import (
	"encoding/json"
	"testing"
)

// TestSampleJSONRoundTrip: every derived statistic must survive the wire.
func TestSampleJSONRoundTrip(t *testing.T) {
	var s Sample
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Sample
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip lost state: %+v vs %+v", got, s)
	}
	if got.Mean() != s.Mean() || got.CI95() != s.CI95() || got.Min() != s.Min() || got.Max() != s.Max() {
		t.Fatalf("derived stats diverge after round trip")
	}
}

// TestHistogramJSONRoundTrip: buckets, overflow and the exact-moment
// sample all reconstruct, so remote tail-latency reports match local ones.
func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(4, 8)
	for _, v := range []int64{0, 3, 4, 17, 31, 1000, -2} {
		h.Add(v)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	got := &Histogram{}
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatal(err)
	}
	if got.Count() != h.Count() || got.Overflow() != h.Overflow() || got.Mean() != h.Mean() {
		t.Fatalf("round trip lost counts: %+v vs %+v", got, h)
	}
	for i := 0; i < 8; i++ {
		if got.Bucket(i) != h.Bucket(i) {
			t.Fatalf("bucket %d = %d, want %d", i, got.Bucket(i), h.Bucket(i))
		}
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		if got.Percentile(p) != h.Percentile(p) {
			t.Fatalf("p%v diverges after round trip", p)
		}
	}
}

// TestLatencyRecordJSONRoundTrip covers the composite type chip.Results
// actually embeds.
func TestLatencyRecordJSONRoundTrip(t *testing.T) {
	var l LatencyRecord
	l.Add(10, 3)
	l.Add(40, 7)
	b, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	var got LatencyRecord
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total() != l.Total() || got.Network.N() != l.Network.N() {
		t.Fatalf("latency record diverges after round trip")
	}
}
