// Package stats provides the measurement plumbing every experiment uses:
// latency recorders with network/queueing splits, circuit-outcome
// classification, message-mix counters, and mean / standard-error /
// confidence-interval math for the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates a stream of float64 observations.
type Sample struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	v := (s.sumSq - float64(s.n)*mean*mean) / float64(s.n-1)
	if v < 0 { // numeric noise
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean, as plotted in the paper's
// Figures 8 and 9 error bars.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a 95% confidence interval on the mean
// using the normal approximation (the paper cites Jain's methodology).
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// Merge folds other into s.
func (s *Sample) Merge(other *Sample) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
	s.sum += other.sum
	s.sumSq += other.sumSq
}

// Histogram counts integer observations in fixed-width buckets with an
// overflow bucket, used for latency distributions.
type Histogram struct {
	BucketWidth int64
	buckets     []int64
	overflow    int64
	sample      Sample
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(bucketWidth int64, n int) *Histogram {
	if bucketWidth <= 0 || n <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{BucketWidth: bucketWidth, buckets: make([]int64, n)}
}

// Add records v. Negative values clamp to bucket 0.
func (h *Histogram) Add(v int64) {
	h.sample.Add(float64(v))
	if v < 0 {
		v = 0
	}
	b := v / h.BucketWidth
	if int(b) >= len(h.buckets) {
		h.overflow++
		return
	}
	h.buckets[b]++
}

// Merge folds other into h. The histograms must share a shape — merging is
// for per-shard halves of the same distribution, not arbitrary histograms.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.BucketWidth != other.BucketWidth || len(h.buckets) != len(other.buckets) {
		panic("stats: merging histograms of different shapes")
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.overflow += other.overflow
	h.sample.Merge(&other.sample)
}

// Count returns total observations.
func (h *Histogram) Count() int64 { return h.sample.N() }

// Mean returns the mean of all observations (exact, not bucketed).
func (h *Histogram) Mean() float64 { return h.sample.Mean() }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// Overflow returns observations beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Percentile returns an upper bound on the p-quantile (0 < p <= 1) from the
// bucketed data: the upper edge of the bucket containing the quantile.
func (h *Histogram) Percentile(p float64) int64 {
	total := h.sample.N()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(total)))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return int64(i+1) * h.BucketWidth
		}
	}
	return int64(len(h.buckets)) * h.BucketWidth
}

// Counter is a named monotonic event counter set.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: map[string]int64{}} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the value of a named counter (0 if never touched).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge folds other into c.
func (c *Counter) Merge(other *Counter) {
	for n, v := range other.counts {
		c.counts[n] += v
	}
}

// String renders the counters one per line for debugging dumps.
func (c *Counter) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.counts[n])
	}
	return b.String()
}

// LatencyRecord accumulates the paper's Figure-7 latency anatomy for one
// message class: time spent queued at the source NI before entering the
// network, and time spent inside the network.
type LatencyRecord struct {
	Network  Sample
	Queueing Sample
}

// Add records one delivered message.
func (l *LatencyRecord) Add(networkCycles, queueingCycles int64) {
	l.Network.Add(float64(networkCycles))
	l.Queueing.Add(float64(queueingCycles))
}

// Total returns mean network + mean queueing latency.
func (l *LatencyRecord) Total() float64 {
	return l.Network.Mean() + l.Queueing.Mean()
}

// Merge folds another record into l.
func (l *LatencyRecord) Merge(o *LatencyRecord) {
	l.Network.Merge(&o.Network)
	l.Queueing.Merge(&o.Queueing)
}

// WeightedMean returns the mean of values weighted by weights. Slices must
// have equal length; zero total weight yields 0.
func WeightedMean(values, weights []float64) float64 {
	if len(values) != len(weights) {
		panic("stats: WeightedMean length mismatch")
	}
	var num, den float64
	for i, v := range values {
		num += v * weights[i]
		den += weights[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// GeoMean returns the geometric mean of strictly positive values, the
// conventional aggregation for per-application speedups.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range values {
		if v <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}
