package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Variance()-2.5) > 1e-12 {
		t.Fatalf("Variance = %v, want 2.5", s.Variance())
	}
	if math.Abs(s.StdErr()-math.Sqrt(2.5/5)) > 1e-12 {
		t.Fatalf("StdErr = %v", s.StdErr())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
}

func TestSampleSingleObservation(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.Variance() != 0 {
		t.Fatalf("variance of single obs = %v", s.Variance())
	}
}

func TestSampleMergeEqualsCombined(t *testing.T) {
	check := func(raw []float64) bool {
		var all, a, b Sample
		for i, v := range raw {
			v = math.Mod(v, 1000) // keep numerics tame
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			all.Add(v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleMergeEmpty(t *testing.T) {
	var a, b Sample
	a.Add(2)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merge with empty changed sample")
	}
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 2 {
		t.Fatal("merge into empty should copy")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []int64{0, 5, 9, 10, 49, 50, 1000} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Bucket(0) != 3 {
		t.Fatalf("bucket 0 = %d, want 3", h.Bucket(0))
	}
	if h.Bucket(1) != 1 || h.Bucket(4) != 1 {
		t.Fatalf("buckets = %d %d", h.Bucket(1), h.Bucket(4))
	}
	if h.Overflow() != 2 {
		t.Fatalf("overflow %d", h.Overflow())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(10, 2)
	h.Add(-5)
	if h.Bucket(0) != 1 {
		t.Fatal("negative value should clamp to bucket 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0.5); p < 49 || p > 51 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Fatalf("p100 = %d", p)
	}
	empty := NewHistogram(1, 4)
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 5)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("flits", 3)
	c.Inc("flits", 2)
	c.Inc("hops", 1)
	if c.Get("flits") != 5 || c.Get("hops") != 1 || c.Get("missing") != 0 {
		t.Fatal("counter values wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "flits" || names[1] != "hops" {
		t.Fatalf("names = %v", names)
	}
	d := NewCounter()
	d.Inc("flits", 10)
	c.Merge(d)
	if c.Get("flits") != 15 {
		t.Fatal("merge failed")
	}
	if c.String() == "" {
		t.Fatal("String should render something")
	}
}

func TestLatencyRecord(t *testing.T) {
	var l LatencyRecord
	l.Add(10, 2)
	l.Add(20, 4)
	if l.Network.Mean() != 15 || l.Queueing.Mean() != 3 {
		t.Fatalf("means %v/%v", l.Network.Mean(), l.Queueing.Mean())
	}
	if l.Total() != 18 {
		t.Fatalf("total %v", l.Total())
	}
	var m LatencyRecord
	m.Add(30, 6)
	l.Merge(&m)
	if l.Network.N() != 3 {
		t.Fatal("merge failed")
	}
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("weighted mean %v", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Fatal("empty weighted mean should be 0")
	}
	if WeightedMean([]float64{5}, []float64{0}) != 0 {
		t.Fatal("zero weight should yield 0")
	}
}

func TestWeightedMeanMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedMean([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean %v", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

// Property: variance is never negative and mean lies within [min, max].
func TestSampleInvariants(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Variance() >= 0 && s.Mean() >= s.Min() && s.Mean() <= s.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
