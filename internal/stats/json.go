package stats

import "encoding/json"

// The accumulator types keep their fields unexported so the hot recording
// paths stay free of invariant-breaking writes, but chip.Results travels
// over the wire between rcsweep -remote and rcserved — so Sample and
// Histogram carry explicit JSON codecs that round-trip the full state.

type sampleJSON struct {
	N     int64   `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// MarshalJSON encodes the accumulator state.
func (s Sample) MarshalJSON() ([]byte, error) {
	return json.Marshal(sampleJSON{N: s.n, Sum: s.sum, SumSq: s.sumSq, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores the accumulator state.
func (s *Sample) UnmarshalJSON(b []byte) error {
	var w sampleJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	s.n, s.sum, s.sumSq, s.min, s.max = w.N, w.Sum, w.SumSq, w.Min, w.Max
	return nil
}

type histogramJSON struct {
	BucketWidth int64   `json:"bucket_width"`
	Buckets     []int64 `json:"buckets"`
	Overflow    int64   `json:"overflow"`
	Sample      Sample  `json:"sample"`
}

// MarshalJSON encodes the bucket counts alongside the exact-moment sample.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		BucketWidth: h.BucketWidth, Buckets: h.buckets,
		Overflow: h.overflow, Sample: h.sample,
	})
}

// UnmarshalJSON restores the histogram.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	h.BucketWidth, h.buckets, h.overflow, h.sample = w.BucketWidth, w.Buckets, w.Overflow, w.Sample
	return nil
}
