package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/sim"
)

// Config sizes the service.
type Config struct {
	// Workers is the simulation worker-pool size (<= 0 resolves to
	// GOMAXPROCS through the same exp.WorkersOr every sweep uses).
	Workers int
	// QueueDepth bounds admitted-but-unstarted jobs; a full queue rejects
	// submissions with ErrQueueFull (HTTP 429 + Retry-After). <= 0: 256.
	QueueDepth int
	// CacheEntries bounds the result cache across shards (<= 0: 512);
	// CacheShards fixes the shard count (<= 0: 16).
	CacheEntries int
	CacheShards  int
	// Policy supplies the per-run retry/timeout/fault semantics — the
	// exact semantics exp sweeps apply locally. Policy.Run must be nil:
	// this server is the executor.
	Policy exp.Policy
	// Journal, when non-empty, is where shutdown drains jobs that never
	// produced a result, and where New looks for jobs to replay.
	Journal string
	// Logf sinks the server's warnings — torn journal records, replay
	// anomalies (nil: log.Printf).
	Logf func(format string, args ...any)
}

// Sentinel admission errors, mapped to HTTP statuses by the handlers.
var (
	ErrQueueFull   = errors.New("serve: job queue is full")
	ErrDraining    = errors.New("serve: server is shutting down")
	ErrInvalidSpec = errors.New("serve: spec MeasureOps must be positive")
)

// Server is the simulation service: admission, dedup, cache, worker pool,
// progress streams, and graceful drain.
type Server struct {
	cfg     Config
	workers int
	cache   *resultCache
	queue   chan *job

	stop       chan struct{} // closed once: workers stop picking jobs
	runCtx     context.Context
	cancelRuns context.CancelFunc
	wg         sync.WaitGroup // simulation workers
	replayWG   sync.WaitGroup // journal-replay feeder
	started    atomic.Bool
	draining   atomic.Bool

	jobsMu sync.Mutex
	jobs   map[string]*job
	nextID atomic.Int64
	replay []*job

	pendingMu sync.Mutex
	pending   []journalEntry // canceled in-flight runs awaiting the journal

	startAt time.Time
	reg     *sim.Registry

	submitted    atomic.Int64
	deduped      atomic.Int64
	rejected     atomic.Int64
	runs         atomic.Int64
	jobsDone     atomic.Int64
	jobsFailed   atomic.Int64
	jobsRetried  atomic.Int64
	jobsCanceled atomic.Int64
	replayed     atomic.Int64
	busy         atomic.Int64
}

// New builds a server and, when the config names a journal, loads and
// consumes it — the journaled jobs are enqueued for replay when Start
// brings the worker pool up.
func New(cfg Config) (*Server, error) {
	if cfg.Policy.Run != nil {
		return nil, errors.New("serve: Config.Policy.Run must be nil — the server executes specs itself")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		cfg:     cfg,
		workers: exp.WorkersOr(cfg.Workers),
		cache:   newResultCache(cfg.CacheEntries, cfg.CacheShards),
		stop:    make(chan struct{}),
		jobs:    map[string]*job{},
		startAt: time.Now(),
	}
	s.runCtx, s.cancelRuns = context.WithCancel(context.Background())

	if cfg.Journal != "" {
		entries, err := readJournal(cfg.Journal, cfg.Logf)
		if err != nil {
			return nil, err
		}
		// The replayed backlog must fit the queue alongside fresh load.
		cfg.QueueDepth += len(entries)
		now := time.Now()
		for _, e := range entries {
			fp := e.Spec.Fingerprint()
			j := newJob(e.ID, fp, e.Spec, now)
			if out, _, _ := s.cache.admit(fp, j); out != admitNew {
				continue // a twin is already replaying
			}
			s.jobs[e.ID] = j
			s.replay = append(s.replay, j)
			s.replayed.Add(1)
			// Resume the id counter past every replayed id.
			if n, err := strconv.ParseInt(strings.TrimPrefix(e.ID, "j-"), 10, 64); err == nil && n > s.nextID.Load() {
				s.nextID.Store(n)
			}
		}
	}
	s.queue = make(chan *job, cfg.QueueDepth)
	s.reg = s.describeMetrics()
	return s, nil
}

// describeMetrics registers the serve/ scope: counters and levels all read
// through atomics, so /metrics snapshots race cleanly with the workers.
func (s *Server) describeMetrics() *sim.Registry {
	reg := sim.NewRegistry()
	reg.Gauge("serve/submitted", s.submitted.Load)
	reg.Gauge("serve/deduped", s.deduped.Load)
	reg.Gauge("serve/rejected", s.rejected.Load)
	reg.Gauge("serve/runs", s.runs.Load)
	reg.Gauge("serve/jobs_done", s.jobsDone.Load)
	reg.Gauge("serve/jobs_failed", s.jobsFailed.Load)
	reg.Gauge("serve/jobs_retried", s.jobsRetried.Load)
	reg.Gauge("serve/jobs_canceled", s.jobsCanceled.Load)
	reg.Gauge("serve/journal_replayed", s.replayed.Load)
	reg.Gauge("serve/cache_hits", s.cache.hits.Load)
	reg.Gauge("serve/cache_misses", s.cache.misses.Load)
	reg.Gauge("serve/cache_evictions", s.cache.evictions.Load)
	reg.Gauge("serve/cache_size", s.cache.size)
	reg.Gauge("serve/queue_depth", func() int64 { return int64(len(s.queue)) })
	reg.Gauge("serve/workers", func() int64 { return int64(s.workers) })
	reg.Gauge("serve/workers_busy", s.busy.Load)
	reg.Gauge("serve/uptime_seconds", func() int64 { return int64(time.Since(s.startAt).Seconds()) })
	return reg
}

// Metrics snapshots every serve/ metric; At is the server's uptime in
// seconds. Keys() gives the stable sorted order /metrics renders in.
func (s *Server) Metrics() sim.Snapshot {
	return s.reg.Snapshot(int64(time.Since(s.startAt).Seconds()))
}

// Start brings up the worker pool and feeds any journal-replay backlog.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if len(s.replay) > 0 {
		backlog := s.replay
		s.replay = nil
		s.replayWG.Add(1)
		go func() {
			defer s.replayWG.Done()
			for i, j := range backlog {
				select {
				case s.queue <- j:
				case <-s.stop:
					// Shutdown raced the replay: push the rest straight
					// back to the journal.
					for _, rest := range backlog[i:] {
						s.cancelJob(rest)
					}
					return
				}
			}
		}()
	}
}

func (s *Server) newID() string { return fmt.Sprintf("j-%d", s.nextID.Add(1)) }

// Submit admits one spec. The outcome is decided atomically per
// fingerprint shard: a cached result completes the job immediately
// (Cached), an identical in-flight job absorbs the submission (Deduped),
// otherwise the job joins the bounded queue — or is rejected with
// ErrQueueFull, which callers should surface as backpressure, not failure.
func (s *Server) Submit(spec chip.Spec) (JobStatus, error) {
	if s.draining.Load() {
		return JobStatus{}, ErrDraining
	}
	if spec.MeasureOps <= 0 {
		return JobStatus{}, ErrInvalidSpec
	}
	spec.OnSample = nil // observers are server-side only
	fp := spec.Fingerprint()
	now := time.Now()
	j := newJob(s.newID(), fp, spec, now)

	outcome, cached, twin := s.cache.admit(fp, j)
	switch outcome {
	case admitHit:
		j.mu.Lock()
		j.cached = true
		j.result = cached
		j.mu.Unlock()
		j.transition(StateDone, Event{Type: "done"}, now)
		s.register(j)
		s.submitted.Add(1)
		return j.status(true), nil

	case admitJoin:
		s.submitted.Add(1)
		s.deduped.Add(1)
		st := twin.status(false)
		st.Deduped = true
		return st, nil

	default:
		select {
		case s.queue <- j:
		default:
			s.cache.release(fp)
			s.rejected.Add(1)
			return JobStatus{}, ErrQueueFull
		}
		s.register(j)
		s.submitted.Add(1)
		return j.status(false), nil
	}
}

func (s *Server) register(j *job) {
	s.jobsMu.Lock()
	s.jobs[j.id] = j
	s.jobsMu.Unlock()
}

// CachedFingerprints lists every fingerprint in the result cache, sorted.
// This is the cluster-consistency probe: the chaos suites union it across
// nodes to assert the fleet holds exactly one copy of each result.
func (s *Server) CachedFingerprints() []string { return s.cache.fingerprints() }

// Job returns a tracked job by id.
func (s *Server) Job(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Checked alone first so a closed stop always wins over a ready
		// queue — shutdown must drain queued jobs to the journal, not
		// race workers for them.
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job through the policy path shared with the CLI
// sweeps: retry under the alternate seed, timeout decoration, structured
// failures. Every progress window the simulation records is appended to
// the job's event stream as it closes.
func (s *Server) runJob(j *job) {
	s.busy.Add(1)
	defer s.busy.Add(-1)
	j.transition(StateRunning, Event{Type: "started"}, time.Now())

	spec := j.spec
	spec.OnSample = j.window
	s.runs.Add(1)
	res, rep := s.cfg.Policy.RunOne(s.runCtx, spec)
	if rep != nil && rep.Retried {
		j.mu.Lock()
		j.retried = true
		j.mu.Unlock()
		s.jobsRetried.Add(1)
	}

	switch {
	case res != nil:
		j.mu.Lock()
		j.result = res
		j.mu.Unlock()
		s.cache.complete(j.fingerprint, res)
		j.transition(StateDone, Event{Type: "done"}, time.Now())
		s.jobsDone.Add(1)

	case s.runCtx.Err() != nil:
		// Shutdown cancelled the run mid-flight: the job goes back to the
		// journal so a restarted server finishes it.
		s.cancelJob(j)

	default:
		j.mu.Lock()
		j.runErr = rep.Err
		j.retryErr = rep.RetryErr
		j.mu.Unlock()
		s.cache.release(j.fingerprint)
		j.transition(StateFailed, Event{Type: "failed"}, time.Now())
		s.jobsFailed.Add(1)
	}
}

// cancelJob marks a job cancelled and queues it for the journal.
func (s *Server) cancelJob(j *job) {
	s.cache.release(j.fingerprint)
	j.transition(StateCanceled, Event{Type: "canceled"}, time.Now())
	s.jobsCanceled.Add(1)
	s.pendingMu.Lock()
	s.pending = append(s.pending, journalEntry{ID: j.id, Spec: j.spec})
	s.pendingMu.Unlock()
}

// Draining reports whether shutdown has begun (healthz turns 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the service: intake closes (submissions get
// ErrDraining), workers stop picking jobs, queued jobs are journaled, and
// in-flight runs get until ctx expires to finish before being cancelled
// through the chip.RunCtx context plumbing — cancelled runs are journaled
// too. With a journal configured, everything drained is replayed by the
// next server that starts on the same path.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.replayWG.Wait()

	// Jobs still queued never started: straight to the journal.
drain:
	for {
		select {
		case j := <-s.queue:
			s.cancelJob(j)
		default:
			break drain
		}
	}

	// In-flight runs: finish within the grace period or get cancelled.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRuns()
		<-done
	}

	s.pendingMu.Lock()
	pending := s.pending
	s.pending = nil
	s.pendingMu.Unlock()
	if s.cfg.Journal != "" {
		return writeJournal(s.cfg.Journal, pending)
	}
	if len(pending) > 0 {
		return fmt.Errorf("serve: %d unfinished jobs lost (no journal configured)", len(pending))
	}
	return nil
}
