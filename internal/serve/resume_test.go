// Mid-stream death and resume: a client following a job's SSE stream loses
// the node mid-run; the journal-replayed job on the replacement node re-runs
// deterministically under its original id, so resuming the stream with
// ?after=<cursor> yields exactly the events the broken stream never
// delivered — the same progress windows, none duplicated, none lost.
package serve_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"reactivenoc/internal/serve"
)

func TestClientResumesSSEAcrossNodeDeath(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "rcserved.journal")
	ctx := context.Background()

	// Node A: one worker, journaled. The spec samples often and runs long
	// enough that the stream reliably breaks mid-run.
	s1, err := serve.New(serve.Config{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	hs1 := httptest.NewServer(s1.Handler())
	cl1 := serve.NewClient(hs1.URL)

	spec := quickSpec(t, "Complete_NoAck", 5)
	spec.MeasureOps = 20000
	spec.SampleEvery = 256

	st, err := cl1.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Follow the stream; after three windows, sever every connection —
	// from the client's side this is indistinguishable from the node
	// dying under it.
	var prefix []serve.Event
	windows := 0
	cursor, err := cl1.Follow(ctx, st.ID, 0, func(ev serve.Event) error {
		prefix = append(prefix, ev)
		if ev.Type == "window" {
			if windows++; windows == 3 {
				hs1.CloseClientConnections()
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("stream survived the node death (job finished before the kill?)")
	}
	if cursor != len(prefix) {
		t.Fatalf("cursor %d does not match %d delivered events", cursor, len(prefix))
	}
	if windows < 3 {
		t.Fatalf("stream broke after only %d windows", windows)
	}

	// The node dies mid-run: an already-expired grace period cancels the
	// in-flight job straight to the journal.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Shutdown(expired); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs1.Close()

	// Replacement node replays the journal under the original job id.
	s2, err := serve.New(serve.Config{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		if err := s2.Shutdown(sctx); err != nil {
			t.Errorf("replacement shutdown: %v", err)
		}
		hs2.Close()
	})
	cl2 := serve.NewClient(hs2.URL)

	// Resume from the cursor: only the tail arrives.
	var suffix []serve.Event
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	end, err := cl2.Follow(wctx, st.ID, cursor, func(ev serve.Event) error {
		suffix = append(suffix, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if len(suffix) == 0 || suffix[0].Seq != cursor {
		t.Fatalf("resume did not pick up at cursor %d: %+v", cursor, suffix[:min(3, len(suffix))])
	}
	if last := suffix[len(suffix)-1]; last.Type != "done" {
		t.Fatalf("resumed stream ended with %q, want done", last.Type)
	}

	// The stitched stream must be byte-for-byte the replacement node's own
	// full history: consecutive seqs, every window exactly once, and —
	// because the replay re-ran the same deterministic spec — identical
	// window contents across the two nodes.
	full := []serve.Event{}
	if _, err := cl2.Follow(ctx, st.ID, 0, func(ev serve.Event) error {
		full = append(full, ev)
		return nil
	}); err != nil {
		t.Fatalf("full replay stream: %v", err)
	}
	combined := append(append([]serve.Event{}, prefix...), suffix...)
	if len(combined) != len(full) || end != len(full) {
		t.Fatalf("stitched stream has %d events (cursor end %d), replacement history has %d",
			len(combined), end, len(full))
	}
	for i := range combined {
		got, want := combined[i], full[i]
		if got.Seq != i || want.Seq != i {
			t.Fatalf("event %d: seq %d/%d, want dense from 0", i, got.Seq, want.Seq)
		}
		if got.Type != want.Type {
			t.Fatalf("event %d: type %q vs %q", i, got.Type, want.Type)
		}
		if got.Type == "window" && !reflect.DeepEqual(got.Window.Vals, want.Window.Vals) {
			t.Fatalf("window %d diverged between the dead node's stream and the replay", i)
		}
	}
}
