package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"reactivenoc/internal/chip"
)

// journalEntry is one job that shutdown drained before it produced a
// result: the id is preserved so clients polling it keep working across
// the restart.
type journalEntry struct {
	ID   string    `json:"id"`
	Spec chip.Spec `json:"spec"`
}

// writeJournal atomically replaces path with the entries, one JSON object
// per line. An empty entry list removes the journal instead, so a clean
// shutdown leaves nothing to replay.
func writeJournal(path string, entries []journalEntry) error {
	if len(entries) == 0 {
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readJournal loads and consumes the journal at path: entries are returned
// and the file is removed, so a replayed job cannot be replayed twice by a
// crash loop. A missing journal is an empty one.
func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("serve: corrupt journal %s: %w", filepath.Base(path), err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := os.Remove(path); err != nil {
		return nil, err
	}
	return entries, nil
}
