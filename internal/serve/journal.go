package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"reactivenoc/internal/chip"
)

// journalEntry is one job that shutdown drained before it produced a
// result: the id is preserved so clients polling it keep working across
// the restart.
type journalEntry struct {
	ID   string    `json:"id"`
	Spec chip.Spec `json:"spec"`
}

// writeJournal atomically replaces path with the entries, one JSON object
// per line. An empty entry list removes the journal instead, so a clean
// shutdown leaves nothing to replay.
func writeJournal(path string, entries []journalEntry) error {
	if len(entries) == 0 {
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readJournal loads and consumes the journal at path: entries are returned
// and the file is removed, so a replayed job cannot be replayed twice by a
// crash loop. A missing journal is an empty one.
//
// A truncated or otherwise unparseable *final* record is the signature of
// a crash mid-write (the process died between appending and fsync): it is
// skipped with a warning through warn, and every intact record before it
// still replays. Corruption anywhere else in the file cannot be explained
// by a torn write and aborts the load — replaying a journal whose middle
// is garbage risks silently dropping an unknown number of jobs.
func readJournal(path string, warn func(format string, args ...any)) ([]journalEntry, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(raw, []byte("\n"))
	// Find the last non-empty line: only that one may legitimately be torn.
	last := -1
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) > 0 {
			last = i
		}
	}
	var entries []journalEntry
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == last {
				warn("serve: journal %s: skipping torn final record (%d bytes): %v",
					filepath.Base(path), len(line), err)
				break
			}
			return nil, fmt.Errorf("serve: corrupt journal %s: record %d: %w", filepath.Base(path), i+1, err)
		}
		entries = append(entries, e)
	}
	if err := os.Remove(path); err != nil {
		return nil, err
	}
	return entries, nil
}
