package serve

import (
	"sync"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/sim"
)

// JobState is a job's lifecycle position.
type JobState string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is simulating the spec.
	StateRunning JobState = "running"
	// StateDone: results available (from a run or the cache).
	StateDone JobState = "done"
	// StateFailed: the run (and any retry) died; Error is structured.
	StateFailed JobState = "failed"
	// StateCanceled: shutdown drained the job before it produced a
	// result; it is journaled for replay on restart.
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's progress stream, in SSE order. Seq is the
// position in the stream (dense from 0), so a reconnecting client can
// resume after the last event it saw.
type Event struct {
	Seq  int      `json:"seq"`
	Type string   `json:"type"` // queued|started|window|done|failed|canceled
	At   JobState `json:"state"`
	// Window carries the per-SampleEvery metrics delta for "window"
	// events, with At rebased to the measured-phase start.
	Window *sim.Snapshot `json:"window,omitempty"`
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID          string   `json:"id"`
	State       JobState `json:"state"`
	Fingerprint string   `json:"fingerprint"`
	// Cached marks a submission served from the result cache without a
	// simulation; Deduped marks one coalesced onto an in-flight job.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	// Retried reports that the first attempt failed and the policy re-ran
	// the spec under the alternate seed.
	Retried bool `json:"retried,omitempty"`
	// Windows counts progress windows streamed so far.
	Windows int `json:"windows"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`

	// Error and RetryError are the structured run failures (failed jobs).
	Error      *chip.RunError `json:"error,omitempty"`
	RetryError *chip.RunError `json:"retry_error,omitempty"`
	// Result is attached when the job is done.
	Result *chip.Results `json:"result,omitempty"`
}

// job is the server-side state of one submission.
type job struct {
	id          string
	fingerprint string
	spec        chip.Spec

	mu        sync.Mutex
	state     JobState
	cached    bool
	retried   bool
	windows   int
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *chip.Results
	runErr    *chip.RunError
	retryErr  *chip.RunError

	events  []Event
	changed chan struct{} // closed and replaced on every event append
}

func newJob(id, fp string, spec chip.Spec, now time.Time) *job {
	j := &job{
		id: id, fingerprint: fp, spec: spec,
		state: StateQueued, submitted: now,
		changed: make(chan struct{}),
	}
	j.appendLocked(Event{Type: "queued"})
	return j
}

// appendLocked records an event and wakes every stream follower. Callers
// either hold j.mu or have exclusive access (construction).
func (j *job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.At = j.state
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// transition moves the job to state and appends the matching event.
func (j *job) transition(state JobState, ev Event, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	switch state {
	case StateRunning:
		j.started = now
	case StateDone, StateFailed, StateCanceled:
		j.finished = now
	}
	j.appendLocked(ev)
}

// window streams one progress window.
func (j *job) window(w sim.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.windows++
	j.appendLocked(Event{Type: "window", Window: &w})
}

// eventsAfter returns the events past seq plus a channel that closes when
// more arrive.
func (j *job) eventsAfter(seq int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var tail []Event
	if seq < len(j.events) {
		tail = append(tail, j.events[seq:]...)
	}
	return tail, j.changed
}

// status snapshots the wire view. includeResult controls whether the full
// Results payload rides along (GET yes; event frames no).
func (j *job) status(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Fingerprint: j.fingerprint,
		Cached: j.cached, Retried: j.retried, Windows: j.windows,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Error: j.runErr, RetryError: j.retryErr,
	}
	if includeResult {
		st.Result = j.result
	}
	return st
}
