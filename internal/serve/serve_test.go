package serve

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"reactivenoc/internal/chip"
	"reactivenoc/internal/config"
	"reactivenoc/internal/exp"
	"reactivenoc/internal/workload"
)

// smallSpec is a fast-but-real run: a 16-core baseline cell over the micro
// workload, a few milliseconds of wall clock.
func smallSpec(seed uint64) chip.Spec {
	v, _ := config.ByName("Baseline")
	spec := chip.DefaultSpec(config.Chip16(), v, workload.Micro())
	spec.WarmupOps = 200
	spec.MeasureOps = 500
	spec.Seed = seed
	return spec
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestCacheLRUEviction: the per-shard LRU must evict the least recently
// used fingerprint and count the eviction.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 1) // one shard, two entries
	r := &chip.Results{}
	for _, fp := range []string{"a", "b"} {
		if out, _, _ := c.admit(fp, nil); out != admitNew {
			t.Fatalf("admit(%s) = %v, want new", fp, out)
		}
		c.complete(fp, r)
	}
	if out, _, _ := c.admit("a", nil); out != admitHit { // refresh a
		t.Fatalf("a should be cached")
	}
	if out, _, _ := c.admit("c", nil); out != admitNew {
		t.Fatalf("c should miss")
	}
	c.complete("c", r) // evicts b, the LRU entry
	if out, _, _ := c.admit("b", nil); out != admitNew {
		t.Fatalf("b should have been evicted, admit = %v", out)
	}
	c.release("b")
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := c.size(); got != 2 {
		t.Fatalf("size = %d, want 2", got)
	}
}

// TestCacheDedupCoalesces: while a fingerprint is in flight, identical
// admissions join it; completion frees the slot.
func TestCacheDedupCoalesces(t *testing.T) {
	c := newResultCache(8, 4)
	owner := &job{id: "j-1"}
	if out, _, _ := c.admit("fp", owner); out != admitNew {
		t.Fatal("first admission must be new")
	}
	out, _, twin := c.admit("fp", &job{id: "j-2"})
	if out != admitJoin || twin != owner {
		t.Fatalf("second admission = %v/%v, want join onto j-1", out, twin)
	}
	c.complete("fp", &chip.Results{})
	if out, res, _ := c.admit("fp", nil); out != admitHit || res == nil {
		t.Fatalf("post-completion admission = %v, want cache hit", out)
	}
}

// TestSubmitBackpressure: a full queue must reject with ErrQueueFull and
// leave no stale in-flight registration behind.
func TestSubmitBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	// No Start(): jobs stay queued.
	if _, err := s.Submit(smallSpec(1)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, err := s.Submit(smallSpec(2))
	if err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().Value("serve/rejected"); got != 1 {
		t.Fatalf("serve/rejected = %d, want 1", got)
	}
	// The rejected fingerprint must be admissible again (no inflight leak).
	if _, _, twin := s.cache.admit(smallSpec(2).Fingerprint(), &job{}); twin != nil {
		t.Fatal("rejected submission left a stale in-flight registration")
	}
}

// TestSubmitValidation: nonsense specs are rejected before queueing.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	spec := smallSpec(1)
	spec.MeasureOps = 0
	if _, err := s.Submit(spec); err != ErrInvalidSpec {
		t.Fatalf("err = %v, want ErrInvalidSpec", err)
	}
}

// TestDedupReturnsSameJob: two concurrent submissions of one spec share a
// single job id and a single simulation.
func TestDedupReturnsSameJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	spec := smallSpec(3)
	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Deduped || st2.ID != st1.ID {
		t.Fatalf("duplicate submission got job %q (deduped=%v), want join onto %q", st2.ID, st2.Deduped, st1.ID)
	}
	if got := s.Metrics().Value("serve/deduped"); got != 1 {
		t.Fatalf("serve/deduped = %d, want 1", got)
	}
}

// TestJournalRoundTrip: entries survive the file format, and reading
// consumes the journal.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	in := []journalEntry{
		{ID: "j-1", Spec: smallSpec(1)},
		{ID: "j-9", Spec: smallSpec(2)},
	}
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != "j-1" || out[1].ID != "j-9" {
		t.Fatalf("round trip: %+v", out)
	}
	if out[1].Spec.Fingerprint() != in[1].Spec.Fingerprint() {
		t.Fatal("spec fingerprint changed across the journal")
	}
	// Consumed: a second read is empty.
	again, err := readJournal(path)
	if err != nil || len(again) != 0 {
		t.Fatalf("journal not consumed: %v, %v", again, err)
	}
	// Empty write removes the file.
	if err := writeJournal(path, in); err != nil {
		t.Fatal(err)
	}
	if err := writeJournal(path, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := readJournal(path); got != nil {
		t.Fatalf("empty journal write should remove the file, read %v", got)
	}
}

// TestPolicyRunRejected: the server is the executor; a policy with a Run
// override is a misconfiguration.
func TestPolicyRunRejected(t *testing.T) {
	_, err := New(Config{Policy: exp.Policy{
		Run: func(context.Context, chip.Spec) (*chip.Results, error) { return nil, nil },
	}})
	if err == nil {
		t.Fatal("New accepted a Policy.Run override")
	}
}
